// mrmtp_shell — an interactive (and pipe-scriptable) console for driving
// the simulator, in the spirit of the mininet CLI the paper plans to use
// for its scaling studies (§IX). Reads commands from stdin:
//
//   topo <pods> <tors> <spines> <tops> [clusters supers]   rebuild fabric
//   proto mtp|bgp|bgpbfd                                   pick the stack
//   start                                                  boot the fabric
//   run <ms>                                               advance sim time
//   converged                                              print yes/no
//   nodes                                                  list devices
//   show vids|routes|exclusions|neighbors|stats|config <node>   inspect
//   fail <node> <port> | heal <node> <port>                one interface
//   crash <node> | restore <node>                          whole router
//   tc TC1..TC4                                            paper failure
//   traffic <hostIdx> <hostIdx> <count> [gap_us]           probe flow
//   pcap <file>                                            tap every link
//   help | quit
//
// Example:
//   printf 'start\nrun 2000\nconverged\nshow vids T-1\nquit\n' | mrmtp_shell
#include <cstdio>
#include <iostream>
#include <sstream>

#include "harness/deploy.hpp"
#include "net/pcap.hpp"
#include "topo/failure.hpp"

namespace {

using namespace mrmtp;

class Shell {
 public:
  int run() {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!dispatch(line)) break;
    }
    flush_pcap();
    return 0;
  }

 private:
  bool dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty() || cmd[0] == '#') return true;

    try {
      if (cmd == "quit" || cmd == "exit") return false;
      if (cmd == "help") return help();
      if (cmd == "topo") return cmd_topo(in);
      if (cmd == "proto") return cmd_proto(in);
      if (cmd == "start") return cmd_start();
      if (cmd == "run") return cmd_run(in);
      if (cmd == "converged") return cmd_converged();
      if (cmd == "nodes") return cmd_nodes();
      if (cmd == "show") return cmd_show(in);
      if (cmd == "fail") return cmd_toggle_iface(in, false);
      if (cmd == "heal") return cmd_toggle_iface(in, true);
      if (cmd == "crash") return cmd_toggle_node(in, false);
      if (cmd == "restore") return cmd_toggle_node(in, true);
      if (cmd == "tc") return cmd_tc(in);
      if (cmd == "traffic") return cmd_traffic(in);
      if (cmd == "pcap") return cmd_pcap(in);
      std::printf("?? unknown command '%s' (try: help)\n", cmd.c_str());
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
    return true;
  }

  bool help() {
    std::printf(
        "commands: topo proto start run converged nodes show fail heal\n"
        "          crash restore tc traffic pcap help quit\n");
    return true;
  }

  bool cmd_topo(std::istringstream& in) {
    topo::ClosParams p = topo::ClosParams::paper_2pod();
    in >> p.pods >> p.tors_per_pod >> p.spines_per_pod >> p.top_spines;
    if (!(in >> p.clusters)) p.clusters = 1;
    if (!(in >> p.super_spines)) p.super_spines = 0;
    params_ = p;
    reset();
    std::printf("topology: %u routers, %zu links\n", p.router_count(),
                blueprint_->links().size());
    return true;
  }

  bool cmd_proto(std::istringstream& in) {
    std::string name;
    in >> name;
    if (name == "mtp") proto_ = harness::Proto::kMtp;
    else if (name == "bgp") proto_ = harness::Proto::kBgp;
    else if (name == "bgpbfd") proto_ = harness::Proto::kBgpBfd;
    else {
      std::printf("?? proto mtp|bgp|bgpbfd\n");
      return true;
    }
    reset();
    std::printf("protocol: %s\n", std::string(to_string(proto_)).c_str());
    return true;
  }

  bool cmd_start() {
    ensure();
    dep_->start();
    started_ = true;
    std::printf("started %s on %u routers\n",
                std::string(to_string(proto_)).c_str(),
                params_.router_count());
    return true;
  }

  bool cmd_run(std::istringstream& in) {
    ensure();
    std::int64_t ms = 1000;
    in >> ms;
    ctx_->sched.run_until(ctx_->now() + sim::Duration::millis(ms));
    std::printf("t=%s\n", ctx_->now().str().c_str());
    return true;
  }

  bool cmd_converged() {
    ensure();
    std::printf("converged: %s\n", dep_->converged() ? "yes" : "no");
    return true;
  }

  bool cmd_nodes() {
    ensure();
    for (const auto& d : blueprint_->devices()) {
      std::printf("  %-10s tier %u\n", d.name.c_str(), d.tier);
    }
    for (std::uint32_t h = 0; h < dep_->host_count(); ++h) {
      std::printf("  host %u: %s (%s)\n", h, dep_->host(h).name().c_str(),
                  dep_->host(h).addr().str().c_str());
    }
    return true;
  }

  bool cmd_show(std::istringstream& in) {
    ensure();
    std::string what;
    std::string name;
    in >> what >> name;
    std::uint32_t d = blueprint_->device_index(name);
    if (what == "vids") {
      std::printf("%s", dep_->mtp(d).vid_table().dump().c_str());
    } else if (what == "exclusions") {
      std::printf("%s", dep_->mtp(d).exclusions().dump().c_str());
    } else if (what == "routes") {
      std::printf("%s", dep_->bgp(d).routes().dump().c_str());
    } else if (what == "config") {
      if (proto_ == harness::Proto::kMtp) {
        std::printf("%s\n", blueprint_->mtp_config().dump().c_str());
      } else {
        std::printf("%s", dep_->bgp(d).config_text().c_str());
      }
    } else if (what == "neighbors") {
      if (proto_ == harness::Proto::kMtp) {
        std::printf("%s", dep_->mtp(d).neighbor_summary().c_str());
      } else {
        std::printf("%s", dep_->bgp(d).summary_text().c_str());
      }
    } else if (what == "stats") {
      if (proto_ == harness::Proto::kMtp) {
        const auto& s = dep_->mtp(d).mtp_stats();
        std::printf("hellos %llu, updates tx/rx %llu/%llu, data fwd %llu, "
                    "drops(no-path/ttl) %llu/%llu\n",
                    (unsigned long long)s.hellos_sent,
                    (unsigned long long)s.updates_sent,
                    (unsigned long long)s.updates_received,
                    (unsigned long long)s.data_forwarded,
                    (unsigned long long)s.data_dropped_no_path,
                    (unsigned long long)s.data_dropped_ttl);
      } else {
        const auto& s = dep_->bgp(d).bgp_stats();
        std::printf("updates tx/rx %llu/%llu, keepalives %llu, rib changes "
                    "%llu, sessions %zu\n",
                    (unsigned long long)s.updates_sent,
                    (unsigned long long)s.updates_received,
                    (unsigned long long)s.keepalives_sent,
                    (unsigned long long)s.rib_changes,
                    dep_->bgp(d).established_sessions());
      }
    } else {
      std::printf("?? show vids|routes|exclusions|neighbors|stats|config <node>\n");
    }
    return true;
  }

  bool cmd_toggle_iface(std::istringstream& in, bool up) {
    ensure();
    std::string name;
    std::uint32_t port = 0;
    in >> name >> port;
    net::Node& node = dep_->network().find(name);
    if (up) {
      node.set_interface_up(port);
    } else {
      node.set_interface_down(port);
    }
    std::printf("%s %s:%u\n", up ? "healed" : "failed", name.c_str(), port);
    return true;
  }

  bool cmd_toggle_node(std::istringstream& in, bool up) {
    ensure();
    std::string name;
    in >> name;
    net::Node& node = dep_->network().find(name);
    for (std::uint32_t p = 1; p <= node.port_count(); ++p) {
      if (up) {
        node.set_interface_up(p);
      } else {
        node.set_interface_down(p);
      }
    }
    std::printf("%s %s\n", up ? "restored" : "crashed", name.c_str());
    return true;
  }

  bool cmd_tc(std::istringstream& in) {
    ensure();
    std::string name;
    in >> name;
    for (topo::TestCase tc : topo::kAllTestCases) {
      if (to_string(tc) == name) {
        auto fp = blueprint_->failure_point(tc);
        dep_->network().find(fp.device).set_interface_down(fp.port);
        std::printf("%s: failed %s:%u (link to %s)\n", name.c_str(),
                    fp.device.c_str(), fp.port, fp.peer.c_str());
        return true;
      }
    }
    std::printf("?? tc TC1|TC2|TC3|TC4\n");
    return true;
  }

  bool cmd_traffic(std::istringstream& in) {
    ensure();
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    std::uint64_t count = 100;
    std::int64_t gap_us = 1000;
    in >> from >> to >> count;
    in >> gap_us;
    auto& sender = dep_->host(from);
    auto& receiver = dep_->host(to);
    receiver.reset_sink();
    receiver.listen();
    traffic::FlowConfig flow;
    flow.dst = receiver.addr();
    flow.count = count;
    flow.gap = sim::Duration::micros(gap_us);
    sender.start_flow(flow);
    ctx_->sched.run_until(ctx_->now() +
                          sim::Duration::micros(gap_us * static_cast<std::int64_t>(count)) +
                          sim::Duration::millis(100));
    const auto& s = receiver.sink_stats();
    std::printf("traffic %s -> %s: sent %llu, received %llu unique "
                "(%llu dup, %llu ooo, %llu lost)\n",
                sender.name().c_str(), receiver.name().c_str(),
                (unsigned long long)sender.packets_sent(),
                (unsigned long long)s.unique_received,
                (unsigned long long)s.duplicates,
                (unsigned long long)s.out_of_order,
                (unsigned long long)s.lost(sender.packets_sent()));
    return true;
  }

  bool cmd_pcap(std::istringstream& in) {
    ensure();
    in >> pcap_path_;
    if (pcap_path_.empty()) {
      std::printf("?? pcap <file>\n");
      return true;
    }
    for (const auto& link : dep_->network().links()) {
      net::attach_tap(*link, pcap_);
    }
    std::printf("capturing every link to %s (written at quit)\n",
                pcap_path_.c_str());
    return true;
  }

  void flush_pcap() {
    if (pcap_path_.empty()) return;
    if (pcap_.write_file(pcap_path_)) {
      std::printf("wrote %zu frames to %s\n", pcap_.size(),
                  pcap_path_.c_str());
    } else {
      std::printf("error: cannot write %s\n", pcap_path_.c_str());
    }
  }

  void ensure() {
    if (!dep_) reset();
    if (!started_ && dep_) {
      // Commands that need a running fabric auto-start it.
    }
  }

  void reset() {
    started_ = false;
    dep_.reset();
    blueprint_.reset();
    ctx_ = std::make_unique<net::SimContext>(seed_);
    blueprint_ = std::make_unique<topo::ClosBlueprint>(params_);
    dep_ = std::make_unique<harness::Deployment>(*ctx_, *blueprint_, proto_,
                                                 harness::DeployOptions{});
  }

  std::uint64_t seed_ = 1;
  topo::ClosParams params_ = topo::ClosParams::paper_2pod();
  harness::Proto proto_ = harness::Proto::kMtp;
  std::unique_ptr<net::SimContext> ctx_;
  std::unique_ptr<topo::ClosBlueprint> blueprint_;
  std::unique_ptr<harness::Deployment> dep_;
  bool started_ = false;
  net::PcapWriter pcap_;
  std::string pcap_path_;
};

}  // namespace

int main() {
  std::printf("mrmtp_shell — 'help' for commands\n");
  return Shell().run();
}
