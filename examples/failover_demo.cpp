// Failover walkthrough: watch MR-MTP's Quick-to-Detect / Slow-to-Accept
// failure handling live. Fails the ToR-side interface of the L-1-1 <-> S-1-1
// link (the paper's TC1) under traffic, narrates detection, withdrawal, and
// destination-exclusion updates, then heals the link and shows the tree
// rebuild.
//
//   $ ./failover_demo
#include <cstdio>

#include "harness/deploy.hpp"
#include "topo/failure.hpp"

int main() {
  using namespace mrmtp;

  net::SimContext ctx(7);
  // Protocol events from the routers are narrated via the trace log.
  ctx.log.set_level(sim::LogLevel::kInfo);
  ctx.log.set_sink(sim::Logger::stdout_sink());

  topo::ClosBlueprint blueprint(topo::ClosParams::paper_2pod());
  harness::Deployment dep(ctx, blueprint, harness::Proto::kMtp, {});
  dep.start();

  // Quiet period: initial neighbor acceptance + tree establishment.
  ctx.log.set_level(sim::LogLevel::kOff);
  ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(2).ns()));
  std::printf("--- fabric converged; starting traffic 11 -> 14 ---\n");

  auto& sender = dep.host(0);
  auto& receiver = dep.host(3);
  receiver.listen();
  traffic::FlowConfig flow;
  flow.dst = receiver.addr();
  flow.gap = sim::Duration::millis(2);
  sender.start_flow(flow);
  ctx.sched.run_until(ctx.now() + sim::Duration::seconds(1));

  // TC1: L-1-1's uplink interface to S-1-1 goes down.
  ctx.log.set_level(sim::LogLevel::kInfo);
  topo::FailureInjector injector(dep.network(), blueprint);
  auto fp = blueprint.failure_point(topo::TestCase::kTC1);
  std::printf("\n--- failing %s port %u (link to %s) — paper TC1 ---\n",
              fp.device.c_str(), fp.port, fp.peer.c_str());
  injector.schedule_failure(topo::TestCase::kTC1,
                            ctx.now() + sim::Duration::millis(10));
  ctx.sched.run_until(ctx.now() + sim::Duration::millis(500));

  auto& s11 = dep.mtp(blueprint.device_index("S-1-1"));
  auto& t1 = dep.mtp(blueprint.device_index("T-1"));
  auto& tor12 = dep.mtp(blueprint.device_index("L-1-2"));
  std::printf("\nafter failure:\n");
  std::printf("  S-1-1 VID table (lost 11.1):\n%s",
              s11.vid_table().dump().c_str());
  std::printf("  T-1 VID table (11.1.1 withdrawn):\n%s",
              t1.vid_table().dump().c_str());
  std::printf("  L-1-2 exclusions (destination 11 avoids the dead branch):\n%s",
              tor12.exclusions().dump().c_str());

  // Heal the interface; Slow-to-Accept takes three hellos, then the branch
  // re-joins with the same derived VIDs.
  std::printf("\n--- healing the interface ---\n");
  injector.schedule_recovery(ctx.now() + sim::Duration::millis(10));
  ctx.sched.run_until(ctx.now() + sim::Duration::seconds(1));

  std::printf("\nafter recovery:\n");
  std::printf("  T-1 VID table:\n%s", t1.vid_table().dump().c_str());
  std::printf("  L-1-2 exclusions: %s\n",
              tor12.exclusions().size() == 0 ? "(cleared)"
                                             : tor12.exclusions().dump().c_str());

  sender.stop_flow();
  ctx.log.set_level(sim::LogLevel::kOff);
  ctx.sched.run_until(ctx.now() + sim::Duration::millis(100));
  const auto& sink = receiver.sink_stats();
  std::printf("\ntraffic across the whole episode: sent %llu, lost %llu "
              "(longest gap %s)\n",
              static_cast<unsigned long long>(sender.packets_sent()),
              static_cast<unsigned long long>(sink.lost(sender.packets_sent())),
              sink.max_gap.str().c_str());
  return 0;
}
