// Clos explorer: build a folded-Clos of any size and inspect everything the
// library derives from it — device/link inventory, VID plan, /31 addressing,
// ASN plan, failure points, the Listing-2 MR-MTP JSON, and a generated FRR
// configuration.
//
//   $ ./clos_explorer                 # the paper's 4-PoD
//   $ ./clos_explorer 8 4 4 16       # pods tors/pod spines/pod top-spines
#include <cstdio>
#include <cstdlib>

#include "harness/deploy.hpp"

int main(int argc, char** argv) {
  using namespace mrmtp;

  topo::ClosParams params = topo::ClosParams::paper_4pod();
  if (argc == 5) {
    params.pods = static_cast<std::uint32_t>(std::atoi(argv[1]));
    params.tors_per_pod = static_cast<std::uint32_t>(std::atoi(argv[2]));
    params.spines_per_pod = static_cast<std::uint32_t>(std::atoi(argv[3]));
    params.top_spines = static_cast<std::uint32_t>(std::atoi(argv[4]));
  } else if (argc != 1) {
    std::fprintf(stderr, "usage: %s [pods tors/pod spines/pod top-spines]\n",
                 argv[0]);
    return 1;
  }

  topo::ClosBlueprint bp(params);
  std::printf("folded-Clos: %u pods x (%u ToRs + %u spines) + %u top spines "
              "= %u routers, %zu fabric links, %zu servers\n\n",
              params.pods, params.tors_per_pod, params.spines_per_pod,
              params.top_spines, params.router_count(), bp.links().size(),
              bp.hosts().size());

  std::printf("ToRs (name / VID / rack subnet / BGP ASN):\n");
  for (const auto& d : bp.devices()) {
    if (d.role != topo::Role::kLeaf) continue;
    std::printf("  %-8s VID %-4u %-18s AS %u\n", d.name.c_str(), d.vid,
                d.server_subnet->str().c_str(), d.asn);
  }

  std::printf("\nfirst fabric links (upper:port <-> lower:port, /31):\n");
  for (std::uint32_t li = 0; li < bp.links().size() && li < 8; ++li) {
    const auto& l = bp.links()[li];
    std::printf("  %s:%u (%s) <-> %s:%u (%s)\n",
                bp.device(l.upper).name.c_str(), bp.port_on(l.upper, li),
                l.upper_addr.str().c_str(), bp.device(l.lower).name.c_str(),
                bp.port_on(l.lower, li), l.lower_addr.str().c_str());
  }
  if (bp.links().size() > 8) {
    std::printf("  ... %zu more\n", bp.links().size() - 8);
  }

  std::printf("\nfailure test points (paper Fig. 3):\n");
  for (topo::TestCase tc : topo::kAllTestCases) {
    auto fp = bp.failure_point(tc);
    std::printf("  %s: %s port %u (link to %s)\n",
                std::string(to_string(tc)).c_str(), fp.device.c_str(), fp.port,
                fp.peer.c_str());
  }

  std::printf("\nMR-MTP configuration (paper Listing 2):\n%s\n",
              bp.mtp_config().dump().c_str());

  // Deploy under BGP just to generate a per-router FRR configuration.
  net::SimContext ctx(1);
  harness::Deployment dep(ctx, bp, harness::Proto::kBgpBfd, {});
  std::printf("\ngenerated FRR configuration for %s (paper Listing 1):\n%s",
              bp.device(bp.top_spine(1)).name.c_str(),
              dep.bgp(bp.top_spine(1)).config_text().c_str());
  return 0;
}
