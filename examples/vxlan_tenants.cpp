// Multi-tenant VXLAN over MR-MTP — the deployment the paper assumes in
// §III.A: VMs talk over VXLAN between servers; the fabric only ever routes
// server-to-server traffic, so MR-MTP's VID derivation from the outer IP
// header just works, tenants stay isolated by VNI, and a fabric failure is
// invisible to the overlay beyond a brief blip.
//
//   $ ./vxlan_tenants
#include <cstdio>

#include "harness/deploy.hpp"
#include "topo/failure.hpp"

int main() {
  using namespace mrmtp;

  net::SimContext ctx(23);
  topo::ClosBlueprint blueprint(topo::ClosParams::paper_4pod());
  harness::DeployOptions options;
  options.vtep_hosts = true;
  harness::Deployment dep(ctx, blueprint, harness::Proto::kMtp, options);

  // Tenant "blue" (VNI 100) spans pods 1 and 4; tenant "red" (VNI 200)
  // reuses the SAME overlay addresses on different servers.
  const auto vm_a = ip::Ipv4Addr::parse("10.1.0.1");
  const auto vm_b = ip::Ipv4Addr::parse("10.1.0.2");
  auto& blue1 = dep.vtep(0);  // H-1-1 (pod 1)
  auto& blue2 = dep.vtep(7);  // H-4-2 (pod 4)
  auto& red1 = dep.vtep(2);   // H-2-1
  auto& red2 = dep.vtep(5);   // H-3-2

  blue1.add_vm(100, vm_a);
  blue2.add_vm(100, vm_b);
  blue1.add_remote(100, vm_b, blue2.addr());
  blue2.add_remote(100, vm_a, blue1.addr());

  red1.add_vm(200, vm_a);
  red2.add_vm(200, vm_b);
  red1.add_remote(200, vm_b, red2.addr());
  red2.add_remote(200, vm_a, red1.addr());

  dep.start();
  ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(3).ns()));
  std::printf("fabric converged: %s\n", dep.converged() ? "yes" : "no");

  // Both tenants chat across the fabric; every 5 ms each direction.
  auto chat = [&ctx](traffic::VtepHost& from, std::uint32_t vni,
                     ip::Ipv4Addr src, ip::Ipv4Addr dst, int count) {
    for (int i = 0; i < count; ++i) {
      ctx.sched.schedule_after(sim::Duration::millis(5 * i),
                               [&from, vni, src, dst] {
                                 from.vm_send(vni, src, dst, {0xbe, 0xef});
                               });
    }
  };
  chat(blue1, 100, vm_a, vm_b, 400);
  chat(red1, 200, vm_a, vm_b, 400);

  // Mid-stream, the paper's TC1 failure hits tenant blue's pod.
  topo::FailureInjector injector(dep.network(), blueprint);
  injector.schedule_failure(topo::TestCase::kTC1,
                            ctx.now() + sim::Duration::millis(500));

  ctx.sched.run_until(ctx.now() + sim::Duration::seconds(3));

  std::printf("\ntenant blue (VNI 100): %llu/400 delivered to 10.1.0.2 "
              "(fabric failure mid-stream)\n",
              static_cast<unsigned long long>(blue2.vm_received(100, vm_b)));
  std::printf("tenant red  (VNI 200): %llu/400 delivered to 10.1.0.2\n",
              static_cast<unsigned long long>(red2.vm_received(200, vm_b)));
  std::printf("cross-tenant leakage:  blue->red %llu, red->blue %llu "
              "(same overlay IPs, isolated by VNI)\n",
              static_cast<unsigned long long>(
                  red2.vtep_stats().dropped_unknown_vm),
              static_cast<unsigned long long>(
                  blue2.vtep_stats().dropped_unknown_vm));
  std::printf("\nVTEP accounting (tenant blue, server %s):\n",
              blue1.name().c_str());
  std::printf("  encapsulated %llu, decapsulated %llu, local %llu\n",
              static_cast<unsigned long long>(blue1.vtep_stats().encapsulated),
              static_cast<unsigned long long>(blue1.vtep_stats().decapsulated),
              static_cast<unsigned long long>(
                  blue1.vtep_stats().delivered_local));
  return 0;
}
