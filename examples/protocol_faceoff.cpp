// Protocol face-off: the paper's core experiment in one program. Runs the
// same TC failure under MR-MTP, BGP/ECMP, and BGP/ECMP/BFD on the 2-PoD
// fabric and prints the §V metrics side by side.
//
//   $ ./protocol_faceoff          # TC1
//   $ ./protocol_faceoff TC4      # any of TC1..TC4
#include <cstdio>
#include <cstring>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

int main(int argc, char** argv) {
  using namespace mrmtp;

  topo::TestCase tc = topo::TestCase::kTC1;
  if (argc > 1) {
    bool known = false;
    for (topo::TestCase candidate : topo::kAllTestCases) {
      if (to_string(candidate) == std::string_view(argv[1])) {
        tc = candidate;
        known = true;
      }
    }
    if (!known) {
      std::fprintf(stderr, "usage: %s [TC1|TC2|TC3|TC4]\n", argv[0]);
      return 1;
    }
  }

  topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
  auto fp = bp.failure_point(tc);
  std::printf("Failure %s: interface %s:%u (link to %s), 2-PoD topology,\n"
              "flow H-1-1 -> H-2-2 at ~333 pkt/s, averaged over 5 seeds.\n\n",
              std::string(to_string(tc)).c_str(), fp.device.c_str(), fp.port,
              fp.peer.c_str());

  harness::Table table({"metric", "MR-MTP", "BGP/ECMP", "BGP/ECMP/BFD"});
  harness::AveragedResult results[3];
  int i = 0;
  for (harness::Proto proto : harness::kAllProtos) {
    harness::ExperimentSpec spec;
    spec.proto = proto;
    spec.tc = tc;
    results[i++] = harness::run_averaged(spec, {1, 2, 3, 4, 5});
  }

  auto row = [&](const char* name, auto getter, int decimals) {
    table.add_row({name, harness::fmt(getter(results[0]), decimals),
                   harness::fmt(getter(results[1]), decimals),
                   harness::fmt(getter(results[2]), decimals)});
  };
  row("convergence (ms)", [](const auto& r) { return r.convergence_ms; }, 2);
  row("blast radius (routers)", [](const auto& r) { return r.blast_any; }, 1);
  row("control overhead (B)", [](const auto& r) { return r.ctrl_bytes_raw; }, 0);
  row("packets lost", [](const auto& r) { return r.packets_lost; }, 1);
  row("outage (ms)", [](const auto& r) { return r.outage_ms; }, 1);
  table.print();

  std::printf(
      "\nMR-MTP does all of this with one protocol over raw Ethernet —\n"
      "no BGP, no ECMP module, no BFD, no TCP/UDP, no IP routing tables\n"
      "(the six-protocol replacement of the paper's Fig. 1).\n");
  return 0;
}
