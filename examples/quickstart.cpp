// Quickstart: build the paper's 2-PoD folded-Clos fabric, run MR-MTP to
// convergence, inspect the meshed trees (Fig. 2), and send server traffic.
//
//   $ ./quickstart
#include <cstdio>

#include "harness/deploy.hpp"

int main() {
  using namespace mrmtp;

  // 1. A simulation context (deterministic: same seed, same run).
  net::SimContext ctx(/*seed=*/42);

  // 2. The paper's 2-PoD topology: 4 ToRs (VIDs 11..14), 4 pod spines,
  //    4 top spines, one server per rack.
  topo::ClosBlueprint blueprint(topo::ClosParams::paper_2pod());

  // 3. Deploy MR-MTP on it and let the meshed trees establish.
  harness::Deployment dep(ctx, blueprint, harness::Proto::kMtp, {});
  dep.start();
  ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(2).ns()));
  std::printf("converged: %s\n\n", dep.converged() ? "yes" : "no");

  // 4. Inspect the VID tables — compare with the paper's Fig. 2 insets.
  for (const char* name : {"S-1-1", "S-1-2", "T-1", "T-4"}) {
    auto& router = dep.mtp(blueprint.device_index(name));
    std::printf("VID table at %s:\n%s\n", name,
                router.vid_table().dump().c_str());
  }

  // 5. Send 1000 sequenced packets from the server under ToR 11 to the
  //    server under ToR 14 and check the receiver's analysis.
  auto& sender = dep.host(0);
  auto& receiver = dep.host(3);
  receiver.listen();
  traffic::FlowConfig flow;
  flow.dst = receiver.addr();
  flow.count = 1000;
  flow.gap = sim::Duration::millis(1);
  sender.start_flow(flow);
  ctx.sched.run_until(ctx.now() + sim::Duration::seconds(2));

  const auto& sink = receiver.sink_stats();
  std::printf("sent %llu, received %llu unique (%llu dup, %llu out-of-order, "
              "%llu lost)\n",
              static_cast<unsigned long long>(sender.packets_sent()),
              static_cast<unsigned long long>(sink.unique_received),
              static_cast<unsigned long long>(sink.duplicates),
              static_cast<unsigned long long>(sink.out_of_order),
              static_cast<unsigned long long>(sink.lost(sender.packets_sent())));

  // 6. The whole fabric was configured from one JSON file (paper Listing 2).
  std::printf("\nMR-MTP configuration for this fabric:\n%s\n",
              blueprint.mtp_config().dump().c_str());
  return 0;
}
