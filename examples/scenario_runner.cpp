// Scenario runner: drive failure experiments from a JSON description and
// emit machine-readable JSON results — the simulator's equivalent of the
// paper's FABRIC automation scripts (§I item list).
//
//   $ ./scenario_runner                 # runs a built-in demo scenario
//   $ ./scenario_runner my.json        # or your own
//
// Scenario schema (all fields optional, defaults in brackets):
// {
//   "topology": {"pods": 2, "torsPerPod": 2, "spinesPerPod": 2,
//                 "topSpines": 4, "clusters": 1, "superSpines": 0},
//   "protocols": ["MR-MTP", "BGP/ECMP", "BGP/ECMP/BFD"],
//   "testCases": ["TC1", "TC4"],
//   "seeds": [1, 2, 3],
//   "reverseFlow": false,
//   "trafficGapUs": 3000
// }
#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness/experiment.hpp"

namespace {

using namespace mrmtp;

const char* kDefaultScenario = R"({
  "topology": {"pods": 2, "torsPerPod": 2, "spinesPerPod": 2, "topSpines": 4},
  "protocols": ["MR-MTP", "BGP/ECMP/BFD"],
  "testCases": ["TC1", "TC2", "TC3", "TC4"],
  "seeds": [1, 2, 3],
  "reverseFlow": false,
  "trafficGapUs": 3000
})";

std::int64_t get_int(const util::Json* obj, std::string_view key,
                     std::int64_t fallback) {
  if (obj == nullptr) return fallback;
  const util::Json* v = obj->find(key);
  return v != nullptr && v->is_number() ? v->as_int() : fallback;
}

harness::Proto parse_proto(const std::string& name) {
  for (harness::Proto p : harness::kAllProtos) {
    if (to_string(p) == name) return p;
  }
  throw util::CodecError("unknown protocol: " + name);
}

topo::TestCase parse_tc(const std::string& name) {
  for (topo::TestCase tc : topo::kAllTestCases) {
    if (to_string(tc) == name) return tc;
  }
  throw util::CodecError("unknown test case: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  std::string text = kDefaultScenario;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }

  util::Json scenario;
  try {
    scenario = util::Json::parse(text);
  } catch (const util::CodecError& e) {
    std::fprintf(stderr, "scenario parse error: %s\n", e.what());
    return 1;
  }

  topo::ClosParams params;
  const util::Json* topo_cfg = scenario.find("topology");
  params.pods = static_cast<std::uint32_t>(get_int(topo_cfg, "pods", 2));
  params.tors_per_pod =
      static_cast<std::uint32_t>(get_int(topo_cfg, "torsPerPod", 2));
  params.spines_per_pod =
      static_cast<std::uint32_t>(get_int(topo_cfg, "spinesPerPod", 2));
  params.top_spines =
      static_cast<std::uint32_t>(get_int(topo_cfg, "topSpines", 4));
  params.clusters = static_cast<std::uint32_t>(get_int(topo_cfg, "clusters", 1));
  params.super_spines =
      static_cast<std::uint32_t>(get_int(topo_cfg, "superSpines", 0));

  std::vector<std::uint64_t> seeds{1, 2, 3};
  if (const util::Json* s = scenario.find("seeds"); s != nullptr && s->is_array()) {
    seeds.clear();
    for (const auto& v : s->as_array()) {
      seeds.push_back(static_cast<std::uint64_t>(v.as_int()));
    }
  }

  util::Json results;
  results["scenario"] = scenario;
  util::JsonArray runs;

  auto run_one = [&](harness::Proto proto, topo::TestCase tc) {
    harness::ExperimentSpec spec;
    spec.topo = params;
    spec.proto = proto;
    spec.tc = tc;
    if (const util::Json* r = scenario.find("reverseFlow"); r && r->is_bool()) {
      spec.reverse_flow = r->as_bool();
    }
    spec.traffic_gap = sim::Duration::micros(
        get_int(&scenario, "trafficGapUs", 3000));
    harness::AveragedResult avg = harness::run_averaged(spec, seeds);

    util::Json row;
    row["protocol"] = std::string(to_string(proto));
    row["testCase"] = std::string(to_string(tc));
    row["convergenceMsMean"] = avg.convergence_ms;
    row["convergenceMsStddev"] = avg.convergence_dist.stddev();
    row["blastRadiusAny"] = avg.blast_any;
    row["blastRadiusRemote"] = avg.blast_remote;
    row["controlBytes"] = avg.ctrl_bytes_raw;
    row["packetsLost"] = avg.packets_lost;
    row["outageMs"] = avg.outage_ms;
    row["runs"] = avg.runs;
    row["convergedRuns"] = avg.converged_runs;
    runs.push_back(std::move(row));
    std::fprintf(stderr, "done: %s %s\n",
                 std::string(to_string(proto)).c_str(),
                 std::string(to_string(tc)).c_str());
  };

  const util::Json* protos = scenario.find("protocols");
  const util::Json* tcs = scenario.find("testCases");
  try {
    for (const auto& pj : protos != nullptr ? protos->as_array()
                                            : util::JsonArray{}) {
      for (const auto& tj : tcs != nullptr ? tcs->as_array()
                                           : util::JsonArray{}) {
        run_one(parse_proto(pj.as_string()), parse_tc(tj.as_string()));
      }
    }
  } catch (const util::CodecError& e) {
    std::fprintf(stderr, "scenario error: %s\n", e.what());
    return 1;
  }

  results["results"] = util::Json(std::move(runs));
  std::printf("%s\n", results.dump().c_str());
  return 0;
}
