file(REMOVE_RECURSE
  "CMakeFiles/mrmtp_bgp.dir/message.cpp.o"
  "CMakeFiles/mrmtp_bgp.dir/message.cpp.o.d"
  "CMakeFiles/mrmtp_bgp.dir/router.cpp.o"
  "CMakeFiles/mrmtp_bgp.dir/router.cpp.o.d"
  "libmrmtp_bgp.a"
  "libmrmtp_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmtp_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
