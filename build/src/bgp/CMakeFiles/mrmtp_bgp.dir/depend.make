# Empty dependencies file for mrmtp_bgp.
# This may be replaced when dependencies are built.
