file(REMOVE_RECURSE
  "libmrmtp_bgp.a"
)
