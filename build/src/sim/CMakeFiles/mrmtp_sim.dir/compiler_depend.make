# Empty compiler generated dependencies file for mrmtp_sim.
# This may be replaced when dependencies are built.
