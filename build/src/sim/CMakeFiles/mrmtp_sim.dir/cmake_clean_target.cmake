file(REMOVE_RECURSE
  "libmrmtp_sim.a"
)
