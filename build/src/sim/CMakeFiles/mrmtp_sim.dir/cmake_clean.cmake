file(REMOVE_RECURSE
  "CMakeFiles/mrmtp_sim.dir/log.cpp.o"
  "CMakeFiles/mrmtp_sim.dir/log.cpp.o.d"
  "CMakeFiles/mrmtp_sim.dir/scheduler.cpp.o"
  "CMakeFiles/mrmtp_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/mrmtp_sim.dir/time.cpp.o"
  "CMakeFiles/mrmtp_sim.dir/time.cpp.o.d"
  "libmrmtp_sim.a"
  "libmrmtp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmtp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
