# Empty dependencies file for mrmtp_bfd.
# This may be replaced when dependencies are built.
