file(REMOVE_RECURSE
  "libmrmtp_bfd.a"
)
