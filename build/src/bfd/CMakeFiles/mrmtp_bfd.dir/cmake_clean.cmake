file(REMOVE_RECURSE
  "CMakeFiles/mrmtp_bfd.dir/bfd.cpp.o"
  "CMakeFiles/mrmtp_bfd.dir/bfd.cpp.o.d"
  "libmrmtp_bfd.a"
  "libmrmtp_bfd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmtp_bfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
