file(REMOVE_RECURSE
  "CMakeFiles/mrmtp_mtp.dir/message.cpp.o"
  "CMakeFiles/mrmtp_mtp.dir/message.cpp.o.d"
  "CMakeFiles/mrmtp_mtp.dir/router.cpp.o"
  "CMakeFiles/mrmtp_mtp.dir/router.cpp.o.d"
  "CMakeFiles/mrmtp_mtp.dir/vid.cpp.o"
  "CMakeFiles/mrmtp_mtp.dir/vid.cpp.o.d"
  "CMakeFiles/mrmtp_mtp.dir/vid_table.cpp.o"
  "CMakeFiles/mrmtp_mtp.dir/vid_table.cpp.o.d"
  "libmrmtp_mtp.a"
  "libmrmtp_mtp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmtp_mtp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
