
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mtp/message.cpp" "src/mtp/CMakeFiles/mrmtp_mtp.dir/message.cpp.o" "gcc" "src/mtp/CMakeFiles/mrmtp_mtp.dir/message.cpp.o.d"
  "/root/repo/src/mtp/router.cpp" "src/mtp/CMakeFiles/mrmtp_mtp.dir/router.cpp.o" "gcc" "src/mtp/CMakeFiles/mrmtp_mtp.dir/router.cpp.o.d"
  "/root/repo/src/mtp/vid.cpp" "src/mtp/CMakeFiles/mrmtp_mtp.dir/vid.cpp.o" "gcc" "src/mtp/CMakeFiles/mrmtp_mtp.dir/vid.cpp.o.d"
  "/root/repo/src/mtp/vid_table.cpp" "src/mtp/CMakeFiles/mrmtp_mtp.dir/vid_table.cpp.o" "gcc" "src/mtp/CMakeFiles/mrmtp_mtp.dir/vid_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ip/CMakeFiles/mrmtp_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mrmtp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mrmtp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrmtp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
