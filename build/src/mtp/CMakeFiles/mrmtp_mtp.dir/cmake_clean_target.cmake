file(REMOVE_RECURSE
  "libmrmtp_mtp.a"
)
