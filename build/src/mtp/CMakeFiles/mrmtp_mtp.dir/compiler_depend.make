# Empty compiler generated dependencies file for mrmtp_mtp.
# This may be replaced when dependencies are built.
