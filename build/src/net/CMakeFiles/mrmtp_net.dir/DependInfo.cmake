
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/frame.cpp" "src/net/CMakeFiles/mrmtp_net.dir/frame.cpp.o" "gcc" "src/net/CMakeFiles/mrmtp_net.dir/frame.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/mrmtp_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/mrmtp_net.dir/link.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/net/CMakeFiles/mrmtp_net.dir/node.cpp.o" "gcc" "src/net/CMakeFiles/mrmtp_net.dir/node.cpp.o.d"
  "/root/repo/src/net/pcap.cpp" "src/net/CMakeFiles/mrmtp_net.dir/pcap.cpp.o" "gcc" "src/net/CMakeFiles/mrmtp_net.dir/pcap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mrmtp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrmtp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
