file(REMOVE_RECURSE
  "CMakeFiles/mrmtp_net.dir/frame.cpp.o"
  "CMakeFiles/mrmtp_net.dir/frame.cpp.o.d"
  "CMakeFiles/mrmtp_net.dir/link.cpp.o"
  "CMakeFiles/mrmtp_net.dir/link.cpp.o.d"
  "CMakeFiles/mrmtp_net.dir/node.cpp.o"
  "CMakeFiles/mrmtp_net.dir/node.cpp.o.d"
  "CMakeFiles/mrmtp_net.dir/pcap.cpp.o"
  "CMakeFiles/mrmtp_net.dir/pcap.cpp.o.d"
  "libmrmtp_net.a"
  "libmrmtp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmtp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
