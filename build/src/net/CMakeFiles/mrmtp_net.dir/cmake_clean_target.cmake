file(REMOVE_RECURSE
  "libmrmtp_net.a"
)
