# Empty dependencies file for mrmtp_net.
# This may be replaced when dependencies are built.
