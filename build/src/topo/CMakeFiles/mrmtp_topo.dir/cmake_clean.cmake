file(REMOVE_RECURSE
  "CMakeFiles/mrmtp_topo.dir/clos.cpp.o"
  "CMakeFiles/mrmtp_topo.dir/clos.cpp.o.d"
  "libmrmtp_topo.a"
  "libmrmtp_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmtp_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
