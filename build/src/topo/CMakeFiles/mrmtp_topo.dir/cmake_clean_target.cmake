file(REMOVE_RECURSE
  "libmrmtp_topo.a"
)
