# Empty dependencies file for mrmtp_topo.
# This may be replaced when dependencies are built.
