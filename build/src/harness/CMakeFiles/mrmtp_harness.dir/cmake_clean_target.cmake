file(REMOVE_RECURSE
  "libmrmtp_harness.a"
)
