file(REMOVE_RECURSE
  "CMakeFiles/mrmtp_harness.dir/deploy.cpp.o"
  "CMakeFiles/mrmtp_harness.dir/deploy.cpp.o.d"
  "CMakeFiles/mrmtp_harness.dir/experiment.cpp.o"
  "CMakeFiles/mrmtp_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/mrmtp_harness.dir/report.cpp.o"
  "CMakeFiles/mrmtp_harness.dir/report.cpp.o.d"
  "CMakeFiles/mrmtp_harness.dir/stats.cpp.o"
  "CMakeFiles/mrmtp_harness.dir/stats.cpp.o.d"
  "libmrmtp_harness.a"
  "libmrmtp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmtp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
