# Empty dependencies file for mrmtp_harness.
# This may be replaced when dependencies are built.
