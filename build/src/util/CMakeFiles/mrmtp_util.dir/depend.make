# Empty dependencies file for mrmtp_util.
# This may be replaced when dependencies are built.
