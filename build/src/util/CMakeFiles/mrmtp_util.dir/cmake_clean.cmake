file(REMOVE_RECURSE
  "CMakeFiles/mrmtp_util.dir/byte_io.cpp.o"
  "CMakeFiles/mrmtp_util.dir/byte_io.cpp.o.d"
  "CMakeFiles/mrmtp_util.dir/json.cpp.o"
  "CMakeFiles/mrmtp_util.dir/json.cpp.o.d"
  "CMakeFiles/mrmtp_util.dir/strings.cpp.o"
  "CMakeFiles/mrmtp_util.dir/strings.cpp.o.d"
  "libmrmtp_util.a"
  "libmrmtp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmtp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
