file(REMOVE_RECURSE
  "libmrmtp_util.a"
)
