file(REMOVE_RECURSE
  "CMakeFiles/mrmtp_ip.dir/addr.cpp.o"
  "CMakeFiles/mrmtp_ip.dir/addr.cpp.o.d"
  "CMakeFiles/mrmtp_ip.dir/packet.cpp.o"
  "CMakeFiles/mrmtp_ip.dir/packet.cpp.o.d"
  "CMakeFiles/mrmtp_ip.dir/route_table.cpp.o"
  "CMakeFiles/mrmtp_ip.dir/route_table.cpp.o.d"
  "libmrmtp_ip.a"
  "libmrmtp_ip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmtp_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
