file(REMOVE_RECURSE
  "libmrmtp_ip.a"
)
