# Empty compiler generated dependencies file for mrmtp_ip.
# This may be replaced when dependencies are built.
