# Empty compiler generated dependencies file for mrmtp_transport.
# This may be replaced when dependencies are built.
