# Empty dependencies file for mrmtp_transport.
# This may be replaced when dependencies are built.
