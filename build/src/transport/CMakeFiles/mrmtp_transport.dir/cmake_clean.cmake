file(REMOVE_RECURSE
  "CMakeFiles/mrmtp_transport.dir/l3_node.cpp.o"
  "CMakeFiles/mrmtp_transport.dir/l3_node.cpp.o.d"
  "CMakeFiles/mrmtp_transport.dir/tcp_lite.cpp.o"
  "CMakeFiles/mrmtp_transport.dir/tcp_lite.cpp.o.d"
  "libmrmtp_transport.a"
  "libmrmtp_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmtp_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
