file(REMOVE_RECURSE
  "libmrmtp_transport.a"
)
