
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/l3_node.cpp" "src/transport/CMakeFiles/mrmtp_transport.dir/l3_node.cpp.o" "gcc" "src/transport/CMakeFiles/mrmtp_transport.dir/l3_node.cpp.o.d"
  "/root/repo/src/transport/tcp_lite.cpp" "src/transport/CMakeFiles/mrmtp_transport.dir/tcp_lite.cpp.o" "gcc" "src/transport/CMakeFiles/mrmtp_transport.dir/tcp_lite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ip/CMakeFiles/mrmtp_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mrmtp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mrmtp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrmtp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
