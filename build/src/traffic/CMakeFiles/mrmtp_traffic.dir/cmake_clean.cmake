file(REMOVE_RECURSE
  "CMakeFiles/mrmtp_traffic.dir/host.cpp.o"
  "CMakeFiles/mrmtp_traffic.dir/host.cpp.o.d"
  "CMakeFiles/mrmtp_traffic.dir/vxlan.cpp.o"
  "CMakeFiles/mrmtp_traffic.dir/vxlan.cpp.o.d"
  "libmrmtp_traffic.a"
  "libmrmtp_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmtp_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
