# Empty compiler generated dependencies file for mrmtp_traffic.
# This may be replaced when dependencies are built.
