file(REMOVE_RECURSE
  "libmrmtp_traffic.a"
)
