# Empty compiler generated dependencies file for bench_listing35_table_size.
# This may be replaced when dependencies are built.
