# Empty dependencies file for bench_ablation_slow_accept.
# This may be replaced when dependencies are built.
