# Empty dependencies file for bench_listing12_configuration.
# This may be replaced when dependencies are built.
