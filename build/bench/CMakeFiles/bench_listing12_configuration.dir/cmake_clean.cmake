file(REMOVE_RECURSE
  "CMakeFiles/bench_listing12_configuration.dir/bench_listing12_configuration.cpp.o"
  "CMakeFiles/bench_listing12_configuration.dir/bench_listing12_configuration.cpp.o.d"
  "bench_listing12_configuration"
  "bench_listing12_configuration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_listing12_configuration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
