# Empty dependencies file for bench_scalability_sweep.
# This may be replaced when dependencies are built.
