file(REMOVE_RECURSE
  "CMakeFiles/bench_scalability_sweep.dir/bench_scalability_sweep.cpp.o"
  "CMakeFiles/bench_scalability_sweep.dir/bench_scalability_sweep.cpp.o.d"
  "bench_scalability_sweep"
  "bench_scalability_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scalability_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
