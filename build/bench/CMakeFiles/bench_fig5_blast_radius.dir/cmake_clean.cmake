file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_blast_radius.dir/bench_fig5_blast_radius.cpp.o"
  "CMakeFiles/bench_fig5_blast_radius.dir/bench_fig5_blast_radius.cpp.o.d"
  "bench_fig5_blast_radius"
  "bench_fig5_blast_radius.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_blast_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
