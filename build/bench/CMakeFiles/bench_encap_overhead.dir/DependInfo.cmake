
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_encap_overhead.cpp" "bench/CMakeFiles/bench_encap_overhead.dir/bench_encap_overhead.cpp.o" "gcc" "bench/CMakeFiles/bench_encap_overhead.dir/bench_encap_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/mrmtp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/mrmtp_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/bfd/CMakeFiles/mrmtp_bfd.dir/DependInfo.cmake"
  "/root/repo/build/src/mtp/CMakeFiles/mrmtp_mtp.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mrmtp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/mrmtp_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/mrmtp_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/ip/CMakeFiles/mrmtp_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mrmtp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mrmtp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrmtp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
