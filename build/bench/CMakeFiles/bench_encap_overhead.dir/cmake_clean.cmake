file(REMOVE_RECURSE
  "CMakeFiles/bench_encap_overhead.dir/bench_encap_overhead.cpp.o"
  "CMakeFiles/bench_encap_overhead.dir/bench_encap_overhead.cpp.o.d"
  "bench_encap_overhead"
  "bench_encap_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_encap_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
