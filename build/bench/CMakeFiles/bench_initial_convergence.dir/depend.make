# Empty dependencies file for bench_initial_convergence.
# This may be replaced when dependencies are built.
