file(REMOVE_RECURSE
  "CMakeFiles/bench_initial_convergence.dir/bench_initial_convergence.cpp.o"
  "CMakeFiles/bench_initial_convergence.dir/bench_initial_convergence.cpp.o.d"
  "bench_initial_convergence"
  "bench_initial_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_initial_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
