file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_loss_sender_far.dir/bench_fig8_loss_sender_far.cpp.o"
  "CMakeFiles/bench_fig8_loss_sender_far.dir/bench_fig8_loss_sender_far.cpp.o.d"
  "bench_fig8_loss_sender_far"
  "bench_fig8_loss_sender_far.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_loss_sender_far.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
