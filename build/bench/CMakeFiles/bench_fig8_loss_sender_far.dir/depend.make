# Empty dependencies file for bench_fig8_loss_sender_far.
# This may be replaced when dependencies are built.
