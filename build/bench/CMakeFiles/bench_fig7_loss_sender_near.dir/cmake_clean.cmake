file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_loss_sender_near.dir/bench_fig7_loss_sender_near.cpp.o"
  "CMakeFiles/bench_fig7_loss_sender_near.dir/bench_fig7_loss_sender_near.cpp.o.d"
  "bench_fig7_loss_sender_near"
  "bench_fig7_loss_sender_near.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_loss_sender_near.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
