# Empty dependencies file for bench_fig7_loss_sender_near.
# This may be replaced when dependencies are built.
