# Empty dependencies file for bench_fig9_keepalive_overhead.
# This may be replaced when dependencies are built.
