file(REMOVE_RECURSE
  "CMakeFiles/bench_incast_queues.dir/bench_incast_queues.cpp.o"
  "CMakeFiles/bench_incast_queues.dir/bench_incast_queues.cpp.o.d"
  "bench_incast_queues"
  "bench_incast_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incast_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
