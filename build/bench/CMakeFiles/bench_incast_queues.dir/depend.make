# Empty dependencies file for bench_incast_queues.
# This may be replaced when dependencies are built.
