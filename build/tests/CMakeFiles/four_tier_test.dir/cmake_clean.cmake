file(REMOVE_RECURSE
  "CMakeFiles/four_tier_test.dir/four_tier_test.cpp.o"
  "CMakeFiles/four_tier_test.dir/four_tier_test.cpp.o.d"
  "four_tier_test"
  "four_tier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/four_tier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
