# Empty compiler generated dependencies file for four_tier_test.
# This may be replaced when dependencies are built.
