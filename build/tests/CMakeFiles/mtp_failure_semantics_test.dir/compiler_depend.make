# Empty compiler generated dependencies file for mtp_failure_semantics_test.
# This may be replaced when dependencies are built.
