file(REMOVE_RECURSE
  "CMakeFiles/mtp_failure_semantics_test.dir/mtp_failure_semantics_test.cpp.o"
  "CMakeFiles/mtp_failure_semantics_test.dir/mtp_failure_semantics_test.cpp.o.d"
  "mtp_failure_semantics_test"
  "mtp_failure_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtp_failure_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
