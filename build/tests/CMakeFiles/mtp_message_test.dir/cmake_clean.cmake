file(REMOVE_RECURSE
  "CMakeFiles/mtp_message_test.dir/mtp_message_test.cpp.o"
  "CMakeFiles/mtp_message_test.dir/mtp_message_test.cpp.o.d"
  "mtp_message_test"
  "mtp_message_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtp_message_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
