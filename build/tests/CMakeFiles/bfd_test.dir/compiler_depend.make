# Empty compiler generated dependencies file for bfd_test.
# This may be replaced when dependencies are built.
