file(REMOVE_RECURSE
  "CMakeFiles/bfd_test.dir/bfd_test.cpp.o"
  "CMakeFiles/bfd_test.dir/bfd_test.cpp.o.d"
  "bfd_test"
  "bfd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
