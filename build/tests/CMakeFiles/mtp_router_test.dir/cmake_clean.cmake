file(REMOVE_RECURSE
  "CMakeFiles/mtp_router_test.dir/mtp_router_test.cpp.o"
  "CMakeFiles/mtp_router_test.dir/mtp_router_test.cpp.o.d"
  "mtp_router_test"
  "mtp_router_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtp_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
