file(REMOVE_RECURSE
  "CMakeFiles/mtp_vid_test.dir/mtp_vid_test.cpp.o"
  "CMakeFiles/mtp_vid_test.dir/mtp_vid_test.cpp.o.d"
  "mtp_vid_test"
  "mtp_vid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtp_vid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
