# Empty dependencies file for mtp_vid_test.
# This may be replaced when dependencies are built.
