file(REMOVE_RECURSE
  "CMakeFiles/integration_mtp_test.dir/integration_mtp_test.cpp.o"
  "CMakeFiles/integration_mtp_test.dir/integration_mtp_test.cpp.o.d"
  "integration_mtp_test"
  "integration_mtp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_mtp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
