file(REMOVE_RECURSE
  "CMakeFiles/vxlan_test.dir/vxlan_test.cpp.o"
  "CMakeFiles/vxlan_test.dir/vxlan_test.cpp.o.d"
  "vxlan_test"
  "vxlan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vxlan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
