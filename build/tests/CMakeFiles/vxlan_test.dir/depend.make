# Empty dependencies file for vxlan_test.
# This may be replaced when dependencies are built.
