file(REMOVE_RECURSE
  "CMakeFiles/extended_failures_test.dir/extended_failures_test.cpp.o"
  "CMakeFiles/extended_failures_test.dir/extended_failures_test.cpp.o.d"
  "extended_failures_test"
  "extended_failures_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_failures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
