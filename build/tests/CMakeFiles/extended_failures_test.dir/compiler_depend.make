# Empty compiler generated dependencies file for extended_failures_test.
# This may be replaced when dependencies are built.
