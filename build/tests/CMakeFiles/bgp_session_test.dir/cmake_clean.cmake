file(REMOVE_RECURSE
  "CMakeFiles/bgp_session_test.dir/bgp_session_test.cpp.o"
  "CMakeFiles/bgp_session_test.dir/bgp_session_test.cpp.o.d"
  "bgp_session_test"
  "bgp_session_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
