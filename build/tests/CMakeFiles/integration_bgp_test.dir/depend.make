# Empty dependencies file for integration_bgp_test.
# This may be replaced when dependencies are built.
