file(REMOVE_RECURSE
  "CMakeFiles/integration_bgp_test.dir/integration_bgp_test.cpp.o"
  "CMakeFiles/integration_bgp_test.dir/integration_bgp_test.cpp.o.d"
  "integration_bgp_test"
  "integration_bgp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_bgp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
