# Empty dependencies file for vxlan_tenants.
# This may be replaced when dependencies are built.
