file(REMOVE_RECURSE
  "CMakeFiles/vxlan_tenants.dir/vxlan_tenants.cpp.o"
  "CMakeFiles/vxlan_tenants.dir/vxlan_tenants.cpp.o.d"
  "vxlan_tenants"
  "vxlan_tenants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vxlan_tenants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
