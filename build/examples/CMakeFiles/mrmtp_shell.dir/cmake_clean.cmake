file(REMOVE_RECURSE
  "CMakeFiles/mrmtp_shell.dir/mrmtp_shell.cpp.o"
  "CMakeFiles/mrmtp_shell.dir/mrmtp_shell.cpp.o.d"
  "mrmtp_shell"
  "mrmtp_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmtp_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
