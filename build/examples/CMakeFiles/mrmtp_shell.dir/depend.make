# Empty dependencies file for mrmtp_shell.
# This may be replaced when dependencies are built.
