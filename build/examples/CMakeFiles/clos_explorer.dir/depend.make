# Empty dependencies file for clos_explorer.
# This may be replaced when dependencies are built.
