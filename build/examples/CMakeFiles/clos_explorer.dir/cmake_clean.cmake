file(REMOVE_RECURSE
  "CMakeFiles/clos_explorer.dir/clos_explorer.cpp.o"
  "CMakeFiles/clos_explorer.dir/clos_explorer.cpp.o.d"
  "clos_explorer"
  "clos_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clos_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
