# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(shell_smoke "sh" "-c" "printf 'start
run 2000
converged
tc TC1
run 1000
traffic 0 3 100 500
quit
' | /root/repo/build/examples/mrmtp_shell | grep -q 'converged: yes'")
set_tests_properties(shell_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
