#!/usr/bin/env bash
# One-stop pre-merge check: the tier-1 configure/build/ctest cycle plus the
# fully instrumented ASan+UBSan preset, a TSan pass over the buffer/scheduler
# tests, and the steady-state allocation gate (the buffer pool's own counters
# must show zero slab allocations and zero payload copies across a pure
# forwarding window). Run from anywhere; the build trees live under the repo
# root (build/, build-asan/, build-tsan/).
#
#   scripts/check.sh            # tier-1 + sanitizers + allocation gate
#   scripts/check.sh --tier1    # tier-1 only (fast loop)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

jobs="$(nproc 2>/dev/null || echo 4)"
tier1_only=false
[[ "${1:-}" == "--tier1" ]] && tier1_only=true

echo "== tier-1: configure + build + ctest (build/) =="
cmake --preset default
cmake --build --preset default -j "$jobs"
ctest --preset default -j "$jobs"

echo
echo "== steady-state allocation gate (bench_buffer_pipeline) =="
(cd build && ./bench/bench_buffer_pipeline > /dev/null)
for key in slab_allocs oversize_allocs prepend_copies bytes_copied; do
  val="$(grep -o "\"$key\": [0-9-]*" build/BENCH_buffer.json | head -1 \
         | awk '{print $2}')"
  if [[ "$val" != "0" ]]; then
    echo "FAIL: steady-state window reports $key=$val (expected 0) —" \
         "a payload path regressed to heap allocation or copying."
    exit 1
  fi
  echo "  $key=0 ok"
done

if ! $tier1_only; then
  echo
  echo "== asan-ubsan: whole tree instrumented (build-asan/) =="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$jobs"
  ctest --preset asan-ubsan -j "$jobs"

  echo
  echo "== tsan: buffer + scheduler tests (build-tsan/) =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs" \
    --target buffer_test sim_test net_test util_test
  ctest --test-dir build-tsan -R '^(buffer_test|sim_test|net_test|util_test)$' \
    --output-on-failure -j "$jobs"
fi

echo
echo "All checks passed."
