#!/usr/bin/env bash
# One-stop pre-merge check: the tier-1 configure/build/ctest cycle plus the
# fully instrumented ASan+UBSan preset, a TSan pass over the buffer/scheduler
# tests, the steady-state allocation gate (the buffer pool's own counters
# must show zero slab allocations and zero payload copies across a pure
# forwarding window), the overload-cascade gate (BGP under a shared FIFO
# must falsely declare healthy neighbors dead during an incast; priority
# queues must drop that to exactly zero without costing steady-state event
# throughput), and the lifecycle gate (rolling upgrades must leak zero
# auditor violations outside their declared windows, drained routers must
# stay violation-free, and MR-MTP's disruption budget must not exceed
# BGP+BFD's), and the workload gate (under a production flow mix with a
# mid-campaign link failure, MR-MTP's p99 flow completion time must not
# exceed BGP/ECMP's, and it must strand no more flows), and the
# buffer-occupancy gate (finite switch pools under a 64:1 incast: ECN+PFC
# must beat tail-drop on p99 FCT and stranded flows, the control band must
# stay lossless at full data occupancy, and the auditor must report zero
# PFC deadlocks, chaos row included), and the wcmp gate (on the 2:1
# oversubscribed fabric capacity-weighted hashing must not lose to plain
# HRW on p99 FCT or stranded flows, flowlet switching must keep max_gap
# bounded, and the weighted pick must cost < 5% events/sec). Run from
# anywhere;
# the build trees live under the repo root (build/, build-asan/,
# build-tsan/).
#
#   scripts/check.sh            # tier-1 + sanitizers + both bench gates
#   scripts/check.sh --tier1    # tier-1 only (fast loop)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

jobs="$(nproc 2>/dev/null || echo 4)"
tier1_only=false
[[ "${1:-}" == "--tier1" ]] && tier1_only=true

echo "== tier-1: configure + build + ctest (build/) =="
cmake --preset default
cmake --build --preset default -j "$jobs"
ctest --preset default -j "$jobs"

echo
echo "== steady-state allocation gate (bench_buffer_pipeline) =="
(cd build && ./bench/bench_buffer_pipeline > /dev/null)
for key in slab_allocs oversize_allocs prepend_copies bytes_copied; do
  val="$(grep -o "\"$key\": [0-9-]*" build/BENCH_buffer.json | head -1 \
         | awk '{print $2}')"
  if [[ "$val" != "0" ]]; then
    echo "FAIL: steady-state window reports $key=$val (expected 0) —" \
         "a payload path regressed to heap allocation or copying."
    exit 1
  fi
  echo "  $key=0 ok"
done

if ! $tier1_only; then
  echo
  echo "== overload-cascade gate (bench_overload_cascade) =="
  (cd build && ./bench/bench_overload_cascade > /dev/null)
  gate() {  # gate <flat-json-key> -> value (from the "gates" object)
    grep -o "\"$1\": [0-9.]*" build/BENCH_overload.json | head -1 \
      | awk '{print $2}'
  }
  shared_fd="$(gate bgp_shared_false_dead)"
  if [[ "$shared_fd" -lt 1 ]]; then
    echo "FAIL: shared-FIFO BGP shows no false dead declarations" \
         "($shared_fd) — the incast no longer reproduces the cascade."
    exit 1
  fi
  echo "  bgp_shared_false_dead=$shared_fd (>0) ok"
  for key in bgp_priority_false_dead mtp_shared_false_dead \
             mtp_priority_false_dead; do
    val="$(gate "$key")"
    if [[ "$val" != "0" ]]; then
      echo "FAIL: $key=$val (expected 0) — a healthy neighbor was declared" \
           "dead despite control-plane protection."
      exit 1
    fi
    echo "  $key=0 ok"
  done
  # Priority queues must not slow the simulator. Gate on the same-run
  # priority/shared ratio rather than an absolute reference-machine floor:
  # shared containers throttle by 20%+ run to run with zero code change,
  # which makes absolute ev/s constants false-fail, while a real per-event
  # cost in the priority path still shows up against the shared-FIFO
  # control measured seconds earlier in the same process. Reference
  # machine: 3.74M priority / 3.69M shared (ratio 1.01). Even that
  # same-run ratio jitters by +-15% on 1-core CI containers (measured at
  # unchanged code: 0.82..1.18 across runs), so a single sub-0.95 sample
  # proves nothing — the gate takes the best of up to 3 bench runs, and a
  # real regression must lose all three to slip through.
  attempts=3
  for try in $(seq 1 "$attempts"); do
    ev="$(gate events_per_sec_priority)"
    ev_shared="$(gate events_per_sec_shared)"
    if awk -v p="$ev" -v s="$ev_shared" 'BEGIN { exit !(p >= s * 0.95) }'; then
      break
    fi
    if [[ "$try" -eq "$attempts" ]]; then
      echo "FAIL: priority-mode steady state at $ev events/sec — more than" \
           "5% below the same-run shared-FIFO control ($ev_shared) in" \
           "$attempts consecutive runs."
      exit 1
    fi
    echo "  retry $try/$attempts: ratio $ev/$ev_shared below 0.95," \
         "re-measuring"
    (cd build && ./bench/bench_overload_cascade > /dev/null)
  done
  echo "  events_per_sec_priority=$ev vs shared=$ev_shared (ratio >= 0.95) ok"

  echo
  echo "== parallel-engine gate (bench_parallel_sweep) =="
  (cd build && ./bench/bench_parallel_sweep > /dev/null)
  pgate() {  # pgate <topology> <threads> <key> -> value of that sweep point
    # NB: the script must come via the heredoc alone — a second stdin
    # redirection (`< file`) would override it and python would "run" the
    # JSON (a valid dict literal) as the script, silently printing nothing.
    python3 - "$1" "$2" "$3" <<'EOF'
import json, sys
doc = json.load(open("build/BENCH_parallel.json"))
topo, threads, key = sys.argv[1], int(sys.argv[2]), sys.argv[3]
for p in doc["points"]:
    if p["topology"] == topo and p["threads"] == threads \
       and p["protocol"] == "MR-MTP":
        print(p[key]); break
EOF
  }
  # 1-thread runs ride the classic single-context engine verbatim, so their
  # throughput must track the overload bench's shared-FIFO steady state
  # measured earlier in this same check run (both are the plain event core;
  # reference machine has them within 2% of each other). On throttled
  # 1-core CI containers that cross-bench ratio is NOT tight: measured at
  # unchanged code, back-to-back runs span 0.56..0.90 because the long
  # sweep heats the container mid-run. So this gate is a catastrophic-
  # regression backstop only (best of 3 runs must clear 0.50x); the
  # precise perf contracts live in the overload bench's same-process
  # priority/shared ratio above and the multicore speedup gate below.
  attempts=3
  for try in $(seq 1 "$attempts"); do
    base_eps="$(pgate 16-PoD 1 events_per_sec)"
    if awk -v ev="$base_eps" -v ref="$ev_shared" \
         'BEGIN { exit !(ev >= ref * 0.50) }'; then
      break
    fi
    if [[ "$try" -eq "$attempts" ]]; then
      echo "FAIL: 1-thread (classic engine) at $base_eps events/sec —" \
           "less than half the same-run shared-FIFO steady state" \
           "($ev_shared) in $attempts consecutive runs."
      exit 1
    fi
    echo "  retry $try/$attempts: $base_eps below 0.50x $ev_shared," \
         "re-measuring"
    (cd build && ./bench/bench_parallel_sweep > /dev/null)
  done
  echo "  16-PoD 1-thread events_per_sec=$base_eps (>= 0.50x $ev_shared) ok"
  # The speedup gate needs real cores; a 1- or 2-core host can only measure
  # overhead, so it is skipped (the artifact still records the sweep).
  if [[ "$jobs" -ge 4 ]]; then
    speedup="$(pgate 16-PoD 4 speedup_vs_1)"
    if ! awk -v s="$speedup" 'BEGIN { exit !(s >= 2.5) }'; then
      echo "FAIL: 4-thread speedup on 16-PoD is ${speedup}x (< 2.5x)."
      exit 1
    fi
    echo "  16-PoD 4-thread speedup=${speedup}x (>= 2.5x) ok"
  else
    echo "  skipping 4-thread speedup gate: only $jobs hardware thread(s)"
  fi
  # Barrier-elision gate: the async engine must coordinate through detection
  # rendezvous only, not per-advance lock-step windows. The lock-step
  # engine's committed baseline for the 4-shard 8-PoD MR-MTP chaos run was
  # sync_windows=21455; the async engine needs a handful of detection
  # rounds, so gate at a >= 10x reduction (<= 2145). sync_windows counts
  # rendezvous, not wall time, so the gate holds on any host — thread
  # timing moves it by single digits, not orders of magnitude.
  windows="$(pgate 8-PoD 4 sync_windows)"
  coalesced="$(pgate 8-PoD 4 coalesced_windows)"
  if [[ -z "$windows" || -z "$coalesced" ]]; then
    echo "FAIL: 8-PoD 4-thread sync_windows/coalesced_windows missing from" \
         "BENCH_parallel.json — the async-engine telemetry regressed."
    exit 1
  fi
  if [[ "$windows" -gt 2145 ]]; then
    echo "FAIL: 8-PoD 4-thread run used $windows sync windows — less than a" \
         "10x reduction over the lock-step baseline (21455)."
    exit 1
  fi
  echo "  8-PoD 4-thread sync_windows=$windows (<= 2145, baseline 21455) ok"
  echo "  8-PoD 4-thread coalesced_windows=$coalesced recorded ok"

  echo
  echo "== lifecycle gate (bench_lifecycle) =="
  (cd build && ./bench/bench_lifecycle > /dev/null)
  python3 - <<'EOF'
import json, sys
doc = json.load(open("build/BENCH_lifecycle.json"))
fails = []
budgets = {}
for s in doc["scenarios"]:
    label = f'{s["scenario"]}/{s["topology"]}/{s["protocol"]}'
    if not s.get("final_converged", True):
        fails.append(f"{label}: fabric did not re-converge")
    if s["protocol"] == "MR-MTP":
        if s.get("out_of_window_violations", 0) != 0:
            fails.append(f"{label}: auditor violations leaked outside the "
                         f"declared windows ({s['out_of_window_violations']})")
        if s.get("drain_violations", 0) != 0:
            fails.append(f"{label}: violations attributed to a draining "
                         f"router ({s['drain_violations']})")
    if s["scenario"] == "rolling_upgrade_all_spines":
        budgets[(s["topology"], s["protocol"])] = s["disruption_budget"]
    if s["scenario"] == "misconfig_duplicate_subnet":
        if s.get("duplicates_rejected", 0) < 1:
            fails.append(f"{label}: the duplicate rack subnet was not "
                         "rejected by any router")
        if s.get("sweep_violations", 1) != 0:
            fails.append(f"{label}: duplicate root leaked into other trees")
    if s["scenario"] == "misconfig_miswired_stripe":
        if s.get("miswired_links", 0) < 1:
            fails.append(f"{label}: the seeded miswiring vanished")
for topo in {t for (t, _) in budgets}:
    mtp, bgp = budgets.get((topo, "MR-MTP")), budgets.get((topo, "BGP/ECMP/BFD"))
    if mtp is None or bgp is None:
        fails.append(f"{topo}: missing a rolling-upgrade protocol row")
    elif mtp > bgp:
        fails.append(f"{topo}: MR-MTP disruption budget {mtp} exceeds "
                     f"BGP+BFD's {bgp}")
    else:
        print(f"  {topo}: disruption budget MR-MTP {mtp} <= BGP+BFD {bgp} ok")
if fails:
    for f in fails: print("FAIL:", f)
    sys.exit(1)
print("  zero out-of-window and zero drain violations for MR-MTP ok")
print("  misconfiguration suite contained ok")
EOF

  echo
  echo "== workload gate (bench_workload_sweep) =="
  # Pure simulated-time metrics: deterministic on any host, no perf retries.
  (cd build && ./bench/bench_workload_sweep > /dev/null)
  python3 - <<'EOF'
import json, sys
doc = json.load(open("build/BENCH_workload.json"))
points = doc["points"]
fails = []
def pick(**kv):
    for p in points:
        if all(p.get(k) == v for k, v in kv.items()):
            return p
    return None
for topo in ("8-PoD", "8-PoD-asym"):
    mtp = pick(topology=topo, protocol="MR-MTP", scenario="random_pairs",
               load=0.5, failure=True)
    bgp = pick(topology=topo, protocol="BGP/ECMP", scenario="random_pairs",
               load=0.5, failure=True)
    if mtp is None or bgp is None:
        fails.append(f"{topo}: missing the 50%-load failure rows")
        continue
    if not (mtp["initial_converged"] and bgp["initial_converged"]):
        fails.append(f"{topo}: fabric failed to converge before launch")
    if mtp["fct_p99_ms"] > bgp["fct_p99_ms"]:
        fails.append(f'{topo}: MR-MTP p99 FCT {mtp["fct_p99_ms"]:.1f} ms '
                     f'exceeds BGP/ECMP {bgp["fct_p99_ms"]:.1f} ms under '
                     "failure at 50% load")
    if mtp["flows_incomplete"] > bgp["flows_incomplete"]:
        fails.append(f'{topo}: MR-MTP strands {mtp["flows_incomplete"]} '
                     f'flows vs BGP/ECMP {bgp["flows_incomplete"]}')
    print(f'  {topo}: p99 FCT MR-MTP {mtp["fct_p99_ms"]:.1f} ms <= '
          f'BGP/ECMP {bgp["fct_p99_ms"]:.1f} ms, incomplete '
          f'{mtp["flows_incomplete"]} <= {bgp["flows_incomplete"]} ok')
for scenario in ("incast", "all_to_all"):
    row = pick(scenario=scenario, protocol="MR-MTP")
    if row is None or row["flows_completed"] < 1:
        fails.append(f"{scenario}: scenario row missing or completed no flows")
    else:
        print(f'  {scenario}: {row["flows_completed"]} flows completed ok')
if fails:
    for f in fails: print("FAIL:", f)
    sys.exit(1)
EOF

  echo
  echo "== buffer-occupancy gate (bench_buffer_occupancy) =="
  # Finite-buffer congestion containment, all simulated-time deterministic:
  # ECN+PFC must beat commodity tail-drop on p99 FCT and stranded flows at
  # the 64:1 incast, tail-drop must genuinely fill a pool (~100% occupancy)
  # while the control band stays lossless, and the auditor must report zero
  # PFC deadlocks on every point including the seeded chaos-squeeze row.
  (cd build && ./bench/bench_buffer_occupancy > /dev/null)
  python3 - <<'EOF'
import json, sys
doc = json.load(open("build/BENCH_buffer_occupancy.json"))
points = doc["points"]
fails = []
def pick(**kv):
    for p in points:
        if all(p.get(k) == v for k, v in kv.items()):
            return p
    return None
for proto in ("MR-MTP", "BGP/ECMP"):
    td = pick(protocol=proto, mode="taildrop", fanin=64, pool_kib=256)
    ecn = pick(protocol=proto, mode="ecn_pfc", fanin=64, pool_kib=256,
               chaos=False)
    if td is None or ecn is None:
        fails.append(f"{proto}: missing the 64:1 taildrop/ecn_pfc pair")
        continue
    if not (td["initial_converged"] and ecn["initial_converged"]):
        fails.append(f"{proto}: fabric failed to converge before launch")
    if ecn["fct_p99_ms"] > td["fct_p99_ms"]:
        fails.append(f'{proto}: ECN+PFC p99 FCT {ecn["fct_p99_ms"]:.1f} ms '
                     f'exceeds tail-drop {td["fct_p99_ms"]:.1f} ms at 64:1')
    if ecn["flows_incomplete"] > td["flows_incomplete"]:
        fails.append(f'{proto}: ECN+PFC strands {ecn["flows_incomplete"]} '
                     f'flows vs tail-drop {td["flows_incomplete"]}')
    # Congestion collapse must be reproduced, not dodged: the tail-drop pool
    # fills to within one max-size frame of 100% and refuses admissions...
    if td["occupancy_hw_ratio"] < 0.95:
        fails.append(f'{proto}: tail-drop occupancy high-water '
                     f'{td["occupancy_hw_ratio"]:.3f} never filled the pool')
    if td["buffer_drops"] < 1:
        fails.append(f"{proto}: tail-drop run shows no buffer drops")
    # ...and the relief valves actually engaged on the protected run.
    if ecn["ecn_marked"] < 1 or ecn["pause_tx"] < 1:
        fails.append(f"{proto}: ECN+PFC run shows no CE marks/PAUSE frames")
    print(f'  {proto}: p99 ECN+PFC {ecn["fct_p99_ms"]:.1f} ms <= tail-drop '
          f'{td["fct_p99_ms"]:.1f} ms, stranded {ecn["flows_incomplete"]} '
          f'<= {td["flows_incomplete"]}, tail-drop occ_hw '
          f'{td["occupancy_hw_ratio"]:.3f} ok')
for p in points:
    label = f'{p["protocol"]}/{p["mode"]}/{p["fanin"]}:1/{p["pool_kib"]}KiB'
    # Graceful degradation: control band is never pool-charged, so data
    # congestion — even a 100%-full pool — must never drop control frames.
    if p["ctrl_queue_drops"] != 0:
        fails.append(f'{label}: {p["ctrl_queue_drops"]} control-band drops')
    if p["pfc_deadlocks"] != 0:
        fails.append(f'{label}: auditor reports {p["pfc_deadlocks"]} PFC '
                     "deadlocks")
chaos = pick(chaos=True)
if chaos is None:
    fails.append("missing the seeded chaos-squeeze row")
else:
    print(f'  chaos row: {chaos["flows_completed"]} flows completed under '
          f'pool squeezes, {chaos["pfc_deadlocks"]} deadlocks ok')
print("  control band lossless and zero PFC deadlocks on all "
      f"{len(points)} points ok")
if fails:
    for f in fails: print("FAIL:", f)
    sys.exit(1)
EOF

  echo
  echo "== wcmp gate (bench_wcmp_sweep) =="
  # FCT/ordering checks are simulated-time deterministic; the events/sec
  # ratio compares the wcmp+flowlet run against the plain-hrw control from
  # the SAME bench process, so it survives throttled containers — but it
  # still jitters, so like the other perf gates it takes the best of up to
  # 3 runs.
  (cd build && ./bench/bench_wcmp_sweep > /dev/null)
  python3 - <<'EOF'
import json, sys
doc = json.load(open("build/BENCH_wcmp.json"))
points = doc["points"]
fails = []
def pick(**kv):
    for p in points:
        if all(p.get(k) == v for k, v in kv.items()):
            return p
    return None
for proto in ("MR-MTP", "BGP/ECMP"):
    rows = {m: pick(topology="8-PoD-asym-2:1", protocol=proto, path_select=m)
            for m in ("hrw", "wcmp", "wcmp+flowlet")}
    if any(r is None for r in rows.values()):
        fails.append(f"{proto}: missing asymmetric-fabric mode rows")
        continue
    if any(not r["initial_converged"] for r in rows.values()):
        fails.append(f"{proto}: fabric failed to converge before launch")
    hrw = rows["hrw"]
    # The tentpole claim: capacity-weighted hashing must not make the tail
    # worse on the fabric whose uplinks it was built for, and flowlets must
    # not strand flows the baseline delivered.
    for m in ("wcmp", "wcmp+flowlet"):
        if rows[m]["fct_p99_ms"] > hrw["fct_p99_ms"]:
            fails.append(f'{proto}/{m}: p99 FCT {rows[m]["fct_p99_ms"]:.1f} '
                         f'ms exceeds plain hrw {hrw["fct_p99_ms"]:.1f} ms '
                         "on the 2:1 oversubscribed fabric")
        if rows[m]["flows_incomplete"] > hrw["flows_incomplete"]:
            fails.append(f'{proto}/{m}: strands {rows[m]["flows_incomplete"]}'
                         f' flows vs hrw {hrw["flows_incomplete"]}')
    # Flowlet reordering guard: switching paths only across idle gaps must
    # keep the worst per-flow inter-arrival gap in the same regime as the
    # baseline (2x headroom for quantile noise), never blow it up.
    fl = rows["wcmp+flowlet"]
    if fl["max_gap_ms"] > max(2.0 * hrw["max_gap_ms"], 1.0):
        fails.append(f'{proto}/wcmp+flowlet: max_gap {fl["max_gap_ms"]:.1f} '
                     f'ms vs hrw {hrw["max_gap_ms"]:.1f} ms — rerouting '
                     "inside open flowlets")
    print(f'  asym {proto}: p99 hrw {hrw["fct_p99_ms"]:.1f} / wcmp '
          f'{rows["wcmp"]["fct_p99_ms"]:.1f} / +flowlet '
          f'{fl["fct_p99_ms"]:.1f} ms, stranded {hrw["flows_incomplete"]}/'
          f'{rows["wcmp"]["flows_incomplete"]}/{fl["flows_incomplete"]}, '
          f'reroutes {fl["flowlet_reroutes"]} ok')
    if fl["wcmp_weight_updates"] < 1:
        fails.append(f"{proto}: wcmp+flowlet run installed no weights — the "
                     "asymmetric stripe never reached the routers")
if fails:
    for f in fails: print("FAIL:", f)
    sys.exit(1)
EOF
  # Weighted picking is O(n) like the unweighted pick: the wcmp+flowlet run
  # must keep events/sec within 5% of the same-process hrw control.
  wgate() {  # wgate <path_select> -> events_per_sec of the MR-MTP asym row
    python3 - "$1" <<'EOF'
import json, sys
doc = json.load(open("build/BENCH_wcmp.json"))
for p in doc["points"]:
    if p["topology"] == "8-PoD-asym-2:1" and p["protocol"] == "MR-MTP" \
       and p["path_select"] == sys.argv[1]:
        print(p["events_per_sec"]); break
EOF
  }
  attempts=3
  for try in $(seq 1 "$attempts"); do
    ev_hrw="$(wgate hrw)"
    ev_fl="$(wgate "wcmp+flowlet")"
    if awk -v f="$ev_fl" -v h="$ev_hrw" 'BEGIN { exit !(f >= h * 0.95) }'; then
      break
    fi
    if [[ "$try" -eq "$attempts" ]]; then
      echo "FAIL: wcmp+flowlet steady state at $ev_fl events/sec — more" \
           "than 5% below the same-run hrw control ($ev_hrw) in" \
           "$attempts consecutive runs."
      exit 1
    fi
    echo "  retry $try/$attempts: ratio $ev_fl/$ev_hrw below 0.95," \
         "re-measuring"
    (cd build && ./bench/bench_wcmp_sweep > /dev/null)
  done
  echo "  events_per_sec wcmp+flowlet=$ev_fl vs hrw=$ev_hrw (>= 0.95) ok"

  echo
  echo "== campaign seeds stamped into every bench artifact =="
  for f in build/BENCH_*.json; do
    if ! grep -q '"campaign_seeds"' "$f"; then
      echo "FAIL: $f lacks the campaign_seeds stamp (bench_common.hpp" \
           "stamp_campaign was bypassed)."
      exit 1
    fi
    echo "  $(basename "$f") stamped ok"
  done

  echo
  echo "== asan-ubsan: whole tree instrumented (build-asan/) =="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$jobs"
  ctest --preset asan-ubsan -j "$jobs"

  echo
  echo "== tsan: buffer + scheduler + parallel + lifecycle tests (build-tsan/) =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs" \
    --target buffer_test sim_test net_test util_test overload_damping_test \
             parallel_engine_test lifecycle_test \
             calendar_queue_property_test buffer_backpressure_test \
             wcmp_flowlet_test
  ctest --test-dir build-tsan \
    -R '^(buffer_test|sim_test|net_test|util_test|overload_damping_test|parallel_engine_test|lifecycle_test|calendar_queue_property_test|buffer_backpressure_test|wcmp_flowlet_test)$' \
    --output-on-failure -j "$jobs"
fi

echo
echo "All checks passed."
