#!/usr/bin/env bash
# One-stop pre-merge check: the tier-1 configure/build/ctest cycle plus the
# fully instrumented ASan+UBSan preset, a TSan pass over the buffer/scheduler
# tests, the steady-state allocation gate (the buffer pool's own counters
# must show zero slab allocations and zero payload copies across a pure
# forwarding window), and the overload-cascade gate (BGP under a shared FIFO
# must falsely declare healthy neighbors dead during an incast; priority
# queues must drop that to exactly zero without costing steady-state event
# throughput). Run from anywhere; the build trees live under the repo root
# (build/, build-asan/, build-tsan/).
#
#   scripts/check.sh            # tier-1 + sanitizers + both bench gates
#   scripts/check.sh --tier1    # tier-1 only (fast loop)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

jobs="$(nproc 2>/dev/null || echo 4)"
tier1_only=false
[[ "${1:-}" == "--tier1" ]] && tier1_only=true

echo "== tier-1: configure + build + ctest (build/) =="
cmake --preset default
cmake --build --preset default -j "$jobs"
ctest --preset default -j "$jobs"

echo
echo "== steady-state allocation gate (bench_buffer_pipeline) =="
(cd build && ./bench/bench_buffer_pipeline > /dev/null)
for key in slab_allocs oversize_allocs prepend_copies bytes_copied; do
  val="$(grep -o "\"$key\": [0-9-]*" build/BENCH_buffer.json | head -1 \
         | awk '{print $2}')"
  if [[ "$val" != "0" ]]; then
    echo "FAIL: steady-state window reports $key=$val (expected 0) —" \
         "a payload path regressed to heap allocation or copying."
    exit 1
  fi
  echo "  $key=0 ok"
done

if ! $tier1_only; then
  echo
  echo "== overload-cascade gate (bench_overload_cascade) =="
  (cd build && ./bench/bench_overload_cascade > /dev/null)
  gate() {  # gate <flat-json-key> -> value (from the "gates" object)
    grep -o "\"$1\": [0-9.]*" build/BENCH_overload.json | head -1 \
      | awk '{print $2}'
  }
  shared_fd="$(gate bgp_shared_false_dead)"
  if [[ "$shared_fd" -lt 1 ]]; then
    echo "FAIL: shared-FIFO BGP shows no false dead declarations" \
         "($shared_fd) — the incast no longer reproduces the cascade."
    exit 1
  fi
  echo "  bgp_shared_false_dead=$shared_fd (>0) ok"
  for key in bgp_priority_false_dead mtp_shared_false_dead \
             mtp_priority_false_dead; do
    val="$(gate "$key")"
    if [[ "$val" != "0" ]]; then
      echo "FAIL: $key=$val (expected 0) — a healthy neighbor was declared" \
           "dead despite control-plane protection."
      exit 1
    fi
    echo "  $key=0 ok"
  done
  # Priority queues must stay within 3% of the PR 3 steady-state baseline
  # (3.56M events/sec on the reference machine).
  ev="$(gate events_per_sec_priority)"
  if ! awk -v ev="$ev" 'BEGIN { exit !(ev >= 3560000 * 0.97) }'; then
    echo "FAIL: priority-mode steady state at $ev events/sec —" \
         "more than 3% below the 3.56M ev/s baseline."
    exit 1
  fi
  echo "  events_per_sec_priority=$ev (>= 3.45M) ok"

  echo
  echo "== parallel-engine gate (bench_parallel_sweep) =="
  (cd build && ./bench/bench_parallel_sweep > /dev/null)
  pgate() {  # pgate <topology> <threads> <key> -> value of that sweep point
    python3 - "$1" "$2" "$3" <<'EOF' < build/BENCH_parallel.json
import json, sys
doc = json.load(sys.stdin)
topo, threads, key = sys.argv[1], int(sys.argv[2]), sys.argv[3]
for p in doc["points"]:
    if p["topology"] == topo and p["threads"] == threads \
       and p["protocol"] == "MR-MTP":
        print(p[key]); break
EOF
  }
  # 1-thread runs ride the classic single-context engine verbatim, so their
  # throughput must stay within 3% of the pre-sharding baseline (3.5M ev/s
  # on the 16-PoD TC1 failure experiment on the reference machine).
  base_eps="$(pgate 16-PoD 1 events_per_sec)"
  if ! awk -v ev="$base_eps" 'BEGIN { exit !(ev >= 3500000 * 0.97) }'; then
    echo "FAIL: 1-thread (classic engine) at $base_eps events/sec —" \
         "more than 3% below the 3.5M ev/s pre-sharding baseline."
    exit 1
  fi
  echo "  16-PoD 1-thread events_per_sec=$base_eps (>= 3.4M) ok"
  # The speedup gate needs real cores; a 1- or 2-core host can only measure
  # overhead, so it is skipped (the artifact still records the sweep).
  if [[ "$jobs" -ge 4 ]]; then
    speedup="$(pgate 16-PoD 4 speedup_vs_1)"
    if ! awk -v s="$speedup" 'BEGIN { exit !(s >= 2.5) }'; then
      echo "FAIL: 4-thread speedup on 16-PoD is ${speedup}x (< 2.5x)."
      exit 1
    fi
    echo "  16-PoD 4-thread speedup=${speedup}x (>= 2.5x) ok"
  else
    echo "  skipping 4-thread speedup gate: only $jobs hardware thread(s)"
  fi

  echo
  echo "== asan-ubsan: whole tree instrumented (build-asan/) =="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$jobs"
  ctest --preset asan-ubsan -j "$jobs"

  echo
  echo "== tsan: buffer + scheduler + parallel-engine tests (build-tsan/) =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs" \
    --target buffer_test sim_test net_test util_test overload_damping_test \
             parallel_engine_test
  ctest --test-dir build-tsan \
    -R '^(buffer_test|sim_test|net_test|util_test|overload_damping_test|parallel_engine_test)$' \
    --output-on-failure -j "$jobs"
fi

echo
echo "All checks passed."
