#!/usr/bin/env bash
# One-stop pre-merge check: the tier-1 configure/build/ctest cycle plus the
# fully instrumented ASan+UBSan preset. Run from anywhere; both build trees
# live under the repo root (build/ and build-asan/).
#
#   scripts/check.sh            # tier-1 + sanitized suite
#   scripts/check.sh --tier1    # tier-1 only (fast loop)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

jobs="$(nproc 2>/dev/null || echo 4)"
tier1_only=false
[[ "${1:-}" == "--tier1" ]] && tier1_only=true

echo "== tier-1: configure + build + ctest (build/) =="
cmake --preset default
cmake --build --preset default -j "$jobs"
ctest --preset default -j "$jobs"

if ! $tier1_only; then
  echo
  echo "== asan-ubsan: whole tree instrumented (build-asan/) =="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$jobs"
  ctest --preset asan-ubsan -j "$jobs"
fi

echo
echo "All checks passed."
