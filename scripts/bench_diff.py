#!/usr/bin/env python3
"""Diff committed BENCH_*.json artifacts against a freshly generated set.

The repo commits one JSON artifact per bench (BENCH_parallel.json,
BENCH_scalability.json, BENCH_wcmp.json, ...). After rerunning a bench into
some output
directory, this script lines the two trees up and reports every metric that
moved, so a PR review can separate "the code got faster" from "the artifact
was regenerated on different hardware".

Usage:
    scripts/bench_diff.py --fresh build/ [--committed .] [--threshold 0.05]
    scripts/bench_diff.py old.json new.json

Exit status: 0 when every compared metric moved less than the threshold,
1 when something exceeded it, 2 when no artifact pair could be compared.

Rules:
  * Numeric leaves are compared by relative delta (absolute when the
    committed value is 0). Wall-clock / rate metrics are reported but never
    counted as regressions by themselves (they depend on the host).
  * Non-numeric leaves (topology names, protocol labels) must match
    exactly; a mismatch means the bench matrix itself changed.
  * Keys present on one side only are listed as added/removed — an expected
    outcome when a bench gains new telemetry (e.g. coalesced_windows).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Host-dependent metrics: report deltas, but never fail the diff on them.
HOST_DEPENDENT = {
    "events_per_sec",
    "events_per_wall_sec",  # BENCH_buffer_occupancy.json throughput telemetry
    "wall_seconds",
    "speedup_vs_1",
    "hardware_concurrency",
    "ns_per_event",
}


def walk(node, prefix=""):
    """Yields (path, leaf) for every scalar in a nested JSON value."""
    if isinstance(node, dict):
        for key, value in sorted(node.items()):
            yield from walk(value, f"{prefix}.{key}" if prefix else key)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from walk(value, f"{prefix}[{index}]")
    else:
        yield prefix, node


def leaf_name(path):
    """The final key of a dotted/indexed path ('points[3].sync_windows')."""
    tail = path.rsplit(".", 1)[-1]
    return tail.split("[", 1)[0]


def diff_pair(name, committed, fresh, threshold):
    """Compares two parsed artifacts; returns (lines, regression_count)."""
    old = dict(walk(committed))
    new = dict(walk(fresh))
    lines = []
    regressions = 0

    for path in sorted(old.keys() | new.keys()):
        if path not in new:
            lines.append(f"  - {path}: removed (was {old[path]!r})")
            continue
        if path not in old:
            lines.append(f"  + {path}: added = {new[path]!r}")
            continue
        a, b = old[path], new[path]
        if a == b:
            continue
        numeric = isinstance(a, (int, float)) and isinstance(b, (int, float)) \
            and not isinstance(a, bool) and not isinstance(b, bool)
        if not numeric:
            lines.append(f"  ! {path}: {a!r} -> {b!r} (bench matrix changed)")
            regressions += 1
            continue
        rel = abs(b - a) / abs(a) if a != 0 else float("inf")
        moved = f"{a:g} -> {b:g} ({'+' if b >= a else '-'}{rel * 100:.1f}%)"
        if leaf_name(path) in HOST_DEPENDENT:
            lines.append(f"  ~ {path}: {moved} [host-dependent, ignored]")
        elif rel >= threshold:
            lines.append(f"  ! {path}: {moved}")
            regressions += 1
        else:
            lines.append(f"  ~ {path}: {moved}")

    if not lines:
        lines.append("  (identical)")
    return [f"{name}:"] + lines, regressions


def main():
    parser = argparse.ArgumentParser(
        description="Diff committed BENCH_*.json against a fresh run")
    parser.add_argument("files", nargs="*",
                        help="explicit pair: OLD.json NEW.json")
    parser.add_argument("--committed", default=".",
                        help="directory holding the committed artifacts")
    parser.add_argument("--fresh", default="build",
                        help="directory holding the freshly generated ones")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="relative delta that counts as a regression")
    args = parser.parse_args()

    if args.files and len(args.files) != 2:
        parser.error("explicit mode takes exactly two files")

    pairs = []
    if args.files:
        pairs.append((Path(args.files[0]), Path(args.files[1])))
    else:
        committed_dir = Path(args.committed)
        fresh_dir = Path(args.fresh)
        for committed in sorted(committed_dir.glob("BENCH_*.json")):
            fresh = fresh_dir / committed.name
            if fresh.exists():
                pairs.append((committed, fresh))
            else:
                print(f"{committed.name}: no fresh counterpart under "
                      f"{fresh_dir}/ (skipped)")

    if not pairs:
        print("nothing to compare", file=sys.stderr)
        return 2

    total_regressions = 0
    for committed, fresh in pairs:
        try:
            old = json.loads(committed.read_text())
            new = json.loads(fresh.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"{committed.name}: unreadable pair ({err})", file=sys.stderr)
            total_regressions += 1
            continue
        lines, regressions = diff_pair(committed.name, old, new,
                                       args.threshold)
        print("\n".join(lines))
        total_regressions += regressions

    if total_regressions:
        print(f"\n{total_regressions} metric(s) exceeded the "
              f"{args.threshold * 100:g}% threshold")
        return 1
    print("\nall compared metrics within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
