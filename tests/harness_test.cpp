// Harness tests: deployment parity across protocols, and — most importantly
// — the paper's qualitative results encoded as assertions: who converges
// faster, whose blast radius is smaller, who loses fewer packets, and how
// control overhead scales from 2-PoD to 4-PoD.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

namespace mrmtp::harness {
namespace {

ExperimentResult run(Proto proto, topo::TestCase tc,
                     topo::ClosParams params = topo::ClosParams::paper_2pod(),
                     std::uint64_t seed = 3) {
  ExperimentSpec spec;
  spec.topo = params;
  spec.proto = proto;
  spec.tc = tc;
  spec.seed = seed;
  return run_failure_experiment(spec);
}

TEST(DeploymentTest, AllThreeStacksConvergeOnIdenticalTopology) {
  for (Proto proto : kAllProtos) {
    SCOPED_TRACE(std::string(to_string(proto)));
    net::SimContext ctx(5);
    topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
    Deployment dep(ctx, bp, proto, {});
    dep.start();
    ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(5).ns()));
    EXPECT_TRUE(dep.converged());
    EXPECT_EQ(dep.router_count(), 12u);
    EXPECT_EQ(dep.host_count(), 4u);
  }
}

TEST(DeploymentTest, TypedAccessorsEnforceProtocol) {
  net::SimContext ctx(5);
  topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
  Deployment dep(ctx, bp, Proto::kMtp, {});
  EXPECT_NO_THROW((void)dep.mtp(0));
  EXPECT_THROW((void)dep.bgp(0), std::logic_error);
}

TEST(ExperimentTest, InitialConvergenceIsVerified) {
  ExperimentResult r = run(Proto::kMtp, topo::TestCase::kTC1);
  EXPECT_TRUE(r.initial_converged);
  r = run(Proto::kBgpBfd, topo::TestCase::kTC1);
  EXPECT_TRUE(r.initial_converged);
}

// --- Fig. 4: convergence time -------------------------------------------

TEST(PaperShapeTest, Fig4_MtpConvergesWithinDeadTimer) {
  // TC1/TC3: the update originator waits for the 100 ms dead timer.
  for (auto tc : {topo::TestCase::kTC1, topo::TestCase::kTC3}) {
    auto r = run(Proto::kMtp, tc);
    EXPECT_GT(r.convergence.to_millis(), 50.0);
    EXPECT_LT(r.convergence.to_millis(), 150.0);
  }
  // TC2/TC4: the failing side detects instantly; convergence is dissemination
  // only ("less than the failure detection time", §VII.A).
  for (auto tc : {topo::TestCase::kTC2, topo::TestCase::kTC4}) {
    auto r = run(Proto::kMtp, tc);
    EXPECT_LT(r.convergence.to_millis(), 5.0);
  }
}

TEST(PaperShapeTest, Fig4_BgpNeedsHoldTimerAndBfdCutsIt) {
  auto bgp = run(Proto::kBgp, topo::TestCase::kTC1);
  EXPECT_GT(bgp.convergence.to_millis(), 1500.0);  // ~hold timer (3 s max)
  auto bfd = run(Proto::kBgpBfd, topo::TestCase::kTC1);
  EXPECT_LT(bfd.convergence.to_millis(), 400.0);  // ~detect time (300 ms)
  EXPECT_GT(bfd.convergence.to_millis(), 50.0);
  auto mtp = run(Proto::kMtp, topo::TestCase::kTC1);
  // The paper's headline: MTP beats BGP even with BFD enabled.
  EXPECT_LT(mtp.convergence.ns(), bfd.convergence.ns());
  EXPECT_LT(bfd.convergence.ns(), bgp.convergence.ns());
}

// --- Fig. 5: blast radius -------------------------------------------------

TEST(PaperShapeTest, Fig5_BlastRadius2Pod) {
  // MTP, ToR-link failures: the paper counts 3 updated routers (the other
  // ToRs record an exclusion); spine-link failures: 1.
  for (auto tc : {topo::TestCase::kTC1, topo::TestCase::kTC2}) {
    auto r = run(Proto::kMtp, tc);
    EXPECT_EQ(r.blast_leaf_remote, 3u) << to_string(tc);
  }
  for (auto tc : {topo::TestCase::kTC3, topo::TestCase::kTC4}) {
    auto r = run(Proto::kMtp, tc);
    EXPECT_EQ(r.blast_remote, 1u) << to_string(tc);
  }
  // BGP: 8-9 of 12 routers at TC1/TC2, 3 at TC3/TC4 (paper: 9 and 3).
  for (auto tc : {topo::TestCase::kTC1, topo::TestCase::kTC2}) {
    auto r = run(Proto::kBgp, tc);
    EXPECT_GE(r.blast_any, 7u) << to_string(tc);
    EXPECT_LE(r.blast_any, 9u) << to_string(tc);
  }
  for (auto tc : {topo::TestCase::kTC3, topo::TestCase::kTC4}) {
    auto r = run(Proto::kBgp, tc);
    EXPECT_EQ(r.blast_any, 3u) << to_string(tc);
  }
}

TEST(PaperShapeTest, Fig5_BlastRadius4Pod) {
  auto params = topo::ClosParams::paper_4pod();
  // MTP: all 7 other ToRs at TC1 (paper), 3 pod spines at TC3/TC4.
  auto r = run(Proto::kMtp, topo::TestCase::kTC1, params);
  EXPECT_EQ(r.blast_leaf_remote, 7u);
  r = run(Proto::kMtp, topo::TestCase::kTC4, params);
  EXPECT_EQ(r.blast_remote, 3u);
  // BGP touches most of the 20-router fabric at TC1 (paper: 15), 5 at TC4.
  r = run(Proto::kBgp, topo::TestCase::kTC1, params);
  EXPECT_GE(r.blast_any, 12u);
  r = run(Proto::kBgp, topo::TestCase::kTC4, params);
  EXPECT_GE(r.blast_any, 3u);
  EXPECT_LE(r.blast_any, 6u);
}

TEST(PaperShapeTest, Fig5_BfdDoesNotChangeBlastRadius) {
  // §VII.B: "BFD has no impact on the blast radius".
  for (auto tc : topo::kAllTestCases) {
    auto with = run(Proto::kBgpBfd, tc);
    auto without = run(Proto::kBgp, tc);
    EXPECT_EQ(with.blast_any, without.blast_any) << to_string(tc);
  }
}

// --- Fig. 6: control overhead ---------------------------------------------

TEST(PaperShapeTest, Fig6_MtpControlOverheadFarBelowBgp) {
  for (auto tc : topo::kAllTestCases) {
    auto mtp = run(Proto::kMtp, tc);
    auto bgp = run(Proto::kBgp, tc);
    EXPECT_LT(mtp.ctrl_bytes_raw * 2, bgp.ctrl_bytes_raw) << to_string(tc);
  }
}

TEST(PaperShapeTest, Fig6_OverheadRoughlyDoublesFrom2PodTo4Pod) {
  // Paper: MTP 120 -> 264 bytes, BGP 1023 -> 2139 ("slightly more than
  // double").
  for (Proto proto : {Proto::kMtp, Proto::kBgp}) {
    auto small = run(proto, topo::TestCase::kTC1);
    auto big = run(proto, topo::TestCase::kTC1, topo::ClosParams::paper_4pod());
    double ratio = static_cast<double>(big.ctrl_bytes_raw) /
                   static_cast<double>(small.ctrl_bytes_raw);
    EXPECT_GT(ratio, 1.5) << to_string(proto);
    EXPECT_LT(ratio, 4.0) << to_string(proto);
  }
}

// --- Figs. 7/8: packet loss ------------------------------------------------

TEST(PaperShapeTest, Fig7_LossOrderingAtDownstreamDetectedFailures) {
  // TC2/TC4 (sender-side router must wait for its dead timer): BGP loses the
  // most, BFD cuts it to roughly a third or less, MTP loses the least.
  for (auto tc : {topo::TestCase::kTC2, topo::TestCase::kTC4}) {
    auto mtp = run(Proto::kMtp, tc);
    auto bgp = run(Proto::kBgp, tc);
    auto bfd = run(Proto::kBgpBfd, tc);
    EXPECT_GT(bgp.packets_lost, 300u) << to_string(tc);
    EXPECT_LT(bfd.packets_lost * 2, bgp.packets_lost) << to_string(tc);
    EXPECT_LT(mtp.packets_lost, bfd.packets_lost) << to_string(tc);
    EXPECT_LT(mtp.packets_lost, 40u) << to_string(tc);
  }
}

TEST(PaperShapeTest, Fig7_LossTinyWhenSenderSideDetectsInstantly) {
  // TC1/TC3 with the flow from H-1-1: the ToR/pod spine switches ports on
  // local detection; loss is near zero for every protocol.
  for (auto tc : {topo::TestCase::kTC1, topo::TestCase::kTC3}) {
    for (Proto proto : kAllProtos) {
      auto r = run(proto, tc);
      EXPECT_LE(r.packets_lost, 40u)
          << to_string(proto) << "/" << to_string(tc);
    }
  }
}

TEST(PaperShapeTest, Fig8_ReverseFlowLosesMoreAtTC1TC3) {
  // Fig. 8: with the sender at the far end, TC1/TC3 failures hurt (the
  // downstream-facing router only learns via its dead timer).
  ExperimentSpec spec;
  spec.proto = Proto::kBgp;
  spec.tc = topo::TestCase::kTC1;
  spec.reverse_flow = true;
  auto reverse = run_failure_experiment(spec);
  spec.reverse_flow = false;
  auto forward = run_failure_experiment(spec);
  EXPECT_GT(reverse.packets_lost, forward.packets_lost + 100);

  spec.proto = Proto::kMtp;
  spec.reverse_flow = true;
  // The rendezvous hash pins each flow to one deterministic path, so only
  // flows that actually ride the failed link lose packets. Scan a few flow
  // identities: at least one must cross the TC1 link, and even that one
  // loses only a dead-timer's worth (paper §VII.E) — not BGP's ~1000.
  std::uint64_t worst = 0;
  for (std::uint16_t src_port = 7000; src_port < 7016; ++src_port) {
    spec.traffic_src_port = src_port;
    auto mtp_reverse = run_failure_experiment(spec);
    worst = std::max(worst, mtp_reverse.packets_lost);
    EXPECT_LT(mtp_reverse.packets_lost, 60u) << "src_port " << src_port;
  }
  EXPECT_GT(worst, 0u) << "no probe flow crossed the failed link";
}

TEST(ExperimentTest, NoDuplicatesAcrossFailures) {
  for (Proto proto : kAllProtos) {
    auto r = run(proto, topo::TestCase::kTC2);
    EXPECT_EQ(r.duplicates, 0u) << to_string(proto);
  }
}

TEST(ExperimentTest, AveragingAccumulatesRuns) {
  ExperimentSpec spec;
  spec.proto = Proto::kMtp;
  spec.tc = topo::TestCase::kTC4;
  spec.with_traffic = false;  // faster
  AveragedResult avg = run_averaged(spec, {1, 2, 3});
  EXPECT_EQ(avg.runs, 3);
  EXPECT_EQ(avg.converged_runs, 3);
  EXPECT_GT(avg.ctrl_bytes_raw, 0.0);
}

TEST(DistributionTest, WelfordStatistics) {
  Distribution d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_EQ(d.mean(), 0.0);
  EXPECT_EQ(d.stddev(), 0.0);
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) d.add(v);
  EXPECT_EQ(d.count(), 8u);
  EXPECT_DOUBLE_EQ(d.mean(), 5.0);
  EXPECT_NEAR(d.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_EQ(d.min(), 2.0);
  EXPECT_EQ(d.max(), 9.0);
  EXPECT_NE(d.str().find("5.0"), std::string::npos);
}

TEST(DistributionTest, SingleSampleHasNoSpread) {
  Distribution d;
  d.add(42.5);
  EXPECT_DOUBLE_EQ(d.mean(), 42.5);
  EXPECT_EQ(d.stddev(), 0.0);
  EXPECT_EQ(d.str(1), "42.5");
}

TEST(ExperimentTest, FailureDuringEstablishmentStillConverges) {
  // Robustness: the TC1 interface dies while the fabric is still coming up
  // (mid-tree-establishment / mid-session-handshake); the protocols must
  // reach a consistent steady state around the hole, and traffic between
  // unaffected far hosts must flow.
  for (Proto proto : kAllProtos) {
    SCOPED_TRACE(std::string(to_string(proto)));
    net::SimContext ctx(61);
    topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
    Deployment dep(ctx, bp, proto, {});
    dep.start();
    topo::FailureInjector injector(dep.network(), bp);
    injector.schedule_failure(topo::TestCase::kTC1,
                              sim::Time::from_ns(sim::Duration::millis(60).ns()));
    ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(8).ns()));

    auto& sender = dep.host(1);  // L-1-2's server, unaffected by the hole
    auto& receiver = dep.host(3);
    receiver.listen();
    traffic::FlowConfig flow;
    flow.dst = receiver.addr();
    flow.count = 100;
    flow.gap = sim::Duration::millis(1);
    sender.start_flow(flow);
    ctx.sched.run_until(ctx.now() + sim::Duration::seconds(1));
    EXPECT_EQ(receiver.sink_stats().unique_received, 100u);
  }
}

TEST(ReportTest, TableAlignsAndEmitsCsv) {
  Table t({"proto", "tc", "ms"});
  t.add_row({"MR-MTP", "TC1", "99.0"});
  t.add_row({"BGP/ECMP", "TC1", "2000.1"});
  std::string s = t.str();
  EXPECT_NE(s.find("proto"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_NE(s.find("BGP/ECMP"), std::string::npos);
  EXPECT_EQ(t.csv(), "proto,tc,ms\nMR-MTP,TC1,99.0\nBGP/ECMP,TC1,2000.1\n");
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace mrmtp::harness
