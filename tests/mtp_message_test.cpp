// Unit tests: MR-MTP message codecs — every type round-trips; the HELLO is
// the paper's single byte 0x06; update messages stay tiny.
#include <gtest/gtest.h>

#include "mtp/message.hpp"

#include "net/frame.hpp"

namespace mrmtp::mtp {
namespace {

template <typename T>
T round_trip(const T& msg) {
  auto bytes = encode(MtpMessage{msg});
  MtpMessage decoded = decode(bytes);
  return std::get<T>(decoded);
}

TEST(MtpCodecTest, HelloIsExactlyOneByte0x06) {
  auto bytes = encode(MtpMessage{HelloMsg{}});
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0x06);  // the paper's Fig. 10 capture: "Data: 06"
  EXPECT_TRUE(std::holds_alternative<HelloMsg>(decode(bytes)));
}

TEST(MtpCodecTest, EtherTypeIsThePapersUnused0x8850) {
  EXPECT_EQ(kMtpEtherType, 0x8850);
  EXPECT_EQ(static_cast<std::uint16_t>(net::EtherType::kMtp), 0x8850);
}

TEST(MtpCodecTest, AdvertiseRoundTrip) {
  AdvertiseMsg m;
  m.tier = 2;
  m.vids = {Vid::parse("11.1"), Vid::parse("12.1")};
  auto out = round_trip(m);
  EXPECT_EQ(out.tier, 2);
  ASSERT_EQ(out.vids.size(), 2u);
  EXPECT_EQ(out.vids[1].str(), "12.1");
}

TEST(MtpCodecTest, JoinRequestRoundTrip) {
  JoinRequestMsg m;
  m.vids = {Vid::parse("11"), Vid::parse("12")};
  auto out = round_trip(m);
  ASSERT_EQ(out.vids.size(), 2u);
  EXPECT_EQ(out.vids[0].str(), "11");
}

TEST(MtpCodecTest, JoinOfferCarriesMsgId) {
  JoinOfferMsg m;
  m.msg_id = 777;
  m.vids = {Vid::parse("11.1.1")};
  auto out = round_trip(m);
  EXPECT_EQ(out.msg_id, 777);
  EXPECT_EQ(out.vids[0].str(), "11.1.1");
}

TEST(MtpCodecTest, CtrlAckRoundTrip) {
  EXPECT_EQ(round_trip(CtrlAckMsg{42}).msg_id, 42);
}

TEST(MtpCodecTest, WithdrawRoundTrip) {
  VidWithdrawMsg m;
  m.msg_id = 5;
  m.vids = {Vid::parse("11.1.1"), Vid::parse("12.1.1")};
  auto out = round_trip(m);
  EXPECT_EQ(out.msg_id, 5);
  ASSERT_EQ(out.vids.size(), 2u);
}

TEST(MtpCodecTest, DestUnreachAndClearRoundTrip) {
  DestUnreachMsg u;
  u.msg_id = 9;
  u.roots = {11, 12};
  auto out = round_trip(u);
  EXPECT_EQ(out.roots, (std::vector<std::uint16_t>{11, 12}));

  DestClearMsg c;
  c.msg_id = 10;
  c.roots = {11};
  EXPECT_EQ(round_trip(c).roots, (std::vector<std::uint16_t>{11}));
}

TEST(MtpCodecTest, UpdateMessagesStayTiny) {
  // The whole point of Fig. 6: an MTP update is an order of magnitude
  // smaller than a BGP UPDATE frame.
  VidWithdrawMsg w;
  w.msg_id = 1;
  w.vids = {Vid::parse("11.1.1")};
  EXPECT_LE(encode(MtpMessage{w}).size() + 14, 60u);  // fits minimum frame

  DestUnreachMsg u;
  u.msg_id = 2;
  u.roots = {11, 12};
  EXPECT_EQ(encode(MtpMessage{u}).size(), 1u + 2 + 1 + 4);
}

TEST(MtpCodecTest, DataEncapsulatesIpPacketUnchanged) {
  DataMsg m;
  m.src_root = 11;
  m.dst_root = 14;
  m.ttl = 16;
  m.ip_packet = {0x45, 0, 0, 20, 1, 2, 3, 4};
  auto out = round_trip(m);
  EXPECT_EQ(out.src_root, 11);
  EXPECT_EQ(out.dst_root, 14);
  EXPECT_EQ(out.ttl, 16);
  EXPECT_EQ(out.ip_packet, m.ip_packet);
  // Encapsulation overhead is the 5-byte MTP header + 1 type byte.
  EXPECT_EQ(encode(MtpMessage{m}).size(), m.ip_packet.size() + 6);
}

TEST(MtpCodecTest, DecodeRejectsGarbage) {
  std::vector<std::uint8_t> empty;
  EXPECT_THROW(decode(empty), util::CodecError);
  std::vector<std::uint8_t> unknown{0xee};
  EXPECT_THROW(decode(unknown), util::CodecError);
  std::vector<std::uint8_t> truncated{
      static_cast<std::uint8_t>(MsgType::kJoinOffer), 0x00};
  EXPECT_THROW(decode(truncated), util::CodecError);
}

TEST(MtpCodecTest, TypeOfCoversAllAlternatives) {
  EXPECT_EQ(type_of(MtpMessage{HelloMsg{}}), MsgType::kHello);
  EXPECT_EQ(type_of(MtpMessage{AdvertiseMsg{}}), MsgType::kAdvertise);
  EXPECT_EQ(type_of(MtpMessage{JoinRequestMsg{}}), MsgType::kJoinRequest);
  EXPECT_EQ(type_of(MtpMessage{JoinOfferMsg{}}), MsgType::kJoinOffer);
  EXPECT_EQ(type_of(MtpMessage{CtrlAckMsg{}}), MsgType::kCtrlAck);
  EXPECT_EQ(type_of(MtpMessage{VidWithdrawMsg{}}), MsgType::kVidWithdraw);
  EXPECT_EQ(type_of(MtpMessage{DestUnreachMsg{}}), MsgType::kDestUnreach);
  EXPECT_EQ(type_of(MtpMessage{DestClearMsg{}}), MsgType::kDestClear);
  EXPECT_EQ(type_of(MtpMessage{DataMsg{}}), MsgType::kData);
}

}  // namespace
}  // namespace mrmtp::mtp
