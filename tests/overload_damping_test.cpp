// Overload-protection behavior: priority egress queues sparing control
// frames under a data flood, Slow-to-Accept edge cases (a late-but-alive
// hello restarts the streak; damping decay re-admits a stabilized neighbor),
// BGP flap damping deferring reconnects, MTP withdrawal batching, and the
// ChaosEngine's full-timeline (onset + heal/ramp-complete) event records.
#include <gtest/gtest.h>

#include "harness/deploy.hpp"
#include "mtp/router.hpp"
#include "bgp/router.hpp"
#include "topo/chaos.hpp"

namespace mrmtp {
namespace {

// --------------------------------------------------------------- net::Link

class PriorityLinkTest : public ::testing::Test {
 protected:
  class Sink : public net::Node {
   public:
    using Node::Node;
    void handle_frame(net::Port&, net::Frame frame) override {
      classes.push_back(frame.traffic_class);
    }
    std::vector<net::TrafficClass> classes;
  };

  void wire(bool priority) {
    net::Link::Params params;
    params.bandwidth_bps = 1'000'000'000ull;
    params.max_queue = sim::Duration::micros(100);
    params.control_queue = sim::Duration::micros(100);
    params.priority_queues = priority;
    a_ = &network_.add_node<Sink>("a", 1);
    b_ = &network_.add_node<Sink>("b", 1);
    link_ = &network_.connect(*a_, *b_, params);
  }

  void flood_then_hellos() {
    // ~1.66 ms of data admitted against a 100 us queue, then 5 hellos.
    for (int i = 0; i < 200; ++i) {
      net::Frame f;
      f.ethertype = net::EtherType::kIpv4;
      f.payload.assign(1000, 0xab);
      f.traffic_class = net::TrafficClass::kIpData;
      a_->transmit(a_->port(1), std::move(f));
    }
    for (int i = 0; i < 5; ++i) {
      net::Frame f;
      f.ethertype = net::EtherType::kMtp;
      f.payload.assign(20, 0xcd);
      f.traffic_class = net::TrafficClass::kMtpHello;
      a_->transmit(a_->port(1), std::move(f));
    }
    ctx_.sched.run();
  }

  net::SimContext ctx_{123};
  net::Network network_{ctx_};
  Sink* a_ = nullptr;
  Sink* b_ = nullptr;
  net::Link* link_ = nullptr;
};

TEST_F(PriorityLinkTest, SharedFifoTailDropsControlBehindDataFlood) {
  wire(/*priority=*/false);
  flood_then_hellos();
  const net::Link::DirStats& s = link_->stats().ab;
  EXPECT_GT(s.dropped_queue_full, 0u);
  // All 5 hellos arrived behind a full queue and died with the data; a
  // dropped frame never records a high-water mark, so only the admitted
  // data saw the backlog grow.
  EXPECT_EQ(s.dropped_queue_control, 5u);
  EXPECT_EQ(s.control_backlog_hw_ns, 0u);
  EXPECT_GT(s.data_backlog_hw_ns, 0u);
  for (net::TrafficClass tc : b_->classes) {
    EXPECT_NE(tc, net::TrafficClass::kMtpHello);
  }
}

TEST_F(PriorityLinkTest, PriorityBandSparesControlAndJumpsTheQueue) {
  wire(/*priority=*/true);
  flood_then_hellos();
  const net::Link::DirStats& s = link_->stats().ab;
  EXPECT_GT(s.dropped_queue_full, 0u);            // data still tail-drops
  EXPECT_EQ(s.dropped_queue_control, 0u);         // control never does
  ASSERT_FALSE(b_->classes.empty());
  // All 5 hellos delivered, and ahead of the tail of the data backlog: the
  // last delivery must be data that the control band overtook.
  int hellos = 0;
  for (net::TrafficClass tc : b_->classes) {
    if (tc == net::TrafficClass::kMtpHello) ++hellos;
  }
  EXPECT_EQ(hellos, 5);
  EXPECT_EQ(b_->classes.back(), net::TrafficClass::kIpData);
}

TEST_F(PriorityLinkTest, ControlBandHasItsOwnDepthLimit) {
  wire(/*priority=*/true);
  // 200 hellos back-to-back: ~0.15 us wire time each on top of a 100 us
  // guaranteed band — the band itself must eventually tail-drop (a control
  // storm cannot monopolize the wire unboundedly).
  for (int i = 0; i < 2000; ++i) {
    net::Frame f;
    f.ethertype = net::EtherType::kMtp;
    f.payload.assign(60, 0xcd);
    f.traffic_class = net::TrafficClass::kMtpHello;
    a_->transmit(a_->port(1), std::move(f));
  }
  ctx_.sched.run();
  const net::Link::DirStats& s = link_->stats().ab;
  EXPECT_GT(s.dropped_queue_control, 0u);
  EXPECT_EQ(s.dropped_queue_control, s.dropped_queue_full);
}

// ------------------------------------------------------- mtp Slow-to-Accept

/// Leaf <-> spine pair where each side can run different timers.
class MtpAsymTest : public ::testing::Test {
 protected:
  void wire(mtp::MtpTimers leaf_timers, mtp::MtpTimers spine_timers) {
    mtp::MtpConfig leaf_cfg;
    leaf_cfg.tier = 1;
    leaf_cfg.timers = leaf_timers;
    leaf_cfg.server_subnet = ip::Ipv4Prefix::parse("192.168.11.0/24");
    leaf_ = &network_.add_node<mtp::MtpRouter>("leaf", leaf_cfg);

    mtp::MtpConfig spine_cfg;
    spine_cfg.tier = 2;
    spine_cfg.timers = spine_timers;
    spine_ = &network_.add_node<mtp::MtpRouter>("spine", spine_cfg);

    network_.connect(*leaf_, *spine_);
    network_.start_all();
  }

  void run_for(sim::Duration d) { ctx_.sched.run_until(ctx_.now() + d); }

  net::SimContext ctx_{31};
  net::Network network_{ctx_};
  mtp::MtpRouter* leaf_ = nullptr;
  mtp::MtpRouter* spine_ = nullptr;
};

TEST_F(MtpAsymTest, LateButAliveHelloRestartsAcceptStreak) {
  // The leaf hellos every 80 ms: later than the spine's streak tolerance
  // (1.5 x 50 ms = 75 ms) but well inside its own liveness — every hello
  // arrives, none is "dead", yet each gap restarts Slow-to-Accept. The
  // spine must never accept such a neighbor.
  mtp::MtpTimers slow;
  slow.hello = sim::Duration::millis(80);
  wire(slow, mtp::MtpTimers{});
  run_for(sim::Duration::seconds(2));
  EXPECT_FALSE(spine_->neighbor_alive(1));
  EXPECT_EQ(spine_->mtp_stats().neighbors_accepted, 0u);
  // The spine's own 50 ms hellos pass the leaf's (80 ms-based) tolerance.
  EXPECT_TRUE(leaf_->neighbor_alive(1));
}

TEST_F(MtpAsymTest, DampingSuppressesFlapperUntilPenaltyDecays) {
  mtp::MtpTimers damped;
  damped.damping_penalty = 1500;
  damped.damping_suppress = 2500;
  damped.damping_reuse = 750;
  damped.damping_half_life = sim::Duration::seconds(1);
  wire(damped, damped);
  run_for(sim::Duration::millis(400));
  ASSERT_TRUE(spine_->neighbor_alive(1));

  // Two flaps ~300 ms apart: 1500 + 1500 * 2^-0.3 ~ 2718 >= 2500 ->
  // the spine suppresses the leaf even though its hellos now flow steadily.
  leaf_->set_interface_down(1);
  run_for(sim::Duration::millis(120));  // dead timer (100 ms) declares #1
  leaf_->set_interface_up(1);
  run_for(sim::Duration::millis(180));  // 3-keepalive streak re-accepts
  ASSERT_TRUE(spine_->neighbor_alive(1));
  leaf_->set_interface_down(1);
  run_for(sim::Duration::millis(120));  // declares #2 -> suppressed
  leaf_->set_interface_up(1);

  run_for(sim::Duration::millis(500));
  EXPECT_FALSE(spine_->neighbor_alive(1));  // stable but still suppressed
  EXPECT_TRUE(spine_->port_damping_suppressed(1));
  EXPECT_GT(spine_->mtp_stats().accepts_suppressed, 0u);
  EXPECT_GT(spine_->port_damping_penalty(1),
            damped.damping_reuse);

  // Penalty halves every second; ~2 s after the last flap it crosses the
  // reuse threshold and the very next keep-alive re-admits the neighbor.
  run_for(sim::Duration::seconds(2));
  EXPECT_TRUE(spine_->neighbor_alive(1));
  EXPECT_FALSE(spine_->port_damping_suppressed(1));
  EXPECT_LT(spine_->port_damping_penalty(1), damped.damping_reuse);
}

// ---------------------------------------------------- mtp update batching

TEST(MtpUpdateBatching, SimultaneousVidLossesShareTheInterval) {
  net::SimContext ctx(7);
  topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
  harness::DeployOptions options;
  options.mtp_timers.update_min_interval = sim::Duration::millis(2);
  harness::Deployment dep(ctx, bp, harness::Proto::kMtp, options);
  dep.start();
  ctx.sched.run_until(sim::Time::zero() + sim::Duration::seconds(3));
  ASSERT_TRUE(dep.converged());

  // Kill both leaf-facing ports of one spine in the same instant: the two
  // VID_WITHDRAW originations toward the cores land inside one min-interval
  // window, so the second is batched behind the first flush.
  std::uint32_t spine = dep.blueprint().device_index("S-1-1");
  mtp::MtpRouter& r = dep.mtp(spine);
  std::uint64_t batched_before = r.mtp_stats().updates_batched;
  for (std::uint32_t p = 1; p <= dep.router(spine).port_count(); ++p) {
    const net::Port* peer = dep.router(spine).port(p).peer();
    if (peer != nullptr && peer->owner().name().starts_with("L-")) {
      r.set_interface_down(p);
    }
  }
  ctx.sched.run_until(ctx.now() + sim::Duration::millis(200));
  EXPECT_GT(r.mtp_stats().updates_batched, batched_before);
}

// ------------------------------------------------------------ bgp damping

TEST(BgpDamping, FlapDefersRetryUntilPenaltyDecays) {
  net::SimContext ctx(41);
  net::Network network(ctx);
  auto a_addr = ip::Ipv4Addr::parse("172.16.0.0");
  auto b_addr = ip::Ipv4Addr::parse("172.16.0.1");

  bgp::BgpTimers timers;
  timers.damping_penalty = 2600;  // one flap >= suppress (2500): defer at once
  bgp::BgpConfig ca;
  ca.asn = 64600;
  ca.router_id = 1;
  ca.timers = timers;
  ca.neighbors = {{a_addr, b_addr, 64601}};
  ca.originate = {ip::Ipv4Prefix::parse("192.168.11.0/24")};
  auto& a = network.add_node<bgp::BgpRouter>("A", 1, ca);

  bgp::BgpConfig cb;
  cb.asn = 64601;
  cb.router_id = 2;
  cb.timers = timers;
  cb.neighbors = {{b_addr, a_addr, 64600}};
  auto& b = network.add_node<bgp::BgpRouter>("B", 1, cb);

  net::Link& link = network.connect(a, b);
  a.configure_port(1, a_addr, 31);
  b.configure_port(1, b_addr, 31);
  network.start_all();
  ctx.sched.run_until(ctx.now() + sim::Duration::seconds(2));
  ASSERT_EQ(a.session_state(b_addr), bgp::BgpRouter::SessionState::kEstablished);

  // A gray blackhole (both directions) starves the hold timers; the session
  // flap charges the full damping penalty and the reconnect is deferred far
  // beyond connect_retry.
  link.set_blackhole(net::Link::Dir::kAToB, true);
  link.set_blackhole(net::Link::Dir::kBToA, true);
  ctx.sched.run_until(ctx.now() + sim::Duration::seconds(4));
  EXPECT_NE(a.session_state(b_addr), bgp::BgpRouter::SessionState::kEstablished);
  EXPECT_GE(a.bgp_stats().sessions_flapped, 1u);
  EXPECT_GE(a.bgp_stats().retries_damped, 1u);
  EXPECT_GT(a.peer_damping_penalty(b_addr), 0.0);

  // Heal the link; the deferred retry (half_life * log2(pen/reuse) ~ 3.6 s
  // after the flap) still re-establishes the session once it fires.
  link.set_blackhole(net::Link::Dir::kAToB, false);
  link.set_blackhole(net::Link::Dir::kBToA, false);
  ctx.sched.run_until(ctx.now() + sim::Duration::seconds(8));
  EXPECT_EQ(a.session_state(b_addr), bgp::BgpRouter::SessionState::kEstablished);
  EXPECT_EQ(b.session_state(a_addr), bgp::BgpRouter::SessionState::kEstablished);
}

// ------------------------------------------------- chaos timeline records

TEST(ChaosTimeline, OnsetsCarryTheirTerminalPhases) {
  net::SimContext ctx(7);
  topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
  harness::Deployment dep(ctx, bp, harness::Proto::kMtp, {});
  dep.start();
  ctx.sched.run_until(sim::Time::zero() + sim::Duration::seconds(3));

  topo::ChaosEngine chaos(dep.network(), bp, 7);
  topo::FailurePoint fp = bp.failure_point(topo::TestCase::kTC1);
  chaos.degradation_ramp(fp, /*toward_device=*/true, 0.8, ctx.now(),
                         sim::Duration::millis(200));
  chaos.heal(fp, ctx.now() + sim::Duration::millis(400),
             topo::GrayKind::kDegradationRamp);
  ctx.sched.run_until(ctx.now() + sim::Duration::seconds(1));

  ASSERT_EQ(chaos.log().size(), 3u);
  EXPECT_EQ(chaos.log()[0].phase, topo::ChaosPhase::kOnset);
  EXPECT_EQ(chaos.log()[1].phase, topo::ChaosPhase::kRampComplete);
  EXPECT_EQ(chaos.log()[2].phase, topo::ChaosPhase::kHeal);
  EXPECT_EQ(chaos.log()[2].kind, topo::GrayKind::kDegradationRamp);
  // first_onset() is phase-aware: heal records never shift it.
  ASSERT_TRUE(chaos.first_onset().has_value());
  EXPECT_EQ(*chaos.first_onset(), chaos.log()[0].at);
}

}  // namespace
}  // namespace mrmtp
