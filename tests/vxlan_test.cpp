// VXLAN overlay tests: codec round-trips, VM-to-VM delivery across the
// MR-MTP and BGP fabrics, tenant (VNI) isolation, same-server switching,
// and overlay traffic surviving a fabric failure — the paper's assumed
// deployment model (§III.A).
#include <gtest/gtest.h>

#include "harness/deploy.hpp"
#include "topo/failure.hpp"

namespace mrmtp::traffic {
namespace {

using harness::Deployment;
using harness::DeployOptions;
using harness::Proto;

TEST(VxlanHeaderTest, RoundTrip) {
  VxlanHeader h{0xabcdef};
  std::vector<std::uint8_t> inner{1, 2, 3};
  auto bytes = h.serialize(inner);
  EXPECT_EQ(bytes.size(), VxlanHeader::kSize + 3);
  std::span<const std::uint8_t> out;
  VxlanHeader parsed = VxlanHeader::parse(bytes, out);
  EXPECT_EQ(parsed.vni, 0xabcdefu);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2], 3);
}

TEST(VxlanHeaderTest, RejectsMissingVniFlag) {
  std::vector<std::uint8_t> bogus(8, 0);
  std::span<const std::uint8_t> out;
  EXPECT_THROW(VxlanHeader::parse(bogus, out), util::CodecError);
}

class VxlanFabricTest : public ::testing::Test {
 protected:
  void deploy(Proto proto, std::uint64_t seed = 17) {
    // The deployment must die before the SimContext its timers point at
    // (matters when a test deploys more than once).
    dep_.reset();
    blueprint_.reset();
    ctx_ = std::make_unique<net::SimContext>(seed);
    blueprint_ = std::make_unique<topo::ClosBlueprint>(
        topo::ClosParams::paper_2pod());
    DeployOptions options;
    options.vtep_hosts = true;
    dep_ = std::make_unique<Deployment>(*ctx_, *blueprint_, proto, options);

    // Two tenants; tenant 100 spans servers 0 and 3, tenant 200 has a VM
    // with the SAME overlay address on server 1 (isolation check).
    auto& a = dep_->vtep(0);
    auto& b = dep_->vtep(3);
    auto& c = dep_->vtep(1);
    a.add_vm(100, vm1_);
    b.add_vm(100, vm2_);
    c.add_vm(200, vm2_);  // same overlay IP, different tenant
    a.add_remote(100, vm2_, b.addr());
    b.add_remote(100, vm1_, a.addr());
    c.add_remote(200, vm1_, a.addr());

    dep_->start();
    ctx_->sched.run_until(sim::Time::from_ns(sim::Duration::seconds(5).ns()));
    ASSERT_TRUE(dep_->converged());
  }

  void run_for(sim::Duration d) { ctx_->sched.run_until(ctx_->now() + d); }

  ip::Ipv4Addr vm1_ = ip::Ipv4Addr::parse("10.0.0.1");
  ip::Ipv4Addr vm2_ = ip::Ipv4Addr::parse("10.0.0.2");
  std::unique_ptr<net::SimContext> ctx_;
  std::unique_ptr<topo::ClosBlueprint> blueprint_;
  std::unique_ptr<Deployment> dep_;
};

TEST_F(VxlanFabricTest, OverlayDeliveryAcrossMtpFabric) {
  deploy(Proto::kMtp);
  auto& a = dep_->vtep(0);
  auto& b = dep_->vtep(3);

  for (int i = 0; i < 50; ++i) {
    a.vm_send(100, vm1_, vm2_, {std::uint8_t(i)});
  }
  run_for(sim::Duration::millis(100));

  EXPECT_EQ(b.vm_received(100, vm2_), 50u);
  EXPECT_EQ(a.vtep_stats().encapsulated, 50u);
  EXPECT_EQ(b.vtep_stats().decapsulated, 50u);
  // The underlay only ever saw server-to-server traffic, so the ToR could
  // derive the destination VID from the *outer* header (§III.A).
}

TEST_F(VxlanFabricTest, OverlayDeliveryAcrossBgpFabric) {
  deploy(Proto::kBgp);
  auto& a = dep_->vtep(0);
  auto& b = dep_->vtep(3);
  for (int i = 0; i < 50; ++i) a.vm_send(100, vm1_, vm2_, {1, 2});
  run_for(sim::Duration::millis(100));
  EXPECT_EQ(b.vm_received(100, vm2_), 50u);
}

TEST_F(VxlanFabricTest, TenantIsolationByVni) {
  deploy(Proto::kMtp);
  auto& a = dep_->vtep(0);
  auto& b = dep_->vtep(3);
  auto& c = dep_->vtep(1);

  // Tenant 100's VM sends to 10.0.0.2 — only the tenant-100 instance on
  // server b may receive it, never tenant 200's same-address VM on c.
  a.vm_send(100, vm1_, vm2_, {42});
  run_for(sim::Duration::millis(50));
  EXPECT_EQ(b.vm_received(100, vm2_), 1u);
  EXPECT_EQ(c.vm_received(200, vm2_), 0u);

  // A tenant with no mapping for the destination cannot leak packets.
  a.vm_send(200, vm1_, vm2_, {43});
  run_for(sim::Duration::millis(50));
  EXPECT_EQ(c.vm_received(200, vm2_), 0u);
  EXPECT_GE(a.vtep_stats().dropped_no_mapping, 1u);
}

TEST_F(VxlanFabricTest, SameServerVmsSwitchLocally) {
  deploy(Proto::kMtp);
  auto& a = dep_->vtep(0);
  a.add_vm(100, ip::Ipv4Addr::parse("10.0.0.9"));

  std::uint64_t encap_before = a.vtep_stats().encapsulated;
  a.vm_send(100, vm1_, ip::Ipv4Addr::parse("10.0.0.9"), {7});
  run_for(sim::Duration::millis(10));
  EXPECT_EQ(a.vm_received(100, ip::Ipv4Addr::parse("10.0.0.9")), 1u);
  EXPECT_EQ(a.vtep_stats().encapsulated, encap_before);  // no fabric trip
  EXPECT_EQ(a.vtep_stats().delivered_local, 1u);
}

TEST_F(VxlanFabricTest, InnerPayloadIntegrity) {
  deploy(Proto::kMtp);
  auto& a = dep_->vtep(0);
  auto& b = dep_->vtep(3);

  std::vector<std::uint8_t> got;
  ip::Ipv4Addr got_src;
  b.add_vm(100, ip::Ipv4Addr::parse("10.0.0.77"),
           [&](const ip::Ipv4Header& inner,
               std::span<const std::uint8_t> payload) {
             got.assign(payload.begin(), payload.end());
             got_src = inner.src;
           });
  a.add_remote(100, ip::Ipv4Addr::parse("10.0.0.77"), b.addr());

  std::vector<std::uint8_t> blob(300);
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<std::uint8_t>(i * 3);
  }
  a.vm_send(100, vm1_, ip::Ipv4Addr::parse("10.0.0.77"), blob);
  run_for(sim::Duration::millis(50));
  EXPECT_EQ(got, blob);
  EXPECT_EQ(got_src, vm1_);
}

TEST_F(VxlanFabricTest, OverlaySurvivesFabricFailure) {
  deploy(Proto::kMtp);
  auto& a = dep_->vtep(0);
  auto& b = dep_->vtep(3);

  topo::FailureInjector injector(dep_->network(), *blueprint_);
  injector.schedule_failure(topo::TestCase::kTC1,
                            ctx_->now() + sim::Duration::millis(10));
  run_for(sim::Duration::millis(500));  // reconverge past the dead timer

  for (int i = 0; i < 100; ++i) a.vm_send(100, vm1_, vm2_, {9});
  run_for(sim::Duration::millis(200));
  EXPECT_EQ(b.vm_received(100, vm2_), 100u);
}

}  // namespace
}  // namespace mrmtp::traffic
