// Behavioral unit tests for MtpRouter: Quick-to-Detect / Slow-to-Accept
// liveness, hello suppression, keep-alive wire size, reliability
// retransmission, and a parameterized tree-establishment property on
// randomized Clos sizes (every VID is a real loop-free path).
#include <gtest/gtest.h>

#include "harness/deploy.hpp"
#include "mtp/router.hpp"

namespace mrmtp::mtp {
namespace {

/// Leaf (VID 11) <-> spine pair on one link.
class MtpPairTest : public ::testing::Test {
 protected:
  void wire(MtpTimers timers = {}) {
    MtpConfig leaf_cfg;
    leaf_cfg.tier = 1;
    leaf_cfg.timers = timers;
    leaf_cfg.server_subnet = ip::Ipv4Prefix::parse("192.168.11.0/24");
    leaf_ = &network_.add_node<MtpRouter>("leaf", leaf_cfg);

    MtpConfig spine_cfg;
    spine_cfg.tier = 2;
    spine_cfg.timers = timers;
    spine_ = &network_.add_node<MtpRouter>("spine", spine_cfg);

    network_.connect(*leaf_, *spine_);
    network_.start_all();
  }

  void run_for(sim::Duration d) { ctx_.sched.run_until(ctx_.now() + d); }

  net::SimContext ctx_{31};
  net::Network network_{ctx_};
  MtpRouter* leaf_ = nullptr;
  MtpRouter* spine_ = nullptr;
};

TEST_F(MtpPairTest, LeafDerivesVidFromThirdOctet) {
  wire();
  EXPECT_TRUE(leaf_->is_leaf());
  EXPECT_EQ(leaf_->own_vid(), 11);
  EXPECT_FALSE(spine_->is_leaf());
  EXPECT_EQ(spine_->own_vid(), 0);
}

TEST_F(MtpPairTest, SlowToAcceptNeedsThreeKeepalives) {
  wire();
  // Two hello intervals in: at most 2 keep-alives seen, not yet accepted.
  run_for(sim::Duration::millis(80));
  EXPECT_FALSE(spine_->neighbor_alive(1));
  run_for(sim::Duration::millis(200));
  EXPECT_TRUE(spine_->neighbor_alive(1));
  EXPECT_TRUE(leaf_->neighbor_alive(1));
}

TEST_F(MtpPairTest, WithoutSlowToAcceptFirstMessageSuffices) {
  MtpTimers timers;
  timers.slow_to_accept = false;
  wire(timers);
  run_for(sim::Duration::millis(5));
  EXPECT_TRUE(spine_->neighbor_alive(1));
}

TEST_F(MtpPairTest, SpineJoinsLeafTree) {
  wire();
  run_for(sim::Duration::millis(500));
  EXPECT_TRUE(spine_->vid_table().contains(Vid::parse("11.1")));
  EXPECT_EQ(spine_->vid_table().size(), 1u);
}

TEST_F(MtpPairTest, QuickToDetectDeclaresDownWithinDeadInterval) {
  wire();
  run_for(sim::Duration::millis(500));
  ASSERT_TRUE(spine_->neighbor_alive(1));

  leaf_->set_interface_down(1);
  // The spine hears nothing; dead interval is 100 ms.
  run_for(sim::Duration::millis(120));
  EXPECT_FALSE(spine_->neighbor_alive(1));
  EXPECT_FALSE(spine_->vid_table().has_root(11));
  EXPECT_EQ(spine_->mtp_stats().neighbors_lost, 1u);
}

TEST_F(MtpPairTest, HelloIsSuppressedWhileTrafficFlows) {
  wire();
  run_for(sim::Duration::millis(500));
  std::uint64_t hellos_before = spine_->mtp_stats().hellos_sent;

  // Keep the spine's transmit path busy with data frames every 10 ms
  // (< hello interval), addressed down to the leaf's subnet.
  for (int i = 0; i < 100; ++i) {
    ctx_.sched.schedule_after(sim::Duration::millis(10 * i), [this] {
      DataMsg msg;
      msg.src_root = 12;
      msg.dst_root = 11;
      ip::Ipv4Header h;
      h.src = ip::Ipv4Addr::parse("192.168.12.1");
      h.dst = ip::Ipv4Addr::parse("192.168.11.1");
      msg.ip_packet = h.serialize({});
      // Inject via the public frame path as if arriving from above.
      net::Frame f;
      f.ethertype = net::EtherType::kMtp;
      f.payload = encode(MtpMessage{msg});
      f.traffic_class = net::TrafficClass::kMtpData;
      spine_->handle_frame(spine_->port(1), f);  // loops right back down
    });
  }
  run_for(sim::Duration::seconds(1));
  std::uint64_t hellos_during = spine_->mtp_stats().hellos_sent - hellos_before;
  // Every MTP frame is a keep-alive, so almost no 1-byte hellos were needed.
  EXPECT_LE(hellos_during, 5u);
}

TEST_F(MtpPairTest, KeepaliveFrameIs15BytesRawPadded60) {
  wire();
  run_for(sim::Duration::seconds(1));
  const auto& c = leaf_->port(1).tx_stats().of(net::TrafficClass::kMtpHello);
  ASSERT_GT(c.frames, 0u);
  EXPECT_EQ(c.bytes / c.frames, 15u);          // 14B Ethernet + 1B payload
  EXPECT_EQ(c.padded_bytes / c.frames, 60u);   // NIC minimum
}

TEST_F(MtpPairTest, HelloRateMatchesTimer) {
  wire();
  run_for(sim::Duration::seconds(1));
  std::uint64_t before = leaf_->mtp_stats().hellos_sent;
  run_for(sim::Duration::seconds(1));
  std::uint64_t per_second = leaf_->mtp_stats().hellos_sent - before;
  EXPECT_NEAR(static_cast<double>(per_second), 20.0, 2.0);  // 50 ms timer
}

TEST_F(MtpPairTest, FlappingNeighborIsDampened) {
  wire();
  run_for(sim::Duration::millis(500));
  ASSERT_TRUE(spine_->neighbor_alive(1));
  std::uint64_t accepted_before = spine_->mtp_stats().neighbors_accepted;

  // Flap the leaf interface every 60 ms (ending down): up periods are too
  // short for three consecutive keep-alives, so the spine never re-accepts
  // while the flapping lasts.
  for (int i = 0; i < 19; ++i) {
    ctx_.sched.schedule_after(sim::Duration::millis(100 + 60 * i), [this, i] {
      if (i % 2 == 0) {
        leaf_->set_interface_down(1);
      } else {
        leaf_->set_interface_up(1);
      }
    });
  }
  run_for(sim::Duration::millis(1300));  // just past the final down toggle
  EXPECT_EQ(spine_->mtp_stats().neighbors_accepted, accepted_before);
  EXPECT_FALSE(spine_->neighbor_alive(1));

  // Once the interface stays up, the neighbor is re-accepted exactly once
  // and the tree rebuilt.
  leaf_->set_interface_up(1);
  run_for(sim::Duration::seconds(1));
  EXPECT_EQ(spine_->mtp_stats().neighbors_accepted, accepted_before + 1);
  EXPECT_TRUE(spine_->neighbor_alive(1));
  EXPECT_TRUE(spine_->vid_table().contains(Vid::parse("11.1")));
}

TEST_F(MtpPairTest, ReliableOffersSurviveFrameLoss) {
  // 15% random loss: advertises, join requests, offers and acks all get
  // dropped sometimes; retransmission must still establish the tree. The
  // dead interval is widened so random hello loss does not flap liveness
  // (the paper tuned these timers to its environment, Section VI.F).
  MtpConfig leaf_cfg;
  leaf_cfg.tier = 1;
  leaf_cfg.timers.dead = sim::Duration::millis(300);
  leaf_cfg.server_subnet = ip::Ipv4Prefix::parse("192.168.11.0/24");
  leaf_ = &network_.add_node<MtpRouter>("leaf", leaf_cfg);
  MtpConfig spine_cfg;
  spine_cfg.tier = 2;
  spine_cfg.timers.dead = sim::Duration::millis(300);
  spine_ = &network_.add_node<MtpRouter>("spine", spine_cfg);
  network_.connect(*leaf_, *spine_, {.loss_probability = 0.15});
  network_.start_all();

  run_for(sim::Duration::seconds(5));
  EXPECT_TRUE(spine_->vid_table().contains(Vid::parse("11.1")));
}

TEST_F(MtpPairTest, NeighborSummaryShowsState) {
  wire();
  run_for(sim::Duration::millis(500));
  std::string leaf_view = leaf_->neighbor_summary();
  EXPECT_NE(leaf_view.find("root VID 11"), std::string::npos);
  EXPECT_NE(leaf_view.find("eth1  tier 2  up"), std::string::npos);
  EXPECT_NE(leaf_view.find("assigned 11.1"), std::string::npos);

  std::string spine_view = spine_->neighbor_summary();
  EXPECT_NE(spine_view.find("holds 11.1"), std::string::npos);

  leaf_->set_interface_down(1);
  run_for(sim::Duration::millis(200));
  EXPECT_NE(spine_->neighbor_summary().find("down"), std::string::npos);
}

TEST(MtpMisconfigTest, DuplicateRootVidsAreRejected) {
  // Two ToRs misconfigured with the same subnet third octet (both derive
  // VID 11): the spine must join exactly one tree and flag the other, so
  // rack traffic never silently splits between the two racks.
  net::SimContext ctx(63);
  net::Network network(ctx);

  MtpConfig leaf_cfg;
  leaf_cfg.tier = 1;
  leaf_cfg.server_subnet = ip::Ipv4Prefix::parse("192.168.11.0/24");
  auto& leaf_a = network.add_node<MtpRouter>("leafA", leaf_cfg);
  auto& leaf_b = network.add_node<MtpRouter>("leafB", leaf_cfg);  // collision

  MtpConfig spine_cfg;
  spine_cfg.tier = 2;
  auto& spine = network.add_node<MtpRouter>("spine", spine_cfg);
  network.connect(leaf_a, spine);
  network.connect(leaf_b, spine);
  network.start_all();
  ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(2).ns()));

  EXPECT_EQ(spine.vid_table().entries_for_root(11).size(), 1u);
  EXPECT_GT(spine.mtp_stats().duplicate_roots_rejected, 0u);
}

// ---------------------------------------------------------------------------
// Property: on randomized Clos sizes, tree establishment gives every device
// exactly one VID per (ToR tree x downstream branch), and every VID is a
// real path: following its labels as port numbers from the root ToR lands on
// the device that owns it.
// ---------------------------------------------------------------------------

struct ClosCase {
  topo::ClosParams params;
  std::uint64_t seed;
};

class TreeEstablishmentProperty : public ::testing::TestWithParam<ClosCase> {};

TEST_P(TreeEstablishmentProperty, VidsAreRealPaths) {
  const auto& [params, seed] = GetParam();
  net::SimContext ctx(seed);
  topo::ClosBlueprint bp(params);
  harness::Deployment dep(ctx, bp, harness::Proto::kMtp, {});
  dep.start();
  ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(3).ns()));
  ASSERT_TRUE(dep.converged());

  std::uint32_t tors = params.pods * params.tors_per_pod;
  for (std::uint32_t d = 0; d < bp.devices().size(); ++d) {
    const auto& spec = bp.device(d);
    auto& router = dep.mtp(d);

    if (spec.role == topo::Role::kTopSpine) {
      // One VID per ToR tree.
      ASSERT_EQ(router.vid_table().size(), tors) << spec.name;
    } else if (spec.role == topo::Role::kPodSpine) {
      ASSERT_EQ(router.vid_table().size(), params.tors_per_pod) << spec.name;
    }

    // Walk each VID from its root; it must terminate at this device.
    for (const auto& entry : router.vid_table().entries()) {
      std::uint16_t root = entry.vid.root();
      net::Node* cursor = nullptr;
      for (const auto& leaf_spec : bp.devices()) {
        if (leaf_spec.role == topo::Role::kLeaf && leaf_spec.vid == root) {
          cursor = &dep.network().find(leaf_spec.name);
        }
      }
      ASSERT_NE(cursor, nullptr);
      for (std::size_t i = 1; i < entry.vid.depth(); ++i) {
        std::uint16_t port_number = entry.vid.label(i);
        ASSERT_LE(port_number, cursor->port_count());
        net::Port* peer = cursor->port(port_number).peer();
        ASSERT_NE(peer, nullptr);
        cursor = &peer->owner();
      }
      EXPECT_EQ(cursor->name(), spec.name)
          << "VID " << entry.vid.str() << " does not lead to its owner";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ClosSizes, TreeEstablishmentProperty,
    ::testing::Values(ClosCase{topo::ClosParams::paper_2pod(), 1},
                      ClosCase{topo::ClosParams::paper_4pod(), 2},
                      ClosCase{{3, 2, 2, 4, 1}, 3},
                      ClosCase{{2, 4, 2, 4, 1}, 4},
                      ClosCase{{4, 2, 4, 8, 1}, 5},
                      ClosCase{{6, 3, 2, 6, 1}, 6},
                      ClosCase{{8, 2, 4, 16, 1}, 7}));

}  // namespace
}  // namespace mrmtp::mtp
