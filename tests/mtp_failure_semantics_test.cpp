// MR-MTP failure-plane semantics on hand-built mini topologies: withdraw
// pruning, DEST_UNREACH/CLEAR exclusion life cycle, the wildcard "lost my
// default route" rule, the valley-freedom guard, and reliable-control
// retransmission behavior.
#include <gtest/gtest.h>

#include "harness/deploy.hpp"
#include "topo/failure.hpp"

namespace mrmtp::mtp {
namespace {

using harness::Deployment;
using harness::Proto;

class MtpFailureTest : public ::testing::Test {
 protected:
  void deploy(topo::ClosParams params = topo::ClosParams::paper_2pod(),
              std::uint64_t seed = 51) {
    // The deployment must die before the SimContext its timers point at
    // (matters when a test deploys more than once).
    dep_.reset();
    bp_.reset();
    ctx_ = std::make_unique<net::SimContext>(seed);
    bp_ = std::make_unique<topo::ClosBlueprint>(params);
    dep_ = std::make_unique<Deployment>(*ctx_, *bp_, Proto::kMtp,
                                        harness::DeployOptions{});
    dep_->start();
    run_for(sim::Duration::seconds(2));
    ASSERT_TRUE(dep_->converged());
  }

  void run_for(sim::Duration d) { ctx_->sched.run_until(ctx_->now() + d); }

  MtpRouter& router(const char* name) {
    return dep_->mtp(bp_->device_index(name));
  }

  std::unique_ptr<net::SimContext> ctx_;
  std::unique_ptr<topo::ClosBlueprint> bp_;
  std::unique_ptr<Deployment> dep_;
};

TEST_F(MtpFailureTest, WithdrawPrunesExactlyTheDeadBranch) {
  deploy();
  // TC2: S-1-1 loses its ToR-11 link; the 11.1 branch dies everywhere but
  // the 11.2 branch (via S-1-2) must be untouched.
  dep_->network().find("S-1-1").set_interface_down(3);
  run_for(sim::Duration::millis(300));

  EXPECT_FALSE(router("S-1-1").vid_table().contains(Vid::parse("11.1")));
  EXPECT_TRUE(router("S-1-1").vid_table().contains(Vid::parse("12.1")));
  EXPECT_FALSE(router("T-1").vid_table().contains(Vid::parse("11.1.1")));
  EXPECT_TRUE(router("T-1").vid_table().contains(Vid::parse("12.1.1")));
  EXPECT_TRUE(router("T-2").vid_table().contains(Vid::parse("11.2.1")));
  EXPECT_TRUE(router("T-4").vid_table().contains(Vid::parse("11.2.2")));
}

TEST_F(MtpFailureTest, DestUnreachCascadeReachesAllOtherTors) {
  deploy();
  dep_->network().find("L-1-1").set_interface_down(1);  // TC1
  run_for(sim::Duration::millis(500));

  // Every other ToR recorded an exclusion for destination 11 (the paper's
  // blast-radius-3 claim), and none for any other root.
  for (const char* tor : {"L-1-2", "L-2-1", "L-2-2"}) {
    const auto& ex = router(tor).exclusions();
    bool any_for_11 = ex.is_excluded(11, 1) || ex.is_excluded(11, 2);
    EXPECT_TRUE(any_for_11) << tor;
    EXPECT_FALSE(ex.is_excluded(12, 1) || ex.is_excluded(12, 2)) << tor;
    EXPECT_FALSE(ex.is_excluded(13, 1) || ex.is_excluded(13, 2)) << tor;
  }
}

TEST_F(MtpFailureTest, DestClearRestoresExclusionsOnRecovery) {
  deploy();
  topo::FailureInjector injector(dep_->network(), *bp_);
  injector.schedule_failure(topo::TestCase::kTC1,
                            ctx_->now() + sim::Duration::millis(10));
  run_for(sim::Duration::millis(500));
  ASSERT_GT(router("L-2-1").exclusions().size(), 0u);

  injector.schedule_recovery(ctx_->now() + sim::Duration::millis(10));
  run_for(sim::Duration::seconds(1));
  EXPECT_EQ(router("L-2-1").exclusions().size(), 0u);
  EXPECT_EQ(router("L-1-2").exclusions().size(), 0u);
  EXPECT_TRUE(dep_->converged());
}

TEST_F(MtpFailureTest, WildcardWhenSpineLosesAllUplinks) {
  deploy();
  // Kill both of S-1-1's uplinks: it keeps its ToR links but cannot carry
  // anything beyond the pod; the ToRs must stop using it for remote roots
  // yet keep using it for the intra-pod shortcut.
  auto& s11 = dep_->network().find("S-1-1");
  s11.set_interface_down(1);
  s11.set_interface_down(2);
  run_for(sim::Duration::millis(500));

  // L-1-1 excludes port 1 (to S-1-1) via the wildcard root.
  EXPECT_TRUE(router("L-1-1").exclusions().is_excluded(0, 1));

  // Remote traffic from H-1-1 still flows (via S-1-2)...
  auto& sender = dep_->host(0);
  auto& receiver = dep_->host(3);
  receiver.listen();
  traffic::FlowConfig flow;
  flow.dst = receiver.addr();
  flow.count = 100;
  flow.gap = sim::Duration::millis(1);
  sender.start_flow(flow);
  run_for(sim::Duration::seconds(1));
  EXPECT_EQ(receiver.sink_stats().unique_received, 100u);

  // ... and the intra-pod shortcut through S-1-1 still works: H-1-1 to
  // H-1-2 may use either pod spine.
  auto& pod_receiver = dep_->host(1);
  pod_receiver.listen();
  traffic::FlowConfig pod_flow;
  pod_flow.dst = pod_receiver.addr();
  pod_flow.count = 50;
  pod_flow.gap = sim::Duration::millis(1);
  sender.start_flow(pod_flow);
  run_for(sim::Duration::seconds(1));
  EXPECT_EQ(pod_receiver.sink_stats().unique_received, 50u);

  // Wildcard clears once an uplink returns.
  s11.set_interface_up(1);
  run_for(sim::Duration::seconds(1));
  EXPECT_FALSE(router("L-1-1").exclusions().is_excluded(0, 1));
}

TEST_F(MtpFailureTest, ValleyGuardDropsDownThenUpPackets) {
  deploy();
  // Craft a DATA frame for an unknown root arriving at a top spine: with
  // no VID and no uplinks it must be dropped, not bounced back down.
  auto& t1 = router("T-1");
  std::uint64_t drops_before = t1.mtp_stats().data_dropped_no_path;

  DataMsg msg;
  msg.src_root = 11;
  msg.dst_root = 99;  // no such tree
  msg.ttl = 16;
  ip::Ipv4Header h;
  h.src = ip::Ipv4Addr::parse("192.168.11.1");
  h.dst = ip::Ipv4Addr::parse("192.168.99.1");
  msg.ip_packet = h.serialize({});

  net::Frame frame;
  frame.ethertype = net::EtherType::kMtp;
  frame.payload = encode(MtpMessage{msg});
  frame.traffic_class = net::TrafficClass::kMtpData;
  t1.handle_frame(t1.port(1), frame);

  EXPECT_EQ(t1.mtp_stats().data_dropped_no_path, drops_before + 1);

  // Same at a pod spine when the packet came from ABOVE (downstream-only
  // rule): S-1-1's port 1 faces T-1.
  auto& s11 = router("S-1-1");
  drops_before = s11.mtp_stats().data_dropped_no_path;
  s11.handle_frame(s11.port(1), frame);
  EXPECT_EQ(s11.mtp_stats().data_dropped_no_path, drops_before + 1);
}

TEST_F(MtpFailureTest, TtlBackstopKillsCraftedLoops) {
  deploy();
  auto& s11 = router("S-1-1");
  DataMsg msg;
  msg.src_root = 13;
  msg.dst_root = 11;
  msg.ttl = 1;  // about to expire
  ip::Ipv4Header h;
  h.src = ip::Ipv4Addr::parse("192.168.13.1");
  h.dst = ip::Ipv4Addr::parse("192.168.11.1");
  msg.ip_packet = h.serialize({});
  net::Frame frame;
  frame.ethertype = net::EtherType::kMtp;
  frame.payload = encode(MtpMessage{msg});
  s11.handle_frame(s11.port(1), frame);  // transit with ttl 1 -> dropped
  EXPECT_EQ(s11.mtp_stats().data_dropped_ttl, 1u);
}

TEST_F(MtpFailureTest, UpdatesAreIdempotentUnderDuplication) {
  // Duplicate every frame on the TC2 link path: reliability acks get
  // duplicated, withdraws get re-delivered — state must converge identically.
  auto params = topo::ClosParams::paper_2pod();
  ctx_ = std::make_unique<net::SimContext>(77);
  bp_ = std::make_unique<topo::ClosBlueprint>(params);
  harness::DeployOptions options;
  options.link.duplicate_probability = 0.5;
  dep_ = std::make_unique<Deployment>(*ctx_, *bp_, Proto::kMtp, options);
  dep_->start();
  run_for(sim::Duration::seconds(3));
  ASSERT_TRUE(dep_->converged());

  dep_->network().find("S-1-1").set_interface_down(3);
  run_for(sim::Duration::seconds(1));

  EXPECT_FALSE(router("T-1").vid_table().contains(Vid::parse("11.1.1")));
  EXPECT_TRUE(router("T-1").vid_table().contains(Vid::parse("12.1.1")));
  // Exactly one exclusion for dest 11 at L-1-2 despite duplicated updates.
  EXPECT_TRUE(router("L-1-2").exclusions().is_excluded(11, 1));
  EXPECT_EQ(router("L-1-2").exclusions().size(), 1u);
}

TEST_F(MtpFailureTest, DeterministicReplay) {
  // Two simulations with identical seeds produce bit-identical protocol
  // outcomes — the property the whole experiment harness rests on.
  auto run_once = [](std::uint64_t seed) {
    net::SimContext ctx(seed);
    topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
    Deployment dep(ctx, bp, Proto::kMtp, {});
    dep.start();
    ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(2).ns()));
    topo::FailureInjector injector(dep.network(), bp);
    injector.schedule_failure(topo::TestCase::kTC1,
                              ctx.now() + sim::Duration::millis(5));
    ctx.sched.run_until(ctx.now() + sim::Duration::seconds(1));

    std::string state;
    for (std::uint32_t d = 0; d < dep.router_count(); ++d) {
      state += dep.mtp(d).vid_table().dump();
      state += dep.mtp(d).exclusions().dump();
      state += std::to_string(dep.mtp(d).mtp_stats().updates_sent) + ";";
      state += std::to_string(ctx.sched.events_fired()) + "|";
    }
    return state;
  };
  EXPECT_EQ(run_once(123), run_once(123));
  // Note: MR-MTP itself uses no randomness (deterministic timers and a
  // deterministic flow hash), so different seeds also replay identically —
  // seeds only drive BGP/BFD jitter and link impairments.
  EXPECT_EQ(run_once(123), run_once(456));
}

}  // namespace
}  // namespace mrmtp::mtp
