// Unit tests for the pooled frame-buffer pipeline: headroom prepends and
// their counted fallbacks, refcount semantics across shared views and
// duplicated link deliveries, allocation churn bounds, poison mode, and the
// acceptance proof that steady-state MTP forwarding neither allocates nor
// copies payload bytes (tracked by the pool's own counters).
#include <gtest/gtest.h>

#include "harness/deploy.hpp"
#include "net/buffer.hpp"
#include "net/network.hpp"
#include "traffic/host.hpp"

namespace mrmtp {
namespace {

using net::Buffer;
using net::BufferPool;
using net::BufferPoolStats;
using net::BufferWriter;

BufferPoolStats delta(const BufferPoolStats& before) {
  const BufferPoolStats& now = BufferPool::instance().stats();
  BufferPoolStats d;
  d.slab_allocs = now.slab_allocs - before.slab_allocs;
  d.slab_reuses = now.slab_reuses - before.slab_reuses;
  d.oversize_allocs = now.oversize_allocs - before.oversize_allocs;
  d.prepend_inplace = now.prepend_inplace - before.prepend_inplace;
  d.prepend_copies = now.prepend_copies - before.prepend_copies;
  d.writer_regrows = now.writer_regrows - before.writer_regrows;
  d.import_bytes = now.import_bytes - before.import_bytes;
  d.bytes_copied = now.bytes_copied - before.bytes_copied;
  d.bytes_shared = now.bytes_shared - before.bytes_shared;
  d.live_high_water = now.live_high_water;
  return d;
}

TEST(BufferTest, VectorCompatibilitySurface) {
  Buffer b = {1, 2, 3, 4};
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(b[2], 3);
  EXPECT_EQ(b, (std::vector<std::uint8_t>{1, 2, 3, 4}));

  std::vector<std::uint8_t> v(10, 0xee);
  b = v;
  EXPECT_EQ(b, v);

  Buffer filled;
  filled.assign(5, 0xab);
  EXPECT_EQ(filled, (std::vector<std::uint8_t>{0xab, 0xab, 0xab, 0xab, 0xab}));
}

TEST(BufferTest, PrependUsesHeadroomInPlace) {
  auto before = BufferPool::instance().stats();
  Buffer b = Buffer::copy_of(std::vector<std::uint8_t>(32, 0x11));
  ASSERT_EQ(b.headroom(), Buffer::kDefaultHeadroom);
  const std::uint8_t* payload_ptr = b.data();

  const std::uint8_t hdr[6] = {9, 8, 7, 6, 5, 4};
  b.prepend(hdr);

  EXPECT_EQ(b.size(), 38u);
  EXPECT_EQ(b.headroom(), Buffer::kDefaultHeadroom - 6);
  EXPECT_EQ(b.data() + 6, payload_ptr);  // payload bytes did not move
  EXPECT_EQ(b[0], 9);
  EXPECT_EQ(b[6], 0x11);
  auto d = delta(before);
  EXPECT_EQ(d.prepend_inplace, 1u);
  EXPECT_EQ(d.prepend_copies, 0u);
}

TEST(BufferTest, HeadroomExhaustionFallsBackToCountedCopy) {
  Buffer b = Buffer::allocate(16, /*headroom=*/2);
  auto before = BufferPool::instance().stats();

  const std::uint8_t hdr[6] = {1, 2, 3, 4, 5, 6};
  b.prepend(hdr);  // needs 6 bytes of headroom, only 2 available

  EXPECT_EQ(b.size(), 22u);
  EXPECT_EQ(b[0], 1);
  EXPECT_EQ(b[5], 6);
  EXPECT_EQ(b[6], 0);
  auto d = delta(before);
  EXPECT_EQ(d.prepend_inplace, 0u);
  EXPECT_EQ(d.prepend_copies, 1u);
  EXPECT_GE(d.bytes_copied, 16u);
  // The fallback re-homes header + payload behind fresh default headroom,
  // so the next prepend is in-place again.
  EXPECT_EQ(b.headroom(), Buffer::kDefaultHeadroom);
}

TEST(BufferTest, SharedSlabPrependCopiesAndLeavesSiblingIntact) {
  Buffer a = Buffer::copy_of(std::vector<std::uint8_t>(8, 0x22));
  Buffer b = a;  // share
  EXPECT_EQ(a.refcount(), 2u);
  auto before = BufferPool::instance().stats();

  const std::uint8_t hdr[2] = {0xf0, 0x0d};
  b.prepend(hdr);

  EXPECT_EQ(a.size(), 8u);  // sibling untouched
  EXPECT_EQ(a[0], 0x22);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(b[0], 0xf0);
  EXPECT_EQ(a.refcount(), 1u);  // b moved to its own slab
  EXPECT_EQ(b.refcount(), 1u);
  EXPECT_EQ(delta(before).prepend_copies, 1u);
}

TEST(BufferTest, SliceSharesTheSlab) {
  Buffer a = Buffer::copy_of(std::vector<std::uint8_t>{10, 11, 12, 13, 14});
  Buffer tail = a.slice(2);
  EXPECT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0], 12);
  EXPECT_EQ(tail.data(), a.data() + 2);  // same bytes, no copy
  EXPECT_EQ(a.refcount(), 2u);

  Buffer mid = a.slice(1, 2);
  EXPECT_EQ(mid.size(), 2u);
  EXPECT_EQ(mid[0], 11);
  EXPECT_THROW((void)a.slice(6), std::out_of_range);
  EXPECT_THROW((void)a.slice(2, 4), std::out_of_range);
}

TEST(BufferTest, MutableDataUnsharesFirst) {
  Buffer a = Buffer::copy_of(std::vector<std::uint8_t>(4, 0x33));
  Buffer b = a;
  b.mutable_data()[0] = 0x99;
  EXPECT_EQ(a[0], 0x33);  // copy-on-shared protected the sibling
  EXPECT_EQ(b[0], 0x99);
  EXPECT_EQ(a.refcount(), 1u);
  EXPECT_EQ(b.refcount(), 1u);

  // Unique buffers mutate in place with no copy.
  auto before = BufferPool::instance().stats();
  b.mutable_data()[1] = 0x77;
  EXPECT_EQ(delta(before).bytes_copied, 0u);
}

TEST(BufferTest, WriterProducesPrependableBuffer) {
  BufferWriter w(16);
  w.u32(0xdeadbeef);
  w.u16(0x0102);
  Buffer b = w.take();
  EXPECT_EQ(b.size(), 6u);
  EXPECT_EQ(b[0], 0xde);
  EXPECT_EQ(b.headroom(), Buffer::kDefaultHeadroom);

  auto before = BufferPool::instance().stats();
  const std::uint8_t hdr[1] = {0xcc};
  b.prepend(hdr);
  EXPECT_EQ(delta(before).prepend_inplace, 1u);
}

TEST(BufferTest, WriterRegrowIsCounted) {
  auto before = BufferPool::instance().stats();
  BufferWriter w(8);
  for (int i = 0; i < 1000; ++i) w.u32(static_cast<std::uint32_t>(i));
  Buffer b = w.take();
  EXPECT_EQ(b.size(), 4000u);
  EXPECT_EQ(b[3], 0);
  EXPECT_GE(delta(before).writer_regrows, 1u);
}

// A duplicated (impaired) delivery hands two frames sharing one slab to the
// receiver; writes through either must not leak into the other.
TEST(BufferTest, DuplicatedDeliverySharesSlabUntilWritten) {
  class SinkNode : public net::Node {
   public:
    using Node::Node;
    void handle_frame(net::Port& in, net::Frame frame) override {
      (void)in;
      arrivals.push_back(std::move(frame));
    }
    std::vector<net::Frame> arrivals;
  };

  net::SimContext ctx(123);
  net::Network network(ctx);
  auto& a = network.add_node<SinkNode>("a", 1);
  auto& b = network.add_node<SinkNode>("b", 2);
  network.connect(a, b, {.duplicate_probability = 1.0});

  net::Frame f;
  f.dst = net::MacAddr::broadcast();
  f.ethertype = net::EtherType::kIpv4;
  f.payload.assign(50, 0xab);
  a.transmit(a.port(1), std::move(f));
  ctx.sched.run();

  ASSERT_EQ(b.arrivals.size(), 2u);
  net::Buffer& first = b.arrivals[0].payload;
  net::Buffer& second = b.arrivals[1].payload;
  EXPECT_EQ(first, second);
  // Exactly one of the two deliveries was the move of the original frame;
  // the duplicate shares its slab rather than copying 50 bytes.
  EXPECT_EQ(first.refcount(), 2u);
  EXPECT_EQ(first.data(), second.data());

  first.mutable_data()[0] = 0x01;  // copy-on-shared
  EXPECT_EQ(second[0], 0xab);
  EXPECT_EQ(second.refcount(), 1u);
}

TEST(BufferTest, MillionBufferChurnKeepsHighWaterBounded) {
  BufferPool& pool = BufferPool::instance();
  pool.reset_stats();
  const std::uint64_t baseline_live = pool.stats().live_slabs;

  // A ring of live buffers cycling through every size class: the pool must
  // serve the churn from its freelists, not the heap.
  constexpr std::size_t kRing = 8;
  constexpr std::size_t kSizes[] = {40, 200, 1500, 4000};
  Buffer ring[kRing];
  for (int i = 0; i < 1'000'000; ++i) {
    ring[static_cast<std::size_t>(i) % kRing] =
        Buffer::allocate(kSizes[static_cast<std::size_t>(i) % 4]);
  }
  for (auto& b : ring) b = Buffer();

  const BufferPoolStats& s = pool.stats();
  EXPECT_LE(s.live_high_water, baseline_live + kRing + 1);
  // Warm-up allocates at most one slab per ring slot per class; everything
  // after that is freelist reuse.
  EXPECT_LE(s.slab_allocs, kRing * 4);
  EXPECT_GE(s.slab_reuses, 999'000u);
  EXPECT_EQ(s.live_slabs, baseline_live);
}

TEST(BufferTest, PoisonModeRecyclesCleanly) {
  BufferPool& pool = BufferPool::instance();
  const bool was = pool.poison();
  pool.set_poison(true);
  for (int i = 0; i < 100; ++i) {
    Buffer b = Buffer::allocate(64);
    EXPECT_EQ(b[0], 0);  // re-acquired slabs are unpoisoned and zero-filled
    b.mutable_data()[0] = 0xff;
  }
  pool.set_poison(was);
}

// ---------------------------------------------------------------------------
// Acceptance: steady-state MTP forwarding (host -> ToR -> spine -> ToR ->
// host) performs zero payload heap allocations and zero payload byte copies
// per hop, proven by pool-counter deltas over a pure-traffic window.
// ---------------------------------------------------------------------------
TEST(BufferPipeline, SteadyStateForwardingIsZeroCopy) {
  net::SimContext ctx(7);
  topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
  harness::Deployment dep(ctx, bp, harness::Proto::kMtp, {});
  dep.start();
  ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(3).ns()));
  ASSERT_TRUE(dep.converged());

  auto& src = dep.host(0);
  auto& dst = dep.host(static_cast<std::uint32_t>(dep.host_count() - 1));
  dst.listen();
  traffic::FlowConfig flow;
  flow.dst = dst.addr();
  flow.count = 0;  // continuous
  flow.gap = sim::Duration::micros(100);
  flow.payload_size = 256;
  src.start_flow(flow);

  // Warm the pool freelists (and every per-flow cache) for half a second...
  ctx.sched.run_until(
      sim::Time::from_ns(sim::Duration::millis(3500).ns()));
  BufferPool::instance().reset_stats();
  const BufferPoolStats before = BufferPool::instance().stats();

  // ...then measure a full second of pure forwarding: ~10k packets, each
  // crossing host -> ToR -> spine -> ToR -> host plus the idle hellos.
  ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(5).ns()));
  src.stop_flow();

  const BufferPoolStats& s = BufferPool::instance().stats();
  EXPECT_GT(dst.sink_stats().unique_received, 9000u);

  // Zero payload heap allocations: every slab comes from a freelist.
  EXPECT_EQ(s.slab_allocs - before.slab_allocs, 0u);
  EXPECT_EQ(s.oversize_allocs - before.oversize_allocs, 0u);
  // Zero payload memcpys: every header prepend hit headroom in place, no
  // writer outgrew its slab, nothing imported foreign storage.
  EXPECT_EQ(s.prepend_copies - before.prepend_copies, 0u);
  EXPECT_EQ(s.bytes_copied - before.bytes_copied, 0u);
  EXPECT_EQ(s.writer_regrows - before.writer_regrows, 0u);
  EXPECT_EQ(s.import_bytes - before.import_bytes, 0u);
  // And the work did happen zero-copy, not zero-work: each delivered packet
  // prepends UDP + IP at the host and MTP at the ToR, all in place.
  EXPECT_GT(s.prepend_inplace - before.prepend_inplace, 25'000u);
  EXPECT_GT(s.bytes_shared - before.bytes_shared, 0u);
}

}  // namespace
}  // namespace mrmtp
