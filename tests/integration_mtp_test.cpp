// End-to-end MR-MTP integration: tree establishment, data delivery, failure
// recovery on the paper's 2-PoD and 4-PoD topologies.
#include <gtest/gtest.h>

#include "harness/deploy.hpp"
#include "harness/experiment.hpp"
#include "topo/failure.hpp"

namespace mrmtp {
namespace {

using harness::Deployment;
using harness::DeployOptions;
using harness::Proto;

class MtpIntegrationTest : public ::testing::Test {
 protected:
  void deploy(topo::ClosParams params, std::uint64_t seed = 7) {
    // The deployment must die before the SimContext its timers point at
    // (matters when a test deploys more than once).
    dep_.reset();
    blueprint_.reset();
    ctx_ = std::make_unique<net::SimContext>(seed);
    blueprint_ = std::make_unique<topo::ClosBlueprint>(params);
    dep_ = std::make_unique<Deployment>(*ctx_, *blueprint_, Proto::kMtp,
                                        DeployOptions{});
    dep_->start();
  }

  void run_for(sim::Duration d) { ctx_->sched.run_until(ctx_->now() + d); }

  std::unique_ptr<net::SimContext> ctx_;
  std::unique_ptr<topo::ClosBlueprint> blueprint_;
  std::unique_ptr<Deployment> dep_;
};

TEST_F(MtpIntegrationTest, TwoPodTreeEstablishment) {
  deploy(topo::ClosParams::paper_2pod());
  run_for(sim::Duration::seconds(2));
  EXPECT_TRUE(dep_->converged());

  // Every top spine holds exactly one VID per ToR tree (paper Fig. 2).
  for (std::uint32_t t = 1; t <= 4; ++t) {
    auto& top = dep_->mtp(blueprint_->top_spine(t));
    EXPECT_EQ(top.vid_table().size(), 4u) << "T-" << t;
    for (std::uint16_t vid : dep_->all_vids()) {
      EXPECT_EQ(top.vid_table().entries_for_root(vid).size(), 1u);
    }
  }
  // Pod spines hold one VID per local ToR.
  for (std::uint32_t pod = 1; pod <= 2; ++pod) {
    for (std::uint32_t s = 1; s <= 2; ++s) {
      auto& spine = dep_->mtp(blueprint_->pod_spine(pod, s));
      EXPECT_EQ(spine.vid_table().size(), 2u);
    }
  }
}

TEST_F(MtpIntegrationTest, VidsEncodePaperPaths) {
  deploy(topo::ClosParams::paper_2pod());
  run_for(sim::Duration::seconds(2));

  // Paper Fig. 2: S1_1 acquires 11.1 and 12.1; S2_1 acquires 11.1.1.
  auto& s11 = dep_->mtp(blueprint_->pod_spine(1, 1));
  EXPECT_TRUE(s11.vid_table().contains(mtp::Vid::parse("11.1")));
  EXPECT_TRUE(s11.vid_table().contains(mtp::Vid::parse("12.1")));

  auto& t1 = dep_->mtp(blueprint_->top_spine(1));
  EXPECT_TRUE(t1.vid_table().contains(mtp::Vid::parse("11.1.1")));
  // T-3 connects to S-1-1's port 2 -> 11.1.2.
  auto& t3 = dep_->mtp(blueprint_->top_spine(3));
  EXPECT_TRUE(t3.vid_table().contains(mtp::Vid::parse("11.1.2")));
}

TEST_F(MtpIntegrationTest, EndToEndDelivery) {
  deploy(topo::ClosParams::paper_2pod());
  run_for(sim::Duration::seconds(2));
  ASSERT_TRUE(dep_->converged());

  auto& sender = dep_->host(0);    // H-1-1, subnet 192.168.11.0/24
  auto& receiver = dep_->host(3);  // H-2-2, subnet 192.168.14.0/24
  receiver.listen();
  traffic::FlowConfig flow;
  flow.dst = receiver.addr();
  flow.count = 100;
  flow.gap = sim::Duration::millis(1);
  sender.start_flow(flow);
  run_for(sim::Duration::seconds(1));

  EXPECT_EQ(sender.packets_sent(), 100u);
  EXPECT_EQ(receiver.sink_stats().unique_received, 100u);
  EXPECT_EQ(receiver.sink_stats().duplicates, 0u);
}

TEST_F(MtpIntegrationTest, IntraPodDeliveryUsesPodSpineShortcut) {
  deploy(topo::ClosParams::paper_2pod());
  run_for(sim::Duration::seconds(2));

  auto& sender = dep_->host(0);    // ToR 11
  auto& receiver = dep_->host(1);  // ToR 12, same pod
  receiver.listen();
  traffic::FlowConfig flow;
  flow.dst = receiver.addr();
  flow.count = 50;
  flow.gap = sim::Duration::millis(1);
  sender.start_flow(flow);
  run_for(sim::Duration::seconds(1));
  EXPECT_EQ(receiver.sink_stats().unique_received, 50u);

  // No top spine should have forwarded this pod-local traffic.
  for (std::uint32_t t = 1; t <= 4; ++t) {
    EXPECT_EQ(dep_->mtp(blueprint_->top_spine(t)).mtp_stats().data_forwarded,
              0u);
  }
}

TEST_F(MtpIntegrationTest, FourPodConvergesAndDelivers) {
  deploy(topo::ClosParams::paper_4pod());
  run_for(sim::Duration::seconds(3));
  ASSERT_TRUE(dep_->converged());

  auto& sender = dep_->host(0);
  auto& receiver = dep_->host(7);
  receiver.listen();
  traffic::FlowConfig flow;
  flow.dst = receiver.addr();
  flow.count = 100;
  flow.gap = sim::Duration::millis(1);
  sender.start_flow(flow);
  run_for(sim::Duration::seconds(1));
  EXPECT_EQ(receiver.sink_stats().unique_received, 100u);
}

TEST_F(MtpIntegrationTest, RecoversFromEachTestCaseFailure) {
  for (topo::TestCase tc : topo::kAllTestCases) {
    SCOPED_TRACE(std::string(topo::to_string(tc)));
    deploy(topo::ClosParams::paper_2pod());
    run_for(sim::Duration::seconds(2));
    ASSERT_TRUE(dep_->converged());

    topo::FailureInjector injector(dep_->network(), *blueprint_);
    injector.schedule_failure(tc, ctx_->now() + sim::Duration::millis(100));
    run_for(sim::Duration::seconds(2));

    // Traffic still flows both directions after reconvergence.
    auto& a = dep_->host(0);
    auto& b = dep_->host(3);
    b.listen();
    traffic::FlowConfig flow;
    flow.dst = b.addr();
    flow.count = 200;
    flow.gap = sim::Duration::millis(1);
    a.start_flow(flow);
    run_for(sim::Duration::seconds(1));
    EXPECT_EQ(b.sink_stats().unique_received, 200u);
  }
}

TEST_F(MtpIntegrationTest, InterfaceRecoveryRebuildsTree) {
  deploy(topo::ClosParams::paper_2pod());
  run_for(sim::Duration::seconds(2));
  ASSERT_TRUE(dep_->converged());

  topo::FailureInjector injector(dep_->network(), *blueprint_);
  injector.schedule_failure(topo::TestCase::kTC1,
                            ctx_->now() + sim::Duration::millis(100));
  run_for(sim::Duration::seconds(1));
  EXPECT_FALSE(dep_->converged());  // branch 11.1 pruned

  injector.schedule_recovery(ctx_->now() + sim::Duration::millis(100));
  run_for(sim::Duration::seconds(2));
  EXPECT_TRUE(dep_->converged());

  // The re-established branch carries the same derived VIDs.
  auto& t1 = dep_->mtp(blueprint_->top_spine(1));
  EXPECT_TRUE(t1.vid_table().contains(mtp::Vid::parse("11.1.1")));
}

}  // namespace
}  // namespace mrmtp
