// BGP session-level behavior on small hand-built topologies: FSM
// establishment, ASN validation, hold-timer expiry, fast external fallover,
// route propagation/withdrawal along a chain, ECMP installation, and
// AS-path loop rejection.
#include <gtest/gtest.h>

#include "bgp/router.hpp"

namespace mrmtp::bgp {
namespace {

class BgpPairTest : public ::testing::Test {
 protected:
  /// Two routers A (AS 64600) and B (AS 64601) on one /31.
  void wire(BgpTimers timers = {}, std::uint32_t b_asn_as_seen_by_a = 64601) {
    a_addr_ = ip::Ipv4Addr::parse("172.16.0.0");
    b_addr_ = ip::Ipv4Addr::parse("172.16.0.1");

    BgpConfig ca;
    ca.asn = 64600;
    ca.router_id = 1;
    ca.timers = timers;
    ca.neighbors = {{a_addr_, b_addr_, b_asn_as_seen_by_a}};
    ca.originate = {ip::Ipv4Prefix::parse("192.168.11.0/24")};
    a_ = &network_.add_node<BgpRouter>("A", 1, ca);

    BgpConfig cb;
    cb.asn = 64601;
    cb.router_id = 2;
    cb.timers = timers;
    cb.neighbors = {{b_addr_, a_addr_, 64600}};
    b_ = &network_.add_node<BgpRouter>("B", 2, cb);

    network_.connect(*a_, *b_);
    a_->configure_port(1, a_addr_, 31);
    b_->configure_port(1, b_addr_, 31);
    network_.start_all();
  }

  void run_for(sim::Duration d) { ctx_.sched.run_until(ctx_.now() + d); }

  net::SimContext ctx_{41};
  net::Network network_{ctx_};
  BgpRouter* a_ = nullptr;
  BgpRouter* b_ = nullptr;
  ip::Ipv4Addr a_addr_;
  ip::Ipv4Addr b_addr_;
};

TEST_F(BgpPairTest, SessionEstablishesAndAdvertises) {
  wire();
  run_for(sim::Duration::seconds(2));
  EXPECT_EQ(a_->session_state(b_addr_), BgpRouter::SessionState::kEstablished);
  EXPECT_EQ(b_->session_state(a_addr_), BgpRouter::SessionState::kEstablished);

  // B learned A's originated prefix with AS path [64600], next hop = A.
  const ip::Route* r =
      b_->routes().exact(ip::Ipv4Prefix::parse("192.168.11.0/24"));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->proto, ip::RouteProto::kBgp);
  EXPECT_EQ(r->nexthops.size(), 1u);
  EXPECT_EQ(r->nexthops[0].via, a_addr_);
}

TEST_F(BgpPairTest, AsnMismatchRefusesSession) {
  wire({}, /*b_asn_as_seen_by_a=*/64999);  // A expects the wrong AS
  run_for(sim::Duration::seconds(3));
  EXPECT_NE(a_->session_state(b_addr_), BgpRouter::SessionState::kEstablished);
  EXPECT_NE(b_->session_state(a_addr_), BgpRouter::SessionState::kEstablished);
  EXPECT_EQ(b_->routes().exact(ip::Ipv4Prefix::parse("192.168.11.0/24")),
            nullptr);
}

TEST_F(BgpPairTest, HoldTimerExpiryWithdrawsRoutes) {
  wire();
  run_for(sim::Duration::seconds(2));
  ASSERT_EQ(b_->established_sessions(), 1u);

  // Silence A (its interface dies); B only notices via its hold timer.
  a_->set_interface_down(1);
  run_for(sim::Duration::seconds(1));
  EXPECT_EQ(b_->established_sessions(), 1u);  // still inside hold time
  run_for(sim::Duration::seconds(3));
  EXPECT_EQ(b_->established_sessions(), 0u);
  EXPECT_EQ(b_->routes().exact(ip::Ipv4Prefix::parse("192.168.11.0/24")),
            nullptr);
}

TEST_F(BgpPairTest, FastExternalFalloverIsImmediate) {
  wire();
  run_for(sim::Duration::seconds(2));
  ASSERT_EQ(b_->established_sessions(), 1u);

  // B's own interface goes down: the session drops at once, no hold wait.
  b_->set_interface_down(1);
  EXPECT_EQ(b_->established_sessions(), 0u);
  EXPECT_EQ(b_->routes().exact(ip::Ipv4Prefix::parse("192.168.11.0/24")),
            nullptr);
}

TEST_F(BgpPairTest, SessionReestablishesAfterRecovery) {
  wire();
  run_for(sim::Duration::seconds(2));
  a_->set_interface_down(1);
  run_for(sim::Duration::seconds(5));
  ASSERT_EQ(b_->established_sessions(), 0u);

  a_->set_interface_up(1);
  run_for(sim::Duration::seconds(5));
  EXPECT_EQ(a_->established_sessions(), 1u);
  EXPECT_EQ(b_->established_sessions(), 1u);
  EXPECT_NE(b_->routes().exact(ip::Ipv4Prefix::parse("192.168.11.0/24")),
            nullptr);
}

TEST_F(BgpPairTest, KeepalivesFlowAtConfiguredRate) {
  wire();
  run_for(sim::Duration::seconds(2));
  std::uint64_t before = a_->bgp_stats().keepalives_sent;
  run_for(sim::Duration::seconds(5));
  std::uint64_t sent = a_->bgp_stats().keepalives_sent - before;
  // Jittered 0.75..1.0 x 1 s interval -> roughly 5-7 in 5 s.
  EXPECT_GE(sent, 4u);
  EXPECT_LE(sent, 8u);
}

/// Chain A(64600) - M(64700) - C(64800): transit propagation and loops.
class BgpChainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto addr = [](const char* s) { return ip::Ipv4Addr::parse(s); };
    BgpConfig ca;
    ca.asn = 64600;
    ca.neighbors = {{addr("172.16.0.0"), addr("172.16.0.1"), 64700}};
    ca.originate = {ip::Ipv4Prefix::parse("192.168.11.0/24")};
    a_ = &network_.add_node<BgpRouter>("A", 1, ca);

    BgpConfig cm;
    cm.asn = 64700;
    cm.neighbors = {{addr("172.16.0.1"), addr("172.16.0.0"), 64600},
                    {addr("172.16.0.2"), addr("172.16.0.3"), 64800}};
    m_ = &network_.add_node<BgpRouter>("M", 2, cm);

    BgpConfig cc;
    cc.asn = 64800;
    cc.neighbors = {{addr("172.16.0.3"), addr("172.16.0.2"), 64700}};
    cc.originate = {ip::Ipv4Prefix::parse("192.168.14.0/24")};
    c_ = &network_.add_node<BgpRouter>("C", 1, cc);

    network_.connect(*a_, *m_);
    network_.connect(*m_, *c_);
    a_->configure_port(1, addr("172.16.0.0"), 31);
    m_->configure_port(1, addr("172.16.0.1"), 31);
    m_->configure_port(2, addr("172.16.0.2"), 31);
    c_->configure_port(1, addr("172.16.0.3"), 31);
    network_.start_all();
    ctx_.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(3).ns()));
  }

  void run_for(sim::Duration d) { ctx_.sched.run_until(ctx_.now() + d); }

  net::SimContext ctx_{43};
  net::Network network_{ctx_};
  BgpRouter* a_ = nullptr;
  BgpRouter* m_ = nullptr;
  BgpRouter* c_ = nullptr;
};

TEST_F(BgpChainTest, TransitPropagationPrependsAsPath) {
  // C sees A's prefix through M: path [64700, 64600].
  const ip::Route* r =
      c_->routes().exact(ip::Ipv4Prefix::parse("192.168.11.0/24"));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->nexthops[0].via, ip::Ipv4Addr::parse("172.16.0.2"));

  // And A sees C's prefix symmetrically.
  EXPECT_NE(a_->routes().exact(ip::Ipv4Prefix::parse("192.168.14.0/24")),
            nullptr);
}

TEST_F(BgpChainTest, WithdrawalPropagatesThroughTransit) {
  ASSERT_NE(c_->routes().exact(ip::Ipv4Prefix::parse("192.168.11.0/24")),
            nullptr);
  a_->set_interface_down(1);
  run_for(sim::Duration::seconds(5));  // M's hold timer + withdrawal
  EXPECT_EQ(c_->routes().exact(ip::Ipv4Prefix::parse("192.168.11.0/24")),
            nullptr);
}

TEST_F(BgpChainTest, SummaryTextShowsNeighbors) {
  std::string summary = m_->summary_text();
  EXPECT_NE(summary.find("local AS number 64700"), std::string::npos);
  EXPECT_NE(summary.find("172.16.0.0"), std::string::npos);
  EXPECT_NE(summary.find("Established"), std::string::npos);
  // M received one prefix from each side.
  EXPECT_NE(summary.find("64600"), std::string::npos);
  EXPECT_NE(summary.find("64800"), std::string::npos);
}

TEST_F(BgpChainTest, UpdateCountsAreTracked) {
  EXPECT_GT(m_->bgp_stats().updates_received, 0u);
  EXPECT_GT(m_->bgp_stats().updates_sent, 0u);
  EXPECT_GT(m_->bgp_stats().rib_changes, 0u);
}

}  // namespace
}  // namespace mrmtp::bgp
