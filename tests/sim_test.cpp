// Unit tests: simulation time, scheduler ordering/cancellation, timers, RNG.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace mrmtp::sim {
namespace {

TEST(TimeTest, DurationConversions) {
  EXPECT_EQ(Duration::millis(3).ns(), 3'000'000);
  EXPECT_EQ(Duration::micros(5).ns(), 5'000);
  EXPECT_EQ(Duration::seconds(2).ns(), 2'000'000'000);
  EXPECT_DOUBLE_EQ(Duration::millis(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::seconds_f(0.25).to_millis(), 250.0);
}

TEST(TimeTest, Arithmetic) {
  Time t = Time::zero() + Duration::millis(10);
  EXPECT_EQ((t - Time::zero()).ns(), Duration::millis(10).ns());
  EXPECT_EQ((t + Duration::millis(5)).ns(), 15'000'000);
  EXPECT_EQ((Duration::millis(10) * 3).ns(), Duration::millis(30).ns());
  EXPECT_EQ((Duration::millis(10) / 2).ns(), Duration::millis(5).ns());
  EXPECT_LT(Time::zero(), t);
}

TEST(TimeTest, Rendering) {
  EXPECT_EQ(Duration::nanos(500).str(), "500ns");
  EXPECT_EQ(Duration::millis(3).str(), "3ms");
  EXPECT_EQ(Time::from_ns(1'500'000'000).str(), "1.500000s");
}

TEST(SchedulerTest, FiresInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(Time::from_ns(300), [&] { order.push_back(3); });
  sched.schedule_at(Time::from_ns(100), [&] { order.push_back(1); });
  sched.schedule_at(Time::from_ns(200), [&] { order.push_back(2); });
  EXPECT_TRUE(sched.run());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now().ns(), 300);
}

TEST(SchedulerTest, TiesFireInInsertionOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.schedule_at(Time::from_ns(50), [&order, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SchedulerTest, CancelPreventsFiring) {
  Scheduler sched;
  bool fired = false;
  EventId id = sched.schedule_after(Duration::millis(1), [&] { fired = true; });
  sched.cancel(id);
  sched.run();
  EXPECT_FALSE(fired);
}

TEST(SchedulerTest, CancelIsIdempotent) {
  Scheduler sched;
  EventId id = sched.schedule_after(Duration::millis(1), [] {});
  sched.cancel(id);
  sched.cancel(id);
  sched.cancel(EventId{});
  EXPECT_TRUE(sched.run());
}

TEST(SchedulerTest, SchedulingInThePastThrows) {
  Scheduler sched;
  sched.schedule_at(Time::from_ns(100), [] {});
  sched.run();
  EXPECT_THROW(sched.schedule_at(Time::from_ns(50), [] {}), std::logic_error);
}

TEST(SchedulerTest, NegativeDelayClampsToNow) {
  Scheduler sched;
  bool fired = false;
  sched.schedule_after(Duration::millis(-5), [&] { fired = true; });
  sched.run();
  EXPECT_TRUE(fired);
}

TEST(SchedulerTest, RunUntilAdvancesClockToDeadline) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(Time::from_ns(100), [&] { ++fired; });
  sched.schedule_at(Time::from_ns(900), [&] { ++fired; });
  sched.run_until(Time::from_ns(500));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now().ns(), 500);
  sched.run_until(Time::from_ns(1000));
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, EventsScheduledDuringEventsFire) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sched.schedule_after(Duration::nanos(10), recurse);
  };
  sched.schedule_after(Duration::nanos(10), recurse);
  sched.run();
  EXPECT_EQ(depth, 5);
}

TEST(SchedulerTest, MaxEventsGuardTrips) {
  Scheduler sched;
  std::function<void()> forever = [&] {
    sched.schedule_after(Duration::nanos(1), forever);
  };
  sched.schedule_after(Duration::nanos(1), forever);
  EXPECT_FALSE(sched.run(1000));
  EXPECT_EQ(sched.events_fired(), 1000u);
}

TEST(SchedulerTest, RescheduleMovesDeadlineLater) {
  Scheduler sched;
  std::vector<int> order;
  EventId moved =
      sched.schedule_at(Time::from_ns(100), [&] { order.push_back(1); });
  sched.schedule_at(Time::from_ns(200), [&] { order.push_back(2); });
  EXPECT_TRUE(sched.reschedule(moved, Time::from_ns(300)));
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_EQ(sched.now().ns(), 300);
}

TEST(SchedulerTest, RescheduleMovesDeadlineEarlier) {
  Scheduler sched;
  std::vector<int> order;
  EventId moved =
      sched.schedule_at(Time::from_ns(500), [&] { order.push_back(1); });
  sched.schedule_at(Time::from_ns(200), [&] { order.push_back(2); });
  EXPECT_TRUE(sched.reschedule(moved, Time::from_ns(100)));
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SchedulerTest, RescheduleAfterFireOrCancelFails) {
  Scheduler sched;
  EventId fired = sched.schedule_at(Time::from_ns(10), [] {});
  EventId cancelled = sched.schedule_at(Time::from_ns(20), [] {});
  sched.cancel(cancelled);
  sched.run();
  EXPECT_FALSE(sched.reschedule(fired, Time::from_ns(100)));
  EXPECT_FALSE(sched.reschedule(cancelled, Time::from_ns(100)));
  EXPECT_FALSE(sched.reschedule(EventId{}, Time::from_ns(100)));
}

TEST(SchedulerTest, ReschedulePastClampsToNow) {
  Scheduler sched;
  sched.schedule_at(Time::from_ns(100), [] {});
  sched.run();
  bool fired = false;
  EventId id = sched.schedule_at(Time::from_ns(500), [&] { fired = true; });
  EXPECT_TRUE(sched.reschedule(id, Time::from_ns(50)));  // in the past
  sched.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sched.now().ns(), 100);
}

/// The compaction invariant: no matter how hot the reschedule churn, the
/// calendar (day buckets + overflow ladder, stale hints included) never
/// outgrows max(64, 4 x live events).
std::size_t queue_bound(const Scheduler& sched) {
  return std::max<std::size_t>(64, 4 * sched.pending());
}

TEST(SchedulerTest, MillionReschedulesBoundQueueGrowth) {
  Scheduler sched;
  // One background event per "router" plus the churning dead-timer event.
  for (int i = 0; i < 16; ++i) {
    sched.schedule_at(Time::from_ns(2'000'000'000), [] {});
  }
  bool fired = false;
  EventId dead = sched.schedule_at(Time::from_ns(1'000'000'000),
                                   [&] { fired = true; });
  // A keep-alive per simulated frame: alternate bump-later and pull-earlier
  // so both reschedule paths run at full churn.
  for (std::int64_t i = 0; i < 1'000'000; ++i) {
    std::int64_t at = 1'000'000'000 + ((i % 2 == 0) ? i : -i);
    ASSERT_TRUE(sched.reschedule(dead, Time::from_ns(at)));
    ASSERT_LE(sched.queue_size(), queue_bound(sched)) << "at churn step " << i;
  }
  EXPECT_EQ(sched.reschedules(), 1'000'000u);
  EXPECT_LE(sched.queue_high_water(), queue_bound(sched));
  sched.run();
  EXPECT_TRUE(fired);
}

TEST(SchedulerTest, CancelChurnCompactsQueue) {
  Scheduler sched;
  for (int round = 0; round < 100; ++round) {
    std::vector<EventId> ids;
    for (int i = 0; i < 100; ++i) {
      ids.push_back(sched.schedule_after(Duration::millis(i + 1), [] {}));
    }
    for (EventId id : ids) sched.cancel(id);
    ASSERT_LE(sched.queue_size(), queue_bound(sched)) << "round " << round;
  }
  EXPECT_GT(sched.compactions(), 0u);
  EXPECT_EQ(sched.pending(), 0u);
  EXPECT_TRUE(sched.empty());
}

TEST(SchedulerTest, RescheduledEventFiresExactlyOnce) {
  Scheduler sched;
  int fires = 0;
  EventId id = sched.schedule_at(Time::from_ns(100), [&] { ++fires; });
  // Pull earlier several times — each push leaves a stale later entry that
  // must be discarded, not fired.
  for (std::int64_t at : {90, 80, 70, 60}) {
    ASSERT_TRUE(sched.reschedule(id, Time::from_ns(at)));
  }
  sched.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(sched.now().ns(), 60);
}

TEST(TimerTest, OneShotFiresOnce) {
  Scheduler sched;
  int fires = 0;
  Timer t(sched, [&] { ++fires; });
  t.start(Duration::millis(1));
  sched.run_until(Time::from_ns(Duration::millis(10).ns()));
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.running());
}

TEST(TimerTest, PeriodicFiresRepeatedly) {
  Scheduler sched;
  int fires = 0;
  Timer t(sched, [&] { ++fires; });
  t.start_periodic(Duration::millis(1));
  sched.run_until(Time::from_ns(Duration::micros(5500).ns()));
  EXPECT_EQ(fires, 5);
  t.stop();
  sched.run_until(Time::from_ns(Duration::millis(10).ns()));
  EXPECT_EQ(fires, 5);
}

TEST(TimerTest, RestartPostponesExpiry) {
  Scheduler sched;
  int fires = 0;
  Timer dead(sched, [&] { ++fires; });
  dead.start(Duration::millis(10));
  // Keep restarting before expiry — like keep-alives resetting a dead timer.
  for (int i = 1; i <= 5; ++i) {
    sched.schedule_at(Time::from_ns(Duration::millis(i * 8).ns()),
                      [&] { dead.restart(); });
  }
  sched.run_until(Time::from_ns(Duration::millis(45).ns()));
  EXPECT_EQ(fires, 0);
  sched.run_until(Time::from_ns(Duration::millis(60).ns()));
  EXPECT_EQ(fires, 1);
}

TEST(TimerTest, StopInsideCallbackOfOtherTimerIsSafe) {
  Scheduler sched;
  auto t2 = std::make_unique<Timer>(sched, [] { FAIL() << "must not fire"; });
  Timer t1(sched, [&] { t2->stop(); });
  t1.start(Duration::millis(1));
  t2->start(Duration::millis(2));
  sched.run_until(Time::from_ns(Duration::millis(5).ns()));
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.range(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformRoughlyBalanced) {
  Rng rng(11);
  double sum = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  EXPECT_NE(a.next(), child.next());
}

TEST(LoggerTest, LevelFilteringAndCapture) {
  Logger log;
  log.set_level(LogLevel::kInfo);
  log.capture(true);
  log.log(Time::zero(), LogLevel::kDebug, "x", "dropped");
  log.log(Time::zero(), LogLevel::kWarn, "y", "kept");
  ASSERT_EQ(log.captured().size(), 1u);
  EXPECT_EQ(log.captured()[0].message, "kept");
  EXPECT_EQ(log.captured()[0].component, "y");
}

TEST(LoggerTest, SinkReceivesRecords) {
  Logger log;
  log.set_level(LogLevel::kTrace);
  int count = 0;
  log.set_sink([&](const LogRecord&) { ++count; });
  log.log(Time::zero(), LogLevel::kError, "z", "msg");
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace mrmtp::sim
