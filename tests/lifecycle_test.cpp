// LifecycleEngine: rolling upgrades (drain -> wipe -> cold rejoin), live
// pod expansion, and the misconfiguration suite, audited end to end. The
// invariants under test:
//   * planned maintenance leaks zero auditor violations outside each
//     phase's declared reconvergence window;
//   * a draining router is healthy by definition — violations attributed
//     to it during the drain interval are failures;
//   * a cold-booted router rejoins with a fully wiped control plane and
//     the fabric re-converges inside the window;
//   * rebooting mid-handshake must not wedge the surviving neighbor.
#include <gtest/gtest.h>

#include "harness/auditor.hpp"
#include "harness/lifecycle.hpp"

namespace mrmtp {
namespace {

using harness::Deployment;
using harness::DeployOptions;
using harness::FabricAuditor;
using harness::LifecycleEngine;
using harness::Proto;

constexpr auto kSettle = sim::Duration::seconds(3);

struct Converged {
  net::SimContext ctx;
  topo::ClosBlueprint bp;
  Deployment dep;

  explicit Converged(Proto proto, std::uint64_t seed = 1,
                     topo::ClosParams params = topo::ClosParams::paper_2pod(),
                     DeployOptions opts = {})
      : ctx(seed), bp(params), dep(ctx, bp, proto, std::move(opts)) {
    dep.start();
    ctx.sched.run_until(sim::Time::zero() + kSettle);
  }

  /// Runs the fabric until `end` plus a little margin.
  void run_to(sim::Time end) {
    ctx.sched.run_until(end + sim::Duration::millis(100));
  }
};

/// Drives a rolling upgrade over `targets` and returns the engine for
/// post-run assertions. The auditor sweeps every 50 ms throughout.
sim::Time drive_upgrade(Converged& f, LifecycleEngine& engine,
                        const std::vector<std::uint32_t>& targets) {
  LifecycleEngine::Options opts;  // engine was built with defaults
  sim::Time t0 = f.ctx.now() + sim::Duration::millis(100);
  engine.rolling_upgrade(targets, t0);
  sim::Time end = t0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    end = end + opts.drain_grace + opts.reboot_hold + opts.reconverge_window;
  }
  f.run_to(end);
  return end;
}

TEST(Lifecycle, CanaryUpgradeMtp) {
  Converged f(Proto::kMtp);
  ASSERT_TRUE(f.dep.converged());
  FabricAuditor auditor(f.dep);
  auditor.start(sim::Duration::millis(50));
  LifecycleEngine engine(f.dep, auditor);

  std::vector<std::uint32_t> canary = engine.canary();
  ASSERT_EQ(canary.size(), 1u);
  drive_upgrade(f, engine, canary);
  auditor.stop();

  ASSERT_EQ(engine.phases().size(), 1u);
  EXPECT_TRUE(engine.all_reconverged());
  EXPECT_TRUE(engine.out_of_window_violations().empty());
  EXPECT_TRUE(engine.drain_violations().empty());
  EXPECT_TRUE(f.dep.converged());
  // The cold boot wiped the control plane and the router rejoined: it must
  // again hold VID state for every reachable leaf.
  EXPECT_EQ(auditor.sweep(), 0u);
}

TEST(Lifecycle, OnePodUpgradeMtp) {
  Converged f(Proto::kMtp);
  ASSERT_TRUE(f.dep.converged());
  FabricAuditor auditor(f.dep);
  auditor.start(sim::Duration::millis(50));
  LifecycleEngine engine(f.dep, auditor);

  std::vector<std::uint32_t> pod = engine.pod_routers(1);
  ASSERT_EQ(pod.size(), 4u);  // 2 ToRs + 2 pod spines in paper_2pod
  drive_upgrade(f, engine, pod);
  auditor.stop();

  EXPECT_EQ(engine.phases().size(), pod.size());
  EXPECT_TRUE(engine.all_reconverged());
  EXPECT_TRUE(engine.out_of_window_violations().empty());
  EXPECT_TRUE(engine.drain_violations().empty());
  EXPECT_TRUE(f.dep.converged());
}

// The acceptance scenario: every spine (pod and top tier) of the 8-PoD
// fabric upgraded serially, on the symmetric and the asymmetric variant.
TEST(Lifecycle, AllSpinesUpgradeMtp8Pod) {
  for (bool asymmetric : {false, true}) {
    topo::ClosParams params = asymmetric
                                  ? topo::ClosParams::asymmetric_8pod()
                                  : topo::ClosParams{8, 2, 2, 4, 1};
    Converged f(Proto::kMtp, /*seed=*/1, params);
    ASSERT_TRUE(f.dep.converged()) << (asymmetric ? "asym" : "sym");
    FabricAuditor auditor(f.dep);
    auditor.start(sim::Duration::millis(50));
    LifecycleEngine engine(f.dep, auditor);

    std::vector<std::uint32_t> spines = engine.all_spines();
    ASSERT_EQ(spines.size(), 20u);  // 8x2 pod spines + 4 top spines
    drive_upgrade(f, engine, spines);
    auditor.stop();

    EXPECT_TRUE(engine.all_reconverged()) << (asymmetric ? "asym" : "sym");
    EXPECT_TRUE(engine.out_of_window_violations().empty())
        << (asymmetric ? "asym" : "sym");
    EXPECT_TRUE(engine.drain_violations().empty())
        << (asymmetric ? "asym" : "sym");
    EXPECT_TRUE(f.dep.converged());
    EXPECT_EQ(auditor.sweep(), 0u);
  }
}

TEST(Lifecycle, CanaryUpgradeBgpBfd) {
  Converged f(Proto::kBgpBfd);
  ASSERT_TRUE(f.dep.converged());
  FabricAuditor auditor(f.dep);
  auditor.start(sim::Duration::millis(50));
  LifecycleEngine engine(f.dep, auditor);

  std::vector<std::uint32_t> canary = engine.canary();
  drive_upgrade(f, engine, canary);
  auditor.stop();

  EXPECT_TRUE(engine.all_reconverged());
  EXPECT_TRUE(engine.out_of_window_violations().empty());
  EXPECT_TRUE(engine.drain_violations().empty());
  EXPECT_TRUE(f.dep.converged());
  EXPECT_EQ(auditor.sweep(), 0u);
}

// A drained router is costed out, not broken: with a spine held in drain
// the fabric stays converged and the auditor stays silent.
TEST(Lifecycle, DrainedRouterIsHealthyByDefinition) {
  Converged f(Proto::kMtp);
  ASSERT_TRUE(f.dep.converged());
  std::uint32_t spine = f.bp.device_index("S-1-1");

  f.dep.drain_router(spine);
  f.ctx.sched.run_until(f.ctx.now() + sim::Duration::seconds(1));

  FabricAuditor auditor(f.dep);
  EXPECT_EQ(auditor.sweep(), 0u);
  EXPECT_TRUE(f.dep.converged());
}

TEST(Lifecycle, LiveExpansionMtp) {
  DeployOptions opts;
  opts.deferred_pods = {4};
  Converged f(Proto::kMtp, /*seed=*/1, topo::ClosParams::paper_4pod(), opts);
  ASSERT_TRUE(f.dep.converged());

  // The dark pod's routers are wired but powered off.
  std::vector<std::uint32_t> dark;
  for (std::uint32_t d = 0; d < f.bp.devices().size(); ++d) {
    if (f.bp.device(d).pod == 4) dark.push_back(d);
  }
  ASSERT_FALSE(dark.empty());
  for (std::uint32_t d : dark) EXPECT_FALSE(f.dep.router_active(d));

  FabricAuditor auditor(f.dep);
  auditor.start(sim::Duration::millis(50));
  ASSERT_EQ(auditor.sweep(), 0u) << "dark pod must not trip the auditor";

  LifecycleEngine::Options lopts;
  LifecycleEngine engine(f.dep, auditor);
  sim::Time t0 = f.ctx.now() + sim::Duration::millis(100);
  engine.expand_pod(4, t0);
  f.run_to(t0 + lopts.reconverge_window);
  auditor.stop();

  EXPECT_TRUE(engine.all_reconverged());
  EXPECT_TRUE(engine.out_of_window_violations().empty());
  for (std::uint32_t d : dark) EXPECT_TRUE(f.dep.router_active(d));
  EXPECT_TRUE(f.dep.converged());
  EXPECT_EQ(auditor.sweep(), 0u);

  // The merge is real: a host in the new pod reaches a host in pod 1.
  std::uint32_t new_host = 0;
  bool found = false;
  for (std::uint32_t h = 0; h < f.dep.host_count(); ++h) {
    if (f.bp.device(f.bp.hosts()[h].leaf).pod == 4) {
      new_host = h;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  auto& dst = f.dep.host(0);
  dst.listen();
  traffic::FlowConfig flow;
  flow.dst = dst.addr();
  f.dep.host(new_host).start_flow(flow);
  f.ctx.sched.run_until(f.ctx.now() + sim::Duration::millis(500));
  f.dep.host(new_host).stop_flow();
  EXPECT_GT(dst.sink_stats().unique_received, 0u);
}

TEST(Lifecycle, LiveExpansionBgpBfd) {
  DeployOptions opts;
  opts.deferred_pods = {4};
  Converged f(Proto::kBgpBfd, /*seed=*/1, topo::ClosParams::paper_4pod(),
              opts);
  ASSERT_TRUE(f.dep.converged());

  FabricAuditor auditor(f.dep);
  ASSERT_EQ(auditor.sweep(), 0u);

  LifecycleEngine::Options lopts;
  LifecycleEngine engine(f.dep, auditor);
  sim::Time t0 = f.ctx.now() + sim::Duration::millis(100);
  engine.expand_pod(4, t0);
  f.run_to(t0 + lopts.reconverge_window);

  EXPECT_TRUE(engine.all_reconverged());
  EXPECT_TRUE(f.dep.converged());
  EXPECT_EQ(auditor.sweep(), 0u);
}

TEST(Lifecycle, MisconfigAsymmetricDown) {
  for (Proto proto : {Proto::kMtp, Proto::kBgpBfd}) {
    Converged f(proto);
    ASSERT_TRUE(f.dep.converged()) << to_string(proto);
    FabricAuditor auditor(f.dep);
    auditor.start(sim::Duration::millis(50));
    LifecycleEngine::Options lopts;
    LifecycleEngine engine(f.dep, auditor);

    // One-sided shutdown of L-1-1's first uplink; S-1-1 is never told.
    std::uint32_t leaf = f.bp.device_index("L-1-1");
    sim::Time t0 = f.ctx.now() + sim::Duration::millis(100);
    engine.misconfig_asymmetric_down(leaf, 1, t0);
    f.run_to(t0 + lopts.reconverge_window);
    auditor.stop();

    EXPECT_TRUE(engine.all_reconverged()) << to_string(proto);
    EXPECT_TRUE(engine.out_of_window_violations().empty()) << to_string(proto);
    EXPECT_TRUE(f.dep.converged()) << to_string(proto);
  }
}

// A rack deployed with another rack's subnet: the fabric must reject the
// duplicate root (MR-MTP names trees by the rack VID) and keep every other
// tree clean. The victim is excluded from convergence scopes by design.
TEST(Lifecycle, MisconfigDuplicateSubnetMtp) {
  DeployOptions opts;
  std::uint32_t source = 0;
  std::uint32_t victim = 0;
  {
    topo::ClosBlueprint probe(topo::ClosParams::paper_2pod());
    source = probe.device_index("L-1-1");
    victim = probe.device_index("L-2-1");
  }
  opts.duplicate_subnet_of = std::make_pair(victim, source);
  Converged f(Proto::kMtp, /*seed=*/1, topo::ClosParams::paper_2pod(), opts);

  EXPECT_TRUE(f.dep.converged());
  std::uint64_t rejected = 0;
  for (std::uint32_t d = 0; d < f.dep.router_count(); ++d) {
    rejected += f.dep.mtp(d).mtp_stats().duplicate_roots_rejected;
  }
  EXPECT_GT(rejected, 0u);
  FabricAuditor auditor(f.dep);
  EXPECT_EQ(auditor.sweep(), 0u) << "containment: other trees stay clean";
}

// BGP mode refuses the duplicate-subnet knob: overlapping rack prefixes
// would silently anycast instead of being detected.
TEST(Lifecycle, DuplicateSubnetRejectedUnderBgp) {
  net::SimContext ctx(1);
  topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
  DeployOptions opts;
  opts.duplicate_subnet_of = std::make_pair(3u, 0u);
  EXPECT_THROW(Deployment(ctx, bp, Proto::kBgp, opts), std::invalid_argument);
}

// Two seeded stripe miswires: reachability is preserved, so the fabric must
// still converge and audit clean even though the wiring violates the rule.
TEST(Lifecycle, MisconfigMiswiredStripeStillConverges) {
  topo::ClosParams params{8, 2, 2, 4, 1};
  params.miswires = 2;
  params.miswire_seed = 7;
  Converged f(Proto::kMtp, /*seed=*/1, params);

  // Each seeded swap crosses two cables, so both ends of the swap report.
  EXPECT_EQ(f.bp.miswired_links().size(), 2u * 2);
  EXPECT_TRUE(f.dep.converged());
  FabricAuditor auditor(f.dep);
  EXPECT_EQ(auditor.sweep(), 0u);
}

// Reboot while the neighbor is mid BGP handshake: the stop() teardown RSTs
// half-open connections, and the surviving peer must fall back to its
// connect-retry loop instead of wedging on a dead session.
TEST(Lifecycle, RebootMidHandshakeDoesNotWedgeBgpNeighbor) {
  net::SimContext ctx(1);
  topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
  Deployment dep(ctx, bp, Proto::kBgp);
  dep.start();

  // 10 ms in: SYNs and OPENs are in flight, nothing is established yet.
  ctx.sched.run_until(sim::Time::zero() + sim::Duration::millis(10));
  std::uint32_t spine = bp.device_index("S-1-1");
  dep.stop_router(spine);
  ctx.sched.run_until(ctx.now() + sim::Duration::seconds(2));
  dep.restart_router(spine);
  ctx.sched.run_until(ctx.now() + sim::Duration::seconds(8));

  EXPECT_TRUE(dep.converged());
  FabricAuditor auditor(dep);
  EXPECT_EQ(auditor.sweep(), 0u);
}

// Reboot mid MTP bring-up (ADVERTISE/JOIN exchange in flight): the wiped
// router must rejoin from nothing and the neighbor must not keep phantom
// state from the half-finished exchange.
TEST(Lifecycle, RebootMidAdvertiseMtp) {
  net::SimContext ctx(1);
  topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
  Deployment dep(ctx, bp, Proto::kMtp);
  dep.start();

  ctx.sched.run_until(sim::Time::zero() + sim::Duration::millis(2));
  std::uint32_t spine = bp.device_index("S-1-1");
  dep.stop_router(spine);
  ctx.sched.run_until(ctx.now() + sim::Duration::millis(500));
  dep.restart_router(spine);
  ctx.sched.run_until(ctx.now() + sim::Duration::seconds(3));

  EXPECT_TRUE(dep.converged());
  FabricAuditor auditor(dep);
  EXPECT_EQ(auditor.sweep(), 0u);
}

// Asymmetric fabrics (non-uniform rack counts, mixed uplink speeds) must
// converge and audit clean under both stacks before any lifecycle runs.
TEST(Lifecycle, AsymmetricFabricConverges) {
  for (Proto proto : {Proto::kMtp, Proto::kBgpBfd}) {
    Converged f(proto, /*seed=*/1, topo::ClosParams::asymmetric_8pod());
    EXPECT_TRUE(f.dep.converged()) << to_string(proto);
    FabricAuditor auditor(f.dep);
    EXPECT_EQ(auditor.sweep(), 0u) << to_string(proto);
  }
}

// The engine's event log mirrors into an attached ChaosEngine so lifecycle
// actions line up with chaos events on one timeline.
TEST(Lifecycle, EventsMirrorIntoChaosLog) {
  Converged f(Proto::kMtp);
  ASSERT_TRUE(f.dep.converged());
  FabricAuditor auditor(f.dep);
  topo::ChaosEngine chaos(f.dep.network(), f.bp, /*seed=*/5);
  LifecycleEngine engine(f.dep, auditor);
  engine.attach_chaos(chaos);

  drive_upgrade(f, engine, engine.canary());

  EXPECT_FALSE(engine.events().empty());
  EXPECT_GE(chaos.log().size(), engine.events().size());
  bool saw_maintenance = false;
  for (const auto& ev : chaos.log()) {
    if (ev.kind == topo::GrayKind::kMaintenance) saw_maintenance = true;
  }
  EXPECT_TRUE(saw_maintenance);
}

}  // namespace
}  // namespace mrmtp
