// Unit tests: BGP message codecs (RFC 4271 wire format, exact sizes), the
// stream reassembler, and config-text generation (paper Listing 1).
#include <gtest/gtest.h>

#include "bgp/message.hpp"
#include "bgp/router.hpp"

namespace mrmtp::bgp {
namespace {

TEST(BgpCodecTest, KeepaliveIs19Bytes) {
  auto bytes = encode(KeepaliveMessage{});
  EXPECT_EQ(bytes.size(), kHeaderSize);
  // Marker of all ones.
  for (int i = 0; i < 16; ++i) EXPECT_EQ(bytes[static_cast<size_t>(i)], 0xff);
  EXPECT_EQ(bytes[18], 4);  // type
}

TEST(BgpCodecTest, OpenRoundTrip) {
  OpenMessage open{64512, 3, 0x0a0b0c0d};
  auto bytes = encode(open);
  EXPECT_EQ(bytes.size(), 29u);

  MessageReader reader;
  reader.append(bytes);
  auto msg = reader.next();
  ASSERT_TRUE(msg.has_value());
  const auto* parsed = std::get_if<OpenMessage>(&*msg);
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->asn, 64512u);
  EXPECT_EQ(parsed->hold_time_s, 3);
  EXPECT_EQ(parsed->bgp_id, 0x0a0b0c0du);
}

TEST(BgpCodecTest, UpdateWithNlriRoundTrip) {
  UpdateMessage u;
  u.as_path = {64513, 64600};
  u.next_hop = ip::Ipv4Addr::parse("172.16.0.1");
  u.nlri = {ip::Ipv4Prefix::parse("192.168.11.0/24"),
            ip::Ipv4Prefix::parse("192.168.12.0/24")};
  auto bytes = encode(u);

  MessageReader reader;
  reader.append(bytes);
  auto msg = reader.next();
  ASSERT_TRUE(msg.has_value());
  const auto* parsed = std::get_if<UpdateMessage>(&*msg);
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->as_path, (std::vector<std::uint32_t>{64513, 64600}));
  EXPECT_EQ(parsed->next_hop, u.next_hop);
  ASSERT_EQ(parsed->nlri.size(), 2u);
  EXPECT_EQ(parsed->nlri[0].str(), "192.168.11.0/24");
  EXPECT_TRUE(parsed->withdrawn.empty());
}

TEST(BgpCodecTest, WithdrawOnlyUpdate) {
  UpdateMessage u;
  u.withdrawn = {ip::Ipv4Prefix::parse("192.168.11.0/24")};
  auto bytes = encode(u);
  // 19 header + 2 withdrawn-len + 4 prefix + 2 attr-len = 27 bytes.
  EXPECT_EQ(bytes.size(), 27u);

  MessageReader reader;
  reader.append(bytes);
  auto parsed = std::get<UpdateMessage>(*reader.next());
  ASSERT_EQ(parsed.withdrawn.size(), 1u);
  EXPECT_EQ(parsed.withdrawn[0].str(), "192.168.11.0/24");
  EXPECT_FALSE(parsed.has_nlri());
}

TEST(BgpCodecTest, PrefixEncodingUsesMinimalOctets) {
  UpdateMessage u;
  u.withdrawn = {ip::Ipv4Prefix::parse("10.0.0.0/8"),
                 ip::Ipv4Prefix::parse("10.1.0.0/16"),
                 ip::Ipv4Prefix::parse("0.0.0.0/0")};
  auto bytes = encode(u);
  // 19 + 2 + (1+1) + (1+2) + (1+0) + 2 = 29.
  EXPECT_EQ(bytes.size(), 29u);
  MessageReader reader;
  reader.append(bytes);
  auto parsed = std::get<UpdateMessage>(*reader.next());
  EXPECT_EQ(parsed.withdrawn[0].str(), "10.0.0.0/8");
  EXPECT_EQ(parsed.withdrawn[1].str(), "10.1.0.0/16");
  EXPECT_EQ(parsed.withdrawn[2].str(), "0.0.0.0/0");
}

TEST(BgpCodecTest, NotificationRoundTrip) {
  auto bytes = encode(NotificationMessage{6, 2});
  EXPECT_EQ(bytes.size(), 21u);
  MessageReader reader;
  reader.append(bytes);
  auto parsed = std::get<NotificationMessage>(*reader.next());
  EXPECT_EQ(parsed.code, 6);
  EXPECT_EQ(parsed.subcode, 2);
}

TEST(MessageReaderTest, ReassemblesSplitStream) {
  auto k = encode(KeepaliveMessage{});
  auto o = encode(OpenMessage{64512, 3, 1});
  std::vector<std::uint8_t> stream;
  stream.insert(stream.end(), k.begin(), k.end());
  stream.insert(stream.end(), o.begin(), o.end());

  MessageReader reader;
  // Feed in 5-byte pieces, as TCP segmentation might.
  for (std::size_t i = 0; i < stream.size(); i += 5) {
    std::size_t n = std::min<std::size_t>(5, stream.size() - i);
    reader.append(std::span(stream).subspan(i, n));
  }
  auto first = reader.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(std::holds_alternative<KeepaliveMessage>(*first));
  auto second = reader.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(std::holds_alternative<OpenMessage>(*second));
  EXPECT_FALSE(reader.next().has_value());
}

TEST(MessageReaderTest, IncompleteMessageReturnsNullopt) {
  auto k = encode(KeepaliveMessage{});
  MessageReader reader;
  reader.append(std::span(k).subspan(0, 10));
  EXPECT_FALSE(reader.next().has_value());
  reader.append(std::span(k).subspan(10));
  EXPECT_TRUE(reader.next().has_value());
}

TEST(MessageReaderTest, BadMarkerThrows) {
  auto k = encode(KeepaliveMessage{});
  k[3] = 0x00;
  MessageReader reader;
  reader.append(k);
  EXPECT_THROW(reader.next(), util::CodecError);
}

TEST(MessageReaderTest, BadLengthThrows) {
  std::vector<std::uint8_t> bogus(19, 0xff);
  bogus[16] = 0;
  bogus[17] = 5;  // length 5 < header size
  MessageReader reader;
  reader.append(bogus);
  EXPECT_THROW(reader.next(), util::CodecError);
}

TEST(BgpConfigTest, ConfigTextMatchesListing1Shape) {
  net::SimContext ctx(1);
  BgpConfig cfg;
  cfg.asn = 64512;
  cfg.enable_bfd = true;
  cfg.timers.keepalive = sim::Duration::seconds(1);
  cfg.timers.hold = sim::Duration::seconds(3);
  cfg.neighbors = {
      {ip::Ipv4Addr::parse("172.16.0.1"), ip::Ipv4Addr::parse("172.16.0.2"),
       64513},
      {ip::Ipv4Addr::parse("172.16.1.1"), ip::Ipv4Addr::parse("172.16.1.2"),
       64514},
  };
  BgpRouter router(ctx, "T-1", 3, cfg);
  std::string text = router.config_text();
  EXPECT_NE(text.find("frr defaults datacenter"), std::string::npos);
  EXPECT_NE(text.find("hostname T-1"), std::string::npos);
  EXPECT_NE(text.find("router bgp 64512"), std::string::npos);
  EXPECT_NE(text.find("timers bgp 1 3"), std::string::npos);
  EXPECT_NE(text.find("neighbor 172.16.0.2 remote-as 64513"),
            std::string::npos);
  EXPECT_NE(text.find("neighbor 172.16.0.2 bfd"), std::string::npos);
  EXPECT_NE(text.find("maximum-paths"), std::string::npos);
}

TEST(BgpConfigTest, ConfigGrowsWithNeighborCount) {
  net::SimContext ctx(1);
  auto make = [&ctx](int neighbors) {
    BgpConfig cfg;
    cfg.asn = 64512;
    for (int i = 0; i < neighbors; ++i) {
      cfg.neighbors.push_back(
          {ip::Ipv4Addr(static_cast<std::uint32_t>(2 * i)),
           ip::Ipv4Addr(static_cast<std::uint32_t>(2 * i + 1)),
           64600u + static_cast<std::uint32_t>(i)});
    }
    return cfg;
  };
  BgpRouter small(ctx, "small", 2, make(2));
  BgpRouter big(ctx, "big", 2, make(8));
  // The paper's configuration-burden point: per-router config scales with
  // interface count for BGP.
  EXPECT_GT(big.config_text().size(), small.config_text().size());
}

}  // namespace
}  // namespace mrmtp::bgp
