// Decoder-robustness property tests: random and mutated bytes must never
// crash, hang, or corrupt a router — malformed frames are dropped, malformed
// BGP messages reset the session, and a converged fabric keeps working while
// being sprayed with garbage.
#include <gtest/gtest.h>

#include "bgp/message.hpp"
#include "harness/auditor.hpp"
#include "harness/deploy.hpp"
#include "mtp/message.hpp"
#include "sim/random.hpp"
#include "topo/chaos.hpp"

namespace mrmtp {
namespace {

std::vector<std::uint8_t> random_bytes(sim::Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, MtpDecoderNeverCrashes) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    auto bytes = random_bytes(rng, 128);
    try {
      auto msg = mtp::decode(bytes);
      // If it decoded, re-encoding must not crash either.
      auto reenc = mtp::encode(msg);
      (void)reenc;
    } catch (const util::CodecError&) {
      // Expected for malformed input.
    }
  }
}

TEST_P(FuzzSeeds, MtpDecoderRejectsMutatedValidMessages) {
  sim::Rng rng(GetParam() * 31);
  mtp::JoinOfferMsg offer;
  offer.msg_id = 7;
  offer.vids = {mtp::Vid::parse("11.1.2"), mtp::Vid::parse("12.1")};
  auto valid = mtp::encode(mtp::MtpMessage{offer});

  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> mutated(valid.begin(), valid.end());
    // Flip 1-4 random bytes.
    int flips = static_cast<int>(rng.range(1, 4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(rng.next());
    }
    // Occasionally truncate.
    if (rng.chance(0.3)) {
      mutated.resize(rng.below(mutated.size() + 1));
    }
    try {
      (void)mtp::decode(mutated);
    } catch (const util::CodecError&) {
    }
  }
}

TEST_P(FuzzSeeds, BgpReaderNeverCrashes) {
  sim::Rng rng(GetParam() * 97);
  for (int i = 0; i < 2000; ++i) {
    bgp::MessageReader reader;
    // Mix of garbage and valid fragments fed in random chunks.
    std::vector<std::uint8_t> stream;
    if (rng.chance(0.5)) {
      bgp::UpdateMessage u;
      u.as_path = {64512};
      u.next_hop = ip::Ipv4Addr::parse("1.2.3.4");
      u.nlri = {ip::Ipv4Prefix::parse("10.0.0.0/8")};
      auto enc = bgp::encode(u);
      stream.insert(stream.end(), enc.begin(), enc.end());
    }
    auto junk = random_bytes(rng, 64);
    stream.insert(stream.end(), junk.begin(), junk.end());

    std::size_t pos = 0;
    try {
      while (pos < stream.size()) {
        std::size_t n = 1 + rng.below(7);
        n = std::min(n, stream.size() - pos);
        reader.append(std::span(stream).subspan(pos, n));
        pos += n;
        while (reader.next().has_value()) {
        }
      }
    } catch (const util::CodecError&) {
      // A session would reset here; the reader must simply stop.
    }
  }
}

TEST_P(FuzzSeeds, RoutersSurviveGarbageFramesWhileForwarding) {
  net::SimContext ctx(GetParam());
  topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
  harness::Deployment dep(ctx, bp, harness::Proto::kMtp, {});
  dep.start();
  ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(2).ns()));
  ASSERT_TRUE(dep.converged());

  // Spray garbage MTP-ethertype and IPv4-ethertype frames at S-1-1 from
  // its ToR-facing port while real traffic flows.
  auto& spine = dep.mtp(bp.pod_spine(1, 1));
  sim::Rng rng(GetParam() * 7);
  for (int i = 0; i < 500; ++i) {
    ctx.sched.schedule_after(
        sim::Duration::micros(100 * i), [&spine, &rng] {
          net::Frame junk;
          junk.ethertype = rng.chance(0.5) ? net::EtherType::kMtp
                                           : net::EtherType::kIpv4;
          junk.payload = random_bytes(rng, 96);
          spine.handle_frame(spine.port(3), junk);
        });
  }

  auto& sender = dep.host(0);
  auto& receiver = dep.host(3);
  receiver.listen();
  traffic::FlowConfig flow;
  flow.dst = receiver.addr();
  flow.count = 300;
  flow.gap = sim::Duration::micros(300);
  sender.start_flow(flow);
  ctx.sched.run_until(ctx.now() + sim::Duration::seconds(1));

  EXPECT_EQ(receiver.sink_stats().unique_received, 300u);
  EXPECT_TRUE(dep.converged());  // garbage must not perturb the trees
}

// Seeded chaos campaign: spray a converged 2-PoD MR-MTP fabric with random
// unidirectional blackholes and partial loss, each healing before the next
// hits, while the FabricAuditor sweeps. After every re-convergence window
// (just before the next onset, and once the dust fully settles) the fabric
// must be free of loops and blackhole violations.
TEST_P(FuzzSeeds, ChaosCampaignKeepsForwardingInvariants) {
  net::SimContext ctx(GetParam());
  topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
  harness::Deployment dep(ctx, bp, harness::Proto::kMtp, {});
  dep.start();
  ctx.sched.run_until(sim::Time::zero() + sim::Duration::seconds(3));
  ASSERT_TRUE(dep.converged());

  topo::ChaosEngine chaos(dep.network(), bp, GetParam() * 13);
  topo::ChaosEngine::CampaignSpec spec;
  spec.events = 4;
  spec.start = ctx.now() + sim::Duration::millis(100);
  spec.spacing = sim::Duration::millis(1500);
  spec.heal_after = sim::Duration::millis(400);
  spec.w_blackhole = 0.5;
  spec.w_loss = 0.5;
  spec.w_ramp = spec.w_flap = spec.w_correlated = 0.0;
  chaos.run_campaign(spec);
  // Every onset also logs its heal (satellite: full-timeline records).
  ASSERT_EQ(chaos.log().size(), 8u);
  int onsets = 0;
  for (const topo::ChaosEventRecord& r : chaos.log()) {
    if (r.phase == topo::ChaosPhase::kOnset) ++onsets;
  }
  ASSERT_EQ(onsets, 4);

  harness::FabricAuditor auditor(dep);
  auto assert_no_forwarding_violations = [&](int window) {
    std::size_t before = auditor.violations().size();
    auditor.sweep();
    for (std::size_t i = before; i < auditor.violations().size(); ++i) {
      const harness::Violation& v = auditor.violations()[i];
      EXPECT_NE(v.kind, harness::InvariantKind::kForwardingLoop)
          << "window " << window << ": " << v.str();
      EXPECT_NE(v.kind, harness::InvariantKind::kForwardingBlackhole)
          << "window " << window << ": " << v.str();
      EXPECT_NE(v.kind, harness::InvariantKind::kExclusionBlackhole)
          << "window " << window << ": " << v.str();
    }
  };

  // Sweep just before each next onset: the previous impairment healed
  // 400 ms ago and MR-MTP had ~1.1 s to re-accept and rejoin.
  for (int e = 1; e < spec.events; ++e) {
    ctx.sched.run_until(spec.start + spec.spacing * e -
                        sim::Duration::millis(10));
    assert_no_forwarding_violations(e);
  }
  ctx.sched.run_until(spec.start + spec.spacing * spec.events +
                      sim::Duration::seconds(2));
  assert_no_forwarding_violations(spec.events);
  EXPECT_TRUE(dep.converged());
}

// --- systematic truncation / bit-flip round-trips -------------------------
// Exhaustive prefixes and dense single-byte corruption of every control
// message type. The decoders must reject or parse — never crash or read
// past the supplied bytes (the sanitized variant enforces the over-read
// half) — and anything that does parse must re-encode stably.

std::vector<std::vector<std::uint8_t>> mtp_corpus() {
  std::vector<std::vector<std::uint8_t>> corpus;
  auto add = [&](mtp::MtpMessage msg) {
    net::Buffer enc = mtp::encode(std::move(msg));
    corpus.emplace_back(enc.begin(), enc.end());
  };
  add(mtp::HelloMsg{});
  add(mtp::AdvertiseMsg{.tier = 2,
                        .vids = {mtp::Vid::parse("11"),
                                 mtp::Vid::parse("12.3")}});
  add(mtp::JoinRequestMsg{.vids = {mtp::Vid::parse("11.1")}});
  add(mtp::JoinOfferMsg{.msg_id = 42,
                        .vids = {mtp::Vid::parse("11.1.2"),
                                 mtp::Vid::parse("12.1")}});
  add(mtp::CtrlAckMsg{.msg_id = 7});
  add(mtp::VidWithdrawMsg{.msg_id = 9, .vids = {mtp::Vid::parse("13.2")}});
  add(mtp::DestUnreachMsg{.msg_id = 3, .roots = {11, 12, 14}});
  add(mtp::DestClearMsg{.msg_id = 4, .roots = {11}});
  mtp::DataMsg data;
  data.src_root = 11;
  data.dst_root = 14;
  data.ttl = 12;
  const std::uint8_t ip_bytes[] = {0xde, 0xad, 0xbe, 0xef, 0x01};
  data.ip_packet = net::Buffer::copy_of(ip_bytes);
  add(mtp::MtpMessage{std::move(data)});
  return corpus;
}

// If a truncated or corrupted MTP payload still decodes (DataMsg prefixes
// legitimately can — the tail is the opaque IP packet), the parse must be
// self-consistent: re-encoding cannot invent bytes beyond the input, and a
// second decode/encode cycle must be byte-for-byte stable.
void expect_parse_or_reject(const std::vector<std::uint8_t>& bytes) {
  try {
    mtp::MtpMessage msg = mtp::decode(bytes);
    net::Buffer reenc = mtp::encode(std::move(msg));
    std::vector<std::uint8_t> first(reenc.begin(), reenc.end());
    ASSERT_LE(first.size(), bytes.size());
    mtp::MtpMessage again = mtp::decode(first);
    net::Buffer reenc2 = mtp::encode(std::move(again));
    std::vector<std::uint8_t> second(reenc2.begin(), reenc2.end());
    EXPECT_EQ(first, second);
  } catch (const util::CodecError&) {
    // Reject is always acceptable.
  }
}

TEST(DecodeRoundTrip, MtpEveryTruncationRejectsOrParses) {
  for (const auto& valid : mtp_corpus()) {
    // The untruncated message must round-trip exactly.
    mtp::MtpMessage msg = mtp::decode(valid);
    net::Buffer reenc = mtp::encode(std::move(msg));
    EXPECT_EQ(std::vector<std::uint8_t>(reenc.begin(), reenc.end()), valid);
    for (std::size_t len = 0; len < valid.size(); ++len) {
      expect_parse_or_reject(
          std::vector<std::uint8_t>(valid.begin(), valid.begin() + len));
    }
  }
}

TEST_P(FuzzSeeds, MtpBitFlipsRejectOrParse) {
  sim::Rng rng(GetParam() * 131);
  for (const auto& valid : mtp_corpus()) {
    // Dense pass: every byte position, every bit.
    for (std::size_t pos = 0; pos < valid.size(); ++pos) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<std::uint8_t> mutated = valid;
        mutated[pos] ^= static_cast<std::uint8_t>(1u << bit);
        expect_parse_or_reject(mutated);
      }
    }
    // Random pass: multi-byte corruption plus truncation.
    for (int i = 0; i < 200; ++i) {
      std::vector<std::uint8_t> mutated = valid;
      int flips = static_cast<int>(rng.range(1, 4));
      for (int f = 0; f < flips; ++f) {
        mutated[rng.below(mutated.size())] ^=
            static_cast<std::uint8_t>(rng.next());
      }
      if (rng.chance(0.5)) mutated.resize(rng.below(mutated.size() + 1));
      expect_parse_or_reject(mutated);
    }
  }
}

std::vector<std::vector<std::uint8_t>> bgp_corpus() {
  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.push_back(bgp::encode(
      bgp::OpenMessage{.asn = 64601, .hold_time_s = 3, .bgp_id = 0x0a000101}));
  bgp::UpdateMessage reachable;
  reachable.as_path = {64601, 64512};
  reachable.next_hop = ip::Ipv4Addr::parse("172.16.0.1");
  reachable.nlri = {ip::Ipv4Prefix::parse("192.168.11.0/24"),
                    ip::Ipv4Prefix::parse("192.168.12.0/24")};
  corpus.push_back(bgp::encode(reachable));
  bgp::UpdateMessage withdraw;
  withdraw.withdrawn = {ip::Ipv4Prefix::parse("192.168.13.0/24")};
  corpus.push_back(bgp::encode(withdraw));
  corpus.push_back(bgp::encode(bgp::NotificationMessage{.code = 6}));
  corpus.push_back(bgp::encode(bgp::KeepaliveMessage{}));
  return corpus;
}

// A strict prefix of a BGP message can never complete (the header carries
// the full length): the reader must wait for more bytes or throw — it must
// never fabricate a message from a partial one.
TEST(DecodeRoundTrip, BgpEveryTruncationWaitsOrRejects) {
  for (const auto& valid : bgp_corpus()) {
    for (std::size_t len = 0; len < valid.size(); ++len) {
      bgp::MessageReader reader;
      reader.append(std::span(valid.data(), len));
      try {
        EXPECT_FALSE(reader.next().has_value()) << "prefix len " << len;
      } catch (const util::CodecError&) {
      }
    }
    // The full message parses, and appending the tail after a strict
    // prefix completes the very same parse (stream reassembly).
    for (std::size_t split : {std::size_t{1}, valid.size() / 2}) {
      if (split >= valid.size()) continue;
      bgp::MessageReader reader;
      reader.append(std::span(valid.data(), split));
      EXPECT_FALSE(reader.next().has_value());
      reader.append(
          std::span(valid.data() + split, valid.size() - split));
      EXPECT_TRUE(reader.next().has_value());
      EXPECT_EQ(reader.buffered(), 0u);
    }
  }
}

TEST_P(FuzzSeeds, BgpBitFlipsRejectOrParse) {
  sim::Rng rng(GetParam() * 173);
  for (const auto& valid : bgp_corpus()) {
    for (std::size_t pos = 0; pos < valid.size(); ++pos) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<std::uint8_t> mutated = valid;
        mutated[pos] ^= static_cast<std::uint8_t>(1u << bit);
        bgp::MessageReader reader;
        reader.append(std::span(mutated));
        try {
          while (reader.next().has_value()) {
          }
        } catch (const util::CodecError&) {
          // Session reset; the reader must simply stop.
        }
      }
    }
    for (int i = 0; i < 200; ++i) {
      std::vector<std::uint8_t> mutated = valid;
      int flips = static_cast<int>(rng.range(1, 4));
      for (int f = 0; f < flips; ++f) {
        mutated[rng.below(mutated.size())] ^=
            static_cast<std::uint8_t>(rng.next());
      }
      if (rng.chance(0.5)) mutated.resize(rng.below(mutated.size() + 1));
      bgp::MessageReader reader;
      reader.append(std::span(mutated));
      try {
        while (reader.next().has_value()) {
        }
      } catch (const util::CodecError&) {
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace mrmtp
