// Randomized differential test: the calendar-queue Scheduler vs a tiny
// obviously-correct reference model, driven with identical schedule /
// schedule_at_ordered / reschedule / cancel / step / run_until sequences.
// The sequences deliberately include same-deadline bursts (exercising the
// (time, order, fifo) tie-break), far-future deadlines (exercising the
// overflow ladder and re-seeding), reschedule churn in both directions, and
// operations on already-fired ids. Pop order must match event for event.
//
// Runs plain, under ASan, and under TSan (see tests/CMakeLists.txt and
// scripts/check.sh).

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace mrmtp {
namespace {

using sim::Duration;
using sim::EventId;
using sim::Rng;
using sim::Scheduler;
using sim::Time;

/// Reference model: a flat map scanned for the minimum on every pop. O(n)
/// per operation and transparently correct — the property the calendar is
/// checked against.
class ReferenceScheduler {
 public:
  void schedule(Time at, std::uint64_t order, std::uint64_t token) {
    pending_[token] = Ev{at.ns(), order, next_fifo_++};
  }

  bool reschedule(std::uint64_t token, Time at) {
    auto it = pending_.find(token);
    if (it == pending_.end()) return false;
    if (at < now_) at = now_;
    it->second.at_ns = at.ns();  // fifo survives, matching the calendar
    return true;
  }

  void cancel(std::uint64_t token) { pending_.erase(token); }

  /// Pops the (time, order, fifo) minimum; returns false when empty.
  bool pop(std::uint64_t& token_out, std::int64_t& at_out) {
    return pop_until(Time::from_ns(INT64_MAX), token_out, at_out);
  }

  bool pop_until(Time deadline, std::uint64_t& token_out,
                 std::int64_t& at_out) {
    if (pending_.empty()) return false;
    auto best = pending_.begin();
    for (auto it = std::next(best); it != pending_.end(); ++it) {
      if (before(it->second, best->second)) best = it;
    }
    if (best->second.at_ns > deadline.ns()) return false;
    token_out = best->first;
    at_out = best->second.at_ns;
    now_ = Time::from_ns(best->second.at_ns);
    pending_.erase(best);
    return true;
  }

  void advance_to(Time deadline) {
    if (deadline > now_) now_ = deadline;
  }

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] std::size_t size() const { return pending_.size(); }

 private:
  struct Ev {
    std::int64_t at_ns;
    std::uint64_t order;
    std::uint64_t fifo;
  };
  static bool before(const Ev& a, const Ev& b) {
    if (a.at_ns != b.at_ns) return a.at_ns < b.at_ns;
    if (a.order != b.order) return a.order < b.order;
    return a.fifo < b.fifo;
  }

  std::map<std::uint64_t, Ev> pending_;
  std::uint64_t next_fifo_ = 1;
  Time now_ = Time::zero();
};

/// Drives both schedulers through one random fuzz run and asserts identical
/// pop order, identical reschedule return values, and identical clocks.
void fuzz_run(std::uint64_t seed, int ops) {
  Scheduler cal;
  ReferenceScheduler ref;
  Rng rng(seed);

  std::uint64_t next_token = 1;
  // token -> calendar EventId for every schedule that ever happened; stale
  // entries stay so cancel/reschedule also hit already-fired events.
  std::vector<std::pair<std::uint64_t, EventId>> ids;
  std::vector<std::uint64_t> cal_fired;
  std::vector<std::uint64_t> ref_fired;

  auto schedule_one = [&](Time at, std::uint64_t order) {
    std::uint64_t token = next_token++;
    EventId id = cal.schedule_at_ordered(
        at, order, [&cal_fired, token] { cal_fired.push_back(token); });
    ref.schedule(at, order, token);
    ids.emplace_back(token, id);
  };

  auto random_delay = [&]() -> Duration {
    switch (rng.below(6)) {
      case 0:
        return Duration{};  // same instant as now
      case 1:
        return Duration::nanos(rng.range(1, 50));
      case 2:
        return Duration::micros(rng.range(1, 500));
      case 3:
        return Duration::millis(rng.range(1, 50));
      case 4:  // far future: guaranteed past any day window -> overflow ladder
        return Duration::seconds(rng.range(10, 1000));
      default:
        return Duration::micros(rng.range(1, 20));
    }
  };

  for (int op = 0; op < ops; ++op) {
    switch (rng.below(10)) {
      case 0:
      case 1: {  // plain schedule (kUnordered key)
        schedule_one(cal.now() + random_delay(), Scheduler::kUnordered);
        break;
      }
      case 2: {  // keyed schedule, small key space so keys collide too
        schedule_one(cal.now() + random_delay(),
                     static_cast<std::uint64_t>(rng.below(8)));
        break;
      }
      case 3: {  // same-deadline burst, mixed keyed/plain
        Time at = cal.now() + random_delay();
        int n = static_cast<int>(rng.range(2, 12));
        for (int i = 0; i < n; ++i) {
          std::uint64_t order = rng.chance(0.5)
                                    ? Scheduler::kUnordered
                                    : static_cast<std::uint64_t>(rng.below(4));
          schedule_one(at, order);
        }
        break;
      }
      case 4: {  // reschedule a random (possibly fired) event
        if (ids.empty()) break;
        auto& [token, id] = ids[rng.below(ids.size())];
        Time at = cal.now() + random_delay();
        if (rng.chance(0.25)) {  // sometimes aim at the past (clamps to now)
          at = Time::from_ns(cal.now().ns() / 2);
        }
        ASSERT_EQ(cal.reschedule(id, at), ref.reschedule(token, at))
            << "seed " << seed << " op " << op;
        break;
      }
      case 5: {  // cancel a random (possibly fired) event
        if (ids.empty()) break;
        auto& [token, id] = ids[rng.below(ids.size())];
        cal.cancel(id);
        ref.cancel(token);
        break;
      }
      case 6:
      case 7: {  // step a few events
        int n = static_cast<int>(rng.range(1, 8));
        for (int i = 0; i < n; ++i) {
          std::uint64_t token = 0;
          std::int64_t at_ns = 0;
          bool ref_had = ref.pop(token, at_ns);
          ASSERT_EQ(cal.step(), ref_had) << "seed " << seed << " op " << op;
          if (!ref_had) break;
          ref_fired.push_back(token);
          ASSERT_EQ(cal.now().ns(), at_ns) << "seed " << seed << " op " << op;
        }
        break;
      }
      case 8: {  // run_until a random horizon
        Time deadline = cal.now() + random_delay();
        cal.run_until(deadline);
        std::uint64_t token = 0;
        std::int64_t at_ns = 0;
        while (ref.pop_until(deadline, token, at_ns)) {
          ref_fired.push_back(token);
        }
        ref.advance_to(deadline);
        ASSERT_EQ(cal.now().ns(), ref.now().ns())
            << "seed " << seed << " op " << op;
        break;
      }
      default: {  // consistency checkpoint
        ASSERT_EQ(cal.pending(), ref.size()) << "seed " << seed << " op " << op;
        ASSERT_LE(cal.queue_size(),
                  std::max<std::size_t>(64, 4 * cal.pending()))
            << "seed " << seed << " op " << op;
        break;
      }
    }
    ASSERT_EQ(cal_fired.size(), ref_fired.size())
        << "seed " << seed << " op " << op;
    if (!cal_fired.empty() && cal_fired.back() != ref_fired.back()) {
      FAIL() << "pop order diverged at seed " << seed << " op " << op
             << ": calendar fired " << cal_fired.back() << ", reference fired "
             << ref_fired.back();
    }
  }

  // Drain both completely and compare the full tail.
  for (;;) {
    std::uint64_t token = 0;
    std::int64_t at_ns = 0;
    bool ref_had = ref.pop(token, at_ns);
    bool cal_had = cal.step();
    ASSERT_EQ(cal_had, ref_had) << "seed " << seed << " at drain";
    if (!ref_had) break;
    ref_fired.push_back(token);
    ASSERT_EQ(cal.now().ns(), at_ns) << "seed " << seed << " at drain";
  }
  ASSERT_EQ(cal_fired, ref_fired) << "seed " << seed;
  EXPECT_TRUE(cal.empty());
  EXPECT_EQ(cal.queue_size(), 0u);
}

TEST(CalendarQueueProperty, MatchesReferenceAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    fuzz_run(0x9e3779b97f4a7c15ull * seed + seed, 1500);
    if (HasFatalFailure()) return;
  }
}

TEST(CalendarQueueProperty, LongChurnSingleSeed) { fuzz_run(42, 20000); }

TEST(CalendarQueueProperty, SameDeadlineBurstKeyedBeforePlain) {
  // A keyed event scheduled *after* a plain one at the same instant must
  // still pop first: the sharded engine relies on keyed-before-plain being
  // invariant under insert order.
  Scheduler cal;
  std::vector<int> fired;
  Time at = Time::from_ns(1000);
  cal.schedule_at(at, [&] { fired.push_back(100); });
  cal.schedule_at_ordered(at, 7, [&] { fired.push_back(7); });
  cal.schedule_at_ordered(at, 3, [&] { fired.push_back(3); });
  cal.schedule_at(at, [&] { fired.push_back(101); });
  cal.run();
  EXPECT_EQ(fired, (std::vector<int>{3, 7, 100, 101}));
}

TEST(CalendarQueueProperty, FarFutureOverflowReseeds) {
  // Everything beyond the day window lands in the overflow ladder; popping
  // across the horizon forces a re-seed that must preserve order exactly.
  Scheduler cal;
  Rng rng(7);
  ReferenceScheduler ref;
  std::vector<std::uint64_t> cal_fired;
  std::vector<std::uint64_t> ref_fired;
  for (std::uint64_t token = 1; token <= 2000; ++token) {
    Time at =
        Time::from_ns(rng.range(0, 1ll << 30) +
                      rng.range(0, 3) * 3'600'000'000'000ll);
    cal.schedule_at(at, [&cal_fired, token] { cal_fired.push_back(token); });
    ref.schedule(at, Scheduler::kUnordered, token);
  }
  while (cal.step()) {
  }
  std::uint64_t token = 0;
  std::int64_t at_ns = 0;
  while (ref.pop(token, at_ns)) ref_fired.push_back(token);
  EXPECT_EQ(cal_fired, ref_fired);
  EXPECT_GT(cal.compactions(), 0u);  // the horizon was actually crossed
}

}  // namespace
}  // namespace mrmtp
