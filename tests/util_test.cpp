// Unit tests: byte I/O cursors, JSON, string helpers.
#include <gtest/gtest.h>

#include "util/byte_io.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace mrmtp::util {
namespace {

TEST(BufWriterTest, WritesNetworkOrder) {
  BufWriter w;
  w.u8(0x12);
  w.u16(0x3456);
  w.u32(0x789abcde);
  ASSERT_EQ(w.size(), 7u);
  const auto& b = w.data();
  EXPECT_EQ(b[0], 0x12);
  EXPECT_EQ(b[1], 0x34);
  EXPECT_EQ(b[2], 0x56);
  EXPECT_EQ(b[3], 0x78);
  EXPECT_EQ(b[4], 0x9a);
  EXPECT_EQ(b[5], 0xbc);
  EXPECT_EQ(b[6], 0xde);
}

TEST(BufWriterTest, PatchU16OverwritesInPlace) {
  BufWriter w;
  w.u16(0);
  w.u32(0xdeadbeef);
  w.patch_u16(0, 0xcafe);
  EXPECT_EQ(w.data()[0], 0xca);
  EXPECT_EQ(w.data()[1], 0xfe);
}

TEST(BufWriterTest, PatchOutOfRangeThrows) {
  BufWriter w;
  w.u8(1);
  EXPECT_THROW(w.patch_u16(0, 1), CodecError);
}

TEST(BufReaderTest, RoundTripsAllWidths) {
  BufWriter w;
  w.u8(7);
  w.u16(1024);
  w.u32(123456789);
  w.u64(0x0123456789abcdefull);
  auto buf = w.take();

  BufReader r(buf);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 1024);
  EXPECT_EQ(r.u32(), 123456789u);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_TRUE(r.empty());
}

TEST(BufReaderTest, OverrunThrows) {
  // Opaque size so the optimizer cannot "prove" the (guarded) overrun.
  volatile std::size_t n = 2;
  std::vector<std::uint8_t> buf(n, 1);
  BufReader r(buf);
  r.u16();
  EXPECT_THROW(r.u8(), CodecError);
}

TEST(BufReaderTest, SkipAndRest) {
  std::vector<std::uint8_t> buf{1, 2, 3, 4, 5};
  BufReader r(buf);
  r.skip(2);
  auto rest = r.rest();
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0], 3);
  EXPECT_TRUE(r.empty());
}

TEST(HexTest, DumpFormatsRows) {
  std::vector<std::uint8_t> data(20, 0x41);  // 'A'
  std::string dump = hex_dump(data);
  EXPECT_NE(dump.find("0000"), std::string::npos);
  EXPECT_NE(dump.find("41 41"), std::string::npos);
  EXPECT_NE(dump.find("|AAAA"), std::string::npos);
}

TEST(HexTest, HexString) {
  std::vector<std::uint8_t> data{0xff, 0x00, 0x8a};
  EXPECT_EQ(hex_string(data), "ff008a");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = split("a..b", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, SplitSingle) {
  auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(StringsTest, JoinRoundTrip) {
  std::vector<std::string> parts{"11", "1", "2"};
  EXPECT_EQ(join(parts, "."), "11.1.2");
  EXPECT_EQ(join({}, "."), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, ParseU64) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("42", v));
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(parse_u64("18446744073709551615", v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(parse_u64("18446744073709551616", v));  // overflow
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("-1", v));
  EXPECT_FALSE(parse_u64("12a", v));
}

TEST(JsonTest, ScalarRoundTrips) {
  EXPECT_EQ(Json::parse("42").as_int(), 42);
  EXPECT_EQ(Json::parse("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(Json::parse("2.5").as_double(), 2.5);
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("\"hi\\n\"").as_string(), "hi\n");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json j;
  j["zebra"] = Json(1);
  j["alpha"] = Json(2);
  std::string out = j.dump(false);
  EXPECT_LT(out.find("zebra"), out.find("alpha"));
}

TEST(JsonTest, NestedDocumentRoundTrip) {
  const char* text = R"({
    "topology": {
      "tiers": 3,
      "leaves": ["L-1-1", "L-1-2"],
      "leavesNetworkPortDict": {"L-1-1": "eth3"},
      "enabled": true
    }
  })";
  Json j = Json::parse(text);
  const Json* topo = j.find("topology");
  ASSERT_NE(topo, nullptr);
  EXPECT_EQ(topo->find("tiers")->as_int(), 3);
  EXPECT_EQ(topo->find("leaves")->as_array().size(), 2u);
  EXPECT_EQ(topo->find("leavesNetworkPortDict")->find("L-1-1")->as_string(),
            "eth3");

  // dump -> parse -> dump is a fixed point.
  std::string once = j.dump();
  EXPECT_EQ(Json::parse(once).dump(), once);
}

TEST(JsonTest, ParseErrorsCarryOffset) {
  EXPECT_THROW(Json::parse("{"), CodecError);
  EXPECT_THROW(Json::parse("[1,]"), CodecError);
  EXPECT_THROW(Json::parse("42 garbage"), CodecError);
  EXPECT_THROW(Json::parse("\"unterminated"), CodecError);
}

TEST(JsonTest, UnicodeEscapes) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");  // é
}

TEST(JsonTest, EmptyContainers) {
  EXPECT_EQ(Json::parse("[]").as_array().size(), 0u);
  EXPECT_EQ(Json::parse("{}").as_object().size(), 0u);
  Json arr{JsonArray{}};
  EXPECT_EQ(arr.dump(), "[]");
}

}  // namespace
}  // namespace mrmtp::util
