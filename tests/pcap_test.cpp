// Pcap capture tests: file format correctness (validated by re-parsing the
// produced bytes) and capture of a live MR-MTP link showing the paper's
// Fig.-10 keep-alive frames.
#include <gtest/gtest.h>

#include <cstdio>

#include "harness/deploy.hpp"
#include "net/pcap.hpp"

namespace mrmtp::net {
namespace {

std::uint32_t rd32(const std::vector<std::uint8_t>& b, std::size_t off) {
  return static_cast<std::uint32_t>(b[off]) |
         (static_cast<std::uint32_t>(b[off + 1]) << 8) |
         (static_cast<std::uint32_t>(b[off + 2]) << 16) |
         (static_cast<std::uint32_t>(b[off + 3]) << 24);
}

TEST(PcapWriterTest, GlobalHeaderFormat) {
  PcapWriter w;
  auto bytes = w.to_pcap();
  ASSERT_EQ(bytes.size(), 24u);
  EXPECT_EQ(rd32(bytes, 0), 0xa1b2c3d4u);  // magic
  EXPECT_EQ(bytes[4], 2);                  // major
  EXPECT_EQ(bytes[6], 4);                  // minor
  EXPECT_EQ(rd32(bytes, 16), 65535u);      // snaplen
  EXPECT_EQ(rd32(bytes, 20), 1u);          // LINKTYPE_ETHERNET
}

TEST(PcapWriterTest, RecordsCarryTimestampAndFrame) {
  PcapWriter w;
  Frame f;
  f.dst = MacAddr::broadcast();
  f.ethertype = EtherType::kMtp;
  f.payload = {0x06};
  w.capture(sim::Time::from_ns(1'500'000'000) /* 1.5 s */, f);

  auto bytes = w.to_pcap();
  ASSERT_EQ(bytes.size(), 24u + 16 + 15);
  EXPECT_EQ(rd32(bytes, 24), 1u);       // ts seconds
  EXPECT_EQ(rd32(bytes, 28), 500000u);  // ts microseconds
  EXPECT_EQ(rd32(bytes, 32), 15u);      // captured length
  EXPECT_EQ(rd32(bytes, 36), 15u);      // original length
  // First captured byte: broadcast destination MAC.
  EXPECT_EQ(bytes[40], 0xff);
  // Last byte is the 0x06 keep-alive.
  EXPECT_EQ(bytes.back(), 0x06);
}

TEST(PcapWriterTest, WritesFile) {
  PcapWriter w;
  Frame f;
  f.payload = {1, 2, 3};
  w.capture(sim::Time::zero(), f);
  std::string path = ::testing::TempDir() + "/mrmtp_test.pcap";
  ASSERT_TRUE(w.write_file(path));
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::fseek(file, 0, SEEK_END);
  long size = std::ftell(file);
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_EQ(static_cast<std::size_t>(size), w.to_pcap().size());
}

TEST(PcapTapTest, CapturesLiveMtpLink) {
  net::SimContext ctx(3);
  topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
  harness::Deployment dep(ctx, bp, harness::Proto::kMtp, {});

  // Tap the L-1-1 <-> S-1-1 link like tshark on that interface pair.
  PcapWriter writer;
  // Link 8 is the first ToR uplink (after the 8 spine uplinks); find it
  // structurally instead of by index:
  for (std::uint32_t li = 0; li < bp.links().size(); ++li) {
    const auto& l = bp.links()[li];
    if (bp.device(l.upper).name == "S-1-1" &&
        bp.device(l.lower).name == "L-1-1") {
      attach_tap(*dep.network().links()[li], writer);
    }
  }

  dep.start();
  ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(3).ns()));
  ASSERT_GT(writer.size(), 20u);

  // The idle link carries 1-byte 0x06 keep-alives in both directions —
  // the paper's Fig. 10 capture.
  std::size_t hellos = 0;
  for (const auto& rec : writer.records()) {
    if (rec.traffic_class == TrafficClass::kMtpHello) {
      ++hellos;
      const auto bytes = rec.bytes();
      ASSERT_EQ(bytes.size(), 15u);
      EXPECT_EQ(bytes[12], 0x88);  // EtherType 0x8850
      EXPECT_EQ(bytes[13], 0x50);
      EXPECT_EQ(bytes[14], 0x06);  // the keep-alive byte
    }
  }
  EXPECT_GT(hellos, 20u);  // ~40/s once the fabric idles

  // Timestamps are monotone non-decreasing.
  for (std::size_t i = 1; i < writer.records().size(); ++i) {
    EXPECT_GE(writer.records()[i].at.ns(), writer.records()[i - 1].at.ns());
  }
}

}  // namespace
}  // namespace mrmtp::net
