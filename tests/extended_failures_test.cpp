// Extended failure cases (paper §IX future work): whole-router crashes,
// simultaneous multi-point failures, pod isolation, and an exhaustive
// every-single-link sweep proving connectivity survives any one link loss
// under both protocol stacks.
#include <gtest/gtest.h>

#include "harness/deploy.hpp"
#include "topo/failure.hpp"

namespace mrmtp {
namespace {

using harness::Deployment;
using harness::Proto;

class ExtendedFailureTest : public ::testing::Test {
 protected:
  void deploy(Proto proto, topo::ClosParams params = topo::ClosParams::paper_2pod(),
              std::uint64_t seed = 5) {
    proto_ = proto;
    // The deployment must die before the SimContext its timers point at
    // (matters when a test deploys more than once).
    dep_.reset();
    blueprint_.reset();
    ctx_ = std::make_unique<net::SimContext>(seed);
    blueprint_ = std::make_unique<topo::ClosBlueprint>(params);
    dep_ = std::make_unique<Deployment>(*ctx_, *blueprint_, proto,
                                        harness::DeployOptions{});
    dep_->start();
    ctx_->sched.run_until(ctx_->now() + settle(proto));
    ASSERT_TRUE(dep_->converged());
  }

  static sim::Duration settle(Proto proto) {
    return proto == Proto::kMtp ? sim::Duration::seconds(2)
                                : sim::Duration::seconds(5);
  }

  void run_for(sim::Duration d) { ctx_->sched.run_until(ctx_->now() + d); }

  /// Sends `count` packets host a -> host b and returns unique deliveries.
  std::uint64_t probe(std::uint32_t a, std::uint32_t b, std::uint64_t count) {
    auto& sender = dep_->host(a);
    auto& receiver = dep_->host(b);
    receiver.reset_sink();
    receiver.listen();
    traffic::FlowConfig flow;
    flow.dst = receiver.addr();
    flow.count = count;
    flow.gap = sim::Duration::micros(500);
    sender.start_flow(flow);
    run_for(sim::Duration::millis(
        static_cast<std::int64_t>(count) / 2 + 200));
    return receiver.sink_stats().unique_received;
  }

  Proto proto_ = Proto::kMtp;
  std::unique_ptr<net::SimContext> ctx_;
  std::unique_ptr<topo::ClosBlueprint> blueprint_;
  std::unique_ptr<Deployment> dep_;
};

TEST_F(ExtendedFailureTest, PodSpineCrashReroutesTraffic) {
  for (Proto proto : {Proto::kMtp, Proto::kBgp}) {
    SCOPED_TRACE(std::string(to_string(proto)));
    deploy(proto);
    topo::FailureInjector injector(dep_->network(), *blueprint_);
    injector.schedule_node_failure("S-1-1", ctx_->now() + sim::Duration::millis(10));
    run_for(sim::Duration::seconds(4));  // worst case: BGP hold timer
    EXPECT_EQ(probe(0, 3, 200), 200u);
    EXPECT_EQ(probe(3, 0, 200), 200u);
  }
}

TEST_F(ExtendedFailureTest, TopSpineCrashReroutesTraffic) {
  for (Proto proto : {Proto::kMtp, Proto::kBgp}) {
    SCOPED_TRACE(std::string(to_string(proto)));
    deploy(proto);
    topo::FailureInjector injector(dep_->network(), *blueprint_);
    injector.schedule_node_failure("T-1", ctx_->now() + sim::Duration::millis(10));
    run_for(sim::Duration::seconds(4));
    EXPECT_EQ(probe(0, 3, 200), 200u);
  }
}

TEST_F(ExtendedFailureTest, CrashedSpineRejoinsAfterRecovery) {
  deploy(Proto::kMtp);
  topo::FailureInjector injector(dep_->network(), *blueprint_);
  injector.schedule_node_failure("S-1-1", ctx_->now() + sim::Duration::millis(10));
  run_for(sim::Duration::seconds(1));
  EXPECT_FALSE(dep_->converged());

  injector.schedule_node_recovery("S-1-1", ctx_->now() + sim::Duration::millis(10));
  run_for(sim::Duration::seconds(2));
  EXPECT_TRUE(dep_->converged());
  auto& spine = dep_->mtp(blueprint_->pod_spine(1, 1));
  EXPECT_EQ(spine.vid_table().size(), 2u);  // rejoined both local trees
}

TEST_F(ExtendedFailureTest, BothPodSpinesDownIsolatesPodWithoutLoops) {
  deploy(Proto::kMtp);
  topo::FailureInjector injector(dep_->network(), *blueprint_);
  injector.schedule_node_failure("S-1-1", ctx_->now() + sim::Duration::millis(10));
  injector.schedule_node_failure("S-1-2", ctx_->now() + sim::Duration::millis(12));
  run_for(sim::Duration::seconds(1));

  // Pod 1 is unreachable; packets must be dropped cleanly at the edges —
  // no TTL-expiry storms (which would indicate forwarding loops).
  EXPECT_EQ(probe(3, 0, 100), 0u);
  std::uint64_t ttl_drops = 0;
  for (std::uint32_t d = 0; d < dep_->router_count(); ++d) {
    ttl_drops += dep_->mtp(d).mtp_stats().data_dropped_ttl;
  }
  EXPECT_EQ(ttl_drops, 0u);

  // Pod 2 internal traffic is unaffected.
  EXPECT_EQ(probe(2, 3, 100), 100u);
}

TEST_F(ExtendedFailureTest, SimultaneousFailuresInDifferentPods) {
  for (Proto proto : {Proto::kMtp, Proto::kBgp}) {
    SCOPED_TRACE(std::string(to_string(proto)));
    deploy(proto, topo::ClosParams::paper_4pod());
    // One spine in pod 1 and one in pod 4 die at the same instant — both in
    // "plane 1" (S-x-1 wires to T-1/T-3), so plane 2 still connects the
    // pods end to end.
    topo::FailureInjector injector(dep_->network(), *blueprint_);
    injector.schedule_node_failure("S-1-1", ctx_->now() + sim::Duration::millis(10));
    injector.schedule_node_failure("S-4-1", ctx_->now() + sim::Duration::millis(10));
    run_for(sim::Duration::seconds(4));
    EXPECT_EQ(probe(0, 7, 200), 200u);  // pod 1 -> pod 4 still works
  }
}

TEST_F(ExtendedFailureTest, CrossPlaneDoubleFailureDisconnectsCleanly) {
  // S-1-1 (plane 1) + S-4-2 (plane 2): pod 1 can then only exit on plane 2
  // and pod 4 can only be entered from plane 1 — the pods are PHYSICALLY
  // disconnected in a k=4 fat-tree. Both protocols must drop cleanly at
  // the edge (no loops, no TTL storms), and unaffected pairs keep working.
  deploy(Proto::kMtp, topo::ClosParams::paper_4pod());
  topo::FailureInjector injector(dep_->network(), *blueprint_);
  injector.schedule_node_failure("S-1-1", ctx_->now() + sim::Duration::millis(10));
  injector.schedule_node_failure("S-4-2", ctx_->now() + sim::Duration::millis(10));
  run_for(sim::Duration::seconds(2));

  EXPECT_EQ(probe(0, 7, 100), 0u);  // genuinely unreachable
  std::uint64_t ttl_drops = 0;
  for (std::uint32_t d = 0; d < dep_->router_count(); ++d) {
    ttl_drops += dep_->mtp(d).mtp_stats().data_dropped_ttl;
  }
  EXPECT_EQ(ttl_drops, 0u);
  // Pod 1 <-> pod 2 and pod 3 <-> pod 4 still have plane paths.
  EXPECT_EQ(probe(0, 3, 100), 100u);
  EXPECT_EQ(probe(5, 7, 100), 100u);
}

TEST_F(ExtendedFailureTest, RackLinkFailureOnlyStrandsThatServer) {
  deploy(Proto::kMtp);
  // Sever H-1-1's own access link (beyond the paper's TC set).
  auto& leaf = dep_->network().find("L-1-1");
  leaf.set_interface_down(blueprint_->leaf_host_port(blueprint_->leaf(1, 1)));
  run_for(sim::Duration::millis(200));

  EXPECT_EQ(probe(0, 3, 50), 0u);   // the stranded server cannot send
  EXPECT_EQ(probe(1, 3, 50), 50u);  // its pod neighbor is unaffected
}

// Exhaustive single-link sweep: for EVERY fabric link, fail the lower-tier
// side, reconverge, and verify the representative far corner pair still
// communicates — redundancy means no single link is a cut edge.
class LinkSweepProperty
    : public ::testing::TestWithParam<std::tuple<harness::Proto, std::uint64_t>> {
};

TEST_P(LinkSweepProperty, AnySingleLinkLossIsSurvivable) {
  auto [proto, seed] = GetParam();
  topo::ClosParams params = topo::ClosParams::paper_2pod();
  topo::ClosBlueprint bp(params);

  for (std::uint32_t li = 0; li < bp.links().size(); ++li) {
    net::SimContext ctx(seed + li);
    Deployment dep(ctx, bp, proto, {});
    dep.start();
    ctx.sched.run_until(sim::Time::from_ns(
        (proto == Proto::kMtp ? sim::Duration::seconds(2)
                              : sim::Duration::seconds(5))
            .ns()));
    ASSERT_TRUE(dep.converged()) << "link " << li;

    const auto& link = bp.links()[li];
    dep.router(link.lower).set_interface_down(bp.port_on(link.lower, li));
    ctx.sched.run_until(ctx.now() + sim::Duration::seconds(4));

    auto& sender = dep.host(0);
    auto& receiver = dep.host(3);
    receiver.listen();
    traffic::FlowConfig flow;
    flow.dst = receiver.addr();
    flow.count = 100;
    flow.gap = sim::Duration::millis(1);
    sender.start_flow(flow);
    ctx.sched.run_until(ctx.now() + sim::Duration::seconds(1));
    EXPECT_EQ(receiver.sink_stats().unique_received, 100u)
        << "failed link " << bp.device(link.upper).name << " <-> "
        << bp.device(link.lower).name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LinkSweepProperty,
    ::testing::Combine(::testing::Values(Proto::kMtp, Proto::kBgp),
                       ::testing::Values(101, 202)));

}  // namespace
}  // namespace mrmtp
