// Unit tests: frames, links (delay/serialization/impairments), nodes, and
// the one-sided interface-failure semantics the paper's TC analysis needs.
#include <gtest/gtest.h>

#include "net/network.hpp"

namespace mrmtp::net {
namespace {

/// Test node that records every received frame with its arrival time.
class SinkNode : public Node {
 public:
  using Node::Node;

  void handle_frame(Port& in, Frame frame) override {
    arrivals.push_back({ctx_.now(), in.number(), std::move(frame)});
  }
  void on_port_down(Port& port) override { downs.push_back(port.number()); }
  void on_port_up(Port& port) override { ups.push_back(port.number()); }

  struct Arrival {
    sim::Time at;
    std::uint32_t port;
    Frame frame;
  };
  std::vector<Arrival> arrivals;
  std::vector<std::uint32_t> downs;
  std::vector<std::uint32_t> ups;
};

Frame make_frame(std::size_t payload_size,
                 TrafficClass tc = TrafficClass::kOther) {
  Frame f;
  f.dst = MacAddr::broadcast();
  f.ethertype = EtherType::kIpv4;
  f.payload.assign(payload_size, 0xab);
  f.traffic_class = tc;
  return f;
}

class LinkTest : public ::testing::Test {
 protected:
  void wire(Link::Params params = {}) {
    a_ = &network_.add_node<SinkNode>("a", 1);
    b_ = &network_.add_node<SinkNode>("b", 2);
    link_ = &network_.connect(*a_, *b_, params);
  }

  SimContext ctx_{123};
  Network network_{ctx_};
  SinkNode* a_ = nullptr;
  SinkNode* b_ = nullptr;
  Link* link_ = nullptr;
};

TEST_F(LinkTest, DeliversWithPropagationAndSerialization) {
  wire({.delay = sim::Duration::micros(10), .bandwidth_bps = 1'000'000'000});
  a_->transmit(a_->port(1), make_frame(100));
  ctx_.sched.run();

  ASSERT_EQ(b_->arrivals.size(), 1u);
  // 100B payload + 14 header -> 114, padded irrelevant (>60), +20 preamble/IFG
  // = 134 B = 1072 bits at 1 Gb/s = 1.072 us, plus 10 us propagation.
  EXPECT_EQ(b_->arrivals[0].at.ns(), 11072);
  EXPECT_EQ(b_->arrivals[0].frame.payload.size(), 100u);
}

TEST_F(LinkTest, BackToBackFramesQueueBehindSerialization) {
  wire({.delay = sim::Duration::micros(1), .bandwidth_bps = 1'000'000'000});
  a_->transmit(a_->port(1), make_frame(1000));
  a_->transmit(a_->port(1), make_frame(1000));
  ctx_.sched.run();
  ASSERT_EQ(b_->arrivals.size(), 2u);
  // Second frame waits for the first one's serialization slot.
  sim::Duration ser = b_->arrivals[1].at - b_->arrivals[0].at;
  EXPECT_EQ(ser.ns(), (1000 + 14 + 20) * 8);  // @ 1 Gb/s: 1 ns per bit
}

TEST_F(LinkTest, MinimumFramePadding) {
  Frame f = make_frame(1);
  EXPECT_EQ(f.wire_size(), 15u);
  EXPECT_EQ(f.padded_wire_size(), 60u);
  Frame big = make_frame(100);
  EXPECT_EQ(big.padded_wire_size(), big.wire_size());
}

TEST_F(LinkTest, OneSidedFailureNotifiesOwnerOnly) {
  wire();
  a_->set_interface_down(1);
  EXPECT_EQ(a_->downs, std::vector<std::uint32_t>{1});
  EXPECT_TRUE(b_->downs.empty());  // the peer learns nothing (paper §IV)
}

TEST_F(LinkTest, FramesTowardDownedInterfaceAreDropped) {
  wire();
  a_->set_interface_down(1);
  // b's interface is still up; its transmission is dropped at arrival.
  b_->transmit(b_->port(1), make_frame(50));
  ctx_.sched.run();
  EXPECT_TRUE(a_->arrivals.empty());
  EXPECT_EQ(link_->stats().dropped_dst_down(), 1u);
  // The drop is attributed to the direction that carried the frame.
  EXPECT_EQ(link_->stats().ba.dropped_dst_down, 1u);
  EXPECT_EQ(link_->stats().ab.dropped_dst_down, 0u);
}

TEST_F(LinkTest, FramesFromDownedInterfaceAreNotSent) {
  wire();
  a_->set_interface_down(1);
  a_->transmit(a_->port(1), make_frame(50));
  ctx_.sched.run();
  EXPECT_TRUE(b_->arrivals.empty());
  EXPECT_EQ(link_->stats().delivered(), 0u);
}

TEST_F(LinkTest, InterfaceUpRestoresDelivery) {
  wire();
  a_->set_interface_down(1);
  a_->set_interface_up(1);
  EXPECT_EQ(a_->ups, std::vector<std::uint32_t>{1});
  b_->transmit(b_->port(1), make_frame(50));
  ctx_.sched.run();
  EXPECT_EQ(a_->arrivals.size(), 1u);
}

TEST_F(LinkTest, FramesInFlightWhenInterfaceGoesDownAreLost) {
  wire({.delay = sim::Duration::millis(1), .bandwidth_bps = 10'000'000'000});
  b_->transmit(b_->port(1), make_frame(50));
  ctx_.sched.schedule_after(sim::Duration::micros(100),
                            [this] { a_->set_interface_down(1); });
  ctx_.sched.run();
  EXPECT_TRUE(a_->arrivals.empty());
}

TEST_F(LinkTest, RandomLossDropsApproximatelyTheConfiguredFraction) {
  wire({.loss_probability = 0.3});
  const int n = 2000;
  for (int i = 0; i < n; ++i) a_->transmit(a_->port(1), make_frame(50));
  ctx_.sched.run();
  double rate = 1.0 - static_cast<double>(b_->arrivals.size()) / n;
  EXPECT_NEAR(rate, 0.3, 0.05);
}

TEST_F(LinkTest, DuplicationDeliversTwice) {
  wire({.duplicate_probability = 1.0});
  a_->transmit(a_->port(1), make_frame(50));
  ctx_.sched.run();
  EXPECT_EQ(b_->arrivals.size(), 2u);
  EXPECT_EQ(link_->stats().duplicated(), 1u);
}

TEST_F(LinkTest, ReorderJitterCanSwapFrames) {
  wire({.delay = sim::Duration::micros(1),
        .bandwidth_bps = 100'000'000'000ull,
        .reorder_jitter = sim::Duration::millis(1)});
  bool reordered = false;
  for (int attempt = 0; attempt < 20 && !reordered; ++attempt) {
    b_->arrivals.clear();
    Frame f1 = make_frame(50);
    f1.payload.mutable_data()[0] = 1;
    Frame f2 = make_frame(50);
    f2.payload.mutable_data()[0] = 2;
    a_->transmit(a_->port(1), std::move(f1));
    a_->transmit(a_->port(1), std::move(f2));
    ctx_.sched.run();
    ASSERT_EQ(b_->arrivals.size(), 2u);
    reordered = b_->arrivals[0].frame.payload[0] == 2;
  }
  EXPECT_TRUE(reordered);
}

TEST_F(LinkTest, TrafficStatsAccumulatePerClass) {
  wire();
  a_->transmit(a_->port(1), make_frame(1, TrafficClass::kMtpHello));
  a_->transmit(a_->port(1), make_frame(100, TrafficClass::kMtpData));
  ctx_.sched.run();

  const auto& tx = a_->port(1).tx_stats();
  EXPECT_EQ(tx.of(TrafficClass::kMtpHello).frames, 1u);
  EXPECT_EQ(tx.of(TrafficClass::kMtpHello).bytes, 15u);
  EXPECT_EQ(tx.of(TrafficClass::kMtpHello).padded_bytes, 60u);
  EXPECT_EQ(tx.of(TrafficClass::kMtpData).frames, 1u);
  EXPECT_EQ(tx.total().frames, 2u);
  EXPECT_EQ(b_->port(1).rx_stats().total().frames, 2u);
}

TEST(NodeTest, PortNumbersAreOneBasedInCreationOrder) {
  SimContext ctx(1);
  Network network(ctx);
  auto& n = network.add_node<SinkNode>("n", 1);
  EXPECT_EQ(n.add_port().number(), 1u);
  EXPECT_EQ(n.add_port().number(), 2u);
  EXPECT_THROW((void)n.port(0), std::out_of_range);
  EXPECT_THROW((void)n.port(3), std::out_of_range);
}

TEST(NodeTest, TransmitOnUnwiredPortIsSilentlyDropped) {
  SimContext ctx(1);
  Network network(ctx);
  auto& n = network.add_node<SinkNode>("n", 1);
  n.add_port();
  n.transmit(n.port(1), make_frame(10));  // no link: no crash
  ctx.sched.run();
}

TEST(NodeTest, MacAddressesAreUniquePerPort) {
  SimContext ctx(1);
  Network network(ctx);
  auto& x = network.add_node<SinkNode>("x", 1);
  auto& y = network.add_node<SinkNode>("y", 1);
  network.connect(x, y);
  network.connect(x, y);
  EXPECT_NE(x.port(1).mac(), x.port(2).mac());
  EXPECT_NE(x.port(1).mac(), y.port(1).mac());
  EXPECT_FALSE(x.port(1).mac().is_broadcast());
  EXPECT_TRUE(MacAddr::broadcast().is_broadcast());
}

TEST(NodeTest, PeerNavigation) {
  SimContext ctx(1);
  Network network(ctx);
  auto& x = network.add_node<SinkNode>("x", 1);
  auto& y = network.add_node<SinkNode>("y", 1);
  network.connect(x, y);
  ASSERT_NE(x.port(1).peer(), nullptr);
  EXPECT_EQ(&x.port(1).peer()->owner(), &y);
}

TEST(NetworkTest, FindByName) {
  SimContext ctx(1);
  Network network(ctx);
  network.add_node<SinkNode>("alpha", 1);
  EXPECT_EQ(network.find("alpha").name(), "alpha");
  EXPECT_THROW((void)network.find("missing"), std::out_of_range);
  EXPECT_EQ(network.find_or_null("missing"), nullptr);
}

TEST(NetworkTest, DoubleWiringAPortThrows) {
  SimContext ctx(1);
  Network network(ctx);
  auto& x = network.add_node<SinkNode>("x", 1);
  auto& y = network.add_node<SinkNode>("y", 1);
  auto& z = network.add_node<SinkNode>("z", 1);
  network.connect(x, y);
  Port& used = x.port(1);
  Port& fresh = z.add_port();
  EXPECT_THROW(Link(ctx, used, fresh, {}), std::logic_error);
}

TEST(FrameTest, SerializeLayout) {
  Frame f = make_frame(2);
  f.ethertype = EtherType::kMtp;
  auto bytes = f.serialize();
  ASSERT_EQ(bytes.size(), 16u);
  // Broadcast destination MAC.
  for (int i = 0; i < 6; ++i) EXPECT_EQ(bytes[static_cast<size_t>(i)], 0xff);
  // EtherType 0x8850 (the paper's MTP type).
  EXPECT_EQ(bytes[12], 0x88);
  EXPECT_EQ(bytes[13], 0x50);
}

}  // namespace
}  // namespace mrmtp::net
