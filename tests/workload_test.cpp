// The multi-flow traffic model and the workload engine.
//
// The first block pins the three traffic::Host bugfixes: concurrent flows
// no longer clobber each other's generator state (the old host kept ONE
// sequence counter and ONE timer, so a second start_flow() silently hijacked
// the first flow), restarts are explicit and counted, sink tracking memory
// is bounded by *concurrent* flows rather than flow totals, and max_gap is
// per flow so silence between flows is no longer reported as an outage.
//
// The second block checks the WorkloadEngine's statistics: sampled CDF means
// against the analytic table mean, the Poisson arrival process against its
// configured rate, scenario schedule shapes, and the determinism contract —
// the same seed must produce an identical FlowStats table at 1 shard and at
// 4 shards of the parallel fabric engine.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "harness/workload.hpp"
#include "traffic/workload.hpp"

namespace mrmtp::traffic {
namespace {

class WorkloadPairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = &network_.add_node<Host>("a", ip::Ipv4Addr::parse("192.168.11.1"), 24,
                                  ip::Ipv4Addr::parse("192.168.11.2"));
    b_ = &network_.add_node<Host>("b", ip::Ipv4Addr::parse("192.168.11.2"), 24,
                                  ip::Ipv4Addr::parse("192.168.11.1"));
    network_.connect(*a_, *b_);
    network_.start_all();
    b_->listen();
  }

  void run_for(sim::Duration d) { ctx_.sched.run_until(ctx_.now() + d); }

  net::SimContext ctx_{77};
  net::Network network_{ctx_};
  Host* a_ = nullptr;
  Host* b_ = nullptr;
};

// The headline bugfix: starting a second flow while the first is active must
// not disturb the first. The old single-flow host reset the shared sequence
// counter and replaced the shared timer, so the first flow's remaining
// packets were never sent and the sink double-counted restarted sequences.
TEST_F(WorkloadPairTest, ConcurrentFlowsDoNotClobberEachOther) {
  FlowConfig f1;
  f1.dst = b_->addr();
  f1.src_port = 7100;
  f1.count = 200;
  f1.gap = sim::Duration::millis(1);
  std::uint64_t id1 = a_->start_flow(f1);

  run_for(sim::Duration::millis(50));  // flow 1 mid-stream

  FlowConfig f2 = f1;
  f2.src_port = 7200;
  f2.count = 100;
  std::uint64_t id2 = a_->start_flow(f2);
  EXPECT_NE(id1, id2);
  EXPECT_EQ(a_->active_flows(), 2u);

  run_for(sim::Duration::seconds(1));
  EXPECT_EQ(a_->packets_sent(), 300u);
  EXPECT_EQ(a_->flows_started(), 2u);
  EXPECT_EQ(a_->flows_finished(), 2u);
  EXPECT_EQ(a_->flow_restarts(), 0u);

  const FlowRecord* r1 = b_->flow_record(id1);
  const FlowRecord* r2 = b_->flow_record(id2);
  ASSERT_NE(r1, nullptr);
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(r1->unique, 200u);
  EXPECT_EQ(r2->unique, 100u);
  EXPECT_TRUE(r1->complete());
  EXPECT_TRUE(r2->complete());
  EXPECT_EQ(r1->src_port, 7100u);
  EXPECT_EQ(r2->src_port, 7200u);
  EXPECT_EQ(b_->sink_stats().duplicates, 0u);
}

// Restarting an active flow id is an explicit, counted operation: the old
// incarnation's pending send dies, the sequence restarts at zero (so the
// sink classifies the re-sent range as duplicates), and emission never
// double-paces.
TEST_F(WorkloadPairTest, RestartOfActiveFlowIsExplicit) {
  FlowConfig f;
  f.dst = b_->addr();
  f.flow_id = 42;
  f.count = 0;  // open-ended
  f.gap = sim::Duration::millis(2);
  a_->start_flow(f);
  run_for(sim::Duration::millis(100));  // ~50 packets
  const std::uint64_t before = a_->packets_sent();

  EXPECT_EQ(a_->start_flow(f), 42u);  // same id => restart
  EXPECT_EQ(a_->flow_restarts(), 1u);
  EXPECT_EQ(a_->active_flows(), 1u);

  run_for(sim::Duration::millis(100));
  a_->stop_flow(42);
  // One incarnation's pacing at a time: ~50 more packets, not ~100.
  EXPECT_NEAR(static_cast<double>(a_->packets_sent() - before), 50.0, 5.0);
  // The restarted sequence range 0..~50 re-arrived and was classified as
  // duplicate delivery, not as fresh traffic.
  EXPECT_GT(b_->sink_stats().duplicates, 30u);
}

// Sink tracking memory is bounded by concurrent flows: windows die with
// their flow, so ten sequential flows never hold more than one window, and
// the high-water counter proves it.
TEST_F(WorkloadPairTest, TrackerMemoryBoundedByConcurrency) {
  for (int i = 0; i < 10; ++i) {
    ctx_.sched.schedule_at(sim::Time::zero() + sim::Duration::millis(100 * i),
                           [this] {
                             FlowConfig f;
                             f.dst = b_->addr();
                             f.count = 20;
                             f.gap = sim::Duration::millis(1);
                             a_->start_flow(f);
                           });
  }
  run_for(sim::Duration::seconds(2));

  const SinkStats& s = b_->sink_stats();
  EXPECT_EQ(s.flows_seen, 10u);
  EXPECT_EQ(s.flows_complete, 10u);
  EXPECT_EQ(s.unique_received, 200u);
  EXPECT_EQ(s.tracker_windows_hw, 1u);  // never two live windows
  EXPECT_EQ(b_->tracker_bytes(), 0u);   // all freed on completion
}

// A long-lived flow keeps exactly one bounded window regardless of how many
// packets it carries.
TEST_F(WorkloadPairTest, TrackerMemoryConstantPerFlow) {
  FlowConfig f;
  f.dst = b_->addr();
  f.count = 0;
  f.gap = sim::Duration::micros(200);
  a_->start_flow(f);
  run_for(sim::Duration::seconds(1));  // ~5000 packets
  EXPECT_GT(b_->sink_stats().unique_received, 4000u);
  EXPECT_EQ(b_->tracker_bytes(), sizeof(SeqWindow));
  a_->stop_flow();
}

// max_gap is per flow: half a second of silence between two different flows
// must not appear in either flow's gap (the old host-level tally reported
// inter-flow idle time as a 500 ms outage).
TEST_F(WorkloadPairTest, InterFlowSilenceDoesNotPolluteMaxGap) {
  FlowConfig f1;
  f1.dst = b_->addr();
  f1.count = 25;
  f1.gap = sim::Duration::millis(2);
  std::uint64_t id1 = a_->start_flow(f1);

  std::uint64_t id2 = 0;
  ctx_.sched.schedule_at(sim::Time::zero() + sim::Duration::millis(550),
                         [this, &id2] {
                           FlowConfig f2;
                           f2.dst = b_->addr();
                           f2.count = 25;
                           f2.gap = sim::Duration::millis(2);
                           id2 = a_->start_flow(f2);
                         });
  run_for(sim::Duration::seconds(1));

  const FlowRecord* r1 = b_->flow_record(id1);
  const FlowRecord* r2 = b_->flow_record(id2);
  ASSERT_NE(r1, nullptr);
  ASSERT_NE(r2, nullptr);
  EXPECT_LT(r1->max_gap, sim::Duration::millis(10));
  EXPECT_LT(r2->max_gap, sim::Duration::millis(10));
  EXPECT_LT(b_->sink_stats().max_gap, sim::Duration::millis(10));
}

// ---------------------------------------------------------------------------
// Workload engine statistics (no fabric needed: schedule generation only).

class WorkloadScheduleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 16; ++i) {
      char addr[32];
      std::snprintf(addr, sizeof(addr), "10.0.%d.1", i);
      char gw[32];
      std::snprintf(gw, sizeof(gw), "10.0.%d.2", i);
      hosts_.push_back(&network_.add_node<Host>(
          "h" + std::to_string(i), ip::Ipv4Addr::parse(addr), 24,
          ip::Ipv4Addr::parse(gw)));
    }
  }

  net::SimContext ctx_{5};
  net::Network network_{ctx_};
  std::vector<Host*> hosts_;
};

TEST(FlowSizeCdfTest, SampledMeanMatchesAnalyticMean) {
  for (const FlowSizeCdf& cdf :
       {FlowSizeCdf::websearch(), FlowSizeCdf::hadoop()}) {
    sim::Rng rng(42);
    const int n = 20000;
    double sum = 0;
    for (int i = 0; i < n; ++i) sum += cdf.sample(rng);
    const double sampled = sum / n;
    const double analytic = cdf.mean_bytes();
    EXPECT_NEAR(sampled, analytic, 0.05 * analytic) << cdf.name();
  }
}

TEST(FlowSizeCdfTest, RejectsMalformedTables) {
  EXPECT_THROW(FlowSizeCdf("x", {{0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(FlowSizeCdf("x", {{0, 0.1}, {10, 1.0}}), std::invalid_argument);
  EXPECT_THROW(FlowSizeCdf("x", {{0, 0.0}, {10, 0.8}, {5, 1.0}}),
               std::invalid_argument);
}

TEST(QuantileTest, NearestRank) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.50), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.99), 10.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted({}, 0.5), 0.0);
}

TEST_F(WorkloadScheduleTest, PoissonArrivalRateMatchesLoad) {
  WorkloadSpec spec;
  spec.cdf = FlowSizeCdf::websearch();
  spec.load = 0.5;
  spec.edge_bw_bps = 1'000'000'000ull;
  WorkloadEngine engine(hosts_, spec, /*seed=*/7);
  const sim::Duration window = sim::Duration::seconds(4);
  engine.build_schedule(sim::Time::zero(), window);

  const double lambda = 16.0 * spec.load * 1e9 / (8.0 * spec.cdf.mean_bytes());
  const double expected = lambda * window.to_seconds();
  const auto actual = static_cast<double>(engine.schedule().size());
  // Poisson sd is sqrt(expected) (~2%); 10% is five sigmas of headroom.
  EXPECT_NEAR(actual, expected, 0.10 * expected);

  std::set<std::uint64_t> ids;
  for (const ScheduledFlow& f : engine.schedule()) {
    EXPECT_NE(f.src, f.dst);
    EXPECT_LT(f.src, 16u);
    EXPECT_LT(f.dst, 16u);
    EXPECT_GE(f.start, sim::Time::zero());
    EXPECT_LT(f.start, sim::Time::zero() + window);
    EXPECT_GE(f.bytes, 1u);
    EXPECT_TRUE(ids.insert(f.id).second);
  }

  // Same seed => identical schedule, draw for draw.
  WorkloadEngine twin(hosts_, spec, /*seed=*/7);
  twin.build_schedule(sim::Time::zero(), window);
  ASSERT_EQ(twin.schedule().size(), engine.schedule().size());
  for (std::size_t i = 0; i < twin.schedule().size(); ++i) {
    EXPECT_EQ(twin.schedule()[i].id, engine.schedule()[i].id);
    EXPECT_EQ(twin.schedule()[i].src, engine.schedule()[i].src);
    EXPECT_EQ(twin.schedule()[i].dst, engine.schedule()[i].dst);
    EXPECT_EQ(twin.schedule()[i].bytes, engine.schedule()[i].bytes);
    EXPECT_EQ(twin.schedule()[i].start.ns(), engine.schedule()[i].start.ns());
  }
}

TEST_F(WorkloadScheduleTest, IncastTargetsOneVictimInRounds) {
  WorkloadSpec spec;
  spec.scenario = Scenario::kIncast;
  spec.incast_fanin = 8;
  spec.edge_bw_bps = 1'000'000'000ull;
  WorkloadEngine engine(hosts_, spec, 3);
  engine.build_schedule(sim::Time::zero(), sim::Duration::seconds(1));

  ASSERT_FALSE(engine.schedule().empty());
  std::map<std::int64_t, int> rounds;
  for (const ScheduledFlow& f : engine.schedule()) {
    EXPECT_EQ(f.dst, 15u);  // the last host is the victim
    EXPECT_NE(f.src, 15u);
    ++rounds[f.start.ns()];
  }
  for (const auto& [at, senders] : rounds) EXPECT_EQ(senders, 8);
}

TEST_F(WorkloadScheduleTest, AllToAllCoversEveryOrderedPair) {
  WorkloadSpec spec;
  spec.scenario = Scenario::kAllToAll;
  spec.edge_bw_bps = 1'000'000'000ull;
  WorkloadEngine engine(hosts_, spec, 3);
  const sim::Duration window = sim::Duration::seconds(1);
  engine.build_schedule(sim::Time::zero(), window);

  EXPECT_EQ(engine.schedule().size(), 16u * 15u);
  std::set<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (const ScheduledFlow& f : engine.schedule()) {
    EXPECT_TRUE(pairs.insert({f.src, f.dst}).second);
    EXPECT_LT(f.start, sim::Time::zero() + window);
  }
}

TEST_F(WorkloadScheduleTest, RejectsBadSpecs) {
  WorkloadSpec spec;
  EXPECT_THROW(WorkloadEngine(hosts_, spec, 1),
               std::invalid_argument);  // edge_bw unset
  spec.edge_bw_bps = 1'000'000'000ull;
  spec.load = 0.0;
  EXPECT_THROW(WorkloadEngine(hosts_, spec, 1), std::invalid_argument);
  spec.load = 0.5;
  EXPECT_THROW(WorkloadEngine({hosts_[0]}, spec, 1), std::invalid_argument);
}

}  // namespace
}  // namespace mrmtp::traffic

namespace mrmtp::harness {
namespace {

WorkloadRunSpec small_campaign() {
  WorkloadRunSpec spec;
  spec.topo = {8, 2, 2, 4, 1};
  spec.proto = Proto::kMtp;
  spec.seed = 11;
  spec.options.host_link.bandwidth_bps = 100'000'000ull;
  spec.options.host_link.max_queue = sim::Duration::millis(50);
  spec.workload.load = 0.3;
  spec.workload.size_scale = 0.05;
  spec.workload.payload_size = 1000;
  spec.launch_window = sim::Duration::millis(400);
  spec.drain = sim::Duration::seconds(1);
  return spec;
}

// The tentpole determinism claim: the same seeded campaign produces an
// identical FlowStats table — every counter and every quantile — whether the
// fabric runs on one shard or four. FCTs derive from simulated time only, so
// thread interleaving must never show through.
TEST(WorkloadHarnessTest, FlowStatsIdenticalAcrossShardCounts) {
  WorkloadRunSpec spec = small_campaign();
  spec.force_parallel_engine = true;
  spec.threads = 1;
  WorkloadRunResult one = run_workload(spec);
  spec.threads = 4;
  WorkloadRunResult four = run_workload(spec);

  ASSERT_TRUE(one.initial_converged);
  ASSERT_TRUE(four.initial_converged);
  EXPECT_GE(four.threads_used, 2u);
  ASSERT_GT(one.flows.flows_started, 0u);
  EXPECT_EQ(one.flows, four.flows);
}

// End-to-end sanity on a healthy fabric: every scheduled flow is delivered
// and (at this light load) completes within the drain window.
TEST(WorkloadHarnessTest, HealthyFabricCompletesFlows) {
  WorkloadRunSpec spec = small_campaign();
  WorkloadRunResult r = run_workload(spec);
  ASSERT_TRUE(r.initial_converged);
  ASSERT_GT(r.flows.flows_started, 10u);
  EXPECT_EQ(r.flows.flows_delivered, r.flows.flows_started);
  EXPECT_GE(r.flows.flows_completed, r.flows.flows_started * 9 / 10);
  EXPECT_GT(r.flows.fct_p50_ms, 0.0);
  EXPECT_LE(r.flows.fct_p50_ms, r.flows.fct_p99_ms);
  EXPECT_LE(r.flows.fct_p99_ms, r.flows.fct_p999_ms);
  EXPECT_LE(r.flows.fct_p999_ms, r.flows.fct_max_ms);
}

// A TC1 failure mid-campaign separates the protocols: MR-MTP's local reroute
// keeps nearly every flow completing, while BGP/ECMP strands the flows hashed
// onto the dead path behind its 3 s hold timer.
TEST(WorkloadHarnessTest, FailureSeparatesProtocolTails) {
  WorkloadRunSpec spec = small_campaign();
  spec.inject_failure = true;
  WorkloadRunResult mtp = run_workload(spec);
  spec.proto = Proto::kBgp;
  WorkloadRunResult bgp = run_workload(spec);

  ASSERT_TRUE(mtp.initial_converged);
  ASSERT_TRUE(bgp.initial_converged);
  ASSERT_GT(mtp.flows.flows_started, 0u);
  EXPECT_LE(mtp.flows.fct_p99_ms, bgp.flows.fct_p99_ms);
  EXPECT_LE(mtp.flows.flows_incomplete, bgp.flows.flows_incomplete);
}

}  // namespace
}  // namespace mrmtp::harness
