// End-to-end BGP/ECMP(/BFD) integration on the paper's topologies: session
// establishment, full-table convergence, ECMP data delivery, and failure
// handling with hold-timer vs BFD vs fast-fallover detection.
#include <gtest/gtest.h>

#include "harness/deploy.hpp"
#include "topo/failure.hpp"

namespace mrmtp {
namespace {

using harness::Deployment;
using harness::DeployOptions;
using harness::Proto;

class BgpIntegrationTest : public ::testing::Test {
 protected:
  void deploy(topo::ClosParams params, Proto proto = Proto::kBgp,
              std::uint64_t seed = 11) {
    // The deployment must die before the SimContext its timers point at
    // (matters when a test deploys more than once).
    dep_.reset();
    blueprint_.reset();
    ctx_ = std::make_unique<net::SimContext>(seed);
    blueprint_ = std::make_unique<topo::ClosBlueprint>(params);
    dep_ = std::make_unique<Deployment>(*ctx_, *blueprint_, proto,
                                        DeployOptions{});
    dep_->start();
  }

  void run_for(sim::Duration d) { ctx_->sched.run_until(ctx_->now() + d); }

  std::unique_ptr<net::SimContext> ctx_;
  std::unique_ptr<topo::ClosBlueprint> blueprint_;
  std::unique_ptr<Deployment> dep_;
};

TEST_F(BgpIntegrationTest, TwoPodConverges) {
  deploy(topo::ClosParams::paper_2pod());
  run_for(sim::Duration::seconds(5));
  EXPECT_TRUE(dep_->converged());
}

TEST_F(BgpIntegrationTest, EcmpGroupsInstalledAtTor) {
  deploy(topo::ClosParams::paper_2pod());
  run_for(sim::Duration::seconds(5));
  ASSERT_TRUE(dep_->converged());

  // A ToR reaches a remote pod's subnet via both pod spines (Listing 3).
  auto& tor = dep_->bgp(blueprint_->leaf(1, 1));
  const ip::Route* r = tor.routes().exact(
      ip::Ipv4Prefix(ip::Ipv4Addr(192, 168, 14, 0), 24));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->proto, ip::RouteProto::kBgp);
  EXPECT_EQ(r->nexthops.size(), 2u);

  // Intra-pod subnet also multipath via both spines.
  const ip::Route* local = tor.routes().exact(
      ip::Ipv4Prefix(ip::Ipv4Addr(192, 168, 12, 0), 24));
  ASSERT_NE(local, nullptr);
  EXPECT_EQ(local->nexthops.size(), 2u);
}

TEST_F(BgpIntegrationTest, AsPathLengthsMatchClosTiers) {
  deploy(topo::ClosParams::paper_2pod());
  run_for(sim::Duration::seconds(5));

  // A top spine reaches every ToR subnet in exactly 2 AS hops (pod spine +
  // ToR); no valley routes survive the RFC 7938 ASN plan.
  auto& top = dep_->bgp(blueprint_->top_spine(1));
  for (const auto& spec : blueprint_->devices()) {
    if (spec.role != topo::Role::kLeaf) continue;
    const ip::Route* r = top.routes().exact(*spec.server_subnet);
    ASSERT_NE(r, nullptr) << spec.name;
  }
}

TEST_F(BgpIntegrationTest, EndToEndDelivery) {
  deploy(topo::ClosParams::paper_2pod());
  run_for(sim::Duration::seconds(5));
  ASSERT_TRUE(dep_->converged());

  auto& sender = dep_->host(0);
  auto& receiver = dep_->host(3);
  receiver.listen();
  traffic::FlowConfig flow;
  flow.dst = receiver.addr();
  flow.count = 100;
  flow.gap = sim::Duration::millis(1);
  sender.start_flow(flow);
  run_for(sim::Duration::seconds(1));
  EXPECT_EQ(receiver.sink_stats().unique_received, 100u);
  EXPECT_EQ(receiver.sink_stats().duplicates, 0u);
}

TEST_F(BgpIntegrationTest, FourPodConvergesAndDelivers) {
  deploy(topo::ClosParams::paper_4pod());
  run_for(sim::Duration::seconds(6));
  ASSERT_TRUE(dep_->converged());

  auto& sender = dep_->host(0);
  auto& receiver = dep_->host(7);
  receiver.listen();
  traffic::FlowConfig flow;
  flow.dst = receiver.addr();
  flow.count = 100;
  flow.gap = sim::Duration::millis(1);
  sender.start_flow(flow);
  run_for(sim::Duration::seconds(1));
  EXPECT_EQ(receiver.sink_stats().unique_received, 100u);
}

TEST_F(BgpIntegrationTest, WithdrawPropagatesAfterHoldTimer) {
  deploy(topo::ClosParams::paper_2pod());
  run_for(sim::Duration::seconds(5));
  ASSERT_TRUE(dep_->converged());

  // TC1: ToR-side interface fails; S-1-1 only notices at hold expiry, after
  // which the ToR's subnet is withdrawn from the fabric.
  topo::FailureInjector injector(dep_->network(), *blueprint_);
  sim::Time t_fail = ctx_->now() + sim::Duration::millis(100);
  injector.schedule_failure(topo::TestCase::kTC1, t_fail);

  auto subnet11 = ip::Ipv4Prefix(ip::Ipv4Addr(192, 168, 11, 0), 24);
  auto& remote_tor = dep_->bgp(blueprint_->leaf(2, 2));

  // Before hold expiry the stale ECMP route persists.
  run_for(sim::Duration::seconds(2));
  const ip::Route* stale = remote_tor.routes().exact(subnet11);
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(stale->nexthops.size(), 2u);

  // After hold (3 s) + dissemination, S-2-1 has lost *all* paths to 11/24
  // (both of its top spines reached it only through S-1-1), so the remote
  // ToR is down to the single S-2-2 next hop — the wide BGP blast radius
  // the paper measures in Fig. 5.
  run_for(sim::Duration::seconds(3));
  const ip::Route* after = remote_tor.routes().exact(subnet11);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->nexthops.size(), 1u);

  // The pod-1 peer ToR lost the S-1-1 path: single next hop remains.
  auto& tor12 = dep_->bgp(blueprint_->leaf(1, 2));
  const ip::Route* pod_route = tor12.routes().exact(subnet11);
  ASSERT_NE(pod_route, nullptr);
  EXPECT_EQ(pod_route->nexthops.size(), 1u);
}

TEST_F(BgpIntegrationTest, BfdDetectsFasterThanHoldTimer) {
  deploy(topo::ClosParams::paper_2pod(), Proto::kBgpBfd);
  run_for(sim::Duration::seconds(5));
  ASSERT_TRUE(dep_->converged());

  // TC1 again: with BFD (100 ms x3) S-1-1 drops the session in ~300 ms.
  topo::FailureInjector injector(dep_->network(), *blueprint_);
  injector.schedule_failure(topo::TestCase::kTC1,
                            ctx_->now() + sim::Duration::millis(100));
  run_for(sim::Duration::millis(800));

  // The session to the failed ToR is no longer established.
  auto& s11 = dep_->bgp(blueprint_->pod_spine(1, 1));
  EXPECT_EQ(s11.established_sessions(), s11.config().neighbors.size() - 1);
}

TEST_F(BgpIntegrationTest, TrafficRecoversAfterFailure) {
  for (topo::TestCase tc : topo::kAllTestCases) {
    SCOPED_TRACE(std::string(topo::to_string(tc)));
    deploy(topo::ClosParams::paper_2pod());
    run_for(sim::Duration::seconds(5));
    ASSERT_TRUE(dep_->converged());

    topo::FailureInjector injector(dep_->network(), *blueprint_);
    injector.schedule_failure(tc, ctx_->now() + sim::Duration::millis(100));
    run_for(sim::Duration::seconds(5));  // past hold timer + dissemination

    auto& a = dep_->host(0);
    auto& b = dep_->host(3);
    b.listen();
    traffic::FlowConfig flow;
    flow.dst = b.addr();
    flow.count = 200;
    flow.gap = sim::Duration::millis(1);
    a.start_flow(flow);
    run_for(sim::Duration::seconds(1));
    EXPECT_EQ(b.sink_stats().unique_received, 200u);
  }
}

}  // namespace
}  // namespace mrmtp
