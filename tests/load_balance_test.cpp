// Load-balancing tests (paper §III.C: "a hash algorithm to load balance
// traffic from a downstream router to upstream routers"): flow spreading
// across uplinks, flow affinity (no reordering within a flow), exclusion
// honoring, and spread fairness across many flows for both MR-MTP and ECMP.
#include <gtest/gtest.h>

#include "harness/deploy.hpp"

namespace mrmtp {
namespace {

using harness::Deployment;
using harness::Proto;

/// Frames forwarded upward by the ToR L-1-1 on each of its uplinks.
std::vector<std::uint64_t> tor_uplink_spread(Deployment& dep,
                                             const topo::ClosBlueprint& bp,
                                             net::TrafficClass tc) {
  net::Node& tor = dep.router(bp.leaf(1, 1));
  std::vector<std::uint64_t> out;
  for (std::uint32_t p = 1; p <= bp.params().spines_per_pod; ++p) {
    out.push_back(tor.port(p).tx_stats().of(tc).frames);
  }
  return out;
}

class LoadBalanceTest
    : public ::testing::TestWithParam<std::tuple<Proto, std::uint32_t>> {};

TEST_P(LoadBalanceTest, ManyFlowsSpreadAcrossUplinks) {
  auto [proto, spines] = GetParam();
  topo::ClosParams params = topo::ClosParams::paper_2pod();
  params.spines_per_pod = spines;
  params.top_spines = spines * 2;

  net::SimContext ctx(31);
  topo::ClosBlueprint bp(params);
  Deployment dep(ctx, bp, proto, {});
  dep.start();
  ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(5).ns()));
  ASSERT_TRUE(dep.converged());

  // 64 distinct flows (different source ports) from H-1-1 to the far host.
  auto& sender = dep.host(0);
  auto last = static_cast<std::uint32_t>(dep.host_count() - 1);
  auto& receiver = dep.host(last);
  receiver.listen();
  for (std::uint16_t f = 0; f < 64; ++f) {
    traffic::FlowConfig flow;
    flow.dst = receiver.addr();
    flow.src_port = static_cast<std::uint16_t>(7000 + f);
    flow.count = 20;
    flow.gap = sim::Duration::micros(200);
    // Sequential sends through one generator would share a socket, so send
    // via the raw API: schedule each flow's packets directly.
    for (std::uint16_t i = 0; i < flow.count; ++i) {
      ctx.sched.schedule_after(
          sim::Duration::micros(200 * (i + 1)),
          [&sender, &receiver, f, i] {
            traffic::ProbePacket p;
            p.seq = static_cast<std::uint64_t>(f) * 1000 + i;
            sender.send_udp(sender.addr(), receiver.addr(),
                            static_cast<std::uint16_t>(7000 + f), 7001,
                            p.serialize(64), net::TrafficClass::kIpData);
          });
    }
  }
  ctx.sched.run_until(ctx.now() + sim::Duration::seconds(1));
  EXPECT_EQ(receiver.sink_stats().received, 64u * 20u);

  // Every uplink carried a reasonable share (no starved or hot link).
  auto tc = proto == Proto::kMtp ? net::TrafficClass::kMtpData
                                 : net::TrafficClass::kIpData;
  auto spread = tor_uplink_spread(dep, bp, tc);
  std::uint64_t total = 0;
  for (auto v : spread) total += v;
  EXPECT_EQ(total, 64u * 20u);
  double expected =
      static_cast<double>(total) / static_cast<double>(spread.size());
  for (std::size_t p = 0; p < spread.size(); ++p) {
    EXPECT_GT(static_cast<double>(spread[p]), expected * 0.4)
        << "uplink " << p + 1 << " starved";
    EXPECT_LT(static_cast<double>(spread[p]), expected * 1.9)
        << "uplink " << p + 1 << " hot";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fabrics, LoadBalanceTest,
    ::testing::Combine(::testing::Values(Proto::kMtp, Proto::kBgp),
                       ::testing::Values(2u, 4u)));

TEST(FlowAffinityTest, SingleFlowSticksToOnePath) {
  // One flow must hash to exactly one uplink — otherwise packets reorder.
  for (Proto proto : {Proto::kMtp, Proto::kBgp}) {
    SCOPED_TRACE(std::string(harness::to_string(proto)));
    net::SimContext ctx(7);
    topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
    Deployment dep(ctx, bp, proto, {});
    dep.start();
    ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(5).ns()));

    auto& sender = dep.host(0);
    auto& receiver = dep.host(3);
    receiver.listen();
    traffic::FlowConfig flow;
    flow.dst = receiver.addr();
    flow.count = 500;
    flow.gap = sim::Duration::micros(100);
    sender.start_flow(flow);
    ctx.sched.run_until(ctx.now() + sim::Duration::seconds(1));

    EXPECT_EQ(receiver.sink_stats().unique_received, 500u);
    EXPECT_EQ(receiver.sink_stats().out_of_order, 0u);

    auto tc = proto == Proto::kMtp ? net::TrafficClass::kMtpData
                                   : net::TrafficClass::kIpData;
    auto spread = tor_uplink_spread(dep, bp, tc);
    int used = 0;
    for (auto v : spread) used += v > 0 ? 1 : 0;
    EXPECT_EQ(used, 1);
  }
}

TEST(ExclusionTest, MtpHashSkipsExcludedUplinks) {
  net::SimContext ctx(9);
  topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
  Deployment dep(ctx, bp, Proto::kMtp, {});
  dep.start();
  ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(2).ns()));

  // TC2-style failure: after reconvergence L-1-2 must steer dest-11 traffic
  // around S-1-1 via its exclusion entry while other destinations still use
  // both uplinks.
  dep.network().find("S-1-1").set_interface_down(3);  // link to L-1-1
  ctx.sched.run_until(ctx.now() + sim::Duration::millis(500));

  auto& tor12 = dep.mtp(bp.leaf(1, 2));
  EXPECT_TRUE(tor12.exclusions().is_excluded(11, 1));
  EXPECT_FALSE(tor12.exclusions().is_excluded(13, 1));

  // Many flows from H-1-2 to H-1-1: all must arrive via S-1-2 only.
  auto& sender = dep.host(1);
  auto& receiver = dep.host(0);
  receiver.listen();
  net::Node& tor = dep.network().find("L-1-2");
  std::uint64_t port1_before =
      tor.port(1).tx_stats().of(net::TrafficClass::kMtpData).frames;
  for (std::uint16_t f = 0; f < 32; ++f) {
    traffic::ProbePacket p;
    p.seq = f;
    sender.send_udp(sender.addr(), receiver.addr(),
                    static_cast<std::uint16_t>(8000 + f), 7001,
                    p.serialize(64), net::TrafficClass::kIpData);
  }
  ctx.sched.run_until(ctx.now() + sim::Duration::millis(200));

  EXPECT_EQ(receiver.sink_stats().received, 32u);
  EXPECT_EQ(tor.port(1).tx_stats().of(net::TrafficClass::kMtpData).frames,
            port1_before);  // nothing toward the excluded S-1-1
}

}  // namespace
}  // namespace mrmtp
