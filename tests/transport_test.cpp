// Unit tests: UDP codec and TCP-lite — handshake, segmentation, delayed
// ACKs, retransmission under loss/reorder (property-tested), reset handling,
// and the 85-byte BGP-keepalive frame arithmetic the paper reports.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "transport/l3_node.hpp"

namespace mrmtp::transport {
namespace {

/// Two endpoints joined by an in-memory channel with configurable loss,
/// duplication, and jitter; packets travel as scheduled events.
struct ChannelParams {
  sim::Duration delay = sim::Duration::micros(50);
  double loss = 0.0;
  sim::Duration jitter{};
};

class Channel {
 public:
  class Endpoint : public IpSender {
   public:
    Endpoint(Channel& channel, int side, std::string name)
        : channel_(channel), side_(side), name_(std::move(name)), tcp_(*this) {}

    void send_ip(ip::Ipv4Addr src, ip::Ipv4Addr dst, ip::IpProto proto,
                 net::Buffer payload,
                 net::TrafficClass traffic_class) override {
      (void)proto;
      channel_.deliver(side_, src, dst, std::move(payload), traffic_class);
    }
    net::SimContext& sim() override { return channel_.ctx_; }
    [[nodiscard]] std::string endpoint_name() const override { return name_; }

    TcpStack& tcp() { return tcp_; }
    std::uint64_t frames_sent = 0;
    std::uint64_t ack_frames_sent = 0;

   private:
    Channel& channel_;
    int side_;
    std::string name_;
    TcpStack tcp_;
  };

  explicit Channel(std::uint64_t seed, ChannelParams params = {})
      : ctx_(seed),
        params_(params),
        a_(*this, 0, "a"),
        b_(*this, 1, "b") {}

  void deliver(int from_side, ip::Ipv4Addr src, ip::Ipv4Addr dst,
               net::Buffer payload, net::TrafficClass tc) {
    Endpoint& sender = from_side == 0 ? a_ : b_;
    ++sender.frames_sent;
    if (tc == net::TrafficClass::kTcpAck) ++sender.ack_frames_sent;
    if (from_side == 0 && drop_next_from_a && !payload.empty() &&
        tc != net::TrafficClass::kTcpAck) {
      drop_next_from_a = false;
      return;
    }
    if (params_.loss > 0 && ctx_.rng.chance(params_.loss)) return;
    sim::Duration d = params_.delay;
    if (params_.jitter > sim::Duration{}) {
      d = d + sim::Duration::nanos(static_cast<std::int64_t>(
                  ctx_.rng.below(static_cast<std::uint64_t>(params_.jitter.ns()))));
    }
    Endpoint& to = from_side == 0 ? b_ : a_;
    ctx_.sched.schedule_after(d, [&to, src, dst, payload = std::move(payload)] {
      to.tcp().handle_packet(src, dst, payload);
    });
  }

  net::SimContext ctx_;
  ChannelParams params_;
  bool drop_next_from_a = false;
  Endpoint a_;
  Endpoint b_;
};

const auto kAddrA = ip::Ipv4Addr::parse("172.16.0.0");
const auto kAddrB = ip::Ipv4Addr::parse("172.16.0.1");

TEST(UdpTest, HeaderRoundTrip) {
  UdpHeader h{1234, 3784};
  std::vector<std::uint8_t> payload{9, 8, 7};
  auto bytes = h.serialize(payload);
  ASSERT_EQ(bytes.size(), 11u);
  std::span<const std::uint8_t> out;
  UdpHeader parsed = UdpHeader::parse(bytes, out);
  EXPECT_EQ(parsed.src_port, 1234);
  EXPECT_EQ(parsed.dst_port, 3784);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 9);
}

TEST(TcpSegmentTest, HeaderIs32Bytes) {
  TcpSegment seg;
  seg.src_port = 20000;
  seg.dst_port = 179;
  seg.flags.ack = true;
  auto bytes = seg.serialize();
  EXPECT_EQ(bytes.size(), TcpSegment::kHeaderSize);
  // A 19-byte BGP KEEPALIVE under Ethernet+IP+TCP: 14+20+32+19 = 85 bytes,
  // the exact frame size the paper reports (Section VII.F).
  EXPECT_EQ(14 + 20 + TcpSegment::kHeaderSize + 19, 85u);
}

TEST(TcpSegmentTest, RoundTripFlagsAndPayload) {
  TcpSegment seg;
  seg.src_port = 7;
  seg.dst_port = 8;
  seg.seq = 111;
  seg.ack = 222;
  seg.flags.syn = true;
  seg.flags.ack = true;
  seg.payload = {1, 2, 3};
  TcpSegment parsed = TcpSegment::parse(seg.serialize());
  EXPECT_EQ(parsed.seq, 111u);
  EXPECT_EQ(parsed.ack, 222u);
  EXPECT_TRUE(parsed.flags.syn);
  EXPECT_TRUE(parsed.flags.ack);
  EXPECT_FALSE(parsed.flags.rst);
  EXPECT_EQ(parsed.payload, (std::vector<std::uint8_t>{1, 2, 3}));
}

struct Collected {
  std::vector<std::uint8_t> data;
  bool established = false;
  bool closed = false;
};

TcpConnection::Callbacks collect(Collected& c) {
  return {
      .on_established = [&c] { c.established = true; },
      .on_data =
          [&c](std::span<const std::uint8_t> d) {
            c.data.insert(c.data.end(), d.begin(), d.end());
          },
      .on_closed = [&c] { c.closed = true; },
  };
}

TEST(TcpLiteTest, HandshakeAndBidirectionalData) {
  Channel ch(1);
  Collected ca, cb;
  ch.b_.tcp().listen(179, [&cb](TcpConnection& conn) {
    conn.set_callbacks(collect(cb));
  });
  TcpConnection& conn =
      ch.a_.tcp().connect(kAddrA, 20000, kAddrB, 179, collect(ca));
  ch.ctx_.sched.run();
  ASSERT_TRUE(ca.established);
  ASSERT_TRUE(cb.established);

  conn.send({'h', 'i'}, net::TrafficClass::kBgpUpdate);
  ch.ctx_.sched.run();
  EXPECT_EQ(cb.data, (std::vector<std::uint8_t>{'h', 'i'}));
  EXPECT_EQ(ch.b_.tcp().connection_count(), 1u);
}

TEST(TcpLiteTest, LargeTransferSegmentsAtMss) {
  Channel ch(2);
  Collected ca, cb;
  ch.b_.tcp().listen(179, [&cb](TcpConnection& conn) {
    conn.set_callbacks(collect(cb));
  });
  TcpConnection& conn =
      ch.a_.tcp().connect(kAddrA, 20000, kAddrB, 179, collect(ca));
  ch.ctx_.sched.run();

  std::vector<std::uint8_t> blob(10000);
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<std::uint8_t>(i * 7);
  }
  conn.send(blob, net::TrafficClass::kBgpUpdate);
  ch.ctx_.sched.run();
  EXPECT_EQ(cb.data, blob);
}

TEST(TcpLiteTest, SendBeforeEstablishedIsQueued) {
  Channel ch(3);
  Collected ca, cb;
  ch.b_.tcp().listen(179, [&cb](TcpConnection& conn) {
    conn.set_callbacks(collect(cb));
  });
  TcpConnection& conn =
      ch.a_.tcp().connect(kAddrA, 20000, kAddrB, 179, collect(ca));
  conn.send({'x'}, net::TrafficClass::kBgpUpdate);  // still in handshake
  ch.ctx_.sched.run();
  EXPECT_EQ(cb.data, (std::vector<std::uint8_t>{'x'}));
}

TEST(TcpLiteTest, PureAcksAreClassifiedSeparately) {
  Channel ch(4);
  Collected ca, cb;
  ch.b_.tcp().listen(179, [&cb](TcpConnection& conn) {
    conn.set_callbacks(collect(cb));
  });
  TcpConnection& conn =
      ch.a_.tcp().connect(kAddrA, 20000, kAddrB, 179, collect(ca));
  ch.ctx_.sched.run();
  std::uint64_t acks_before = ch.b_.ack_frames_sent;
  conn.send({'d'}, net::TrafficClass::kBgpKeepalive);
  ch.ctx_.sched.run();
  // The receiver produced a delayed pure ACK for the data.
  EXPECT_GT(ch.b_.ack_frames_sent, acks_before);
}

TEST(TcpLiteTest, ResetClosesPeer) {
  Channel ch(5);
  Collected ca, cb;
  ch.b_.tcp().listen(179, [&cb](TcpConnection& conn) {
    conn.set_callbacks(collect(cb));
  });
  TcpConnection& conn =
      ch.a_.tcp().connect(kAddrA, 20000, kAddrB, 179, collect(ca));
  ch.ctx_.sched.run();
  conn.reset();
  ch.ctx_.sched.run();
  EXPECT_TRUE(cb.closed);
  EXPECT_EQ(conn.state(), TcpConnection::State::kClosed);
}

TEST(TcpLiteTest, RetransmissionExhaustionFailsConnection) {
  // No listener and 100% loss: the SYN can never complete.
  Channel ch(6, {.loss = 1.0});
  Collected ca;
  TcpConnection& conn = ch.a_.tcp().connect(
      kAddrA, 20000, kAddrB, 179, collect(ca),
      TcpTuning{.rto = sim::Duration::millis(10), .max_retransmits = 3});
  ch.ctx_.sched.run();
  EXPECT_TRUE(ca.closed);
  EXPECT_EQ(conn.state(), TcpConnection::State::kClosed);
}

TEST(TcpLiteTest, FastRetransmitRecoversBeforeRto) {
  // One lost data segment followed by later segments: the receiver's
  // duplicate ACKs must trigger retransmission well before the (huge) RTO.
  Channel ch(8, {.delay = sim::Duration::micros(100)});
  Collected ca, cb;
  ch.b_.tcp().listen(179, [&cb](TcpConnection& conn) {
    conn.set_callbacks(collect(cb));
  });
  TcpConnection& conn = ch.a_.tcp().connect(
      kAddrA, 20000, kAddrB, 179, collect(ca),
      TcpTuning{.rto = sim::Duration::seconds(30), .mss = 100});
  ch.ctx_.sched.run();
  ASSERT_TRUE(ca.established);

  // Drop exactly the next a->b data segment.
  ch.drop_next_from_a = true;
  std::vector<std::uint8_t> blob(500);
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<std::uint8_t>(i);
  }
  conn.send(blob, net::TrafficClass::kBgpUpdate);
  // Run only 1 simulated second — far below the 30 s RTO.
  ch.ctx_.sched.run_until(ch.ctx_.sched.now() + sim::Duration::seconds(1));
  EXPECT_EQ(cb.data, blob);
}

TEST(TcpLiteTest, DestroyRemovesConnection) {
  Channel ch(7);
  Collected ca;
  TcpConnection& conn =
      ch.a_.tcp().connect(kAddrA, 20000, kAddrB, 179, collect(ca));
  EXPECT_EQ(ch.a_.tcp().connection_count(), 1u);
  ch.a_.tcp().destroy(conn);
  ch.ctx_.sched.run();
  EXPECT_EQ(ch.a_.tcp().connection_count(), 0u);
}

// Property: the byte stream is delivered completely and in order across
// random loss and reordering jitter.
class TcpLossProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(TcpLossProperty, ReliableInOrderDelivery) {
  auto [seed, loss] = GetParam();
  Channel ch(seed, {.delay = sim::Duration::micros(100),
                    .loss = loss,
                    .jitter = sim::Duration::micros(30)});
  Collected ca, cb;
  ch.b_.tcp().listen(179, [&cb](TcpConnection& conn) {
    conn.set_callbacks(collect(cb));
  });
  TcpConnection& conn = ch.a_.tcp().connect(
      kAddrA, 20000, kAddrB, 179, collect(ca),
      TcpTuning{.rto = sim::Duration::millis(20), .max_retransmits = 30});
  ch.ctx_.sched.run();
  ASSERT_TRUE(ca.established);

  std::vector<std::uint8_t> blob(5000);
  sim::Rng payload_rng(seed * 97);
  for (auto& b : blob) b = static_cast<std::uint8_t>(payload_rng.next());
  // Several sends interleaved in time.
  for (int chunk = 0; chunk < 5; ++chunk) {
    std::vector<std::uint8_t> piece(blob.begin() + chunk * 1000,
                                    blob.begin() + (chunk + 1) * 1000);
    ch.ctx_.sched.schedule_after(
        sim::Duration::millis(chunk * 3),
        [&conn, piece = std::move(piece)]() mutable {
          conn.send(std::move(piece), net::TrafficClass::kBgpUpdate);
        });
  }
  ch.ctx_.sched.run();
  EXPECT_EQ(cb.data, blob) << "seed=" << seed << " loss=" << loss;
  EXPECT_FALSE(cb.closed);
}

INSTANTIATE_TEST_SUITE_P(
    LossSweep, TcpLossProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0.0, 0.05, 0.2)));

TEST(L3NodeTest, ForwardsAcrossRouterWithEcmp) {
  net::SimContext ctx(9);
  net::Network network(ctx);

  // h1 -- r -- h2 with a second parallel path r->h2 to exercise ECMP install.
  auto& h1 = network.add_node<L3Node>("h1", 0);
  auto& r = network.add_node<L3Node>("r", 1);
  auto& h2 = network.add_node<L3Node>("h2", 0);
  network.connect(h1, r);
  network.connect(r, h2);

  h1.configure_port(1, ip::Ipv4Addr::parse("10.0.1.1"), 24);
  r.configure_port(1, ip::Ipv4Addr::parse("10.0.1.254"), 24);
  r.configure_port(2, ip::Ipv4Addr::parse("10.0.2.254"), 24);
  h2.configure_port(1, ip::Ipv4Addr::parse("10.0.2.1"), 24);
  h1.routes().set(ip::Ipv4Prefix::parse("0.0.0.0/0"), ip::RouteProto::kStatic,
                  {{ip::Ipv4Addr::parse("10.0.1.254"), 1}});
  h2.routes().set(ip::Ipv4Prefix::parse("0.0.0.0/0"), ip::RouteProto::kStatic,
                  {{ip::Ipv4Addr::parse("10.0.2.254"), 1}});

  int got = 0;
  h2.bind_udp(5000, [&](ip::Ipv4Addr src, ip::Ipv4Addr, const UdpHeader&,
                        std::span<const std::uint8_t> payload) {
    EXPECT_EQ(src, ip::Ipv4Addr::parse("10.0.1.1"));
    EXPECT_EQ(payload.size(), 4u);
    ++got;
  });
  h1.send_udp(ip::Ipv4Addr::parse("10.0.1.1"), ip::Ipv4Addr::parse("10.0.2.1"),
              4000, 5000, {1, 2, 3, 4}, net::TrafficClass::kIpData);
  ctx.sched.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(r.forwarding_stats().forwarded, 1u);
}

TEST(L3NodeTest, TtlExpiryDropsTransit) {
  net::SimContext ctx(10);
  net::Network network(ctx);
  // Two routers forwarding to each other creates a loop; TTL must kill it.
  auto& r1 = network.add_node<L3Node>("r1", 1);
  auto& r2 = network.add_node<L3Node>("r2", 1);
  network.connect(r1, r2);
  r1.configure_port(1, ip::Ipv4Addr::parse("10.0.0.0"), 31);
  r2.configure_port(1, ip::Ipv4Addr::parse("10.0.0.1"), 31);
  r1.routes().set(ip::Ipv4Prefix::parse("99.0.0.0/8"), ip::RouteProto::kStatic,
                  {{ip::Ipv4Addr::parse("10.0.0.1"), 1}});
  r2.routes().set(ip::Ipv4Prefix::parse("99.0.0.0/8"), ip::RouteProto::kStatic,
                  {{ip::Ipv4Addr::parse("10.0.0.0"), 1}});

  r1.send_ip(ip::Ipv4Addr::parse("10.0.0.0"), ip::Ipv4Addr::parse("99.1.1.1"),
             ip::IpProto::kUdp, {0, 0, 0, 0}, net::TrafficClass::kIpData);
  ctx.sched.run();  // must terminate
  EXPECT_EQ(r1.forwarding_stats().dropped_ttl +
                r2.forwarding_stats().dropped_ttl,
            1u);
}

TEST(L3NodeTest, NoRouteDropIsCounted) {
  net::SimContext ctx(11);
  net::Network network(ctx);
  auto& r = network.add_node<L3Node>("r", 1);
  r.add_port();
  r.send_ip(ip::Ipv4Addr::parse("1.1.1.1"), ip::Ipv4Addr::parse("2.2.2.2"),
            ip::IpProto::kUdp, {}, net::TrafficClass::kIpData);
  EXPECT_EQ(r.forwarding_stats().dropped_no_route, 1u);
}

}  // namespace
}  // namespace mrmtp::transport
