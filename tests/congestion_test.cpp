// Congestion behavior with finite link queues: tail-drop accounting, incast
// onto a single rack link, and queue sizing effects — substrate realism the
// paper's testbed had implicitly (kernel queues) but never measured.
#include <gtest/gtest.h>

#include "harness/deploy.hpp"

namespace mrmtp {
namespace {

using harness::Deployment;
using harness::DeployOptions;
using harness::Proto;

TEST(LinkQueueTest, TailDropWhenBacklogExceedsLimit) {
  net::SimContext ctx(1);
  net::Network network(ctx);

  class Sink : public net::Node {
   public:
    using Node::Node;
    void handle_frame(net::Port&, net::Frame) override { ++received; }
    int received = 0;
  };
  auto& a = network.add_node<Sink>("a", 1);
  auto& b = network.add_node<Sink>("b", 1);
  // 1 Gb/s with a 100 us queue: ~12.5 kB of buffer, i.e. ~12 full frames.
  auto& link = network.connect(
      a, b, {.bandwidth_bps = 1'000'000'000, .max_queue = sim::Duration::micros(100)});

  net::Frame f;
  f.payload.assign(1000, 0xaa);
  for (int i = 0; i < 100; ++i) a.transmit(a.port(1), f);
  ctx.sched.run();

  EXPECT_GT(link.stats().dropped_queue_full(), 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(b.received) +
                link.stats().dropped_queue_full(),
            100u);
  // Roughly the backlog window worth of frames got through the queue.
  EXPECT_GT(b.received, 8);
  EXPECT_LT(b.received, 30);
}

TEST(LinkQueueTest, LargerQueueAbsorbsBurst) {
  for (auto [queue_us, expect_all] :
       {std::pair{50, false}, std::pair{10000, true}}) {
    net::SimContext ctx(1);
    net::Network network(ctx);
    class Sink : public net::Node {
     public:
      using Node::Node;
      void handle_frame(net::Port&, net::Frame) override { ++received; }
      int received = 0;
    };
    auto& a = network.add_node<Sink>("a", 1);
    auto& b = network.add_node<Sink>("b", 1);
    network.connect(a, b,
                    {.bandwidth_bps = 1'000'000'000,
                     .max_queue = sim::Duration::micros(queue_us)});
    net::Frame f;
    f.payload.assign(1000, 0xaa);
    for (int i = 0; i < 50; ++i) a.transmit(a.port(1), f);
    ctx.sched.run();
    EXPECT_EQ(b.received == 50, expect_all) << queue_us << "us queue";
  }
}

/// Incast: every other server blasts one victim server simultaneously; the
/// victim's rack link must tail-drop rather than queue unboundedly, and the
/// fabric itself must stay unharmed (keep-alives never starve).
class IncastTest : public ::testing::TestWithParam<harness::Proto> {};

TEST_P(IncastTest, VictimRackLinkDropsFabricSurvives) {
  harness::Proto proto = GetParam();
  net::SimContext ctx(19);
  topo::ClosBlueprint bp(topo::ClosParams::paper_4pod());
  DeployOptions options;
  // Slow host links with shallow buffers; fast fabric.
  options.host_link.bandwidth_bps = 100'000'000;  // 100 Mb/s access
  options.host_link.max_queue = sim::Duration::micros(500);
  Deployment dep(ctx, bp, proto, options);
  dep.start();
  ctx.sched.run_until(sim::Time::from_ns(
      (proto == Proto::kMtp ? sim::Duration::seconds(2)
                            : sim::Duration::seconds(5))
          .ns()));
  ASSERT_TRUE(dep.converged());

  auto& victim = dep.host(0);
  victim.listen();
  // 7 senders x 1000B x 1 ms gap = 56 Mb/s aggregate into a 100 Mb/s link —
  // bursts collide and overflow the shallow queue.
  for (std::uint32_t h = 1; h < dep.host_count(); ++h) {
    traffic::FlowConfig flow;
    flow.dst = victim.addr();
    flow.count = 800;
    flow.gap = sim::Duration::micros(300);
    flow.payload_size = 1000;
    dep.host(h).start_flow(flow);
  }
  ctx.sched.run_until(ctx.now() + sim::Duration::seconds(2));

  // All seven senders reuse the same sequence space, so count raw arrivals
  // (the dedup counter collapses concurrent flows by design).
  std::uint64_t sent = 7 * 800;
  std::uint64_t got = victim.sink_stats().received;
  EXPECT_LT(got, sent);      // some incast loss is expected
  EXPECT_GT(got, sent / 2);  // but the link still moves most of it

  // The fabric's control plane must have stayed converged through it all.
  EXPECT_TRUE(dep.converged());
}

INSTANTIATE_TEST_SUITE_P(Protocols, IncastTest,
                         ::testing::Values(Proto::kMtp, Proto::kBgp));

TEST(RackLanTest, MultipleHostsPerRackSwitchLocally) {
  // hosts_per_tor = 2: intra-rack traffic must hairpin through the ToR's
  // rack ports without ever entering the fabric (MR-MTP local switching).
  net::SimContext ctx(29);
  topo::ClosParams params = topo::ClosParams::paper_2pod();
  params.hosts_per_tor = 2;
  topo::ClosBlueprint bp(params);
  Deployment dep(ctx, bp, Proto::kMtp, {});
  dep.start();
  ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(2).ns()));
  ASSERT_TRUE(dep.converged());
  ASSERT_EQ(dep.host_count(), 8u);

  // Hosts 0 and 1 share rack L-1-1 (192.168.11.1 / .2).
  auto& a = dep.host(0);
  auto& b = dep.host(1);
  ASSERT_EQ(b.addr().str(), "192.168.11.2");
  b.listen();
  traffic::FlowConfig flow;
  flow.dst = b.addr();
  flow.count = 100;
  flow.gap = sim::Duration::millis(1);
  a.start_flow(flow);
  ctx.sched.run_until(ctx.now() + sim::Duration::seconds(1));

  EXPECT_EQ(b.sink_stats().unique_received, 100u);
  // Nothing intra-rack touched the fabric.
  auto& tor = dep.mtp(bp.leaf(1, 1));
  EXPECT_EQ(tor.mtp_stats().data_forwarded, 0u);
  EXPECT_EQ(tor.mtp_stats().data_delivered, 0u);

  // Cross-rack from the second host also works (rack port mapping is per
  // host address).
  auto& far = dep.host(7);
  far.listen();
  traffic::FlowConfig flow2;
  flow2.dst = far.addr();
  flow2.count = 50;
  flow2.gap = sim::Duration::millis(1);
  b.start_flow(flow2);
  ctx.sched.run_until(ctx.now() + sim::Duration::seconds(1));
  EXPECT_EQ(far.sink_stats().unique_received, 50u);
}

}  // namespace
}  // namespace mrmtp
