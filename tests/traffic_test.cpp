// Unit tests: probe packet codec, the traffic generator, and the receiver
// analyzer's lost/duplicate/out-of-order accounting (paper §VI.D).
#include <gtest/gtest.h>

#include "traffic/host.hpp"

namespace mrmtp::traffic {
namespace {

TEST(ProbePacketTest, RoundTripAndPadding) {
  ProbePacket p;
  p.seq = 123456789;
  p.sent_ns = 42;
  auto bytes = p.serialize(64);
  EXPECT_EQ(bytes.size(), 64u);
  auto parsed = ProbePacket::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seq, 123456789u);
  EXPECT_EQ(parsed->sent_ns, 42);
}

TEST(ProbePacketTest, RejectsShortOrForeignPayloads) {
  EXPECT_FALSE(ProbePacket::parse(std::vector<std::uint8_t>(10, 0)).has_value());
  std::vector<std::uint8_t> wrong_magic(32, 0x11);
  EXPECT_FALSE(ProbePacket::parse(wrong_magic).has_value());
}

/// Two hosts wired back to back (host B acts as A's "gateway"), enough to
/// exercise generation and analysis without a fabric.
class TrafficPairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = &network_.add_node<Host>("a", ip::Ipv4Addr::parse("192.168.11.1"), 24,
                                  ip::Ipv4Addr::parse("192.168.11.2"));
    b_ = &network_.add_node<Host>("b", ip::Ipv4Addr::parse("192.168.11.2"), 24,
                                  ip::Ipv4Addr::parse("192.168.11.1"));
    network_.connect(*a_, *b_);
    network_.start_all();
    b_->listen();
  }

  void run_for(sim::Duration d) { ctx_.sched.run_until(ctx_.now() + d); }

  net::SimContext ctx_{77};
  net::Network network_{ctx_};
  Host* a_ = nullptr;
  Host* b_ = nullptr;
};

TEST_F(TrafficPairTest, CountedFlowCompletes) {
  FlowConfig flow;
  flow.dst = b_->addr();
  flow.count = 250;
  flow.gap = sim::Duration::millis(1);
  a_->start_flow(flow);
  run_for(sim::Duration::seconds(1));

  EXPECT_EQ(a_->packets_sent(), 250u);
  const auto& s = b_->sink_stats();
  EXPECT_EQ(s.unique_received, 250u);
  EXPECT_EQ(s.duplicates, 0u);
  EXPECT_EQ(s.out_of_order, 0u);
  EXPECT_EQ(s.lost(a_->packets_sent()), 0u);
}

TEST_F(TrafficPairTest, LossIsSentMinusUnique) {
  // Sever the link mid-flow; the analyzer's loss count must equal the
  // packets emitted into the dead window.
  FlowConfig flow;
  flow.dst = b_->addr();
  flow.count = 0;  // run until stopped
  flow.gap = sim::Duration::millis(2);
  a_->start_flow(flow);
  run_for(sim::Duration::millis(100));
  b_->set_interface_down(1);
  run_for(sim::Duration::millis(100));
  b_->set_interface_up(1);
  run_for(sim::Duration::millis(100));
  a_->stop_flow();
  run_for(sim::Duration::millis(50));

  const auto& s = b_->sink_stats();
  std::uint64_t lost = s.lost(a_->packets_sent());
  EXPECT_NEAR(static_cast<double>(lost), 50.0, 3.0);  // ~100 ms / 2 ms gap
  // The outage gap at the receiver reflects the dead window.
  EXPECT_GT(s.max_gap, sim::Duration::millis(90));
  EXPECT_LT(s.max_gap, sim::Duration::millis(120));
}

TEST_F(TrafficPairTest, DuplicatesAreCounted) {
  // 100% duplication on the wire.
  auto& a2 = network_.add_node<Host>("a2", ip::Ipv4Addr::parse("192.168.12.1"),
                                     24, ip::Ipv4Addr::parse("192.168.12.2"));
  auto& b2 = network_.add_node<Host>("b2", ip::Ipv4Addr::parse("192.168.12.2"),
                                     24, ip::Ipv4Addr::parse("192.168.12.1"));
  network_.connect(a2, b2, {.duplicate_probability = 1.0});
  a2.start();
  b2.start();
  b2.listen();

  FlowConfig flow;
  flow.dst = b2.addr();
  flow.count = 40;
  flow.gap = sim::Duration::millis(1);
  a2.start_flow(flow);
  run_for(sim::Duration::seconds(1));
  EXPECT_EQ(b2.sink_stats().unique_received, 40u);
  EXPECT_EQ(b2.sink_stats().duplicates, 40u);
}

TEST_F(TrafficPairTest, OutOfOrderDetection) {
  auto& a2 = network_.add_node<Host>("a2", ip::Ipv4Addr::parse("192.168.12.1"),
                                     24, ip::Ipv4Addr::parse("192.168.12.2"));
  auto& b2 = network_.add_node<Host>("b2", ip::Ipv4Addr::parse("192.168.12.2"),
                                     24, ip::Ipv4Addr::parse("192.168.12.1"));
  network_.connect(a2, b2, {.reorder_jitter = sim::Duration::millis(5)});
  a2.start();
  b2.start();
  b2.listen();

  FlowConfig flow;
  flow.dst = b2.addr();
  flow.count = 200;
  flow.gap = sim::Duration::micros(100);  // tight spacing vs 5 ms jitter
  a2.start_flow(flow);
  run_for(sim::Duration::seconds(1));
  EXPECT_EQ(b2.sink_stats().unique_received, 200u);
  EXPECT_GT(b2.sink_stats().out_of_order, 0u);
}

TEST_F(TrafficPairTest, StopFlowHaltsEmission) {
  FlowConfig flow;
  flow.dst = b_->addr();
  flow.gap = sim::Duration::millis(1);
  a_->start_flow(flow);
  run_for(sim::Duration::millis(50));
  a_->stop_flow();
  std::uint64_t sent = a_->packets_sent();
  run_for(sim::Duration::millis(100));
  EXPECT_EQ(a_->packets_sent(), sent);
}

TEST_F(TrafficPairTest, ResetSinkClearsState) {
  FlowConfig flow;
  flow.dst = b_->addr();
  flow.count = 10;
  flow.gap = sim::Duration::millis(1);
  a_->start_flow(flow);
  run_for(sim::Duration::millis(100));
  ASSERT_EQ(b_->sink_stats().unique_received, 10u);
  b_->reset_sink();
  EXPECT_EQ(b_->sink_stats().unique_received, 0u);
  EXPECT_EQ(b_->sink_stats().max_gap, sim::Duration{});
}

}  // namespace
}  // namespace mrmtp::traffic
