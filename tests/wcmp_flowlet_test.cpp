// Weighted multipath (WCMP) + flowlet switching.
//
// Unit tier: the weighted rendezvous primitives must deliver the advertised
// w_i / Σw split (chi-square against expected counts), never pick a
// zero-weight member, stay stable under member loss, and agree in
// distribution with the integer-replication reference. The FlowletTable is
// exercised standalone for hit/evict/collision behavior, and the RouteTable's
// cached-LPM fast path for epoch invalidation.
//
// Integration tier: a full WCMP+flowlet campaign on the 2:1 oversubscribed
// asymmetric fabric must produce a bit-identical FlowStats table at 1 shard
// and 4 shards — flowlet state is per-shard and sim-time driven, so thread
// interleaving must never show through.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/workload.hpp"
#include "ip/route_table.hpp"
#include "net/stats.hpp"
#include "util/hash.hpp"

namespace mrmtp {
namespace {

// ---------------------------------------------------------------------------
// Weighted rendezvous hashing.

/// Distributes `flows` pseudo-flows over `weights` and returns the counts.
template <typename Picker>
std::vector<std::uint64_t> spread(const std::vector<double>& weights,
                                  std::uint64_t flows, Picker&& pick) {
  std::vector<std::uint64_t> counts(weights.size(), 0);
  for (std::uint64_t f = 0; f < flows; ++f) {
    // mix64 decorrelates the sequential flow ids the same way real flow
    // hashes are produced.
    ++counts[pick(util::mix64(f ^ 0xf1043a5ull), weights)];
  }
  return counts;
}

std::size_t pick_weighted(std::uint64_t flow,
                          const std::vector<double>& weights) {
  return util::hrw_pick_weighted(
      flow, weights.size(), [](std::size_t i) { return 0x1000 + i; },
      [&](std::size_t i) { return weights[i]; });
}

/// Pearson chi-square statistic of observed vs w_i/Σw-expected counts.
double chi_square(const std::vector<std::uint64_t>& counts,
                  const std::vector<double>& weights) {
  double wsum = 0;
  std::uint64_t n = 0;
  for (double w : weights) wsum += w;
  for (auto c : counts) n += c;
  double chi = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double expect = static_cast<double>(n) * weights[i] / wsum;
    if (expect <= 0) continue;
    const double d = static_cast<double>(counts[i]) - expect;
    chi += d * d / expect;
  }
  return chi;
}

TEST(WeightedHrwTest, SplitsProportionallyToWeights) {
  const std::vector<double> weights{1.0, 2.0, 4.0};
  const std::uint64_t kFlows = 20000;
  auto counts = spread(weights, kFlows, pick_weighted);
  // 2 degrees of freedom: chi-square < 13.8 is the p=0.001 bound — a correct
  // implementation fails this about once per thousand reseeds, and the flow
  // ids here are fixed, so this never flakes.
  EXPECT_LT(chi_square(counts, weights), 13.8)
      << counts[0] << "/" << counts[1] << "/" << counts[2];
  // Gross ordering sanity on top of the statistic.
  EXPECT_LT(counts[0], counts[1]);
  EXPECT_LT(counts[1], counts[2]);
}

TEST(WeightedHrwTest, ZeroWeightMemberNeverChosen) {
  const std::vector<double> weights{1.0, 0.0, 3.0};
  auto counts = spread(weights, 5000, pick_weighted);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_GT(counts[0], 0u);
  EXPECT_GT(counts[2], 0u);
}

TEST(WeightedHrwTest, AllZeroWeightsFallBackToPlainHrw) {
  // A fully-discounted candidate set must still forward (anti-blackhole):
  // the pick degenerates to the unweighted HRW winner.
  const std::vector<double> weights{0.0, 0.0, 0.0};
  for (std::uint64_t f = 0; f < 64; ++f) {
    const std::uint64_t flow = util::mix64(f);
    const std::size_t got = pick_weighted(flow, weights);
    const std::size_t want = util::hrw_pick(
        flow, weights.size(), [](std::size_t i) { return 0x1000 + i; });
    EXPECT_EQ(got, want);
  }
}

TEST(WeightedHrwTest, SingleMemberDegenerate) {
  const std::vector<double> weights{7.5};
  for (std::uint64_t f = 0; f < 100; ++f) {
    EXPECT_EQ(pick_weighted(util::mix64(f), weights), 0u);
  }
}

TEST(WeightedHrwTest, ReplicatedVariantMatchesProportions) {
  // The integer-replication reference must produce the same 1:2:4 split in
  // distribution (not per-flow — the two schemes draw different hashes).
  const std::vector<double> weights{1.0, 2.0, 4.0};
  auto counts = spread(weights, 20000, [](std::uint64_t flow,
                                          const std::vector<double>& w) {
    return util::hrw_pick_replicated(
        flow, w.size(), [](std::size_t i) { return 0x2000 + i; },
        [&](std::size_t i) { return static_cast<std::uint64_t>(w[i]); });
  });
  EXPECT_LT(chi_square(counts, weights), 13.8)
      << counts[0] << "/" << counts[1] << "/" << counts[2];
}

TEST(WeightedHrwTest, MemberLossOnlyMovesOrphanedFlows) {
  // HRW stability: removing the last member must not move any flow that
  // wasn't mapped to it. With weights {2,1,1} drop member 2.
  const std::vector<double> full{2.0, 1.0, 1.0};
  const std::vector<double> reduced{2.0, 1.0};
  for (std::uint64_t f = 0; f < 4000; ++f) {
    const std::uint64_t flow = util::mix64(f * 977 + 13);
    const std::size_t before = pick_weighted(flow, full);
    const std::size_t after = pick_weighted(flow, reduced);
    if (before != 2) {
      EXPECT_EQ(after, before) << "flow " << f << " moved";
    }
  }
}

// ---------------------------------------------------------------------------
// FlowletTable.

TEST(FlowletTableTest, HitUpdatesAndMissEvictsStalest) {
  net::FlowletTable t;
  const std::uint64_t key = 0x1234;
  auto& s = t.probe(key);
  EXPECT_NE(s.key, key);  // cold table: miss
  s.key = key;
  s.last_ns = 100;
  s.port = 7;

  auto& again = t.probe(key);
  EXPECT_EQ(&again, &s);  // same slot on hit
  EXPECT_EQ(again.port, 7u);
}

TEST(FlowletTableTest, CollisionRunEvictsOldestEntry) {
  net::FlowletTable t;
  // Five keys landing on the same base slot exceed the probe run of 4; the
  // fifth must evict the stalest of the first four.
  const std::size_t base = 37;
  std::array<std::uint64_t, 5> keys{};
  for (std::size_t i = 0; i < keys.size(); ++i) {
    // Same low bits -> same base slot; distinct high bits keep keys unique.
    keys[i] = base | (static_cast<std::uint64_t>(i + 1) << 32);
  }
  for (std::size_t i = 0; i < 4; ++i) {
    auto& s = t.probe(keys[i]);
    s.key = keys[i];
    s.last_ns = static_cast<std::int64_t>(1000 + i);  // keys[0] is stalest
    s.port = static_cast<std::uint32_t>(i);
  }
  // All four still resident.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t.probe(keys[i]).key, keys[i]);
  }
  auto& victim = t.probe(keys[4]);
  EXPECT_EQ(victim.key, keys[0]);  // stalest evicted, not an arbitrary slot
  victim.key = keys[4];
  victim.last_ns = 2000;
  EXPECT_EQ(t.probe(keys[4]).key, keys[4]);
  EXPECT_NE(t.probe(keys[0]).key, keys[0]);  // the old entry is gone
}

// ---------------------------------------------------------------------------
// RouteTable cached-LPM fast path.

TEST(RouteTableCacheTest, CacheHitsCountAndInvalidateOnChange) {
  ip::RouteTable rt;
  const auto dst = ip::Ipv4Addr::parse("10.1.2.3");
  rt.set(ip::Ipv4Prefix::parse("10.1.2.0/24"), ip::RouteProto::kBgp,
         {ip::NextHop{ip::Ipv4Addr::parse("10.0.0.1"), 1}});

  const ip::Route* first = rt.lookup_cached(dst);
  ASSERT_NE(first, nullptr);
  const ip::Route* second = rt.lookup_cached(dst);
  EXPECT_EQ(second, first);
  EXPECT_EQ(rt.select_stats().cache_hits, 1u);
  EXPECT_EQ(rt.select_stats().cache_misses, 1u);
  EXPECT_EQ(rt.select_stats().allocs_avoided, 1u);

  // Any table mutation bumps the epoch: the next lookup must miss, not
  // serve the stale Route pointer.
  rt.set(ip::Ipv4Prefix::parse("10.9.0.0/16"), ip::RouteProto::kBgp,
         {ip::NextHop{ip::Ipv4Addr::parse("10.0.0.2"), 2}});
  (void)rt.lookup_cached(dst);
  EXPECT_EQ(rt.select_stats().cache_misses, 2u);

  rt.clear();
  EXPECT_EQ(rt.lookup_cached(dst), nullptr);
}

TEST(RouteTableCacheTest, WeightedSelectHonorsInstalledWeights) {
  ip::RouteTable rt;
  ip::NextHop slow{ip::Ipv4Addr::parse("10.0.0.1"), 1};
  slow.weight = 1;
  ip::NextHop fast{ip::Ipv4Addr::parse("10.0.0.2"), 2};
  fast.weight = 4;
  rt.set(ip::Ipv4Prefix::parse("10.1.0.0/16"), ip::RouteProto::kBgp,
         {slow, fast});
  EXPECT_GE(rt.select_stats().weight_updates, 1u);

  const auto dst = ip::Ipv4Addr::parse("10.1.2.3");
  std::uint64_t on_fast = 0;
  const std::uint64_t kFlows = 4000;
  for (std::uint64_t f = 0; f < kFlows; ++f) {
    const ip::NextHop* nh = rt.select_weighted(dst, util::mix64(f));
    ASSERT_NE(nh, nullptr);
    if (nh->port == 2) ++on_fast;
  }
  // Expect ~4/5 on the fast hop; accept a generous band.
  EXPECT_GT(on_fast, kFlows * 7 / 10);
  EXPECT_LT(on_fast, kFlows * 9 / 10);
}

}  // namespace
}  // namespace mrmtp

// ---------------------------------------------------------------------------
// Integration: shard-count determinism with flowlets enabled.

namespace mrmtp::harness {
namespace {

WorkloadRunSpec flowlet_campaign() {
  WorkloadRunSpec spec;
  spec.topo = topo::ClosParams::asymmetric_8pod_oversub();
  spec.proto = Proto::kMtp;
  spec.seed = 11;
  spec.options.host_link.bandwidth_bps = 100'000'000ull;
  spec.options.host_link.max_queue = sim::Duration::millis(50);
  spec.options.path_select = util::PathSelect::kWcmpFlowlet;
  spec.workload.load = 0.3;
  spec.workload.size_scale = 0.05;
  spec.workload.payload_size = 1000;
  spec.launch_window = sim::Duration::millis(400);
  spec.drain = sim::Duration::seconds(1);
  return spec;
}

// The flowlet table lives per shard and keys on sim time only, so the full
// FlowStats table — including flowlet_reroutes and wcmp_weight_updates —
// must be identical at any shard count.
TEST(WcmpFlowletHarnessTest, FlowStatsIdenticalAcrossShardCounts) {
  WorkloadRunSpec spec = flowlet_campaign();
  spec.force_parallel_engine = true;
  spec.threads = 1;
  WorkloadRunResult one = run_workload(spec);
  spec.threads = 4;
  WorkloadRunResult four = run_workload(spec);

  ASSERT_TRUE(one.initial_converged);
  ASSERT_TRUE(four.initial_converged);
  EXPECT_GE(four.threads_used, 2u);
  ASSERT_GT(one.flows.flows_started, 0u);
  EXPECT_EQ(one.flows, four.flows);
}

// WCMP on the oversubscribed fabric must actually engage: weights get
// installed (the 0.5-rate stripe differs from the 1.0 stripe inside every
// candidate set) and the campaign still delivers everything it schedules.
TEST(WcmpFlowletHarnessTest, WeightedCampaignDeliversFlows) {
  WorkloadRunSpec spec = flowlet_campaign();
  WorkloadRunResult r = run_workload(spec);
  ASSERT_TRUE(r.initial_converged);
  ASSERT_GT(r.flows.flows_started, 10u);
  EXPECT_EQ(r.flows.flows_delivered, r.flows.flows_started);
  EXPECT_GT(r.flows.wcmp_weight_updates, 0u);
}

// Rendezvous hashing makes flowlet redraws sticky: with an unchanged
// candidate set and unchanged weights, a gap-expired redraw re-picks the
// same port, so flowlet_reroutes stays 0 on a stable fabric (that is the
// no-spurious-reorder property). The counter must fire when the candidate
// set actually churns: the convergence probe sends one packet per 3 ms —
// every packet re-draws (gap > 500 us) — so when TC1 removes the probe's
// uplink from the ToR's candidate set, the very next redraw lands on a
// different port and counts. Scan flow identities until one rides the
// failed link (path choice is a deterministic property of the flow hash).
TEST(WcmpFlowletHarnessTest, FailureRedrawCountsReroute) {
  ExperimentSpec spec;
  spec.proto = Proto::kMtp;
  spec.tc = topo::TestCase::kTC1;
  spec.options.path_select = util::PathSelect::kWcmpFlowlet;
  bool rerouted = false;
  for (std::uint16_t src = 7000; src < 7016 && !rerouted; ++src) {
    spec.traffic_src_port = src;
    ExperimentResult r = run_failure_experiment(spec);
    ASSERT_TRUE(r.initial_converged) << "src_port " << src;
    rerouted = r.flowlet_reroutes >= 1;
  }
  EXPECT_TRUE(rerouted) << "no probe flow redrew across the TC1 failure";
}

}  // namespace
}  // namespace mrmtp::harness
