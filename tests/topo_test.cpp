// Unit tests: the folded-Clos blueprint — naming, wiring order (which fixes
// port numbers and therefore VIDs), addressing, ASN plan, TC failure points,
// and the Listing-2 MTP configuration.
#include <gtest/gtest.h>

#include "topo/clos.hpp"

namespace mrmtp::topo {
namespace {

TEST(ClosParamsTest, PaperTopologies) {
  auto p2 = ClosParams::paper_2pod();
  EXPECT_EQ(p2.router_count(), 12u);  // 4 leaves + 4 pod spines + 4 tops
  auto p4 = ClosParams::paper_4pod();
  EXPECT_EQ(p4.router_count(), 20u);  // 8 + 8 + 4
  EXPECT_EQ(p2.uplinks_per_spine(), 2u);
}

TEST(ClosBlueprintTest, RejectsBadParameters) {
  EXPECT_THROW(ClosBlueprint(ClosParams{0, 2, 2, 4, 1}), std::invalid_argument);
  EXPECT_THROW(ClosBlueprint(ClosParams{2, 2, 3, 4, 1}), std::invalid_argument);
}

TEST(ClosBlueprintTest, DeviceNamingMatchesListing2) {
  ClosBlueprint bp(ClosParams::paper_4pod());
  EXPECT_EQ(bp.device(bp.leaf(1, 1)).name, "L-1-1");
  EXPECT_EQ(bp.device(bp.leaf(4, 2)).name, "L-4-2");
  EXPECT_EQ(bp.device(bp.pod_spine(3, 2)).name, "S-3-2");
  EXPECT_EQ(bp.device(bp.top_spine(4)).name, "T-4");
  EXPECT_EQ(bp.device_index("S-2-1"), bp.pod_spine(2, 1));
  EXPECT_THROW((void)bp.device_index("X-9"), std::out_of_range);
}

TEST(ClosBlueprintTest, VidsAreSequentialFromEleven) {
  ClosBlueprint bp(ClosParams::paper_2pod());
  EXPECT_EQ(bp.tor_vid(1, 1), 11);
  EXPECT_EQ(bp.tor_vid(1, 2), 12);
  EXPECT_EQ(bp.tor_vid(2, 1), 13);
  EXPECT_EQ(bp.tor_vid(2, 2), 14);
  EXPECT_EQ(bp.device(bp.leaf(1, 1)).server_subnet->str(), "192.168.11.0/24");
}

TEST(ClosBlueprintTest, LinkCountsAndDegrees) {
  ClosBlueprint bp(ClosParams::paper_2pod());
  // Pod-spine uplinks: 2 pods * 2 spines * 2 uplinks = 8.
  // ToR uplinks: 2 pods * 2 tors * 2 spines = 8.
  EXPECT_EQ(bp.links().size(), 16u);
  EXPECT_EQ(bp.hosts().size(), 4u);

  // Every top spine has exactly one link per pod.
  for (std::uint32_t t = 1; t <= 4; ++t) {
    int degree = 0;
    for (const auto& l : bp.links()) {
      if (l.upper == bp.top_spine(t)) ++degree;
    }
    EXPECT_EQ(degree, 2) << "T-" << t;
  }
}

TEST(ClosBlueprintTest, WiringMatchesPaperFig2) {
  ClosBlueprint bp(ClosParams::paper_2pod());
  // S-1-1 (paper S1_1) uplinks to T-1 and T-3 (paper S2_1 / S2_3) on its
  // ports 1 and 2 — that ordering produces VIDs 11.1.1 and 11.1.2.
  std::uint32_t s11 = bp.pod_spine(1, 1);
  std::vector<std::pair<std::string, std::uint32_t>> uplinks;
  for (std::uint32_t li = 0; li < bp.links().size(); ++li) {
    const auto& l = bp.links()[li];
    if (l.lower == s11) {
      uplinks.emplace_back(bp.device(l.upper).name, bp.port_on(s11, li));
    }
  }
  ASSERT_EQ(uplinks.size(), 2u);
  EXPECT_EQ(uplinks[0], (std::pair<std::string, std::uint32_t>{"T-1", 1}));
  EXPECT_EQ(uplinks[1], (std::pair<std::string, std::uint32_t>{"T-3", 2}));

  // L-1-1's ports 1 and 2 go to S-1-1 and S-1-2 (VIDs 11.1, 11.2).
  std::uint32_t l11 = bp.leaf(1, 1);
  for (std::uint32_t li = 0; li < bp.links().size(); ++li) {
    const auto& l = bp.links()[li];
    if (l.lower == l11) {
      std::uint32_t port = bp.port_on(l11, li);
      EXPECT_EQ(bp.device(l.upper).name, "S-1-" + std::to_string(port));
    }
  }
}

TEST(ClosBlueprintTest, AsnPlanFollowsRfc7938Listing1) {
  ClosBlueprint bp(ClosParams::paper_4pod());
  // All tops share 64512; pod spines get 64513..64516; ToRs unique.
  for (std::uint32_t t = 1; t <= 4; ++t) {
    EXPECT_EQ(bp.device(bp.top_spine(t)).asn, 64512u);
  }
  for (std::uint32_t pod = 1; pod <= 4; ++pod) {
    EXPECT_EQ(bp.device(bp.pod_spine(pod, 1)).asn, 64512u + pod);
    EXPECT_EQ(bp.device(bp.pod_spine(pod, 2)).asn, 64512u + pod);
  }
  std::set<std::uint32_t> tor_asns;
  for (const auto& d : bp.devices()) {
    if (d.role == Role::kLeaf) tor_asns.insert(d.asn);
  }
  EXPECT_EQ(tor_asns.size(), 8u);
}

TEST(ClosBlueprintTest, P2PAddressesAreUniqueSlash31Pairs) {
  ClosBlueprint bp(ClosParams::paper_4pod());
  std::set<std::uint32_t> seen;
  for (const auto& l : bp.links()) {
    EXPECT_EQ(l.lower_addr.value(), l.upper_addr.value() + 1);
    EXPECT_EQ(l.upper_addr.value() % 2, 0u);  // even side of the /31
    EXPECT_TRUE(seen.insert(l.upper_addr.value()).second);
    EXPECT_TRUE(seen.insert(l.lower_addr.value()).second);
  }
}

TEST(ClosBlueprintTest, FailurePointsMatchPaperFig3) {
  ClosBlueprint bp(ClosParams::paper_2pod());

  FailurePoint tc1 = bp.failure_point(TestCase::kTC1);
  EXPECT_EQ(tc1.device, "L-1-1");
  EXPECT_EQ(tc1.port, 1u);  // first uplink = toward S-1-1
  EXPECT_EQ(tc1.peer, "S-1-1");

  FailurePoint tc2 = bp.failure_point(TestCase::kTC2);
  EXPECT_EQ(tc2.device, "S-1-1");
  EXPECT_EQ(tc2.peer, "L-1-1");
  // S-1-1's downlinks follow its 2 uplinks: L-1-1 is port 3.
  EXPECT_EQ(tc2.port, 3u);

  FailurePoint tc3 = bp.failure_point(TestCase::kTC3);
  EXPECT_EQ(tc3.device, "S-1-1");
  EXPECT_EQ(tc3.port, 1u);  // first uplink = toward T-1
  EXPECT_EQ(tc3.peer, "T-1");

  FailurePoint tc4 = bp.failure_point(TestCase::kTC4);
  EXPECT_EQ(tc4.device, "T-1");
  EXPECT_EQ(tc4.port, 1u);  // pod-1 downlink
  EXPECT_EQ(tc4.peer, "S-1-1");
}

TEST(ClosBlueprintTest, LeafHostPortFollowsUplinks) {
  ClosBlueprint bp(ClosParams::paper_2pod());
  // 2 uplinks, so the rack port is eth3 — as in the paper's Listing 2.
  EXPECT_EQ(bp.leaf_host_port(bp.leaf(1, 1)), 3u);
}

TEST(ClosBlueprintTest, HostAddressing) {
  ClosBlueprint bp(ClosParams::paper_2pod());
  const auto& h = bp.hosts()[0];
  EXPECT_EQ(h.name, "H-1-1");
  EXPECT_EQ(h.addr.str(), "192.168.11.1");
  EXPECT_EQ(h.gateway.str(), "192.168.11.254");
  EXPECT_EQ(bp.hosts()[3].addr.str(), "192.168.14.1");
}

TEST(ClosBlueprintTest, MtpConfigMatchesListing2Shape) {
  ClosBlueprint bp(ClosParams::paper_4pod());
  util::Json cfg = bp.mtp_config();
  const util::Json* topo = cfg.find("topology");
  ASSERT_NE(topo, nullptr);
  EXPECT_EQ(topo->find("tiers")->as_int(), 3);
  EXPECT_EQ(topo->find("leaves")->as_array().size(), 8u);
  EXPECT_EQ(topo->find("topSpines")->as_array().size(), 4u);
  EXPECT_EQ(topo->find("pods")->as_array().size(), 4u);
  EXPECT_EQ(
      topo->find("leavesNetworkPortDict")->find("L-1-1")->as_string(), "eth3");

  // The config is valid JSON end-to-end.
  std::string text = cfg.dump();
  EXPECT_NO_THROW(util::Json::parse(text));
}

TEST(ClosBlueprintTest, ScalesToSixteenPods) {
  ClosParams params{16, 4, 4, 16, 1};
  ClosBlueprint bp(params);
  EXPECT_EQ(bp.devices().size(), 16u * 8 + 16);
  EXPECT_EQ(bp.links().size(),
            16u * 4 * 4 /* spine uplinks */ + 16u * 4 * 4 /* tor uplinks */);
  // VIDs stay within a byte for 64 racks starting at 11.
  EXPECT_EQ(bp.tor_vid(16, 4), 11 + 63);
}

TEST(AsymmetricClos, CountsAndLeafIndexingFollowPrefixSums) {
  ClosParams p = ClosParams::asymmetric_8pod();
  ASSERT_TRUE(p.asymmetric());
  EXPECT_EQ(p.total_tors(), 16u);  // 2+3+1+2+3+1+2+2
  EXPECT_EQ(p.router_count(), 16u + 8 * 2 + 4);

  ClosBlueprint bp(p);
  // Leaf indices are prefix sums over the per-PoD rack counts, so pod 2
  // (3 ToRs) starts right after pod 1's 2 and pod 3 after 2+3.
  EXPECT_EQ(bp.leaf(1, 1), 0u);
  EXPECT_EQ(bp.leaf(2, 1), 2u);
  EXPECT_EQ(bp.leaf(2, 3), 4u);
  EXPECT_EQ(bp.leaf(3, 1), 5u);
  EXPECT_EQ(bp.device(bp.leaf(3, 1)).name, "L-3-1");
  // VIDs stay sequential from 11 across the uneven PoDs.
  EXPECT_EQ(bp.device(bp.leaf(1, 1)).vid, 11);
  EXPECT_EQ(bp.device(bp.leaf(2, 3)).vid, 11 + 4);
  EXPECT_EQ(bp.device(bp.leaf(8, 2)).vid, 11 + 15);
  // Every PoD holds exactly its configured rack count.
  std::vector<std::uint32_t> per_pod(9, 0);
  for (const DeviceSpec& d : bp.devices()) {
    if (d.role == Role::kLeaf) ++per_pod[d.pod];
  }
  for (std::uint32_t g = 0; g < 8; ++g) {
    EXPECT_EQ(per_pod[g + 1], p.pod_tors[g]) << "pod " << g + 1;
  }
}

TEST(AsymmetricClos, UplinkRatesLandOnTorUplinksOnly) {
  ClosParams p = ClosParams::asymmetric_8pod();
  ClosBlueprint bp(p);
  for (std::size_t li = 0; li < bp.links().size(); ++li) {
    const LinkSpec& l = bp.links()[li];
    if (bp.device(l.lower).role == Role::kLeaf) {
      EXPECT_DOUBLE_EQ(l.rate,
                       p.uplink_rate_of(bp.device(l.lower).pod - 1));
    } else {
      EXPECT_DOUBLE_EQ(l.rate, 1.0) << "spine tiers keep the base rate";
    }
  }
}

TEST(AsymmetricClos, ValidationRejectsBadShapes) {
  ClosParams wrong_size{8, 2, 2, 4, 1};
  wrong_size.pod_tors = {2, 3};  // must name all 8 global PoDs
  EXPECT_THROW(ClosBlueprint{wrong_size}, std::invalid_argument);

  ClosParams empty_pod{8, 2, 2, 4, 1};
  empty_pod.pod_tors = {2, 0, 1, 2, 3, 1, 2, 2};
  EXPECT_THROW(ClosBlueprint{empty_pod}, std::invalid_argument);

  ClosParams bad_rate{8, 2, 2, 4, 1};
  bad_rate.pod_uplink_rate = {1.0, -0.5, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  EXPECT_THROW(ClosBlueprint{bad_rate}, std::invalid_argument);

  ClosParams vid_overflow{8, 2, 2, 4, 1};
  vid_overflow.pod_tors = {40, 40, 40, 40, 40, 40, 40, 1};  // 281 racks
  EXPECT_THROW(ClosBlueprint{vid_overflow}, std::invalid_argument);

  ClosParams single_spine{2, 2, 1, 1, 1};
  single_spine.miswires = 1;  // swaps need two spines in a PoD
  EXPECT_THROW(ClosBlueprint{single_spine}, std::invalid_argument);
}

TEST(AsymmetricClos, MiswiresViolateStripeRuleWithinThePod) {
  ClosParams p{8, 2, 2, 4, 1};
  p.miswires = 2;
  p.miswire_seed = 7;
  ClosBlueprint bp(p);
  std::vector<std::uint32_t> bad = bp.miswired_links();
  ASSERT_EQ(bad.size(), 2u * 2);  // each swap miswires both cables
  for (std::uint32_t li : bad) {
    const LinkSpec& l = bp.links()[li];
    const DeviceSpec& top = bp.device(l.upper);
    const DeviceSpec& spine = bp.device(l.lower);
    ASSERT_EQ(top.role, Role::kTopSpine);
    ASSERT_EQ(spine.role, Role::kPodSpine);
    // The defining property: the stripe rule does not hold on this cable.
    EXPECT_NE((top.index - 1) % p.spines_per_pod, spine.index - 1)
        << top.name << " <-> " << spine.name;
  }
  // Determinism: same seed, same swaps; a clean build reports none.
  ClosBlueprint again(p);
  EXPECT_EQ(again.miswired_links(), bad);
  EXPECT_TRUE(ClosBlueprint(ClosParams{8, 2, 2, 4, 1}).miswired_links()
                  .empty());
}

}  // namespace
}  // namespace mrmtp::topo
