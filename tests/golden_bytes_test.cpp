// Golden-bytes regression suite for the buffer-pipeline refactor: the exact
// bytes this simulator emits — serialized frames, pcap tap output, and the
// per-class L2 TrafficStats that feed the paper's overhead figures (6/9/10)
// — are frozen here as FNV-1a digests captured from the pre-refactor tree.
// Any payload-representation change that shifts a single wire byte or a
// single padded-byte count fails this suite.
#include <gtest/gtest.h>

#include <cstdio>

#include "harness/deploy.hpp"
#include "ip/packet.hpp"
#include "mtp/message.hpp"
#include "net/pcap.hpp"
#include "traffic/host.hpp"
#include "transport/tcp_lite.hpp"
#include "transport/udp.hpp"

namespace mrmtp {
namespace {

/// FNV-1a over any indexable byte container (std::vector, net::Buffer, ...).
template <typename C>
std::uint64_t fnv1a(const C& c) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < c.size(); ++i) {
    h ^= static_cast<std::uint8_t>(c[i]);
    h *= 1099511628211ull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Codec-level goldens: byte-exact digests of each layer's serializer.
// ---------------------------------------------------------------------------

TEST(GoldenBytes, MtpCodec) {
  mtp::DataMsg d;
  d.src_root = 0x0102;
  d.dst_root = 0x0304;
  d.ttl = 9;
  d.ip_packet = {0x45, 0x00, 0x00, 0x1c, 0xde, 0xad, 0xbe, 0xef};
  auto data = mtp::encode(mtp::MtpMessage{d});
  EXPECT_EQ(data.size(), 14u);  // 6-byte MTP header + 8 payload bytes
  EXPECT_EQ(fnv1a(data), 0x8d53830bac6ef1a2ull);

  auto hello = mtp::encode(mtp::MtpMessage{mtp::HelloMsg{}});
  ASSERT_EQ(hello.size(), 1u);  // the paper's Fig.-10 one-byte keep-alive
  EXPECT_EQ(hello[0], 0x06);

  mtp::JoinOfferMsg offer;
  offer.msg_id = 0x0a0b;
  offer.vids = {mtp::Vid{121}, mtp::Vid{1214}};
  auto ctrl = mtp::encode(mtp::MtpMessage{offer});
  EXPECT_EQ(fnv1a(ctrl), 0x24879edbe3db04faull);
}

TEST(GoldenBytes, IpUdpTcpCodecs) {
  std::vector<std::uint8_t> probe(48, 0x5a);
  transport::UdpHeader udp;
  udp.src_port = 7000;
  udp.dst_port = 7001;
  auto udp_bytes = udp.serialize(probe);
  EXPECT_EQ(udp_bytes.size(), 8u + 48u);
  EXPECT_EQ(fnv1a(udp_bytes), 0x0e9e71b74a0620b0ull);

  ip::Ipv4Header h;
  h.src = ip::Ipv4Addr::parse("10.1.1.2");
  h.dst = ip::Ipv4Addr::parse("10.2.4.2");
  h.protocol = ip::IpProto::kUdp;
  h.ttl = 63;
  h.identification = 0x77;
  auto ip_bytes = h.serialize(udp_bytes);
  EXPECT_EQ(ip_bytes.size(), 20u + 56u);
  EXPECT_EQ(fnv1a(ip_bytes), 0xf7e018f0fc366f22ull);

  transport::TcpSegment seg;
  seg.src_port = 179;
  seg.dst_port = 30000;
  seg.seq = 1000;
  seg.ack = 2000;
  seg.flags.ack = true;
  seg.payload = {1, 2, 3, 4, 5};
  auto tcp_bytes = seg.serialize();
  EXPECT_EQ(tcp_bytes.size(), transport::TcpSegment::kHeaderSize + 5u);
  EXPECT_EQ(fnv1a(tcp_bytes), 0x79eeaa544b141da8ull);
}

TEST(GoldenBytes, FrameSerialize) {
  net::Frame f;
  f.dst = net::MacAddr::broadcast();
  f.src = net::MacAddr{{0x02, 0x00, 0x00, 0x00, 0x01, 0x07}};
  f.ethertype = net::EtherType::kMtp;
  f.payload = {0x06};
  auto bytes = f.serialize();
  ASSERT_EQ(bytes.size(), 15u);
  EXPECT_EQ(fnv1a(bytes), 0x40e49f49af30d4d3ull);
  EXPECT_EQ(f.wire_size(), 15u);
  EXPECT_EQ(f.padded_wire_size(), 60u);
}

// ---------------------------------------------------------------------------
// Fabric-level golden: a deterministic 2-pod run per protocol. Pcap bytes on
// the S-1-1<->L-1-1 link and the fabric-wide per-class rx totals must be
// bit-identical across the refactor.
// ---------------------------------------------------------------------------

struct GoldenRun {
  std::uint64_t pcap_hash = 0;
  std::size_t pcap_records = 0;
  std::uint64_t frames[net::kTrafficClassCount] = {};
  std::uint64_t bytes[net::kTrafficClassCount] = {};
  std::uint64_t padded[net::kTrafficClassCount] = {};
  std::uint64_t sent = 0;
  std::uint64_t unique_received = 0;
};

GoldenRun run_scenario(harness::Proto proto) {
  net::SimContext ctx(7);
  topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
  harness::Deployment dep(ctx, bp, proto, {});

  net::PcapWriter writer;
  for (std::uint32_t li = 0; li < bp.links().size(); ++li) {
    const auto& l = bp.links()[li];
    if (bp.device(l.upper).name == "S-1-1" &&
        bp.device(l.lower).name == "L-1-1") {
      attach_tap(*dep.network().links()[li], writer);
    }
  }

  dep.start();
  ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(3).ns()));
  EXPECT_TRUE(dep.converged());

  auto& src = dep.host(0);
  auto& dst = dep.host(static_cast<std::uint32_t>(dep.host_count() - 1));
  dst.listen();
  traffic::FlowConfig flow;
  flow.dst = dst.addr();
  flow.count = 200;
  flow.gap = sim::Duration::millis(1);
  flow.payload_size = 80;
  src.start_flow(flow);
  ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(4).ns()));

  GoldenRun g;
  g.pcap_hash = fnv1a(writer.to_pcap());
  g.pcap_records = writer.size();
  for (const auto& node : dep.network().nodes()) {
    for (std::uint32_t p = 1; p <= node->port_count(); ++p) {
      const auto& rx = node->port(p).rx_stats();
      for (std::size_t c = 0; c < net::kTrafficClassCount; ++c) {
        g.frames[c] += rx.by_class[c].frames;
        g.bytes[c] += rx.by_class[c].bytes;
        g.padded[c] += rx.by_class[c].padded_bytes;
      }
    }
  }
  g.sent = src.packets_sent();
  g.unique_received = dst.sink_stats().unique_received;
  return g;
}

void print_actuals(const char* tag, const GoldenRun& g) {
  std::printf("[golden:%s] pcap_hash=0x%016llxull records=%zu sent=%llu "
              "unique=%llu\n",
              tag, static_cast<unsigned long long>(g.pcap_hash),
              g.pcap_records, static_cast<unsigned long long>(g.sent),
              static_cast<unsigned long long>(g.unique_received));
  for (std::size_t c = 0; c < net::kTrafficClassCount; ++c) {
    if (g.frames[c] == 0) continue;
    std::printf("[golden:%s]   class=%zu frames=%llu bytes=%llu padded=%llu\n",
                tag, c, static_cast<unsigned long long>(g.frames[c]),
                static_cast<unsigned long long>(g.bytes[c]),
                static_cast<unsigned long long>(g.padded[c]));
  }
}

TEST(GoldenFabric, MtpTwoPodRun) {
  GoldenRun g = run_scenario(harness::Proto::kMtp);
  print_actuals("mtp", g);

  EXPECT_EQ(g.sent, 200u);
  EXPECT_EQ(g.unique_received, 200u);
  // Hashes re-captured for the multi-flow traffic model: the probe header
  // gained flow_id and flow_packets fields (a deliberate wire-format
  // change). Probe payloads pad to the same size, so every frame/byte/record
  // count below is unchanged — only the payload bits moved.
  EXPECT_EQ(g.pcap_hash, 0xbb2d346a4ec227afull);
  EXPECT_EQ(g.pcap_records, 363u);

  using TC = net::TrafficClass;
  auto idx = [](TC tc) { return static_cast<std::size_t>(tc); };
  EXPECT_EQ(g.frames[idx(TC::kMtpControl)], 232u);
  EXPECT_EQ(g.bytes[idx(TC::kMtpControl)], 5808u);
  EXPECT_EQ(g.padded[idx(TC::kMtpControl)], 13920u);
  EXPECT_EQ(g.frames[idx(TC::kMtpHello)], 2480u);
  EXPECT_EQ(g.bytes[idx(TC::kMtpHello)], 37200u);
  EXPECT_EQ(g.padded[idx(TC::kMtpHello)], 148800u);
  EXPECT_EQ(g.frames[idx(TC::kMtpData)], 800u);
  EXPECT_EQ(g.bytes[idx(TC::kMtpData)], 102400u);
  EXPECT_EQ(g.padded[idx(TC::kMtpData)], 102400u);
  EXPECT_EQ(g.frames[idx(TC::kIpData)], 400u);
  EXPECT_EQ(g.bytes[idx(TC::kIpData)], 48800u);
  EXPECT_EQ(g.padded[idx(TC::kIpData)], 48800u);
}

TEST(GoldenFabric, BgpTwoPodRun) {
  GoldenRun g = run_scenario(harness::Proto::kBgp);
  print_actuals("bgp", g);

  EXPECT_EQ(g.sent, 200u);
  EXPECT_EQ(g.unique_received, 200u);
  EXPECT_EQ(g.pcap_hash, 0x90436520594eddceull);
  EXPECT_EQ(g.pcap_records, 228u);

  using TC = net::TrafficClass;
  auto idx = [](TC tc) { return static_cast<std::size_t>(tc); };
  EXPECT_EQ(g.frames[idx(TC::kBgpUpdate)], 64u);
  EXPECT_EQ(g.bytes[idx(TC::kBgpUpdate)], 7648u);
  EXPECT_EQ(g.padded[idx(TC::kBgpUpdate)], 7648u);
  EXPECT_EQ(g.frames[idx(TC::kBgpKeepalive)], 194u);
  EXPECT_EQ(g.bytes[idx(TC::kBgpKeepalive)], 16810u);
  EXPECT_EQ(g.padded[idx(TC::kBgpKeepalive)], 16810u);
  EXPECT_EQ(g.frames[idx(TC::kTcpAck)], 195u);
  EXPECT_EQ(g.bytes[idx(TC::kTcpAck)], 12870u);
  EXPECT_EQ(g.padded[idx(TC::kTcpAck)], 12870u);
  EXPECT_EQ(g.frames[idx(TC::kIpData)], 1200u);
  EXPECT_EQ(g.bytes[idx(TC::kIpData)], 146400u);
  EXPECT_EQ(g.padded[idx(TC::kIpData)], 146400u);
}

}  // namespace
}  // namespace mrmtp
