// Finite switch buffers end to end: the mark_ce wire transform, shared-pool
// admission under dynamic-threshold vs pure tail-drop sharing, PFC
// xoff/xon hysteresis, the clamped+jittered RTO backoff, and then the full
// incast story on a deployed fabric — pool occupancy bounded, control band
// lossless at data exhaustion, zero PFC deadlocks under the auditor (with
// and without seeded buffer-squeeze chaos), and the determinism contract:
// the same campaign with ECN response and PFC backpressure active produces
// a bit-identical FlowStats table at 1 shard and at 4.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "harness/workload.hpp"
#include "ip/packet.hpp"
#include "net/network.hpp"
#include "net/switch_buffer.hpp"
#include "transport/tcp_lite.hpp"

namespace mrmtp {
namespace {

// ---------------------------------------------------------------------------
// mark_ce: the raw-byte CE transform must round-trip through the real IPv4
// codec — parse() validates the patched checksum, so a bad recompute throws.

std::vector<std::uint8_t> sample_packet(std::uint8_t tos) {
  ip::Ipv4Header hdr;
  hdr.tos = tos;
  hdr.src = ip::Ipv4Addr::parse("10.0.0.1");
  hdr.dst = ip::Ipv4Addr::parse("10.0.1.1");
  std::vector<std::uint8_t> payload(40, 0x5a);
  return hdr.serialize(payload);
}

TEST(MarkCeTest, MarksPlainIpv4AndPatchesChecksum) {
  net::Frame f;
  f.ethertype = net::EtherType::kIpv4;
  f.payload = sample_packet(/*tos=*/0x02);  // ECT(0)

  ASSERT_TRUE(net::mark_ce(f));

  std::span<const std::uint8_t> rest;
  ip::Ipv4Header out = ip::Ipv4Header::parse(
      {f.payload.data(), f.payload.size()}, rest);  // throws on bad checksum
  EXPECT_EQ(out.tos & 0x03, 0x03);
  EXPECT_EQ(rest.size(), 40u);

  // Already CE: no second mark.
  EXPECT_FALSE(net::mark_ce(f));
}

TEST(MarkCeTest, FollowsInnerIpOffsetThroughEncapsulation) {
  std::vector<std::uint8_t> pkt = sample_packet(0x00);
  std::vector<std::uint8_t> encap(pkt.size() + 6, 0xee);  // 6B tunnel header
  std::copy(pkt.begin(), pkt.end(), encap.begin() + 6);

  net::Frame f;
  f.ethertype = net::EtherType::kMtp;
  f.payload = encap;
  EXPECT_FALSE(net::mark_ce(f));  // inner offset not declared yet

  f.inner_ip_offset = 6;
  ASSERT_TRUE(net::mark_ce(f));
  std::span<const std::uint8_t> rest;
  ip::Ipv4Header out = ip::Ipv4Header::parse(
      {f.payload.data() + 6, f.payload.size() - 6}, rest);
  EXPECT_EQ(out.tos & 0x03, 0x03);
}

TEST(MarkCeTest, RefusesMalformedBytes) {
  net::Frame f;
  f.ethertype = net::EtherType::kIpv4;
  f.payload = std::vector<std::uint8_t>(10, 0x45);  // truncated header
  EXPECT_FALSE(net::mark_ce(f));

  std::vector<std::uint8_t> pkt = sample_packet(0x00);
  pkt[0] = 0x65;  // version 6
  f.payload = pkt;
  EXPECT_FALSE(net::mark_ce(f));
}

// ---------------------------------------------------------------------------
// SwitchBuffer admission: dynamic-threshold sharing self-limits one port to
// roughly half the pool (cap = reserve + alpha * free converges there), while
// alpha <= 0 is the commodity tail-drop that fills to 100%.

class NullNode : public net::Node {
 public:
  using Node::Node;
  void handle_frame(net::Port&, net::Frame) override {}
};

TEST(SwitchBufferTest, DynamicThresholdCapsOnePortNearHalfPool) {
  net::SimContext ctx(1);
  net::Network network(ctx);
  auto& node = network.add_node<NullNode>("sw", 4);

  net::SwitchBufferParams p;
  p.pool_bytes = 100'000;
  p.port_reserve_bytes = 1'000;
  p.dt_alpha = 1.0;
  p.pfc_xoff_bytes = 0;  // admission only
  net::SwitchBuffer sb(node, p);

  while (sb.admit_egress(1, 1'000)) {
  }
  // cap = reserve + free and a single hog owns every used byte, so it
  // stalls where used ~= (pool + reserve) / 2.
  EXPECT_NEAR(static_cast<double>(sb.pool_used()), 50'500.0, 2'000.0);
  EXPECT_GT(sb.stats().dropped, 0u);
  EXPECT_FALSE(sb.exhausted());

  // A second port still gets its share from the remaining free bytes.
  EXPECT_TRUE(sb.admit_egress(2, 1'000));
}

TEST(SwitchBufferTest, TailDropAlphaFillsPoolCompletely) {
  net::SimContext ctx(1);
  net::Network network(ctx);
  auto& node = network.add_node<NullNode>("sw", 4);

  net::SwitchBufferParams p;
  p.pool_bytes = 100'000;
  p.dt_alpha = 0.0;  // pure shared tail-drop
  p.pfc_xoff_bytes = 0;
  net::SwitchBuffer sb(node, p);

  while (sb.admit_egress(1, 1'000)) {
  }
  EXPECT_EQ(sb.pool_used(), 100'000u);
  EXPECT_TRUE(sb.exhausted());
  EXPECT_EQ(sb.stats().occupancy_hw, 100'000u);

  // Releases free the pool again, byte for byte.
  sb.release_egress(1, 40'000);
  EXPECT_FALSE(sb.exhausted());
  EXPECT_TRUE(sb.admit_egress(2, 1'000));
}

TEST(SwitchBufferTest, SqueezeShrinksEffectivePoolAndRestoreUndoes) {
  net::SimContext ctx(1);
  net::Network network(ctx);
  auto& node = network.add_node<NullNode>("sw", 2);

  net::SwitchBufferParams p;
  p.pool_bytes = 80'000;
  p.dt_alpha = 0.0;
  p.pfc_xoff_bytes = 0;
  net::SwitchBuffer sb(node, p);

  ASSERT_TRUE(sb.admit_egress(1, 30'000));
  sb.squeeze(0.25);
  EXPECT_EQ(sb.effective_pool(), 20'000u);
  EXPECT_TRUE(sb.exhausted());  // already over the squeezed cap
  EXPECT_FALSE(sb.admit_egress(1, 1'000));
  sb.restore();
  EXPECT_EQ(sb.effective_pool(), 80'000u);
  EXPECT_TRUE(sb.admit_egress(1, 1'000));
}

TEST(SwitchBufferTest, PfcHysteresisPausesAtXoffResumesAtXon) {
  net::SimContext ctx(1);
  net::Network network(ctx);
  auto& node = network.add_node<NullNode>("sw", 2);
  auto& peer = network.add_node<NullNode>("peer", 2);
  network.connect(node, peer);  // port 1 exists once wired

  net::SwitchBufferParams p;
  p.pfc_xoff_bytes = 10'000;
  p.pfc_xon_bytes = 4'000;
  net::SwitchBuffer sb(node, p);

  for (int i = 0; i < 9; ++i) sb.charge_ingress(1, 1'000);
  EXPECT_FALSE(sb.ingress_paused(1));
  sb.charge_ingress(1, 1'000);  // crosses xoff
  EXPECT_TRUE(sb.ingress_paused(1));
  EXPECT_EQ(sb.stats().pause_onsets, 1u);

  // Hysteresis: draining below xoff but above xon keeps the pause.
  sb.release_ingress(1, 5'000);
  EXPECT_TRUE(sb.ingress_paused(1));
  sb.charge_ingress(1, 2'000);  // re-crossing xoff is NOT a second onset
  EXPECT_EQ(sb.stats().pause_onsets, 1u);

  sb.release_ingress(1, 3'100);  // 3'900 <= xon -> resume
  EXPECT_FALSE(sb.ingress_paused(1));
  EXPECT_EQ(sb.stats().resume_onsets, 1u);
}

// ---------------------------------------------------------------------------
// RTO backoff: doubling, hard clamp at rto_max, and the seeded jitter
// envelope that de-correlates an incast's synchronized retransmit storm.

TEST(BackoffRtoTest, DoublesThenClampsWithJitterEnvelope) {
  transport::TcpTuning t;
  t.rto = sim::Duration::millis(200);
  t.rto_max = sim::Duration::seconds(5);
  t.rto_jitter = 0.1;
  sim::Rng rng(7);

  for (int n = 0; n <= 12; ++n) {
    const double base_ms = std::min(200.0 * std::pow(2.0, n), 5'000.0);
    const double got_ms =
        transport::TcpConnection::backoff_rto(t, n, rng).to_millis();
    EXPECT_GE(got_ms, base_ms * 0.9 - 1e-6) << "retransmit " << n;
    EXPECT_LE(got_ms, base_ms * 1.1 + 1e-6) << "retransmit " << n;
  }
}

TEST(BackoffRtoTest, ZeroJitterIsExactAndDeterministic) {
  transport::TcpTuning t;
  t.rto = sim::Duration::millis(100);
  t.rto_max = sim::Duration::seconds(2);
  t.rto_jitter = 0.0;
  sim::Rng rng(1);

  EXPECT_EQ(transport::TcpConnection::backoff_rto(t, 0, rng).ns(),
            sim::Duration::millis(100).ns());
  EXPECT_EQ(transport::TcpConnection::backoff_rto(t, 3, rng).ns(),
            sim::Duration::millis(800).ns());
  EXPECT_EQ(transport::TcpConnection::backoff_rto(t, 9, rng).ns(),
            sim::Duration::seconds(2).ns());  // clamped
}

TEST(BackoffRtoTest, JitterStreamIsSeedDeterministic) {
  transport::TcpTuning t;
  sim::Rng a(99), b(99);
  for (int n = 0; n < 8; ++n) {
    EXPECT_EQ(transport::TcpConnection::backoff_rto(t, n, a).ns(),
              transport::TcpConnection::backoff_rto(t, n, b).ns());
  }
}

}  // namespace
}  // namespace mrmtp

// ---------------------------------------------------------------------------
// Fabric-level incast under finite buffers.

namespace mrmtp::harness {
namespace {

/// Shallow-buffered switches on a 16-host fabric with 100 Mb/s edges: an
/// 8:1 incast reliably drives the victim ToR's pool into ECN marking and
/// PFC backpressure within the launch window.
WorkloadRunSpec incast_campaign() {
  WorkloadRunSpec spec;
  spec.topo = {8, 2, 2, 4, 1};
  spec.proto = Proto::kMtp;
  spec.seed = 11;
  spec.options.host_link.bandwidth_bps = 100'000'000ull;
  spec.options.host_link.max_queue = sim::Duration::millis(50);

  net::SwitchBufferParams buf;
  buf.pool_bytes = 64u << 10;
  buf.port_reserve_bytes = 4u << 10;
  buf.dt_alpha = 1.0;
  buf.ecn_data_threshold = 8u << 10;
  buf.pfc_xoff_bytes = 8u << 10;
  buf.pfc_xon_bytes = 4u << 10;
  spec.options.switch_buffer = buf;

  spec.workload.scenario = traffic::Scenario::kIncast;
  spec.workload.incast_fanin = 8;
  spec.workload.load = 1.0;
  spec.workload.size_scale = 0.05;
  spec.workload.payload_size = 1000;
  spec.workload.ecn_response = true;
  spec.launch_window = sim::Duration::millis(400);
  spec.drain = sim::Duration::seconds(2);
  return spec;
}

// The tentpole invariants in one run: the pool is byte-bounded (occupancy
// high-water never exceeds the configured bytes), congestion engages the
// designed relief valves (CE marks, PAUSE frames, sender pause-blocking)
// instead of unbounded queueing, the control band loses nothing, and the
// auditor's pause-wait-cycle scan over the valley-free fabric finds no PFC
// deadlock.
TEST(BufferedIncastTest, BoundedOccupancyBackpressureNoDeadlock) {
  WorkloadRunSpec spec = incast_campaign();
  spec.audit = true;
  WorkloadRunResult r = run_workload(spec);

  ASSERT_TRUE(r.initial_converged);
  ASSERT_GT(r.flows.flows_started, 0u);
  EXPECT_EQ(r.flows.flows_delivered, r.flows.flows_started);

  // Byte-accurate bound: high-water occupancy within the configured pool.
  EXPECT_GT(r.occupancy_hw_ratio, 0.0);
  EXPECT_LE(r.occupancy_hw_ratio, 1.0);

  // The relief valves engaged: CE marks on data, PAUSE frames on the wire,
  // senders actually blocked behind them, and sinks echoed marks back.
  EXPECT_GT(r.ecn_marked, 0u);
  EXPECT_GT(r.pause_tx, 0u);
  EXPECT_EQ(r.pause_tx, r.pause_rx);  // every PFC frame reached its peer
  EXPECT_GT(r.flows.ecn_marked, 0u);
  EXPECT_GT(r.flows.ecn_echoes, 0u);
  EXPECT_GT(r.flows.pause_blocked_ns, 0u);

  // Graceful degradation: the control band is never charged to the pool,
  // so adjacencies survive data congestion without a single drop.
  EXPECT_EQ(r.ctrl_queue_drops, 0u);

  // Valley-free routing keeps the pause-wait graph acyclic.
  EXPECT_EQ(r.pfc_deadlocks, 0u);
  EXPECT_EQ(r.audit_violations, 0u);
}

// Commodity tail-drop configuration (alpha <= 0, PFC off, open-loop
// senders): congestion collapse is allowed to fill some pool to ~100% and
// drop, yet the control band still loses nothing — the containment claim.
TEST(BufferedIncastTest, TailDropFillsPoolButControlBandIsLossless) {
  WorkloadRunSpec spec = incast_campaign();
  spec.options.switch_buffer->dt_alpha = 0.0;
  spec.options.switch_buffer->ecn_data_threshold = 0;
  spec.options.switch_buffer->pfc_xoff_bytes = 0;
  spec.workload.ecn_response = false;
  WorkloadRunResult r = run_workload(spec);

  ASSERT_TRUE(r.initial_converged);
  // Filled to within one max-size frame of the 64 KiB pool.
  EXPECT_GT(r.occupancy_hw_ratio, 0.95);
  EXPECT_GT(r.buffer_drops, 0u);          // and refused admissions
  EXPECT_EQ(r.ecn_marked, 0u);
  EXPECT_EQ(r.pause_tx, 0u);
  EXPECT_EQ(r.ctrl_queue_drops, 0u);  // fabric control plane unharmed
}

// Seeded kBufferSqueeze chaos on top of the incast: pools shrink to a
// quarter mid-campaign and heal, and the fabric still delivers every flow
// start without a PFC deadlock or auditor violation.
TEST(BufferedIncastTest, SurvivesSeededBufferSqueezeCampaign) {
  WorkloadRunSpec spec = incast_campaign();
  spec.audit = true;
  spec.chaos_squeezes = 3;
  spec.squeeze_frac = 0.25;
  WorkloadRunResult r = run_workload(spec);

  ASSERT_TRUE(r.initial_converged);
  ASSERT_GT(r.flows.flows_started, 0u);
  EXPECT_EQ(r.flows.flows_delivered, r.flows.flows_started);
  EXPECT_EQ(r.pfc_deadlocks, 0u);
  EXPECT_EQ(r.ctrl_queue_drops, 0u);
}

// The determinism contract survives the whole congestion subsystem: ECN
// marking, CNP echoes, PFC pause/resume, and pause-blocked sender pacing
// are all simulated-time constructs, so the same seed produces an
// identical FlowStats table — every counter, every quantile, including the
// new ecn/pause telemetry — at 1 shard and at 4.
TEST(BufferedIncastTest, FlowStatsIdenticalAcrossShardCountsWithEcn) {
  WorkloadRunSpec spec = incast_campaign();
  spec.force_parallel_engine = true;
  spec.threads = 1;
  WorkloadRunResult one = run_workload(spec);
  spec.threads = 4;
  WorkloadRunResult four = run_workload(spec);

  ASSERT_TRUE(one.initial_converged);
  ASSERT_TRUE(four.initial_converged);
  EXPECT_GE(four.threads_used, 2u);
  ASSERT_GT(one.flows.flows_started, 0u);
  EXPECT_GT(one.flows.ecn_marked, 0u);  // the congestion path actually ran
  EXPECT_EQ(one.flows, four.flows);
  EXPECT_EQ(one.ecn_marked, four.ecn_marked);
  EXPECT_EQ(one.pause_tx, four.pause_tx);
  EXPECT_EQ(one.buffer_drops, four.buffer_drops);
}

}  // namespace
}  // namespace mrmtp::harness
