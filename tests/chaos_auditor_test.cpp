// ChaosEngine + FabricAuditor: gray failures are injected per direction,
// the auditor stays silent on healthy fabrics, flags hand-crafted stale
// state, and the detection-latency metric orders the three stacks the way
// their timer designs predict.
#include <gtest/gtest.h>

#include "harness/auditor.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "topo/chaos.hpp"

namespace mrmtp {
namespace {

using harness::Deployment;
using harness::FabricAuditor;
using harness::InvariantKind;
using harness::Proto;

constexpr auto kSettle = sim::Duration::seconds(3);

struct Converged {
  net::SimContext ctx;
  topo::ClosBlueprint bp;
  Deployment dep;

  explicit Converged(Proto proto, std::uint64_t seed = 1)
      : ctx(seed), bp(topo::ClosParams::paper_2pod()), dep(ctx, bp, proto) {
    dep.start();
    ctx.sched.run_until(sim::Time::zero() + kSettle);
  }
};

TEST(FabricAuditor, CleanOnConvergedMtp) {
  Converged f(Proto::kMtp);
  ASSERT_TRUE(f.dep.converged());
  FabricAuditor auditor(f.dep);
  EXPECT_EQ(auditor.sweep(), 0u);
  EXPECT_TRUE(auditor.violations().empty());
  EXPECT_EQ(auditor.sweeps(), 1u);
}

TEST(FabricAuditor, CleanOnConvergedBgp) {
  for (Proto proto : {Proto::kBgp, Proto::kBgpBfd}) {
    Converged f(proto);
    ASSERT_TRUE(f.dep.converged());
    FabricAuditor auditor(f.dep);
    EXPECT_EQ(auditor.sweep(), 0u) << to_string(proto);
  }
}

TEST(FabricAuditor, FlagsHandCraftedStaleVidEntry) {
  Converged f(Proto::kMtp);
  ASSERT_TRUE(f.dep.converged());

  // Admin-down the spine side of L-1-1 <-> S-1-1 (TC2), let the withdraws
  // settle, then plant an entry pointing at the dead port — exactly the
  // stale state a lost withdraw would leave behind.
  topo::FailurePoint fp = f.bp.failure_point(topo::TestCase::kTC2);
  std::uint32_t spine = f.bp.device_index(fp.device);
  f.dep.router(spine).set_interface_down(fp.port);
  f.ctx.sched.run_until(f.ctx.now() + sim::Duration::seconds(1));

  FabricAuditor auditor(f.dep);
  ASSERT_EQ(auditor.sweep(), 0u) << "clean failure must fully converge";

  f.dep.mtp(spine).debug_add_vid_entry(mtp::Vid::parse("77.9"), fp.port);
  ASSERT_EQ(auditor.sweep(), 1u);
  const harness::Violation& v = auditor.violations().back();
  EXPECT_EQ(v.kind, InvariantKind::kStaleVidEntry);
  EXPECT_EQ(v.device, fp.device);
  EXPECT_NE(v.detail.find("77.9"), std::string::npos) << v.str();
}

TEST(FabricAuditor, FlagsStaleBgpNextHop) {
  Converged f(Proto::kBgp);
  ASSERT_TRUE(f.dep.converged());

  topo::FailurePoint fp = f.bp.failure_point(topo::TestCase::kTC2);
  std::uint32_t spine = f.bp.device_index(fp.device);
  f.dep.router(spine).set_interface_down(fp.port);

  FabricAuditor auditor(f.dep);
  // Mid-convergence the auditor rightly sees blackholes: the leaf keeps
  // ECMP-ing into the dead link until its 3 s hold timer fires.
  f.ctx.sched.run_until(f.ctx.now() + sim::Duration::seconds(1));
  EXPECT_GT(auditor.sweep(), 0u);
  // Past the hold timer the fabric must be clean again.
  f.ctx.sched.run_until(f.ctx.now() + sim::Duration::seconds(3));
  ASSERT_EQ(auditor.sweep(), 0u);

  // A BGP route whose only next-hop egresses the dead interface.
  f.dep.bgp(spine).routes().set(
      ip::Ipv4Prefix::parse("10.99.0.0/24"), ip::RouteProto::kBgp,
      {ip::NextHop{ip::Ipv4Addr::parse("10.99.0.1"), fp.port}});
  ASSERT_EQ(auditor.sweep(), 1u);
  EXPECT_EQ(auditor.violations().back().kind, InvariantKind::kStaleNextHop);
}

TEST(ChaosEngine, BlackholeIsUnidirectional) {
  Converged f(Proto::kMtp);
  ASSERT_TRUE(f.dep.converged());

  topo::ChaosEngine chaos(f.dep.network(), f.bp, /*seed=*/7);
  topo::FailurePoint fp = f.bp.failure_point(topo::TestCase::kTC1);
  chaos.blackhole_one_way(fp, /*toward_device=*/true, f.ctx.now());
  f.ctx.sched.run_until(f.ctx.now() + sim::Duration::seconds(1));

  net::Link& link = chaos.link_of(fp);
  net::Link::Dir in = chaos.dir_of(fp, /*toward_device=*/true);
  net::Link::Dir out = net::Link::reverse(in);
  EXPECT_GT(link.stats().dir(in).dropped_blackhole, 0u);
  EXPECT_EQ(link.stats().dir(out).dropped_blackhole, 0u);
  // The healthy direction keeps delivering (that is what makes it gray).
  std::uint64_t out_delivered = link.stats().dir(out).delivered;
  EXPECT_GT(out_delivered, 0u);

  // The per-direction report surfaces the asymmetry.
  harness::Table table = harness::link_direction_table(f.dep.network());
  EXPECT_NE(table.csv().find(fp.device), std::string::npos);

  // heal() restores both directions.
  chaos.heal(fp, f.ctx.now());
  f.ctx.sched.run_until(f.ctx.now() + sim::Duration::millis(1));
  EXPECT_TRUE(link.deliverable(in));
  EXPECT_TRUE(link.deliverable(out));
}

TEST(ChaosEngine, CampaignIsDeterministicPerSeed) {
  Converged f(Proto::kMtp);
  topo::ChaosEngine a(f.dep.network(), f.bp, 42);
  topo::ChaosEngine b(f.dep.network(), f.bp, 42);
  topo::ChaosEngine c(f.dep.network(), f.bp, 43);

  topo::ChaosEngine::CampaignSpec spec;
  spec.events = 12;
  spec.start = f.ctx.now();
  a.run_campaign(spec);
  b.run_campaign(spec);
  c.run_campaign(spec);

  ASSERT_EQ(a.log().size(), b.log().size());
  bool all_same_as_c = a.log().size() == c.log().size();
  for (std::size_t i = 0; i < a.log().size(); ++i) {
    EXPECT_EQ(a.log()[i].at, b.log()[i].at);
    EXPECT_EQ(a.log()[i].kind, b.log()[i].kind);
    EXPECT_EQ(a.log()[i].description, b.log()[i].description);
    if (all_same_as_c && (a.log()[i].kind != c.log()[i].kind ||
                          a.log()[i].description != c.log()[i].description)) {
      all_same_as_c = false;
    }
  }
  EXPECT_FALSE(all_same_as_c) << "different seeds should differ";
  EXPECT_TRUE(a.first_onset().has_value());
}

TEST(ChaosEngine, RampReachesTargetLoss) {
  Converged f(Proto::kMtp);
  topo::ChaosEngine chaos(f.dep.network(), f.bp, 7);
  topo::FailurePoint fp = f.bp.failure_point(topo::TestCase::kTC3);
  net::Link& link = chaos.link_of(fp);
  net::Link::Dir dir = chaos.dir_of(fp, /*toward_device=*/true);

  chaos.degradation_ramp(fp, /*toward_device=*/true, 1.0, f.ctx.now(),
                         sim::Duration::millis(500));
  f.ctx.sched.run_until(f.ctx.now() + sim::Duration::millis(250));
  double halfway = link.effective_loss(dir);
  EXPECT_GT(halfway, 0.2);
  EXPECT_LT(halfway, 0.8);
  f.ctx.sched.run_until(f.ctx.now() + sim::Duration::millis(300));
  EXPECT_DOUBLE_EQ(link.effective_loss(dir), 1.0);
  EXPECT_FALSE(link.deliverable(dir));
  EXPECT_TRUE(link.deliverable(net::Link::reverse(dir)));
}

// The headline acceptance metric: MR-MTP must notice a unidirectional
// blackhole within its dead interval (2 x 50 ms hello); BFD within ~300 ms;
// plain BGP only at its 3 s hold timer.
TEST(GrayDetection, MtpWithinDeadInterval) {
  harness::ExperimentSpec spec;
  spec.proto = Proto::kMtp;
  spec.gray.kind = harness::ExperimentSpec::GraySpec::Kind::kUnidirBlackhole;
  spec.with_traffic = false;
  spec.post_failure = sim::Duration::seconds(1);
  harness::ExperimentResult r = harness::run_failure_experiment(spec);
  ASSERT_TRUE(r.initial_converged);
  ASSERT_TRUE(r.failure_detected);
  EXPECT_LE(r.detection_latency.ns(), sim::Duration::millis(100).ns());
}

TEST(GrayDetection, StackOrderingUnderBlackhole) {
  auto detect = [](Proto proto) {
    harness::ExperimentSpec spec;
    spec.proto = proto;
    spec.gray.kind =
        harness::ExperimentSpec::GraySpec::Kind::kUnidirBlackhole;
    spec.with_traffic = false;
    spec.post_failure = sim::Duration::seconds(5);
    harness::ExperimentResult r = harness::run_failure_experiment(spec);
    EXPECT_TRUE(r.failure_detected) << to_string(proto);
    return r.detection_latency;
  };
  sim::Duration mtp = detect(Proto::kMtp);
  sim::Duration bfd = detect(Proto::kBgpBfd);
  sim::Duration bgp = detect(Proto::kBgp);
  EXPECT_LT(mtp.ns(), bfd.ns());
  EXPECT_LT(bfd.ns(), bgp.ns());
  EXPECT_LE(bfd.ns(), sim::Duration::millis(500).ns());
  EXPECT_GE(bgp.ns(), sim::Duration::seconds(1).ns());
}

// Regression for the FailureInjector lifetime bugs: recovery before failure
// must throw instead of dereferencing an empty optional, and a second
// scheduled failure must not clobber the first one's capture.
TEST(FailureInjector, RecoveryBeforeFailureThrows) {
  net::SimContext ctx(1);
  topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
  Deployment dep(ctx, bp, Proto::kMtp);
  topo::FailureInjector injector(dep.network(), bp);
  EXPECT_THROW(injector.schedule_recovery(sim::Time::zero()),
               std::logic_error);
}

TEST(FailureInjector, SecondFailureDoesNotClobberFirst) {
  net::SimContext ctx(1);
  topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
  Deployment dep(ctx, bp, Proto::kMtp);
  dep.start();

  topo::FailureInjector injector(dep.network(), bp);
  injector.schedule_failure(topo::TestCase::kTC1,
                            sim::Time::zero() + sim::Duration::seconds(1));
  topo::FailurePoint first = *injector.point();
  injector.schedule_failure(topo::TestCase::kTC3,
                            sim::Time::zero() + sim::Duration::seconds(2));
  topo::FailurePoint second = *injector.point();
  ASSERT_NE(first.device, second.device);

  ctx.sched.run_until(sim::Time::zero() + sim::Duration::seconds(3));
  // Both interfaces must be down — before the fix the first callback
  // captured `point_` by pointer and failed the *second* point twice.
  EXPECT_FALSE(dep.network()
                   .find(first.device)
                   .port(first.port)
                   .admin_up());
  EXPECT_FALSE(dep.network()
                   .find(second.device)
                   .port(second.port)
                   .admin_up());
}

}  // namespace
}  // namespace mrmtp
