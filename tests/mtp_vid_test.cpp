// Unit tests: VID semantics, the VID table, and the exclusion table —
// including parameterized parse/format round-trip sweeps.
#include <gtest/gtest.h>

#include "mtp/vid.hpp"
#include "mtp/vid_table.hpp"
#include "sim/random.hpp"

namespace mrmtp::mtp {
namespace {

TEST(VidTest, RootAndChildDerivation) {
  Vid tor(11);
  EXPECT_EQ(tor.depth(), 1u);
  EXPECT_EQ(tor.root(), 11);
  EXPECT_EQ(tor.str(), "11");

  // Paper Fig. 2: ToR 11 port 1 -> 11.1; S1_1 port 2 -> 11.1.2.
  Vid spine = tor.child(1);
  EXPECT_EQ(spine.str(), "11.1");
  Vid top = spine.child(2);
  EXPECT_EQ(top.str(), "11.1.2");
  EXPECT_EQ(top.root(), 11);
  EXPECT_EQ(top.depth(), 3u);
}

TEST(VidTest, ParentInvertsChild) {
  Vid v = Vid::parse("11.1.2");
  EXPECT_EQ(v.parent().str(), "11.1");
  EXPECT_EQ(v.parent().parent().str(), "11");
  EXPECT_TRUE(v.parent().parent().parent().empty());
}

TEST(VidTest, PrefixEncodesAncestry) {
  Vid root = Vid::parse("11");
  Vid mid = Vid::parse("11.1");
  Vid leaf = Vid::parse("11.1.2");
  EXPECT_TRUE(root.is_prefix_of(leaf));
  EXPECT_TRUE(mid.is_prefix_of(leaf));
  EXPECT_TRUE(leaf.is_prefix_of(leaf));
  EXPECT_FALSE(leaf.is_prefix_of(mid));
  EXPECT_FALSE(Vid::parse("11.2").is_prefix_of(leaf));
  EXPECT_FALSE(Vid::parse("12").is_prefix_of(leaf));
}

TEST(VidTest, ParseRejectsMalformed) {
  EXPECT_THROW(Vid::parse(""), util::CodecError);
  EXPECT_THROW(Vid::parse("11..2"), util::CodecError);
  EXPECT_THROW(Vid::parse("11.x"), util::CodecError);
  EXPECT_THROW(Vid::parse("70000"), util::CodecError);
}

TEST(VidTest, Ordering) {
  EXPECT_LT(Vid::parse("11"), Vid::parse("11.1"));
  EXPECT_LT(Vid::parse("11.1"), Vid::parse("11.2"));
  EXPECT_LT(Vid::parse("11.9"), Vid::parse("12"));
  EXPECT_EQ(Vid::parse("11.1"), Vid(11).child(1));
}

TEST(VidTest, HashDistinguishesSiblings) {
  std::hash<Vid> h;
  EXPECT_NE(h(Vid::parse("11.1")), h(Vid::parse("11.2")));
  EXPECT_NE(h(Vid::parse("11.1")), h(Vid::parse("11.1.1")));
}

TEST(VidTest, SerializeRoundTrip) {
  Vid v = Vid::parse("11.1.2");
  util::BufWriter w;
  v.serialize(w);
  EXPECT_EQ(w.size(), v.wire_size());
  auto buf = w.take();
  util::BufReader r(buf);
  EXPECT_EQ(Vid::deserialize(r), v);
}

/// Parameterized property: random VIDs round-trip through both the text and
/// the wire representation.
class VidRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VidRoundTrip, TextAndWire) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint16_t> labels;
    auto depth = static_cast<std::size_t>(rng.range(1, 8));
    for (std::size_t d = 0; d < depth; ++d) {
      labels.push_back(static_cast<std::uint16_t>(rng.below(65536)));
    }
    Vid v(labels);
    EXPECT_EQ(Vid::parse(v.str()), v);

    util::BufWriter w;
    v.serialize(w);
    auto buf = w.take();
    util::BufReader r(buf);
    EXPECT_EQ(Vid::deserialize(r), v);
    EXPECT_TRUE(r.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VidRoundTrip, ::testing::Values(1, 2, 3, 4));

TEST(VidTableTest, AddIsIdempotent) {
  VidTable t;
  EXPECT_TRUE(t.add(Vid::parse("11.1"), 3));
  EXPECT_FALSE(t.add(Vid::parse("11.1"), 4));  // duplicate VID ignored
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.find(Vid::parse("11.1"))->port, 3u);
}

TEST(VidTableTest, RootQueries) {
  VidTable t;
  t.add(Vid::parse("11.1"), 3);
  t.add(Vid::parse("12.1"), 4);
  EXPECT_TRUE(t.has_root(11));
  EXPECT_FALSE(t.has_root(13));
  auto entries = t.entries_for_root(12);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].port, 4u);
}

TEST(VidTableTest, RemovePortPrunesBranch) {
  VidTable t;
  t.add(Vid::parse("11.1"), 3);
  t.add(Vid::parse("12.1"), 3);
  t.add(Vid::parse("13.2"), 4);
  auto removed = t.remove_port(3);
  EXPECT_EQ(removed.size(), 2u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_FALSE(t.has_root(11));
  EXPECT_TRUE(t.has_root(13));
  EXPECT_TRUE(t.remove_port(3).empty());
}

TEST(VidTableTest, DumpMatchesListing5Format) {
  VidTable t;
  // Paper Listing 5: a 4-PoD top spine, VIDs grouped per interface.
  t.add(Vid::parse("37.1.1"), 2);
  t.add(Vid::parse("38.1.1"), 2);
  t.add(Vid::parse("39.1.1"), 4);
  t.add(Vid::parse("40.1.1"), 4);
  std::string dump = t.dump();
  EXPECT_NE(dump.find("eth2\t37.1.1, 38.1.1"), std::string::npos);
  EXPECT_NE(dump.find("eth4\t39.1.1, 40.1.1"), std::string::npos);
}

TEST(VidTableTest, MemoryGrowsWithDepthAndCount) {
  VidTable shallow;
  shallow.add(Vid::parse("11.1"), 1);
  VidTable deep;
  deep.add(Vid::parse("11.1.2.3.4.5"), 1);
  EXPECT_GT(deep.memory_bytes(), shallow.memory_bytes());
}

TEST(ExclusionTableTest, ExcludeAndClear) {
  ExclusionTable e;
  EXPECT_TRUE(e.exclude(11, 2));
  EXPECT_FALSE(e.exclude(11, 2));  // already present
  EXPECT_TRUE(e.is_excluded(11, 2));
  EXPECT_FALSE(e.is_excluded(11, 3));
  EXPECT_FALSE(e.is_excluded(12, 2));
  EXPECT_TRUE(e.clear(11, 2));
  EXPECT_FALSE(e.clear(11, 2));
  EXPECT_EQ(e.size(), 0u);
}

TEST(ExclusionTableTest, ClearPortDropsAllRoots) {
  ExclusionTable e;
  e.exclude(11, 2);
  e.exclude(12, 2);
  e.exclude(12, 3);
  e.clear_port(2);
  EXPECT_FALSE(e.is_excluded(11, 2));
  EXPECT_FALSE(e.is_excluded(12, 2));
  EXPECT_TRUE(e.is_excluded(12, 3));
  EXPECT_EQ(e.size(), 1u);
}

TEST(ExclusionTableTest, DumpListsPorts) {
  ExclusionTable e;
  e.exclude(11, 2);
  e.exclude(11, 4);
  std::string dump = e.dump();
  EXPECT_NE(dump.find("dest 11 avoid: eth2 eth4"), std::string::npos);
}

}  // namespace
}  // namespace mrmtp::mtp
