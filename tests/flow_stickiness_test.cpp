// Flow-stickiness regression tests for the rendezvous-hash path selection:
// when one member of an ECMP/uplink group dies, only the flows that member
// was carrying may move — every other flow must keep its path. The old
// `hash % n` pick remapped (n-1)/n of all flows on any membership change,
// which reordered nearly every TCP stream in the fabric on a single uplink
// failure.
#include <gtest/gtest.h>

#include <map>

#include "harness/deploy.hpp"
#include "harness/report.hpp"
#include "ip/route_table.hpp"

namespace mrmtp {
namespace {

using harness::Deployment;
using harness::Proto;

TEST(HrwRouteTableTest, MemberLossRemapsOnlyItsFlows) {
  ip::RouteTable table;
  const auto pfx = ip::Ipv4Prefix::parse("192.168.14.0/24");
  const auto dst = ip::Ipv4Addr::parse("192.168.14.1");
  std::vector<ip::NextHop> group{{ip::Ipv4Addr::parse("172.16.0.1"), 1},
                                 {ip::Ipv4Addr::parse("172.16.1.1"), 2},
                                 {ip::Ipv4Addr::parse("172.16.2.1"), 3},
                                 {ip::Ipv4Addr::parse("172.16.3.1"), 4}};
  table.set(pfx, ip::RouteProto::kBgp, group);

  constexpr std::uint64_t kFlows = 4096;
  std::vector<std::uint32_t> before(kFlows);
  for (std::uint64_t f = 0; f < kFlows; ++f) {
    before[f] = table.select(dst, f * 0x9e3779b9u + 7)->port;
  }

  // Kill member 3 (port 3): re-install the route without it.
  std::vector<ip::NextHop> survivors{group[0], group[1], group[3]};
  table.set(pfx, ip::RouteProto::kBgp, survivors);

  std::uint64_t moved = 0;
  std::uint64_t orphaned = 0;
  for (std::uint64_t f = 0; f < kFlows; ++f) {
    std::uint32_t after = table.select(dst, f * 0x9e3779b9u + 7)->port;
    if (before[f] == 3) {
      ++orphaned;
      EXPECT_NE(after, 3u);
    } else if (after != before[f]) {
      ++moved;
    }
  }
  // The dead member carried roughly a quarter of the flows, and nothing else
  // moved — the property `hash % n` cannot provide.
  EXPECT_EQ(moved, 0u);
  EXPECT_GT(orphaned, kFlows / 8);
  EXPECT_LT(orphaned, kFlows / 2);
}

TEST(HrwRouteTableTest, MemberReturnReclaimsOnlyItsFlows) {
  ip::RouteTable table;
  const auto pfx = ip::Ipv4Prefix::parse("10.0.0.0/8");
  const auto dst = ip::Ipv4Addr::parse("10.1.2.3");
  std::vector<ip::NextHop> survivors{{ip::Ipv4Addr::parse("172.16.0.1"), 1},
                                     {ip::Ipv4Addr::parse("172.16.1.1"), 2}};
  table.set(pfx, ip::RouteProto::kBgp, survivors);

  constexpr std::uint64_t kFlows = 2048;
  std::vector<std::uint32_t> before(kFlows);
  for (std::uint64_t f = 0; f < kFlows; ++f) {
    before[f] = table.select(dst, f * 1315423911u)->port;
  }

  // The third member comes (back) up.
  std::vector<ip::NextHop> full = survivors;
  full.push_back({ip::Ipv4Addr::parse("172.16.2.1"), 3});
  table.set(pfx, ip::RouteProto::kBgp, full);

  std::uint64_t claimed = 0;
  for (std::uint64_t f = 0; f < kFlows; ++f) {
    std::uint32_t after = table.select(dst, f * 1315423911u)->port;
    if (after == 3) {
      ++claimed;
    } else {
      // Flows the newcomer did not claim must not have moved at all.
      EXPECT_EQ(after, before[f]);
    }
  }
  EXPECT_GT(claimed, kFlows / 8);
  EXPECT_LT(claimed, kFlows / 2);
}

/// Maps each of `flows` source ports to the ToR uplink it rides, by sending
/// each flow's probes alone and diffing L-1-1's per-uplink tx counters.
std::map<std::uint16_t, std::uint32_t> map_flows_to_uplinks(
    net::SimContext& ctx, Deployment& dep, const topo::ClosBlueprint& bp,
    const std::vector<std::uint16_t>& flows, net::TrafficClass tc) {
  auto& sender = dep.host(0);
  auto last = static_cast<std::uint32_t>(dep.host_count() - 1);
  auto& receiver = dep.host(last);
  net::Node& tor = dep.router(bp.leaf(1, 1));
  const std::uint32_t uplinks = bp.params().spines_per_pod;

  std::map<std::uint16_t, std::uint32_t> mapping;
  for (std::uint16_t src_port : flows) {
    std::vector<std::uint64_t> snap(uplinks + 1);
    for (std::uint32_t p = 1; p <= uplinks; ++p) {
      snap[p] = tor.port(p).tx_stats().of(tc).frames;
    }
    constexpr int kProbes = 3;
    for (int i = 0; i < kProbes; ++i) {
      traffic::ProbePacket probe;
      probe.seq = static_cast<std::uint64_t>(src_port) * 100 +
                  static_cast<std::uint64_t>(i);
      sender.send_udp(sender.addr(), receiver.addr(), src_port, 7001,
                      probe.serialize(64), net::TrafficClass::kIpData);
    }
    ctx.sched.run_until(ctx.now() + sim::Duration::millis(20));
    for (std::uint32_t p = 1; p <= uplinks; ++p) {
      std::uint64_t delta = tor.port(p).tx_stats().of(tc).frames - snap[p];
      if (delta == 0) continue;
      EXPECT_EQ(delta, static_cast<std::uint64_t>(kProbes))
          << "flow " << src_port << " split across uplinks";
      EXPECT_FALSE(mapping.contains(src_port));
      mapping[src_port] = p;
    }
    EXPECT_TRUE(mapping.contains(src_port)) << "flow " << src_port
                                            << " left no uplink trace";
  }
  return mapping;
}

class FabricStickinessTest : public ::testing::TestWithParam<Proto> {};

TEST_P(FabricStickinessTest, UplinkFailureRemapsOnlyItsFlows) {
  const Proto proto = GetParam();
  topo::ClosParams params = topo::ClosParams::paper_2pod();
  params.spines_per_pod = 4;
  params.top_spines = 8;

  net::SimContext ctx(17);
  topo::ClosBlueprint bp(params);
  Deployment dep(ctx, bp, proto, {});
  dep.host(static_cast<std::uint32_t>(dep.host_count() - 1)).listen();
  dep.start();
  ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(5).ns()));
  ASSERT_TRUE(dep.converged());

  std::vector<std::uint16_t> flows;
  for (std::uint16_t f = 0; f < 48; ++f) {
    flows.push_back(static_cast<std::uint16_t>(9000 + f));
  }
  const auto tc = proto == Proto::kMtp ? net::TrafficClass::kMtpData
                                       : net::TrafficClass::kIpData;
  auto before = map_flows_to_uplinks(ctx, dep, bp, flows, tc);

  // Pick a loaded uplink and fail it at the ToR side; wait out detection and
  // reconvergence (BGP needs its 3 s hold timer without BFD).
  std::uint32_t dead = before.begin()->second;
  dep.router(bp.leaf(1, 1)).set_interface_down(dead);
  ctx.sched.run_until(ctx.now() + sim::Duration::seconds(4));

  auto after = map_flows_to_uplinks(ctx, dep, bp, flows, tc);

  std::uint64_t moved = 0;
  std::uint64_t orphaned = 0;
  for (std::uint16_t f : flows) {
    ASSERT_TRUE(before.contains(f) && after.contains(f));
    EXPECT_NE(after[f], dead) << "flow " << f << " still on the dead uplink";
    if (before[f] == dead) {
      ++orphaned;
    } else if (after[f] != before[f]) {
      ++moved;
    }
  }
  EXPECT_EQ(moved, 0u) << "flows not on the failed uplink were remapped";
  EXPECT_GT(orphaned, 0u);

  // The hot-path report stays renderable after a failure (smoke check).
  std::string report = harness::hot_path_table(dep).str();
  EXPECT_NE(report.find("[scheduler]"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Protocols, FabricStickinessTest,
                         ::testing::Values(Proto::kMtp, Proto::kBgp),
                         [](const auto& param_info) {
                           return param_info.param == Proto::kMtp
                                      ? std::string("Mtp")
                                      : std::string("Bgp");
                         });

}  // namespace
}  // namespace mrmtp
