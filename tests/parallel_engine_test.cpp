// Parallel fabric engine: ShardBus/ShardedEngine unit behavior, and the
// determinism contract — an N-shard run must reproduce the 1-shard sharded
// run counter-for-counter (per-link Link::Stats, per-router VID tables,
// traffic outcomes, FabricAuditor verdicts) on a chaotic 8-PoD fabric under
// both MR-MTP and BGP/ECMP/BFD.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "harness/auditor.hpp"
#include "harness/deploy.hpp"
#include "harness/experiment.hpp"
#include "sim/parallel.hpp"
#include "sim/scheduler.hpp"
#include "topo/chaos.hpp"
#include "topo/failure.hpp"
#include "traffic/host.hpp"

namespace mrmtp {
namespace {

using sim::Duration;
using sim::Time;

TEST(ShardBus, DrainsInTimeOrderKeyOrder) {
  sim::ShardBus bus(3);
  std::vector<int> order;
  const Time t1 = Time::from_ns(100);
  const Time t2 = Time::from_ns(200);
  // Same timestamp from two sources, posted in "wrong" wall-clock order: the
  // drain must honor (at, order key), never post order or source shard. Note
  // the key that contradicts source order — src 2 carries a LOWER key than
  // src 1 at the same instant.
  bus.post(1, 0, t2, /*order=*/10, [&] { order.push_back(4); });
  bus.post(1, 0, t1, /*order=*/30, [&] { order.push_back(2); });
  bus.post(2, 0, t1, /*order=*/20, [&] { order.push_back(1); });
  bus.post(2, 0, t1, /*order=*/40, [&] { order.push_back(3); });

  sim::Scheduler sched;
  EXPECT_EQ(bus.drain(0, sched), 4u);
  sched.run_until(t2);
  // (t1, key 20) before (t1, key 30) before (t1, key 40), then t2.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(bus.posted(), 4u);
  EXPECT_EQ(bus.cross_posted(), 4u);
}

TEST(ShardBus, PostBelowSafeFloorThrows) {
  sim::ShardBus bus(2);
  bus.set_safe_floor(Time::from_ns(1000));
  EXPECT_THROW(bus.post(0, 1, Time::from_ns(999), 0, [] {}),
               std::logic_error);
  EXPECT_NO_THROW(bus.post(0, 1, Time::from_ns(1000), 0, [] {}));
}

TEST(ShardedEngine, SingleShardRunsInline) {
  sim::Scheduler sched;
  int fired = 0;
  sched.schedule_at(Time::from_ns(50), [&] { ++fired; });
  sim::ShardedEngine engine({&sched}, {});
  engine.run_until(Time::from_ns(100));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), Time::from_ns(100));
}

TEST(ShardedEngine, CrossShardPingPongRespectsLookahead) {
  sim::Scheduler a;
  sim::Scheduler b;
  sim::ShardedEngine engine({&a, &b},
                            {.lookahead = Duration::micros(5)});
  std::vector<std::pair<int, std::int64_t>> log;  // (shard, fired at ns)

  // a -> b -> a -> ... each hop one lookahead later, like frames bouncing
  // across a cross-shard link.
  std::function<void(int, Time)> hop = [&](int on, Time at) {
    log.emplace_back(on, at.ns());
    if (log.size() >= 6) return;
    int next = 1 - on;
    Time when = at + Duration::micros(5);
    engine.bus().post(static_cast<std::uint32_t>(on),
                      static_cast<std::uint32_t>(next), when,
                      /*order=*/log.size(),
                      [&, next, when] { hop(next, when); });
  };
  a.schedule_at(Time::from_ns(0), [&] { hop(0, Time::from_ns(0)); });

  engine.run_until(Time::zero() + Duration::micros(100));
  ASSERT_EQ(log.size(), 6u);
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].first, static_cast<int>(i % 2));
    EXPECT_EQ(log[i].second, static_cast<std::int64_t>(i) * 5000);
  }
  EXPECT_GT(engine.stats().windows, 0u);
  EXPECT_EQ(engine.stats().cross_events, 5u);
  EXPECT_EQ(a.now(), Time::zero() + Duration::micros(100));
  EXPECT_EQ(b.now(), Time::zero() + Duration::micros(100));
}

TEST(ShardedEngine, RepeatedRunUntilResumes) {
  sim::Scheduler a;
  sim::Scheduler b;
  sim::ShardedEngine engine({&a, &b}, {});
  int fired = 0;
  a.schedule_at(Time::from_ns(10), [&] { ++fired; });
  b.schedule_at(Time::from_ns(2000), [&] { ++fired; });
  engine.run_until(Time::from_ns(1000));
  EXPECT_EQ(fired, 1);
  engine.run_until(Time::from_ns(3000));
  EXPECT_EQ(fired, 2);
}

TEST(ShardPlan, PodAffineAndClamped) {
  topo::ClosBlueprint bp(topo::ClosParams{8, 2, 2, 4, 1});
  topo::ShardPlan plan = topo::make_shard_plan(bp, 64);
  EXPECT_EQ(plan.shards, 8u);  // clamped to the PoD count
  for (std::uint32_t d = 0; d < bp.devices().size(); ++d) {
    const auto& spec = bp.device(d);
    if (spec.pod == 0) continue;  // top spines round-robin
    // Every device of one PoD shares a shard.
    EXPECT_EQ(plan.shard_of(d),
              plan.shard_of(bp.leaf(spec.pod, 1)))
        << spec.name;
  }
}

// On an asymmetric fabric the planner must balance by device weight, not
// PoD count: pods with 3 ToRs weigh more than pods with 1. Pod affinity
// still holds, and the heaviest shard can exceed the lightest by at most
// one pod's weight (the greedy bound).
TEST(ShardPlan, WeightBalancedOnAsymmetricFabric) {
  topo::ClosBlueprint bp(topo::ClosParams::asymmetric_8pod());
  topo::ShardPlan plan = topo::make_shard_plan(bp, 4);
  ASSERT_EQ(plan.shards, 4u);

  std::vector<std::uint32_t> load(plan.shards, 0);
  std::uint32_t heaviest_pod = 0;
  std::vector<std::uint32_t> pod_weight(9, 0);  // 1-based global pods
  for (std::uint32_t d = 0; d < bp.devices().size(); ++d) {
    const auto& spec = bp.device(d);
    ++load[plan.shard_of(d)];
    if (spec.pod != 0) {
      ++pod_weight[spec.pod];
      EXPECT_EQ(plan.shard_of(d), plan.shard_of(bp.leaf(spec.pod, 1)))
          << spec.name;
    }
  }
  for (std::uint32_t w : pod_weight) heaviest_pod = std::max(heaviest_pod, w);
  auto [lo, hi] = std::minmax_element(load.begin(), load.end());
  EXPECT_GT(*lo, 0u) << "no shard may sit idle";
  EXPECT_LE(*hi - *lo, heaviest_pod)
      << "greedy balance bound violated: " << *hi << " vs " << *lo;
}

// Identical inputs must yield an identical plan (the engine relies on this
// for resumable runs), and 1 shard degenerates to everything-on-shard-0.
TEST(ShardPlan, DeterministicAndSingleShardDegenerate) {
  topo::ClosBlueprint bp(topo::ClosParams::asymmetric_8pod());
  topo::ShardPlan a = topo::make_shard_plan(bp, 4);
  topo::ShardPlan b = topo::make_shard_plan(bp, 4);
  ASSERT_EQ(a.shards, b.shards);
  for (std::uint32_t d = 0; d < bp.devices().size(); ++d) {
    EXPECT_EQ(a.shard_of(d), b.shard_of(d)) << bp.device(d).name;
  }
  topo::ShardPlan one = topo::make_shard_plan(bp, 1);
  EXPECT_EQ(one.shards, 1u);
  for (std::uint32_t d = 0; d < bp.devices().size(); ++d) {
    EXPECT_EQ(one.shard_of(d), 0u);
  }
}

// ---------------------------------------------------------------------------
// The determinism contract. One scenario, run at different shard counts,
// snapshotting every counter the fabric exposes.

struct FabricSnapshot {
  std::vector<std::vector<std::uint64_t>> link_stats;  // per link, flattened
  std::vector<std::vector<std::pair<std::string, std::uint32_t>>> vid_tables;
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t duplicates = 0;
  std::size_t final_violations = 0;
  bool converged_before_fail = false;

  bool operator==(const FabricSnapshot&) const = default;
};

std::vector<std::uint64_t> flatten(const net::Link::Stats& s) {
  std::vector<std::uint64_t> out;
  for (const net::Link::DirStats* d : {&s.ab, &s.ba}) {
    out.insert(out.end(),
               {d->delivered, d->dropped_link_down, d->dropped_dst_down,
                d->dropped_impairment, d->dropped_blackhole,
                d->dropped_queue_full, d->duplicated,
                d->dropped_queue_control});
  }
  return out;
}

FabricSnapshot run_chaotic_scenario(
    harness::Proto proto, std::uint32_t threads,
    topo::ClosParams params = topo::ClosParams{8, 2, 2, 4, 1}) {
  topo::ClosBlueprint blueprint(params);
  harness::ShardedFabric fabric(blueprint, threads, /*seed=*/11);
  harness::Deployment dep(fabric, proto);
  sim::ShardedEngine& engine = fabric.engine();

  const Time t_traffic = Time::zero() + Duration::seconds(3);
  const Time t_fail = t_traffic + Duration::millis(500);
  const Time t_end = t_fail + Duration::seconds(3);

  dep.start();

  traffic::Host& sender = dep.host(0);
  traffic::Host& receiver =
      dep.host(static_cast<std::uint32_t>(dep.host_count() - 1));
  receiver.listen();
  sender.ctx().sched.schedule_at(t_traffic, [&] {
    traffic::FlowConfig flow;
    flow.dst = receiver.addr();
    flow.gap = Duration::millis(3);
    sender.start_flow(flow);
  });
  sender.ctx().sched.schedule_at(t_end, [&] { sender.stop_flow(); });

  // Chaos: a 40% gray loss toward the TC1 device plus a clean TC3
  // interface-down — cross-shard state churn under impaired links.
  topo::ChaosEngine chaos(dep.network(), blueprint, /*seed=*/11);
  chaos.loss_one_way(blueprint.failure_point(topo::TestCase::kTC1),
                     /*toward_device=*/true, 0.4, t_fail);
  topo::FailureInjector injector(dep.network(), blueprint);
  injector.schedule_failure(topo::TestCase::kTC3, t_fail);

  FabricSnapshot snap;
  engine.run_until(t_fail - Duration::nanos(1));
  snap.converged_before_fail = dep.converged();
  engine.run_until(t_end + Duration::millis(200));

  for (const auto& link : dep.network().links()) {
    snap.link_stats.push_back(flatten(link->stats()));
  }
  if (proto == harness::Proto::kMtp) {
    for (std::uint32_t d = 0; d < dep.router_count(); ++d) {
      auto entries = dep.mtp(d).vid_table().entries();
      std::sort(entries.begin(), entries.end());
      std::vector<std::pair<std::string, std::uint32_t>> table;
      for (const auto& e : entries) table.emplace_back(e.vid.str(), e.port);
      snap.vid_tables.push_back(std::move(table));
    }
  }
  snap.packets_sent = sender.packets_sent();
  snap.packets_received = receiver.sink_stats().received;
  snap.duplicates = receiver.sink_stats().duplicates;

  harness::FabricAuditor auditor(dep);
  snap.final_violations = auditor.sweep();
  return snap;
}

void expect_snapshots_equal(const FabricSnapshot& one,
                            const FabricSnapshot& four) {
  ASSERT_EQ(one.link_stats.size(), four.link_stats.size());
  for (std::size_t li = 0; li < one.link_stats.size(); ++li) {
    EXPECT_EQ(one.link_stats[li], four.link_stats[li]) << "link " << li;
  }
  ASSERT_EQ(one.vid_tables.size(), four.vid_tables.size());
  for (std::size_t d = 0; d < one.vid_tables.size(); ++d) {
    EXPECT_EQ(one.vid_tables[d], four.vid_tables[d]) << "router " << d;
  }
  EXPECT_EQ(one.packets_sent, four.packets_sent);
  EXPECT_EQ(one.packets_received, four.packets_received);
  EXPECT_EQ(one.duplicates, four.duplicates);
  EXPECT_EQ(one.final_violations, four.final_violations);
  EXPECT_EQ(one.converged_before_fail, four.converged_before_fail);
}

TEST(ParallelDeterminism, MtpFourShardsMatchOneShard) {
  FabricSnapshot one = run_chaotic_scenario(harness::Proto::kMtp, 1);
  FabricSnapshot four = run_chaotic_scenario(harness::Proto::kMtp, 4);
  EXPECT_TRUE(one.converged_before_fail);
  EXPECT_GT(one.packets_sent, 0u);
  expect_snapshots_equal(one, four);
}

TEST(ParallelDeterminism, MtpFourShardsAreRepeatable) {
  FabricSnapshot a = run_chaotic_scenario(harness::Proto::kMtp, 4);
  FabricSnapshot b = run_chaotic_scenario(harness::Proto::kMtp, 4);
  expect_snapshots_equal(a, b);
}

// Non-uniform shards (asymmetric PoD sizes and mixed uplink speeds) must
// not break the determinism contract: the weight-balanced plan gives
// shards different event loads, which stresses the barrier/lookahead logic
// far harder than the uniform fabric.
TEST(ParallelDeterminism, AsymmetricFourShardsMatchOneShard) {
  topo::ClosParams params = topo::ClosParams::asymmetric_8pod();
  FabricSnapshot one = run_chaotic_scenario(harness::Proto::kMtp, 1, params);
  FabricSnapshot four = run_chaotic_scenario(harness::Proto::kMtp, 4, params);
  EXPECT_TRUE(one.converged_before_fail);
  EXPECT_GT(one.packets_sent, 0u);
  expect_snapshots_equal(one, four);
}

TEST(ParallelDeterminism, BgpBfdFourShardsMatchOneShard) {
  FabricSnapshot one = run_chaotic_scenario(harness::Proto::kBgpBfd, 1);
  FabricSnapshot four = run_chaotic_scenario(harness::Proto::kBgpBfd, 4);
  EXPECT_TRUE(one.converged_before_fail);
  EXPECT_GT(one.packets_sent, 0u);
  expect_snapshots_equal(one, four);
}

// The experiment runner's sharded path must agree with itself across shard
// counts on every merged metric (the per-shard instrumentation slots).
TEST(ParallelDeterminism, ExperimentRunnerMergesIdentically) {
  harness::ExperimentSpec spec;
  spec.topo = topo::ClosParams{8, 2, 2, 4, 1};
  spec.proto = harness::Proto::kMtp;
  spec.tc = topo::TestCase::kTC2;
  spec.seed = 23;
  spec.gray.kind = harness::ExperimentSpec::GraySpec::Kind::kUnidirLoss;
  spec.gray.loss = 0.5;
  spec.audit = true;
  spec.force_parallel_engine = true;

  spec.threads = 1;
  harness::ExperimentResult one = harness::run_failure_experiment(spec);
  spec.threads = 4;
  harness::ExperimentResult four = harness::run_failure_experiment(spec);

  EXPECT_EQ(one.threads_used, 1u);
  EXPECT_EQ(four.threads_used, 4u);
  EXPECT_TRUE(one.initial_converged);
  EXPECT_EQ(one.convergence.ns(), four.convergence.ns());
  EXPECT_EQ(one.update_events, four.update_events);
  EXPECT_EQ(one.blast_any, four.blast_any);
  EXPECT_EQ(one.blast_remote, four.blast_remote);
  EXPECT_EQ(one.ctrl_bytes_raw, four.ctrl_bytes_raw);
  EXPECT_EQ(one.packets_sent, four.packets_sent);
  EXPECT_EQ(one.packets_lost, four.packets_lost);
  EXPECT_EQ(one.failure_detected, four.failure_detected);
  EXPECT_EQ(one.detection_latency.ns(), four.detection_latency.ns());
  EXPECT_EQ(one.final_sweep_violations, four.final_sweep_violations);
  EXPECT_EQ(one.events_fired, four.events_fired);
}

}  // namespace
}  // namespace mrmtp
