// Unit tests: BFD packet codec, session FSM (Down/Init/Up), detection
// timing (tx interval x multiplier), and the 66-byte L2 frame size.
#include <gtest/gtest.h>

#include "bfd/bfd.hpp"
#include "net/network.hpp"

namespace mrmtp::bfd {
namespace {

TEST(BfdPacketTest, SerializesTo24Bytes) {
  BfdPacket p;
  p.state = BfdState::kUp;
  p.my_discriminator = 7;
  auto bytes = p.serialize();
  EXPECT_EQ(bytes.size(), BfdPacket::kSize);
  // At L2: 14 (eth) + 20 (IP) + 8 (UDP) + 24 = 66 bytes — the frame size in
  // the paper's Fig. 9 capture.
  EXPECT_EQ(14 + 20 + 8 + BfdPacket::kSize, 66u);
}

TEST(BfdPacketTest, RoundTrip) {
  BfdPacket p;
  p.state = BfdState::kInit;
  p.detect_mult = 5;
  p.my_discriminator = 42;
  p.your_discriminator = 17;
  p.desired_min_tx_us = 100000;
  BfdPacket q = BfdPacket::parse(p.serialize());
  EXPECT_EQ(q.state, BfdState::kInit);
  EXPECT_EQ(q.detect_mult, 5);
  EXPECT_EQ(q.my_discriminator, 42u);
  EXPECT_EQ(q.your_discriminator, 17u);
  EXPECT_EQ(q.desired_min_tx_us, 100000u);
}

TEST(BfdPacketTest, RejectsMalformed) {
  BfdPacket p;
  auto bytes = p.serialize();
  bytes[0] = 0x00;  // version 0
  EXPECT_THROW(BfdPacket::parse(bytes), util::CodecError);
  auto short_buf = std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + 10);
  EXPECT_THROW(BfdPacket::parse(short_buf), util::CodecError);
}

/// Two L3 nodes on one link, BFD sessions both sides.
class BfdSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = &network_.add_node<transport::L3Node>("a", 1);
    b_ = &network_.add_node<transport::L3Node>("b", 1);
    network_.connect(*a_, *b_);
    a_->configure_port(1, addr_a_, 31);
    b_->configure_port(1, addr_b_, 31);
    mgr_a_ = std::make_unique<BfdManager>(*a_);
    mgr_b_ = std::make_unique<BfdManager>(*b_);
  }

  void start_sessions(BfdSession::Config cfg = {}) {
    sa_ = &mgr_a_->create_session(addr_a_, addr_b_, cfg,
                                  [this](bool up) { a_events_.push_back(up); });
    sb_ = &mgr_b_->create_session(addr_b_, addr_a_, cfg,
                                  [this](bool up) { b_events_.push_back(up); });
    sa_->start();
    sb_->start();
  }

  void run_for(sim::Duration d) { ctx_.sched.run_until(ctx_.now() + d); }

  net::SimContext ctx_{21};
  net::Network network_{ctx_};
  transport::L3Node* a_ = nullptr;
  transport::L3Node* b_ = nullptr;
  ip::Ipv4Addr addr_a_ = ip::Ipv4Addr::parse("172.16.0.0");
  ip::Ipv4Addr addr_b_ = ip::Ipv4Addr::parse("172.16.0.1");
  std::unique_ptr<BfdManager> mgr_a_;
  std::unique_ptr<BfdManager> mgr_b_;
  BfdSession* sa_ = nullptr;
  BfdSession* sb_ = nullptr;
  std::vector<bool> a_events_;
  std::vector<bool> b_events_;
};

TEST_F(BfdSessionTest, ComesUpThroughInitHandshake) {
  start_sessions();
  run_for(sim::Duration::millis(500));
  EXPECT_EQ(sa_->state(), BfdState::kUp);
  EXPECT_EQ(sb_->state(), BfdState::kUp);
  ASSERT_EQ(a_events_.size(), 1u);
  EXPECT_TRUE(a_events_[0]);
}

TEST_F(BfdSessionTest, DetectsFailureWithinDetectionTime) {
  start_sessions({.tx_interval = sim::Duration::millis(100), .detect_mult = 3});
  run_for(sim::Duration::millis(500));
  ASSERT_EQ(sa_->state(), BfdState::kUp);

  // b's interface dies; a hears nothing and must declare Down within
  // 3 x 100 ms (+ one interval of phase).
  sim::Time fail_at = ctx_.now();
  b_->set_interface_down(1);
  run_for(sim::Duration::millis(450));
  EXPECT_EQ(sa_->state(), BfdState::kDown);
  ASSERT_EQ(a_events_.size(), 2u);
  EXPECT_FALSE(a_events_[1]);
  (void)fail_at;
}

TEST_F(BfdSessionTest, DetectionTimeMatchesConfig) {
  BfdSession::Config cfg{.tx_interval = sim::Duration::millis(50),
                         .detect_mult = 4};
  start_sessions(cfg);
  EXPECT_EQ(sa_->detection_time().to_millis(), 200.0);
}

TEST_F(BfdSessionTest, RecoversAfterInterfaceRestored) {
  start_sessions();
  run_for(sim::Duration::millis(500));
  b_->set_interface_down(1);
  run_for(sim::Duration::millis(500));
  ASSERT_EQ(sa_->state(), BfdState::kDown);
  // b also went down (its own detect timer fired; nothing arrives).
  ASSERT_EQ(sb_->state(), BfdState::kDown);

  b_->set_interface_up(1);
  run_for(sim::Duration::millis(500));
  EXPECT_EQ(sa_->state(), BfdState::kUp);
  EXPECT_EQ(sb_->state(), BfdState::kUp);
}

TEST_F(BfdSessionTest, StopSilencesSession) {
  start_sessions();
  run_for(sim::Duration::millis(500));
  sa_->stop();
  EXPECT_EQ(sa_->state(), BfdState::kAdminDown);
  // b eventually declares a down.
  run_for(sim::Duration::millis(500));
  EXPECT_EQ(sb_->state(), BfdState::kDown);
}

TEST_F(BfdSessionTest, ControlPacketsAre66BytesOnTheWire) {
  start_sessions();
  run_for(sim::Duration::millis(300));
  const auto& c = a_->port(1).tx_stats().of(net::TrafficClass::kBfd);
  ASSERT_GT(c.frames, 0u);
  EXPECT_EQ(c.bytes / c.frames, 66u);
  EXPECT_EQ(c.padded_bytes / c.frames, 66u);  // above the 60-byte minimum
}

TEST_F(BfdSessionTest, SteadyStateRateMatchesTxInterval) {
  start_sessions({.tx_interval = sim::Duration::millis(100), .detect_mult = 3});
  run_for(sim::Duration::millis(500));
  std::uint64_t before =
      a_->port(1).tx_stats().of(net::TrafficClass::kBfd).frames;
  run_for(sim::Duration::seconds(1));
  std::uint64_t frames =
      a_->port(1).tx_stats().of(net::TrafficClass::kBfd).frames - before;
  EXPECT_NEAR(static_cast<double>(frames), 10.0, 1.0);  // ~10/s at 100 ms
}

TEST_F(BfdSessionTest, ManagerDemuxesByPeer) {
  start_sessions();
  EXPECT_EQ(mgr_a_->find(addr_b_), sa_);
  EXPECT_EQ(mgr_a_->find(ip::Ipv4Addr::parse("9.9.9.9")), nullptr);
  EXPECT_EQ(mgr_a_->session_count(), 1u);
}

}  // namespace
}  // namespace mrmtp::bfd
