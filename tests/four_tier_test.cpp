// 4-tier folded-Clos (paper §III.B: "the scheme can easily scale to any
// number of spine tiers"; §IX future work): clusters of the 4-PoD design
// meshed by super spines, under both MR-MTP and BGP.
#include <gtest/gtest.h>

#include "harness/deploy.hpp"
#include "topo/failure.hpp"

namespace mrmtp {
namespace {

using harness::Deployment;
using harness::Proto;

class FourTierTest : public ::testing::Test {
 protected:
  void deploy(Proto proto, std::uint32_t clusters = 2,
              std::uint32_t supers = 8, std::uint64_t seed = 9) {
    params_ = topo::ClosParams::four_tier_clusters(clusters, supers);
    // The deployment must die before the SimContext its timers point at
    // (matters when a test deploys more than once).
    dep_.reset();
    blueprint_.reset();
    ctx_ = std::make_unique<net::SimContext>(seed);
    blueprint_ = std::make_unique<topo::ClosBlueprint>(params_);
    dep_ = std::make_unique<Deployment>(*ctx_, *blueprint_, proto,
                                        harness::DeployOptions{});
    dep_->start();
  }

  void run_for(sim::Duration d) { ctx_->sched.run_until(ctx_->now() + d); }

  topo::ClosParams params_;
  std::unique_ptr<net::SimContext> ctx_;
  std::unique_ptr<topo::ClosBlueprint> blueprint_;
  std::unique_ptr<Deployment> dep_;
};

TEST_F(FourTierTest, BlueprintStructure) {
  deploy(Proto::kMtp);
  const auto& bp = *blueprint_;
  // 2 clusters x (8 leaves + 8 pod spines + 4 tops) + 8 supers = 48.
  EXPECT_EQ(bp.devices().size(), 48u);
  EXPECT_EQ(params_.router_count(), 48u);
  EXPECT_EQ(bp.device(bp.super_spine(1)).name, "U-1");
  EXPECT_EQ(bp.device(bp.super_spine(1)).tier, 4u);
  EXPECT_EQ(bp.device(bp.leaf_in(2, 1, 1)).name, "C2-L-1-1");
  EXPECT_EQ(bp.device(bp.top_spine_in(2, 3)).name, "C2-T-3");

  // VIDs continue across clusters: cluster 2 starts after cluster 1's 8.
  EXPECT_EQ(bp.tor_vid_in(1, 1, 1), 11);
  EXPECT_EQ(bp.tor_vid_in(2, 1, 1), 19);

  // Every top spine has uplinks_per_top super uplinks at ports 1..U.
  EXPECT_EQ(params_.uplinks_per_top(), 2u);
  // Each super connects once per cluster.
  int degree = 0;
  for (const auto& l : bp.links()) {
    if (l.upper == bp.super_spine(1)) ++degree;
  }
  EXPECT_EQ(degree, 2);
}

TEST_F(FourTierTest, RejectsInvalidShapes) {
  auto bad = topo::ClosParams::paper_4pod();
  bad.clusters = 2;  // clusters without supers
  EXPECT_THROW(topo::ClosBlueprint{bad}, std::invalid_argument);
  bad.super_spines = 6;  // not a multiple of top_spines (4)
  EXPECT_THROW(topo::ClosBlueprint{bad}, std::invalid_argument);
}

TEST_F(FourTierTest, MtpTreesReachDepthFour) {
  deploy(Proto::kMtp);
  run_for(sim::Duration::seconds(4));
  ASSERT_TRUE(dep_->converged());

  // A super spine holds one VID per ToR tree across BOTH clusters, each of
  // depth 4 (root.pod-spine-port.top-port.super-port).
  auto& super = dep_->mtp(blueprint_->super_spine(1));
  EXPECT_EQ(super.vid_table().size(), 16u);
  for (const auto& entry : super.vid_table().entries()) {
    EXPECT_EQ(entry.vid.depth(), 4u) << entry.vid.str();
  }

  // Cluster tops only hold their own cluster's trees.
  auto& top = dep_->mtp(blueprint_->top_spine_in(1, 1));
  EXPECT_EQ(top.vid_table().size(), 8u);
  for (const auto& entry : top.vid_table().entries()) {
    EXPECT_LT(entry.vid.root(), 19) << entry.vid.str();
  }
}

TEST_F(FourTierTest, MtpCrossClusterDelivery) {
  deploy(Proto::kMtp);
  run_for(sim::Duration::seconds(4));
  ASSERT_TRUE(dep_->converged());

  auto& sender = dep_->host(0);                      // cluster 1, VID 11
  auto last = static_cast<std::uint32_t>(dep_->host_count() - 1);
  auto& receiver = dep_->host(last);                 // cluster 2, VID 26
  receiver.listen();
  traffic::FlowConfig flow;
  flow.dst = receiver.addr();
  flow.count = 200;
  flow.gap = sim::Duration::millis(1);
  sender.start_flow(flow);
  run_for(sim::Duration::seconds(1));
  EXPECT_EQ(receiver.sink_stats().unique_received, 200u);

  // Cross-cluster traffic transited the super tier.
  std::uint64_t super_forwarded = 0;
  for (std::uint32_t q = 1; q <= params_.super_spines; ++q) {
    super_forwarded +=
        dep_->mtp(blueprint_->super_spine(q)).mtp_stats().data_forwarded;
  }
  EXPECT_GT(super_forwarded, 0u);
}

TEST_F(FourTierTest, MtpIntraClusterTrafficAvoidsSupers) {
  deploy(Proto::kMtp);
  run_for(sim::Duration::seconds(4));
  ASSERT_TRUE(dep_->converged());

  auto& sender = dep_->host(0);    // cluster 1, pod 1
  auto& receiver = dep_->host(7);  // cluster 1, pod 4
  receiver.listen();
  traffic::FlowConfig flow;
  flow.dst = receiver.addr();
  flow.count = 100;
  flow.gap = sim::Duration::millis(1);
  sender.start_flow(flow);
  run_for(sim::Duration::seconds(1));
  EXPECT_EQ(receiver.sink_stats().unique_received, 100u);

  for (std::uint32_t q = 1; q <= params_.super_spines; ++q) {
    EXPECT_EQ(dep_->mtp(blueprint_->super_spine(q)).mtp_stats().data_forwarded,
              0u)
        << "U-" << q;
  }
}

TEST_F(FourTierTest, MtpRecoversFromClusterUplinkFailure) {
  deploy(Proto::kMtp);
  run_for(sim::Duration::seconds(4));
  ASSERT_TRUE(dep_->converged());

  // Fail a top-spine uplink (tier 3 <-> tier 4): C1-T-1's first super link.
  auto& top = dep_->network().find("C1-T-1");
  top.set_interface_down(1);
  run_for(sim::Duration::seconds(2));

  // Cross-cluster traffic still flows over the remaining super paths.
  auto& sender = dep_->host(0);
  auto last = static_cast<std::uint32_t>(dep_->host_count() - 1);
  auto& receiver = dep_->host(last);
  receiver.listen();
  traffic::FlowConfig flow;
  flow.dst = receiver.addr();
  flow.count = 300;
  flow.gap = sim::Duration::millis(1);
  sender.start_flow(flow);
  run_for(sim::Duration::seconds(1));
  EXPECT_EQ(receiver.sink_stats().unique_received, 300u);
}

TEST_F(FourTierTest, BgpFourTierConvergesAndDelivers) {
  deploy(Proto::kBgpBfd);
  run_for(sim::Duration::seconds(8));
  ASSERT_TRUE(dep_->converged());

  auto& sender = dep_->host(0);
  auto last = static_cast<std::uint32_t>(dep_->host_count() - 1);
  auto& receiver = dep_->host(last);
  receiver.listen();
  traffic::FlowConfig flow;
  flow.dst = receiver.addr();
  flow.count = 200;
  flow.gap = sim::Duration::millis(1);
  sender.start_flow(flow);
  run_for(sim::Duration::seconds(1));
  EXPECT_EQ(receiver.sink_stats().unique_received, 200u);

  // AS-path sanity: a cluster-1 ToR reaches a cluster-2 subnet through the
  // backbone (4 AS hops: pod spine, cluster top, supers' AS, remote chain).
  auto& tor = dep_->bgp(blueprint_->leaf_in(1, 1, 1));
  const ip::Route* r = tor.routes().exact(
      *blueprint_->device(blueprint_->leaf_in(2, 1, 1)).server_subnet);
  ASSERT_NE(r, nullptr);
  EXPECT_GE(r->nexthops.size(), 2u);  // ECMP across both pod spines
}

TEST_F(FourTierTest, ThreeClusterFabric) {
  deploy(Proto::kMtp, /*clusters=*/3, /*supers=*/4, /*seed=*/21);
  run_for(sim::Duration::seconds(5));
  EXPECT_TRUE(dep_->converged());

  auto& super = dep_->mtp(blueprint_->super_spine(1));
  EXPECT_EQ(super.vid_table().size(), 24u);  // 3 clusters x 8 trees
}

}  // namespace
}  // namespace mrmtp
