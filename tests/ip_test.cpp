// Unit tests: IPv4 addressing, header codec/checksum, and the LPM/ECMP route
// table — including a randomized LPM-vs-linear-scan oracle property test.
#include <gtest/gtest.h>

#include <set>

#include "ip/packet.hpp"
#include "ip/route_table.hpp"
#include "sim/random.hpp"

namespace mrmtp::ip {
namespace {

TEST(AddrTest, ParseAndFormat) {
  Ipv4Addr a = Ipv4Addr::parse("192.168.11.1");
  EXPECT_EQ(a.str(), "192.168.11.1");
  EXPECT_EQ(a.octet(0), 192);
  EXPECT_EQ(a.third_octet(), 11);  // the MR-MTP VID derivation byte
  EXPECT_EQ(Ipv4Addr(10, 0, 0, 1).value(), 0x0a000001u);
}

TEST(AddrTest, ParseRejectsMalformed) {
  EXPECT_THROW(Ipv4Addr::parse("1.2.3"), util::CodecError);
  EXPECT_THROW(Ipv4Addr::parse("1.2.3.4.5"), util::CodecError);
  EXPECT_THROW(Ipv4Addr::parse("1.2.3.256"), util::CodecError);
  EXPECT_THROW(Ipv4Addr::parse("a.b.c.d"), util::CodecError);
  EXPECT_THROW(Ipv4Addr::parse(""), util::CodecError);
}

TEST(PrefixTest, NormalizesHostBits) {
  Ipv4Prefix p(Ipv4Addr::parse("192.168.11.77"), 24);
  EXPECT_EQ(p.str(), "192.168.11.0/24");
  EXPECT_TRUE(p.contains(Ipv4Addr::parse("192.168.11.200")));
  EXPECT_FALSE(p.contains(Ipv4Addr::parse("192.168.12.1")));
  EXPECT_EQ(p.host(254).str(), "192.168.11.254");
}

TEST(PrefixTest, EdgeLengths) {
  Ipv4Prefix all(Ipv4Addr::parse("1.2.3.4"), 0);
  EXPECT_TRUE(all.contains(Ipv4Addr::parse("255.255.255.255")));
  Ipv4Prefix host(Ipv4Addr::parse("10.0.0.1"), 32);
  EXPECT_TRUE(host.contains(Ipv4Addr::parse("10.0.0.1")));
  EXPECT_FALSE(host.contains(Ipv4Addr::parse("10.0.0.2")));
  Ipv4Prefix p2p(Ipv4Addr::parse("172.16.0.0"), 31);
  EXPECT_TRUE(p2p.contains(Ipv4Addr::parse("172.16.0.1")));
  EXPECT_FALSE(p2p.contains(Ipv4Addr::parse("172.16.0.2")));
}

TEST(PrefixTest, ParseForm) {
  Ipv4Prefix p = Ipv4Prefix::parse("10.1.0.0/16");
  EXPECT_EQ(p.length(), 16);
  EXPECT_THROW(Ipv4Prefix::parse("10.1.0.0"), util::CodecError);
  EXPECT_THROW(Ipv4Prefix::parse("10.1.0.0/33"), util::CodecError);
}

TEST(PrefixHashTest, AdjacentPrefixesSpreadAcrossBuckets) {
  // The old `network * 33 + length` hash stepped by 33 * 256 = 8448 between
  // adjacent /24s — a multiple of 64, so every rack prefix landed in the
  // same low-bit bucket class of an unordered_map. The mixed hash must
  // spread them.
  std::set<std::size_t> buckets;
  std::set<std::size_t> hashes;
  std::hash<Ipv4Prefix> h;
  for (std::uint32_t i = 0; i < 256; ++i) {
    Ipv4Prefix p(Ipv4Addr(10, 0, static_cast<std::uint8_t>(i), 0), 24);
    std::size_t v = h(p);
    hashes.insert(v);
    buckets.insert(v % 64);
  }
  EXPECT_EQ(hashes.size(), 256u);
  EXPECT_GT(buckets.size(), 48u);
  // Same network, different length -> different hash.
  EXPECT_NE(h(Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 24)),
            h(Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 25)));
}

TEST(HeaderTest, SerializeParseRoundTrip) {
  Ipv4Header h;
  h.src = Ipv4Addr::parse("192.168.11.1");
  h.dst = Ipv4Addr::parse("192.168.14.1");
  h.protocol = IpProto::kUdp;
  h.ttl = 17;
  h.identification = 999;
  std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  auto bytes = h.serialize(payload);
  ASSERT_EQ(bytes.size(), Ipv4Header::kSize + payload.size());

  std::span<const std::uint8_t> out_payload;
  Ipv4Header parsed = Ipv4Header::parse(bytes, out_payload);
  EXPECT_EQ(parsed.src, h.src);
  EXPECT_EQ(parsed.dst, h.dst);
  EXPECT_EQ(parsed.protocol, IpProto::kUdp);
  EXPECT_EQ(parsed.ttl, 17);
  EXPECT_EQ(parsed.identification, 999);
  ASSERT_EQ(out_payload.size(), 5u);
  EXPECT_EQ(out_payload[4], 5);
}

TEST(HeaderTest, ChecksumValidates) {
  Ipv4Header h;
  h.src = Ipv4Addr::parse("1.2.3.4");
  h.dst = Ipv4Addr::parse("5.6.7.8");
  auto bytes = h.serialize({});
  // Verify: checksum over the header must be zero.
  EXPECT_EQ(internet_checksum(std::span(bytes).subspan(0, 20)), 0);
  // Corrupt a byte -> parse must throw.
  bytes[8] ^= 0xff;
  std::span<const std::uint8_t> p;
  EXPECT_THROW(Ipv4Header::parse(bytes, p), util::CodecError);
}

TEST(HeaderTest, RejectsTruncationAndBadVersion) {
  Ipv4Header h;
  auto bytes = h.serialize({});
  std::span<const std::uint8_t> p;
  EXPECT_THROW(
      Ipv4Header::parse(std::span(bytes).subspan(0, 10), p), util::CodecError);
  bytes[0] = 0x65;  // version 6
  EXPECT_THROW(Ipv4Header::parse(bytes, p), util::CodecError);
}

TEST(HeaderTest, OptionsRoundTripAndShiftPayload) {
  Ipv4Header h;
  h.src = Ipv4Addr::parse("192.168.11.1");
  h.dst = Ipv4Addr::parse("192.168.14.1");
  h.protocol = IpProto::kUdp;
  h.options = {0x94, 0x04, 0x00, 0x00,   // router alert
               0x01, 0x01, 0x01, 0x01};  // NOP padding
  std::vector<std::uint8_t> payload{9, 8, 7, 6};
  auto bytes = h.serialize(payload);
  ASSERT_EQ(bytes.size(), Ipv4Header::kSize + 8 + payload.size());
  EXPECT_EQ(bytes[0], 0x47);  // version 4, IHL 7

  std::span<const std::uint8_t> out_payload;
  Ipv4Header parsed = Ipv4Header::parse(bytes, out_payload);
  EXPECT_EQ(parsed.options, h.options);
  EXPECT_EQ(parsed.header_length(), 28u);
  // The payload span must start after the options, so the transport ports a
  // flow hash reads are the real ports, not option bytes.
  ASSERT_EQ(out_payload.size(), payload.size());
  EXPECT_EQ(out_payload[0], 9);
  EXPECT_EQ(Ipv4Header::payload_offset(bytes), 28u);
}

TEST(HeaderTest, RejectsMalformedOptions) {
  Ipv4Header h;
  h.options = {0x01, 0x01, 0x01};  // not a multiple of 4
  EXPECT_THROW(h.serialize({}), util::CodecError);
  h.options.assign(44, 0x01);  // over the 40-byte cap
  EXPECT_THROW(h.serialize({}), util::CodecError);

  h.options.clear();
  auto bytes = h.serialize({});
  bytes[0] = 0x44;  // IHL 4 < minimum 5
  std::span<const std::uint8_t> p;
  EXPECT_THROW(Ipv4Header::parse(bytes, p), util::CodecError);
  EXPECT_THROW(static_cast<void>(Ipv4Header::payload_offset(bytes)),
               util::CodecError);
  EXPECT_THROW(static_cast<void>(Ipv4Header::payload_offset({})),
               util::CodecError);
}

class RouteTableTest : public ::testing::Test {
 protected:
  RouteTable table_;
};

TEST_F(RouteTableTest, LongestPrefixWins) {
  table_.set(Ipv4Prefix::parse("10.0.0.0/8"), RouteProto::kBgp,
             {{Ipv4Addr::parse("1.1.1.1"), 1}});
  table_.set(Ipv4Prefix::parse("10.1.0.0/16"), RouteProto::kBgp,
             {{Ipv4Addr::parse("2.2.2.2"), 2}});
  table_.set(Ipv4Prefix::parse("10.1.2.0/24"), RouteProto::kBgp,
             {{Ipv4Addr::parse("3.3.3.3"), 3}});

  EXPECT_EQ(table_.lookup(Ipv4Addr::parse("10.1.2.9"))->nexthops[0].port, 3u);
  EXPECT_EQ(table_.lookup(Ipv4Addr::parse("10.1.9.9"))->nexthops[0].port, 2u);
  EXPECT_EQ(table_.lookup(Ipv4Addr::parse("10.9.9.9"))->nexthops[0].port, 1u);
  EXPECT_EQ(table_.lookup(Ipv4Addr::parse("11.0.0.1")), nullptr);
}

TEST_F(RouteTableTest, DefaultRouteMatchesEverything) {
  table_.set(Ipv4Prefix::parse("0.0.0.0/0"), RouteProto::kStatic,
             {{Ipv4Addr::parse("9.9.9.9"), 7}});
  EXPECT_EQ(table_.lookup(Ipv4Addr::parse("200.1.2.3"))->nexthops[0].port, 7u);
}

TEST_F(RouteTableTest, EcmpSelectIsDeterministicPerHash) {
  table_.set(Ipv4Prefix::parse("192.168.14.0/24"), RouteProto::kBgp,
             {{Ipv4Addr::parse("172.16.0.1"), 3},
              {Ipv4Addr::parse("172.16.8.1"), 4}});
  auto dst = Ipv4Addr::parse("192.168.14.1");
  // Same flow hash always lands on the same member (flow affinity), and
  // across many hashes the rendezvous pick uses every member.
  std::set<std::uint32_t> ports;
  for (std::uint64_t f = 0; f < 64; ++f) {
    const NextHop* pick = table_.select(dst, f);
    ASSERT_NE(pick, nullptr);
    EXPECT_EQ(table_.select(dst, f)->port, pick->port);
    ports.insert(pick->port);
  }
  EXPECT_EQ(ports, (std::set<std::uint32_t>{3, 4}));
}

TEST_F(RouteTableTest, ReplaceAndRemove) {
  auto p = Ipv4Prefix::parse("10.0.0.0/24");
  table_.set(p, RouteProto::kBgp, {{Ipv4Addr::parse("1.1.1.1"), 1}});
  EXPECT_EQ(table_.size(), 1u);
  table_.set(p, RouteProto::kBgp, {{Ipv4Addr::parse("2.2.2.2"), 2}});
  EXPECT_EQ(table_.size(), 1u);
  EXPECT_EQ(table_.exact(p)->nexthops[0].port, 2u);
  EXPECT_TRUE(table_.remove(p));
  EXPECT_FALSE(table_.remove(p));
  EXPECT_EQ(table_.size(), 0u);
  // Setting with an empty next-hop set removes.
  table_.set(p, RouteProto::kBgp, {{Ipv4Addr::parse("1.1.1.1"), 1}});
  table_.set(p, RouteProto::kBgp, {});
  EXPECT_EQ(table_.size(), 0u);
}

TEST_F(RouteTableTest, DumpMatchesListing3Format) {
  table_.add_connected(Ipv4Prefix::parse("172.16.0.0/24"), 3,
                       Ipv4Addr::parse("172.16.0.2"));
  table_.set(Ipv4Prefix::parse("192.168.2.0/24"), RouteProto::kBgp,
             {{Ipv4Addr::parse("172.16.0.1"), 3},
              {Ipv4Addr::parse("172.16.8.1"), 4}});
  table_.set(Ipv4Prefix::parse("192.168.0.0/24"), RouteProto::kBgp,
             {{Ipv4Addr::parse("172.16.16.2"), 2}});
  std::string dump = table_.dump();
  EXPECT_NE(dump.find("172.16.0.0/24 dev eth3 proto kernel scope link src "
                      "172.16.0.2"),
            std::string::npos);
  EXPECT_NE(dump.find("192.168.0.0/24 via 172.16.16.2 dev eth2 proto bgp "
                      "metric 20"),
            std::string::npos);
  EXPECT_NE(dump.find("192.168.2.0/24 proto bgp metric 20"), std::string::npos);
  EXPECT_NE(dump.find("\tnexthop via 172.16.0.1 dev eth3 weight 1"),
            std::string::npos);
}

TEST_F(RouteTableTest, MemoryBytesGrowWithRoutes) {
  std::size_t empty = table_.memory_bytes();
  for (int i = 0; i < 16; ++i) {
    table_.set(Ipv4Prefix(Ipv4Addr(10, 0, static_cast<std::uint8_t>(i), 0), 24),
               RouteProto::kBgp, {{Ipv4Addr::parse("1.1.1.1"), 1}});
  }
  EXPECT_GT(table_.memory_bytes(), empty);
}

// Property test: LPM agrees with a brute-force linear scan oracle on
// randomized tables and lookups.
class LpmOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpmOracleTest, MatchesLinearScan) {
  sim::Rng rng(GetParam());
  RouteTable table;
  std::vector<Route> oracle;

  for (int i = 0; i < 200; ++i) {
    auto len = static_cast<std::uint8_t>(rng.range(0, 32));
    Ipv4Prefix prefix(Ipv4Addr(static_cast<std::uint32_t>(rng.next())), len);
    std::vector<NextHop> hops{
        {Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
         static_cast<std::uint32_t>(rng.range(1, 8))}};
    table.set(prefix, RouteProto::kBgp, hops);
    std::erase_if(oracle, [&](const Route& r) { return r.prefix == prefix; });
    oracle.push_back(Route{prefix, RouteProto::kBgp, 20, {}, hops});
  }

  for (int i = 0; i < 500; ++i) {
    Ipv4Addr dst(static_cast<std::uint32_t>(rng.next()));
    const Route* got = table.lookup(dst);
    const Route* want = nullptr;
    for (const Route& r : oracle) {
      if (r.prefix.contains(dst) &&
          (want == nullptr || r.prefix.length() > want->prefix.length())) {
        want = &r;
      }
    }
    if (want == nullptr) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr) << dst.str();
      EXPECT_EQ(got->prefix, want->prefix) << dst.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, LpmOracleTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace mrmtp::ip
