// Ablation benches for the design choices DESIGN.md calls out:
//   1. Quick-to-Detect / Slow-to-Accept (paper §IV.B) under a flapping
//      interface: update-message churn with and without damping.
//   2. MR-MTP hello-timer sweep: convergence vs keep-alive overhead.
//   3. BGP MRAI sweep (paper §IV.A cites MRAI as a recovery factor).
#include "bench_common.hpp"
#include "topo/failure.hpp"

namespace {

using namespace mrmtp;

/// Flap study: TC1 interface toggles every `period` for `toggles` cycles;
/// returns MTP update messages + churn generated.
struct FlapResult {
  std::uint64_t updates = 0;
  std::uint64_t update_bytes = 0;
  std::uint64_t neighbor_accepts = 0;
};

FlapResult run_flap(bool slow_to_accept, sim::Duration period, int toggles) {
  net::SimContext ctx(7);
  topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
  harness::DeployOptions options;
  options.mtp_timers.slow_to_accept = slow_to_accept;
  harness::Deployment dep(ctx, bp, harness::Proto::kMtp, options);
  dep.start();
  ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(3).ns()));

  auto snapshot = [&dep] {
    FlapResult s;
    for (std::uint32_t d = 0; d < dep.router_count(); ++d) {
      const auto& st = dep.mtp(d).mtp_stats();
      s.updates += st.updates_sent;
      s.update_bytes += st.update_bytes_raw;
      s.neighbor_accepts += st.neighbors_accepted;
    }
    return s;
  };
  FlapResult before = snapshot();

  auto fp = bp.failure_point(topo::TestCase::kTC1);
  net::Node& victim = dep.network().find(fp.device);
  for (int i = 0; i < toggles; ++i) {
    ctx.sched.schedule_after(period * (i + 1), [&victim, &fp, i] {
      if (i % 2 == 0) {
        victim.set_interface_down(fp.port);
      } else {
        victim.set_interface_up(fp.port);
      }
    });
  }
  ctx.sched.run_until(ctx.now() + period * (toggles + 2) +
                      sim::Duration::seconds(2));

  FlapResult after = snapshot();
  return FlapResult{after.updates - before.updates,
                    after.update_bytes - before.update_bytes,
                    after.neighbor_accepts - before.neighbor_accepts};
}

}  // namespace

int main() {
  using namespace mrmtp;
  using namespace mrmtp::bench;

  print_header("Ablations — Slow-to-Accept, hello timers, BGP MRAI",
               "paper Sections IV.A/IV.B design choices");

  // --- 1. Flap damping ---
  std::printf("1) Flapping interface at TC1 (40 toggles): update churn\n\n");
  harness::Table flap({"damping", "flap period", "updates sent",
                       "update bytes", "re-accepts"});
  for (bool damp : {true, false}) {
    for (auto period : {sim::Duration::millis(60), sim::Duration::millis(400)}) {
      FlapResult r = run_flap(damp, period, 40);
      flap.add_row({damp ? "slow-to-accept" : "accept-first-hello",
                    period.str(), std::to_string(r.updates),
                    std::to_string(r.update_bytes),
                    std::to_string(r.neighbor_accepts)});
    }
  }
  flap.print(/*with_csv=*/true);
  std::printf(
      "\nShape check: with damping, a fast flap (60 ms) produces one down\n"
      "event and zero re-accept churn; without it, every up-blip rebuilds\n"
      "and re-tears the tree (route flapping, §IV).\n\n");

  // --- 2. MTP hello-timer sweep ---
  std::printf("2) MR-MTP hello-timer sweep (TC1, 2-PoD)\n\n");
  harness::Table hello({"hello", "dead", "convergence (ms)",
                        "loss fwd (pkts)", "hello frames/s/link"});
  for (int hello_ms : {25, 50, 100, 200}) {
    harness::ExperimentSpec spec;
    spec.proto = harness::Proto::kMtp;
    spec.tc = topo::TestCase::kTC1;
    spec.options.mtp_timers.hello = sim::Duration::millis(hello_ms);
    spec.options.mtp_timers.dead = sim::Duration::millis(2 * hello_ms);
    auto r = harness::run_averaged(spec, {11, 23, 37});
    hello.add_row({sim::Duration::millis(hello_ms).str(),
                   sim::Duration::millis(2 * hello_ms).str(),
                   harness::fmt(r.convergence_ms, 1),
                   harness::fmt(r.packets_lost, 1),
                   harness::fmt(1000.0 / hello_ms, 1)});
  }
  hello.print(/*with_csv=*/true);
  std::printf(
      "\nShape check: convergence tracks the dead timer (2x hello) almost\n"
      "exactly; the price of faster detection is keep-alive rate. The\n"
      "paper settled on 50/100 ms as the lowest stable setting (§VI.F).\n\n");

  // --- 3. BGP MRAI sweep on initial convergence ---
  // A single failure in this fabric produces one advertisement change per
  // neighbor, so MRAI never engages there. It bites during cold start,
  // where routes arrive incrementally and routers want to re-advertise to
  // the same peers over and over: MRAI batches those flushes (fewer
  // UPDATEs) at the price of slower full convergence — the
  // advertisement-spacing tradeoff the paper attributes to MRAI (§IV.A).
  std::printf("3) BGP MRAI sweep, cold-start convergence (4-PoD)\n\n");
  harness::Table mrai({"MRAI", "UPDATE msgs", "update bytes (L2)",
                       "time to full tables (ms)"});
  for (int mrai_ms : {0, 250, 1000, 4000}) {
    net::SimContext ctx(13);
    topo::ClosBlueprint bp(topo::ClosParams::paper_4pod());
    harness::DeployOptions options;
    options.bgp_timers.mrai = sim::Duration::millis(mrai_ms);
    harness::Deployment dep(ctx, bp, harness::Proto::kBgp, options);
    dep.start();

    sim::Time converged_at = sim::Time::zero();
    while (ctx.now() < sim::Time::from_ns(sim::Duration::seconds(60).ns())) {
      ctx.sched.run_until(ctx.now() + sim::Duration::millis(20));
      if (dep.converged()) {
        converged_at = ctx.now();
        break;
      }
    }

    std::uint64_t updates = 0;
    std::uint64_t bytes = 0;
    for (std::uint32_t d = 0; d < dep.router_count(); ++d) {
      updates += dep.bgp(d).bgp_stats().updates_sent;
      net::Node& node = dep.router(d);
      for (std::uint32_t p = 1; p <= node.port_count(); ++p) {
        bytes += node.port(p).tx_stats().of(net::TrafficClass::kBgpUpdate).bytes;
      }
    }
    mrai.add_row({sim::Duration::millis(mrai_ms).str(),
                  std::to_string(updates), std::to_string(bytes),
                  harness::fmt(converged_at.to_millis(), 0)});
  }
  mrai.print(/*with_csv=*/true);
  std::printf(
      "\nShape check: larger MRAI -> fewer, larger UPDATEs but slower\n"
      "convergence. FRR's datacenter profile uses MRAI 0 for exactly this\n"
      "reason; the classic eBGP default of 30 s would be crippling here.\n");
  return 0;
}
