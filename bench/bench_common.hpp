// Shared scaffolding for the figure-reproduction benches: the paper's
// 6-deployment grid (2-PoD and 4-PoD, each under MR-MTP, BGP/ECMP, and
// BGP/ECMP/BFD) swept over the four failure test cases, averaged over seeds
// the way the paper averages over runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "util/json.hpp"

namespace mrmtp::bench {

/// Command-line flags every bench understands:
///   --threads=N    run experiments on the parallel fabric engine with N
///                  shards (0 or 1 keeps the classic single-context engine)
///   --json-out=P   write the bench's JSON artifact to P instead of the
///                  default committed at the repo root
struct BenchFlags {
  std::uint32_t threads = 0;
  std::string json_out;

  static BenchFlags parse(int argc, char** argv,
                          std::string default_json = "") {
    BenchFlags flags;
    flags.json_out = std::move(default_json);
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--threads=", 10) == 0) {
        flags.threads = static_cast<std::uint32_t>(
            std::strtoul(arg + 10, nullptr, 10));
      } else if (std::strncmp(arg, "--json-out=", 11) == 0) {
        flags.json_out = arg + 11;
      } else {
        std::fprintf(stderr,
                     "usage: %s [--threads=N] [--json-out=PATH]\n"
                     "unknown flag: %s\n",
                     argv[0], arg);
        std::exit(2);
      }
    }
    return flags;
  }
};

inline const std::vector<std::uint64_t>& default_seeds() {
  static const std::vector<std::uint64_t> seeds{11, 23, 37, 51, 73};
  return seeds;
}

/// Stamps the seed campaign into a bench artifact: every committed
/// BENCH_*.json records exactly which seeds produced it, so a regenerated
/// artifact that silently ran a different campaign fails review (and
/// scripts/check.sh) instead of drifting.
inline void stamp_campaign(
    util::Json& doc, const std::vector<std::uint64_t>& seeds = default_seeds()) {
  util::JsonArray arr;
  for (std::uint64_t s : seeds) arr.push_back(static_cast<std::int64_t>(s));
  doc["campaign_seeds"] = std::move(arr);
}

struct GridPoint {
  std::string topo_name;
  topo::ClosParams topo;
  harness::Proto proto;
  topo::TestCase tc;
  harness::AveragedResult result;
};

/// Runs the full paper grid; `tweak` may adjust each spec (e.g. reverse the
/// traffic flow for Fig. 8) before it runs.
inline std::vector<GridPoint> run_paper_grid(
    const std::function<void(harness::ExperimentSpec&)>& tweak = {}) {
  std::vector<GridPoint> out;
  const std::pair<std::string, topo::ClosParams> topologies[] = {
      {"2-PoD", topo::ClosParams::paper_2pod()},
      {"4-PoD", topo::ClosParams::paper_4pod()},
  };
  for (const auto& [topo_name, params] : topologies) {
    for (harness::Proto proto : harness::kAllProtos) {
      for (topo::TestCase tc : topo::kAllTestCases) {
        harness::ExperimentSpec spec;
        spec.topo = params;
        spec.proto = proto;
        spec.tc = tc;
        if (tweak) tweak(spec);
        out.push_back(GridPoint{topo_name, params, proto, tc,
                                harness::run_averaged(spec, default_seeds())});
      }
    }
  }
  return out;
}

/// Prints one table per topology: rows are protocols, columns are TC1..TC4,
/// cells come from `cell(result)`.
inline void print_metric_tables(
    const std::vector<GridPoint>& grid, const std::string& unit,
    const std::function<std::string(const harness::AveragedResult&)>& cell) {
  for (const std::string topo_name : {"2-PoD", "4-PoD"}) {
    std::printf("%s topology (%s):\n", topo_name.c_str(), unit.c_str());
    harness::Table table({"protocol", "TC1", "TC2", "TC3", "TC4"});
    for (harness::Proto proto : harness::kAllProtos) {
      std::vector<std::string> row{std::string(to_string(proto))};
      for (topo::TestCase tc : topo::kAllTestCases) {
        for (const auto& p : grid) {
          if (p.topo_name == topo_name && p.proto == proto && p.tc == tc) {
            row.push_back(cell(p.result));
          }
        }
      }
      table.add_row(std::move(row));
    }
    table.print(/*with_csv=*/true);
    std::printf("\n");
  }
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Averaged over %zu seeds.\n", default_seeds().size());
  std::printf("==============================================================\n\n");
}

}  // namespace mrmtp::bench
