// Shared scaffolding for the figure-reproduction benches: the paper's
// 6-deployment grid (2-PoD and 4-PoD, each under MR-MTP, BGP/ECMP, and
// BGP/ECMP/BFD) swept over the four failure test cases, averaged over seeds
// the way the paper averages over runs.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

namespace mrmtp::bench {

inline const std::vector<std::uint64_t>& default_seeds() {
  static const std::vector<std::uint64_t> seeds{11, 23, 37, 51, 73};
  return seeds;
}

struct GridPoint {
  std::string topo_name;
  topo::ClosParams topo;
  harness::Proto proto;
  topo::TestCase tc;
  harness::AveragedResult result;
};

/// Runs the full paper grid; `tweak` may adjust each spec (e.g. reverse the
/// traffic flow for Fig. 8) before it runs.
inline std::vector<GridPoint> run_paper_grid(
    const std::function<void(harness::ExperimentSpec&)>& tweak = {}) {
  std::vector<GridPoint> out;
  const std::pair<std::string, topo::ClosParams> topologies[] = {
      {"2-PoD", topo::ClosParams::paper_2pod()},
      {"4-PoD", topo::ClosParams::paper_4pod()},
  };
  for (const auto& [topo_name, params] : topologies) {
    for (harness::Proto proto : harness::kAllProtos) {
      for (topo::TestCase tc : topo::kAllTestCases) {
        harness::ExperimentSpec spec;
        spec.topo = params;
        spec.proto = proto;
        spec.tc = tc;
        if (tweak) tweak(spec);
        out.push_back(GridPoint{topo_name, params, proto, tc,
                                harness::run_averaged(spec, default_seeds())});
      }
    }
  }
  return out;
}

/// Prints one table per topology: rows are protocols, columns are TC1..TC4,
/// cells come from `cell(result)`.
inline void print_metric_tables(
    const std::vector<GridPoint>& grid, const std::string& unit,
    const std::function<std::string(const harness::AveragedResult&)>& cell) {
  for (const std::string topo_name : {"2-PoD", "4-PoD"}) {
    std::printf("%s topology (%s):\n", topo_name.c_str(), unit.c_str());
    harness::Table table({"protocol", "TC1", "TC2", "TC3", "TC4"});
    for (harness::Proto proto : harness::kAllProtos) {
      std::vector<std::string> row{std::string(to_string(proto))};
      for (topo::TestCase tc : topo::kAllTestCases) {
        for (const auto& p : grid) {
          if (p.topo_name == topo_name && p.proto == proto && p.tc == tc) {
            row.push_back(cell(p.result));
          }
        }
      }
      table.add_row(std::move(row));
    }
    table.print(/*with_csv=*/true);
    std::printf("\n");
  }
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Averaged over %zu seeds.\n", default_seeds().size());
  std::printf("==============================================================\n\n");
}

}  // namespace mrmtp::bench
