// WCMP + flowlet A/B sweep: the same websearch campaign (50% load, TC1
// failure mid-run) is scored three ways per protocol — plain HRW/ECMP,
// capacity-weighted WCMP, and WCMP with flowlet-granularity rerouting — on
// the symmetric 8-PoD fabric and on the 2:1 oversubscribed asymmetric one.
//
// The claim under test: on the asymmetric fabric, hashing 1/N of the flows
// onto half-rate uplinks is exactly what drags the FCT tail, so weighting
// the rendezvous hash by link capacity must pull p99/p999 down, and flowlet
// rerouting may trim further under transient congestion — while max_gap and
// out_of_order stay bounded (a reroute inside an open flowlet would show up
// there first) and events/sec stays within noise of baseline (the weighted
// pick is O(n) like the unweighted one). On the symmetric fabric all three
// modes must be statistical ties. scripts/check.sh gates on all of this.
#include <fstream>

#include "bench_common.hpp"
#include "harness/workload.hpp"
#include "util/json.hpp"

namespace {

using namespace mrmtp;

struct Row {
  std::string topology;
  harness::WorkloadRunSpec spec;
};

util::Json run_point(const Row& row, harness::Table& table) {
  harness::WorkloadRunResult r = harness::run_workload(row.spec);
  const traffic::FlowStats& f = r.flows;
  const auto proto = std::string(to_string(row.spec.proto));
  const auto mode = std::string(to_string(row.spec.options.path_select));
  const double eps =
      r.wall_seconds > 0 ? static_cast<double>(r.events_fired) / r.wall_seconds
                         : 0;

  table.add_row({row.topology, proto, mode, std::to_string(f.flows_started),
                 std::to_string(f.flows_incomplete),
                 harness::fmt(f.fct_p50_ms, 2), harness::fmt(f.fct_p99_ms, 2),
                 harness::fmt(f.fct_p999_ms, 2),
                 std::to_string(f.out_of_order),
                 harness::fmt(f.max_gap_ms, 1),
                 std::to_string(f.flowlet_reroutes),
                 std::to_string(f.wcmp_weight_updates),
                 harness::fmt(eps / 1e6, 2)});

  util::Json point;
  point["topology"] = row.topology;
  point["protocol"] = proto;
  point["path_select"] = mode;
  point["load"] = row.spec.workload.load;
  point["failure"] = row.spec.inject_failure;
  point["initial_converged"] = r.initial_converged;
  point["flows_started"] = static_cast<std::int64_t>(f.flows_started);
  point["flows_completed"] = static_cast<std::int64_t>(f.flows_completed);
  point["flows_incomplete"] = static_cast<std::int64_t>(f.flows_incomplete);
  point["out_of_order"] = static_cast<std::int64_t>(f.out_of_order);
  point["duplicates"] = static_cast<std::int64_t>(f.duplicates);
  point["max_gap_ms"] = f.max_gap_ms;
  point["fct_p50_ms"] = f.fct_p50_ms;
  point["fct_p99_ms"] = f.fct_p99_ms;
  point["fct_p999_ms"] = f.fct_p999_ms;
  point["fct_mean_ms"] = f.fct_mean_ms;
  point["fct_max_ms"] = f.fct_max_ms;
  point["fct_samples"] = static_cast<std::int64_t>(f.fct_samples);
  point["flowlet_reroutes"] = static_cast<std::int64_t>(f.flowlet_reroutes);
  point["wcmp_weight_updates"] =
      static_cast<std::int64_t>(f.wcmp_weight_updates);
  point["data_queue_drops"] = static_cast<std::int64_t>(r.data_queue_drops);
  point["events_fired"] = static_cast<std::int64_t>(r.events_fired);
  point["wall_seconds"] = r.wall_seconds;
  point["events_per_sec"] = eps;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrmtp;
  using namespace mrmtp::bench;

  BenchFlags flags = BenchFlags::parse(argc, argv, "BENCH_wcmp.json");

  print_header("WCMP + flowlet sweep — tail FCT under asymmetry",
               "weighted-multipath extension; paper Section III.C load "
               "balancing");

  // Same edge provisioning rationale as the workload sweep: 100 Mb/s server
  // edges with deep queues so the only losses are the ones routing causes,
  // and flow sizes scaled to match the smaller edges.
  harness::WorkloadRunSpec base;
  base.seed = 11;
  base.threads = flags.threads;
  base.options.host_link.bandwidth_bps = 100'000'000ull;
  base.options.host_link.max_queue = sim::Duration::seconds(1);
  // 250 Mb/s fabric links (vs the deploy default 10G): each rack offers up
  // to 400 Mb/s into 375 Mb/s of striped uplink capacity on the asymmetric
  // fabric, so hashing half the flows onto the 125 Mb/s stripe genuinely
  // queues — at 10G the 2:1 stripe would be invisible (50x headroom) and
  // the A/B would measure nothing.
  base.options.link.bandwidth_bps = 250'000'000ull;
  base.options.link.max_queue = sim::Duration::seconds(1);
  base.workload.cdf = traffic::FlowSizeCdf::websearch();
  base.workload.load = 0.5;
  base.workload.size_scale = 0.02;
  base.workload.payload_size = 1000;
  base.inject_failure = true;

  // The asymmetric fabric carries the claim: stripe_rate {1.0, 0.5} halves
  // every second uplink, so every candidate set mixes full- and half-rate
  // members — the regime where equal-share hashing pays and WCMP collects.
  const std::pair<std::string, topo::ClosParams> fabrics[] = {
      {"8-PoD", {8, 2, 2, 4, 1}},
      {"8-PoD-asym-2:1", topo::ClosParams::asymmetric_8pod_oversub()},
  };
  const util::PathSelect modes[] = {util::PathSelect::kHrw,
                                    util::PathSelect::kWcmp,
                                    util::PathSelect::kWcmpFlowlet};

  harness::Table table({"topology", "protocol", "mode", "flows", "stranded",
                        "p50 ms", "p99 ms", "p999 ms", "ooo", "max_gap ms",
                        "reroutes", "w_updates", "Mev/s"});
  util::Json doc;
  doc["bench"] = "wcmp_sweep";
  stamp_campaign(doc, {11});
  util::JsonArray points;

  for (const auto& [name, params] : fabrics) {
    for (harness::Proto proto : {harness::Proto::kMtp, harness::Proto::kBgp}) {
      for (util::PathSelect mode : modes) {
        Row row{name, base};
        row.spec.topo = params;
        row.spec.proto = proto;
        row.spec.options.path_select = mode;
        points.push_back(run_point(row, table));
      }
    }
  }

  doc["points"] = std::move(points);
  table.print(/*with_csv=*/true);

  std::ofstream out(flags.json_out);
  out << doc.dump(/*pretty=*/true) << "\n";
  std::printf("\nWrote %s (%zu points).\n", flags.json_out.c_str(),
              doc["points"].as_array().size());

  std::printf(
      "\nShape check: on the 8-PoD-asym-2:1 rows, wcmp and wcmp+flowlet\n"
      "p99/p999 should sit at or below the hrw row for the same protocol —\n"
      "capacity-weighted hashing stops parking 1/N of the flows on half-rate\n"
      "uplinks. On the symmetric 8-PoD rows all three modes should tie.\n"
      "max_gap and out_of_order must stay bounded: flowlet reroutes only\n"
      "fire across idle gaps, never inside a burst.\n");
  return 0;
}
