// Figure 8: packets lost when the traffic sender is FAR from the failure
// point — the flow reversed relative to Fig. 7 (§VII.E).
//
// Expected shape (paper): more packets are lost at TC1/TC3 than in Fig. 7,
// because the routers steering the reverse flow only learn about those
// failures after a dead-timer expiry. BFD again helps BGP dramatically;
// MR-MTP stays consistently low.
#include "bench_common.hpp"

int main() {
  using namespace mrmtp;
  using namespace mrmtp::bench;

  print_header("Fig. 8 — Packet loss, sender away from the failure point",
               "paper Fig. 8 (Section VII.E)");
  std::printf("Flow: last host -> H-1-1 (reversed), ~333 pkt/s.\n\n");

  auto grid = run_paper_grid(
      [](harness::ExperimentSpec& spec) { spec.reverse_flow = true; });

  print_metric_tables(grid, "packets lost", [](const harness::AveragedResult& r) {
    return harness::fmt(r.packets_lost, 1);
  });

  std::printf("Longest receive gap (outage) in ms:\n\n");
  print_metric_tables(grid, "ms", [](const harness::AveragedResult& r) {
    return harness::fmt(r.outage_ms, 1);
  });

  std::printf(
      "Shape check: TC1/TC3 now lose packets too (remote dead-timer\n"
      "detection); BGP >> BGP+BFD >> MR-MTP ordering everywhere.\n");
  return 0;
}
