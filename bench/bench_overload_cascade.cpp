// Overload-cascade gate: proves the congestion-safe control plane works.
//
// Part 1 — the cascade and its containment. A seeded incast storm (12 hosts
// from other racks swamp one victim rack over 1 GbE links) runs against a
// converged 4-PoD fabric twice per protocol: once with the shared-FIFO
// egress queue (the ablation baseline) and once with priority queues. The
// FabricAuditor's liveness watcher scores every dead declaration against the
// physical link at that instant:
//   * BGP, shared FIFO: keepalive segments and their ACKs tail-drop behind
//     the incast, TCP retransmits exhaust / hold timers expire, and sessions
//     on demonstrably healthy links flap — false dead declarations > 0 and a
//     withdrawal storm follows. This is the cascade.
//   * BGP, priority: keepalives/ACKs ride the control band; false dead == 0.
//   * MR-MTP, either mode: every data frame is a keep-alive and the storm
//     itself refreshes dead timers, so MTP rides out the overload — the
//     paper's design holds even before prioritization (a finding, not a bug).
//
// Part 2 — unchanged steady-state throughput. The 8-PoD MR-MTP scalability
// point (TC1 + TC2 averaged over the sweep seeds, as BENCH_buffer.json
// measures it) is run in both queue modes in the same process; the priority
// transmitter's analytic fast path must keep events/sec within 3% of the
// shared-FIFO (PR 3 baseline) figure.
//
// Both parts land in BENCH_overload.json; scripts/check.sh enforces the
// false-dead and throughput gates.
#include <fstream>

#include "bench_common.hpp"
#include "harness/auditor.hpp"
#include "topo/chaos.hpp"
#include "traffic/host.hpp"
#include "util/json.hpp"

namespace {

using namespace mrmtp;

struct OverloadOutcome {
  bool converged = false;
  std::uint64_t downs = 0;
  std::uint64_t false_dead = 0;
  int cascade_depth = 0;
  std::uint64_t ctrl_drops = 0;
  std::uint64_t data_drops = 0;
  std::uint64_t ctrl_hw_ns = 0;
  std::uint64_t data_hw_ns = 0;
  std::uint64_t victim_received = 0;
  // Protocol-specific containment counters.
  std::uint64_t sessions_flapped = 0;   // BGP
  std::uint64_t retries_damped = 0;     // BGP
  std::uint64_t accepts_suppressed = 0; // MTP
  std::uint64_t updates_batched = 0;    // MTP
  std::uint64_t updates_deduped = 0;    // MTP
};

OverloadOutcome run_storm(harness::Proto proto, bool priority) {
  net::SimContext ctx(7);
  topo::ClosBlueprint bp(topo::ClosParams::paper_4pod());

  harness::DeployOptions options;
  // 1 GbE everywhere so a 12-sender incast (~9.6 Gb/s toward one rack) is a
  // deep overload instead of a rounding error on the default 10 GbE.
  options.link.bandwidth_bps = 1'000'000'000ull;
  options.host_link.bandwidth_bps = 1'000'000'000ull;
  options.link.priority_queues = priority;
  options.host_link.priority_queues = priority;
  // Containment knobs on in both modes (A/B isolates the queue discipline).
  options.mtp_timers.damping_penalty = 1500;
  options.mtp_timers.update_min_interval = sim::Duration::millis(2);
  options.bgp_timers.damping_penalty = 1500;

  harness::Deployment dep(ctx, bp, proto, options);
  dep.start();
  ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(4).ns()));

  OverloadOutcome out;
  out.converged = dep.converged();

  harness::FabricAuditor auditor(dep);
  auditor.watch_liveness();

  topo::ChaosEngine chaos(dep.network(), bp, /*seed=*/99);
  topo::ChaosEngine::StormSpec storm;
  storm.senders = 12;
  storm.duration = sim::Duration::millis(3500);
  storm.gap = sim::Duration::micros(10);  // ~0.8 Gb/s per sender
  storm.payload_size = 1000;
  const std::string victim =
      chaos.congestion_storm(storm, sim::Time::from_ns(
                                        sim::Duration::millis(4500).ns()));

  ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(10).ns()));

  out.downs = auditor.down_declarations();
  out.false_dead = auditor.false_dead_count();
  out.cascade_depth = auditor.max_cascade_depth();

  for (const auto& link : dep.network().links()) {
    const net::Link::Stats& ls = link->stats();
    for (const net::Link::DirStats* ds : {&ls.ab, &ls.ba}) {
      out.ctrl_drops += ds->dropped_queue_control;
      out.data_drops += ds->dropped_queue_full - ds->dropped_queue_control;
      out.ctrl_hw_ns = std::max(out.ctrl_hw_ns, ds->control_backlog_hw_ns);
      out.data_hw_ns = std::max(out.data_hw_ns, ds->data_backlog_hw_ns);
    }
  }

  auto* sink = dynamic_cast<traffic::Host*>(&dep.network().find(victim));
  if (sink != nullptr) out.victim_received = sink->sink_stats().received;

  for (std::uint32_t d = 0; d < dep.router_count(); ++d) {
    if (proto == harness::Proto::kMtp) {
      const auto& ms = dep.mtp(d).mtp_stats();
      out.accepts_suppressed += ms.accepts_suppressed;
      out.updates_batched += ms.updates_batched;
      out.updates_deduped += ms.updates_deduped;
    } else {
      const auto& bs = dep.bgp(d).bgp_stats();
      out.sessions_flapped += bs.sessions_flapped;
      out.retries_damped += bs.retries_damped;
    }
  }
  return out;
}

util::Json outcome_json(const OverloadOutcome& o, harness::Proto proto) {
  util::Json j;
  j["converged"] = o.converged;
  j["down_declarations"] = static_cast<std::int64_t>(o.downs);
  j["false_dead"] = static_cast<std::int64_t>(o.false_dead);
  j["cascade_depth"] = static_cast<std::int64_t>(o.cascade_depth);
  j["ctrl_queue_drops"] = static_cast<std::int64_t>(o.ctrl_drops);
  j["data_queue_drops"] = static_cast<std::int64_t>(o.data_drops);
  j["ctrl_backlog_hw_ns"] = static_cast<std::int64_t>(o.ctrl_hw_ns);
  j["data_backlog_hw_ns"] = static_cast<std::int64_t>(o.data_hw_ns);
  j["victim_received"] = static_cast<std::int64_t>(o.victim_received);
  if (proto == harness::Proto::kMtp) {
    j["accepts_suppressed"] = static_cast<std::int64_t>(o.accepts_suppressed);
    j["updates_batched"] = static_cast<std::int64_t>(o.updates_batched);
    j["updates_deduped"] = static_cast<std::int64_t>(o.updates_deduped);
  } else {
    j["sessions_flapped"] = static_cast<std::int64_t>(o.sessions_flapped);
    j["retries_damped"] = static_cast<std::int64_t>(o.retries_damped);
  }
  return j;
}

double steady_events_per_sec(bool priority) {
  const std::vector<std::uint64_t> seeds{11, 23, 37};
  harness::ExperimentSpec spec;
  spec.topo = topo::ClosParams{8, 2, 2, 4, 1};
  spec.proto = harness::Proto::kMtp;
  spec.settle = sim::Duration::seconds(5);
  spec.options.link.priority_queues = priority;
  spec.options.host_link.priority_queues = priority;
  spec.tc = topo::TestCase::kTC1;
  auto tc1 = harness::run_averaged(spec, seeds);
  spec.tc = topo::TestCase::kTC2;
  auto tc2 = harness::run_averaged(spec, seeds);
  return (tc1.events_per_sec + tc2.events_per_sec) / 2;
}

}  // namespace

int main() {
  using namespace mrmtp;
  using namespace mrmtp::bench;

  print_header(
      "Overload cascade — incast vs. the control plane, shared FIFO vs. "
      "priority",
      "robustness beyond the paper's clean failures (ROADMAP north star)");

  util::Json doc;
  doc["bench"] = "overload_cascade";
  stamp_campaign(doc, {11, 23, 37});

  // --- 1. the seeded incast storm, {MTP, BGP} x {shared, priority} ---
  harness::Table table({"protocol", "queue mode", "downs", "false_dead",
                        "cascade_depth", "ctrl_drops", "data_drops",
                        "victim_rx"});
  util::Json gates;  // flat keys so check.sh can grep them unambiguously
  for (harness::Proto proto : {harness::Proto::kMtp, harness::Proto::kBgp}) {
    util::Json per_proto;
    for (bool priority : {false, true}) {
      OverloadOutcome o = run_storm(proto, priority);
      const char* mode = priority ? "priority" : "shared";
      table.add_row({std::string(to_string(proto)), mode,
                     std::to_string(o.downs), std::to_string(o.false_dead),
                     std::to_string(o.cascade_depth),
                     std::to_string(o.ctrl_drops),
                     std::to_string(o.data_drops),
                     std::to_string(o.victim_received)});
      per_proto[mode] = outcome_json(o, proto);
      std::string key = std::string(proto == harness::Proto::kMtp ? "mtp"
                                                                  : "bgp") +
                        "_" + mode + "_false_dead";
      gates[key] = static_cast<std::int64_t>(o.false_dead);
    }
    doc[proto == harness::Proto::kMtp ? "mtp" : "bgp"] = std::move(per_proto);
  }
  table.print(/*with_csv=*/true);

  // --- 2. steady-state throughput, shared (PR 3 baseline path) vs priority ---
  std::printf("\n8-PoD steady-state events/sec (MR-MTP, TC1+TC2 mean):\n");
  const double ev_shared = steady_events_per_sec(/*priority=*/false);
  const double ev_priority = steady_events_per_sec(/*priority=*/true);
  const double ratio = ev_shared > 0 ? ev_priority / ev_shared : 0;
  harness::Table steady({"queue mode", "events/sec"});
  steady.add_row({"shared", harness::fmt(ev_shared, 0)});
  steady.add_row({"priority", harness::fmt(ev_priority, 0)});
  steady.print(/*with_csv=*/true);
  std::printf("priority/shared ratio: %.4f\n", ratio);

  util::Json st;
  st["events_per_sec_shared"] = ev_shared;
  st["events_per_sec_priority"] = ev_priority;
  st["priority_vs_shared_ratio"] = ratio;
  // The PR 3 scalability figure this machine produced (BENCH_buffer.json);
  // the check.sh gate holds priority-mode throughput within 3% of it.
  st["baseline_events_per_sec"] = 3.56e6;
  doc["steady_state"] = std::move(st);
  gates["events_per_sec_priority"] = ev_priority;
  doc["gates"] = std::move(gates);

  const char* out_path = "BENCH_overload.json";
  std::ofstream out(out_path);
  out << doc.dump(/*pretty=*/true) << "\n";
  std::printf("\nWrote %s.\n", out_path);

  std::printf(
      "\nShape check: BGP must show false_dead > 0 under the shared FIFO and\n"
      "exactly 0 with priority queues; MR-MTP must show 0 in both (data\n"
      "frames are keep-alives); the priority/shared events-per-sec ratio\n"
      "must stay within 3%% of 1.\n");
  return 0;
}
