// Figure 5: blast radius — the number of routers that updated their
// routing/VID tables after each failure (network stability, §VII.B).
//
// Expected shape (paper): 2-PoD — MR-MTP {TC1/2: 3 ToRs, TC3/4: 1 router}
// vs BGP {9, 3}; 4-PoD — MR-MTP {7, 3} vs BGP {15, 5}. BFD does not change
// the blast radius. Three counting variants are printed (see EXPERIMENTS.md
// §Fig 5 for how each maps to the paper's numbers).
#include "bench_common.hpp"

int main() {
  using namespace mrmtp;
  using namespace mrmtp::bench;

  print_header("Fig. 5 — Blast radius (routers updating tables)",
               "paper Fig. 5 (Section VII.B)");

  auto grid = run_paper_grid();

  std::printf(
      "Primary metric — paper-comparable count (MR-MTP: ToR exclusion\n"
      "updates at TC1/TC2, update-driven spine changes at TC3/TC4;\n"
      "BGP: every router whose RIB changed):\n\n");
  print_metric_tables(grid, "routers", [](const harness::AveragedResult& r) {
    // The harness reports both counts; the paper's MTP methodology counts
    // ToRs for ToR-link failures and spine updates for spine-link failures.
    // For BGP blast_any == blast of the paper.
    return harness::fmt(r.blast_any, 1) + " / " +
           harness::fmt(r.blast_remote, 1) + " / " +
           harness::fmt(r.blast_leaf_remote, 1);
  });

  std::printf(
      "Cell format: ANY / REMOTE / LEAF-REMOTE where\n"
      "  ANY         = routers whose forwarding state changed at all\n"
      "                (the paper's BGP counting),\n"
      "  REMOTE      = changed due to *received* updates, failure-adjacent\n"
      "                routers excluded (paper's MR-MTP TC3/TC4 numbers),\n"
      "  LEAF-REMOTE = ToRs only (paper's MR-MTP TC1/TC2 numbers).\n"
      "Expected: MR-MTP LEAF-REMOTE = 3 (2-PoD) / 7 (4-PoD) at TC1-2,\n"
      "REMOTE = 1 / 3 at TC3-4; BGP ANY = ~9 / ~15 at TC1-2 and 3 / 5 at\n"
      "TC3-4; BFD identical to BGP.\n");
  return 0;
}
