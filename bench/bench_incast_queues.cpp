// Incast study: many-to-one server traffic into finite access-link queues —
// substrate realism beyond the paper's evaluation (its testbed had kernel
// queues implicitly). Sweeps the victim's access-queue depth and compares
// the fabrics: both protocols hash flows identically, so loss should be a
// property of the queue, not the routing protocol.
#include "bench_common.hpp"

namespace {

using namespace mrmtp;

struct IncastResult {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t queue_drops = 0;
};

IncastResult run_incast(harness::Proto proto, sim::Duration queue_depth) {
  net::SimContext ctx(19);
  topo::ClosBlueprint bp(topo::ClosParams::paper_4pod());
  harness::DeployOptions options;
  options.host_link.bandwidth_bps = 100'000'000;  // 100 Mb/s access links
  options.host_link.max_queue = queue_depth;
  harness::Deployment dep(ctx, bp, proto, options);
  dep.start();
  ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(5).ns()));

  auto& victim = dep.host(0);
  victim.listen();
  // Seven synchronized senders, 1000-byte packets: ~187 Mb/s offered into
  // a 100 Mb/s access link for 2 s.
  for (std::uint32_t h = 1; h < dep.host_count(); ++h) {
    traffic::FlowConfig flow;
    flow.dst = victim.addr();
    flow.count = 5000;
    flow.gap = sim::Duration::micros(300);
    flow.payload_size = 1000;
    dep.host(h).start_flow(flow);
  }
  ctx.sched.run_until(ctx.now() + sim::Duration::seconds(3));

  IncastResult r;
  r.sent = 7 * 5000;
  r.delivered = victim.sink_stats().received;
  for (const auto& link : dep.network().links()) {
    r.queue_drops += link->stats().dropped_queue_full();
  }
  return r;
}

}  // namespace

int main() {
  using namespace mrmtp;
  using namespace mrmtp::bench;

  print_header("Incast — many-to-one loss vs access-queue depth",
               "substrate extension (finite queues)");
  std::printf("7 senders x 1000 B @ ~3333 pkt/s each into one 100 Mb/s "
              "access link.\n\n");

  harness::Table table({"queue depth", "protocol", "offered", "delivered",
                        "delivered %", "queue drops"});
  for (auto depth : {sim::Duration::micros(100), sim::Duration::micros(500),
                     sim::Duration::millis(2), sim::Duration::millis(10)}) {
    for (harness::Proto proto : {harness::Proto::kMtp, harness::Proto::kBgp}) {
      IncastResult r = run_incast(proto, depth);
      table.add_row(
          {depth.str(), std::string(to_string(proto)), std::to_string(r.sent),
           std::to_string(r.delivered),
           harness::fmt(100.0 * static_cast<double>(r.delivered) /
                            static_cast<double>(r.sent),
                        1),
           std::to_string(r.queue_drops)});
    }
  }
  table.print(/*with_csv=*/true);

  std::printf(
      "\nShape check: delivery rises with queue depth and saturates at the\n"
      "access-link capacity share (~53%% of offered load); MR-MTP and\n"
      "BGP/ECMP behave identically because loss happens at the congested\n"
      "edge queue, not in the (equal-cost-balanced) fabric.\n");
  return 0;
}
