// Production-workload FCT sweep: the WorkloadEngine drives empirical
// flow-size traffic (websearch / hadoop CDFs) at 30/50/70% offered load over
// the 8-PoD symmetric and asymmetric fabrics while a TC1 link fails
// mid-campaign, and records the per-flow completion-time quantiles for
// MR-MTP vs BGP/ECMP — the user-visible cost of slow reroute. BGP's 3 s
// hold timer strands every flow hashed onto the dead path until it expires;
// MR-MTP's fast local reroute keeps the p99 close to the no-failure
// baseline. Incast (N->1) and all-to-all (shuffle) rows complete the
// scenario matrix. Everything lands in BENCH_workload.json.
#include <fstream>

#include "bench_common.hpp"
#include "harness/workload.hpp"
#include "util/json.hpp"

namespace {

using namespace mrmtp;

struct Row {
  std::string topology;
  harness::WorkloadRunSpec spec;
};

util::Json run_point(const Row& row, harness::Table& table) {
  harness::WorkloadRunResult r = harness::run_workload(row.spec);
  const traffic::FlowStats& f = r.flows;
  const auto scenario = std::string(to_string(row.spec.workload.scenario));
  const auto proto = std::string(to_string(row.spec.proto));

  table.add_row({row.topology, proto, scenario,
                 harness::fmt(row.spec.workload.load, 2),
                 std::to_string(f.flows_started),
                 std::to_string(f.flows_completed),
                 std::to_string(f.flows_incomplete),
                 harness::fmt(f.fct_p50_ms, 2), harness::fmt(f.fct_p99_ms, 2),
                 harness::fmt(f.fct_p999_ms, 2),
                 std::to_string(r.data_queue_drops)});

  util::Json point;
  point["topology"] = row.topology;
  point["protocol"] = proto;
  point["scenario"] = scenario;
  point["cdf"] = row.spec.workload.cdf.name();
  point["load"] = row.spec.workload.load;
  point["failure"] = row.spec.inject_failure;
  point["initial_converged"] = r.initial_converged;
  point["flows_started"] = static_cast<std::int64_t>(f.flows_started);
  point["flows_completed"] = static_cast<std::int64_t>(f.flows_completed);
  point["flows_incomplete"] = static_cast<std::int64_t>(f.flows_incomplete);
  point["packets_sent"] = static_cast<std::int64_t>(f.packets_sent);
  point["unique_delivered"] = static_cast<std::int64_t>(f.unique_delivered);
  point["duplicates"] = static_cast<std::int64_t>(f.duplicates);
  point["out_of_order"] = static_cast<std::int64_t>(f.out_of_order);
  point["bytes_delivered"] = static_cast<std::int64_t>(f.bytes_delivered);
  point["fct_p50_ms"] = f.fct_p50_ms;
  point["fct_p99_ms"] = f.fct_p99_ms;
  point["fct_p999_ms"] = f.fct_p999_ms;
  point["fct_mean_ms"] = f.fct_mean_ms;
  point["fct_max_ms"] = f.fct_max_ms;
  point["fct_samples"] = static_cast<std::int64_t>(f.fct_samples);
  point["data_queue_drops"] = static_cast<std::int64_t>(r.data_queue_drops);
  point["events_fired"] = static_cast<std::int64_t>(r.events_fired);
  point["wall_seconds"] = r.wall_seconds;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrmtp;
  using namespace mrmtp::bench;

  BenchFlags flags = BenchFlags::parse(argc, argv, "BENCH_workload.json");

  print_header("Production workload sweep — per-flow FCT under failure",
               "workload extension; paper Section VI 'Traffic Tests'");

  // 100 Mb/s server edges keep per-point runtime ~seconds while the deeper
  // 10G fabric stays uncongested except where the sweep intends it; flow
  // sizes are scaled down to match (the distribution was measured on 10G
  // edges). Edge buffers are provisioned deep on purpose: probe flows never
  // retransmit, so a congestion tail-drop censors a flow for every protocol
  // identically and would swamp the FCT signal — with queueing instead of
  // loss at the edge, the only packets that die are the ones routing kills,
  // which is exactly what the sweep measures.
  harness::WorkloadRunSpec base;
  base.seed = 11;
  base.options.host_link.bandwidth_bps = 100'000'000ull;
  base.options.host_link.max_queue = sim::Duration::seconds(1);
  base.workload.cdf = traffic::FlowSizeCdf::websearch();
  base.workload.size_scale = 0.02;
  base.workload.payload_size = 1000;

  const std::pair<std::string, topo::ClosParams> fabrics[] = {
      {"8-PoD", {8, 2, 2, 4, 1}},
      {"8-PoD-asym", topo::ClosParams::asymmetric_8pod()},
  };
  const double loads[] = {0.3, 0.5, 0.7};

  harness::Table table({"topology", "protocol", "scenario", "load", "flows",
                        "complete", "incomplete", "p50 ms", "p99 ms",
                        "p999 ms", "drops"});
  util::Json doc;
  doc["bench"] = "workload_sweep";
  stamp_campaign(doc, {11});
  util::JsonArray points;

  // --- the headline sweep: Poisson random-pairs under a TC1 failure ---
  for (const auto& [name, params] : fabrics) {
    for (harness::Proto proto : {harness::Proto::kMtp, harness::Proto::kBgp}) {
      for (double load : loads) {
        Row row{name, base};
        row.spec.topo = params;
        row.spec.proto = proto;
        row.spec.workload.scenario = traffic::Scenario::kRandomPairs;
        row.spec.workload.load = load;
        row.spec.inject_failure = true;
        points.push_back(run_point(row, table));
      }
    }
  }

  // --- scenario rows: incast fan-in and all-to-all shuffle, no failure ---
  for (harness::Proto proto : {harness::Proto::kMtp, harness::Proto::kBgp}) {
    Row incast{"8-PoD", base};
    incast.spec.topo = fabrics[0].second;
    incast.spec.proto = proto;
    incast.spec.workload.cdf = traffic::FlowSizeCdf::hadoop();
    incast.spec.workload.size_scale = 1.0;
    incast.spec.workload.scenario = traffic::Scenario::kIncast;
    incast.spec.workload.incast_fanin = 8;
    incast.spec.workload.load = 0.5;
    points.push_back(run_point(incast, table));

    Row shuffle{"8-PoD", base};
    shuffle.spec.topo = fabrics[0].second;
    shuffle.spec.proto = proto;
    shuffle.spec.workload.scenario = traffic::Scenario::kAllToAll;
    points.push_back(run_point(shuffle, table));
  }

  doc["points"] = std::move(points);
  table.print(/*with_csv=*/true);

  std::ofstream out(flags.json_out);
  out << doc.dump(/*pretty=*/true) << "\n";
  std::printf("\nWrote %s (%zu points).\n", flags.json_out.c_str(),
              doc["points"].as_array().size());

  std::printf(
      "\nShape check: on every failure row BGP/ECMP's p99 FCT should sit\n"
      "near its 3 s hold timer (flows stranded on the dead path are censored\n"
      "at the horizon) while MR-MTP's stays within an RTT-scale factor of\n"
      "its p50 — fast local reroute turns a control-plane outage into a\n"
      "data-plane blip. Incomplete counts tell the same story as quantiles.\n");
  return 0;
}
