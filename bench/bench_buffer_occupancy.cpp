// Buffers-scarce incast sweep: finite shared switch pools (buffer size x
// incast fan-in x congestion mode) on the 8-PoD fabric, MR-MTP vs BGP/ECMP.
// "taildrop" is the commodity configuration congestion collapse lives in —
// fully shared pool (alpha 0), no ECN, no PFC, open-loop senders — so one
// 64:1 incast fills some pool to ~100% and every refused admission kills a
// probe flow for good. "ecn_pfc" turns on the designed relief valves:
// dynamic-threshold sharing, CE marking with closed-loop sender backoff, and
// hop-by-hop PFC PAUSE that blocks senders instead of dropping their
// packets. The artifact (BENCH_buffer_occupancy.json) records FCT quantiles,
// stranded-flow counts, occupancy high-water, the ECN/PFC counters, and the
// auditor's PFC-deadlock verdicts; scripts/check.sh gates on it.
#include <fstream>

#include "bench_common.hpp"
#include "harness/workload.hpp"
#include "util/json.hpp"

namespace {

using namespace mrmtp;

struct Row {
  std::string mode;  // "taildrop" | "ecn_pfc"
  bool chaos = false;
  harness::WorkloadRunSpec spec;
};

util::Json run_point(const Row& row, harness::Table& table) {
  harness::WorkloadRunResult r = harness::run_workload(row.spec);
  const traffic::FlowStats& f = r.flows;
  const auto proto = std::string(to_string(row.spec.proto));
  const auto pool_kib = static_cast<std::int64_t>(
      row.spec.options.switch_buffer->pool_bytes >> 10);

  table.add_row(
      {proto, row.mode, std::to_string(row.spec.workload.incast_fanin),
       std::to_string(pool_kib), row.chaos ? "yes" : "no",
       std::to_string(f.flows_started), std::to_string(f.flows_completed),
       std::to_string(f.flows_incomplete), harness::fmt(f.fct_p50_ms, 1),
       harness::fmt(f.fct_p99_ms, 1), harness::fmt(r.occupancy_hw_ratio, 3),
       std::to_string(r.buffer_drops), std::to_string(r.ecn_marked),
       std::to_string(r.pause_tx), std::to_string(r.pfc_deadlocks)});

  util::Json point;
  point["protocol"] = proto;
  point["mode"] = row.mode;
  point["fanin"] = static_cast<std::int64_t>(row.spec.workload.incast_fanin);
  point["pool_kib"] = pool_kib;
  point["chaos"] = row.chaos;
  point["initial_converged"] = r.initial_converged;
  point["flows_started"] = static_cast<std::int64_t>(f.flows_started);
  point["flows_completed"] = static_cast<std::int64_t>(f.flows_completed);
  point["flows_incomplete"] = static_cast<std::int64_t>(f.flows_incomplete);
  point["fct_p50_ms"] = f.fct_p50_ms;
  point["fct_p99_ms"] = f.fct_p99_ms;
  point["fct_p999_ms"] = f.fct_p999_ms;
  point["fct_mean_ms"] = f.fct_mean_ms;
  point["fct_max_ms"] = f.fct_max_ms;
  point["ecn_marked"] = static_cast<std::int64_t>(r.ecn_marked);
  point["ecn_echoes"] = static_cast<std::int64_t>(f.ecn_echoes);
  point["pause_tx"] = static_cast<std::int64_t>(r.pause_tx);
  point["pause_rx"] = static_cast<std::int64_t>(r.pause_rx);
  point["pause_blocked_ms"] =
      static_cast<double>(f.pause_blocked_ns) / 1e6;
  point["buffer_drops"] = static_cast<std::int64_t>(r.buffer_drops);
  point["data_queue_drops"] = static_cast<std::int64_t>(r.data_queue_drops);
  point["ctrl_queue_drops"] = static_cast<std::int64_t>(r.ctrl_queue_drops);
  point["occupancy_hw_ratio"] = r.occupancy_hw_ratio;
  point["pfc_deadlocks"] = static_cast<std::int64_t>(r.pfc_deadlocks);
  point["audit_violations"] = static_cast<std::int64_t>(r.audit_violations);
  point["events_fired"] = static_cast<std::int64_t>(r.events_fired);
  point["wall_seconds"] = r.wall_seconds;
  // Host-dependent throughput telemetry (ignored by bench_diff.py).
  point["events_per_wall_sec"] =
      r.wall_seconds > 0 ? static_cast<double>(r.events_fired) / r.wall_seconds
                         : 0.0;
  return point;
}

/// Shallow merchant-silicon switches under a synchronized incast. The whole
/// fan-in fires at once, so the victim ToR's shared pool — not any route —
/// is the bottleneck the modes separate on.
harness::WorkloadRunSpec base_spec() {
  harness::WorkloadRunSpec spec;
  spec.topo = {8, 2, 2, 4, 5};  // 80 hosts: room for a true 64:1 fan-in
  spec.seed = 11;
  spec.options.host_link.bandwidth_bps = 100'000'000ull;
  spec.options.host_link.max_queue = sim::Duration::millis(50);
  spec.workload.cdf = traffic::FlowSizeCdf::websearch();
  spec.workload.size_scale = 0.05;
  spec.workload.payload_size = 1000;
  spec.workload.scenario = traffic::Scenario::kIncast;
  spec.workload.load = 0.8;
  spec.launch_window = sim::Duration::millis(400);
  spec.drain = sim::Duration::seconds(3);
  spec.audit = true;  // PFC-deadlock scan on every point
  return spec;
}

net::SwitchBufferParams buffered_mode(std::uint64_t pool_bytes) {
  net::SwitchBufferParams p;
  p.pool_bytes = pool_bytes;
  p.port_reserve_bytes = 4u << 10;
  p.dt_alpha = 1.0;
  p.ecn_data_threshold = 8u << 10;
  p.pfc_xoff_bytes = 8u << 10;
  p.pfc_xon_bytes = 4u << 10;
  return p;
}

net::SwitchBufferParams taildrop_mode(std::uint64_t pool_bytes) {
  net::SwitchBufferParams p;
  p.pool_bytes = pool_bytes;
  p.dt_alpha = 0.0;  // fully shared: one incast may take the entire pool
  p.ecn_data_threshold = 0;
  p.pfc_xoff_bytes = 0;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrmtp;
  using namespace mrmtp::bench;

  BenchFlags flags =
      BenchFlags::parse(argc, argv, "BENCH_buffer_occupancy.json");

  print_header("Buffer-occupancy sweep — incast with finite switch pools",
               "robustness extension; FatPaths-style ECN fabric assumptions");

  constexpr std::uint64_t kBasePool = 256u << 10;

  harness::Table table({"protocol", "mode", "fanin", "pool KiB", "chaos",
                        "flows", "complete", "stranded", "p50 ms", "p99 ms",
                        "occ_hw", "buf_drops", "ecn", "pause_tx",
                        "deadlocks"});
  util::Json doc;
  doc["bench"] = "buffer_occupancy";
  stamp_campaign(doc, {11});
  util::JsonArray points;

  // --- the headline grid: fan-in x mode x protocol at the base pool ---
  for (harness::Proto proto : {harness::Proto::kMtp, harness::Proto::kBgp}) {
    for (std::uint32_t fanin : {16u, 64u}) {
      for (const char* mode : {"taildrop", "ecn_pfc"}) {
        Row row{mode, /*chaos=*/false, base_spec()};
        row.spec.proto = proto;
        row.spec.threads = flags.threads;
        row.spec.workload.incast_fanin = fanin;
        const bool ecn = std::string(mode) == "ecn_pfc";
        row.spec.options.switch_buffer =
            ecn ? buffered_mode(kBasePool) : taildrop_mode(kBasePool);
        row.spec.workload.ecn_response = ecn;
        points.push_back(run_point(row, table));
      }
    }
  }

  // --- buffer-size sweep at the worst point (64:1, ECN+PFC, MR-MTP) ---
  for (std::uint64_t pool : {64u << 10, 1u << 20}) {
    Row row{"ecn_pfc", /*chaos=*/false, base_spec()};
    row.spec.threads = flags.threads;
    row.spec.workload.incast_fanin = 64;
    row.spec.options.switch_buffer = buffered_mode(pool);
    row.spec.workload.ecn_response = true;
    points.push_back(run_point(row, table));
  }

  // --- seeded buffer-squeeze chaos on the protected mode: pools shrink to
  // a quarter mid-campaign and heal; the deadlock verdict must stay zero ---
  {
    Row row{"ecn_pfc", /*chaos=*/true, base_spec()};
    row.spec.threads = flags.threads;
    row.spec.workload.incast_fanin = 64;
    row.spec.options.switch_buffer = buffered_mode(kBasePool);
    row.spec.workload.ecn_response = true;
    row.spec.chaos_squeezes = 8;
    row.spec.squeeze_frac = 0.1;
    points.push_back(run_point(row, table));
  }

  doc["points"] = std::move(points);
  table.print(/*with_csv=*/true);

  std::ofstream out(flags.json_out);
  out << doc.dump(/*pretty=*/true) << "\n";
  std::printf("\nWrote %s (%zu points).\n", flags.json_out.c_str(),
              doc["points"].as_array().size());

  std::printf(
      "\nShape check: taildrop at 64:1 should fill some pool to ~100%%\n"
      "(occ_hw ~ 1.0) and strand most of the fan-in — refused admissions\n"
      "kill open-loop probe flows for good — while ecn_pfc completes more\n"
      "flows at a lower p99 by pausing and marking instead of dropping.\n"
      "ctrl drops must be zero everywhere (the control band is never\n"
      "pool-charged) and the auditor must report zero PFC deadlocks, chaos\n"
      "row included.\n");
  return 0;
}
