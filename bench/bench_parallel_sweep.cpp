// Parallel-engine sweep: the same failure experiment run on the classic
// single-context engine (threads=1) and on the PoD-sharded conservative
// engine at 2/4/8 shards, over the 8- and 16-PoD fabrics. Records simulator
// throughput (events/sec), speedup over the 1-thread baseline, and the
// engine's own health counters (barrier windows, horizon stalls, mailbox
// traffic), and writes everything to BENCH_parallel.json.
//
// The sweep also cross-checks determinism the cheap way: per-run fabric
// counters (packets lost, control bytes, events fired) are recorded per
// thread count, so a divergence between shard counts is visible right in the
// artifact. The authoritative equivalence check lives in
// tests/parallel_engine_test.cpp.
//
// Note on speedup: shards run on real threads, so measured speedup is
// bounded by the host's core count (recorded as hardware_concurrency in the
// artifact). On a single-core host every thread count collapses to ~1x and
// only the overhead (windows, stalls) remains meaningful.
#include <fstream>
#include <thread>

#include "bench_common.hpp"
#include "util/json.hpp"

int main(int argc, char** argv) {
  using namespace mrmtp;
  using namespace mrmtp::bench;

  BenchFlags flags = BenchFlags::parse(argc, argv, "BENCH_parallel.json");

  print_header("Parallel fabric engine — shard-count sweep",
               "perf extension; paper Section IX 'Scaling the DCN'");
  std::printf("hardware_concurrency: %u\n\n",
              std::thread::hardware_concurrency());

  const std::pair<std::string, topo::ClosParams> sweeps[] = {
      {"8-PoD", {8, 2, 2, 4, 1}},
      {"16-PoD", {16, 2, 4, 8, 1}},
  };
  const std::uint32_t thread_counts[] = {1, 2, 4, 8};

  harness::Table table({"topology", "protocol", "threads", "shards",
                        "events/sec", "speedup", "windows", "coalesced",
                        "stalls", "cross frames", "pkts lost"});
  util::Json doc;
  doc["bench"] = "parallel_sweep";
  stamp_campaign(doc, {11});
  doc["hardware_concurrency"] =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  util::JsonArray points;

  for (const auto& [name, params] : sweeps) {
    for (harness::Proto proto :
         {harness::Proto::kMtp, harness::Proto::kBgpBfd}) {
      double base_eps = 0;
      for (std::uint32_t threads : thread_counts) {
        harness::ExperimentSpec spec;
        spec.topo = params;
        spec.proto = proto;
        spec.tc = topo::TestCase::kTC1;
        spec.seed = 11;
        spec.settle = sim::Duration::seconds(5);
        spec.threads = threads;
        harness::ExperimentResult r = harness::run_failure_experiment(spec);

        double eps = r.wall_seconds > 0
                         ? static_cast<double>(r.events_fired) / r.wall_seconds
                         : 0;
        if (threads == 1) base_eps = eps;
        double speedup = base_eps > 0 ? eps / base_eps : 0;
        table.add_row({name, std::string(to_string(proto)),
                       std::to_string(threads),
                       std::to_string(r.threads_used), harness::fmt(eps, 0),
                       harness::fmt(speedup, 2),
                       std::to_string(r.sync_windows),
                       std::to_string(r.coalesced_windows),
                       std::to_string(r.horizon_stalls),
                       std::to_string(r.cross_shard_frames),
                       std::to_string(r.packets_lost)});

        util::Json point;
        point["topology"] = name;
        point["routers"] = static_cast<std::int64_t>(params.router_count());
        point["protocol"] = std::string(to_string(proto));
        point["threads"] = static_cast<std::int64_t>(threads);
        point["shards_used"] = static_cast<std::int64_t>(r.threads_used);
        point["events_per_sec"] = eps;
        point["speedup_vs_1"] = speedup;
        point["wall_seconds"] = r.wall_seconds;
        point["events_fired"] = static_cast<std::int64_t>(r.events_fired);
        point["sync_windows"] = static_cast<std::int64_t>(r.sync_windows);
        point["coalesced_windows"] =
            static_cast<std::int64_t>(r.coalesced_windows);
        point["pair_lookahead_min_ns"] =
            static_cast<std::int64_t>(r.pair_lookahead_min_ns);
        point["pair_lookahead_max_ns"] =
            static_cast<std::int64_t>(r.pair_lookahead_max_ns);
        point["horizon_stalls"] =
            static_cast<std::int64_t>(r.horizon_stalls);
        point["cross_shard_frames"] =
            static_cast<std::int64_t>(r.cross_shard_frames);
        point["mailbox_high_water"] =
            static_cast<std::int64_t>(r.mailbox_high_water);
        point["packets_lost"] = static_cast<std::int64_t>(r.packets_lost);
        point["ctrl_bytes_raw"] =
            static_cast<std::int64_t>(r.ctrl_bytes_raw);
        point["convergence_ms"] = r.convergence.to_millis();
        points.push_back(std::move(point));
      }
    }
  }
  doc["points"] = std::move(points);

  table.print(/*with_csv=*/true);

  std::ofstream out(flags.json_out);
  out << doc.dump(/*pretty=*/true) << "\n";
  std::printf("\nWrote %s (%zu points).\n", flags.json_out.c_str(),
              doc["points"].as_array().size());

  std::printf(
      "\nShape check: per-run fabric outcomes (pkts lost, ctrl bytes,\n"
      "convergence) must be identical across every sharded row (threads >= 2)\n"
      "of a topology/protocol — the conservative engine is deterministic at\n"
      "any shard count. The 1-thread row rides the classic engine, whose\n"
      "outcomes may differ slightly (sharded runs draw from per-entity RNG\n"
      "streams; the classic path keeps the legacy shared stream bit-exact).\n"
      "Speedup should approach min(threads, PoDs, cores) while horizon\n"
      "stalls stay a small fraction of windows.\n");
  return 0;
}
