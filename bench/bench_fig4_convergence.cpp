// Figure 4: network convergence time (ms) after an interface failure at
// TC1..TC4, for MR-MTP vs BGP/ECMP vs BGP/ECMP/BFD on the 2-PoD and 4-PoD
// folded-Clos topologies.
//
// Expected shape (paper §VII.A): MR-MTP converges within its 100 ms dead
// timer at TC1/TC3 and near-instantly at TC2/TC4; BGP needs its ~3 s hold
// timer at TC1/TC3, which BFD cuts to ~300 ms. MR-MTP beats both everywhere.
#include "bench_common.hpp"

int main() {
  using namespace mrmtp;
  using namespace mrmtp::bench;

  print_header("Fig. 4 — Convergence time after interface failure",
               "paper Fig. 4 (Section VII.A)");

  auto grid = run_paper_grid();
  print_metric_tables(grid, "ms, mean \xc2\xb1stddev over seeds",
                      [](const harness::AveragedResult& r) {
                        return r.convergence_dist.str(1);
                      });

  std::printf(
      "Shape check: TC2/TC4 converge faster than failure detection (the\n"
      "failing side originates updates immediately); TC1/TC3 are dominated\n"
      "by the dead/hold timer. MR-MTP < BGP+BFD < BGP at every point.\n");
  return 0;
}
