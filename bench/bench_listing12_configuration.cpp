// Listings 1 & 2: router-configuration burden (§VII.G).
//
// Expected shape (paper): every BGP router needs its own FRR configuration,
// growing linearly with its interface count and with the DCN size; MR-MTP
// configures the entire fabric with one small JSON file (tier per device
// plus each ToR's rack port).
#include "bench_common.hpp"
#include "bgp/router.hpp"
#include "topo/clos.hpp"

namespace {

using namespace mrmtp;

std::size_t count_lines(const std::string& s) {
  std::size_t n = 0;
  for (char c : s) n += c == '\n' ? 1 : 0;
  return n;
}

/// Total BGP configuration across every router of a blueprint.
std::pair<std::size_t, std::size_t> bgp_config_size(
    const topo::ClosBlueprint& bp) {
  net::SimContext ctx(1);
  harness::Deployment dep(ctx, bp, harness::Proto::kBgpBfd, {});
  std::size_t lines = 0;
  std::size_t bytes = 0;
  for (std::uint32_t d = 0; d < dep.router_count(); ++d) {
    std::string text = dep.bgp(d).config_text();
    lines += count_lines(text);
    bytes += text.size();
  }
  return {lines, bytes};
}

}  // namespace

int main() {
  using namespace mrmtp;
  using namespace mrmtp::bench;

  print_header("Listings 1/2 — Configuration burden: BGP vs MR-MTP",
               "paper Listings 1 and 2 (Section VII.G)");

  // The example artifacts themselves.
  {
    topo::ClosBlueprint bp(topo::ClosParams::paper_4pod());
    net::SimContext ctx(1);
    harness::Deployment dep(ctx, bp, harness::Proto::kBgpBfd, {});
    std::printf("--- Listing 1: generated FRR configuration for T-1 ---\n%s\n",
                dep.bgp(bp.top_spine(1)).config_text().c_str());
    std::printf("--- Listing 2: the ONE MR-MTP JSON file for the whole "
                "4-PoD DCN ---\n%s\n\n",
                bp.mtp_config().dump().c_str());
  }

  harness::Table table({"topology", "routers", "BGP lines", "BGP bytes",
                        "MTP lines", "MTP bytes", "BGP/MTP bytes"});
  const std::pair<std::string, topo::ClosParams> sweeps[] = {
      {"2-PoD", topo::ClosParams::paper_2pod()},
      {"4-PoD", topo::ClosParams::paper_4pod()},
      {"8-PoD", {8, 2, 2, 4, 1}},
      {"16-PoD", {16, 4, 4, 16, 1}},
  };
  for (const auto& [name, params] : sweeps) {
    topo::ClosBlueprint bp(params);
    auto [bgp_lines, bgp_bytes] = bgp_config_size(bp);
    std::string mtp_text = bp.mtp_config().dump();
    table.add_row({name, std::to_string(params.router_count()),
                   std::to_string(bgp_lines), std::to_string(bgp_bytes),
                   std::to_string(count_lines(mtp_text)),
                   std::to_string(mtp_text.size()),
                   harness::fmt(static_cast<double>(bgp_bytes) /
                                    static_cast<double>(mtp_text.size()),
                                1)});
  }
  table.print(/*with_csv=*/true);
  std::printf(
      "\nShape check: BGP configuration grows with routers x interfaces\n"
      "(AS numbers, per-neighbor statements, BFD profiles); the MR-MTP\n"
      "config grows only with the device list — and requires no address\n"
      "assignment at all for spines (auto-assigned VIDs, §III.B).\n");
  return 0;
}
