// Figure 7: packets lost when the traffic sender is CLOSE to the failure
// point — server under ToR 11 sends to the server under the last ToR while
// the failure hits the first ToR/pod-spine links (§VII.D).
//
// Expected shape (paper): at TC1/TC3 the sender-side routers switch ports on
// local detection, so loss is tiny for every protocol; at TC2/TC4 loss is
// governed by the downstream router's dead timer — BGP ~1000 packets,
// BGP+BFD roughly a third, MR-MTP far less.
#include "bench_common.hpp"

int main() {
  using namespace mrmtp;
  using namespace mrmtp::bench;

  print_header("Fig. 7 — Packet loss, sender near the failure point",
               "paper Fig. 7 (Section VII.D)");
  std::printf("Flow: H-1-1 -> last host, ~333 pkt/s (3 ms gap), failure\n"
              "injected mid-stream.\n\n");

  auto grid = run_paper_grid();

  print_metric_tables(grid, "packets lost", [](const harness::AveragedResult& r) {
    return harness::fmt(r.packets_lost, 1);
  });

  std::printf("Longest receive gap (outage) in ms:\n\n");
  print_metric_tables(grid, "ms", [](const harness::AveragedResult& r) {
    return harness::fmt(r.outage_ms, 1);
  });

  std::printf(
      "Shape check: TC2/TC4 ordering BGP >> BGP+BFD >> MR-MTP; TC1/TC3 near\n"
      "zero everywhere (local detection switches the flow instantly).\n");
  return 0;
}
