// Scalability sweep (paper §IX future work: "Scaling the DCN"): the paper's
// metrics re-measured as the fabric grows from 2 to 16 PoDs, testing its
// claim that MR-MTP's advantages "increase multiplicatively as the DCN size
// increases".
#include "bench_common.hpp"

int main() {
  using namespace mrmtp;
  using namespace mrmtp::bench;

  print_header("Scalability sweep — PoDs 2..16 (paper Section IX)",
               "future-work extension of Figs. 4-6");

  const std::pair<std::string, topo::ClosParams> sweeps[] = {
      {"2-PoD", topo::ClosParams::paper_2pod()},
      {"4-PoD", topo::ClosParams::paper_4pod()},
      {"8-PoD", {8, 2, 2, 4, 1}},
      {"12-PoD", {12, 2, 4, 8, 1}},
      {"16-PoD", {16, 2, 4, 8, 1}},
      {"2x4-PoD 4-tier", topo::ClosParams::four_tier_clusters(2, 8)},
  };
  const std::vector<std::uint64_t> seeds{11, 23, 37};

  harness::Table table({"topology", "routers", "protocol",
                        "convergence TC1 (ms)", "ctrl bytes TC1",
                        "blast TC1 (any)", "loss TC2 (pkts)"});
  for (const auto& [name, params] : sweeps) {
    for (harness::Proto proto :
         {harness::Proto::kMtp, harness::Proto::kBgp, harness::Proto::kBgpBfd}) {
      harness::ExperimentSpec spec;
      spec.topo = params;
      spec.proto = proto;
      spec.tc = topo::TestCase::kTC1;
      spec.settle = sim::Duration::seconds(5);  // larger fabrics need longer
      auto tc1 = harness::run_averaged(spec, seeds);
      spec.tc = topo::TestCase::kTC2;
      auto tc2 = harness::run_averaged(spec, seeds);
      table.add_row({name, std::to_string(params.router_count()),
                     std::string(to_string(proto)),
                     harness::fmt(tc1.convergence_ms, 1),
                     harness::fmt(tc1.ctrl_bytes_raw, 0),
                     harness::fmt(tc1.blast_any, 1),
                     harness::fmt(tc2.packets_lost, 1)});
    }
  }
  table.print(/*with_csv=*/true);
  std::printf(
      "\nShape check: MR-MTP convergence stays pinned at the dead timer and\n"
      "its control bytes grow mildly with fan-out, while BGP's overhead and\n"
      "blast radius grow with the router count — the paper's 'benefits\n"
      "increase with DCN size' claim.\n");
  return 0;
}
