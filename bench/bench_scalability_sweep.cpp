// Scalability sweep (paper §IX future work: "Scaling the DCN"): the paper's
// metrics re-measured as the fabric grows from 2 to 64 PoDs, testing its
// claim that MR-MTP's advantages "increase multiplicatively as the DCN size
// increases".
//
// Besides the paper metrics, the sweep doubles as the event-core scalability
// gate: it records simulator throughput (events/sec) and the calendar-queue
// high-water mark at each size, and writes everything to
// BENCH_scalability.json so the perf trajectory is machine-tracked.
#include <algorithm>
#include <fstream>

#include "bench_common.hpp"
#include "util/json.hpp"

int main(int argc, char** argv) {
  using namespace mrmtp;
  using namespace mrmtp::bench;

  BenchFlags flags =
      BenchFlags::parse(argc, argv, "BENCH_scalability.json");

  print_header("Scalability sweep — PoDs 2..64 (paper Section IX)",
               "future-work extension of Figs. 4-6");

  const std::pair<std::string, topo::ClosParams> sweeps[] = {
      {"2-PoD", topo::ClosParams::paper_2pod()},
      {"4-PoD", topo::ClosParams::paper_4pod()},
      {"8-PoD", {8, 2, 2, 4, 1}},
      {"12-PoD", {12, 2, 4, 8, 1}},
      {"16-PoD", {16, 2, 4, 8, 1}},
      {"32-PoD", {32, 2, 4, 8, 1}},
      {"64-PoD", {64, 2, 4, 8, 1}},
      {"2x4-PoD 4-tier", topo::ClosParams::four_tier_clusters(2, 8)},
  };
  const std::vector<std::uint64_t> seeds{11, 23, 37};

  harness::Table table({"topology", "routers", "protocol",
                        "convergence TC1 (ms)", "ctrl bytes TC1",
                        "blast TC1 (any)", "loss TC2 (pkts)", "events/sec",
                        "queue high-water"});
  util::Json doc;
  doc["bench"] = "scalability_sweep";
  stamp_campaign(doc, seeds);
  util::JsonArray seed_arr;
  for (std::uint64_t s : seeds) {
    seed_arr.emplace_back(static_cast<std::int64_t>(s));
  }
  doc["seeds"] = std::move(seed_arr);
  util::JsonArray points;

  for (const auto& [name, params] : sweeps) {
    for (harness::Proto proto :
         {harness::Proto::kMtp, harness::Proto::kBgp, harness::Proto::kBgpBfd}) {
      harness::ExperimentSpec spec;
      spec.topo = params;
      spec.proto = proto;
      spec.threads = flags.threads;
      spec.tc = topo::TestCase::kTC1;
      spec.settle = sim::Duration::seconds(5);  // larger fabrics need longer
      auto tc1 = harness::run_averaged(spec, seeds);
      spec.tc = topo::TestCase::kTC2;
      auto tc2 = harness::run_averaged(spec, seeds);
      double events_per_sec = (tc1.events_per_sec + tc2.events_per_sec) / 2;
      double queue_hw = std::max(tc1.queue_high_water, tc2.queue_high_water);
      table.add_row({name, std::to_string(params.router_count()),
                     std::string(to_string(proto)),
                     harness::fmt(tc1.convergence_ms, 1),
                     harness::fmt(tc1.ctrl_bytes_raw, 0),
                     harness::fmt(tc1.blast_any, 1),
                     harness::fmt(tc2.packets_lost, 1),
                     harness::fmt(events_per_sec, 0),
                     harness::fmt(queue_hw, 0)});

      util::Json point;
      point["topology"] = name;
      point["routers"] =
          static_cast<std::int64_t>(params.router_count());
      point["protocol"] = std::string(to_string(proto));
      point["convergence_tc1_ms"] = tc1.convergence_ms;
      point["ctrl_bytes_tc1"] = tc1.ctrl_bytes_raw;
      point["blast_tc1_any"] = tc1.blast_any;
      point["loss_tc2_pkts"] = tc2.packets_lost;
      point["events_per_sec"] = events_per_sec;
      point["queue_high_water"] = queue_hw;
      point["allocs_avoided"] = tc1.allocs_avoided;
      point["cache_hit_rate"] = tc1.cache_hit_rate;
      points.push_back(std::move(point));
    }
  }
  doc["points"] = std::move(points);

  table.print(/*with_csv=*/true);

  std::ofstream out(flags.json_out);
  out << doc.dump(/*pretty=*/true) << "\n";
  std::printf("\nWrote %s (%zu points).\n", flags.json_out.c_str(),
              doc["points"].as_array().size());

  std::printf(
      "\nShape check: MR-MTP convergence stays pinned at the dead timer and\n"
      "its control bytes grow mildly with fan-out, while BGP's overhead and\n"
      "blast radius grow with the router count — the paper's 'benefits\n"
      "increase with DCN size' claim. Events/sec and the calendar-queue\n"
      "high-water mark gate the event core: throughput should fall roughly\n"
      "linearly with router count, not quadratically, and the queue must\n"
      "stay within 4x the live-timer population.\n");
  return 0;
}
