// Data-plane overhead accounting (paper §IX future work: "overhead
// calculations of using the MR-MTP header for every IP packet and overhead
// calculations due to all protocols such as BGP, TCP, BFD and UDP").
//
// Runs the same server workload over each protocol stack and accounts for
// every L2 byte the fabric carried, split into data vs control. MR-MTP pays
// a 6-byte encapsulation header per packet but nearly zero steady-state
// control; BGP/BFD forwards IP natively but pays keep-alives, BFD, and TCP
// ACKs continuously — so the winner flips with offered load.
#include "bench_common.hpp"

namespace {

using namespace mrmtp;

struct Accounting {
  std::uint64_t data_bytes = 0;
  std::uint64_t control_bytes = 0;  // everything that is not server data
  std::uint64_t payload_delivered = 0;
};

Accounting measure(harness::Proto proto, sim::Duration gap,
                   std::size_t payload) {
  net::SimContext ctx(3);
  topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
  harness::Deployment dep(ctx, bp, proto, {});
  dep.start();
  ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(5).ns()));

  // All four servers send to their diagonal counterpart for 10 s.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> flows{
      {0, 3}, {1, 2}, {2, 1}, {3, 0}};
  for (auto [a, b] : flows) {
    dep.host(b).listen();
    traffic::FlowConfig flow;
    flow.dst = dep.host(b).addr();
    flow.gap = gap;
    flow.payload_size = payload;
    dep.host(a).start_flow(flow);
  }

  // Snapshot fabric-link TX counters (router-to-router ports only).
  auto sum = [&dep, &bp](Accounting& acc, int sign) {
    for (std::uint32_t li = 0; li < bp.links().size(); ++li) {
      const auto& l = bp.links()[li];
      for (auto [dev, port] :
           {std::pair{l.upper, bp.port_on(l.upper, li)},
            std::pair{l.lower, bp.port_on(l.lower, li)}}) {
        const auto& tx = dep.router(dev).port(port).tx_stats();
        for (std::size_t c = 0; c < net::kTrafficClassCount; ++c) {
          auto tc = static_cast<net::TrafficClass>(c);
          std::uint64_t bytes = tx.by_class[c].padded_bytes;
          bool is_data = tc == net::TrafficClass::kMtpData ||
                         tc == net::TrafficClass::kIpData;
          auto& slot = is_data ? acc.data_bytes : acc.control_bytes;
          slot += static_cast<std::uint64_t>(sign) * bytes;
        }
      }
    }
  };

  Accounting acc;
  sum(acc, -1);
  ctx.sched.run_until(ctx.now() + sim::Duration::seconds(10));
  for (auto [a, b] : flows) dep.host(a).stop_flow();
  ctx.sched.run_until(ctx.now() + sim::Duration::millis(100));
  sum(acc, +1);

  for (auto [a, b] : flows) {
    acc.payload_delivered +=
        dep.host(b).sink_stats().unique_received * payload;
  }
  return acc;
}

}  // namespace

int main() {
  using namespace mrmtp;
  using namespace mrmtp::bench;

  print_header("Data-plane overhead — MR-MTP header vs BGP/BFD/TCP tax",
               "paper Section IX future work");
  std::printf("4 diagonal flows for 10 s on the 2-PoD fabric; every L2 byte\n"
              "on fabric links accounted (padded sizes, both directions).\n\n");

  harness::Table table({"load", "protocol", "data B", "control B",
                        "fabric B / payload B", "control share %"});
  const std::tuple<const char*, sim::Duration, std::size_t> loads[] = {
      {"idle-ish (10 pkt/s, 64 B)", sim::Duration::millis(100), 64},
      {"moderate (333 pkt/s, 256 B)", sim::Duration::millis(3), 256},
      {"heavy (2000 pkt/s, 1024 B)", sim::Duration::micros(500), 1024},
  };
  for (const auto& [name, gap, payload] : loads) {
    for (harness::Proto proto : {harness::Proto::kMtp, harness::Proto::kBgpBfd}) {
      Accounting acc = measure(proto, gap, payload);
      double total = static_cast<double>(acc.data_bytes + acc.control_bytes);
      table.add_row(
          {name, std::string(to_string(proto)),
           std::to_string(acc.data_bytes), std::to_string(acc.control_bytes),
           harness::fmt(total / static_cast<double>(acc.payload_delivered), 3),
           harness::fmt(100.0 * static_cast<double>(acc.control_bytes) / total,
                        2)});
    }
  }
  table.print(/*with_csv=*/true);

  std::printf(
      "\nShape check: MR-MTP's per-packet cost is the 6-byte MTP header\n"
      "(visible as slightly higher data bytes per payload byte), but its\n"
      "control share collapses toward zero under load because every data\n"
      "frame doubles as a keep-alive. The BGP/BFD stack pays 66 B BFD\n"
      "frames every ~100 ms per link plus BGP keep-alives and TCP ACKs\n"
      "forever, dominating at low utilization — the paper's §IX point that\n"
      "whole-stack overhead comparisons favor MR-MTP further.\n");
  return 0;
}
