// Lifecycle bench — the disruption budget of planned maintenance.
//
// Scripts production fabric lifecycle on live 8-PoD deployments (symmetric
// and asymmetric rack counts / link speeds) under MR-MTP and BGP/ECMP/BFD,
// with continuous inter-rack probe traffic and the FabricAuditor sweeping
// forwarding invariants throughout:
//
//   1. rolling_upgrade_all_spines — every pod/top spine is drained, powered
//      off (full control-plane state wipe), cold-booted, and re-audited,
//      serially. Headline metrics: frames lost across the whole campaign,
//      per-phase reconvergence time, and the disruption budget (frames lost
//      per router upgraded).
//   2. live_expansion — a dark-wired PoD (deferred at deploy time) is
//      powered into the running fabric while traffic flows.
//   3. misconfig_asymmetric_down — a one-sided "shutdown" on a ToR uplink;
//      the far end must notice via its own dead timer and reroute.
//   4. misconfig_duplicate_subnet (MR-MTP) — a ToR deployed with another
//      rack's subnet; the fabric must reject the duplicate root without
//      disturbing other trees.
//   5. misconfig_miswired_stripe (MR-MTP) — two seeded cabling swaps that
//      violate the stripe rule at build time; the fabric must still
//      converge and the auditor stay clean.
//
// scripts/check.sh gates BENCH_lifecycle.json: zero out-of-window auditor
// violations and zero drain-interval violations for MR-MTP, and an MR-MTP
// disruption budget no worse than BGP+BFD's on both fabrics.
#include <fstream>
#include <stdexcept>
#include <utility>

#include "bench_common.hpp"
#include "harness/auditor.hpp"
#include "harness/lifecycle.hpp"
#include "util/json.hpp"

namespace {

using namespace mrmtp;

constexpr auto kSettle = sim::Duration::seconds(3);
constexpr auto kSweep = sim::Duration::millis(100);

struct Fixture {
  net::SimContext ctx;
  topo::ClosBlueprint bp;
  harness::Deployment dep;
  std::vector<std::uint32_t> leaves;

  Fixture(const topo::ClosParams& params, harness::Proto proto,
          std::uint64_t seed, harness::DeployOptions opts = {})
      : ctx(seed), bp(params), dep(ctx, bp, proto, std::move(opts)) {
    for (std::uint32_t d = 0; d < bp.devices().size(); ++d) {
      if (bp.device(d).role == topo::Role::kLeaf) leaves.push_back(d);
    }
    dep.start();
    ctx.sched.run_until(sim::Time::zero() + kSettle);
    if (!dep.converged()) {
      throw std::runtime_error("fixture failed to converge");
    }
  }

  /// Ring of probe flows over the powered racks: host on leaf i sends to
  /// the host on the next powered leaf. Every host gets exactly one inbound
  /// flow, so fabric-wide lost = sum(sent) - sum(unique_received).
  void start_ring_traffic() {
    std::vector<std::uint32_t> on;
    for (std::uint32_t h = 0; h < dep.host_count(); ++h) {
      if (dep.router_active(bp.hosts()[h].leaf)) on.push_back(h);
    }
    for (std::uint32_t h : on) dep.host(h).listen();
    for (std::size_t i = 0; i < on.size(); ++i) {
      traffic::FlowConfig flow;
      flow.dst = dep.host(on[(i + 1) % on.size()]).addr();
      dep.host(on[i]).start_flow(flow);
    }
  }

  void stop_traffic() {
    for (std::uint32_t h = 0; h < dep.host_count(); ++h) {
      dep.host(h).stop_flow();
    }
  }

  [[nodiscard]] std::uint64_t frames_sent() {
    std::uint64_t n = 0;
    for (std::uint32_t h = 0; h < dep.host_count(); ++h) {
      n += dep.host(h).packets_sent();
    }
    return n;
  }

  [[nodiscard]] std::uint64_t frames_lost() {
    std::uint64_t sent = frames_sent();
    std::uint64_t unique = 0;
    for (std::uint32_t h = 0; h < dep.host_count(); ++h) {
      unique += dep.host(h).sink_stats().unique_received;
    }
    return sent > unique ? sent - unique : 0;
  }
};

struct ScenarioRow {
  std::string scenario;
  std::string topology;
  std::string protocol;
  util::Json extra;
};

util::Json lifecycle_json(const harness::LifecycleEngine& engine,
                          const harness::FabricAuditor& auditor) {
  util::Json j;
  double sum_ms = 0;
  double max_ms = 0;
  int reconverged = 0;
  for (const harness::LifecyclePhase& ph : engine.phases()) {
    if (!ph.saw_reconverge) continue;
    // Phase-start to first converged() poll: for upgrades this covers
    // drain + grace + reboot + rejoin, the full operator-visible outage.
    double ms = (ph.reconverged - ph.start).to_millis();
    sum_ms = sum_ms + ms;
    max_ms = std::max(max_ms, ms);
    ++reconverged;
  }
  j["phases"] = static_cast<std::int64_t>(engine.phases().size());
  j["phases_reconverged"] = static_cast<std::int64_t>(reconverged);
  j["all_reconverged"] = engine.all_reconverged();
  j["avg_reconverge_ms"] =
      reconverged > 0 ? sum_ms / reconverged : 0.0;
  j["max_reconverge_ms"] = max_ms;
  j["out_of_window_violations"] =
      static_cast<std::int64_t>(engine.out_of_window_violations().size());
  j["drain_violations"] =
      static_cast<std::int64_t>(engine.drain_violations().size());
  j["auditor_sweeps"] = static_cast<std::int64_t>(auditor.sweeps());
  return j;
}

util::Json run_rolling_upgrade(const topo::ClosParams& params,
                               harness::Proto proto, std::uint64_t seed) {
  Fixture f(params, proto, seed);
  f.start_ring_traffic();

  harness::FabricAuditor auditor(f.dep);
  auditor.start(kSweep);
  harness::LifecycleEngine::Options lopts;
  harness::LifecycleEngine engine(f.dep, auditor, lopts);

  std::vector<std::uint32_t> targets = engine.all_spines();
  sim::Time t0 = f.ctx.now() + sim::Duration::millis(100);
  engine.rolling_upgrade(targets, t0);

  sim::Time end = t0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    end = end + lopts.drain_grace + lopts.reboot_hold + lopts.reconverge_window;
  }
  f.ctx.sched.run_until(end + sim::Duration::millis(100));
  f.stop_traffic();
  f.ctx.sched.run_until(end + sim::Duration::millis(200));
  auditor.stop();

  util::Json j = lifecycle_json(engine, auditor);
  std::uint64_t sent = f.frames_sent();
  std::uint64_t lost = f.frames_lost();
  j["routers_upgraded"] = static_cast<std::int64_t>(targets.size());
  j["frames_sent"] = static_cast<std::int64_t>(sent);
  j["frames_lost"] = static_cast<std::int64_t>(lost);
  j["disruption_budget"] =
      static_cast<double>(lost) / static_cast<double>(targets.size());
  j["final_converged"] = f.dep.converged();
  return j;
}

util::Json run_expansion(const topo::ClosParams& params, harness::Proto proto,
                         std::uint64_t seed) {
  const std::uint32_t new_pod = params.clusters * params.pods;  // the last one
  harness::DeployOptions opts;
  opts.deferred_pods = {new_pod};
  Fixture f(params, proto, seed, opts);
  f.start_ring_traffic();

  harness::FabricAuditor auditor(f.dep);
  auditor.start(kSweep);
  harness::LifecycleEngine::Options lopts;
  harness::LifecycleEngine engine(f.dep, auditor, lopts);

  sim::Time t0 = f.ctx.now() + sim::Duration::millis(100);
  engine.expand_pod(new_pod, t0);
  sim::Time end = t0 + lopts.reconverge_window;
  f.ctx.sched.run_until(end + sim::Duration::millis(100));
  f.stop_traffic();
  f.ctx.sched.run_until(end + sim::Duration::millis(200));
  auditor.stop();

  util::Json j = lifecycle_json(engine, auditor);
  std::uint64_t sent = f.frames_sent();
  std::uint64_t lost = f.frames_lost();
  j["expanded_pod"] = static_cast<std::int64_t>(new_pod);
  j["frames_sent"] = static_cast<std::int64_t>(sent);
  j["frames_lost"] = static_cast<std::int64_t>(lost);
  j["final_converged"] = f.dep.converged();
  return j;
}

util::Json run_asym_down(const topo::ClosParams& params, harness::Proto proto,
                         std::uint64_t seed) {
  Fixture f(params, proto, seed);
  f.start_ring_traffic();

  harness::FabricAuditor auditor(f.dep);
  auditor.start(kSweep);
  harness::LifecycleEngine::Options lopts;
  harness::LifecycleEngine engine(f.dep, auditor, lopts);

  // One-sided shutdown of the first leaf's first uplink: the pod spine is
  // never told and must notice via its own dead timer.
  sim::Time t0 = f.ctx.now() + sim::Duration::millis(100);
  engine.misconfig_asymmetric_down(f.leaves.front(), 1, t0);
  sim::Time end = t0 + lopts.reconverge_window;
  f.ctx.sched.run_until(end + sim::Duration::millis(100));
  f.stop_traffic();
  f.ctx.sched.run_until(end + sim::Duration::millis(200));
  auditor.stop();

  util::Json j = lifecycle_json(engine, auditor);
  j["frames_sent"] = static_cast<std::int64_t>(f.frames_sent());
  j["frames_lost"] = static_cast<std::int64_t>(f.frames_lost());
  j["final_converged"] = f.dep.converged();
  return j;
}

util::Json run_duplicate_subnet(const topo::ClosParams& params,
                                std::uint64_t seed) {
  // Victim: first leaf of the second pod, deployed with the first pod's
  // first leaf's subnet. Convergence is asserted by the fixture (the victim
  // is excluded from every scope); the fabric must have rejected the
  // duplicate root and the auditor must stay clean.
  topo::ClosBlueprint probe(params);
  std::uint32_t source = 0;
  std::uint32_t victim = 0;
  bool have_source = false;
  bool have_victim = false;
  for (std::uint32_t d = 0; d < probe.devices().size(); ++d) {
    const auto& spec = probe.device(d);
    if (spec.role != topo::Role::kLeaf || spec.index != 1) continue;
    if (spec.pod == 1 && !have_source) {
      source = d;
      have_source = true;
    } else if (spec.pod == 2 && !have_victim) {
      victim = d;
      have_victim = true;
    }
    if (have_source && have_victim) break;
  }
  if (!have_source || !have_victim) {
    throw std::runtime_error("duplicate-subnet scenario needs two pods");
  }
  harness::DeployOptions opts;
  opts.duplicate_subnet_of = std::make_pair(victim, source);
  Fixture f(params, harness::Proto::kMtp, seed, opts);

  harness::FabricAuditor auditor(f.dep);
  std::uint64_t rejected = 0;
  for (std::uint32_t d = 0; d < f.dep.router_count(); ++d) {
    rejected += f.dep.mtp(d).mtp_stats().duplicate_roots_rejected;
  }
  util::Json j;
  j["victim"] = f.dep.router(victim).name();
  j["source"] = f.dep.router(source).name();
  j["duplicates_rejected"] = static_cast<std::int64_t>(rejected);
  j["sweep_violations"] = static_cast<std::int64_t>(auditor.sweep());
  j["final_converged"] = f.dep.converged();
  return j;
}

util::Json run_miswired_stripe(topo::ClosParams params, std::uint64_t seed) {
  params.miswires = 2;
  params.miswire_seed = seed;
  Fixture f(params, harness::Proto::kMtp, seed);

  harness::FabricAuditor auditor(f.dep);
  util::Json j;
  j["miswired_links"] =
      static_cast<std::int64_t>(f.bp.miswired_links().size());
  j["sweep_violations"] = static_cast<std::int64_t>(auditor.sweep());
  j["final_converged"] = f.dep.converged();
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrmtp;
  using namespace mrmtp::bench;

  BenchFlags flags = BenchFlags::parse(argc, argv, "BENCH_lifecycle.json");
  constexpr std::uint64_t kSeed = 11;

  print_header(
      "Fabric lifecycle — rolling upgrades, live expansion, misconfigs",
      "robustness beyond the paper's clean failures (ROADMAP north star)");

  const std::pair<std::string, topo::ClosParams> topologies[] = {
      {"8-PoD", topo::ClosParams{8, 2, 2, 4, 1}},
      {"8-PoD-asym", topo::ClosParams::asymmetric_8pod()},
  };
  const harness::Proto protos[] = {harness::Proto::kMtp,
                                   harness::Proto::kBgpBfd};

  util::Json doc;
  doc["bench"] = "lifecycle";
  stamp_campaign(doc, {kSeed});
  util::JsonArray scenarios;

  harness::Table table({"scenario", "topology", "protocol", "lost", "budget",
                        "avg reconv (ms)", "out-of-window", "drain viol"});
  auto emit = [&](const std::string& scenario, const std::string& topo_name,
                  const std::string& proto_name, util::Json j) {
    const util::Json* lost = j.find("frames_lost");
    const util::Json* budget = j.find("disruption_budget");
    const util::Json* avg = j.find("avg_reconverge_ms");
    const util::Json* oow = j.find("out_of_window_violations");
    const util::Json* dv = j.find("drain_violations");
    table.add_row(
        {scenario, topo_name, proto_name,
         lost != nullptr ? std::to_string(lost->as_int()) : "-",
         budget != nullptr ? harness::fmt(budget->as_double(), 2) : "-",
         avg != nullptr ? harness::fmt(avg->as_double(), 1) : "-",
         oow != nullptr ? std::to_string(oow->as_int()) : "-",
         dv != nullptr ? std::to_string(dv->as_int()) : "-"});
    j["scenario"] = scenario;
    j["topology"] = topo_name;
    j["protocol"] = proto_name;
    scenarios.push_back(std::move(j));
  };

  for (const auto& [topo_name, params] : topologies) {
    for (harness::Proto proto : protos) {
      std::printf("rolling upgrade of every spine: %s under %s...\n",
                  topo_name.c_str(), std::string(to_string(proto)).c_str());
      emit("rolling_upgrade_all_spines", topo_name,
           std::string(to_string(proto)),
           run_rolling_upgrade(params, proto, kSeed));
    }
  }
  for (harness::Proto proto : protos) {
    std::printf("live expansion: 8-PoD under %s...\n",
                std::string(to_string(proto)).c_str());
    emit("live_expansion", "8-PoD", std::string(to_string(proto)),
         run_expansion(topo::ClosParams{8, 2, 2, 4, 1}, proto, kSeed));
  }
  for (harness::Proto proto : protos) {
    std::printf("asymmetric admin-down: 8-PoD-asym under %s...\n",
                std::string(to_string(proto)).c_str());
    emit("misconfig_asymmetric_down", "8-PoD-asym",
         std::string(to_string(proto)),
         run_asym_down(topo::ClosParams::asymmetric_8pod(), proto, kSeed));
  }
  std::printf("duplicate rack subnet: 8-PoD under MR-MTP...\n");
  emit("misconfig_duplicate_subnet", "8-PoD", "MR-MTP",
       run_duplicate_subnet(topo::ClosParams{8, 2, 2, 4, 1}, kSeed));
  std::printf("miswired stripe: 8-PoD under MR-MTP...\n\n");
  emit("misconfig_miswired_stripe", "8-PoD", "MR-MTP",
       run_miswired_stripe(topo::ClosParams{8, 2, 2, 4, 1}, kSeed));

  doc["scenarios"] = std::move(scenarios);
  table.print(/*with_csv=*/true);

  std::ofstream out(flags.json_out);
  out << doc.dump(/*pretty=*/true) << "\n";
  std::printf("\nWrote %s (%zu scenarios).\n", flags.json_out.c_str(),
              doc["scenarios"].as_array().size());

  std::printf(
      "\nShape check: planned maintenance must be invisible outside its\n"
      "declared windows — zero out-of-window auditor violations and zero\n"
      "violations attributed to a router while it drains. The disruption\n"
      "budget (frames lost per router upgraded) under MR-MTP must be no\n"
      "worse than under BGP+BFD on both the symmetric and the asymmetric\n"
      "fabric.\n");
  return 0;
}
