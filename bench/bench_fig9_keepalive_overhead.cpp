// Figures 9 & 10: keep-alive message overhead during normal (idle)
// operation (§VII.F).
//
// Expected shape (paper): each BFD control frame is 66 bytes and each BGP
// KEEPALIVE 85 bytes at L2, both flowing continuously (BFD every 100 ms,
// BGP every 1 s, plus TCP pure ACKs); the MR-MTP keep-alive is a single
// 0x06 byte in an Ethernet frame every 50 ms, and any MTP traffic
// suppresses it. Reproduces the capture views with hex dumps.
#include "bench_common.hpp"
#include "bfd/bfd.hpp"
#include "bgp/message.hpp"
#include "mtp/message.hpp"
#include "transport/tcp_lite.hpp"
#include "util/byte_io.hpp"

namespace {

using namespace mrmtp;

/// Steady-state keep-alive traffic on the L-1-1 <-> S-1-1 link.
struct LinkRates {
  double frames_per_s[net::kTrafficClassCount] = {};
  double bytes_per_s[net::kTrafficClassCount] = {};
};

LinkRates measure(harness::Proto proto) {
  net::SimContext ctx(5);
  topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
  harness::Deployment dep(ctx, bp, proto, {});
  dep.start();

  // Converge, then observe an idle fabric for 10 s.
  ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(5).ns()));
  net::Node& leaf = dep.router(bp.leaf(1, 1));
  net::Node& spine = dep.router(bp.pod_spine(1, 1));
  net::TrafficStats before_leaf = leaf.port(1).tx_stats();
  net::TrafficStats before_spine = spine.port(3).tx_stats();
  ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(15).ns()));

  LinkRates rates;
  for (std::size_t c = 0; c < net::kTrafficClassCount; ++c) {
    auto delta_frames = (leaf.port(1).tx_stats().by_class[c].frames -
                         before_leaf.by_class[c].frames) +
                        (spine.port(3).tx_stats().by_class[c].frames -
                         before_spine.by_class[c].frames);
    auto delta_bytes = (leaf.port(1).tx_stats().by_class[c].padded_bytes -
                        before_leaf.by_class[c].padded_bytes) +
                       (spine.port(3).tx_stats().by_class[c].padded_bytes -
                        before_spine.by_class[c].padded_bytes);
    rates.frames_per_s[c] = static_cast<double>(delta_frames) / 10.0;
    rates.bytes_per_s[c] = static_cast<double>(delta_bytes) / 10.0;
  }
  return rates;
}

void dump_reference_frames() {
  std::printf("--- Reference frames (wireshark-style, cf. paper Figs 9/10) ---\n\n");

  // MR-MTP keep-alive: broadcast dst, EtherType 0x8850, payload 0x06.
  net::Frame mtp_hello;
  mtp_hello.dst = net::MacAddr::broadcast();
  mtp_hello.src = net::MacAddr::for_port(1, 1);
  mtp_hello.ethertype = net::EtherType::kMtp;
  mtp_hello.payload = mtp::encode(mtp::MtpMessage{mtp::HelloMsg{}});
  auto mtp_bytes = mtp_hello.serialize();
  std::printf("MR-MTP keep-alive (%zu B raw, %zu B on wire):\n",
              mtp_bytes.size(), mtp_hello.padded_wire_size());
  std::printf("%s\n", util::hex_dump(mtp_bytes).c_str());

  // BFD control packet inside UDP/IP/Ethernet.
  bfd::BfdPacket bfd_pkt;
  bfd_pkt.state = bfd::BfdState::kUp;
  bfd_pkt.my_discriminator = 1;
  bfd_pkt.your_discriminator = 2;
  transport::UdpHeader udp{bfd::kBfdPort, bfd::kBfdPort};
  ip::Ipv4Header iph;
  iph.src = ip::Ipv4Addr::parse("172.16.0.8");
  iph.dst = ip::Ipv4Addr::parse("172.16.0.9");
  iph.protocol = ip::IpProto::kUdp;
  net::Frame bfd_frame;
  bfd_frame.src = net::MacAddr::for_port(2, 1);
  bfd_frame.dst = net::MacAddr::broadcast();
  bfd_frame.payload = iph.serialize(udp.serialize(bfd_pkt.serialize()));
  auto bfd_bytes = bfd_frame.serialize();
  std::printf("BFD control (%zu B at L2 — paper: 66 B):\n", bfd_bytes.size());
  std::printf("%s\n", util::hex_dump(bfd_bytes).c_str());

  // BGP KEEPALIVE inside TCP/IP/Ethernet.
  transport::TcpSegment seg;
  seg.src_port = 179;
  seg.dst_port = 20000;
  seg.flags.ack = true;
  seg.payload = bgp::encode(bgp::KeepaliveMessage{});
  iph.protocol = ip::IpProto::kTcp;
  net::Frame bgp_frame;
  bgp_frame.src = net::MacAddr::for_port(3, 1);
  bgp_frame.dst = net::MacAddr::broadcast();
  bgp_frame.payload = iph.serialize(seg.serialize());
  auto bgp_bytes = bgp_frame.serialize();
  std::printf("BGP KEEPALIVE (%zu B at L2 — paper: 85 B):\n",
              bgp_bytes.size());
  std::printf("%s\n", util::hex_dump(bgp_bytes).c_str());
}

}  // namespace

int main() {
  using namespace mrmtp;
  using namespace mrmtp::bench;

  print_header("Figs. 9/10 — Keep-alive overhead in normal operation",
               "paper Figs. 9 and 10 (Section VII.F)");

  harness::Table table({"protocol", "class", "frames/s", "bytes/s (L2)",
                        "bytes/frame"});
  for (harness::Proto proto : harness::kAllProtos) {
    LinkRates rates = measure(proto);
    for (std::size_t c = 0; c < net::kTrafficClassCount; ++c) {
      if (rates.frames_per_s[c] < 0.01) continue;
      auto tc = static_cast<net::TrafficClass>(c);
      table.add_row({std::string(to_string(proto)),
                     std::string(net::to_string(tc)),
                     harness::fmt(rates.frames_per_s[c], 1),
                     harness::fmt(rates.bytes_per_s[c], 1),
                     harness::fmt(rates.bytes_per_s[c] /
                                      std::max(rates.frames_per_s[c], 1e-9),
                                  1)});
    }
  }
  std::printf("Per-link keep-alive traffic (one fabric link, both directions,"
              " idle fabric):\n");
  table.print(/*with_csv=*/true);
  std::printf(
      "\nExpected: BFD 66 B frames at ~10/s plus BGP 85 B keep-alives at\n"
      "~1/s (and their TCP ACKs) for the BGP/BFD stack, vs a single padded\n"
      "60 B MTP hello every 50 ms. With data flowing, MTP hellos vanish\n"
      "entirely (every MTP frame is a keep-alive).\n\n");

  // --- §IX claim: "Every MR-MTP message will be a keep-alive, which will
  // cut down on the keep-alive overhead" — hello suppression vs load. ---
  std::printf("--- MR-MTP hello suppression vs offered load (L-1-1 uplink) ---\n\n");
  harness::Table sweep({"flow rate (pkt/s)", "hello frames/s", "data frames/s"});
  for (std::int64_t gap_us : {0, 100000, 20000, 2000, 200}) {
    net::SimContext ctx(5);
    topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
    harness::Deployment dep(ctx, bp, harness::Proto::kMtp, {});
    dep.start();
    ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(3).ns()));

    if (gap_us > 0) {
      auto& receiver = dep.host(3);
      receiver.listen();
      traffic::FlowConfig flow;
      flow.dst = receiver.addr();
      flow.gap = sim::Duration::micros(gap_us);
      dep.host(0).start_flow(flow);
    }

    net::Node& leaf = dep.router(bp.leaf(1, 1));
    // Pick whichever uplink the flow hashes to (or port 1 when idle).
    ctx.sched.run_until(ctx.now() + sim::Duration::seconds(1));
    std::uint32_t port = 1;
    std::uint64_t best = 0;
    for (std::uint32_t p = 1; p <= 2; ++p) {
      auto frames =
          leaf.port(p).tx_stats().of(net::TrafficClass::kMtpData).frames;
      if (frames >= best) {
        best = frames;
        port = p;
      }
    }
    net::TrafficStats before = leaf.port(port).tx_stats();
    ctx.sched.run_until(ctx.now() + sim::Duration::seconds(5));
    auto hello = (leaf.port(port).tx_stats().of(net::TrafficClass::kMtpHello).frames -
                  before.of(net::TrafficClass::kMtpHello).frames) / 5.0;
    auto data = (leaf.port(port).tx_stats().of(net::TrafficClass::kMtpData).frames -
                 before.of(net::TrafficClass::kMtpData).frames) / 5.0;
    sweep.add_row({gap_us == 0 ? "0 (idle)"
                               : harness::fmt(1e6 / static_cast<double>(gap_us), 0),
                   harness::fmt(static_cast<double>(hello), 1),
                   harness::fmt(static_cast<double>(data), 1)});
  }
  sweep.print(/*with_csv=*/true);
  std::printf(
      "\nShape check: the 1-byte hellos vanish once the flow's inter-packet\n"
      "gap drops below the 50 ms hello interval — every DATA frame already\n"
      "proves liveness (paper §IV.B / §IX).\n\n");

  dump_reference_frames();
  return 0;
}
