// Buffer-pipeline gate: measures the data-path cost of frame payloads.
//
// Two measurements, both written to BENCH_buffer.json:
//   1. A steady-state forwarding window on a converged 2-pod MTP fabric with
//      a running probe flow — buffer-pool counters (slab allocs, copies,
//      shares, high-water) are deltaed across the window, proving the
//      ToR->spine->ToR path allocates and copies nothing per hop.
//   2. The 8-PoD scalability point (TC1 + TC2 averaged over the sweep seeds),
//      the same protocol grid as BENCH_scalability.json, so events/sec can
//      be compared directly against the PR 2 baseline.
#include <fstream>

#include "bench_common.hpp"
#include "net/buffer.hpp"
#include "net/pcap.hpp"
#include "traffic/host.hpp"
#include "util/json.hpp"

int main() {
  using namespace mrmtp;
  using namespace mrmtp::bench;

  print_header("Buffer pipeline — pooled payload slabs, zero-copy forwarding",
               "event-core scaling prerequisite (paper Section IX)");

  util::Json doc;
  doc["bench"] = "buffer_pipeline";
  stamp_campaign(doc, {11, 23, 37});

  // --- 1. steady-state forwarding window on a converged 2-pod MTP fabric ---
  {
    net::SimContext ctx(7);
    topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
    harness::Deployment dep(ctx, bp, harness::Proto::kMtp, {});
    dep.start();
    ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(3).ns()));

    auto& src = dep.host(0);
    auto& dst = dep.host(static_cast<std::uint32_t>(dep.host_count() - 1));
    dst.listen();
    traffic::FlowConfig flow;
    flow.dst = dst.addr();
    flow.gap = sim::Duration::micros(100);
    flow.payload_size = 256;
    src.start_flow(flow);
    // Warm-up: pool freelists fill, uplink caches populate.
    ctx.sched.run_until(sim::Time::from_ns(sim::Duration::millis(3500).ns()));

    auto& pool = net::BufferPool::instance();
    const net::BufferPoolStats before = pool.stats();
    const std::uint64_t sent_before = src.packets_sent();
    ctx.sched.run_until(sim::Time::from_ns(sim::Duration::millis(4500).ns()));
    const net::BufferPoolStats after = pool.stats();
    const std::uint64_t window_pkts = src.packets_sent() - sent_before;
    src.stop_flow();

    const std::uint64_t allocs = after.slab_allocs - before.slab_allocs;
    const std::uint64_t oversize = after.oversize_allocs - before.oversize_allocs;
    const std::uint64_t copies = after.prepend_copies - before.prepend_copies;
    const std::uint64_t inplace = after.prepend_inplace - before.prepend_inplace;
    const std::uint64_t reuses = after.slab_reuses - before.slab_reuses;
    const std::uint64_t bytes_copied = after.bytes_copied - before.bytes_copied;
    const std::uint64_t bytes_shared = after.bytes_shared - before.bytes_shared;

    harness::Table t({"window pkts", "slab allocs", "oversize", "reuses",
                      "prepend in-place", "prepend copies", "bytes copied",
                      "bytes shared", "live high-water"});
    t.add_row({std::to_string(window_pkts), std::to_string(allocs),
               std::to_string(oversize), std::to_string(reuses),
               std::to_string(inplace), std::to_string(copies),
               std::to_string(bytes_copied), std::to_string(bytes_shared),
               std::to_string(after.live_high_water)});
    t.print(/*with_csv=*/true);

    util::Json steady;
    steady["window_packets"] = static_cast<std::int64_t>(window_pkts);
    steady["slab_allocs"] = static_cast<std::int64_t>(allocs);
    steady["oversize_allocs"] = static_cast<std::int64_t>(oversize);
    steady["slab_reuses"] = static_cast<std::int64_t>(reuses);
    steady["prepend_inplace"] = static_cast<std::int64_t>(inplace);
    steady["prepend_copies"] = static_cast<std::int64_t>(copies);
    steady["bytes_copied"] = static_cast<std::int64_t>(bytes_copied);
    steady["bytes_shared"] = static_cast<std::int64_t>(bytes_shared);
    steady["live_high_water"] = static_cast<std::int64_t>(after.live_high_water);
    doc["steady_state"] = std::move(steady);

    std::printf(
        "\nSteady-state window: %llu probe packets forwarded with %llu pool\n"
        "allocations and %llu payload copies (in-place prepends: %llu).\n\n",
        static_cast<unsigned long long>(window_pkts),
        static_cast<unsigned long long>(allocs),
        static_cast<unsigned long long>(copies),
        static_cast<unsigned long long>(inplace));
  }

  // --- 2. the 8-PoD scalability point, comparable to BENCH_scalability ---
  const std::vector<std::uint64_t> seeds{11, 23, 37};
  const topo::ClosParams eight_pod{8, 2, 2, 4, 1};
  harness::Table table({"topology", "protocol", "events/sec",
                        "heap high-water", "allocs avoided"});
  util::JsonArray points;
  for (harness::Proto proto :
       {harness::Proto::kMtp, harness::Proto::kBgp, harness::Proto::kBgpBfd}) {
    harness::ExperimentSpec spec;
    spec.topo = eight_pod;
    spec.proto = proto;
    spec.tc = topo::TestCase::kTC1;
    spec.settle = sim::Duration::seconds(5);
    auto tc1 = harness::run_averaged(spec, seeds);
    spec.tc = topo::TestCase::kTC2;
    auto tc2 = harness::run_averaged(spec, seeds);
    double events_per_sec = (tc1.events_per_sec + tc2.events_per_sec) / 2;
    table.add_row({"8-PoD", std::string(to_string(proto)),
                   harness::fmt(events_per_sec, 0),
                   harness::fmt(std::max(tc1.queue_high_water,
                                         tc2.queue_high_water), 0),
                   harness::fmt(tc1.allocs_avoided, 0)});

    util::Json point;
    point["topology"] = "8-PoD";
    point["protocol"] = std::string(to_string(proto));
    point["events_per_sec"] = events_per_sec;
    point["queue_high_water"] = std::max(tc1.queue_high_water,
                                        tc2.queue_high_water);
    point["allocs_avoided"] = tc1.allocs_avoided;
    points.push_back(std::move(point));
  }
  doc["points"] = std::move(points);
  table.print(/*with_csv=*/true);

  const char* out_path = "BENCH_buffer.json";
  std::ofstream out(out_path);
  out << doc.dump(/*pretty=*/true) << "\n";
  std::printf("\nWrote %s.\n", out_path);

  std::printf(
      "\nShape check: the steady-state window must show zero slab allocs and\n"
      "zero prepend copies — every hop prepends/advances over the original\n"
      "slab — and 8-PoD events/sec should beat the pre-buffer baseline.\n");
  return 0;
}
