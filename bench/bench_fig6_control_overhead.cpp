// Figure 6: control overhead — total L2 bytes of update messages exchanged
// during convergence after each failure (§VII.C).
//
// Expected shape (paper): MR-MTP 120 B -> 264 B from 2-PoD to 4-PoD, BGP
// 1023 B -> 2139 B (~9x MTP); both roughly double with topology size.
// Raw (unpadded) and padded (60-byte Ethernet minimum) counts are printed;
// the paper's byte counts sit between the two conventions.
#include "bench_common.hpp"

int main() {
  using namespace mrmtp;
  using namespace mrmtp::bench;

  print_header("Fig. 6 — Control overhead during convergence",
               "paper Fig. 6 (Section VII.C)");

  auto grid = run_paper_grid();

  std::printf("Raw L2 bytes (frame header + payload, no padding):\n\n");
  print_metric_tables(grid, "bytes", [](const harness::AveragedResult& r) {
    return harness::fmt(r.ctrl_bytes_raw, 0);
  });

  std::printf("Padded L2 bytes (60-byte Ethernet minimum applied):\n\n");
  print_metric_tables(grid, "bytes", [](const harness::AveragedResult& r) {
    return harness::fmt(r.ctrl_bytes_padded, 0);
  });

  // The scaling summary the paper calls out explicitly.
  double mtp2 = 0, mtp4 = 0, bgp2 = 0, bgp4 = 0;
  int n2 = 0, n4 = 0;
  for (const auto& p : grid) {
    if (p.proto == harness::Proto::kMtp) {
      (p.topo_name == "2-PoD" ? mtp2 : mtp4) += p.result.ctrl_bytes_raw;
    } else if (p.proto == harness::Proto::kBgp) {
      (p.topo_name == "2-PoD" ? bgp2 : bgp4) += p.result.ctrl_bytes_raw;
    }
    (p.topo_name == "2-PoD" ? n2 : n4) += 0;
  }
  (void)n2;
  (void)n4;
  mtp2 /= 4;
  mtp4 /= 4;
  bgp2 /= 4;
  bgp4 /= 4;
  std::printf("TC-averaged raw overhead: MR-MTP %.0f -> %.0f B (x%.2f),"
              " BGP %.0f -> %.0f B (x%.2f); BGP/MTP ratio %.1fx (2-PoD),"
              " %.1fx (4-PoD).\n",
              mtp2, mtp4, mtp4 / mtp2, bgp2, bgp4, bgp4 / bgp2, bgp2 / mtp2,
              bgp4 / mtp4);
  std::printf("Paper: MTP 120 -> 264 B, BGP 1023 -> 2139 B.\n");
  return 0;
}
