// Micro-benchmarks (google-benchmark) for the hot paths: VID operations,
// LPM route lookup, ECMP hashing, codec throughput, scheduler throughput,
// and full simulated-fabric event rates.
#include <benchmark/benchmark.h>

#include "bgp/message.hpp"
#include "harness/deploy.hpp"
#include "ip/route_table.hpp"
#include "mtp/message.hpp"
#include "mtp/vid_table.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace mrmtp;

void BM_VidChildDerivation(benchmark::State& state) {
  mtp::Vid base = mtp::Vid::parse("11.1");
  std::uint16_t port = 1;
  for (auto _ : state) {
    mtp::Vid child = base.child(port++);
    benchmark::DoNotOptimize(child);
  }
}
BENCHMARK(BM_VidChildDerivation);

void BM_VidParseFormat(benchmark::State& state) {
  for (auto _ : state) {
    mtp::Vid v = mtp::Vid::parse("11.1.2");
    benchmark::DoNotOptimize(v.str());
  }
}
BENCHMARK(BM_VidParseFormat);

void BM_VidTableLookup(benchmark::State& state) {
  mtp::VidTable table;
  auto racks = static_cast<std::uint16_t>(state.range(0));
  for (std::uint16_t r = 0; r < racks; ++r) {
    table.add(mtp::Vid(static_cast<std::uint16_t>(11 + r)).child(1).child(2),
              (r % 4) + 1);
  }
  std::uint16_t root = 11;
  for (auto _ : state) {
    auto entries = table.entries_for_root(root);
    benchmark::DoNotOptimize(entries);
    root = static_cast<std::uint16_t>(11 + (root - 10) % racks);
  }
}
BENCHMARK(BM_VidTableLookup)->Arg(8)->Arg(64)->Arg(512);

void BM_LpmLookup(benchmark::State& state) {
  ip::RouteTable table;
  sim::Rng rng(1);
  auto routes = static_cast<int>(state.range(0));
  for (int i = 0; i < routes; ++i) {
    table.set(ip::Ipv4Prefix(ip::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                             static_cast<std::uint8_t>(rng.range(8, 28))),
              ip::RouteProto::kBgp, {{ip::Ipv4Addr(1), 1}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.lookup(ip::Ipv4Addr(static_cast<std::uint32_t>(rng.next()))));
  }
}
BENCHMARK(BM_LpmLookup)->Arg(16)->Arg(256)->Arg(4096);

void BM_EcmpSelect(benchmark::State& state) {
  ip::RouteTable table;
  std::vector<ip::NextHop> hops;
  for (std::uint32_t i = 0; i < 8; ++i) {
    hops.push_back({ip::Ipv4Addr(i), i + 1});
  }
  table.set(ip::Ipv4Prefix::parse("192.168.0.0/16"), ip::RouteProto::kBgp, hops);
  std::uint64_t h = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.select(ip::Ipv4Addr::parse("192.168.14.1"), h++));
  }
}
BENCHMARK(BM_EcmpSelect);

void BM_MtpDataEncode(benchmark::State& state) {
  mtp::DataMsg msg;
  msg.src_root = 11;
  msg.dst_root = 14;
  msg.ip_packet.assign(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mtp::encode(mtp::MtpMessage{msg}));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MtpDataEncode)->Arg(64)->Arg(1400);

void BM_BgpUpdateCodec(benchmark::State& state) {
  bgp::UpdateMessage u;
  u.as_path = {64513, 64600};
  u.next_hop = ip::Ipv4Addr::parse("172.16.0.1");
  for (int i = 0; i < 8; ++i) {
    u.nlri.push_back(ip::Ipv4Prefix(
        ip::Ipv4Addr(192, 168, static_cast<std::uint8_t>(11 + i), 0), 24));
  }
  for (auto _ : state) {
    auto bytes = bgp::encode(u);
    bgp::MessageReader reader;
    reader.append(bytes);
    benchmark::DoNotOptimize(reader.next());
  }
}
BENCHMARK(BM_BgpUpdateCodec);

void BM_SchedulerThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    for (int i = 0; i < 1000; ++i) {
      sched.schedule_at(sim::Time::from_ns(i), [] {});
    }
    sched.run();
    benchmark::DoNotOptimize(sched.events_fired());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerThroughput);

/// End-to-end: one simulated second of a converged idle fabric.
void BM_SimulatedSecondIdleFabric(benchmark::State& state) {
  bool mtp = state.range(0) == 0;
  for (auto _ : state) {
    net::SimContext ctx(1);
    topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
    harness::Deployment dep(ctx, bp,
                            mtp ? harness::Proto::kMtp : harness::Proto::kBgp,
                            {});
    dep.start();
    ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(1).ns()));
    benchmark::DoNotOptimize(ctx.sched.events_fired());
  }
}
BENCHMARK(BM_SimulatedSecondIdleFabric)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
