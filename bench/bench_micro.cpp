// Micro-benchmarks (google-benchmark) for the hot paths: VID operations,
// LPM route lookup, ECMP hashing, codec throughput, buffer-pipeline
// encap/decap and link transit (ns/frame with allocs/frame from the pool
// counters), scheduler throughput, and full simulated-fabric event rates.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>
#include <unordered_set>
#include <vector>

#include "bgp/message.hpp"
#include "harness/deploy.hpp"
#include "ip/packet.hpp"
#include "ip/route_table.hpp"
#include "mtp/message.hpp"
#include "mtp/vid_table.hpp"
#include "net/buffer.hpp"
#include "net/network.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace mrmtp;

void BM_VidChildDerivation(benchmark::State& state) {
  mtp::Vid base = mtp::Vid::parse("11.1");
  std::uint16_t port = 1;
  for (auto _ : state) {
    mtp::Vid child = base.child(port++);
    benchmark::DoNotOptimize(child);
  }
}
BENCHMARK(BM_VidChildDerivation);

void BM_VidParseFormat(benchmark::State& state) {
  for (auto _ : state) {
    mtp::Vid v = mtp::Vid::parse("11.1.2");
    benchmark::DoNotOptimize(v.str());
  }
}
BENCHMARK(BM_VidParseFormat);

void BM_VidTableLookup(benchmark::State& state) {
  mtp::VidTable table;
  auto racks = static_cast<std::uint16_t>(state.range(0));
  for (std::uint16_t r = 0; r < racks; ++r) {
    table.add(mtp::Vid(static_cast<std::uint16_t>(11 + r)).child(1).child(2),
              (r % 4) + 1);
  }
  std::uint16_t root = 11;
  for (auto _ : state) {
    auto entries = table.entries_for_root(root);
    benchmark::DoNotOptimize(entries);
    root = static_cast<std::uint16_t>(11 + (root - 10) % racks);
  }
}
BENCHMARK(BM_VidTableLookup)->Arg(8)->Arg(64)->Arg(512);

void BM_LpmLookup(benchmark::State& state) {
  ip::RouteTable table;
  sim::Rng rng(1);
  auto routes = static_cast<int>(state.range(0));
  for (int i = 0; i < routes; ++i) {
    table.set(ip::Ipv4Prefix(ip::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                             static_cast<std::uint8_t>(rng.range(8, 28))),
              ip::RouteProto::kBgp, {{ip::Ipv4Addr(1), 1}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.lookup(ip::Ipv4Addr(static_cast<std::uint32_t>(rng.next()))));
  }
}
BENCHMARK(BM_LpmLookup)->Arg(16)->Arg(256)->Arg(4096);

void BM_EcmpSelect(benchmark::State& state) {
  ip::RouteTable table;
  std::vector<ip::NextHop> hops;
  for (std::uint32_t i = 0; i < 8; ++i) {
    hops.push_back({ip::Ipv4Addr(i), i + 1});
  }
  table.set(ip::Ipv4Prefix::parse("192.168.0.0/16"), ip::RouteProto::kBgp, hops);
  std::uint64_t h = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.select(ip::Ipv4Addr::parse("192.168.14.1"), h++));
  }
}
BENCHMARK(BM_EcmpSelect);

void BM_MtpDataEncode(benchmark::State& state) {
  mtp::DataMsg msg;
  msg.src_root = 11;
  msg.dst_root = 14;
  msg.ip_packet.assign(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mtp::encode(mtp::MtpMessage{msg}));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MtpDataEncode)->Arg(64)->Arg(1400);

/// Spine transit cycle on one pooled buffer: decode slices the IP packet out
/// of the frame, encode prepends the 6-byte MTP header back into the same
/// headroom. allocs/frame and copied_B/frame come from the pool's own
/// counters and must both be ~0.
void BM_MtpTransitEncapDecap(benchmark::State& state) {
  mtp::DataMsg seed;
  seed.src_root = 11;
  seed.dst_root = 14;
  seed.ip_packet.assign(static_cast<std::size_t>(state.range(0)), 0xab);
  net::Buffer wire = mtp::encode(mtp::MtpMessage{std::move(seed)});

  const net::BufferPoolStats& stats = net::BufferPool::instance().stats();
  const std::uint64_t allocs_before = stats.slab_allocs;
  const std::uint64_t copied_before = stats.bytes_copied;
  for (auto _ : state) {
    mtp::MtpMessage msg = mtp::decode(std::move(wire));
    auto* d = std::get_if<mtp::DataMsg>(&msg);
    --d->ttl;
    wire = mtp::encode(std::move(msg));
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetItemsProcessed(state.iterations());
  const auto frames = static_cast<double>(state.iterations());
  state.counters["allocs/frame"] =
      static_cast<double>(stats.slab_allocs - allocs_before) / frames;
  state.counters["copied_B/frame"] =
      static_cast<double>(stats.bytes_copied - copied_before) / frames;
}
BENCHMARK(BM_MtpTransitEncapDecap)->Arg(64)->Arg(1400);

/// Headroom-based IPv4 encapsulation vs the legacy serialize-into-vector.
void BM_IpEncapsulate(benchmark::State& state) {
  ip::Ipv4Header h;
  h.src = ip::Ipv4Addr::parse("10.1.1.2");
  h.dst = ip::Ipv4Addr::parse("10.2.4.2");
  const auto n = static_cast<std::size_t>(state.range(0));
  net::Buffer payload = net::Buffer::allocate(n);
  for (auto _ : state) {
    net::Buffer pkt = h.encapsulate(std::move(payload));
    benchmark::DoNotOptimize(pkt.data());
    payload = pkt.slice(h.header_length());  // shed the header, keep the slab
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IpEncapsulate)->Arg(64)->Arg(1400);

void BM_IpSerializeLegacy(benchmark::State& state) {
  ip::Ipv4Header h;
  h.src = ip::Ipv4Addr::parse("10.1.1.2");
  h.dst = ip::Ipv4Addr::parse("10.2.4.2");
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(state.range(0)),
                                    0xab);
  for (auto _ : state) {
    auto pkt = h.serialize(payload);
    benchmark::DoNotOptimize(pkt.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IpSerializeLegacy)->Arg(64)->Arg(1400);

/// One frame through a link (transmit -> serialization/propagation events ->
/// delivery), pooled payload end to end. allocs/frame must settle at ~0:
/// every slab is recycled through the freelist.
void BM_LinkTransitPooledFrames(benchmark::State& state) {
  class SinkNode : public net::Node {
   public:
    using Node::Node;
    void handle_frame(net::Port& in, net::Frame frame) override {
      (void)in;
      last = std::move(frame);
    }
    net::Frame last;
  };

  net::SimContext ctx(1);
  net::Network network(ctx);
  auto& a = network.add_node<SinkNode>("a", 1);
  auto& b = network.add_node<SinkNode>("b", 2);
  network.connect(a, b, {});
  const auto payload_size = static_cast<std::size_t>(state.range(0));

  const net::BufferPoolStats& stats = net::BufferPool::instance().stats();
  const std::uint64_t allocs_before = stats.slab_allocs;
  for (auto _ : state) {
    net::Frame f;
    f.dst = net::MacAddr::broadcast();
    f.ethertype = net::EtherType::kIpv4;
    f.payload = net::Buffer::allocate(payload_size);
    a.transmit(a.port(1), std::move(f));
    ctx.sched.run();
    benchmark::DoNotOptimize(b.last.payload.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["allocs/frame"] =
      static_cast<double>(stats.slab_allocs - allocs_before) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_LinkTransitPooledFrames)->Arg(64)->Arg(1400);

void BM_BgpUpdateCodec(benchmark::State& state) {
  bgp::UpdateMessage u;
  u.as_path = {64513, 64600};
  u.next_hop = ip::Ipv4Addr::parse("172.16.0.1");
  for (int i = 0; i < 8; ++i) {
    u.nlri.push_back(ip::Ipv4Prefix(
        ip::Ipv4Addr(192, 168, static_cast<std::uint8_t>(11 + i), 0), 24));
  }
  for (auto _ : state) {
    auto bytes = bgp::encode(u);
    bgp::MessageReader reader;
    reader.append(bytes);
    benchmark::DoNotOptimize(reader.next());
  }
}
BENCHMARK(BM_BgpUpdateCodec);

/// Reference binary-heap scheduler: the pre-calendar implementation distilled
/// to its data structure — a (time, seq, callback) min-heap with lazy
/// deletion for reschedule. Lives here only as the baseline the calendar
/// queue is measured against; the simulator itself no longer has a heap.
class HeapScheduler {
 public:
  std::uint64_t schedule_at(std::int64_t ns, std::function<void()> fn) {
    heap_.push_back(Ev{ns, ++seq_, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), After{});
    ++live_;
    return seq_;
  }

  /// Fires the earliest live event; skips entries invalidated by reschedule.
  bool step() {
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), After{});
      Ev e = std::move(heap_.back());
      heap_.pop_back();
      if (stale_.erase(e.seq) > 0) continue;  // lazy-deleted husk
      now_ = e.ns;
      e.fn();
      --live_;
      return true;
    }
    return false;
  }

  /// Lazy-deletion reschedule: the old entry stays in the heap as a husk.
  std::uint64_t reschedule(std::uint64_t seq, std::int64_t ns,
                           std::function<void()> fn) {
    stale_.insert(seq);
    --live_;
    return schedule_at(ns, std::move(fn));
  }

  [[nodiscard]] std::int64_t now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return live_; }

 private:
  struct Ev {
    std::int64_t ns;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct After {  // max-heap comparator inverted -> min on (ns, seq)
    bool operator()(const Ev& a, const Ev& b) const {
      return a.ns != b.ns ? a.ns > b.ns : a.seq > b.seq;
    }
  };
  std::vector<Ev> heap_;
  std::unordered_set<std::uint64_t> stale_;
  std::uint64_t seq_ = 0;
  std::size_t live_ = 0;
  std::int64_t now_ = 0;
};

/// Deterministic inter-event gap stream (splitmix-style); both scheduler
/// variants see the identical schedule pattern.
struct GapStream {
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  std::int64_t next() {
    s += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::int64_t>((z ^ (z >> 31)) % 1'000'000);  // <= 1 ms
  }
};

/// Steady-state churn at a fixed population: fire the earliest event,
/// schedule its replacement at now + gap. This is the fabric's hold pattern
/// (N armed timers, one event firing at a time) at 1k/100k/1M pending —
/// the regime where the calendar queue's O(1) bucket insert beats the
/// heap's O(log n) sift.
void BM_SchedulerChurnCalendar(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  sim::Scheduler sched;
  GapStream gaps;
  for (int i = 0; i < n; ++i) {
    sched.schedule_at(sim::Time::from_ns(gaps.next()), [] {});
  }
  for (auto _ : state) {
    sched.step();
    sched.schedule_at(sched.now() + sim::Duration::nanos(gaps.next()), [] {});
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["pending"] = static_cast<double>(sched.pending());
}
BENCHMARK(BM_SchedulerChurnCalendar)
    ->Arg(1'000)
    ->Arg(100'000)
    ->Arg(1'000'000);

void BM_SchedulerChurnHeap(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  HeapScheduler sched;
  GapStream gaps;
  for (int i = 0; i < n; ++i) {
    sched.schedule_at(gaps.next(), [] {});
  }
  for (auto _ : state) {
    sched.step();
    sched.schedule_at(sched.now() + gaps.next(), [] {});
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["pending"] = static_cast<double>(sched.pending());
}
BENCHMARK(BM_SchedulerChurnHeap)->Arg(1'000)->Arg(100'000)->Arg(1'000'000);

/// Timer-rearm storm: every iteration pushes one armed timer further out,
/// round-robin over the population — the keep-alive pattern that motivated
/// in-place reschedule. The calendar moves the slot's entry hint; the heap
/// can only lazy-delete, growing a husk per rearm until the husks are popped.
void BM_SchedulerRescheduleCalendar(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  sim::Scheduler sched;
  GapStream gaps;
  std::vector<sim::EventId> ids;
  ids.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ids.push_back(
        sched.schedule_at(sim::Time::from_ns(1'000'000 + gaps.next()), [] {}));
  }
  std::int64_t horizon = 2'000'000;
  std::size_t i = 0;
  for (auto _ : state) {
    horizon += gaps.next();
    sched.reschedule(ids[i], sim::Time::from_ns(horizon));
    i = (i + 1) % ids.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["queue_size"] = static_cast<double>(sched.queue_size());
}
BENCHMARK(BM_SchedulerRescheduleCalendar)
    ->Arg(1'000)
    ->Arg(100'000)
    ->Arg(1'000'000);

void BM_SchedulerRescheduleHeap(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  HeapScheduler sched;
  GapStream gaps;
  std::vector<std::uint64_t> ids;
  ids.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ids.push_back(sched.schedule_at(1'000'000 + gaps.next(), [] {}));
  }
  std::int64_t horizon = 2'000'000;
  std::size_t i = 0;
  for (auto _ : state) {
    horizon += gaps.next();
    ids[i] = sched.reschedule(ids[i], horizon, [] {});
    i = (i + 1) % ids.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerRescheduleHeap)
    ->Arg(1'000)
    ->Arg(100'000)
    ->Arg(1'000'000);

void BM_SchedulerThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    for (int i = 0; i < 1000; ++i) {
      sched.schedule_at(sim::Time::from_ns(i), [] {});
    }
    sched.run();
    benchmark::DoNotOptimize(sched.events_fired());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerThroughput);

/// End-to-end: one simulated second of a converged idle fabric.
void BM_SimulatedSecondIdleFabric(benchmark::State& state) {
  bool mtp = state.range(0) == 0;
  for (auto _ : state) {
    net::SimContext ctx(1);
    topo::ClosBlueprint bp(topo::ClosParams::paper_2pod());
    harness::Deployment dep(ctx, bp,
                            mtp ? harness::Proto::kMtp : harness::Proto::kBgp,
                            {});
    dep.start();
    ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(1).ns()));
    benchmark::DoNotOptimize(ctx.sched.events_fired());
  }
}
BENCHMARK(BM_SimulatedSecondIdleFabric)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
