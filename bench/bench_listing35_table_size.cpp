// Listings 3 & 5: routing-state size — a tier-2 spine's BGP routing table
// vs a top spine's MR-MTP VID table (§VII.H).
//
// Expected shape (paper): the BGP RIB holds connected /31s plus one (often
// ECMP) route per server subnet, growing proportionally with the DCN; the
// VID table holds one entry per ToR tree with just a port. Storage and
// entry counts diverge further as the fabric grows.
#include "bench_common.hpp"
#include "bgp/router.hpp"
#include "mtp/router.hpp"

namespace {

using namespace mrmtp;

struct Sizes {
  std::size_t bgp_spine_entries;
  std::size_t bgp_spine_bytes;
  std::size_t mtp_top_entries;
  std::size_t mtp_top_bytes;
  std::string bgp_dump;
  std::string mtp_dump;
};

Sizes measure(const topo::ClosParams& params) {
  Sizes out{};
  topo::ClosBlueprint bp(params);
  {
    net::SimContext ctx(3);
    harness::Deployment dep(ctx, bp, harness::Proto::kBgp, {});
    dep.start();
    ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(6).ns()));
    auto& spine = dep.bgp(bp.pod_spine(1, 1));
    out.bgp_spine_entries = spine.routes().size();
    out.bgp_spine_bytes = spine.routes().memory_bytes();
    out.bgp_dump = spine.routes().dump();
  }
  {
    net::SimContext ctx(3);
    harness::Deployment dep(ctx, bp, harness::Proto::kMtp, {});
    dep.start();
    ctx.sched.run_until(sim::Time::from_ns(sim::Duration::seconds(3).ns()));
    auto& top = dep.mtp(bp.top_spine(1));
    out.mtp_top_entries = top.vid_table().size();
    out.mtp_top_bytes = top.vid_table().memory_bytes();
    out.mtp_dump = top.vid_table().dump();
  }
  return out;
}

}  // namespace

int main() {
  using namespace mrmtp;
  using namespace mrmtp::bench;

  print_header("Listings 3/5 — Routing state: BGP RIB vs MR-MTP VID table",
               "paper Listings 3 and 5 (Section VII.H)");

  Sizes paper = measure(topo::ClosParams::paper_4pod());
  std::printf("--- Listing 3: tier-2 spine S-1-1 BGP routing table (4-PoD) "
              "---\n%s\n",
              paper.bgp_dump.c_str());
  std::printf("--- Listing 5: top spine T-1 MR-MTP VID table (4-PoD) ---\n%s\n",
              paper.mtp_dump.c_str());

  harness::Table table({"topology", "BGP spine routes", "BGP bytes",
                        "MTP top VIDs", "MTP bytes", "bytes ratio"});
  const std::pair<std::string, topo::ClosParams> sweeps[] = {
      {"2-PoD", topo::ClosParams::paper_2pod()},
      {"4-PoD", topo::ClosParams::paper_4pod()},
      {"8-PoD", {8, 2, 2, 4, 1}},
      {"8-PoD x4", {8, 4, 4, 16, 1}},
  };
  for (const auto& [name, params] : sweeps) {
    Sizes s = measure(params);
    table.add_row({name, std::to_string(s.bgp_spine_entries),
                   std::to_string(s.bgp_spine_bytes),
                   std::to_string(s.mtp_top_entries),
                   std::to_string(s.mtp_top_bytes),
                   harness::fmt(static_cast<double>(s.bgp_spine_bytes) /
                                    static_cast<double>(s.mtp_top_bytes),
                                1)});
  }
  table.print(/*with_csv=*/true);
  std::printf(
      "\nShape check: a spine's BGP RIB = connected /31s + one route (with\n"
      "ECMP next-hop groups) per server subnet; the MR-MTP top spine keeps\n"
      "one VID per ToR tree. Note the spine comparison is conservative —\n"
      "pod spines' VID tables are even smaller (local ToRs only).\n");
  return 0;
}
