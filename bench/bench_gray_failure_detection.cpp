// Gray-failure detection: how long each protocol stack needs to notice a
// failure that a clean interface-down model never produces — one direction
// of a link silently eating frames while the other stays healthy.
//
// Three scenarios on the TC1 link (L-1-1 <-> S-1-1), frames toward the leaf
// impaired so the leaf is the starving side:
//   * unidirectional blackhole — 100% one-way drop;
//   * 50% one-way loss — the flaky-optics case;
//   * flap storm — six down/up cycles 120 ms apart.
//
// Expected shape: MR-MTP's dead interval (100 ms) detects the blackhole
// ~25x before BFD (300 ms) and ~30x before BGP's 3 s hold timer — but only
// the starving side learns anything, and MR-MTP has no channel to tell the
// healthy-looking side, so the stale tree keeps blackholing descending
// flows for the whole window (the auditor's final sweep flags it; BGP heals
// bilaterally because the starving side's NOTIFICATION crosses the healthy
// direction over TCP). Under 50% partial loss the ranking inverts: MR-MTP's
// every-frame-is-a-keep-alive is blinded by the frames that survive (a 100 ms
// all-quiet window almost never happens under load), while BFD's paced
// control stream accumulates misses and detects reliably. The flap storm is
// detected instantly by everyone (admin-down is visible locally); what
// differs is data loss. The FabricAuditor runs throughout: `audit` counts
// invariant violations in periodic sweeps, `final` a steady-state sweep
// after the window.
#include "bench_common.hpp"

int main() {
  using namespace mrmtp;
  using namespace mrmtp::bench;
  using GrayKind = harness::ExperimentSpec::GraySpec::Kind;

  print_header("Gray-failure detection latency and probe loss",
               "robustness extension (not a paper figure)");

  struct Scenario {
    std::string name;
    GrayKind kind;
    double loss;
  };
  const Scenario scenarios[] = {
      {"unidir-blackhole", GrayKind::kUnidirBlackhole, 1.0},
      {"unidir-loss-50%", GrayKind::kUnidirLoss, 0.5},
      {"flap-storm", GrayKind::kFlapStorm, 0.0},
  };

  for (const Scenario& sc : scenarios) {
    std::printf("Scenario: %s (TC1 link, impaired toward the leaf)\n",
                sc.name.c_str());
    harness::Table table({"protocol", "detect ms (mean±sd)", "detected",
                          "pkts lost", "outage ms", "audit", "final"});
    for (harness::Proto proto : harness::kAllProtos) {
      harness::ExperimentSpec spec;
      spec.topo = topo::ClosParams::paper_2pod();
      spec.proto = proto;
      spec.tc = topo::TestCase::kTC1;
      spec.gray.kind = sc.kind;
      spec.gray.toward_device = true;
      spec.gray.loss = sc.loss;
      spec.audit = true;
      // Probe stream toward H-1-1 so it descends through the impaired
      // direction when ECMP hashes it onto the plane-1 spine.
      spec.reverse_flow = true;
      harness::AveragedResult r =
          harness::run_averaged(spec, default_seeds());
      table.add_row({std::string(to_string(proto)),
                     r.detected_runs > 0 ? r.detection_dist.str(1) : "-",
                     std::to_string(r.detected_runs) + "/" +
                         std::to_string(r.runs),
                     harness::fmt(r.packets_lost, 1),
                     harness::fmt(r.outage_ms, 1),
                     harness::fmt(r.audit_violations, 1),
                     harness::fmt(r.final_violations, 1)});
    }
    table.print(/*with_csv=*/true);
    std::printf("\n");
  }

  std::printf(
      "Shape check: under the one-way blackhole MR-MTP detects within its\n"
      "100 ms dead interval, BFD at ~300 ms, BGP at its ~3 s hold timer —\n"
      "but MR-MTP's packet loss stays high because the healthy-looking side\n"
      "keeps its stale tree (nonzero `final` audit column), while BGP heals\n"
      "bilaterally via NOTIFICATION across the healthy direction. Under 50%%\n"
      "loss the data stream itself keeps MR-MTP's keep-alive fresh, so BFD's\n"
      "paced control stream detects where MR-MTP stays blind.\n");
  return 0;
}
