// Cold-start convergence: how long each protocol stack needs to bring a
// freshly powered fabric to full forwarding state, as the DCN grows.
//
// Not a paper figure, but the natural complement to Fig. 4: MR-MTP needs
// three hello exchanges (Slow-to-Accept) plus one join round-trip per tier;
// BGP needs TCP handshakes, OPEN/KEEPALIVE exchanges, and table flooding.
// Also reports total control bytes spent getting there.
#include "bench_common.hpp"

namespace {

using namespace mrmtp;

struct ColdStart {
  double converged_ms = -1;
  std::uint64_t control_bytes = 0;  // everything except server data
};

ColdStart measure(const topo::ClosParams& params, harness::Proto proto,
                  std::uint64_t seed) {
  net::SimContext ctx(seed);
  topo::ClosBlueprint bp(params);
  harness::Deployment dep(ctx, bp, proto, {});
  dep.start();

  ColdStart out;
  while (ctx.now() < sim::Time::from_ns(sim::Duration::seconds(60).ns())) {
    ctx.sched.run_until(ctx.now() + sim::Duration::millis(10));
    if (dep.converged()) {
      out.converged_ms = ctx.now().to_millis();
      break;
    }
  }

  for (std::uint32_t d = 0; d < dep.router_count(); ++d) {
    net::Node& node = dep.router(d);
    for (std::uint32_t p = 1; p <= node.port_count(); ++p) {
      const auto& tx = node.port(p).tx_stats();
      for (std::size_t c = 0; c < net::kTrafficClassCount; ++c) {
        auto tc = static_cast<net::TrafficClass>(c);
        if (tc == net::TrafficClass::kIpData ||
            tc == net::TrafficClass::kMtpData) {
          continue;
        }
        out.control_bytes += tx.by_class[c].bytes;
      }
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace mrmtp;
  using namespace mrmtp::bench;

  print_header("Cold-start convergence — powering up the fabric",
               "complement to paper Fig. 4");

  const std::pair<std::string, topo::ClosParams> sweeps[] = {
      {"2-PoD", topo::ClosParams::paper_2pod()},
      {"4-PoD", topo::ClosParams::paper_4pod()},
      {"8-PoD", {8, 2, 2, 4, 1}},
      {"2x4-PoD 4-tier", topo::ClosParams::four_tier_clusters(2, 8)},
  };

  harness::Table table({"topology", "routers", "protocol",
                        "time to converged (ms)", "control bytes spent"});
  for (const auto& [name, params] : sweeps) {
    for (harness::Proto proto : harness::kAllProtos) {
      harness::Distribution time_ms;
      std::uint64_t bytes = 0;
      for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        ColdStart r = measure(params, proto, seed);
        time_ms.add(r.converged_ms);
        bytes += r.control_bytes / 3;
      }
      table.add_row({name, std::to_string(params.router_count()),
                     std::string(to_string(proto)), time_ms.str(0),
                     std::to_string(bytes)});
    }
  }
  table.print(/*with_csv=*/true);

  std::printf(
      "\nFinding: cold start is the one place the BGP suite is FASTER — at\n"
      "simulator link latencies TCP handshakes and table flooding finish in\n"
      "~10 ms, while MR-MTP deliberately waits out its own Slow-to-Accept\n"
      "damping (3 hellos x 50 ms) before trusting any neighbor. The price\n"
      "BGP pays is control volume: 4-10x more bytes, growing with fabric\n"
      "size, while MR-MTP's establishment cost is one small join exchange\n"
      "per (tree x branch) and stays flat per device.\n");
  return 0;
}
