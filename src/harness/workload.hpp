// The workload-experiment runner: deploy a fabric under one protocol stack,
// converge, drive a traffic::WorkloadEngine campaign (empirical flow sizes,
// Poisson arrivals at a load fraction, incast / all-to-all scripts),
// optionally fail a link mid-campaign, and collect the per-flow completion
// time table — the user-visible metric every routing-scheme claim is now
// scored in. One code path serves both the classic single-context engine
// and the PoD-sharded parallel engine; results are identical by the
// determinism contract.
#pragma once

#include "harness/deploy.hpp"
#include "topo/failure.hpp"
#include "traffic/workload.hpp"

namespace mrmtp::harness {

struct WorkloadRunSpec {
  topo::ClosParams topo{8, 2, 2, 4, 1};
  Proto proto = Proto::kMtp;
  std::uint64_t seed = 1;
  DeployOptions options;
  traffic::WorkloadSpec workload;

  /// Worker shards, as in ExperimentSpec: 0/1 = classic engine,
  /// >= 2 = sharded; force_parallel_engine runs the sharded machinery even
  /// at one shard (the determinism reference).
  std::uint32_t threads = 0;
  bool force_parallel_engine = false;

  /// Initial convergence allowance before flows launch.
  sim::Duration settle = sim::Duration::seconds(3);
  /// Flow arrivals span [settle, settle + launch_window).
  sim::Duration launch_window = sim::Duration::millis(1500);
  /// Post-launch observation so in-flight flows can finish; incomplete
  /// flows are censored at settle + launch_window + drain.
  sim::Duration drain = sim::Duration::seconds(2);

  /// Fail one of the paper's TC links mid-campaign (the scenario where
  /// routing schemes separate: reroute fast or strand every flow on the
  /// dead path until the hold timer fires).
  bool inject_failure = false;
  topo::TestCase tc = topo::TestCase::kTC1;
  sim::Duration failure_after = sim::Duration::millis(300);  // after launch

  /// Run a FabricAuditor over the campaign: periodic sweeps every
  /// `audit_period` under the classic engine; sharded runs take one final
  /// sweep instead (cross-shard reads are only legal once the engine
  /// stops), so the audited invariants are identical at any shard count.
  bool audit = false;
  sim::Duration audit_period = sim::Duration::millis(500);
  /// Seeded kBufferSqueeze chaos events spread across the launch window,
  /// each shrinking a random switch's pool to `squeeze_frac` until it heals
  /// half a spacing later. No-ops without options.switch_buffer.
  std::uint32_t chaos_squeezes = 0;
  double squeeze_frac = 0.25;
};

struct WorkloadRunResult {
  bool initial_converged = false;
  traffic::FlowStats flows;

  std::uint64_t events_fired = 0;
  double wall_seconds = 0;
  std::uint32_t threads_used = 1;
  /// Data-class egress tail drops over every link direction — the
  /// congestion context behind an FCT tail.
  std::uint64_t data_queue_drops = 0;

  // --- finite-buffer counters (all zero without options.switch_buffer) ---
  std::uint64_t ecn_marked = 0;    // CE marks applied fabric-wide
  std::uint64_t pause_tx = 0;      // PFC PAUSE/RESUME frames sent
  std::uint64_t pause_rx = 0;      // ...and received/applied
  std::uint64_t buffer_drops = 0;  // admissions refused by a full pool/port
  /// Control-band tail drops fabric-wide. The graceful-degradation gate
  /// asserts this stays zero even when data pools run at 100%.
  std::uint64_t ctrl_queue_drops = 0;
  /// Max over switches of (pool occupancy high-water / pool size); ~1.0
  /// means some pool genuinely filled. 0 when no switch buffers deployed.
  double occupancy_hw_ratio = 0;
  /// From the auditor (0 when spec.audit is off).
  std::uint64_t pfc_deadlocks = 0;
  std::uint64_t audit_violations = 0;
};

[[nodiscard]] WorkloadRunResult run_workload(const WorkloadRunSpec& spec);

}  // namespace mrmtp::harness
