// The workload-experiment runner: deploy a fabric under one protocol stack,
// converge, drive a traffic::WorkloadEngine campaign (empirical flow sizes,
// Poisson arrivals at a load fraction, incast / all-to-all scripts),
// optionally fail a link mid-campaign, and collect the per-flow completion
// time table — the user-visible metric every routing-scheme claim is now
// scored in. One code path serves both the classic single-context engine
// and the PoD-sharded parallel engine; results are identical by the
// determinism contract.
#pragma once

#include "harness/deploy.hpp"
#include "topo/failure.hpp"
#include "traffic/workload.hpp"

namespace mrmtp::harness {

struct WorkloadRunSpec {
  topo::ClosParams topo{8, 2, 2, 4, 1};
  Proto proto = Proto::kMtp;
  std::uint64_t seed = 1;
  DeployOptions options;
  traffic::WorkloadSpec workload;

  /// Worker shards, as in ExperimentSpec: 0/1 = classic engine,
  /// >= 2 = sharded; force_parallel_engine runs the sharded machinery even
  /// at one shard (the determinism reference).
  std::uint32_t threads = 0;
  bool force_parallel_engine = false;

  /// Initial convergence allowance before flows launch.
  sim::Duration settle = sim::Duration::seconds(3);
  /// Flow arrivals span [settle, settle + launch_window).
  sim::Duration launch_window = sim::Duration::millis(1500);
  /// Post-launch observation so in-flight flows can finish; incomplete
  /// flows are censored at settle + launch_window + drain.
  sim::Duration drain = sim::Duration::seconds(2);

  /// Fail one of the paper's TC links mid-campaign (the scenario where
  /// routing schemes separate: reroute fast or strand every flow on the
  /// dead path until the hold timer fires).
  bool inject_failure = false;
  topo::TestCase tc = topo::TestCase::kTC1;
  sim::Duration failure_after = sim::Duration::millis(300);  // after launch
};

struct WorkloadRunResult {
  bool initial_converged = false;
  traffic::FlowStats flows;

  std::uint64_t events_fired = 0;
  double wall_seconds = 0;
  std::uint32_t threads_used = 1;
  /// Data-class egress tail drops over every link direction — the
  /// congestion context behind an FCT tail.
  std::uint64_t data_queue_drops = 0;
};

[[nodiscard]] WorkloadRunResult run_workload(const WorkloadRunSpec& spec);

}  // namespace mrmtp::harness
