// FabricAuditor: an always-on invariant checker for deployed fabrics.
//
// Periodically sweeps every router and verifies that the forwarding state is
// internally consistent and that packets could actually get where routing
// claims they can — without injecting any traffic. Invariants:
//
//   * Every MTP VID-table entry points at a connected, admin-up port whose
//     neighbor is currently accepted (no stale entries).
//   * Every BGP best-path next-hop egresses a connected, admin-up port.
//   * Virtual probes walked from every leaf toward every destination
//     (following the exact VID-table / exclusion / ECMP decisions the data
//     plane would make, branching over every load-balancer candidate) never
//     loop and never die while the destination is still physically reachable
//     from the stuck hop. A probe that dies because gray impairments or
//     admin-downs genuinely severed every path is NOT a violation — routing
//     cannot beat physics — but exclusion tables that blackhole a
//     destination with a live path are.
//
// Violations are timestamped and accumulated; the chaos tests assert the log
// stays empty across campaigns once each re-convergence window has passed.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "harness/deploy.hpp"

namespace mrmtp::harness {

enum class InvariantKind : std::uint8_t {
  kStaleVidEntry,        // VID entry points at a down/dead/unwired port
  kStaleNextHop,         // BGP next-hop egresses a down/unwired port
  kForwardingLoop,       // probe revisited a (device, direction) state
  kForwardingBlackhole,  // probe died though a live path still exists
  kExclusionBlackhole,   // ...because exclusions ruled out live uplinks
  kFalseDeadNeighbor,    // neighbor declared dead on an unimpaired up link
  kPfcDeadlock,          // cycle in the PFC pause-wait graph
  kPauseStorm,           // a link direction spent >90% of the sweep paused
  kControlStarved,       // control-band drops on a finite-buffer switch
};

[[nodiscard]] std::string_view to_string(InvariantKind kind);

struct Violation {
  sim::Time at;
  std::string device;  // where the invariant broke (probe: the stuck hop)
  InvariantKind kind;
  std::string detail;

  [[nodiscard]] std::string str() const;
};

class FabricAuditor {
 public:
  explicit FabricAuditor(Deployment& dep);

  /// Runs one full sweep now; returns the number of violations found (also
  /// appended to the persistent log).
  std::size_t sweep();

  /// Arms a periodic sweep every `period` until stop().
  void start(sim::Duration period);
  void stop();

  /// Opt-in: chains onto every router's neighbor-down / session-down
  /// callback (preserving whatever was installed before) and scores each
  /// locally detected dead declaration against the physical link at that
  /// instant. A declaration while the link is wired, both ends are admin-up,
  /// and neither direction is impaired is a *false dead* — the smoking gun
  /// of a congestion-induced control-plane cascade — and is logged as
  /// kFalseDeadNeighbor. Also tracks cascade depth: consecutive dead
  /// declarations on adjacent routers within `cascade_window` chain into a
  /// cascade, and the longest chain is reported.
  void watch_liveness(sim::Duration cascade_window = sim::Duration::millis(500));

  /// Dead declarations scored since watch_liveness() (local detections).
  [[nodiscard]] std::uint64_t down_declarations() const { return downs_; }
  /// ...of which the link was demonstrably unimpaired at that instant.
  [[nodiscard]] std::uint64_t false_dead_count() const { return false_dead_; }
  /// Longest chain of adjacent-router dead declarations (0 = none at all,
  /// 1 = isolated declarations only, >1 = a spreading cascade).
  [[nodiscard]] int max_cascade_depth() const { return max_cascade_depth_; }

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return log_;
  }

  /// Declares [from, until] a reconvergence window: a lifecycle phase
  /// (drain/reboot/rejoin, pod power-on) is allowed to trip invariants while
  /// the fabric re-converges. violations_outside_windows() is the hard
  /// assertion — planned maintenance must never leak violations past its
  /// declared window.
  void declare_window(sim::Time from, sim::Time until) {
    windows_.emplace_back(from, until);
  }
  [[nodiscard]] const std::vector<std::pair<sim::Time, sim::Time>>& windows()
      const {
    return windows_;
  }
  [[nodiscard]] std::vector<Violation> violations_outside_windows() const;
  /// PFC pause-wait cycles detected across all sweeps (each sweep counts a
  /// cycle once). The bench gate asserts this stays zero.
  [[nodiscard]] std::uint64_t pfc_deadlocks() const { return pfc_deadlocks_; }
  [[nodiscard]] std::uint64_t sweeps() const { return sweeps_; }
  [[nodiscard]] std::size_t last_sweep_violations() const { return last_; }
  [[nodiscard]] std::uint64_t sweeps_with_violations() const {
    return dirty_sweeps_;
  }
  void clear_log() { log_.clear(); }

 private:
  struct ProbeBranch {
    std::uint32_t device;
    bool came_down;  // MTP: arrived via a downward hop (no re-ascent)
  };

  void audit_mtp(std::vector<Violation>& out);
  void audit_bgp(std::vector<Violation>& out);
  /// Finite-buffer invariants, proto-independent: PFC pause-wait deadlock
  /// cycles, pause storms (a direction paused >90% of the sweep interval),
  /// and control-band starvation (control drops on a buffered switch — the
  /// graceful-degradation guarantee says the control band stays live even at
  /// 100% data occupancy). No-op on fabrics without switch buffers.
  void audit_buffers(std::vector<Violation>& out);

  /// A leaf worth probing from/to: powered, and not deliberately costed out
  /// (a draining ToR has withdrawn its own prefix/root — probes toward it
  /// dying is policy, not a fabric fault).
  [[nodiscard]] bool leaf_probeable(std::uint32_t leaf) const;

  void walk_mtp(std::uint32_t device, std::uint16_t dst_root,
                std::uint32_t dst_leaf, bool came_down,
                std::set<std::pair<std::uint32_t, bool>>& on_path, int depth,
                std::vector<Violation>& out);
  void walk_bgp(std::uint32_t device, ip::Ipv4Addr dst,
                std::uint32_t dst_leaf, std::set<std::uint32_t>& on_path,
                int depth, std::vector<Violation>& out);

  /// Directed physical reachability between routers over admin-up ports and
  /// per-direction-deliverable links (the "live path" oracle).
  [[nodiscard]] bool physically_reachable(std::uint32_t from,
                                          std::uint32_t to) const;

  /// Router index on the far side of `device`'s port `p`, or nullopt for
  /// hosts / unwired ports.
  [[nodiscard]] std::optional<std::uint32_t> peer_router(std::uint32_t device,
                                                         std::uint32_t p) const;
  /// True if a frame leaving `device` via `p` reaches the peer port (both
  /// ends admin-up, link deliverable in that direction).
  [[nodiscard]] bool hop_usable(std::uint32_t device, std::uint32_t p) const;

  void flag(std::vector<Violation>& out, std::uint32_t device,
            InvariantKind kind, std::string detail);
  void flag_dead_end(std::vector<Violation>& out, std::uint32_t device,
                     std::uint32_t dst_leaf, InvariantKind kind,
                     std::string detail);

  /// True if `device`'s port `p` is wired, both ends admin-up, and the link
  /// is loss- and blackhole-free in both directions right now.
  [[nodiscard]] bool link_unimpaired(std::uint32_t device,
                                     std::uint32_t p) const;
  /// Scores one locally detected dead declaration (port 0 = unresolvable).
  void note_down_declaration(std::uint32_t device, std::uint32_t port,
                             sim::Time at);

  Deployment& dep_;
  /// node pointer -> router (device) index, built once at construction.
  std::map<const net::Node*, std::uint32_t> router_index_;
  /// ToR root VID -> leaf device index.
  std::map<std::uint16_t, std::uint32_t> leaf_of_root_;
  std::vector<Violation> log_;
  /// Declared reconvergence windows (lifecycle phases).
  std::vector<std::pair<sim::Time, sim::Time>> windows_;
  /// Dedup within the current sweep (many probes hit the same bad hop).
  std::set<std::string> seen_this_sweep_;
  std::unique_ptr<sim::Timer> timer_;
  std::uint64_t sweeps_ = 0;
  std::uint64_t dirty_sweeps_ = 0;
  std::size_t last_ = 0;
  std::uint64_t pfc_deadlocks_ = 0;

  // --- buffer-audit snapshots (deltas scored sweep-over-sweep; the first
  // sweep scores against time zero and all-zero counters) ---
  sim::Time last_buffer_sweep_{};
  /// Per link, per direction: pause_ns_total and dropped_queue_control at
  /// the previous sweep.
  std::map<const net::Link*, std::array<std::uint64_t, 2>> pause_snap_;
  std::map<const net::Link*, std::array<std::uint64_t, 2>> ctrl_drop_snap_;

  // --- liveness watcher state (watch_liveness) ---
  struct DownEvent {
    sim::Time at;
    std::uint32_t device;
    int depth;  // 1 + deepest adjacent declaration inside the window
  };
  bool watching_ = false;
  sim::Duration cascade_window_{};
  /// Unordered adjacent router pairs (lo, hi) from the blueprint wiring.
  std::set<std::pair<std::uint32_t, std::uint32_t>> adjacent_;
  std::vector<DownEvent> down_events_;
  std::uint64_t downs_ = 0;
  std::uint64_t false_dead_ = 0;
  int max_cascade_depth_ = 0;
};

}  // namespace mrmtp::harness
