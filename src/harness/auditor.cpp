#include "harness/auditor.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <stdexcept>

#include "net/link.hpp"

namespace mrmtp::harness {

namespace {
constexpr int kMaxProbeDepth = 16;  // mirrors the MTP data TTL
}  // namespace

std::string_view to_string(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kStaleVidEntry: return "stale-vid-entry";
    case InvariantKind::kStaleNextHop: return "stale-next-hop";
    case InvariantKind::kForwardingLoop: return "forwarding-loop";
    case InvariantKind::kForwardingBlackhole: return "forwarding-blackhole";
    case InvariantKind::kExclusionBlackhole: return "exclusion-blackhole";
    case InvariantKind::kFalseDeadNeighbor: return "false-dead-neighbor";
    case InvariantKind::kPfcDeadlock: return "pfc-deadlock";
    case InvariantKind::kPauseStorm: return "pause-storm";
    case InvariantKind::kControlStarved: return "control-starved";
  }
  return "?";
}

std::string Violation::str() const {
  return "[" + at.str() + "] " + device + " " + std::string(to_string(kind)) +
         ": " + detail;
}

FabricAuditor::FabricAuditor(Deployment& dep) : dep_(dep) {
  for (std::uint32_t d = 0; d < dep_.router_count(); ++d) {
    router_index_[&dep_.router(d)] = d;
  }
  const auto& devices = dep_.blueprint().devices();
  for (std::uint32_t d = 0; d < devices.size(); ++d) {
    if (devices[d].vid == 0) continue;
    if (dep_.proto() == Proto::kMtp) {
      // Deployed truth, not blueprint intent: under the duplicate-subnet
      // misconfig a ToR announces another rack's VID, so the blueprint VID
      // has no advertiser and the collided VID must map to its legitimate
      // owner (the leaf whose blueprint and deployed VIDs agree).
      std::uint16_t vid = dep_.mtp(d).own_vid();
      if (!leaf_of_root_.contains(vid) || devices[d].vid == vid) {
        leaf_of_root_[vid] = d;
      }
    } else {
      leaf_of_root_[devices[d].vid] = d;
    }
  }
}

std::vector<Violation> FabricAuditor::violations_outside_windows() const {
  std::vector<Violation> out;
  for (const Violation& v : log_) {
    bool inside = false;
    for (const auto& [from, until] : windows_) {
      if (v.at >= from && v.at <= until) {
        inside = true;
        break;
      }
    }
    if (!inside) out.push_back(v);
  }
  return out;
}

bool FabricAuditor::leaf_probeable(std::uint32_t leaf) const {
  if (!dep_.router_active(leaf)) return false;
  if (dep_.proto() == Proto::kMtp) return !dep_.mtp(leaf).draining();
  return !dep_.bgp(leaf).draining();
}

std::size_t FabricAuditor::sweep() {
  seen_this_sweep_.clear();
  std::vector<Violation> out;
  if (dep_.proto() == Proto::kMtp) {
    audit_mtp(out);
  } else {
    audit_bgp(out);
  }
  audit_buffers(out);
  ++sweeps_;
  last_ = out.size();
  if (last_ > 0) ++dirty_sweeps_;
  log_.insert(log_.end(), out.begin(), out.end());
  return last_;
}

void FabricAuditor::start(sim::Duration period) {
  if (!timer_) {
    timer_ = std::make_unique<sim::Timer>(dep_.ctx().sched, [this] { sweep(); });
  }
  timer_->start_periodic(period);
}

void FabricAuditor::stop() {
  if (timer_) timer_->stop();
}

void FabricAuditor::audit_buffers(std::vector<Violation>& out) {
  bool any_buffered = false;
  for (std::uint32_t d = 0; d < dep_.router_count(); ++d) {
    if (dep_.router(d).switch_buffer() != nullptr) {
      any_buffered = true;
      break;
    }
  }
  if (!any_buffered) return;

  const sim::Time now = dep_.ctx().now();
  const auto& links = dep_.network().links();

  // Pause-wait graph: X -> Y when some X->Y direction is PAUSEd (Y told X to
  // stop) while X still has data queued behind the pause. Valley-free Clos
  // routing should keep this a DAG; a cycle is a PFC deadlock — every switch
  // on it waits on the next forever.
  std::map<std::uint32_t, std::vector<std::uint32_t>> wait_edges;
  for (const auto& lp : links) {
    const net::Link& l = *lp;
    for (int d = 0; d < 2; ++d) {
      const auto dir = static_cast<net::Link::Dir>(d);
      if (!l.data_paused(dir) || l.queued_data_bytes(dir) == 0) continue;
      const net::Node& snd = (d == 0 ? l.a() : l.b()).owner();
      const net::Node& rcv = (d == 0 ? l.b() : l.a()).owner();
      auto si = router_index_.find(&snd);
      auto ri = router_index_.find(&rcv);
      if (si == router_index_.end() || ri == router_index_.end()) continue;
      wait_edges[si->second].push_back(ri->second);
    }
  }
  // Coloring DFS over the wait graph; each back edge is one reported cycle.
  std::map<std::uint32_t, int> color;  // 0 = new, 1 = on stack, 2 = done
  std::function<void(std::uint32_t)> dfs = [&](std::uint32_t u) {
    color[u] = 1;
    auto it = wait_edges.find(u);
    if (it != wait_edges.end()) {
      for (std::uint32_t v : it->second) {
        if (color[v] == 1) {
          ++pfc_deadlocks_;
          flag(out, u, InvariantKind::kPfcDeadlock,
               "pause-wait cycle through " +
                   dep_.blueprint().device(v).name);
        } else if (color[v] == 0) {
          dfs(v);
        }
      }
    }
    color[u] = 2;
  };
  for (const auto& [u, _] : wait_edges) {
    if (color[u] == 0) dfs(u);
  }

  // Pause storms and control starvation, scored as deltas since the last
  // sweep (first sweep: since time zero).
  const auto interval_ns =
      static_cast<std::uint64_t>((now - last_buffer_sweep_).ns());
  for (const auto& lp : links) {
    const net::Link& l = *lp;
    auto& psnap = pause_snap_[&l];
    auto& csnap = ctrl_drop_snap_[&l];
    for (int d = 0; d < 2; ++d) {
      const auto dir = static_cast<net::Link::Dir>(d);
      const net::Node& snd = (d == 0 ? l.a() : l.b()).owner();
      const std::uint64_t pause_now = l.pause_ns_total(dir);
      const net::Link::DirStats& ds = d == 0 ? l.stats().ab : l.stats().ba;
      const std::uint64_t cdrop_now = ds.dropped_queue_control;
      auto si = router_index_.find(&snd);
      if (si != router_index_.end()) {
        if (interval_ns > 0 && pause_now - psnap[d] > interval_ns / 10 * 9) {
          flag(out, si->second, InvariantKind::kPauseStorm,
               "direction paused " + std::to_string(pause_now - psnap[d]) +
                   " ns of a " + std::to_string(interval_ns) + " ns interval");
        }
        if (cdrop_now > csnap[d] &&
            dep_.router(si->second).switch_buffer() != nullptr) {
          flag(out, si->second, InvariantKind::kControlStarved,
               std::to_string(cdrop_now - csnap[d]) +
                   " control-band drops on a finite-buffer switch");
        }
      }
      psnap[d] = pause_now;
      csnap[d] = cdrop_now;
    }
  }
  last_buffer_sweep_ = now;
}

// --- liveness watcher: false-dead declarations + cascade depth ---

void FabricAuditor::watch_liveness(sim::Duration cascade_window) {
  if (watching_) return;
  watching_ = true;
  cascade_window_ = cascade_window;

  // Adjacency from the wiring itself (covers every proto identically).
  for (std::uint32_t d = 0; d < dep_.router_count(); ++d) {
    const net::Node& node = dep_.router(d);
    for (std::uint32_t p = 1; p <= node.port_count(); ++p) {
      auto peer = peer_router(d, p);
      if (!peer) continue;
      adjacent_.insert({std::min(d, *peer), std::max(d, *peer)});
    }
  }

  for (std::uint32_t d = 0; d < dep_.router_count(); ++d) {
    if (dep_.proto() == Proto::kMtp) {
      mtp::MtpRouter& r = dep_.mtp(d);
      auto prev = std::move(r.on_neighbor_down);
      r.on_neighbor_down = [this, d, prev = std::move(prev)](
                               sim::Time at, std::uint32_t port,
                               bool local_detect) {
        if (local_detect) note_down_declaration(d, port, at);
        if (prev) prev(at, port, local_detect);
      };
    } else {
      bgp::BgpRouter& r = dep_.bgp(d);
      // Session peers are keyed by address; resolve each to the local port
      // carrying that /31 so the link can be inspected at declaration time.
      std::map<std::uint32_t, std::uint32_t> port_of_peer;  // addr -> port
      for (const bgp::NeighborConfig& n : r.config().neighbors) {
        for (std::uint32_t p = 1; p <= r.port_count(); ++p) {
          if (r.port_addr(p) == n.local_addr) {
            port_of_peer[n.peer_addr.value()] = p;
            break;
          }
        }
      }
      auto prev = std::move(r.on_session_down);
      r.on_session_down = [this, d, port_of_peer = std::move(port_of_peer),
                           prev = std::move(prev)](sim::Time at,
                                                   ip::Ipv4Addr peer,
                                                   std::string_view reason) {
        auto it = port_of_peer.find(peer.value());
        note_down_declaration(d, it == port_of_peer.end() ? 0 : it->second,
                              at);
        if (prev) prev(at, peer, reason);
      };
    }
  }
}

bool FabricAuditor::link_unimpaired(std::uint32_t device,
                                    std::uint32_t p) const {
  const net::Node& node = dep_.router(device);
  if (p == 0 || p > node.port_count()) return false;
  const net::Port& port = node.port(p);
  if (!port.connected() || !port.admin_up()) return false;
  const net::Port* peer = port.peer();
  if (peer == nullptr || !peer->admin_up()) return false;
  const net::Link* link = port.link();
  for (net::Link::Dir dir : {net::Link::Dir::kAToB, net::Link::Dir::kBToA}) {
    if (link->blackholed(dir) || link->effective_loss(dir) > 0.0) return false;
  }
  return true;
}

void FabricAuditor::note_down_declaration(std::uint32_t device,
                                          std::uint32_t port, sim::Time at) {
  ++downs_;
  int depth = 1;
  for (auto it = down_events_.rbegin(); it != down_events_.rend(); ++it) {
    if (at - it->at > cascade_window_) break;
    if (it->device == device) continue;
    auto pair = std::make_pair(std::min(device, it->device),
                               std::max(device, it->device));
    if (adjacent_.contains(pair)) depth = std::max(depth, it->depth + 1);
  }
  down_events_.push_back(DownEvent{at, device, depth});
  max_cascade_depth_ = std::max(max_cascade_depth_, depth);

  if (link_unimpaired(device, port)) {
    ++false_dead_;
    log_.push_back(Violation{
        at, dep_.router(device).name(), InvariantKind::kFalseDeadNeighbor,
        "neighbor on port " + std::to_string(port) +
            " declared dead while the link is up and unimpaired"});
  }
}

void FabricAuditor::flag(std::vector<Violation>& out, std::uint32_t device,
                         InvariantKind kind, std::string detail) {
  const std::string& name = dep_.router(device).name();
  std::string key = name + "|" + std::string(to_string(kind)) + "|" + detail;
  if (!seen_this_sweep_.insert(std::move(key)).second) return;
  out.push_back(Violation{dep_.ctx().now(), name, kind, std::move(detail)});
}

void FabricAuditor::flag_dead_end(std::vector<Violation>& out,
                                  std::uint32_t device, std::uint32_t dst_leaf,
                                  InvariantKind kind, std::string detail) {
  // Routing cannot beat physics: a probe dying with no live path left is
  // expected, not a violation.
  if (!physically_reachable(device, dst_leaf)) return;
  flag(out, device, kind, std::move(detail));
}

bool FabricAuditor::hop_usable(std::uint32_t device, std::uint32_t p) const {
  const net::Node& node = dep_.router(device);
  if (p == 0 || p > node.port_count()) return false;
  const net::Port& port = node.port(p);
  if (!port.connected() || !port.admin_up()) return false;
  const net::Port* peer = port.peer();
  if (peer == nullptr || !peer->admin_up()) return false;
  const net::Link* link = port.link();
  return link->deliverable(link->direction_from(port));
}

std::optional<std::uint32_t> FabricAuditor::peer_router(
    std::uint32_t device, std::uint32_t p) const {
  const net::Port& port = dep_.router(device).port(p);
  const net::Port* peer = port.peer();
  if (peer == nullptr) return std::nullopt;
  auto it = router_index_.find(&peer->owner());
  if (it == router_index_.end()) return std::nullopt;  // host
  return it->second;
}

bool FabricAuditor::physically_reachable(std::uint32_t from,
                                         std::uint32_t to) const {
  if (from == to) return true;
  std::set<std::uint32_t> visited{from};
  std::deque<std::uint32_t> queue{from};
  while (!queue.empty()) {
    std::uint32_t d = queue.front();
    queue.pop_front();
    const net::Node& node = dep_.router(d);
    for (std::uint32_t p = 1; p <= node.port_count(); ++p) {
      if (!hop_usable(d, p)) continue;
      auto peer = peer_router(d, p);
      if (!peer || !visited.insert(*peer).second) continue;
      if (*peer == to) return true;
      queue.push_back(*peer);
    }
  }
  return false;
}

// --- MTP ---

void FabricAuditor::audit_mtp(std::vector<Violation>& out) {
  // Invariant 1: every VID-table entry points at a usable, accepted port.
  // Powered-off routers hold no state worth auditing.
  for (std::uint32_t d = 0; d < dep_.router_count(); ++d) {
    if (!dep_.router_active(d)) continue;
    mtp::MtpRouter& r = dep_.mtp(d);
    const net::Node& node = dep_.router(d);
    for (const mtp::VidEntry& e : r.vid_table().entries()) {
      if (e.port == 0) continue;  // a ToR's own root VID
      std::string_view why;
      if (e.port > node.port_count() || !node.port(e.port).connected()) {
        why = "unwired port";
      } else if (!node.port(e.port).admin_up()) {
        why = "admin-down port";
      } else if (!r.neighbor_alive(e.port)) {
        why = "dead neighbor";
      } else {
        continue;
      }
      flag(out, d, InvariantKind::kStaleVidEntry,
           "vid " + e.vid.str() + " -> port " + std::to_string(e.port) + " (" +
               std::string(why) + ")");
    }
  }

  // Invariants 2+3: probes from every leaf toward every other ToR tree must
  // neither loop nor die while a live path exists.
  for (const auto& [root, dst_leaf] : leaf_of_root_) {
    if (!leaf_probeable(dst_leaf)) continue;
    for (const auto& [src_root, src_leaf] : leaf_of_root_) {
      if (src_leaf == dst_leaf || !leaf_probeable(src_leaf)) continue;
      std::set<std::pair<std::uint32_t, bool>> on_path;
      walk_mtp(src_leaf, root, dst_leaf, false, on_path, 0, out);
    }
  }
}

void FabricAuditor::walk_mtp(std::uint32_t device, std::uint16_t dst_root,
                             std::uint32_t dst_leaf, bool came_down,
                             std::set<std::pair<std::uint32_t, bool>>& on_path,
                             int depth, std::vector<Violation>& out) {
  mtp::MtpRouter& r = dep_.mtp(device);
  if (r.is_leaf() && r.own_vid() == dst_root) return;  // delivered
  if (depth >= kMaxProbeDepth) {
    flag(out, device, InvariantKind::kForwardingLoop,
         "probe toward root " + std::to_string(dst_root) +
             " exhausted TTL (likely loop)");
    return;
  }
  auto state = std::make_pair(device, came_down);
  if (!on_path.insert(state).second) {
    flag(out, device, InvariantKind::kForwardingLoop,
         "probe toward root " + std::to_string(dst_root) +
             " revisited this hop");
    return;
  }

  // The data plane's decision: VID table down if it knows the tree, else
  // hash-load-balance up — and never bounce back up after turning down.
  std::set<std::uint32_t> ports;
  bool going_down = false;
  for (const mtp::VidEntry& e : r.vid_table().entries_for_root(dst_root)) {
    if (e.port != 0) ports.insert(e.port);
  }
  if (!ports.empty()) {
    going_down = true;
  } else if (came_down) {
    flag_dead_end(out, device, dst_leaf, InvariantKind::kForwardingBlackhole,
                  "downward probe toward root " + std::to_string(dst_root) +
                      " found no VID entry");
    on_path.erase(state);
    return;
  } else {
    auto ups = r.eligible_up_ports(dst_root);
    ports.insert(ups.begin(), ups.end());
    if (ports.empty()) {
      // Live uplinks ruled out only by exclusions is its own invariant class.
      bool live_uplink = false;
      const net::Node& node = dep_.router(device);
      for (std::uint32_t p = 1; p <= node.port_count(); ++p) {
        auto peer = peer_router(device, p);
        if (!peer) continue;
        if (dep_.blueprint().device(*peer).tier <=
            dep_.blueprint().device(device).tier) {
          continue;
        }
        if (node.port(p).admin_up() && r.neighbor_alive(p)) {
          live_uplink = true;
          break;
        }
      }
      flag_dead_end(out, device, dst_leaf,
                    live_uplink ? InvariantKind::kExclusionBlackhole
                                : InvariantKind::kForwardingBlackhole,
                    "no eligible uplink toward root " +
                        std::to_string(dst_root) +
                        (live_uplink ? " (live uplinks excluded)" : ""));
      on_path.erase(state);
      return;
    }
  }

  for (std::uint32_t p : ports) {
    if (!hop_usable(device, p)) {
      flag_dead_end(out, device, dst_leaf,
                    InvariantKind::kForwardingBlackhole,
                    "probe toward root " + std::to_string(dst_root) +
                        " died on the wire at port " + std::to_string(p));
      continue;
    }
    auto peer = peer_router(device, p);
    if (!peer) continue;
    walk_mtp(*peer, dst_root, dst_leaf, going_down, on_path, depth + 1, out);
  }
  on_path.erase(state);
}

// --- BGP ---

void FabricAuditor::audit_bgp(std::vector<Violation>& out) {
  // Invariant 1: every installed BGP next-hop egresses a usable port.
  // Powered-off routers hold no state worth auditing.
  for (std::uint32_t d = 0; d < dep_.router_count(); ++d) {
    if (!dep_.router_active(d)) continue;
    bgp::BgpRouter& r = dep_.bgp(d);
    const net::Node& node = dep_.router(d);
    for (const ip::Route* route : r.routes().sorted_routes()) {
      if (route->proto != ip::RouteProto::kBgp) continue;
      for (const ip::NextHop& nh : route->nexthops) {
        std::string_view why;
        if (nh.port == 0 || nh.port > node.port_count() ||
            !node.port(nh.port).connected()) {
          why = "unwired port";
        } else if (!node.port(nh.port).admin_up()) {
          why = "admin-down port";
        } else {
          continue;
        }
        flag(out, d, InvariantKind::kStaleNextHop,
             route->prefix.str() + " via port " + std::to_string(nh.port) +
                 " (" + std::string(why) + ")");
      }
    }
  }

  // Invariants 2+3: probe every host address from every other leaf.
  for (const topo::HostSpec& hs : dep_.blueprint().hosts()) {
    if (!leaf_probeable(hs.leaf)) continue;
    for (const auto& [src_root, src_leaf] : leaf_of_root_) {
      if (src_leaf == hs.leaf || !leaf_probeable(src_leaf)) continue;
      std::set<std::uint32_t> on_path;
      walk_bgp(src_leaf, hs.addr, hs.leaf, on_path, 0, out);
    }
  }
}

void FabricAuditor::walk_bgp(std::uint32_t device, ip::Ipv4Addr dst,
                             std::uint32_t dst_leaf,
                             std::set<std::uint32_t>& on_path, int depth,
                             std::vector<Violation>& out) {
  if (depth >= kMaxProbeDepth) {
    flag(out, device, InvariantKind::kForwardingLoop,
         "probe toward " + dst.str() + " exhausted TTL (likely loop)");
    return;
  }
  if (!on_path.insert(device).second) {
    flag(out, device, InvariantKind::kForwardingLoop,
         "probe toward " + dst.str() + " revisited this hop");
    return;
  }
  bgp::BgpRouter& r = dep_.bgp(device);
  const ip::Route* route = r.routes().lookup(dst);
  if (route == nullptr || route->nexthops.empty()) {
    flag_dead_end(out, device, dst_leaf,
                  InvariantKind::kForwardingBlackhole,
                  "no route toward " + dst.str());
    on_path.erase(device);
    return;
  }
  if (route->proto == ip::RouteProto::kConnected) {
    // The rack subnet's gateway: delivered (host links are out of scope).
    on_path.erase(device);
    return;
  }
  for (const ip::NextHop& nh : route->nexthops) {
    if (!hop_usable(device, nh.port)) {
      flag_dead_end(out, device, dst_leaf,
                    InvariantKind::kForwardingBlackhole,
                    "probe toward " + dst.str() + " died on the wire at port " +
                        std::to_string(nh.port));
      continue;
    }
    auto peer = peer_router(device, nh.port);
    if (!peer) continue;
    walk_bgp(*peer, dst, dst_leaf, on_path, depth + 1, out);
  }
  on_path.erase(device);
}

}  // namespace mrmtp::harness
