// Fixed-width table and CSV reporters for the figure-reproduction benches.
#pragma once

#include <string>
#include <vector>

namespace mrmtp::net {
class Network;
}

namespace mrmtp::harness {

/// Accumulates rows and prints an aligned ASCII table plus (optionally) CSV,
/// matching the "rows the paper reports" requirement: one table per figure.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Aligned human-readable rendering.
  [[nodiscard]] std::string str() const;
  /// Machine-readable CSV.
  [[nodiscard]] std::string csv() const;

  void print(bool with_csv = false) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helper ("%.1f" etc.).
[[nodiscard]] std::string fmt(double value, int decimals = 1);

/// Per-direction link delivery/drop counters, one row per direction — the
/// asymmetry of a gray failure shows as one dirty and one clean row. With
/// `busy_only` (default) links with no drops in either direction are elided.
[[nodiscard]] Table link_direction_table(const net::Network& network,
                                         bool busy_only = true);

class Deployment;

/// Per-node data-path health: forwards served, allocation-free picks, and
/// uplink candidate-cache hits/misses with the per-node hit rate, closed by
/// a TOTAL row and a [scheduler] row (events fired, heap high-water,
/// reschedules, compactions). With `busy_only` (default) MTP routers that
/// forwarded nothing are elided; under BGP only the scheduler row remains.
[[nodiscard]] Table hot_path_table(Deployment& dep, bool busy_only = true);

}  // namespace mrmtp::harness
