// Fixed-width table and CSV reporters for the figure-reproduction benches.
#pragma once

#include <string>
#include <vector>

namespace mrmtp::net {
class Network;
}

namespace mrmtp::harness {

/// Accumulates rows and prints an aligned ASCII table plus (optionally) CSV,
/// matching the "rows the paper reports" requirement: one table per figure.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Aligned human-readable rendering.
  [[nodiscard]] std::string str() const;
  /// Machine-readable CSV.
  [[nodiscard]] std::string csv() const;

  void print(bool with_csv = false) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helper ("%.1f" etc.).
[[nodiscard]] std::string fmt(double value, int decimals = 1);

/// Per-direction link delivery/drop counters, one row per direction — the
/// asymmetry of a gray failure shows as one dirty and one clean row. With
/// `busy_only` (default) links with no drops in either direction are elided.
[[nodiscard]] Table link_direction_table(const net::Network& network,
                                         bool busy_only = true);

}  // namespace mrmtp::harness
