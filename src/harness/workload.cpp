#include "harness/workload.hpp"

#include <algorithm>
#include <chrono>
#include <optional>

#include "harness/auditor.hpp"
#include "net/switch_buffer.hpp"
#include "topo/chaos.hpp"

namespace mrmtp::harness {

WorkloadRunResult run_workload(const WorkloadRunSpec& spec) {
  const bool sharded = spec.threads >= 2 || spec.force_parallel_engine;
  topo::ClosBlueprint blueprint(spec.topo);
  std::optional<net::SimContext> ctx;
  std::optional<ShardedFabric> fabric;
  std::optional<Deployment> dep;
  if (sharded) {
    fabric.emplace(blueprint, std::max<std::uint32_t>(spec.threads, 1),
                   spec.seed);
    dep.emplace(*fabric, spec.proto, spec.options);
  } else {
    ctx.emplace(spec.seed);
    dep.emplace(*ctx, blueprint, spec.proto, spec.options);
  }

  const sim::Time t_launch = sim::Time::zero() + spec.settle;
  const sim::Time t_end = t_launch + spec.launch_window + spec.drain;

  dep->start();

  std::vector<traffic::Host*> hosts;
  hosts.reserve(dep->host_count());
  for (std::uint32_t h = 0; h < dep->host_count(); ++h) {
    hosts.push_back(&dep->host(h));
  }
  traffic::WorkloadSpec w = spec.workload;
  if (w.edge_bw_bps == 0) {
    w.edge_bw_bps = spec.options.host_link.bandwidth_bps;
  }
  traffic::WorkloadEngine engine(std::move(hosts), std::move(w), spec.seed);
  engine.launch(t_launch, spec.launch_window);

  topo::FailureInjector injector(dep->network(), blueprint);
  if (spec.inject_failure) {
    injector.schedule_failure(spec.tc, t_launch + spec.failure_after);
  }

  // Seeded buffer-squeeze chaos, spread evenly across the launch window.
  std::optional<topo::ChaosEngine> chaos;
  if (spec.chaos_squeezes > 0) {
    chaos.emplace(dep->network(), blueprint, spec.seed ^ 0x53515a45ull);
    topo::ChaosEngine::CampaignSpec camp;
    camp.events = static_cast<int>(spec.chaos_squeezes);
    camp.spacing = spec.launch_window / (spec.chaos_squeezes + 1);
    camp.start = t_launch + camp.spacing;
    camp.heal_after = camp.spacing / 2;
    camp.w_blackhole = camp.w_loss = camp.w_ramp = 0;
    camp.w_flap = camp.w_correlated = camp.w_congestion = 0;
    camp.w_squeeze = 1.0;
    camp.squeeze_frac = spec.squeeze_frac;
    chaos->run_campaign(camp);
  }

  std::optional<FabricAuditor> auditor;
  if (spec.audit) {
    auditor.emplace(*dep);
    if (!sharded) auditor->start(spec.audit_period);
  }

  // Pause just before launch for the cross-shard converged() snapshot (the
  // sharded engine forbids cross-shard reads mid-window), then run out the
  // campaign. The classic scheduler takes the same two-step path.
  auto run_until = [&](sim::Time target) {
    if (sharded) {
      fabric->engine().run_until(target);
    } else {
      ctx->sched.run_until(target);
    }
  };
  WorkloadRunResult result;
  auto wall_start = std::chrono::steady_clock::now();
  run_until(t_launch - sim::Duration::nanos(1));
  result.initial_converged = dep->converged();
  run_until(t_end);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  result.flows = engine.collect(t_end);
  if (sharded) {
    result.threads_used = fabric->shard_count();
    for (std::uint32_t s = 0; s < fabric->shard_count(); ++s) {
      result.events_fired += fabric->ctx(s).sched.events_fired();
    }
  } else {
    result.events_fired = ctx->sched.events_fired();
  }
  for (const auto& link : dep->network().links()) {
    const net::Link::Stats& ls = link->stats();
    for (const net::Link::DirStats* ds : {&ls.ab, &ls.ba}) {
      result.data_queue_drops +=
          ds->dropped_queue_full - ds->dropped_queue_control;
      result.ecn_marked += ds->ecn_marked_data + ds->ecn_marked_ctrl;
      result.pause_tx += ds->pause_tx;
      result.pause_rx += ds->pause_rx;
      result.buffer_drops += ds->dropped_buffer;
      result.ctrl_queue_drops += ds->dropped_queue_control;
      result.flows.flowlet_reroutes += ds->flowlet_reroutes;
      result.flows.wcmp_weight_updates += ds->wcmp_weight_updates;
    }
  }
  for (std::uint32_t d = 0; d < dep->router_count(); ++d) {
    const net::SwitchBuffer* sb = dep->router(d).switch_buffer();
    if (sb == nullptr || sb->params().pool_bytes == 0) continue;
    result.occupancy_hw_ratio =
        std::max(result.occupancy_hw_ratio,
                 static_cast<double>(sb->stats().occupancy_hw) /
                     static_cast<double>(sb->params().pool_bytes));
  }
  if (auditor.has_value()) {
    // The sharded engine has stopped; cross-shard reads are legal now. The
    // classic path also takes a final sweep so both engines score the
    // end-state invariants.
    auditor->stop();
    auditor->sweep();
    result.pfc_deadlocks = auditor->pfc_deadlocks();
    result.audit_violations = auditor->violations().size();
  }
  return result;
}

}  // namespace mrmtp::harness
