#include "harness/workload.hpp"

#include <chrono>
#include <optional>

namespace mrmtp::harness {

WorkloadRunResult run_workload(const WorkloadRunSpec& spec) {
  const bool sharded = spec.threads >= 2 || spec.force_parallel_engine;
  topo::ClosBlueprint blueprint(spec.topo);
  std::optional<net::SimContext> ctx;
  std::optional<ShardedFabric> fabric;
  std::optional<Deployment> dep;
  if (sharded) {
    fabric.emplace(blueprint, std::max<std::uint32_t>(spec.threads, 1),
                   spec.seed);
    dep.emplace(*fabric, spec.proto, spec.options);
  } else {
    ctx.emplace(spec.seed);
    dep.emplace(*ctx, blueprint, spec.proto, spec.options);
  }

  const sim::Time t_launch = sim::Time::zero() + spec.settle;
  const sim::Time t_end = t_launch + spec.launch_window + spec.drain;

  dep->start();

  std::vector<traffic::Host*> hosts;
  hosts.reserve(dep->host_count());
  for (std::uint32_t h = 0; h < dep->host_count(); ++h) {
    hosts.push_back(&dep->host(h));
  }
  traffic::WorkloadSpec w = spec.workload;
  if (w.edge_bw_bps == 0) {
    w.edge_bw_bps = spec.options.host_link.bandwidth_bps;
  }
  traffic::WorkloadEngine engine(std::move(hosts), std::move(w), spec.seed);
  engine.launch(t_launch, spec.launch_window);

  topo::FailureInjector injector(dep->network(), blueprint);
  if (spec.inject_failure) {
    injector.schedule_failure(spec.tc, t_launch + spec.failure_after);
  }

  // Pause just before launch for the cross-shard converged() snapshot (the
  // sharded engine forbids cross-shard reads mid-window), then run out the
  // campaign. The classic scheduler takes the same two-step path.
  auto run_until = [&](sim::Time target) {
    if (sharded) {
      fabric->engine().run_until(target);
    } else {
      ctx->sched.run_until(target);
    }
  };
  WorkloadRunResult result;
  auto wall_start = std::chrono::steady_clock::now();
  run_until(t_launch - sim::Duration::nanos(1));
  result.initial_converged = dep->converged();
  run_until(t_end);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  result.flows = engine.collect(t_end);
  if (sharded) {
    result.threads_used = fabric->shard_count();
    for (std::uint32_t s = 0; s < fabric->shard_count(); ++s) {
      result.events_fired += fabric->ctx(s).sched.events_fired();
    }
  } else {
    result.events_fired = ctx->sched.events_fired();
  }
  for (const auto& link : dep->network().links()) {
    const net::Link::Stats& ls = link->stats();
    for (const net::Link::DirStats* ds : {&ls.ab, &ls.ba}) {
      result.data_queue_drops +=
          ds->dropped_queue_full - ds->dropped_queue_control;
    }
  }
  return result;
}

}  // namespace mrmtp::harness
