#include "harness/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <optional>

#include "harness/auditor.hpp"
#include "topo/chaos.hpp"

namespace mrmtp::harness {

namespace {

/// Sums transmitted L2 bytes of one traffic class over every fabric port.
struct ByteSnapshot {
  std::uint64_t raw = 0;
  std::uint64_t padded = 0;
};

ByteSnapshot bgp_update_bytes(Deployment& dep) {
  ByteSnapshot snap;
  for (std::size_t d = 0; d < dep.router_count(); ++d) {
    net::Node& node = dep.router(static_cast<std::uint32_t>(d));
    for (std::uint32_t p = 1; p <= node.port_count(); ++p) {
      const auto& c =
          node.port(p).tx_stats().of(net::TrafficClass::kBgpUpdate);
      snap.raw += c.bytes;
      snap.padded += c.padded_bytes;
    }
  }
  return snap;
}

ByteSnapshot mtp_update_bytes(Deployment& dep) {
  ByteSnapshot snap;
  for (std::size_t d = 0; d < dep.router_count(); ++d) {
    const auto& stats =
        dep.mtp(static_cast<std::uint32_t>(d)).mtp_stats();
    snap.raw += stats.update_bytes_raw;
    snap.padded += stats.update_bytes_padded;
  }
  return snap;
}

ByteSnapshot update_bytes(Deployment& dep) {
  return dep.proto() == Proto::kMtp ? mtp_update_bytes(dep)
                                    : bgp_update_bytes(dep);
}

/// Per-flow roll-up of the probe traffic between one sender/receiver pair.
/// The probe stream is open-ended (no total-count header), so instead of a
/// schedule join the FCT samples are delivery spans: first to last arrival.
traffic::FlowStats probe_flow_stats(const traffic::Host& sender,
                                    const traffic::Host& receiver) {
  traffic::FlowStats st;
  st.flows_started = sender.flows_started();
  st.packets_sent = sender.packets_sent();
  std::vector<double> spans;
  spans.reserve(receiver.flow_records().size());
  double sum = 0;
  for (const auto& [id, rec] : receiver.flow_records()) {
    ++st.flows_delivered;
    st.packets_delivered += rec.received;
    st.unique_delivered += rec.unique;
    st.duplicates += rec.duplicates;
    st.out_of_order += rec.out_of_order;
    st.ancient += rec.ancient;
    st.bytes_delivered += rec.bytes;
    if (rec.complete()) {
      ++st.flows_completed;
    } else {
      ++st.flows_incomplete;
    }
    const double ms = (rec.last_arrival - rec.first_arrival).to_millis();
    spans.push_back(ms);
    sum += ms;
  }
  std::sort(spans.begin(), spans.end());
  st.fct_samples = spans.size();
  if (!spans.empty()) {
    st.fct_p50_ms = traffic::quantile_sorted(spans, 0.50);
    st.fct_p99_ms = traffic::quantile_sorted(spans, 0.99);
    st.fct_p999_ms = traffic::quantile_sorted(spans, 0.999);
    st.fct_mean_ms = sum / static_cast<double>(spans.size());
    st.fct_min_ms = spans.front();
    st.fct_max_ms = spans.back();
  }
  return st;
}

/// The sharded twin of run_failure_experiment. Structure and event timeline
/// are identical; the differences are exactly the ones thread-safety forces:
///
///   * Instrumentation callbacks write per-shard single-writer slots (merged
///     after the run) instead of shared locals — a shard only ever touches
///     its own entry, and the engine's thread joins order those writes
///     before the merge.
///   * The pre-failure snapshot (converged(), byte counters, arming the
///     trackers) reads cross-shard state, so instead of riding an in-band
///     event at t_fail it runs on this thread while the engine is paused at
///     t_fail - 1ns. Arming therefore still precedes every event at t_fail,
///     exactly like the in-band snapshot (which wins t_fail ties by
///     insertion order).
///   * Auditor sweeps also read cross-shard state, so the periodic timer is
///     replaced by pausing the engine at each tick and sweeping inline.
ExperimentResult run_sharded_experiment(const ExperimentSpec& spec) {
  topo::ClosBlueprint blueprint(spec.topo);
  ShardedFabric fabric(blueprint, std::max<std::uint32_t>(spec.threads, 1),
                       spec.seed);
  Deployment dep(fabric, spec.proto, spec.options);
  sim::ShardedEngine& engine = fabric.engine();
  const std::uint32_t shards = fabric.shard_count();

  const sim::Time t_traffic = sim::Time::zero() + spec.settle;
  const sim::Time t_fail = t_traffic + spec.traffic_lead;
  const sim::Time t_end = t_fail + spec.post_failure;
  const sim::Time t_run_end = t_end + sim::Duration::millis(200);

  // --- instrumentation (per-shard slots; std::uint8_t, never vector<bool>,
  // so adjacent shards write distinct memory locations) ---
  struct Track {
    std::uint8_t changed_any = 0;
    std::uint8_t changed_remote = 0;
  };
  std::vector<Track> tracks(dep.router_count());
  std::vector<sim::Time> last_update(shards, sim::Time::zero());
  std::vector<std::uint64_t> update_events(shards, 0);
  std::vector<std::uint8_t> detected(shards, 0);
  std::vector<sim::Time> detect_at(shards, sim::Time::zero());
  // Written only while the engine is paused; shard threads merely read it.
  bool armed = false;

  for (std::uint32_t d = 0; d < dep.router_count(); ++d) {
    Track& track = tracks[d];
    const std::uint32_t s = fabric.plan().shard_of(d);
    sim::Time* lu = &last_update[s];
    std::uint64_t* ue = &update_events[s];
    std::uint8_t* det = &detected[s];
    sim::Time* dat = &detect_at[s];
    auto note_detection = [&armed, det, dat](sim::Time at) {
      if (!armed || *det != 0) return;
      *det = 1;
      *dat = at;  // first per shard == earliest per shard (time order)
    };
    if (spec.proto == Proto::kMtp) {
      auto& router = dep.mtp(d);
      router.on_update_activity = [&armed, lu, ue](sim::Time at) {
        if (!armed) return;
        *lu = std::max(*lu, at);
        ++*ue;
      };
      router.on_table_change = [&track, &armed](sim::Time, bool from_update) {
        if (!armed) return;
        track.changed_any = 1;
        if (from_update) track.changed_remote = 1;
      };
      router.on_neighbor_down = [note_detection](sim::Time at, std::uint32_t,
                                                 bool local_detect) {
        if (local_detect) note_detection(at);
      };
    } else {
      auto& router = dep.bgp(d);
      router.on_update_activity = [&armed, lu, ue](sim::Time at) {
        if (!armed) return;
        *lu = std::max(*lu, at);
        ++*ue;
      };
      router.on_session_down = [note_detection](sim::Time at, ip::Ipv4Addr,
                                                std::string_view) {
        note_detection(at);
      };
      router.on_rib_change = [&track, &armed](sim::Time) {
        if (!armed) return;
        track.changed_any = 1;
        track.changed_remote = 1;
      };
    }
  }

  dep.start();

  // --- traffic (flow control events belong to the sender's shard) ---
  traffic::Host* sender = nullptr;
  traffic::Host* receiver = nullptr;
  if (spec.with_traffic && dep.host_count() >= 2) {
    std::uint32_t first = 0;
    auto last = static_cast<std::uint32_t>(dep.host_count() - 1);
    sender = &dep.host(spec.reverse_flow ? last : first);
    receiver = &dep.host(spec.reverse_flow ? first : last);
    receiver->listen();
    sender->ctx().sched.schedule_at(t_traffic, [&, sender, receiver] {
      traffic::FlowConfig flow;
      flow.dst = receiver->addr();
      flow.src_port = spec.traffic_src_port;
      flow.gap = spec.traffic_gap;
      flow.payload_size = spec.payload_size;
      sender->start_flow(flow);
    });
    sender->ctx().sched.schedule_at(t_end, [sender] { sender->stop_flow(); });
  }

  // --- failure (the injector and chaos engine route every event to the
  // owning shard themselves) ---
  ExperimentResult result;
  ByteSnapshot before;
  const topo::FailurePoint fp = blueprint.failure_point(spec.tc);
  topo::FailureInjector injector(dep.network(), blueprint);
  topo::ChaosEngine chaos(dep.network(), blueprint, spec.seed);
  using GrayKind = ExperimentSpec::GraySpec::Kind;
  switch (spec.gray.kind) {
    case GrayKind::kNone:
      injector.schedule_failure(spec.tc, t_fail);
      break;
    case GrayKind::kUnidirBlackhole:
      chaos.blackhole_one_way(fp, spec.gray.toward_device, t_fail);
      break;
    case GrayKind::kUnidirLoss:
      chaos.loss_one_way(fp, spec.gray.toward_device, spec.gray.loss, t_fail);
      break;
    case GrayKind::kFlapStorm:
      chaos.flap_storm(fp, t_fail, spec.gray.flaps, spec.gray.flap_period);
      break;
  }

  std::optional<FabricAuditor> auditor;
  std::vector<sim::Time> audit_ticks;
  if (spec.audit) {
    auditor.emplace(dep);
    for (sim::Time t = t_traffic + spec.audit_period; t <= t_run_end;
         t = t + spec.audit_period) {
      audit_ticks.push_back(t);
    }
  }
  std::size_t next_tick = 0;
  auto run_to = [&](sim::Time target) {
    while (next_tick < audit_ticks.size() && audit_ticks[next_tick] <= target) {
      engine.run_until(audit_ticks[next_tick]);
      auditor->sweep();
      ++next_tick;
    }
    engine.run_until(target);
  };

  auto wall_start = std::chrono::steady_clock::now();
  run_to(t_fail - sim::Duration::nanos(1));
  result.initial_converged = dep.converged();
  before = update_bytes(dep);
  armed = true;
  run_to(t_run_end);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // --- merge the per-shard slots ---
  sim::Time last_update_merged = sim::Time::zero();
  std::optional<sim::Time> first_detect;
  for (std::uint32_t s = 0; s < shards; ++s) {
    result.update_events += update_events[s];
    last_update_merged = std::max(last_update_merged, last_update[s]);
    if (detected[s] != 0 && (!first_detect || detect_at[s] < *first_detect)) {
      first_detect = detect_at[s];
    }
  }
  if (result.update_events > 0) result.convergence = last_update_merged - t_fail;
  if (first_detect) {
    result.failure_detected = true;
    result.detection_latency = *first_detect - t_fail;
  }

  if (auditor) {
    result.final_sweep_violations = auditor->sweep();
    result.audit_sweeps = auditor->sweeps();
    result.audit_violations =
        auditor->violations().size() - result.final_sweep_violations;
  }

  std::uint32_t owner = blueprint.device_index(fp.device);
  std::uint32_t peer = blueprint.device_index(fp.peer);
  for (std::uint32_t d = 0; d < dep.router_count(); ++d) {
    if (tracks[d].changed_any != 0) ++result.blast_any;
    bool remote = tracks[d].changed_remote != 0 && d != owner && d != peer;
    if (remote) {
      ++result.blast_remote;
      if (blueprint.device(d).role == topo::Role::kLeaf) {
        ++result.blast_leaf_remote;
      }
    }
  }

  ByteSnapshot after = update_bytes(dep);
  result.ctrl_bytes_raw = after.raw - before.raw;
  result.ctrl_bytes_padded = after.padded - before.padded;

  for (std::uint32_t s = 0; s < shards; ++s) {
    const sim::Scheduler& sched = fabric.ctx(s).sched;
    result.events_fired += sched.events_fired();
    result.queue_high_water =
        std::max(result.queue_high_water, sched.queue_high_water());
    result.sched_reschedules += sched.reschedules();
    result.sched_compactions += sched.compactions();
  }
  if (spec.proto == Proto::kMtp) {
    for (std::uint32_t d = 0; d < dep.router_count(); ++d) {
      const auto& ms = dep.mtp(d).mtp_stats();
      result.allocs_avoided += ms.allocs_avoided;
      result.up_cache_hits += ms.up_cache_hits;
      result.up_cache_misses += ms.up_cache_misses;
    }
  } else {
    for (std::uint32_t d = 0; d < dep.router_count(); ++d) {
      const auto& ss = dep.bgp(d).routes().select_stats();
      result.allocs_avoided += ss.allocs_avoided;
      result.up_cache_hits += ss.cache_hits;
      result.up_cache_misses += ss.cache_misses;
    }
  }

  for (const auto& link : dep.network().links()) {
    const net::Link::Stats& ls = link->stats();
    for (const net::Link::DirStats* ds : {&ls.ab, &ls.ba}) {
      result.ctrl_queue_drops += ds->dropped_queue_control;
      result.data_queue_drops +=
          ds->dropped_queue_full - ds->dropped_queue_control;
      result.ctrl_backlog_hw_ns =
          std::max(result.ctrl_backlog_hw_ns, ds->control_backlog_hw_ns);
      result.data_backlog_hw_ns =
          std::max(result.data_backlog_hw_ns, ds->data_backlog_hw_ns);
      result.ecn_marked += ds->ecn_marked_data + ds->ecn_marked_ctrl;
      result.pause_tx += ds->pause_tx;
      result.pause_rx += ds->pause_rx;
      result.buffer_drops += ds->dropped_buffer;
      result.flowlet_reroutes += ds->flowlet_reroutes;
      result.wcmp_weight_updates += ds->wcmp_weight_updates;
    }
  }

  if (sender != nullptr && receiver != nullptr) {
    result.packets_sent = sender->packets_sent();
    const auto& sink = receiver->sink_stats();
    result.packets_lost = sink.lost(result.packets_sent);
    result.duplicates = sink.duplicates;
    result.out_of_order = sink.out_of_order;
    result.outage = sink.max_gap;
    result.flow_stats = probe_flow_stats(*sender, *receiver);
  }

  const sim::ShardedEngine::Stats& es = engine.stats();
  result.threads_used = shards;
  result.sync_windows = es.windows;
  result.horizon_stalls = es.horizon_stalls;
  result.cross_shard_frames = es.cross_events;
  result.mailbox_high_water = es.mailbox_high_water;
  result.coalesced_windows = es.coalesced_windows;
  for (std::uint32_t i = 0; i < shards; ++i) {
    for (std::uint32_t j = 0; j < shards; ++j) {
      if (i == j) continue;
      const auto la = engine.pair_lookahead(i, j);
      if (!la) continue;
      const auto ns = static_cast<std::uint64_t>(la->ns());
      if (result.pair_lookahead_min_ns == 0 ||
          ns < result.pair_lookahead_min_ns) {
        result.pair_lookahead_min_ns = ns;
      }
      result.pair_lookahead_max_ns = std::max(result.pair_lookahead_max_ns, ns);
    }
  }
  return result;
}

}  // namespace

ExperimentResult run_failure_experiment(const ExperimentSpec& spec) {
  if (spec.threads >= 2 || spec.force_parallel_engine) {
    return run_sharded_experiment(spec);
  }
  net::SimContext ctx(spec.seed);
  topo::ClosBlueprint blueprint(spec.topo);
  Deployment dep(ctx, blueprint, spec.proto, spec.options);

  const sim::Time t_traffic = sim::Time::zero() + spec.settle;
  const sim::Time t_fail = t_traffic + spec.traffic_lead;
  const sim::Time t_end = t_fail + spec.post_failure;

  // --- instrumentation ---
  struct Track {
    bool changed_any = false;
    bool changed_remote = false;
  };
  std::vector<Track> tracks(dep.router_count());
  sim::Time last_update = sim::Time::zero();
  std::uint64_t update_events = 0;
  bool armed = false;  // true once the failure has fired

  // Gray-failure detection: the first post-onset down declaration anywhere.
  bool detected = false;
  sim::Time detect_time = sim::Time::zero();
  auto note_detection = [&](sim::Time at) {
    if (!armed || detected) return;
    detected = true;
    detect_time = at;
  };

  for (std::uint32_t d = 0; d < dep.router_count(); ++d) {
    Track& track = tracks[d];
    if (spec.proto == Proto::kMtp) {
      auto& router = dep.mtp(d);
      router.on_update_activity = [&](sim::Time at) {
        if (!armed) return;
        last_update = at;
        ++update_events;
      };
      router.on_table_change = [&track, &armed](sim::Time, bool from_update) {
        if (!armed) return;
        track.changed_any = true;
        if (from_update) track.changed_remote = true;
      };
      router.on_neighbor_down = [&](sim::Time at, std::uint32_t,
                                    bool local_detect) {
        if (local_detect) note_detection(at);
      };
    } else {
      auto& router = dep.bgp(d);
      router.on_update_activity = [&](sim::Time at) {
        if (!armed) return;
        last_update = at;
        ++update_events;
      };
      router.on_session_down = [&](sim::Time at, ip::Ipv4Addr,
                                   std::string_view) { note_detection(at); };
      router.on_rib_change = [&track, &armed](sim::Time) {
        if (!armed) return;
        track.changed_any = true;
        // BGP routers change tables in response to received UPDATEs except
        // the failure detectors; the runner cannot distinguish locally, so
        // remote counting is refined below by excluding the failure point.
        track.changed_remote = true;
      };
    }
  }

  dep.start();

  // --- traffic ---
  traffic::Host* sender = nullptr;
  traffic::Host* receiver = nullptr;
  if (spec.with_traffic && dep.host_count() >= 2) {
    std::uint32_t first = 0;
    auto last = static_cast<std::uint32_t>(dep.host_count() - 1);
    sender = &dep.host(spec.reverse_flow ? last : first);
    receiver = &dep.host(spec.reverse_flow ? first : last);
    receiver->listen();
    ctx.sched.schedule_at(t_traffic, [&, sender, receiver] {
      traffic::FlowConfig flow;
      flow.dst = receiver->addr();
      flow.src_port = spec.traffic_src_port;
      flow.gap = spec.traffic_gap;
      flow.payload_size = spec.payload_size;
      sender->start_flow(flow);
    });
  }

  // --- failure + snapshots ---
  ExperimentResult result;
  ByteSnapshot before;
  // The snapshot event is scheduled before the injector's so it observes the
  // pre-failure counters (ties break by insertion order).
  ctx.sched.schedule_at(t_fail, [&] {
    result.initial_converged = dep.converged();
    before = update_bytes(dep);
    armed = true;
  });
  const topo::FailurePoint fp = blueprint.failure_point(spec.tc);
  topo::FailureInjector injector(dep.network(), blueprint);
  topo::ChaosEngine chaos(dep.network(), blueprint, spec.seed);
  using GrayKind = ExperimentSpec::GraySpec::Kind;
  switch (spec.gray.kind) {
    case GrayKind::kNone:
      injector.schedule_failure(spec.tc, t_fail);
      break;
    case GrayKind::kUnidirBlackhole:
      chaos.blackhole_one_way(fp, spec.gray.toward_device, t_fail);
      break;
    case GrayKind::kUnidirLoss:
      chaos.loss_one_way(fp, spec.gray.toward_device, spec.gray.loss, t_fail);
      break;
    case GrayKind::kFlapStorm:
      chaos.flap_storm(fp, t_fail, spec.gray.flaps, spec.gray.flap_period);
      break;
  }

  std::optional<FabricAuditor> auditor;
  if (spec.audit) {
    auditor.emplace(dep);
    ctx.sched.schedule_at(t_traffic,
                          [&] { auditor->start(spec.audit_period); });
  }

  if (sender != nullptr) {
    ctx.sched.schedule_at(t_end, [sender] { sender->stop_flow(); });
  }
  auto wall_start = std::chrono::steady_clock::now();
  ctx.sched.run_until(t_end + sim::Duration::millis(200));
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // --- collect ---
  if (update_events > 0) result.convergence = last_update - t_fail;
  result.update_events = update_events;

  result.failure_detected = detected;
  if (detected) result.detection_latency = detect_time - t_fail;

  if (auditor) {
    auditor->stop();
    result.final_sweep_violations = auditor->sweep();
    result.audit_sweeps = auditor->sweeps();
    result.audit_violations =
        auditor->violations().size() - result.final_sweep_violations;
  }

  // Identify the two routers adjacent to the failed link: the interface
  // owner and its peer. Their own-detection table changes are not part of
  // the received-update blast radius.
  std::uint32_t owner = blueprint.device_index(fp.device);
  std::uint32_t peer = blueprint.device_index(fp.peer);

  for (std::uint32_t d = 0; d < dep.router_count(); ++d) {
    if (tracks[d].changed_any) ++result.blast_any;
    bool remote = tracks[d].changed_remote && d != owner && d != peer;
    if (remote) {
      ++result.blast_remote;
      if (blueprint.device(d).role == topo::Role::kLeaf) {
        ++result.blast_leaf_remote;
      }
    }
  }

  ByteSnapshot after = update_bytes(dep);
  result.ctrl_bytes_raw = after.raw - before.raw;
  result.ctrl_bytes_padded = after.padded - before.padded;

  result.events_fired = ctx.sched.events_fired();
  result.queue_high_water = ctx.sched.queue_high_water();
  result.sched_reschedules = ctx.sched.reschedules();
  result.sched_compactions = ctx.sched.compactions();
  if (spec.proto == Proto::kMtp) {
    for (std::uint32_t d = 0; d < dep.router_count(); ++d) {
      const auto& ms = dep.mtp(d).mtp_stats();
      result.allocs_avoided += ms.allocs_avoided;
      result.up_cache_hits += ms.up_cache_hits;
      result.up_cache_misses += ms.up_cache_misses;
    }
  } else {
    for (std::uint32_t d = 0; d < dep.router_count(); ++d) {
      const auto& ss = dep.bgp(d).routes().select_stats();
      result.allocs_avoided += ss.allocs_avoided;
      result.up_cache_hits += ss.cache_hits;
      result.up_cache_misses += ss.cache_misses;
    }
  }

  for (const auto& link : dep.network().links()) {
    const net::Link::Stats& ls = link->stats();
    for (const net::Link::DirStats* ds : {&ls.ab, &ls.ba}) {
      result.ctrl_queue_drops += ds->dropped_queue_control;
      result.data_queue_drops +=
          ds->dropped_queue_full - ds->dropped_queue_control;
      result.ctrl_backlog_hw_ns =
          std::max(result.ctrl_backlog_hw_ns, ds->control_backlog_hw_ns);
      result.data_backlog_hw_ns =
          std::max(result.data_backlog_hw_ns, ds->data_backlog_hw_ns);
      result.ecn_marked += ds->ecn_marked_data + ds->ecn_marked_ctrl;
      result.pause_tx += ds->pause_tx;
      result.pause_rx += ds->pause_rx;
      result.buffer_drops += ds->dropped_buffer;
      result.flowlet_reroutes += ds->flowlet_reroutes;
      result.wcmp_weight_updates += ds->wcmp_weight_updates;
    }
  }

  if (sender != nullptr && receiver != nullptr) {
    result.packets_sent = sender->packets_sent();
    const auto& sink = receiver->sink_stats();
    result.packets_lost = sink.lost(result.packets_sent);
    result.duplicates = sink.duplicates;
    result.out_of_order = sink.out_of_order;
    result.outage = sink.max_gap;
    result.flow_stats = probe_flow_stats(*sender, *receiver);
  }
  return result;
}

AveragedResult run_averaged(ExperimentSpec spec,
                            const std::vector<std::uint64_t>& seeds) {
  AveragedResult avg;
  double cache_hits = 0;
  double cache_misses = 0;
  for (std::uint64_t seed : seeds) {
    spec.seed = seed;
    ExperimentResult r = run_failure_experiment(spec);
    avg.convergence_ms += r.convergence.to_millis();
    avg.blast_any += static_cast<double>(r.blast_any);
    avg.blast_remote += static_cast<double>(r.blast_remote);
    avg.blast_leaf_remote += static_cast<double>(r.blast_leaf_remote);
    avg.ctrl_bytes_raw += static_cast<double>(r.ctrl_bytes_raw);
    avg.ctrl_bytes_padded += static_cast<double>(r.ctrl_bytes_padded);
    avg.packets_lost += static_cast<double>(r.packets_lost);
    avg.duplicates += static_cast<double>(r.duplicates);
    avg.out_of_order += static_cast<double>(r.out_of_order);
    avg.outage_ms += r.outage.to_millis();
    avg.audit_violations += static_cast<double>(r.audit_violations);
    avg.final_violations += static_cast<double>(r.final_sweep_violations);
    if (r.wall_seconds > 0) {
      avg.events_per_sec +=
          static_cast<double>(r.events_fired) / r.wall_seconds;
    }
    avg.queue_high_water = std::max(
        avg.queue_high_water, static_cast<double>(r.queue_high_water));
    avg.allocs_avoided += static_cast<double>(r.allocs_avoided);
    avg.ctrl_queue_drops += static_cast<double>(r.ctrl_queue_drops);
    avg.data_queue_drops += static_cast<double>(r.data_queue_drops);
    avg.ecn_marked += static_cast<double>(r.ecn_marked);
    avg.pause_tx += static_cast<double>(r.pause_tx);
    avg.pause_rx += static_cast<double>(r.pause_rx);
    avg.buffer_drops += static_cast<double>(r.buffer_drops);
    avg.ctrl_backlog_hw_ns = std::max(
        avg.ctrl_backlog_hw_ns, static_cast<double>(r.ctrl_backlog_hw_ns));
    avg.data_backlog_hw_ns = std::max(
        avg.data_backlog_hw_ns, static_cast<double>(r.data_backlog_hw_ns));
    cache_hits += static_cast<double>(r.up_cache_hits);
    cache_misses += static_cast<double>(r.up_cache_misses);
    avg.convergence_dist.add(r.convergence.to_millis());
    avg.loss_dist.add(static_cast<double>(r.packets_lost));
    avg.ctrl_bytes_dist.add(static_cast<double>(r.ctrl_bytes_raw));
    if (r.failure_detected) {
      ++avg.detected_runs;
      avg.detection_ms += r.detection_latency.to_millis();
      avg.detection_dist.add(r.detection_latency.to_millis());
    }
    ++avg.runs;
    if (r.initial_converged) ++avg.converged_runs;
  }
  if (avg.detected_runs > 0) avg.detection_ms /= avg.detected_runs;
  if (avg.runs > 0) {
    double n = avg.runs;
    avg.convergence_ms /= n;
    avg.blast_any /= n;
    avg.blast_remote /= n;
    avg.blast_leaf_remote /= n;
    avg.ctrl_bytes_raw /= n;
    avg.ctrl_bytes_padded /= n;
    avg.packets_lost /= n;
    avg.duplicates /= n;
    avg.out_of_order /= n;
    avg.outage_ms /= n;
    avg.audit_violations /= n;
    avg.final_violations /= n;
    avg.events_per_sec /= n;
    avg.allocs_avoided /= n;
    avg.ctrl_queue_drops /= n;
    avg.data_queue_drops /= n;
    avg.ecn_marked /= n;
    avg.pause_tx /= n;
    avg.pause_rx /= n;
    avg.buffer_drops /= n;
  }
  if (cache_hits + cache_misses > 0) {
    avg.cache_hit_rate = cache_hits / (cache_hits + cache_misses);
  }
  return avg;
}

}  // namespace mrmtp::harness
