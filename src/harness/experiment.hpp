// The failure-experiment runner: deploy, converge, start traffic, fail an
// interface at one of TC1..TC4, and collect the paper's §V metrics —
// convergence time, blast radius, control overhead, and packet loss.
#pragma once

#include <vector>

#include "harness/deploy.hpp"
#include "harness/stats.hpp"
#include "topo/failure.hpp"
#include "traffic/workload.hpp"

namespace mrmtp::harness {

struct ExperimentSpec {
  topo::ClosParams topo = topo::ClosParams::paper_2pod();
  Proto proto = Proto::kMtp;
  topo::TestCase tc = topo::TestCase::kTC1;
  std::uint64_t seed = 1;
  DeployOptions options;

  /// Worker shards for the parallel fabric engine. 0 or 1 = the classic
  /// single-context path, bit-identical to every release so far. >= 2 =
  /// PoD-sharded conservative engine (clamped to the PoD count). Set
  /// `force_parallel_engine` to run the sharded machinery even at one shard:
  /// that configuration is the determinism reference an N-shard run must
  /// reproduce counter-for-counter.
  std::uint32_t threads = 0;
  bool force_parallel_engine = false;

  /// Initial convergence allowance before traffic starts.
  sim::Duration settle = sim::Duration::seconds(3);
  /// Traffic lead time before the failure fires.
  sim::Duration traffic_lead = sim::Duration::seconds(1);
  /// Observation window after the failure (must exceed the slowest dead
  /// timer plus dissemination; BGP's hold timer is 3 s).
  sim::Duration post_failure = sim::Duration::seconds(8);

  /// Probe stream: one packet per `traffic_gap` (3 ms ~ 333 pps, which makes
  /// a 3 s BGP hold-timer outage cost ~1000 packets as in the paper).
  sim::Duration traffic_gap = sim::Duration::millis(3);
  std::size_t payload_size = 64;
  /// Probe-flow source port. The rendezvous hash maps each flow to one
  /// deterministic path, so which flow rides the failed link is a property
  /// of the flow identity — vary this to steer the probe onto/off it.
  std::uint16_t traffic_src_port = 7000;
  /// false: sender near the failure (H-1-1 -> last host, paper Fig. 7);
  /// true: sender at the far end (last host -> H-1-1, paper Fig. 8).
  bool reverse_flow = false;
  bool with_traffic = true;

  /// Gray-failure mode: instead of the clean one-sided interface-down, apply
  /// a ChaosEngine impairment to the same TC link at the failure instant.
  struct GraySpec {
    enum class Kind : std::uint8_t {
      kNone,             // classic interface-down via FailureInjector
      kUnidirBlackhole,  // one direction drops every frame
      kUnidirLoss,       // one direction drops `loss` of frames
      kFlapStorm,        // rapid down/up cycling of the interface
    };
    Kind kind = Kind::kNone;
    /// true: frames *arriving at* the TC device are dropped (it is starved
    /// and must detect); false: frames it sends are dropped instead.
    bool toward_device = true;
    double loss = 0.5;  // kUnidirLoss
    int flaps = 6;      // kFlapStorm
    sim::Duration flap_period = sim::Duration::millis(120);
  };
  GraySpec gray;

  /// Run a FabricAuditor sweep every `audit_period` from traffic start.
  bool audit = false;
  sim::Duration audit_period = sim::Duration::millis(250);
};

struct ExperimentResult {
  bool initial_converged = false;

  /// Failure instant -> last update-message activity (0 if no updates).
  sim::Duration convergence{};
  std::uint64_t update_events = 0;

  /// Blast radius variants (see DESIGN.md §4):
  std::uint64_t blast_any = 0;          // routers whose tables changed at all
  std::uint64_t blast_remote = 0;       // ... due to *received* updates
  std::uint64_t blast_leaf_remote = 0;  // ... leaves only (paper's MTP count)

  /// Update-message bytes at L2 during convergence.
  std::uint64_t ctrl_bytes_raw = 0;
  std::uint64_t ctrl_bytes_padded = 0;

  /// Probe-stream outcome across the failure.
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t out_of_order = 0;
  sim::Duration outage{};  // longest inter-arrival gap at the receiver

  /// Per-flow view of the same probe traffic, from the receiver's flow
  /// records (delivery spans stand in for FCT on the open-ended probe).
  traffic::FlowStats flow_stats;

  /// Gray-failure detection: onset -> first neighbor/session declared down
  /// anywhere in the fabric (MTP counts local dead-timer/interface detection
  /// only; BGP counts any Established session drop).
  bool failure_detected = false;
  sim::Duration detection_latency{};

  /// FabricAuditor outcome (spec.audit): periodic sweeps during the run plus
  /// one final sweep after the observation window (steady-state check).
  std::uint64_t audit_sweeps = 0;
  std::uint64_t audit_violations = 0;
  std::uint64_t final_sweep_violations = 0;

  /// Event-core / data-path health, the scalability gate's raw inputs.
  std::uint64_t events_fired = 0;
  double wall_seconds = 0;            // host time for the full run
  std::uint64_t queue_high_water = 0;  // scheduler heap peak (entries)
  std::uint64_t sched_reschedules = 0;
  std::uint64_t sched_compactions = 0;
  /// Forwarding-cache counters summed over routers: MTP's VID/up-cache
  /// stats, or the BGP RouteTable's cached-LPM SelectStats — both protocols
  /// now run an epoch-validated candidate cache, so the scalability bench
  /// compares algorithms rather than cache presence.
  std::uint64_t allocs_avoided = 0;
  std::uint64_t up_cache_hits = 0;
  std::uint64_t up_cache_misses = 0;
  /// WCMP/flowlet telemetry summed over every link direction (0 under the
  /// default kHrw path selection).
  std::uint64_t flowlet_reroutes = 0;
  std::uint64_t wcmp_weight_updates = 0;

  /// Per-class egress-queue outcome summed over every link direction:
  /// control-class vs data-class tail drops, and the worst serialization
  /// backlog (ns) either class saw at admission anywhere in the fabric.
  std::uint64_t ctrl_queue_drops = 0;
  std::uint64_t data_queue_drops = 0;
  std::uint64_t ctrl_backlog_hw_ns = 0;
  std::uint64_t data_backlog_hw_ns = 0;

  /// Finite-buffer counters summed over every link direction (all zero when
  /// DeployOptions::switch_buffer is unset): ECN CE marks applied, PFC
  /// PAUSE/RESUME frames sent/received, and pool-admission drops.
  std::uint64_t ecn_marked = 0;
  std::uint64_t pause_tx = 0;
  std::uint64_t pause_rx = 0;
  std::uint64_t buffer_drops = 0;

  /// Parallel-engine health (all zero on the classic path): shards actually
  /// used, barrier windows executed, windows in which some shard had no
  /// local work before the horizon (pure synchronization overhead), frames
  /// that crossed a shard mailbox, and the deepest any mailbox ever got.
  std::uint32_t threads_used = 1;
  std::uint64_t sync_windows = 0;
  std::uint64_t horizon_stalls = 0;
  std::uint64_t cross_shard_frames = 0;
  std::uint64_t mailbox_high_water = 0;
  /// Horizon segments shards executed without any rendezvous — each one
  /// would have been (at least) one barrier window under the lock-step
  /// engine, so coalesced/sync is the barrier-elision ratio.
  std::uint64_t coalesced_windows = 0;
  /// Tightest and widest transitively-closed directed-pair lookahead (ns)
  /// the engine derived from the actual shard-crossing links; 0/0 on the
  /// classic path. The spread shows how much the per-pair matrix buys over
  /// one global minimum.
  std::uint64_t pair_lookahead_min_ns = 0;
  std::uint64_t pair_lookahead_max_ns = 0;
};

[[nodiscard]] ExperimentResult run_failure_experiment(const ExperimentSpec& spec);

/// Seed-averaged metrics (the paper plots multi-run averages).
struct AveragedResult {
  double convergence_ms = 0;
  double blast_any = 0;
  double blast_remote = 0;
  double blast_leaf_remote = 0;
  double ctrl_bytes_raw = 0;
  double ctrl_bytes_padded = 0;
  double packets_lost = 0;
  double duplicates = 0;
  double out_of_order = 0;
  double outage_ms = 0;
  /// Mean over *detected* runs only.
  double detection_ms = 0;
  double audit_violations = 0;
  double final_violations = 0;
  /// Hot-path aggregates: mean events/sec (sim events per host second),
  /// max heap high-water across seeds, mean allocations avoided, and the
  /// pooled uplink-candidate-cache hit rate.
  double events_per_sec = 0;
  double queue_high_water = 0;
  double allocs_avoided = 0;
  double cache_hit_rate = 0;
  /// Per-class egress-queue aggregates: mean drops per run, max high-water
  /// backlog (ns) across seeds.
  double ctrl_queue_drops = 0;
  double data_queue_drops = 0;
  double ctrl_backlog_hw_ns = 0;
  double data_backlog_hw_ns = 0;
  /// Finite-buffer aggregates: mean per-run counts (zero without switch
  /// buffers).
  double ecn_marked = 0;
  double pause_tx = 0;
  double pause_rx = 0;
  double buffer_drops = 0;
  int runs = 0;
  int converged_runs = 0;
  int detected_runs = 0;

  /// Full spread across seeds for the headline metrics (mean == the
  /// corresponding field above).
  Distribution convergence_dist;
  Distribution loss_dist;
  Distribution ctrl_bytes_dist;
  Distribution detection_dist;
};

[[nodiscard]] AveragedResult run_averaged(ExperimentSpec spec,
                                          const std::vector<std::uint64_t>& seeds);

}  // namespace mrmtp::harness
