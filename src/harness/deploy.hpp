// Deployment: instantiate a ClosBlueprint as a running network under one of
// the paper's three protocol stacks — MR-MTP, BGP/ECMP, or BGP/ECMP/BFD —
// with identical topology, link parameters, and hosts (paper §VI: identical
// slices per protocol).
#pragma once

#include <memory>

#include "bgp/router.hpp"
#include "mtp/router.hpp"
#include "net/network.hpp"
#include "sim/parallel.hpp"
#include "topo/clos.hpp"
#include "traffic/vxlan.hpp"

namespace mrmtp::harness {

class Deployment;

/// The shard substrate of a parallel deployment: one SimContext per shard
/// (PoD-affine assignment from topo::make_shard_plan) plus the conservative
/// engine that advances them in lockstep windows. Construct the fabric first,
/// hand it to Deployment's sharded constructor, then drive the simulation
/// through engine().run_until() instead of a single Scheduler.
///
/// A one-shard fabric is the determinism reference: it runs the exact same
/// per-entity RNG streams and event order as an N-shard run, inline on the
/// calling thread, so per-router counters must match bit for bit.
class ShardedFabric {
 public:
  ShardedFabric(const topo::ClosBlueprint& blueprint, std::uint32_t threads,
                std::uint64_t seed);

  [[nodiscard]] const topo::ClosBlueprint& blueprint() const {
    return *blueprint_;
  }
  [[nodiscard]] const topo::ShardPlan& plan() const { return plan_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(ctxs_.size());
  }
  [[nodiscard]] net::SimContext& ctx(std::uint32_t shard) {
    return *ctxs_[shard];
  }
  /// The owning context of a blueprint device.
  [[nodiscard]] net::SimContext& device_ctx(std::uint32_t device) {
    return *ctxs_[plan_.shard_of(device)];
  }

  /// Called by Deployment once every link is wired: moves all RNG draws onto
  /// per-entity streams, measures the lookahead (minimum propagation delay
  /// over shard-crossing links), and builds the engine.
  void attach(net::Network& network);

  /// Valid after attach(); throws before.
  [[nodiscard]] sim::ShardedEngine& engine();
  [[nodiscard]] sim::Duration lookahead() const { return lookahead_; }

 private:
  const topo::ClosBlueprint* blueprint_;
  std::uint64_t seed_;
  topo::ShardPlan plan_;
  std::vector<std::unique_ptr<net::SimContext>> ctxs_;
  std::unique_ptr<sim::ShardedEngine> engine_;
  sim::Duration lookahead_ = sim::Duration::micros(5);
};

enum class Proto : std::uint8_t { kMtp, kBgp, kBgpBfd };

[[nodiscard]] std::string_view to_string(Proto p);
inline constexpr Proto kAllProtos[] = {Proto::kMtp, Proto::kBgp, Proto::kBgpBfd};

struct DeployOptions {
  mtp::MtpTimers mtp_timers;            // paper: hello 50 ms / dead 100 ms
  /// Instantiate servers as VXLAN tunnel endpoints (traffic::VtepHost)
  /// instead of plain hosts — the paper's assumed VM deployment (§III.A).
  bool vtep_hosts = false;
  bgp::BgpTimers bgp_timers;            // paper: keepalive 1 s / hold 3 s
  bfd::BfdSession::Config bfd;          // paper: tx 100 ms, mult 3
  net::Link::Params link;               // fabric links
  net::Link::Params host_link;          // server-to-ToR links
};

/// A deployed network; indices mirror the blueprint's device/host vectors.
class Deployment {
 public:
  Deployment(net::SimContext& ctx, const topo::ClosBlueprint& blueprint,
             Proto proto, DeployOptions options = {});

  /// Sharded deployment: every device is instantiated on its shard's context
  /// per the fabric's plan (hosts follow their ToR), per-entity RNG streams
  /// are enabled, and the fabric's engine is built once wiring completes.
  Deployment(ShardedFabric& fabric, Proto proto, DeployOptions options = {});

  [[nodiscard]] Proto proto() const { return proto_; }
  [[nodiscard]] const topo::ClosBlueprint& blueprint() const { return *blueprint_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] net::SimContext& ctx() { return ctx_; }

  [[nodiscard]] net::Node& router(std::uint32_t device_index) {
    return *routers_[device_index];
  }
  /// Typed access; throws std::logic_error under the wrong protocol.
  [[nodiscard]] mtp::MtpRouter& mtp(std::uint32_t device_index);
  [[nodiscard]] bgp::BgpRouter& bgp(std::uint32_t device_index);

  [[nodiscard]] traffic::Host& host(std::uint32_t host_index) {
    return *hosts_[host_index];
  }
  /// Typed access when deployed with DeployOptions::vtep_hosts.
  [[nodiscard]] traffic::VtepHost& vtep(std::uint32_t host_index);
  [[nodiscard]] std::size_t router_count() const { return routers_.size(); }
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }

  /// Calls start() on every node.
  void start() { network_.start_all(); }

  /// True once every router reached its converged steady state: MTP routers
  /// joined all trees in their scope; BGP routers established all sessions
  /// and hold full routing tables.
  [[nodiscard]] bool converged() const;

  /// All ToR VIDs in the fabric.
  [[nodiscard]] std::vector<std::uint16_t> all_vids() const;

 private:
  void deploy_mtp(const DeployOptions& options);
  void deploy_bgp(const DeployOptions& options);
  void add_hosts(const DeployOptions& options);
  void wire(const DeployOptions& options);
  /// The context device `d` lives on: its shard's in a sharded deployment,
  /// the single shared one otherwise.
  [[nodiscard]] net::SimContext& device_ctx(std::uint32_t d);

  net::SimContext& ctx_;
  const topo::ClosBlueprint* blueprint_;
  Proto proto_;
  ShardedFabric* fabric_ = nullptr;
  net::Network network_;
  std::vector<net::Node*> routers_;
  std::vector<traffic::Host*> hosts_;
};

}  // namespace mrmtp::harness
