// Deployment: instantiate a ClosBlueprint as a running network under one of
// the paper's three protocol stacks — MR-MTP, BGP/ECMP, or BGP/ECMP/BFD —
// with identical topology, link parameters, and hosts (paper §VI: identical
// slices per protocol).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>

#include "bgp/router.hpp"
#include "mtp/router.hpp"
#include "net/network.hpp"
#include "net/switch_buffer.hpp"
#include "sim/parallel.hpp"
#include "topo/clos.hpp"
#include "traffic/vxlan.hpp"

namespace mrmtp::harness {

class Deployment;

/// The shard substrate of a parallel deployment: one SimContext per shard
/// (PoD-affine assignment from topo::make_shard_plan) plus the conservative
/// engine that advances them under per-shard-pair lookahead horizons.
/// Construct the fabric first, hand it to Deployment's sharded constructor,
/// then drive the simulation through engine().run_until() instead of a
/// single Scheduler.
///
/// A one-shard fabric is the determinism reference: it runs the exact same
/// per-entity RNG streams and event order as an N-shard run, inline on the
/// calling thread, so per-router counters must match bit for bit.
class ShardedFabric {
 public:
  ShardedFabric(const topo::ClosBlueprint& blueprint, std::uint32_t threads,
                std::uint64_t seed);

  [[nodiscard]] const topo::ClosBlueprint& blueprint() const {
    return *blueprint_;
  }
  [[nodiscard]] const topo::ShardPlan& plan() const { return plan_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(ctxs_.size());
  }
  [[nodiscard]] net::SimContext& ctx(std::uint32_t shard) {
    return *ctxs_[shard];
  }
  /// The owning context of a blueprint device.
  [[nodiscard]] net::SimContext& device_ctx(std::uint32_t device) {
    return *ctxs_[plan_.shard_of(device)];
  }

  /// Called by Deployment once every link is wired: moves all RNG draws onto
  /// per-entity streams, measures per-directed-shard-pair lookahead from
  /// the links that actually cross each pair, and builds the engine.
  void attach(net::Network& network);

  /// Valid after attach(); throws before.
  [[nodiscard]] sim::ShardedEngine& engine();
  /// Minimum delay over shard-crossing links (the old global lookahead;
  /// kept for reporting — the engine itself uses the per-pair matrix).
  [[nodiscard]] sim::Duration lookahead() const { return lookahead_; }

 private:
  const topo::ClosBlueprint* blueprint_;
  std::uint64_t seed_;
  topo::ShardPlan plan_;
  std::vector<std::unique_ptr<net::SimContext>> ctxs_;
  std::unique_ptr<sim::ShardedEngine> engine_;
  sim::Duration lookahead_ = sim::Duration::micros(5);
};

enum class Proto : std::uint8_t { kMtp, kBgp, kBgpBfd };

[[nodiscard]] std::string_view to_string(Proto p);
inline constexpr Proto kAllProtos[] = {Proto::kMtp, Proto::kBgp, Proto::kBgpBfd};

struct DeployOptions {
  mtp::MtpTimers mtp_timers;            // paper: hello 50 ms / dead 100 ms
  /// Instantiate servers as VXLAN tunnel endpoints (traffic::VtepHost)
  /// instead of plain hosts — the paper's assumed VM deployment (§III.A).
  bool vtep_hosts = false;
  bgp::BgpTimers bgp_timers;            // paper: keepalive 1 s / hold 3 s
  bfd::BfdSession::Config bfd;          // paper: tx 100 ms, mult 3
  net::Link::Params link;               // fabric links
  net::Link::Params host_link;          // server-to-ToR links

  /// Global pod numbers (1-based, (cluster-1)*pods + pod) wired dark for a
  /// later live expansion: their links exist but start admin-down on both
  /// ends and their routers/hosts are not started. activate_pod() powers
  /// them into the running fabric.
  std::set<std::uint32_t> deferred_pods;
  /// Misconfiguration: the first leaf (victim, blueprint device index) is
  /// deployed with the second leaf's server subnet — the classic wrong-VID-
  /// byte copy-paste error. MR-MTP only; the victim announces a duplicate
  /// root that the fabric must reject without disturbing other trees.
  std::optional<std::pair<std::uint32_t, std::uint32_t>> duplicate_subnet_of;
  /// Finite shared-buffer switches: every router gets a SwitchBuffer with
  /// these parameters (per-port egress accounting against a shared pool,
  /// ECN marking, PFC backpressure). Unset = today's infinite time-bounded
  /// output queues — the A/B ablation switch for the congestion study.
  std::optional<net::SwitchBufferParams> switch_buffer;
  /// Multipath path selection on every router (MTP DATA and BGP/ECMP
  /// alike): kHrw keeps the PR 2 equal-share default bit-for-bit; kWcmp
  /// weights next hops by link capacity; kWcmpFlowlet adds flowlet
  /// switching with congestion feedback. The WCMP/flowlet A/B knob.
  util::PathSelect path_select = util::PathSelect::kHrw;
  /// Idle gap that closes a flowlet (kWcmpFlowlet). Zero = derive ~8x the
  /// propagation RTT of the longest host-to-host path from `link.delay`,
  /// floored at 500 µs.
  sim::Duration flowlet_gap{};

  /// The flowlet gap actually deployed (explicit value or RTT derivation).
  [[nodiscard]] sim::Duration effective_flowlet_gap() const {
    if (flowlet_gap.ns() > 0) return flowlet_gap;
    // Longest 3-tier host-to-host path is 6 hops each way = 12 traversals.
    const std::int64_t derived = 8 * 12 * link.delay.ns();
    return sim::Duration::nanos(derived > 500'000 ? derived : 500'000);
  }
};

/// A deployed network; indices mirror the blueprint's device/host vectors.
class Deployment {
 public:
  Deployment(net::SimContext& ctx, const topo::ClosBlueprint& blueprint,
             Proto proto, DeployOptions options = {});

  /// Sharded deployment: every device is instantiated on its shard's context
  /// per the fabric's plan (hosts follow their ToR), per-entity RNG streams
  /// are enabled, and the fabric's engine is built once wiring completes.
  Deployment(ShardedFabric& fabric, Proto proto, DeployOptions options = {});

  [[nodiscard]] Proto proto() const { return proto_; }
  [[nodiscard]] const topo::ClosBlueprint& blueprint() const { return *blueprint_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] net::SimContext& ctx() { return ctx_; }

  [[nodiscard]] net::Node& router(std::uint32_t device_index) {
    return *routers_[device_index];
  }
  /// Typed access; throws std::logic_error under the wrong protocol.
  [[nodiscard]] mtp::MtpRouter& mtp(std::uint32_t device_index);
  [[nodiscard]] bgp::BgpRouter& bgp(std::uint32_t device_index);

  [[nodiscard]] traffic::Host& host(std::uint32_t host_index) {
    return *hosts_[host_index];
  }
  /// Typed access when deployed with DeployOptions::vtep_hosts.
  [[nodiscard]] traffic::VtepHost& vtep(std::uint32_t host_index);
  [[nodiscard]] std::size_t router_count() const { return routers_.size(); }
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }

  /// Calls start() on every active node (deferred pods stay dark).
  void start();

  /// True once every active router reached its converged steady state: MTP
  /// routers joined all trees in their scope; BGP routers established all
  /// sessions over active links and hold full routing tables. Scope is
  /// derived per device by walking the wired topology, so asymmetric
  /// fabrics, deferred pods, and drained/offline routers are all handled.
  [[nodiscard]] bool converged() const;

  // --- lifecycle primitives (harness::LifecycleEngine drives these) ---
  /// Whether `device_index` is powered and part of the running fabric.
  [[nodiscard]] bool router_active(std::uint32_t device_index) const {
    return active_[device_index];
  }
  /// Graceful cost-out: the router withdraws everything it advertises but
  /// keeps forwarding in-flight traffic (protocol-dispatched).
  void drain_router(std::uint32_t device_index);
  /// Power-off: wipes the router's control-plane state (RSTs BGP sessions
  /// first, while ports still carry frames), then admin-downs every
  /// interface so neighbors see link-down.
  void stop_router(std::uint32_t device_index);
  /// Cold rejoin: interfaces come back up, then start() rebuilds state from
  /// scratch — a reboot, not a resume.
  void restart_router(std::uint32_t device_index);
  /// Powers a deferred pod into the running fabric: every link touching it
  /// comes admin-up, then its routers and hosts start cold.
  void activate_pod(std::uint32_t global_pod);
  /// Operator-intended interface shutdown (maintenance or seeded
  /// misconfiguration). Unlike a raw set_interface_down, the intent is
  /// recorded so converged() stops expecting state across the dead link;
  /// an injected fault leaves no record and keeps reading as unconverged.
  void admin_down_port(std::uint32_t device_index, std::uint32_t port);

  /// All ToR VIDs in the fabric.
  [[nodiscard]] std::vector<std::uint16_t> all_vids() const;

 private:
  void deploy_mtp(const DeployOptions& options);
  void deploy_bgp(const DeployOptions& options);
  void add_hosts(const DeployOptions& options);
  void wire(const DeployOptions& options);
  /// Fills active_ / host_active_ from options.deferred_pods and computes
  /// each device's leaf scope by walking up the wired hierarchy.
  void init_lifecycle(const DeployOptions& options);
  /// The context device `d` lives on: its shard's in a sharded deployment,
  /// the single shared one otherwise.
  [[nodiscard]] net::SimContext& device_ctx(std::uint32_t d);

  net::SimContext& ctx_;
  const topo::ClosBlueprint* blueprint_;
  Proto proto_;
  ShardedFabric* fabric_ = nullptr;
  net::Network network_;
  std::vector<net::Node*> routers_;
  std::vector<traffic::Host*> hosts_;
  DeployOptions options_;
  /// Per blueprint device / host: powered and participating.
  std::vector<bool> active_;
  std::vector<bool> host_active_;
  /// Interfaces admin-downed at wiring time, per deferred global pod.
  std::map<std::uint32_t, std::vector<std::pair<net::Node*, std::uint32_t>>>
      deferred_ifaces_;
  /// Ports stop_router() took down, restored verbatim by restart_router()
  /// (ports already down — deferred or failed — are left alone).
  std::map<std::uint32_t, std::vector<std::uint32_t>> rebooting_ports_;
  /// Ports the operator shut down on purpose via admin_down_port().
  std::map<std::uint32_t, std::set<std::uint32_t>> operator_down_;
};

}  // namespace mrmtp::harness
