#include "harness/lifecycle.hpp"

#include <stdexcept>

namespace mrmtp::harness {

LifecycleEngine::LifecycleEngine(Deployment& dep, FabricAuditor& auditor)
    : LifecycleEngine(dep, auditor, Options{}) {}

LifecycleEngine::LifecycleEngine(Deployment& dep, FabricAuditor& auditor,
                                 Options opts)
    : dep_(dep), auditor_(auditor), opts_(opts) {}

std::vector<std::uint32_t> LifecycleEngine::all_spines() const {
  std::vector<std::uint32_t> out;
  const auto& devices = dep_.blueprint().devices();
  for (std::uint32_t d = 0; d < devices.size(); ++d) {
    if (devices[d].role != topo::Role::kLeaf) out.push_back(d);
  }
  return out;
}

std::vector<std::uint32_t> LifecycleEngine::pod_routers(
    std::uint32_t global_pod) const {
  std::vector<std::uint32_t> out;
  const auto& bp = dep_.blueprint();
  for (std::uint32_t d = 0; d < bp.devices().size(); ++d) {
    const auto& spec = bp.device(d);
    if (spec.role != topo::Role::kLeaf && spec.role != topo::Role::kPodSpine) {
      continue;
    }
    if ((spec.cluster - 1) * bp.params().pods + spec.pod == global_pod) {
      out.push_back(d);
    }
  }
  return out;
}

std::vector<std::uint32_t> LifecycleEngine::canary() const {
  const auto& devices = dep_.blueprint().devices();
  for (std::uint32_t d = 0; d < devices.size(); ++d) {
    if (devices[d].role == topo::Role::kPodSpine) return {d};
  }
  throw std::logic_error("LifecycleEngine: fabric has no pod spine");
}

void LifecycleEngine::record(sim::Time at, topo::GrayKind kind,
                             topo::ChaosPhase phase, std::string description) {
  topo::ChaosEventRecord rec{at, kind, phase, std::move(description)};
  events_.push_back(rec);
  if (chaos_ != nullptr) chaos_->append_event(std::move(rec));
}

void LifecycleEngine::rolling_upgrade(const std::vector<std::uint32_t>& devices,
                                      sim::Time at) {
  // Strictly serial: the next router only starts once the previous one's
  // reconvergence window closed — the paper-operational "one failure domain
  // at a time" rule that keeps the disruption budget per-router.
  sim::Time t0 = at;
  for (std::uint32_t d : devices) {
    schedule_upgrade(d, t0);
    t0 = t0 + opts_.drain_grace + opts_.reboot_hold + opts_.reconverge_window;
  }
}

void LifecycleEngine::schedule_upgrade(std::uint32_t device, sim::Time t0) {
  const std::string name = dep_.router(device).name();
  const sim::Time t_stop = t0 + opts_.drain_grace;
  const sim::Time t_boot = t_stop + opts_.reboot_hold;
  const sim::Time t_end = t_boot + opts_.reconverge_window;

  const std::size_t idx = phases_.size();
  phases_.push_back(
      LifecyclePhase{"upgrade " + name, name, t0, t_stop, t_end, {}, false});
  auditor_.declare_window(t0, t_end);

  // Per-device actions run on the device's own scheduler so a sharded
  // deployment mutates router state only from its owning shard.
  sim::Scheduler& sched = dep_.router(device).ctx().sched;
  sched.schedule_at(t0, [this, device, t0, name] {
    record(t0, topo::GrayKind::kMaintenance, topo::ChaosPhase::kOnset,
           name + " draining (cost-out)");
    dep_.drain_router(device);
  });
  sched.schedule_at(t_stop, [this, device, t_stop, name] {
    record(t_stop, topo::GrayKind::kMaintenance, topo::ChaosPhase::kOnset,
           name + " powered off (state wiped)");
    dep_.stop_router(device);
  });
  sched.schedule_at(t_boot, [this, device, t_boot, t_end, idx, name] {
    record(t_boot, topo::GrayKind::kMaintenance, topo::ChaosPhase::kOnset,
           name + " cold-booting (rejoin)");
    dep_.restart_router(device);
    poll_phase(idx, t_end);
  });
}

void LifecycleEngine::expand_pod(std::uint32_t global_pod, sim::Time at) {
  const sim::Time t_end = at + opts_.reconverge_window;
  const std::size_t idx = phases_.size();
  phases_.push_back(LifecyclePhase{"expand pod " + std::to_string(global_pod),
                                   "", at, at, t_end, {}, false});
  auditor_.declare_window(at, t_end);
  dep_.ctx().sched.schedule_at(at, [this, global_pod, at, t_end, idx] {
    record(at, topo::GrayKind::kExpansion, topo::ChaosPhase::kOnset,
           "pod " + std::to_string(global_pod) + " powered into the fabric");
    dep_.activate_pod(global_pod);
    poll_phase(idx, t_end);
  });
}

void LifecycleEngine::misconfig_asymmetric_down(std::uint32_t device,
                                                std::uint32_t port,
                                                sim::Time at) {
  const std::string name = dep_.router(device).name();
  const sim::Time t_end = at + opts_.reconverge_window;
  const std::size_t idx = phases_.size();
  phases_.push_back(LifecyclePhase{
      "misconfig " + name + ":" + std::to_string(port), name, at, at, t_end,
      {}, false});
  auditor_.declare_window(at, t_end);
  sim::Scheduler& sched = dep_.router(device).ctx().sched;
  sched.schedule_at(at, [this, device, port, at, t_end, idx, name] {
    record(at, topo::GrayKind::kMisconfig, topo::ChaosPhase::kOnset,
           name + ":" + std::to_string(port) +
               " admin-down one-sided (peer not notified)");
    dep_.admin_down_port(device, port);
    poll_phase(idx, t_end);
  });
}

void LifecycleEngine::poll_phase(std::size_t idx, sim::Time deadline) {
  if (dep_.converged()) {
    LifecyclePhase& ph = phases_[idx];
    ph.reconverged = dep_.ctx().now();
    ph.saw_reconverge = true;
    record(ph.reconverged, topo::GrayKind::kMaintenance,
           topo::ChaosPhase::kHeal, ph.name + " reconverged");
    return;
  }
  sim::Time next = dep_.ctx().now() + opts_.poll;
  if (next > deadline) return;  // window closed without convergence
  dep_.ctx().sched.schedule_at(next,
                               [this, idx, deadline] { poll_phase(idx, deadline); });
}

bool LifecycleEngine::all_reconverged() const {
  for (const LifecyclePhase& ph : phases_) {
    if (!ph.saw_reconverge) return false;
  }
  return true;
}

std::vector<Violation> LifecycleEngine::drain_violations() const {
  std::vector<Violation> out;
  for (const LifecyclePhase& ph : phases_) {
    if (ph.device.empty() || !(ph.start < ph.drain_until)) continue;
    for (const Violation& v : auditor_.violations()) {
      if (v.device == ph.device && v.at >= ph.start && v.at <= ph.drain_until) {
        out.push_back(v);
      }
    }
  }
  return out;
}

}  // namespace mrmtp::harness
