#include "harness/report.hpp"

#include <cstdio>

#include "net/network.hpp"

namespace mrmtp::harness {

std::string Table::str() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      line += cell;
      if (c + 1 < widths.size()) {
        line.append(widths[c] - cell.size() + 2, ' ');
      }
    }
    line += "\n";
    return line;
  };

  std::string out = render_row(columns_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out += std::string(total > 2 ? total - 2 : total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::csv() const {
  auto render = [](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) line += ",";
      line += cells[c];
    }
    return line + "\n";
  };
  std::string out = render(columns_);
  for (const auto& row : rows_) out += render(row);
  return out;
}

void Table::print(bool with_csv) const {
  std::fputs(str().c_str(), stdout);
  if (with_csv) {
    std::fputs("\nCSV:\n", stdout);
    std::fputs(csv().c_str(), stdout);
  }
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

Table link_direction_table(const net::Network& network, bool busy_only) {
  Table table({"direction", "delivered", "link_down", "dst_down", "impaired",
               "blackhole", "queue_full", "dup"});
  auto row = [&](const net::Port& from, const net::Port& to,
                 const net::Link::DirStats& s) {
    table.add_row({from.str() + " -> " + to.str(), std::to_string(s.delivered),
                   std::to_string(s.dropped_link_down),
                   std::to_string(s.dropped_dst_down),
                   std::to_string(s.dropped_impairment),
                   std::to_string(s.dropped_blackhole),
                   std::to_string(s.dropped_queue_full),
                   std::to_string(s.duplicated)});
  };
  for (const auto& link : network.links()) {
    const net::Link::Stats& s = link->stats();
    if (busy_only && s.ab.dropped_total() == 0 && s.ba.dropped_total() == 0) {
      continue;
    }
    row(link->a(), link->b(), s.ab);
    row(link->b(), link->a(), s.ba);
  }
  return table;
}

}  // namespace mrmtp::harness
