#include "harness/report.hpp"

#include <cstdio>

#include "harness/deploy.hpp"
#include "net/buffer.hpp"
#include "net/network.hpp"
#include "net/switch_buffer.hpp"

namespace mrmtp::harness {

std::string Table::str() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      line += cell;
      if (c + 1 < widths.size()) {
        line.append(widths[c] - cell.size() + 2, ' ');
      }
    }
    line += "\n";
    return line;
  };

  std::string out = render_row(columns_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out += std::string(total > 2 ? total - 2 : total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::csv() const {
  auto render = [](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) line += ",";
      line += cells[c];
    }
    return line + "\n";
  };
  std::string out = render(columns_);
  for (const auto& row : rows_) out += render(row);
  return out;
}

void Table::print(bool with_csv) const {
  std::fputs(str().c_str(), stdout);
  if (with_csv) {
    std::fputs("\nCSV:\n", stdout);
    std::fputs(csv().c_str(), stdout);
  }
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

Table link_direction_table(const net::Network& network, bool busy_only) {
  Table table({"direction", "delivered", "link_down", "dst_down", "impaired",
               "blackhole", "queue_full", "ctrl_drop", "data_drop",
               "buf_drop", "ecn", "pause_tx", "pause_rx", "pause_ms",
               "ctrl_hw_us", "data_hw_us", "dup"});
  auto row = [&](const net::Port& from, const net::Port& to,
                 const net::Link::DirStats& s) {
    table.add_row({from.str() + " -> " + to.str(), std::to_string(s.delivered),
                   std::to_string(s.dropped_link_down),
                   std::to_string(s.dropped_dst_down),
                   std::to_string(s.dropped_impairment),
                   std::to_string(s.dropped_blackhole),
                   std::to_string(s.dropped_queue_full),
                   std::to_string(s.dropped_queue_control),
                   std::to_string(s.dropped_queue_full -
                                  s.dropped_queue_control),
                   std::to_string(s.dropped_buffer),
                   std::to_string(s.ecn_marked()),
                   std::to_string(s.pause_tx), std::to_string(s.pause_rx),
                   fmt(static_cast<double>(s.pause_ns) / 1e6, 1),
                   fmt(static_cast<double>(s.control_backlog_hw_ns) / 1e3, 1),
                   fmt(static_cast<double>(s.data_backlog_hw_ns) / 1e3, 1),
                   std::to_string(s.duplicated)});
  };
  for (const auto& link : network.links()) {
    const net::Link::Stats& s = link->stats();
    if (busy_only && s.ab.dropped_total() == 0 && s.ba.dropped_total() == 0) {
      continue;
    }
    row(link->a(), link->b(), s.ab);
    row(link->b(), link->a(), s.ba);
  }
  return table;
}

Table hot_path_table(Deployment& dep, bool busy_only) {
  Table table({"node", "forwarded", "allocs_avoided", "cache_hits",
               "cache_misses", "hit_rate"});
  auto rate = [](std::uint64_t hits, std::uint64_t misses) {
    std::uint64_t total = hits + misses;
    return total == 0
               ? std::string("-")
               : fmt(static_cast<double>(hits) / static_cast<double>(total), 3);
  };
  if (dep.proto() == Proto::kMtp) {
    std::uint64_t fwd = 0, avoided = 0, hits = 0, misses = 0;
    for (std::uint32_t d = 0;
         d < static_cast<std::uint32_t>(dep.router_count()); ++d) {
      const auto& s = dep.mtp(d).mtp_stats();
      fwd += s.data_forwarded;
      avoided += s.allocs_avoided;
      hits += s.up_cache_hits;
      misses += s.up_cache_misses;
      if (busy_only && s.data_forwarded == 0) continue;
      table.add_row({dep.router(d).name(), std::to_string(s.data_forwarded),
                     std::to_string(s.allocs_avoided),
                     std::to_string(s.up_cache_hits),
                     std::to_string(s.up_cache_misses),
                     rate(s.up_cache_hits, s.up_cache_misses)});
    }
    table.add_row({"TOTAL", std::to_string(fwd), std::to_string(avoided),
                   std::to_string(hits), std::to_string(misses),
                   rate(hits, misses)});
  } else {
    // BGP speakers run the cached-LPM fast path in their RouteTable, so the
    // same columns apply: avoided candidate-vector walks and epoch-validated
    // cache hits per node.
    std::uint64_t fwd = 0, avoided = 0, hits = 0, misses = 0;
    for (std::uint32_t d = 0;
         d < static_cast<std::uint32_t>(dep.router_count()); ++d) {
      const auto& ss = dep.bgp(d).routes().select_stats();
      const auto& fs = dep.bgp(d).forwarding_stats();
      fwd += fs.forwarded;
      avoided += ss.allocs_avoided;
      hits += ss.cache_hits;
      misses += ss.cache_misses;
      if (busy_only && fs.forwarded == 0) continue;
      table.add_row({dep.router(d).name(), std::to_string(fs.forwarded),
                     std::to_string(ss.allocs_avoided),
                     std::to_string(ss.cache_hits),
                     std::to_string(ss.cache_misses),
                     rate(ss.cache_hits, ss.cache_misses)});
    }
    table.add_row({"TOTAL", std::to_string(fwd), std::to_string(avoided),
                   std::to_string(hits), std::to_string(misses),
                   rate(hits, misses)});
  }
  const sim::Scheduler& sched = dep.ctx().sched;
  table.add_row({"[scheduler]",
                 "events=" + std::to_string(sched.events_fired()),
                 "queue_hw=" + std::to_string(sched.queue_high_water()),
                 "resched=" + std::to_string(sched.reschedules()),
                 "compact=" + std::to_string(sched.compactions()), ""});
  const net::BufferPoolStats& bp = net::BufferPool::instance().stats();
  table.add_row({"[buffer-pool]",
                 "allocs=" + std::to_string(bp.slab_allocs),
                 "reuses=" + std::to_string(bp.slab_reuses),
                 "live_hw=" + std::to_string(bp.live_high_water),
                 "copied=" + std::to_string(bp.bytes_copied),
                 "shared=" + std::to_string(bp.bytes_shared)});
  table.add_row({"[buffer-pool]",
                 "prepend_inplace=" + std::to_string(bp.prepend_inplace),
                 "prepend_copies=" + std::to_string(bp.prepend_copies),
                 "oversize=" + std::to_string(bp.oversize_allocs),
                 "regrows=" + std::to_string(bp.writer_regrows),
                 "import=" + std::to_string(bp.import_bytes)});
  // Finite switch buffers, summed over every router that has one (absent on
  // fabrics deployed without DeployOptions::switch_buffer).
  std::uint64_t admitted = 0, bdrops = 0, marks = 0, pauses = 0;
  std::uint64_t occ_hw = 0;
  bool any_buffered = false;
  for (std::uint32_t d = 0;
       d < static_cast<std::uint32_t>(dep.router_count()); ++d) {
    const net::SwitchBuffer* sb = dep.router(d).switch_buffer();
    if (sb == nullptr) continue;
    any_buffered = true;
    const net::SwitchBufferStats& s = sb->stats();
    admitted += s.data_admitted;
    bdrops += s.dropped;
    marks += s.ecn_marked;
    pauses += s.pause_onsets;
    occ_hw = std::max(occ_hw, s.occupancy_hw);
  }
  if (any_buffered) {
    table.add_row({"[buffers]", "admitted=" + std::to_string(admitted),
                   "drops=" + std::to_string(bdrops),
                   "ecn=" + std::to_string(marks),
                   "pauses=" + std::to_string(pauses),
                   "occ_hw=" + std::to_string(occ_hw)});
  }
  return table;
}

}  // namespace mrmtp::harness
