#include "harness/deploy.hpp"

#include <stdexcept>

#include "util/hash.hpp"

namespace mrmtp::harness {

std::string_view to_string(Proto p) {
  switch (p) {
    case Proto::kMtp: return "MR-MTP";
    case Proto::kBgp: return "BGP/ECMP";
    case Proto::kBgpBfd: return "BGP/ECMP/BFD";
  }
  return "?";
}

ShardedFabric::ShardedFabric(const topo::ClosBlueprint& blueprint,
                             std::uint32_t threads, std::uint64_t seed)
    : blueprint_(&blueprint),
      seed_(seed),
      plan_(topo::make_shard_plan(blueprint, threads)) {
  ctxs_.reserve(plan_.shards);
  for (std::uint32_t s = 0; s < plan_.shards; ++s) {
    // The shared per-context rng is never drawn in a sharded deployment
    // (every consumer is moved onto a private stream below), but seed each
    // shard distinctly so any future draw is at least not correlated.
    ctxs_.push_back(
        std::make_unique<net::SimContext>(util::mix64(seed) + s));
  }
}

void ShardedFabric::attach(net::Network& network) {
  if (engine_) {
    throw std::logic_error("ShardedFabric::attach called twice");
  }

  // Per-link (per-direction, inside Link) RNG streams, seeded by wiring
  // order. Wiring order is a blueprint property, so a link's stream — and
  // hence its loss/jitter draws — is identical no matter how many shards the
  // fabric is split into. That is the whole determinism argument: each draw
  // depends only on the entity's own event order, never on global order.
  std::uint64_t li = 0;
  for (const auto& link : network.links()) {
    link->use_stream_rng(util::mix64(seed_ ^ 0x6c696e6b5347ull) + li++);
  }

  // Lookahead = the minimum one-way propagation delay over ALL links, not
  // just cross-shard ones: in a sharded run every frame delivery rides the
  // ShardBus (the determinism tie-break, see Link::schedule_delivery), so a
  // window must never out-run a same-shard delivery either. An event at time
  // t can schedule a delivery no earlier than t + lookahead.
  bool any = false;
  sim::Duration lookahead = sim::Duration::micros(5);
  for (const auto& link : network.links()) {
    if (!any || link->params().delay < lookahead) {
      lookahead = link->params().delay;
    }
    any = true;
  }
  lookahead_ = lookahead;

  std::vector<sim::Scheduler*> scheds;
  scheds.reserve(ctxs_.size());
  for (auto& c : ctxs_) scheds.push_back(&c->sched);
  engine_ = std::make_unique<sim::ShardedEngine>(
      std::move(scheds), sim::ShardedEngine::Options{lookahead});
  for (std::uint32_t s = 0; s < ctxs_.size(); ++s) {
    ctxs_[s]->shard = s;
    ctxs_[s]->bus = &engine_->bus();
  }
}

sim::ShardedEngine& ShardedFabric::engine() {
  if (!engine_) {
    throw std::logic_error("ShardedFabric::engine before attach");
  }
  return *engine_;
}

Deployment::Deployment(net::SimContext& ctx,
                       const topo::ClosBlueprint& blueprint, Proto proto,
                       DeployOptions options)
    : ctx_(ctx), blueprint_(&blueprint), proto_(proto), network_(ctx) {
  if (proto_ == Proto::kMtp) {
    deploy_mtp(options);
  } else {
    deploy_bgp(options);
  }
}

Deployment::Deployment(ShardedFabric& fabric, Proto proto,
                       DeployOptions options)
    : ctx_(fabric.ctx(0)),
      blueprint_(&fabric.blueprint()),
      proto_(proto),
      fabric_(&fabric),
      network_(fabric.ctx(0)) {
  if (proto_ == Proto::kMtp) {
    deploy_mtp(options);
  } else {
    deploy_bgp(options);
    // Keepalive-jitter and retry draws onto per-peer streams (and per-BFD-
    // session streams), seeded by device index — again a pure blueprint
    // property, invariant under sharding. Must precede start().
    for (std::uint32_t d = 0; d < router_count(); ++d) {
      bgp(d).use_stream_rng(util::mix64(fabric.seed() ^ 0x626770ull) ^
                            util::mix64(static_cast<std::uint64_t>(d)));
    }
  }
  fabric.attach(network_);
}

net::SimContext& Deployment::device_ctx(std::uint32_t d) {
  return fabric_ != nullptr ? fabric_->device_ctx(d) : ctx_;
}

void Deployment::deploy_mtp(const DeployOptions& options) {
  const auto& bp = *blueprint_;

  for (std::uint32_t d = 0; d < bp.devices().size(); ++d) {
    const auto& spec = bp.device(d);
    mtp::MtpConfig cfg;
    cfg.tier = spec.tier;
    cfg.timers = options.mtp_timers;
    if (spec.role == topo::Role::kLeaf) {
      cfg.server_subnet = spec.server_subnet;
      std::uint32_t base_port = bp.leaf_host_port(d);
      std::uint32_t offset = 0;
      for (const auto& hs : bp.hosts()) {
        if (hs.leaf == d) cfg.rack_hosts[hs.addr] = base_port + offset++;
      }
    }
    routers_.push_back(
        &network_.add_node_on<mtp::MtpRouter>(device_ctx(d), spec.name, cfg));
  }

  add_hosts(options);
  wire(options);
}

void Deployment::deploy_bgp(const DeployOptions& options) {
  const auto& bp = *blueprint_;

  for (std::uint32_t d = 0; d < bp.devices().size(); ++d) {
    const auto& spec = bp.device(d);
    bgp::BgpConfig cfg;
    cfg.asn = spec.asn;
    cfg.router_id = d + 1;
    cfg.timers = options.bgp_timers;
    cfg.ecmp = true;
    cfg.enable_bfd = proto_ == Proto::kBgpBfd;
    cfg.bfd = options.bfd;
    for (std::uint32_t li = 0; li < bp.links().size(); ++li) {
      const auto& link = bp.links()[li];
      if (link.upper == d) {
        cfg.neighbors.push_back({link.upper_addr, link.lower_addr,
                                 bp.device(link.lower).asn});
      } else if (link.lower == d) {
        cfg.neighbors.push_back({link.lower_addr, link.upper_addr,
                                 bp.device(link.upper).asn});
      }
    }
    if (spec.role == topo::Role::kLeaf) {
      cfg.originate.push_back(*spec.server_subnet);
    }
    routers_.push_back(&network_.add_node_on<bgp::BgpRouter>(
        device_ctx(d), spec.name, spec.tier, cfg));
  }

  add_hosts(options);
  wire(options);

  // Interface addressing: /31 per fabric link, /24 gateway on rack ports.
  for (std::uint32_t li = 0; li < bp.links().size(); ++li) {
    const auto& link = bp.links()[li];
    auto& upper = dynamic_cast<bgp::BgpRouter&>(*routers_[link.upper]);
    auto& lower = dynamic_cast<bgp::BgpRouter&>(*routers_[link.lower]);
    upper.configure_port(bp.port_on(link.upper, li), link.upper_addr, 31);
    lower.configure_port(bp.port_on(link.lower, li), link.lower_addr, 31);
  }
  std::vector<std::uint32_t> next_rack_port(bp.devices().size(), 0);
  for (const auto& hs : bp.hosts()) {
    auto& leaf = dynamic_cast<bgp::BgpRouter&>(*routers_[hs.leaf]);
    std::uint32_t port_number =
        bp.leaf_host_port(hs.leaf) + next_rack_port[hs.leaf]++;
    leaf.configure_port(port_number, hs.gateway, 24);
  }
}

void Deployment::add_hosts(const DeployOptions& options) {
  for (const auto& hs : blueprint_->hosts()) {
    // Hosts follow their ToR's shard: the rack link never crosses threads.
    net::SimContext& ctx = device_ctx(hs.leaf);
    if (options.vtep_hosts) {
      hosts_.push_back(&network_.add_node_on<traffic::VtepHost>(
          ctx, hs.name, hs.addr, 24, hs.gateway));
    } else {
      hosts_.push_back(&network_.add_node_on<traffic::Host>(
          ctx, hs.name, hs.addr, 24, hs.gateway));
    }
  }
}

traffic::VtepHost& Deployment::vtep(std::uint32_t host_index) {
  auto* v = dynamic_cast<traffic::VtepHost*>(hosts_[host_index]);
  if (v == nullptr) throw std::logic_error("Deployment: not a VTEP host");
  return *v;
}

void Deployment::wire(const DeployOptions& options) {
  const auto& bp = *blueprint_;
  for (const auto& link : bp.links()) {
    network_.connect(*routers_[link.upper], *routers_[link.lower], options.link);
  }
  for (std::uint32_t h = 0; h < bp.hosts().size(); ++h) {
    network_.connect(*routers_[bp.hosts()[h].leaf], *hosts_[h],
                     options.host_link);
  }
}

mtp::MtpRouter& Deployment::mtp(std::uint32_t device_index) {
  auto* r = dynamic_cast<mtp::MtpRouter*>(routers_[device_index]);
  if (r == nullptr) throw std::logic_error("Deployment: not an MTP router");
  return *r;
}

bgp::BgpRouter& Deployment::bgp(std::uint32_t device_index) {
  auto* r = dynamic_cast<bgp::BgpRouter*>(routers_[device_index]);
  if (r == nullptr) throw std::logic_error("Deployment: not a BGP router");
  return *r;
}

std::vector<std::uint16_t> Deployment::all_vids() const {
  std::vector<std::uint16_t> vids;
  for (const auto& spec : blueprint_->devices()) {
    if (spec.role == topo::Role::kLeaf) vids.push_back(spec.vid);
  }
  return vids;
}

bool Deployment::converged() const {
  const auto& bp = *blueprint_;

  if (proto_ == Proto::kMtp) {
    std::vector<std::uint16_t> all = all_vids();
    for (std::uint32_t d = 0; d < bp.devices().size(); ++d) {
      const auto& spec = bp.device(d);
      const auto& router = dynamic_cast<const mtp::MtpRouter&>(*routers_[d]);
      std::vector<std::uint16_t> scope;
      if (spec.role == topo::Role::kSuperSpine) {
        scope = all;  // supers mesh every cluster's trees
      } else if (spec.role == topo::Role::kTopSpine) {
        // A top spine joins every tree of its own cluster.
        for (std::uint32_t pod = 1; pod <= bp.params().pods; ++pod) {
          for (std::uint32_t t = 1; t <= bp.params().tors_per_pod; ++t) {
            scope.push_back(bp.tor_vid_in(spec.cluster, pod, t));
          }
        }
      } else if (spec.role == topo::Role::kPodSpine) {
        for (std::uint32_t t = 1; t <= bp.params().tors_per_pod; ++t) {
          scope.push_back(bp.tor_vid_in(spec.cluster, spec.pod, t));
        }
      }
      if (!router.joined_all(scope)) return false;
    }
    return true;
  }

  // BGP: all sessions up and a route (or origination) for every subnet.
  for (std::uint32_t d = 0; d < bp.devices().size(); ++d) {
    const auto& router = dynamic_cast<const bgp::BgpRouter&>(*routers_[d]);
    if (router.established_sessions() != router.config().neighbors.size()) {
      return false;
    }
    for (const auto& spec : bp.devices()) {
      if (spec.role != topo::Role::kLeaf) continue;
      if (router.routes().exact(*spec.server_subnet) == nullptr) return false;
    }
  }
  return true;
}

}  // namespace mrmtp::harness
