#include "harness/deploy.hpp"

#include <stdexcept>

#include "util/hash.hpp"

namespace mrmtp::harness {

std::string_view to_string(Proto p) {
  switch (p) {
    case Proto::kMtp: return "MR-MTP";
    case Proto::kBgp: return "BGP/ECMP";
    case Proto::kBgpBfd: return "BGP/ECMP/BFD";
  }
  return "?";
}

ShardedFabric::ShardedFabric(const topo::ClosBlueprint& blueprint,
                             std::uint32_t threads, std::uint64_t seed)
    : blueprint_(&blueprint),
      seed_(seed),
      plan_(topo::make_shard_plan(blueprint, threads)) {
  ctxs_.reserve(plan_.shards);
  for (std::uint32_t s = 0; s < plan_.shards; ++s) {
    // The shared per-context rng is never drawn in a sharded deployment
    // (every consumer is moved onto a private stream below), but seed each
    // shard distinctly so any future draw is at least not correlated.
    ctxs_.push_back(
        std::make_unique<net::SimContext>(util::mix64(seed) + s));
    // Assigned here (not in attach) so wiring-time consumers — notably
    // Link::schedule_delivery's same-shard bypass and the cross-shard link
    // classification below — can read endpoint shards.
    ctxs_.back()->shard = s;
  }
}

void ShardedFabric::attach(net::Network& network) {
  if (engine_) {
    throw std::logic_error("ShardedFabric::attach called twice");
  }

  // Per-link (per-direction, inside Link) RNG streams, seeded by wiring
  // order. Wiring order is a blueprint property, so a link's stream — and
  // hence its loss/jitter draws — is identical no matter how many shards the
  // fabric is split into. That is the whole determinism argument: each draw
  // depends only on the entity's own event order, never on global order.
  std::uint64_t li = 0;
  for (const auto& link : network.links()) {
    link->use_stream_rng(util::mix64(seed_ ^ 0x6c696e6b5347ull) + li++);
  }

  // Per-directed-shard-pair lookahead from the links that actually cross
  // that pair — same-shard deliveries bypass the bus entirely (see
  // Link::schedule_delivery), so only shard-crossing links constrain the
  // engine, and a pair wired only through fat cross-cluster links gets
  // their full delay instead of the global minimum. The engine closes the
  // matrix transitively so multi-hop chains stay bounded.
  const std::uint32_t n = shard_count();
  std::vector<sim::Duration> pair_la(static_cast<std::size_t>(n) * n,
                                     sim::Duration{});
  bool any_cross = false;
  sim::Duration min_cross{};
  for (const auto& link : network.links()) {
    const std::uint32_t sa = link->a().owner().ctx().shard;
    const std::uint32_t sb = link->b().owner().ctx().shard;
    if (sa == sb) continue;
    const sim::Duration d = link->params().delay;
    for (auto [src, dst] : {std::pair{sa, sb}, std::pair{sb, sa}}) {
      sim::Duration& slot = pair_la[static_cast<std::size_t>(src) * n + dst];
      if (slot <= sim::Duration{} || d < slot) slot = d;
    }
    if (!any_cross || d < min_cross) min_cross = d;
    any_cross = true;
  }
  lookahead_ = any_cross ? min_cross : sim::Duration::micros(5);

  std::vector<sim::Scheduler*> scheds;
  scheds.reserve(ctxs_.size());
  for (auto& c : ctxs_) scheds.push_back(&c->sched);
  sim::ShardedEngine::Options opts;
  opts.lookahead = lookahead_;
  if (n > 1) opts.pair_lookahead = std::move(pair_la);
  engine_ = std::make_unique<sim::ShardedEngine>(std::move(scheds),
                                                 std::move(opts));
  for (std::uint32_t s = 0; s < ctxs_.size(); ++s) {
    ctxs_[s]->bus = &engine_->bus();
  }
}

sim::ShardedEngine& ShardedFabric::engine() {
  if (!engine_) {
    throw std::logic_error("ShardedFabric::engine before attach");
  }
  return *engine_;
}

Deployment::Deployment(net::SimContext& ctx,
                       const topo::ClosBlueprint& blueprint, Proto proto,
                       DeployOptions options)
    : ctx_(ctx), blueprint_(&blueprint), proto_(proto), network_(ctx) {
  init_lifecycle(options);
  if (proto_ == Proto::kMtp) {
    deploy_mtp(options);
  } else {
    deploy_bgp(options);
  }
}

Deployment::Deployment(ShardedFabric& fabric, Proto proto,
                       DeployOptions options)
    : ctx_(fabric.ctx(0)),
      blueprint_(&fabric.blueprint()),
      proto_(proto),
      fabric_(&fabric),
      network_(fabric.ctx(0)) {
  init_lifecycle(options);
  if (proto_ == Proto::kMtp) {
    deploy_mtp(options);
  } else {
    deploy_bgp(options);
    // Keepalive-jitter and retry draws onto per-peer streams (and per-BFD-
    // session streams), seeded by device index — again a pure blueprint
    // property, invariant under sharding. Must precede start().
    for (std::uint32_t d = 0; d < router_count(); ++d) {
      bgp(d).use_stream_rng(util::mix64(fabric.seed() ^ 0x626770ull) ^
                            util::mix64(static_cast<std::uint64_t>(d)));
    }
  }
  fabric.attach(network_);
}

net::SimContext& Deployment::device_ctx(std::uint32_t d) {
  return fabric_ != nullptr ? fabric_->device_ctx(d) : ctx_;
}

void Deployment::deploy_mtp(const DeployOptions& options) {
  const auto& bp = *blueprint_;

  for (std::uint32_t d = 0; d < bp.devices().size(); ++d) {
    const auto& spec = bp.device(d);
    mtp::MtpConfig cfg;
    cfg.tier = spec.tier;
    cfg.timers = options.mtp_timers;
    cfg.path_select = options.path_select;
    cfg.flowlet_gap = options.effective_flowlet_gap();
    if (spec.role == topo::Role::kLeaf) {
      cfg.server_subnet = spec.server_subnet;
      if (options.duplicate_subnet_of.has_value() &&
          options.duplicate_subnet_of->first == d) {
        // The operator pasted another rack's subnet into this ToR's config:
        // it now announces a root VID that already exists elsewhere.
        cfg.server_subnet =
            bp.device(options.duplicate_subnet_of->second).server_subnet;
      }
      std::uint32_t base_port = bp.leaf_host_port(d);
      std::uint32_t offset = 0;
      for (const auto& hs : bp.hosts()) {
        if (hs.leaf == d) cfg.rack_hosts[hs.addr] = base_port + offset++;
      }
    }
    routers_.push_back(
        &network_.add_node_on<mtp::MtpRouter>(device_ctx(d), spec.name, cfg));
  }

  add_hosts(options);
  wire(options);
}

void Deployment::deploy_bgp(const DeployOptions& options) {
  const auto& bp = *blueprint_;
  if (options.duplicate_subnet_of.has_value()) {
    throw std::invalid_argument(
        "Deployment: duplicate_subnet_of models an MR-MTP VID collision; "
        "deploy it under Proto::kMtp");
  }

  for (std::uint32_t d = 0; d < bp.devices().size(); ++d) {
    const auto& spec = bp.device(d);
    bgp::BgpConfig cfg;
    cfg.asn = spec.asn;
    cfg.router_id = d + 1;
    cfg.timers = options.bgp_timers;
    cfg.ecmp = true;
    cfg.enable_bfd = proto_ == Proto::kBgpBfd;
    cfg.bfd = options.bfd;
    for (std::uint32_t li = 0; li < bp.links().size(); ++li) {
      const auto& link = bp.links()[li];
      if (link.upper == d) {
        cfg.neighbors.push_back({link.upper_addr, link.lower_addr,
                                 bp.device(link.lower).asn});
      } else if (link.lower == d) {
        cfg.neighbors.push_back({link.lower_addr, link.upper_addr,
                                 bp.device(link.upper).asn});
      }
    }
    if (spec.role == topo::Role::kLeaf) {
      cfg.originate.push_back(*spec.server_subnet);
    }
    auto& router = network_.add_node_on<bgp::BgpRouter>(device_ctx(d),
                                                        spec.name, spec.tier,
                                                        cfg);
    if (options.path_select != util::PathSelect::kHrw) {
      // Must precede start(): install() reads the mode to stamp next-hop
      // weights as sessions come up. Hosts keep plain HRW — their single
      // default route has nothing to weight.
      router.enable_path_select(options.path_select,
                                options.effective_flowlet_gap());
    }
    routers_.push_back(&router);
  }

  add_hosts(options);
  wire(options);

  // Interface addressing: /31 per fabric link, /24 gateway on rack ports.
  for (std::uint32_t li = 0; li < bp.links().size(); ++li) {
    const auto& link = bp.links()[li];
    auto& upper = dynamic_cast<bgp::BgpRouter&>(*routers_[link.upper]);
    auto& lower = dynamic_cast<bgp::BgpRouter&>(*routers_[link.lower]);
    upper.configure_port(bp.port_on(link.upper, li), link.upper_addr, 31);
    lower.configure_port(bp.port_on(link.lower, li), link.lower_addr, 31);
  }
  std::vector<std::uint32_t> next_rack_port(bp.devices().size(), 0);
  for (const auto& hs : bp.hosts()) {
    auto& leaf = dynamic_cast<bgp::BgpRouter&>(*routers_[hs.leaf]);
    std::uint32_t port_number =
        bp.leaf_host_port(hs.leaf) + next_rack_port[hs.leaf]++;
    leaf.configure_port(port_number, hs.gateway, 24);
  }
}

void Deployment::add_hosts(const DeployOptions& options) {
  for (const auto& hs : blueprint_->hosts()) {
    // Hosts follow their ToR's shard: the rack link never crosses threads.
    net::SimContext& ctx = device_ctx(hs.leaf);
    if (options.vtep_hosts) {
      hosts_.push_back(&network_.add_node_on<traffic::VtepHost>(
          ctx, hs.name, hs.addr, 24, hs.gateway));
    } else {
      hosts_.push_back(&network_.add_node_on<traffic::Host>(
          ctx, hs.name, hs.addr, 24, hs.gateway));
    }
  }
}

traffic::VtepHost& Deployment::vtep(std::uint32_t host_index) {
  auto* v = dynamic_cast<traffic::VtepHost*>(hosts_[host_index]);
  if (v == nullptr) throw std::logic_error("Deployment: not a VTEP host");
  return *v;
}

void Deployment::wire(const DeployOptions& options) {
  const auto& bp = *blueprint_;
  const auto& params = bp.params();
  auto deferred_pod_of = [&](std::uint32_t d) -> std::uint32_t {
    const auto& spec = bp.device(d);
    if (spec.role != topo::Role::kLeaf && spec.role != topo::Role::kPodSpine) {
      return 0;
    }
    std::uint32_t g = (spec.cluster - 1) * params.pods + spec.pod;
    return options.deferred_pods.count(g) != 0 ? g : 0;
  };
  auto defer = [&](std::uint32_t g, net::Node& node, std::uint32_t port) {
    node.set_interface_down(port);
    deferred_ifaces_[g].emplace_back(&node, port);
  };
  for (std::uint32_t li = 0; li < bp.links().size(); ++li) {
    const auto& link = bp.links()[li];
    net::Link::Params lp = options.link;
    // Mixed-speed fabric: the blueprint scales individual links (asymmetric
    // oversubscription); delay is untouched so sharded lookahead holds.
    lp.bandwidth_bps = static_cast<std::uint64_t>(
        static_cast<double>(lp.bandwidth_bps) * link.rate);
    network_.connect(*routers_[link.upper], *routers_[link.lower], lp);
    // Links into a deferred pod are wired dark: admin-down on both ends
    // until activate_pod() powers the expansion in.
    std::uint32_t g = deferred_pod_of(link.upper);
    if (g == 0) g = deferred_pod_of(link.lower);
    if (g != 0) {
      defer(g, *routers_[link.upper], bp.port_on(link.upper, li));
      defer(g, *routers_[link.lower], bp.port_on(link.lower, li));
    }
  }
  std::vector<std::uint32_t> next_rack_port(bp.devices().size(), 0);
  for (std::uint32_t h = 0; h < bp.hosts().size(); ++h) {
    std::uint32_t leaf = bp.hosts()[h].leaf;
    network_.connect(*routers_[leaf], *hosts_[h], options.host_link);
    std::uint32_t leaf_port = bp.leaf_host_port(leaf) + next_rack_port[leaf]++;
    std::uint32_t g = deferred_pod_of(leaf);
    if (g != 0) {
      defer(g, *routers_[leaf], leaf_port);
      defer(g, *hosts_[h], 1);  // a host's only port
    }
  }
  if (options.switch_buffer.has_value()) {
    // Switches only — hosts model NICs, which obey PAUSE at the generator
    // (traffic::Host pacing) rather than owning a shared pool.
    for (net::Node* r : routers_) r->enable_switch_buffer(*options.switch_buffer);
  }
}

void Deployment::init_lifecycle(const DeployOptions& options) {
  options_ = options;
  const auto& bp = *blueprint_;
  const auto& params = bp.params();
  active_.assign(bp.devices().size(), true);
  host_active_.assign(bp.hosts().size(), true);
  for (std::uint32_t d = 0; d < bp.devices().size(); ++d) {
    const auto& spec = bp.device(d);
    if (spec.role != topo::Role::kLeaf && spec.role != topo::Role::kPodSpine) {
      continue;
    }
    std::uint32_t g = (spec.cluster - 1) * params.pods + spec.pod;
    if (options.deferred_pods.count(g) != 0) active_[d] = false;
  }
  for (std::uint32_t h = 0; h < bp.hosts().size(); ++h) {
    if (!active_[bp.hosts()[h].leaf]) host_active_[h] = false;
  }
}

void Deployment::start() {
  for (std::uint32_t d = 0; d < routers_.size(); ++d) {
    if (active_[d]) routers_[d]->start();
  }
  for (std::uint32_t h = 0; h < hosts_.size(); ++h) {
    if (host_active_[h]) hosts_[h]->start();
  }
}

void Deployment::drain_router(std::uint32_t device_index) {
  if (proto_ == Proto::kMtp) {
    mtp(device_index).drain();
  } else {
    bgp(device_index).drain();
  }
}

void Deployment::stop_router(std::uint32_t device_index) {
  net::Node& r = *routers_[device_index];
  // Protocol teardown first: BGP's RSTs must ride the still-up ports so
  // established and half-open peers learn of the death immediately.
  r.stop();
  std::vector<std::uint32_t>& downed = rebooting_ports_[device_index];
  downed.clear();
  for (std::uint32_t p = 1; p <= r.port_count(); ++p) {
    if (!r.port(p).admin_up()) continue;  // deferred/failed ports stay down
    r.set_interface_down(p);
    downed.push_back(p);
  }
  active_[device_index] = false;
}

void Deployment::restart_router(std::uint32_t device_index) {
  net::Node& r = *routers_[device_index];
  auto it = rebooting_ports_.find(device_index);
  if (it != rebooting_ports_.end()) {
    // Interfaces first: start() advertises / opens sessions on them.
    for (std::uint32_t p : it->second) r.set_interface_up(p);
    rebooting_ports_.erase(it);
  }
  active_[device_index] = true;
  r.start();
}

void Deployment::activate_pod(std::uint32_t global_pod) {
  auto it = deferred_ifaces_.find(global_pod);
  if (it == deferred_ifaces_.end()) {
    throw std::logic_error("Deployment: pod was not deferred");
  }
  for (auto& [node, port] : it->second) node->set_interface_up(port);
  deferred_ifaces_.erase(it);
  const auto& bp = *blueprint_;
  const auto& params = bp.params();
  for (std::uint32_t d = 0; d < bp.devices().size(); ++d) {
    const auto& spec = bp.device(d);
    if (spec.role != topo::Role::kLeaf && spec.role != topo::Role::kPodSpine) {
      continue;
    }
    if ((spec.cluster - 1) * params.pods + spec.pod != global_pod) continue;
    active_[d] = true;
    routers_[d]->start();
  }
  for (std::uint32_t h = 0; h < bp.hosts().size(); ++h) {
    if (host_active_[h]) continue;
    const auto& spec = bp.device(bp.hosts()[h].leaf);
    if ((spec.cluster - 1) * params.pods + spec.pod != global_pod) continue;
    host_active_[h] = true;
    hosts_[h]->start();
  }
}

void Deployment::admin_down_port(std::uint32_t device_index,
                                 std::uint32_t port) {
  operator_down_[device_index].insert(port);
  routers_[device_index]->set_interface_down(port);
}

mtp::MtpRouter& Deployment::mtp(std::uint32_t device_index) {
  auto* r = dynamic_cast<mtp::MtpRouter*>(routers_[device_index]);
  if (r == nullptr) throw std::logic_error("Deployment: not an MTP router");
  return *r;
}

bgp::BgpRouter& Deployment::bgp(std::uint32_t device_index) {
  auto* r = dynamic_cast<bgp::BgpRouter*>(routers_[device_index]);
  if (r == nullptr) throw std::logic_error("Deployment: not a BGP router");
  return *r;
}

std::vector<std::uint16_t> Deployment::all_vids() const {
  std::vector<std::uint16_t> vids;
  for (const auto& spec : blueprint_->devices()) {
    if (spec.role == topo::Role::kLeaf) vids.push_back(spec.vid);
  }
  return vids;
}

bool Deployment::converged() const {
  const auto& bp = *blueprint_;
  const auto& links = bp.links();
  const std::uint32_t n = static_cast<std::uint32_t>(bp.devices().size());

  // Expected state is derived from the links the *operator* still intends
  // to carry traffic: both endpoint routers powered and neither interface
  // deliberately shut down via admin_down_port(). Dark deferred pods,
  // reboots in flight, and one-sided maintenance downs all shrink the
  // expectation; an injected fault records no intent, so the fabric keeps
  // reading as unconverged until the wiring is whole again.
  auto intended_down = [&](std::uint32_t d, std::uint32_t p) {
    auto it = operator_down_.find(d);
    return it != operator_down_.end() && it->second.count(p) != 0;
  };
  std::vector<bool> usable(links.size(), false);
  for (std::uint32_t li = 0; li < links.size(); ++li) {
    const auto& l = links[li];
    usable[li] = active_[l.upper] && active_[l.lower] &&
                 !intended_down(l.upper, bp.port_on(l.upper, li)) &&
                 !intended_down(l.lower, bp.port_on(l.lower, li));
  }
  auto draining = [&](std::uint32_t d) {
    if (proto_ == Proto::kMtp) {
      return dynamic_cast<const mtp::MtpRouter&>(*routers_[d]).draining();
    }
    return dynamic_cast<const bgp::BgpRouter&>(*routers_[d]).draining();
  };

  if (proto_ == Proto::kMtp) {
    // A router's convergence scope is the set of leaf VIDs it can still
    // reach downward over usable links. A draining child has withdrawn its
    // subtree on purpose — in a striped fabric a top spine may reach a pod
    // through exactly one pod spine, so costing that spine out legitimately
    // removes the pod's trees from the top; that must not read as
    // "unconverged". The duplicate-subnet victim is excluded too: its
    // blueprint VID has no advertiser. Children always carry smaller device
    // indices than their parents (leaves < pod spines < tops < supers), so
    // one pass in index order sees every child's scope before its parents.
    const std::uint32_t victim = options_.duplicate_subnet_of.has_value()
                                     ? options_.duplicate_subnet_of->first
                                     : n;
    std::vector<std::set<std::uint16_t>> scope(n);
    for (std::uint32_t d = 0; d < n; ++d) {
      if (bp.device(d).role == topo::Role::kLeaf) {
        if (d != victim) scope[d].insert(bp.device(d).vid);
        continue;
      }
      for (std::uint32_t li = 0; li < links.size(); ++li) {
        if (!usable[li] || links[li].upper != d) continue;
        if (draining(links[li].lower)) continue;
        scope[d].insert(scope[links[li].lower].begin(),
                        scope[links[li].lower].end());
      }
    }
    for (std::uint32_t d = 0; d < n; ++d) {
      if (!active_[d]) continue;
      const auto& router = dynamic_cast<const mtp::MtpRouter&>(*routers_[d]);
      std::vector<std::uint16_t> want;
      if (bp.device(d).role != topo::Role::kLeaf) {
        want.assign(scope[d].begin(), scope[d].end());
      }
      if (!router.joined_all(want)) return false;
    }
    return true;
  }

  // BGP: every session riding a usable link is Established, and every
  // powered router holds a route (or origination) for each powered,
  // non-draining leaf subnet that BGP's valley-free flood can actually
  // deliver to it: advertisements climb from the leaf through non-draining
  // routers, then descend the same way. A draining router stops exporting
  // but keeps receiving, so a drained spine still carries a full RIB.
  std::vector<std::size_t> expected(n, 0);
  for (std::uint32_t li = 0; li < links.size(); ++li) {
    if (!usable[li]) continue;
    ++expected[links[li].upper];
    ++expected[links[li].lower];
  }
  std::vector<std::set<std::uint32_t>> reach(n);  // leaves advertised up to d
  for (std::uint32_t d = 0; d < n; ++d) {
    if (bp.device(d).role == topo::Role::kLeaf) {
      reach[d].insert(d);
      continue;
    }
    for (std::uint32_t li = 0; li < links.size(); ++li) {
      if (!usable[li] || links[li].upper != d) continue;
      if (draining(links[li].lower)) continue;
      reach[d].insert(reach[links[li].lower].begin(),
                      reach[links[li].lower].end());
    }
  }
  // Downward pass, parents before children (descending index order).
  std::vector<std::set<std::uint32_t>> full(reach);
  for (std::uint32_t d = n; d-- > 0;) {
    for (std::uint32_t li = 0; li < links.size(); ++li) {
      if (!usable[li] || links[li].lower != d) continue;
      if (draining(links[li].upper)) continue;
      full[d].insert(full[links[li].upper].begin(),
                     full[links[li].upper].end());
    }
  }
  for (std::uint32_t d = 0; d < n; ++d) {
    if (!active_[d]) continue;
    const auto& router = dynamic_cast<const bgp::BgpRouter&>(*routers_[d]);
    if (router.established_sessions() != expected[d]) return false;
    for (std::uint32_t l : full[d]) {
      const auto& spec = bp.device(l);
      if (draining(l)) continue;  // the leaf withdrew its prefix on purpose
      if (router.routes().exact(*spec.server_subnet) == nullptr) return false;
    }
  }
  return true;
}

}  // namespace mrmtp::harness
