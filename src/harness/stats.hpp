// Small online-statistics accumulator for seed-averaged experiment results
// (mean, standard deviation, min, max via Welford's algorithm) — the error
// bars behind the paper's "averaged over multiple runs" plots.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace mrmtp::harness {

class Distribution {
 public:
  void add(double value) {
    ++n_;
    double delta = value - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (value - mean_);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ == 0 ? 0.0 : mean_; }
  /// Sample standard deviation (n-1); 0 for fewer than two samples.
  [[nodiscard]] double stddev() const {
    return n_ < 2 ? 0.0 : std::sqrt(m2_ / static_cast<double>(n_ - 1));
  }
  [[nodiscard]] double min() const { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return n_ == 0 ? 0.0 : max_; }

  /// "12.3 ±1.2" rendering for tables.
  [[nodiscard]] std::string str(int decimals = 1) const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace mrmtp::harness
