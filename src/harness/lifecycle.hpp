// LifecycleEngine: scripted production maintenance on a live deployment.
//
// Production Clos fabrics are never static: routers get rolling firmware
// upgrades, new pods are wired in while traffic flows, and operators fat-
// finger configs. The engine scripts those events against a running
// Deployment the same way ChaosEngine scripts gray failures:
//
//   * rolling_upgrade(): per-router drain (graceful cost-out) -> grace
//     period for in-flight traffic -> power-off with a full control-plane
//     state wipe -> cold rejoin -> re-convergence audit, serially over an
//     operator-chosen set (all spines, one pod, a canary);
//   * expand_pod(): powers a dark-wired pod (DeployOptions::deferred_pods)
//     into the running fabric and audits the merge;
//   * misconfig_asymmetric_down(): the classic one-sided "shutdown" — the
//     far end keeps believing in the link until its dead timer fires.
//
// Every phase declares a reconvergence window on the FabricAuditor;
// violations outside any declared window are hard failures, and violations
// attributed to a router *while it drains* are failures too — a draining
// router is healthy by definition, and the auditor must be able to tell
// "draining" from "broken".
//
// Events are logged as topo::ChaosEventRecord so a run mixing chaos and
// lifecycle reads as one chronology (attach_chaos shares the timeline).
//
// Lifetime: scheduled events capture `this`; the engine must outlive the
// scheduler run it armed. Convergence polling reads fabric-wide state, so
// drive sharded deployments one lifecycle phase per engine window or use a
// single-context deployment (the bench does).
#pragma once

#include <string>
#include <vector>

#include "harness/auditor.hpp"
#include "harness/deploy.hpp"
#include "topo/chaos.hpp"

namespace mrmtp::harness {

/// One scripted maintenance action and its audit bookkeeping.
struct LifecyclePhase {
  std::string name;    // "upgrade S-1-1", "expand pod 8", ...
  std::string device;  // primary device (empty for pod-wide actions)
  sim::Time start;         // drain begins / pod powers on / misconfig lands
  sim::Time drain_until;   // end of the graceful cost-out (== start if none)
  sim::Time window_end;    // declared reconvergence deadline
  sim::Time reconverged;   // first instant converged() held again (unset: never)
  bool saw_reconverge = false;
};

class LifecycleEngine {
 public:
  struct Options {
    /// Drain -> power-off gap: how long in-flight traffic may keep using
    /// the costed-out router while neighbors shift away.
    sim::Duration drain_grace = sim::Duration::millis(250);
    /// Power-off -> cold-boot gap (the "firmware flash").
    sim::Duration reboot_hold = sim::Duration::millis(150);
    /// Declared re-convergence window after the disruptive step.
    sim::Duration reconverge_window = sim::Duration::seconds(2);
    /// Convergence polling cadence inside a window.
    sim::Duration poll = sim::Duration::millis(10);
  };

  LifecycleEngine(Deployment& dep, FabricAuditor& auditor);
  LifecycleEngine(Deployment& dep, FabricAuditor& auditor, Options opts);

  /// Mirrors every lifecycle event into the chaos engine's timeline.
  void attach_chaos(topo::ChaosEngine& chaos) { chaos_ = &chaos; }

  // --- target sets ---
  /// Every non-leaf router (pod spines, top spines, super spines).
  [[nodiscard]] std::vector<std::uint32_t> all_spines() const;
  /// Leaves and pod spines of one global pod (1-based).
  [[nodiscard]] std::vector<std::uint32_t> pod_routers(
      std::uint32_t global_pod) const;
  /// The canary: the fabric's first pod spine.
  [[nodiscard]] std::vector<std::uint32_t> canary() const;

  // --- scripted actions (schedule now, run inside the simulation) ---
  /// Serial rolling upgrade over `devices` starting at `at`: each router is
  /// drained, powered off after drain_grace, cold-booted after reboot_hold,
  /// then given reconverge_window to rejoin before the next router starts.
  void rolling_upgrade(const std::vector<std::uint32_t>& devices, sim::Time at);
  /// Powers the deferred pod into the fabric at `at` and audits the merge.
  void expand_pod(std::uint32_t global_pod, sim::Time at);
  /// One-sided admin-down of `device`'s `port` (the peer is not told — it
  /// must notice via its own dead timer). The fabric is expected to route
  /// around the misconfiguration within the declared window.
  void misconfig_asymmetric_down(std::uint32_t device, std::uint32_t port,
                                 sim::Time at);

  // --- post-run assertions ---
  [[nodiscard]] const std::vector<LifecyclePhase>& phases() const {
    return phases_;
  }
  [[nodiscard]] const std::vector<topo::ChaosEventRecord>& events() const {
    return events_;
  }
  /// True once every scheduled phase re-converged inside its window.
  [[nodiscard]] bool all_reconverged() const;
  /// Auditor violations outside every declared window (must be empty).
  [[nodiscard]] std::vector<Violation> out_of_window_violations() const {
    return auditor_.violations_outside_windows();
  }
  /// Violations attributed to a router during its own drain interval — a
  /// draining router is healthy by definition, so this must be empty even
  /// though the interval lies inside a declared window.
  [[nodiscard]] std::vector<Violation> drain_violations() const;

 private:
  void schedule_upgrade(std::uint32_t device, sim::Time t0);
  /// Self-rescheduling convergence poll for phase `idx` until `deadline`.
  void poll_phase(std::size_t idx, sim::Time deadline);
  void record(sim::Time at, topo::GrayKind kind, topo::ChaosPhase phase,
              std::string description);

  Deployment& dep_;
  FabricAuditor& auditor_;
  Options opts_;
  topo::ChaosEngine* chaos_ = nullptr;
  std::vector<LifecyclePhase> phases_;
  std::vector<topo::ChaosEventRecord> events_;
};

}  // namespace mrmtp::harness
