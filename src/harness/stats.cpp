#include "harness/stats.hpp"

#include <cstdio>

namespace mrmtp::harness {

std::string Distribution::str(int decimals) const {
  char buf[64];
  if (n_ < 2) {
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, mean());
  } else {
    std::snprintf(buf, sizeof(buf), "%.*f \xc2\xb1%.*f", decimals, mean(),
                  decimals, stddev());
  }
  return buf;
}

}  // namespace mrmtp::harness
