// BgpRouter: an RFC 7938-style datacenter eBGP speaker with ECMP and
// optional BFD, the paper's baseline protocol suite.
//
// Implements the pieces the paper's measurements exercise:
//   * session FSM over TCP-lite (Idle/Connect/OpenSent/OpenConfirm/
//     Established), keepalive + hold timers ("timers bgp 1 3"),
//     connect-retry with jitter;
//   * fast external fallover: a local interface going down immediately tears
//     the sessions riding on it (how TC2/TC4 converge quickly);
//   * Adj-RIB-In per peer, decision process by shortest AS_PATH with
//     multipath-relax ECMP, installation into the kernel-style RouteTable;
//   * per-peer Adj-RIB-Out with MinRouteAdvertisementInterval (MRAI)
//     batching and sender-side AS-loop suppression (the RFC 7938 ASN plan
//     makes this equivalent to valley-free route propagation);
//   * optional BFD (RFC 5880) driving the session down on detect timeout.
#pragma once

#include <map>
#include <set>
#include <unordered_map>

#include "bfd/bfd.hpp"
#include "bgp/message.hpp"
#include "transport/l3_node.hpp"

namespace mrmtp::bgp {

struct BgpTimers {
  sim::Duration keepalive = sim::Duration::seconds(1);
  sim::Duration hold = sim::Duration::seconds(3);
  /// MinRouteAdvertisementIntervalTimer. FRR's datacenter profile uses 0;
  /// the ablation bench sweeps it.
  sim::Duration mrai = sim::Duration::seconds(0);
  sim::Duration connect_retry = sim::Duration::seconds(1);

  // --- flap damping (RFC 2439-flavoured, disabled when penalty == 0) ---
  /// Figure-of-merit added per Established->down flap, halving every
  /// `damping_half_life`. While the decayed penalty is at or above
  /// `damping_suppress`, reconnect attempts are deferred until the penalty
  /// would decay to `damping_reuse` — a flapping session backs off instead
  /// of re-amplifying the withdrawal storm that killed it.
  double damping_penalty = 0;
  double damping_suppress = 2500;
  double damping_reuse = 750;
  sim::Duration damping_half_life = sim::Duration::seconds(2);
};

struct NeighborConfig {
  ip::Ipv4Addr local_addr;
  ip::Ipv4Addr peer_addr;
  std::uint32_t peer_asn = 0;
};

struct BgpConfig {
  std::uint32_t asn = 0;
  std::uint32_t router_id = 0;
  BgpTimers timers;
  bool ecmp = true;  // multipath relax
  bool enable_bfd = false;
  bfd::BfdSession::Config bfd;
  std::vector<NeighborConfig> neighbors;
  /// Locally originated prefixes (a ToR's server subnet).
  std::vector<ip::Ipv4Prefix> originate;
};

class BgpRouter : public transport::L3Node {
 public:
  enum class SessionState {
    kIdle,
    kConnect,
    kOpenSent,
    kOpenConfirm,
    kEstablished,
  };

  BgpRouter(net::SimContext& ctx, std::string name, std::uint32_t tier,
            BgpConfig config);

  void start() override;
  /// Reboot step: RSTs every TCP session (established peers learn at once;
  /// half-open peers exhaust their own SYN retransmits instead of wedging),
  /// stops BFD, and wipes peers, RIBs, and learned routes. A later start()
  /// is a cold rejoin with fresh sessions.
  void stop() override;
  void on_port_down(net::Port& port) override;
  void on_port_up(net::Port& port) override;

  /// Graceful cost-out before a planned reboot: withdraws every advertised
  /// prefix from every established peer and suppresses re-advertisement, so
  /// neighbors shift traffic to their remaining ECMP members while this
  /// router keeps forwarding in-flight packets through the grace period.
  void drain();
  [[nodiscard]] bool draining() const { return draining_; }

  /// Moves every timer-jitter draw (keepalive, retry, BFD tx) onto private
  /// per-peer streams derived from `seed`. Sharded deployments enable this
  /// on every router so each session's draw sequence depends only on its own
  /// event order — the cross-shard determinism requirement. Call before
  /// start(); the legacy single-context path leaves it off and keeps drawing
  /// from the shared SimContext rng.
  void use_stream_rng(std::uint64_t seed) { stream_seed_ = seed; }

  [[nodiscard]] const BgpConfig& config() const { return config_; }
  [[nodiscard]] SessionState session_state(ip::Ipv4Addr peer) const;
  [[nodiscard]] std::size_t established_sessions() const;

  /// FRR-style "show running-config" text (paper Listing 1).
  [[nodiscard]] std::string config_text() const;

  /// FRR-style "show bgp summary": one line per neighbor with state and
  /// message counters.
  [[nodiscard]] std::string summary_text() const;

  struct BgpStats {
    std::uint64_t updates_sent = 0;
    std::uint64_t updates_received = 0;
    std::uint64_t keepalives_sent = 0;
    std::uint64_t rib_changes = 0;  // RouteTable mutations
    std::uint64_t sessions_flapped = 0;  // Established -> down transitions
    /// Reconnects deferred past connect_retry by flap damping.
    std::uint64_t retries_damped = 0;
  };
  [[nodiscard]] const BgpStats& bgp_stats() const { return stats_; }

  /// Decayed flap-damping penalty for the session with `peer` (tests/bench).
  [[nodiscard]] double peer_damping_penalty(ip::Ipv4Addr peer) const;

  /// Fired whenever this router's RouteTable actually changes.
  std::function<void(sim::Time)> on_rib_change;
  /// Fired when an UPDATE is sent or received (convergence end detection —
  /// the paper records the time the update messages stop).
  std::function<void(sim::Time)> on_update_activity;
  /// Fired when an Established session goes down (hold timer, BFD, interface
  /// or transport event) — the detection instant of the gray-failure
  /// latency metric.
  std::function<void(sim::Time, ip::Ipv4Addr peer, std::string_view reason)>
      on_session_down;

 private:
  struct PathInfo {
    std::vector<std::uint32_t> as_path;
    ip::Ipv4Addr next_hop;
    std::size_t peer_index = 0;
  };

  struct Peer {
    NeighborConfig cfg;
    std::size_t index = 0;
    SessionState state = SessionState::kIdle;
    transport::TcpConnection* conn = nullptr;
    MessageReader reader;
    std::unique_ptr<sim::Timer> hold_timer;
    std::unique_ptr<sim::Timer> keepalive_timer;
    std::unique_ptr<sim::Timer> retry_timer;
    std::unique_ptr<sim::Timer> mrai_timer;
    /// Adj-RIB-Out: what we last advertised, per prefix (AS path sent).
    std::map<ip::Ipv4Prefix, std::vector<std::uint32_t>> advertised;
    /// Prefixes whose advertisement must be re-evaluated at next flush.
    std::set<ip::Ipv4Prefix> pending;
    /// Flap-damping figure of merit (lazy exponential decay).
    double damp_penalty = 0;
    sim::Time damp_updated{};
    /// Private jitter stream (use_stream_rng); empty: shared ctx rng.
    std::optional<sim::Rng> rng;
  };

  // --- session management ---
  void start_peer(Peer& peer);
  void attach_connection(Peer& peer, transport::TcpConnection& conn);
  void session_established(Peer& peer);
  void drop_session(Peer& peer, std::string_view reason);
  void schedule_retry(Peer& peer);
  /// Peer's damping penalty decayed to the current instant (no mutation).
  [[nodiscard]] double decayed_penalty(const Peer& peer) const;
  void handle_stream(Peer& peer, std::span<const std::uint8_t> data);
  void handle_message(Peer& peer, const BgpMessage& msg);
  void send_message(Peer& peer, const BgpMessage& msg);
  /// RFC 4271-style timer jitter: uniform in [0.75, 1.0) x base, drawn from
  /// the peer's private stream when one is set.
  [[nodiscard]] sim::Duration jittered(Peer& peer, sim::Duration base);
  [[nodiscard]] sim::Rng& draw_rng(Peer& peer) {
    return peer.rng ? *peer.rng : ctx_.rng;
  }

  // --- routing ---
  void process_update(Peer& peer, const UpdateMessage& update);
  /// Re-runs the decision process for `prefix`; returns true if the
  /// Loc-RIB / RouteTable changed.
  bool run_decision(ip::Ipv4Prefix prefix);
  void schedule_advertisements(ip::Ipv4Prefix prefix);
  void flush_peer(Peer& peer);
  /// What should currently be advertised to `peer` (AS path with own ASN
  /// prepended and next hop), or nullopt for none/suppressed.
  [[nodiscard]] std::optional<PathInfo> advertisement_for(
      const Peer& peer, ip::Ipv4Prefix prefix) const;
  [[nodiscard]] const PathInfo* best_path(ip::Ipv4Prefix prefix) const;
  void install(ip::Ipv4Prefix prefix, const std::vector<PathInfo*>& paths);
  void note_rib_change();

  [[nodiscard]] bool originates(ip::Ipv4Prefix prefix) const;
  [[nodiscard]] std::uint32_t egress_port_for(ip::Ipv4Addr next_hop) const;

  BgpConfig config_;
  std::optional<std::uint64_t> stream_seed_;
  bool draining_ = false;
  std::vector<std::unique_ptr<Peer>> peers_;
  /// Adj-RIB-In: prefix -> (peer index -> path).
  std::map<ip::Ipv4Prefix, std::map<std::size_t, PathInfo>> adj_rib_in_;
  /// Loc-RIB: chosen (possibly ECMP) paths per prefix, for advertisement.
  std::map<ip::Ipv4Prefix, std::vector<PathInfo>> loc_rib_;
  std::unique_ptr<bfd::BfdManager> bfd_;
  BgpStats stats_;
};

}  // namespace mrmtp::bgp
