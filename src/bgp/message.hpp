// BGP-4 message codecs (RFC 4271), the subset a datacenter eBGP deployment
// uses: OPEN, UPDATE (ORIGIN / AS_PATH / NEXT_HOP attributes, IPv4 NLRI and
// withdrawals), KEEPALIVE, NOTIFICATION. AS numbers are carried 4-byte wide
// in AS_PATH (RFC 6793 style). Sizes on the wire are exact: a KEEPALIVE is
// 19 bytes, which at L2 under TCP-lite gives the paper's 85-byte frames.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "ip/addr.hpp"
#include "util/byte_io.hpp"

namespace mrmtp::bgp {

constexpr std::uint16_t kBgpPort = 179;
constexpr std::size_t kHeaderSize = 19;

enum class MessageType : std::uint8_t {
  kOpen = 1,
  kUpdate = 2,
  kNotification = 3,
  kKeepalive = 4,
};

struct OpenMessage {
  std::uint32_t asn = 0;
  std::uint16_t hold_time_s = 3;
  std::uint32_t bgp_id = 0;
};

struct UpdateMessage {
  std::vector<ip::Ipv4Prefix> withdrawn;
  /// Attributes; meaningful only when nlri is non-empty.
  std::vector<std::uint32_t> as_path;
  ip::Ipv4Addr next_hop;
  std::vector<ip::Ipv4Prefix> nlri;

  [[nodiscard]] bool has_nlri() const { return !nlri.empty(); }
};

struct NotificationMessage {
  std::uint8_t code = 6;     // Cease
  std::uint8_t subcode = 0;
};

struct KeepaliveMessage {};

using BgpMessage = std::variant<OpenMessage, UpdateMessage,
                                NotificationMessage, KeepaliveMessage>;

[[nodiscard]] std::vector<std::uint8_t> encode(const BgpMessage& msg);

/// Reassembles BGP messages from TCP stream bytes.
class MessageReader {
 public:
  void append(std::span<const std::uint8_t> data) {
    buffer_.insert(buffer_.end(), data.begin(), data.end());
  }

  /// Extracts the next complete message; std::nullopt if more bytes are
  /// needed. Throws util::CodecError on malformed input (session reset).
  std::optional<BgpMessage> next();

  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

}  // namespace mrmtp::bgp
