#include "bgp/router.hpp"

#include <algorithm>
#include <cmath>

#include "net/link.hpp"

namespace mrmtp::bgp {

namespace {
constexpr std::uint16_t kEphemeralBase = 20000;
}

BgpRouter::BgpRouter(net::SimContext& ctx, std::string name, std::uint32_t tier,
                     BgpConfig config)
    : transport::L3Node(ctx, std::move(name), tier), config_(std::move(config)) {}

void BgpRouter::start() {
  draining_ = false;
  // Passive side of every session: accept on port 179 and bind the incoming
  // connection to the neighbor configured with that source address.
  tcp().listen(kBgpPort, [this](transport::TcpConnection& conn) {
    for (auto& p : peers_) {
      if (p->cfg.peer_addr == conn.remote_addr() &&
          p->state != SessionState::kEstablished) {
        // A stale half-open attempt is superseded by the new inbound one.
        if (p->conn != nullptr && p->conn != &conn) {
          auto* old = p->conn;
          p->conn = nullptr;
          tcp().destroy(*old);
        }
        attach_connection(*p, conn);
        return;
      }
    }
    // Unknown source: leave callbacks empty; connection idles until reset.
  });

  if (config_.enable_bfd) bfd_ = std::make_unique<bfd::BfdManager>(*this);

  std::size_t index = 0;
  for (const auto& n : config_.neighbors) {
    auto peer = std::make_unique<Peer>();
    peer->cfg = n;
    peer->index = index++;
    if (stream_seed_) {
      // Stream per (router seed, peer slot); the SplitMix64 expansion inside
      // Rng decorrelates adjacent seeds.
      peer->rng.emplace(*stream_seed_ + peer->index);
    }
    Peer& ref = *peer;
    peer->hold_timer = std::make_unique<sim::Timer>(
        ctx_.sched, [this, &ref] { drop_session(ref, "hold timer expired"); });
    peer->keepalive_timer =
        std::make_unique<sim::Timer>(ctx_.sched, [this, &ref] {
          if (ref.state == SessionState::kEstablished) {
            send_message(ref, KeepaliveMessage{});
            ++stats_.keepalives_sent;
            // RFC 4271 section 10: jitter each interval by 0.75..1.0 so
            // keep-alives across the fabric do not phase-lock.
            ref.keepalive_timer->start(jittered(ref, config_.timers.keepalive));
          }
        });
    peer->retry_timer = std::make_unique<sim::Timer>(
        ctx_.sched, [this, &ref] { start_peer(ref); });
    peer->mrai_timer = std::make_unique<sim::Timer>(ctx_.sched, [this, &ref] {
      if (!ref.pending.empty()) flush_peer(ref);
    });
    peers_.push_back(std::move(peer));

    if (config_.enable_bfd) {
      bfd::BfdSession& session =
          bfd_->create_session(n.local_addr, n.peer_addr, config_.bfd,
                               [this, &ref](bool up) {
                                 if (!up) drop_session(ref, "BFD down");
                               });
      if (stream_seed_) {
        session.use_stream_rng(~*stream_seed_ + ref.index);
      }
      session.start();
    }
  }

  // Seed the Loc-RIB with locally originated prefixes.
  for (const auto& prefix : config_.originate) run_decision(prefix);

  for (auto& p : peers_) start_peer(*p);
}

void BgpRouter::stop() {
  draining_ = false;
  // Detach connections from peers first so nothing re-enters session logic
  // while the stack resets, then let peers_.clear() cancel every timer.
  for (auto& peer : peers_) {
    if (peer->conn != nullptr) {
      peer->conn->set_callbacks({});
      peer->conn = nullptr;
    }
  }
  peers_.clear();
  bfd_.reset();
  // The BFD demux handler captured the manager just destroyed; park a sink
  // in its place so a late BFD frame from a still-transmitting peer cannot
  // reach it (the next start() binds a fresh manager).
  if (config_.enable_bfd) {
    bind_udp(bfd::kBfdPort,
             [](ip::Ipv4Addr, ip::Ipv4Addr, const transport::UdpHeader&,
                std::span<const std::uint8_t>) {});
  }
  adj_rib_in_.clear();
  loc_rib_.clear();
  tcp().shutdown();
  // Learned routes die with the control plane; connected routes are
  // interface configuration and survive the reboot.
  std::vector<ip::Ipv4Prefix> learned;
  for (const ip::Route* r : routes().sorted_routes()) {
    if (r->proto == ip::RouteProto::kBgp) learned.push_back(r->prefix);
  }
  for (const auto& prefix : learned) routes().remove(prefix);
}

void BgpRouter::drain() {
  if (draining_) return;
  draining_ = true;
  log(sim::LogLevel::kInfo, "draining for maintenance");
  // Withdraw the world: advertisement_for() now returns nothing, so marking
  // every advertised prefix pending makes flush_peer() emit pure withdrawals.
  // Neighbors drop this router from their ECMP sets and re-route; our own
  // RIB is untouched so in-flight traffic keeps forwarding until the reboot.
  for (auto& peer : peers_) {
    if (peer->state != SessionState::kEstablished) continue;
    for (const auto& [prefix, path] : peer->advertised) {
      peer->pending.insert(prefix);
    }
    flush_peer(*peer);
  }
}

void BgpRouter::start_peer(Peer& peer) {
  if (peer.state != SessionState::kIdle) return;
  // Deterministic tie-break: the numerically lower address actively opens.
  if (peer.cfg.local_addr < peer.cfg.peer_addr) {
    peer.state = SessionState::kConnect;
    transport::TcpConnection& conn = tcp().connect(
        peer.cfg.local_addr,
        static_cast<std::uint16_t>(kEphemeralBase + peer.index),
        peer.cfg.peer_addr, kBgpPort, transport::TcpConnection::Callbacks{},
        transport::TcpTuning{.rto = sim::Duration::millis(250),
                             .max_retransmits = 3});
    attach_connection(peer, conn);
  }
  // Passive side stays Idle until the listener hands us a connection.
}

void BgpRouter::attach_connection(Peer& peer, transport::TcpConnection& conn) {
  peer.conn = &conn;
  if (peer.state == SessionState::kIdle) peer.state = SessionState::kConnect;
  conn.set_callbacks(transport::TcpConnection::Callbacks{
      .on_established =
          [this, &peer] {
            send_message(peer,
                         OpenMessage{config_.asn,
                                     static_cast<std::uint16_t>(
                                         config_.timers.hold.to_seconds()),
                                     config_.router_id});
            peer.state = SessionState::kOpenSent;
            peer.hold_timer->start(config_.timers.hold);
          },
      .on_data =
          [this, &peer](std::span<const std::uint8_t> data) {
            handle_stream(peer, data);
          },
      .on_closed = [this, &peer] { drop_session(peer, "transport closed"); },
  });
}

sim::Duration BgpRouter::jittered(Peer& peer, sim::Duration base) {
  // Uniform in [0.75, 1.0) of the base interval.
  std::uint64_t span = static_cast<std::uint64_t>(base.ns() / 4);
  return base - sim::Duration::nanos(static_cast<std::int64_t>(
                    span == 0 ? 0 : draw_rng(peer).below(span)));
}

void BgpRouter::session_established(Peer& peer) {
  peer.state = SessionState::kEstablished;
  log(sim::LogLevel::kInfo, "BGP session with " + peer.cfg.peer_addr.str() +
                                " established");
  peer.keepalive_timer->start(jittered(peer, config_.timers.keepalive));
  peer.hold_timer->start(config_.timers.hold);
  // Initial full-table advertisement.
  for (const auto& [prefix, paths] : loc_rib_) peer.pending.insert(prefix);
  for (const auto& prefix : config_.originate) peer.pending.insert(prefix);
  flush_peer(peer);
}

void BgpRouter::drop_session(Peer& peer, std::string_view reason) {
  if (peer.state == SessionState::kIdle && peer.conn == nullptr) return;
  bool was_established = peer.state == SessionState::kEstablished;
  log(sim::LogLevel::kInfo, "BGP session with " + peer.cfg.peer_addr.str() +
                                " down (" + std::string(reason) + ")");
  peer.state = SessionState::kIdle;
  peer.hold_timer->stop();
  peer.keepalive_timer->stop();
  peer.mrai_timer->stop();
  peer.reader = MessageReader{};
  peer.advertised.clear();
  peer.pending.clear();
  if (peer.conn != nullptr) {
    auto* conn = peer.conn;
    peer.conn = nullptr;
    if (was_established && conn->established()) {
      conn->send(encode(NotificationMessage{}), net::TrafficClass::kBgpKeepalive);
    }
    tcp().destroy(*conn);
  }

  if (was_established) {
    ++stats_.sessions_flapped;
    if (config_.timers.damping_penalty > 0) {
      peer.damp_penalty = decayed_penalty(peer) + config_.timers.damping_penalty;
      peer.damp_updated = ctx_.now();
    }
  }
  if (was_established && on_session_down) {
    on_session_down(ctx_.now(), peer.cfg.peer_addr, reason);
  }
  if (was_established) {
    // Flush everything learned from this peer and reconverge.
    std::vector<ip::Ipv4Prefix> affected;
    for (auto& [prefix, paths] : adj_rib_in_) {
      if (paths.erase(peer.index) > 0) affected.push_back(prefix);
    }
    for (const auto& prefix : affected) {
      if (run_decision(prefix)) schedule_advertisements(prefix);
    }
  }
  schedule_retry(peer);
}

void BgpRouter::schedule_retry(Peer& peer) {
  auto jitter = sim::Duration::nanos(
      static_cast<std::int64_t>(draw_rng(peer).below(100'000'000ull)));
  sim::Duration wait = config_.timers.connect_retry + jitter;
  if (config_.timers.damping_penalty > 0) {
    double pen = decayed_penalty(peer);
    if (pen >= config_.timers.damping_suppress) {
      // Defer the reconnect until the penalty would decay to the reuse
      // threshold: half_life * log2(penalty / reuse).
      double halves = std::log2(pen / config_.timers.damping_reuse);
      auto suppress = sim::Duration::nanos(static_cast<std::int64_t>(
          halves *
          static_cast<double>(config_.timers.damping_half_life.ns())));
      if (suppress > wait) {
        wait = suppress;
        ++stats_.retries_damped;
        log(sim::LogLevel::kInfo,
            "BGP session with " + peer.cfg.peer_addr.str() +
                " flap-damped; retry in " + wait.str());
      }
    }
  }
  peer.retry_timer->start(wait);
}

double BgpRouter::decayed_penalty(const Peer& peer) const {
  if (peer.damp_penalty <= 0.0) return 0.0;
  sim::Duration dt = ctx_.now() - peer.damp_updated;
  if (dt <= sim::Duration{}) return peer.damp_penalty;
  return peer.damp_penalty *
         std::exp2(-static_cast<double>(dt.ns()) /
                   static_cast<double>(config_.timers.damping_half_life.ns()));
}

double BgpRouter::peer_damping_penalty(ip::Ipv4Addr peer_addr) const {
  for (const auto& peer : peers_) {
    if (peer->cfg.peer_addr == peer_addr) return decayed_penalty(*peer);
  }
  return 0.0;
}

void BgpRouter::handle_stream(Peer& peer, std::span<const std::uint8_t> data) {
  peer.reader.append(data);
  try {
    while (auto msg = peer.reader.next()) {
      handle_message(peer, *msg);
      if (peer.state == SessionState::kIdle) return;  // dropped mid-stream
    }
  } catch (const util::CodecError&) {
    drop_session(peer, "malformed message");
  }
}

void BgpRouter::handle_message(Peer& peer, const BgpMessage& msg) {
  if (peer.state == SessionState::kEstablished) {
    peer.hold_timer->restart();
  }

  if (const auto* open = std::get_if<OpenMessage>(&msg)) {
    if (peer.cfg.peer_asn <= 65535 && open->asn != peer.cfg.peer_asn) {
      send_message(peer, NotificationMessage{2, 2});  // Bad Peer AS
      drop_session(peer, "ASN mismatch");
      return;
    }
    if (peer.state == SessionState::kOpenSent) {
      send_message(peer, KeepaliveMessage{});
      peer.state = SessionState::kOpenConfirm;
      peer.hold_timer->start(config_.timers.hold);
    }
    return;
  }

  if (std::holds_alternative<KeepaliveMessage>(msg)) {
    if (peer.state == SessionState::kOpenConfirm) session_established(peer);
    return;
  }

  if (std::holds_alternative<NotificationMessage>(msg)) {
    drop_session(peer, "notification received");
    return;
  }

  if (const auto* update = std::get_if<UpdateMessage>(&msg)) {
    if (peer.state != SessionState::kEstablished) return;
    ++stats_.updates_received;
    if (on_update_activity) on_update_activity(ctx_.now());
    process_update(peer, *update);
  }
}

void BgpRouter::send_message(Peer& peer, const BgpMessage& msg) {
  if (peer.conn == nullptr) return;
  net::TrafficClass tc = std::holds_alternative<UpdateMessage>(msg)
                             ? net::TrafficClass::kBgpUpdate
                             : net::TrafficClass::kBgpKeepalive;
  if (std::holds_alternative<UpdateMessage>(msg)) {
    ++stats_.updates_sent;
    if (on_update_activity) on_update_activity(ctx_.now());
  }
  peer.conn->send(encode(msg), tc);
}

void BgpRouter::process_update(Peer& peer, const UpdateMessage& update) {
  std::vector<ip::Ipv4Prefix> affected;

  for (const auto& prefix : update.withdrawn) {
    auto it = adj_rib_in_.find(prefix);
    if (it != adj_rib_in_.end() && it->second.erase(peer.index) > 0) {
      affected.push_back(prefix);
    }
  }

  if (update.has_nlri()) {
    // Receiver-side loop check: discard paths containing our own ASN.
    bool loop = std::find(update.as_path.begin(), update.as_path.end(),
                          config_.asn) != update.as_path.end();
    if (!loop) {
      for (const auto& prefix : update.nlri) {
        adj_rib_in_[prefix][peer.index] =
            PathInfo{update.as_path, update.next_hop, peer.index};
        affected.push_back(prefix);
      }
    }
  }

  for (const auto& prefix : affected) {
    if (run_decision(prefix)) schedule_advertisements(prefix);
  }
}

bool BgpRouter::run_decision(ip::Ipv4Prefix prefix) {
  std::vector<PathInfo> chosen;

  if (originates(prefix)) {
    chosen.push_back(PathInfo{{}, ip::Ipv4Addr(), SIZE_MAX});
  } else {
    auto it = adj_rib_in_.find(prefix);
    if (it != adj_rib_in_.end()) {
      std::size_t best_len = SIZE_MAX;
      for (const auto& [peer_index, path] : it->second) {
        if (peers_[peer_index]->state != SessionState::kEstablished) continue;
        best_len = std::min(best_len, path.as_path.size());
      }
      for (const auto& [peer_index, path] : it->second) {
        if (peers_[peer_index]->state != SessionState::kEstablished) continue;
        if (path.as_path.size() == best_len &&
            (config_.ecmp || chosen.empty())) {
          chosen.push_back(path);
        }
      }
    }
  }

  auto same = [](const std::vector<PathInfo>& a, const std::vector<PathInfo>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].peer_index != b[i].peer_index ||
          a[i].next_hop != b[i].next_hop || a[i].as_path != b[i].as_path) {
        return false;
      }
    }
    return true;
  };

  auto it = loc_rib_.find(prefix);
  if (it != loc_rib_.end() && same(it->second, chosen)) return false;
  if (it == loc_rib_.end() && chosen.empty()) return false;

  if (chosen.empty()) {
    loc_rib_.erase(prefix);
  } else {
    loc_rib_[prefix] = chosen;
  }

  // Install into the forwarding table (originated prefixes are connected).
  if (!originates(prefix)) {
    // Static WCMP: when weighted path selection is enabled, each next hop
    // carries the configured capacity of its egress link (Mb/s) so the
    // weighted rendezvous pick splits flows capacity-proportionally across
    // a mixed-speed ECMP group.
    const bool wcmp = path_select() != util::PathSelect::kHrw;
    std::vector<ip::NextHop> nexthops;
    for (const auto& path : (chosen.empty() ? std::vector<PathInfo>{} : chosen)) {
      std::uint32_t port_number = egress_port_for(path.next_hop);
      if (port_number == 0) continue;
      ip::NextHop nh{path.next_hop, port_number};
      if (wcmp) {
        if (const net::Link* l = port(port_number).link(); l != nullptr) {
          nh.weight = static_cast<std::uint32_t>(std::max<std::uint64_t>(
              1, l->params().bandwidth_bps / 1'000'000));
        }
      }
      nexthops.push_back(nh);
    }
    const ip::Route* before = routes().exact(prefix);
    bool had = before != nullptr && before->proto == ip::RouteProto::kBgp;
    if (nexthops.empty()) {
      if (had) {
        routes().remove(prefix);
        note_rib_change();
      }
    } else {
      if (!had || before->nexthops != [&] {
            auto sorted = nexthops;
            std::sort(sorted.begin(), sorted.end());
            return sorted;
          }()) {
        if (wcmp) {
          for (const ip::NextHop& nh : nexthops) {
            const net::Port& eg = port(nh.port);
            if (eg.connected()) eg.link()->note_weight_update(eg);
          }
        }
        routes().set(prefix, ip::RouteProto::kBgp, nexthops);
        note_rib_change();
      }
    }
  }
  return true;
}

void BgpRouter::schedule_advertisements(ip::Ipv4Prefix prefix) {
  for (auto& peer : peers_) {
    peer->pending.insert(prefix);
    flush_peer(*peer);
  }
}

void BgpRouter::flush_peer(Peer& peer) {
  if (peer.state != SessionState::kEstablished) return;
  if (peer.mrai_timer->running()) return;  // batched until MRAI fires

  UpdateMessage withdraw_msg;
  // Group NLRI by identical (AS path, next hop).
  std::map<std::pair<std::vector<std::uint32_t>, std::uint32_t>,
           std::vector<ip::Ipv4Prefix>>
      groups;

  for (const auto& prefix : peer.pending) {
    auto want = advertisement_for(peer, prefix);
    auto have = peer.advertised.find(prefix);
    if (want.has_value()) {
      if (have == peer.advertised.end() || have->second != want->as_path) {
        groups[{want->as_path, want->next_hop.value()}].push_back(prefix);
        peer.advertised[prefix] = want->as_path;
      }
    } else if (have != peer.advertised.end()) {
      withdraw_msg.withdrawn.push_back(prefix);
      peer.advertised.erase(have);
    }
  }
  peer.pending.clear();

  bool sent = false;
  if (!withdraw_msg.withdrawn.empty()) {
    send_message(peer, withdraw_msg);
    sent = true;
  }
  for (auto& [key, nlri] : groups) {
    UpdateMessage m;
    m.as_path = key.first;
    m.next_hop = ip::Ipv4Addr(key.second);
    m.nlri = std::move(nlri);
    send_message(peer, m);
    sent = true;
  }

  if (sent && config_.timers.mrai > sim::Duration{}) {
    peer.mrai_timer->start(config_.timers.mrai);
  }
}

std::optional<BgpRouter::PathInfo> BgpRouter::advertisement_for(
    const Peer& peer, ip::Ipv4Prefix prefix) const {
  if (draining_) return std::nullopt;  // cost-out: withdraw everything
  PathInfo out;
  if (originates(prefix)) {
    out.as_path = {config_.asn};
    out.next_hop = peer.cfg.local_addr;
    return out;
  }
  const PathInfo* best = best_path(prefix);
  if (best == nullptr) return std::nullopt;
  if (best->peer_index == peer.index) return std::nullopt;  // no echo
  // Sender-side loop suppression: with the RFC 7938 ASN plan this prevents
  // valley advertisements (e.g. re-advertising a spine-learned path upward).
  if (std::find(best->as_path.begin(), best->as_path.end(),
                peer.cfg.peer_asn) != best->as_path.end()) {
    return std::nullopt;
  }
  out.as_path.reserve(best->as_path.size() + 1);
  out.as_path.push_back(config_.asn);
  out.as_path.insert(out.as_path.end(), best->as_path.begin(),
                     best->as_path.end());
  out.next_hop = peer.cfg.local_addr;
  return out;
}

const BgpRouter::PathInfo* BgpRouter::best_path(ip::Ipv4Prefix prefix) const {
  auto it = loc_rib_.find(prefix);
  if (it == loc_rib_.end() || it->second.empty()) return nullptr;
  return &it->second.front();
}

void BgpRouter::note_rib_change() {
  ++stats_.rib_changes;
  if (on_rib_change) on_rib_change(ctx_.now());
}

bool BgpRouter::originates(ip::Ipv4Prefix prefix) const {
  return std::find(config_.originate.begin(), config_.originate.end(),
                   prefix) != config_.originate.end();
}

std::uint32_t BgpRouter::egress_port_for(ip::Ipv4Addr next_hop) const {
  const ip::Route* r = routes().lookup(next_hop);
  if (r == nullptr || r->proto != ip::RouteProto::kConnected) return 0;
  return r->nexthops.front().port;
}

void BgpRouter::on_port_down(net::Port& port) {
  // Fast external fallover: sessions whose local address lives on the downed
  // interface go down immediately (the millisecond-scale local detection the
  // paper describes in Section IV.A).
  auto addr = port_addr(port.number());
  if (!addr.has_value()) return;
  for (auto& peer : peers_) {
    if (peer->cfg.local_addr == *addr) {
      if (config_.enable_bfd && bfd_ != nullptr) {
        if (auto* s = bfd_->find(peer->cfg.peer_addr)) s->stop();
      }
      drop_session(*peer, "interface down");
      peer->retry_timer->stop();  // pointless to retry into a dead port
    }
  }
}

void BgpRouter::on_port_up(net::Port& port) {
  auto addr = port_addr(port.number());
  if (!addr.has_value()) return;
  for (auto& peer : peers_) {
    if (peer->cfg.local_addr == *addr) {
      if (config_.enable_bfd && bfd_ != nullptr) {
        if (auto* s = bfd_->find(peer->cfg.peer_addr)) s->start();
      }
      schedule_retry(*peer);
    }
  }
}

BgpRouter::SessionState BgpRouter::session_state(ip::Ipv4Addr peer) const {
  for (const auto& p : peers_) {
    if (p->cfg.peer_addr == peer) return p->state;
  }
  return SessionState::kIdle;
}

std::size_t BgpRouter::established_sessions() const {
  std::size_t n = 0;
  for (const auto& p : peers_) {
    if (p->state == SessionState::kEstablished) ++n;
  }
  return n;
}

namespace {
std::string_view state_name(BgpRouter::SessionState s) {
  switch (s) {
    case BgpRouter::SessionState::kIdle: return "Idle";
    case BgpRouter::SessionState::kConnect: return "Connect";
    case BgpRouter::SessionState::kOpenSent: return "OpenSent";
    case BgpRouter::SessionState::kOpenConfirm: return "OpenConfirm";
    case BgpRouter::SessionState::kEstablished: return "Established";
  }
  return "?";
}
}  // namespace

std::string BgpRouter::summary_text() const {
  std::string out = "BGP router identifier " + std::to_string(config_.router_id) +
                    ", local AS number " + std::to_string(config_.asn) + "\n";
  out += "Neighbor         AS      State        PfxRcvd\n";
  for (const auto& p : peers_) {
    std::size_t prefixes = 0;
    for (const auto& [prefix, paths] : adj_rib_in_) {
      prefixes += paths.contains(p->index) ? 1 : 0;
    }
    char line[96];
    std::snprintf(line, sizeof(line), "%-16s %-7u %-12s %zu\n",
                  p->cfg.peer_addr.str().c_str(), p->cfg.peer_asn,
                  std::string(state_name(p->state)).c_str(), prefixes);
    out += line;
  }
  return out;
}

std::string BgpRouter::config_text() const {
  std::string out;
  out += "frr version 10.0\n";
  out += "frr defaults datacenter\n";
  out += "hostname " + name() + "\n";
  out += "log file /var/log/frr/bgpd.log\n";
  out += "log timestamp precision 3\n";
  out += "no ipv6 forwarding\n";
  out += "router bgp " + std::to_string(config_.asn) + "\n";
  out += " timers bgp " +
         std::to_string(static_cast<long long>(config_.timers.keepalive.to_seconds())) +
         " " +
         std::to_string(static_cast<long long>(config_.timers.hold.to_seconds())) +
         "\n";
  for (const auto& n : config_.neighbors) {
    out += " neighbor " + n.peer_addr.str() + " remote-as " +
           std::to_string(n.peer_asn) + "\n";
    if (config_.enable_bfd) {
      out += " neighbor " + n.peer_addr.str() + " bfd\n";
    }
  }
  out += " address-family ipv4 unicast\n";
  for (const auto& p : config_.originate) {
    out += "  network " + p.str() + "\n";
  }
  if (config_.ecmp) out += "  maximum-paths 64\n";
  out += " exit-address-family\n";
  if (config_.enable_bfd) {
    out += "bfd\n profile lowerIntervals\n  transmit-interval " +
           std::to_string(static_cast<long long>(config_.bfd.tx_interval.to_millis())) +
           "\n";
    for (const auto& n : config_.neighbors) {
      out += " peer " + n.peer_addr.str() + "\n  profile lowerIntervals\n";
    }
  }
  return out;
}

}  // namespace mrmtp::bgp
