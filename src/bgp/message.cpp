#include "bgp/message.hpp"

namespace mrmtp::bgp {

namespace {

constexpr std::uint8_t kAttrFlagsTransitive = 0x40;
constexpr std::uint8_t kAttrOrigin = 1;
constexpr std::uint8_t kAttrAsPath = 2;
constexpr std::uint8_t kAttrNextHop = 3;
constexpr std::uint8_t kAsSequence = 2;

void write_prefix(util::BufWriter& w, const ip::Ipv4Prefix& p) {
  w.u8(p.length());
  std::uint32_t v = p.network().value();
  for (int i = 0; i < (p.length() + 7) / 8; ++i) {
    w.u8(static_cast<std::uint8_t>(v >> (24 - 8 * i)));
  }
}

ip::Ipv4Prefix read_prefix(util::BufReader& r) {
  std::uint8_t len = r.u8();
  if (len > 32) throw util::CodecError("BGP: bad prefix length");
  std::uint32_t v = 0;
  for (int i = 0; i < (len + 7) / 8; ++i) {
    v |= static_cast<std::uint32_t>(r.u8()) << (24 - 8 * i);
  }
  return {ip::Ipv4Addr(v), len};
}

void write_header(util::BufWriter& w, MessageType type) {
  for (int i = 0; i < 16; ++i) w.u8(0xff);  // marker
  w.u16(0);                                 // length, patched later
  w.u8(static_cast<std::uint8_t>(type));
}

}  // namespace

std::vector<std::uint8_t> encode(const BgpMessage& msg) {
  util::BufWriter w(64);

  if (std::holds_alternative<KeepaliveMessage>(msg)) {
    write_header(w, MessageType::kKeepalive);
  } else if (const auto* open = std::get_if<OpenMessage>(&msg)) {
    write_header(w, MessageType::kOpen);
    w.u8(4);  // version
    // 2-byte my-AS field; 4-byte ASNs above 65535 use AS_TRANS (RFC 6793).
    w.u16(open->asn > 65535 ? 23456 : static_cast<std::uint16_t>(open->asn));
    w.u16(open->hold_time_s);
    w.u32(open->bgp_id);
    w.u8(0);  // no optional parameters
  } else if (const auto* notif = std::get_if<NotificationMessage>(&msg)) {
    write_header(w, MessageType::kNotification);
    w.u8(notif->code);
    w.u8(notif->subcode);
  } else {
    const auto& update = std::get<UpdateMessage>(msg);
    write_header(w, MessageType::kUpdate);
    // Withdrawn routes.
    std::size_t withdrawn_len_at = w.size();
    w.u16(0);
    for (const auto& p : update.withdrawn) write_prefix(w, p);
    w.patch_u16(withdrawn_len_at,
                static_cast<std::uint16_t>(w.size() - withdrawn_len_at - 2));
    // Path attributes.
    std::size_t attrs_len_at = w.size();
    w.u16(0);
    if (update.has_nlri()) {
      w.u8(kAttrFlagsTransitive);
      w.u8(kAttrOrigin);
      w.u8(1);
      w.u8(0);  // IGP
      w.u8(kAttrFlagsTransitive);
      w.u8(kAttrAsPath);
      w.u8(static_cast<std::uint8_t>(
          update.as_path.empty() ? 0 : 2 + 4 * update.as_path.size()));
      if (!update.as_path.empty()) {
        w.u8(kAsSequence);
        w.u8(static_cast<std::uint8_t>(update.as_path.size()));
        for (std::uint32_t asn : update.as_path) w.u32(asn);
      }
      w.u8(kAttrFlagsTransitive);
      w.u8(kAttrNextHop);
      w.u8(4);
      w.u32(update.next_hop.value());
    }
    w.patch_u16(attrs_len_at,
                static_cast<std::uint16_t>(w.size() - attrs_len_at - 2));
    for (const auto& p : update.nlri) write_prefix(w, p);
  }

  auto out = w.take();
  out[16] = static_cast<std::uint8_t>(out.size() >> 8);
  out[17] = static_cast<std::uint8_t>(out.size() & 0xff);
  return out;
}

std::optional<BgpMessage> MessageReader::next() {
  if (buffer_.size() < kHeaderSize) return std::nullopt;
  std::size_t length = (static_cast<std::size_t>(buffer_[16]) << 8) | buffer_[17];
  if (length < kHeaderSize || length > 4096) {
    throw util::CodecError("BGP: bad message length");
  }
  if (buffer_.size() < length) return std::nullopt;

  util::BufReader r(std::span<const std::uint8_t>(buffer_.data(), length));
  for (int i = 0; i < 16; ++i) {
    if (r.u8() != 0xff) throw util::CodecError("BGP: bad marker");
  }
  r.u16();  // length (validated above)
  auto type = static_cast<MessageType>(r.u8());

  BgpMessage msg = KeepaliveMessage{};
  switch (type) {
    case MessageType::kKeepalive:
      break;
    case MessageType::kOpen: {
      OpenMessage open;
      if (r.u8() != 4) throw util::CodecError("BGP: bad version");
      open.asn = r.u16();
      open.hold_time_s = r.u16();
      open.bgp_id = r.u32();
      std::uint8_t opt_len = r.u8();
      r.skip(opt_len);
      msg = open;
      break;
    }
    case MessageType::kNotification: {
      NotificationMessage notif;
      notif.code = r.u8();
      notif.subcode = r.u8();
      msg = notif;
      break;
    }
    case MessageType::kUpdate: {
      UpdateMessage update;
      std::uint16_t withdrawn_len = r.u16();
      std::size_t withdrawn_end = r.position() + withdrawn_len;
      while (r.position() < withdrawn_end) {
        update.withdrawn.push_back(read_prefix(r));
      }
      std::uint16_t attrs_len = r.u16();
      std::size_t attrs_end = r.position() + attrs_len;
      while (r.position() < attrs_end) {
        std::uint8_t flags = r.u8();
        (void)flags;
        std::uint8_t attr_type = r.u8();
        std::uint8_t attr_len = r.u8();
        switch (attr_type) {
          case kAttrOrigin:
            r.skip(attr_len);
            break;
          case kAttrAsPath: {
            std::size_t end = r.position() + attr_len;
            if (attr_len > 0) {
              r.u8();  // segment type (AS_SEQUENCE)
              std::uint8_t count = r.u8();
              for (int i = 0; i < count; ++i) update.as_path.push_back(r.u32());
            }
            if (r.position() != end) throw util::CodecError("BGP: AS_PATH");
            break;
          }
          case kAttrNextHop:
            update.next_hop = ip::Ipv4Addr(r.u32());
            break;
          default:
            r.skip(attr_len);
        }
      }
      while (r.remaining() > 0) update.nlri.push_back(read_prefix(r));
      msg = update;
      break;
    }
    default:
      throw util::CodecError("BGP: unknown message type");
  }

  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(length));
  return msg;
}

}  // namespace mrmtp::bgp
