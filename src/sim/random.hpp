// Deterministic PRNG (xoshiro256**) seeded via SplitMix64.
//
// Every source of randomness in the simulator draws from an explicitly seeded
// Rng so experiment runs are reproducible; the harness averages over seeds
// the way the paper averages over testbed runs.
#pragma once

#include <array>
#include <cstdint>

namespace mrmtp::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Modulo reduction; bias is < bound/2^64,
  /// negligible for simulation bounds (ports, jitter windows).
  std::uint64_t below(std::uint64_t bound) {
    if (bound <= 1) return 0;
    return next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Derives an independent stream (e.g. per-node or per-link RNGs).
  Rng fork() { return Rng(next() ^ 0xa5a5a5a55a5a5a5aull); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mrmtp::sim
