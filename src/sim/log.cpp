#include "sim/log.hpp"

#include <cstdio>

namespace mrmtp::sim {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Logger::log(Time at, LogLevel level, std::string_view component,
                 std::string message) {
  if (!enabled(level)) return;
  LogRecord rec{at, level, std::string(component), std::move(message)};
  if (sink_) sink_(rec);
  if (capturing_) records_.push_back(std::move(rec));
}

Logger::Sink Logger::stdout_sink() {
  return [](const LogRecord& rec) {
    std::printf("[%s] %-5s %-14s %s\n", rec.at.str().c_str(),
                std::string(to_string(rec.level)).c_str(),
                rec.component.c_str(), rec.message.c_str());
  };
}

}  // namespace mrmtp::sim
