#include "sim/time.hpp"

#include <cstdio>
#include <cstdlib>

namespace mrmtp::sim {

std::string Duration::str() const {
  char buf[48];
  std::int64_t a = ns_ < 0 ? -ns_ : ns_;
  if (a < 1000) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns_));
  } else if (a < 1000000) {
    std::snprintf(buf, sizeof(buf), "%.3gus", to_micros());
  } else if (a < 1000000000) {
    std::snprintf(buf, sizeof(buf), "%.4gms", to_millis());
  } else {
    std::snprintf(buf, sizeof(buf), "%.6gs", to_seconds());
  }
  return buf;
}

std::string Time::str() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%lld.%06llds", static_cast<long long>(ns_ / 1000000000),
                static_cast<long long>((ns_ % 1000000000) / 1000));
  return buf;
}

}  // namespace mrmtp::sim
