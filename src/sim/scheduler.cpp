#include "sim/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace mrmtp::sim {

namespace {
/// Below this heap size compaction is never worth the rebuild.
constexpr std::size_t kCompactFloor = 64;
/// Compact once stale entries outnumber live callbacks this many times over.
constexpr std::size_t kCompactRatio = 4;
}  // namespace

void Scheduler::push_entry(Entry e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
  heap_high_water_ = std::max(heap_high_water_, heap_.size());
}

void Scheduler::pop_entry() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
  heap_.pop_back();
}

void Scheduler::compact() {
  heap_.clear();
  heap_.reserve(callbacks_.size());
  for (const auto& [seq, pending] : callbacks_) {
    heap_.push_back(Entry{pending.at, seq});
  }
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>());
  ++compactions_;
}

void Scheduler::maybe_compact() {
  if (heap_.size() < kCompactFloor ||
      heap_.size() <= kCompactRatio * callbacks_.size()) {
    return;
  }
  compact();
}

EventId Scheduler::schedule_at(Time at, Callback fn) {
  if (at < now_) {
    throw std::logic_error("Scheduler: schedule_at in the past (at=" +
                           at.str() + " now=" + now_.str() + ")");
  }
  std::uint64_t seq = next_seq_++;
  push_entry(Entry{at, seq});
  callbacks_.emplace(seq, Pending{at, std::move(fn)});
  return EventId{seq};
}

EventId Scheduler::schedule_after(Duration delay, Callback fn) {
  if (delay < Duration{}) delay = Duration{};
  return schedule_at(now_ + delay, std::move(fn));
}

void Scheduler::cancel(EventId id) {
  if (!id.valid()) return;
  if (callbacks_.erase(id.seq) > 0) maybe_compact();
}

bool Scheduler::reschedule(EventId id, Time at) {
  if (!id.valid()) return false;
  auto it = callbacks_.find(id.seq);
  if (it == callbacks_.end()) return false;
  if (at < now_) at = now_;
  ++reschedules_;
  bool earlier = at < it->second.at;
  it->second.at = at;
  if (earlier) {
    // Moving earlier: the existing heap entry would pop too late, so plant a
    // new one at the new deadline (the old entry dies lazily). If that extra
    // entry would breach the compaction bound, rebuild instead — the rebuild
    // already plants every live deadline, this one included.
    if (heap_.size() + 1 >= kCompactFloor &&
        heap_.size() + 1 > kCompactRatio * callbacks_.size()) {
      compact();
    } else {
      push_entry(Entry{at, id.seq});
    }
  }
  // Moving later is free: the stale earlier entry re-pushes itself on pop.
  return true;
}

std::optional<Time> Scheduler::next_time() {
  while (!heap_.empty()) {
    Entry e = heap_.front();
    auto it = callbacks_.find(e.seq);
    if (it == callbacks_.end()) {
      pop_entry();  // cancelled; discard lazily
      continue;
    }
    if (it->second.at != e.at) {
      pop_entry();
      push_entry(Entry{it->second.at, e.seq});
      continue;
    }
    return e.at;
  }
  return std::nullopt;
}

bool Scheduler::step() {
  while (!heap_.empty()) {
    Entry e = heap_.front();
    auto it = callbacks_.find(e.seq);
    if (it == callbacks_.end()) {
      pop_entry();  // cancelled; discard lazily
      continue;
    }
    if (it->second.at != e.at) {
      // Deadline was bumped later after this entry was pushed; chase it.
      pop_entry();
      push_entry(Entry{it->second.at, e.seq});
      continue;
    }
    pop_entry();
    Callback fn = std::move(it->second.fn);
    callbacks_.erase(it);
    now_ = e.at;
    ++fired_;
    fn();
    return true;
  }
  return false;
}

void Scheduler::run_until(Time deadline) {
  while (!heap_.empty()) {
    // Skip cancelled/superseded heads without advancing time.
    Entry e = heap_.front();
    auto it = callbacks_.find(e.seq);
    if (it == callbacks_.end()) {
      pop_entry();
      continue;
    }
    if (it->second.at != e.at) {
      pop_entry();
      push_entry(Entry{it->second.at, e.seq});
      continue;
    }
    if (e.at > deadline) break;
    pop_entry();
    Callback fn = std::move(it->second.fn);
    callbacks_.erase(it);
    now_ = e.at;
    ++fired_;
    fn();
  }
  if (deadline > now_) now_ = deadline;
}

bool Scheduler::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (step()) {
    if (++n >= max_events) return false;
  }
  return true;
}

}  // namespace mrmtp::sim
