#include "sim/scheduler.hpp"

#include <stdexcept>

namespace mrmtp::sim {

EventId Scheduler::schedule_at(Time at, Callback fn) {
  if (at < now_) {
    throw std::logic_error("Scheduler: schedule_at in the past (at=" +
                           at.str() + " now=" + now_.str() + ")");
  }
  std::uint64_t seq = next_seq_++;
  queue_.push(Entry{at, seq});
  callbacks_.emplace(seq, std::move(fn));
  return EventId{seq};
}

EventId Scheduler::schedule_after(Duration delay, Callback fn) {
  if (delay < Duration{}) delay = Duration{};
  return schedule_at(now_ + delay, std::move(fn));
}

void Scheduler::cancel(EventId id) {
  if (id.valid()) callbacks_.erase(id.seq);
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    auto it = callbacks_.find(e.seq);
    if (it == callbacks_.end()) {
      queue_.pop();  // cancelled; discard lazily
      continue;
    }
    queue_.pop();
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = e.at;
    ++fired_;
    fn();
    return true;
  }
  return false;
}

void Scheduler::run_until(Time deadline) {
  while (!queue_.empty()) {
    // Skip cancelled heads without advancing time.
    Entry e = queue_.top();
    auto it = callbacks_.find(e.seq);
    if (it == callbacks_.end()) {
      queue_.pop();
      continue;
    }
    if (e.at > deadline) break;
    queue_.pop();
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = e.at;
    ++fired_;
    fn();
  }
  if (deadline > now_) now_ = deadline;
}

bool Scheduler::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (step()) {
    if (++n >= max_events) return false;
  }
  return true;
}

}  // namespace mrmtp::sim
