#include "sim/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace mrmtp::sim {

namespace {
/// Below this entry count compaction is never worth the rebuild.
constexpr std::size_t kCompactFloor = 64;
/// Compact once stale entries outnumber live events this many times over.
constexpr std::size_t kCompactRatio = 4;
/// Day-array size limits (powers of two). The lower bound keeps tiny queues
/// cheap to rebuild; the upper bound caps the array at ~1 MiB of headers.
constexpr std::size_t kMinBuckets = 64;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 17;
/// Grow the day array once live events pack this many per bucket on average.
constexpr std::size_t kGrowPerBucket = 8;
/// Bucket width = 2^shift ns, clamped to [1 ns, ~1 s].
constexpr int kMaxWidthShift = 30;

struct EntryAfter {
  template <typename E>
  bool operator()(const E& a, const E& b) const {
    return a.after(b);
  }
};
}  // namespace

Scheduler::Scheduler() {
  buckets_.assign(kMinBuckets, {});
  mask_ = kMinBuckets - 1;
  cur_vday_ = 0;
  day_end_vday_ = static_cast<std::int64_t>(kMinBuckets);
}

Scheduler::Slot* Scheduler::slot_of(EventId id) {
  if (!id.valid()) return nullptr;
  std::uint32_t idx = static_cast<std::uint32_t>(id.seq & 0xffffffffu) - 1;
  if (idx >= slots_.size()) return nullptr;
  Slot& s = slots_[idx];
  if (!s.live || s.gen != static_cast<std::uint32_t>(id.seq >> 32)) {
    return nullptr;
  }
  return &s;
}

std::uint32_t Scheduler::alloc_slot() {
  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  return idx;
}

void Scheduler::free_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.live = false;
  s.fn = nullptr;
  ++s.gen;  // invalidates outstanding EventIds and entry hints
  free_.push_back(idx);
  --live_;
}

void Scheduler::insert_entry(Entry e) {
  std::int64_t v = vday(e.at_ns);
  if (v >= day_end_vday_) {
    overflow_.push_back(e);
  } else {
    if (v < cur_vday_) cur_vday_ = v;  // wind the scan cursor back
    auto& bucket = buckets_[static_cast<std::size_t>(v) & mask_];
    bucket.push_back(e);
    std::push_heap(bucket.begin(), bucket.end(), EntryAfter{});
  }
  ++entries_;
  queue_high_water_ = std::max(queue_high_water_, entries_);
}

void Scheduler::compact() {
  ++compactions_;
  for (auto& b : buckets_) b.clear();
  overflow_.clear();
  entries_ = 0;

  if (live_ == 0) {
    if (buckets_.size() != kMinBuckets) buckets_.assign(kMinBuckets, {});
    mask_ = buckets_.size() - 1;
    width_shift_ = 12;
    cur_vday_ = vday(now_.ns());
    day_end_vday_ = cur_vday_ + static_cast<std::int64_t>(buckets_.size());
    return;
  }

  std::int64_t min_ns = INT64_MAX;
  std::int64_t max_ns = INT64_MIN;
  std::size_t live_seen = 0;
  for (const Slot& s : slots_) {
    if (!s.live) continue;
    ++live_seen;
    min_ns = std::min(min_ns, s.at.ns());
    max_ns = std::max(max_ns, s.at.ns());
  }
  (void)live_seen;

  // One live event per bucket on average, within the size limits; bucket
  // width tracks the mean spacing so the day window covers the whole spread
  // when it fits, and the overflow ladder takes the far tail when not.
  std::size_t nb = kMinBuckets;
  while (nb < live_ && nb < kMaxBuckets) nb <<= 1;
  std::int64_t spacing =
      (max_ns - min_ns) / static_cast<std::int64_t>(live_) + 1;
  width_shift_ = 0;
  while ((std::int64_t{1} << width_shift_) < spacing &&
         width_shift_ < kMaxWidthShift) {
    ++width_shift_;
  }
  if (buckets_.size() != nb) buckets_.assign(nb, {});
  mask_ = nb - 1;
  cur_vday_ = vday(min_ns);
  day_end_vday_ = cur_vday_ + static_cast<std::int64_t>(nb);

  for (std::uint32_t idx = 0; idx < slots_.size(); ++idx) {
    const Slot& s = slots_[idx];
    if (!s.live) continue;
    insert_entry(Entry{s.at.ns(), s.order, s.fifo, idx, s.gen});
  }
}

void Scheduler::maybe_compact() {
  if (entries_ < kCompactFloor || entries_ <= kCompactRatio * live_) return;
  compact();
}

EventId Scheduler::schedule_at_ordered(Time at, std::uint64_t order,
                                       Callback fn) {
  if (at < now_) {
    throw std::logic_error("Scheduler: schedule_at in the past (at=" +
                           at.str() + " now=" + now_.str() + ")");
  }
  std::uint32_t idx = alloc_slot();
  Slot& s = slots_[idx];
  s.at = at;
  s.order = order;
  s.fifo = next_fifo_++;
  s.fn = std::move(fn);
  s.live = true;
  ++live_;
  insert_entry(Entry{at.ns(), s.order, s.fifo, idx, s.gen});
  // Keep buckets at O(1) occupancy as the queue grows; the rebuild re-sizes
  // the day array (amortized O(1) per insert across each doubling).
  if (live_ > buckets_.size() * kGrowPerBucket && buckets_.size() < kMaxBuckets) {
    compact();
  }
  return EventId{(static_cast<std::uint64_t>(s.gen) << 32) | (idx + 1)};
}

EventId Scheduler::schedule_after(Duration delay, Callback fn) {
  if (delay < Duration{}) delay = Duration{};
  return schedule_at(now_ + delay, std::move(fn));
}

void Scheduler::cancel(EventId id) {
  Slot* s = slot_of(id);
  if (s == nullptr) return;
  free_slot(static_cast<std::uint32_t>((id.seq & 0xffffffffu) - 1));
  maybe_compact();
}

bool Scheduler::reschedule(EventId id, Time at) {
  Slot* s = slot_of(id);
  if (s == nullptr) return false;
  if (at < now_) at = now_;
  ++reschedules_;
  bool earlier = at < s->at;
  s->at = at;
  if (earlier) {
    // Moving earlier: the existing entry would pop too late, so plant a new
    // hint at the new deadline (the old one dies lazily). If that extra
    // entry would breach the compaction bound, rebuild instead — the rebuild
    // already plants every live deadline, this one included.
    if (entries_ + 1 >= kCompactFloor &&
        entries_ + 1 > kCompactRatio * live_) {
      compact();
    } else {
      std::uint32_t idx = static_cast<std::uint32_t>((id.seq & 0xffffffffu) - 1);
      insert_entry(Entry{at.ns(), s->order, s->fifo, idx, s->gen});
    }
  }
  // Moving later is free: the stale earlier entry chases the slot on pop.
  return true;
}

bool Scheduler::peek(Entry& out) {
  for (;;) {
    if (live_ == 0) return false;
    // Forward scan: at most one full lap over the day array.
    for (std::size_t steps = 0; steps <= mask_; ++steps) {
      auto& bucket = buckets_[static_cast<std::size_t>(cur_vday_) & mask_];
      bool chased = false;
      while (!bucket.empty()) {
        const Entry& top = bucket.front();
        if (vday(top.at_ns) > cur_vday_) break;  // future wrap; not yet due
        const Slot& s = slots_[top.slot];
        if (!s.live || s.gen != top.gen) {
          // Cancelled (or recycled); discard lazily.
          std::pop_heap(bucket.begin(), bucket.end(), EntryAfter{});
          bucket.pop_back();
          --entries_;
          continue;
        }
        if (s.at.ns() != top.at_ns) {
          // Deadline was bumped after this hint was planted; chase it. The
          // re-insert may wind the cursor or land in overflow, so restart.
          Entry fresh{s.at.ns(), s.order, s.fifo, top.slot, top.gen};
          std::pop_heap(bucket.begin(), bucket.end(), EntryAfter{});
          bucket.pop_back();
          --entries_;
          insert_entry(fresh);
          chased = true;
          break;
        }
        out = top;
        return true;
      }
      if (chased) break;  // restart the scan from the (possibly moved) cursor
      ++cur_vday_;
    }
    if (live_ > 0 && entries_ == 0) {
      throw std::logic_error("Scheduler: live events but no queue entries");
    }
    // A dry lap: every due entry was stale or everything pending sits beyond
    // the day horizon. Re-seed the calendar around the new earliest deadline.
    if (entries_ > 0) compact();
  }
}

void Scheduler::pop_top(const Entry& e) {
  auto& bucket = buckets_[static_cast<std::size_t>(vday(e.at_ns)) & mask_];
  std::pop_heap(bucket.begin(), bucket.end(), EntryAfter{});
  bucket.pop_back();
  --entries_;
}

std::optional<Time> Scheduler::next_time() {
  Entry e;
  if (!peek(e)) return std::nullopt;
  return Time::from_ns(e.at_ns);
}

bool Scheduler::step() {
  Entry e;
  if (!peek(e)) return false;
  pop_top(e);
  Slot& s = slots_[e.slot];
  Callback fn = std::move(s.fn);
  free_slot(e.slot);
  now_ = Time::from_ns(e.at_ns);
  ++fired_;
  fn();
  return true;
}

void Scheduler::run_until(Time deadline) {
  Entry e;
  while (peek(e)) {
    if (e.at_ns > deadline.ns()) break;
    pop_top(e);
    Slot& s = slots_[e.slot];
    Callback fn = std::move(s.fn);
    free_slot(e.slot);
    now_ = Time::from_ns(e.at_ns);
    ++fired_;
    fn();
  }
  if (deadline > now_) now_ = deadline;
}

bool Scheduler::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (step()) {
    if (++n >= max_events) return false;
  }
  return true;
}

}  // namespace mrmtp::sim
