// Sharded conservative parallel discrete-event engine (PDES).
//
// The folded-Clos fabric partitions naturally by PoD: every frame that
// crosses a shard boundary rides a link with a propagation delay of at least
// `lookahead`, so a shard can safely execute every event strictly earlier
// than (global earliest pending event + lookahead) without ever receiving a
// message into its past. The engine runs one sim::Scheduler per shard on its
// own thread and synchronizes with a barrier-window protocol:
//
//   repeat:
//     (quiescent) each shard drains its inbound mailboxes, sorted by
//         (arrival time, order key) — the determinism tie-break — and
//         publishes its earliest pending event time
//     barrier: one thread folds the published times into the global minimum
//         m and the next safe horizon W = min(m + lookahead, deadline)
//     each shard fires its events with time < W in parallel
//     barrier
//
// Frame deliveries travel through bounded SPSC mailboxes, one per directed
// shard pair: only the source shard's thread posts, and only the destination
// shard drains — at window boundaries, while every producer is parked at the
// barrier. A post whose timestamp lands inside the window being executed
// would be a causality violation; the bus throws instead of corrupting the
// run (it means the configured lookahead overstates the real minimum link
// delay).
//
// Determinism. Same-instant arrivals at one router are a real tie: whichever
// runs first can change an ECMP choice or a dead declaration. A sharded run
// therefore makes the tie-break a pure function of the blueprint, never of
// thread timing or sharding:
//
//   * EVERY link delivery — same-shard ones included — rides the bus and is
//     drained in (arrival time, order key) order, where the order key is
//     (sender node id, sender port, per-direction sequence). The lookahead
//     is correspondingly the minimum delay over ALL links, so a window can
//     never out-run a same-shard delivery either.
//   * A single-shard engine executes the very same window loop inline on
//     the calling thread: drain boundaries — and hence every frame-vs-timer
//     interleaving — are identical at any shard count, because the window
//     sequence is derived from the global event-time minimum, a property of
//     the simulation rather than of its partitioning.
//   * Every random decision draws from a per-entity stream (see
//     net::Link::use_stream_rng and the sharded harness::Deployment), so
//     each draw depends only on that entity's own event order.
//
// The sequential engine (no ShardBus wired into the SimContext) is entirely
// untouched: links schedule deliveries directly and behavior stays
// bit-identical to prior releases.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace mrmtp::sim {

/// One event in flight between shards.
struct CrossEvent {
  Time at;
  /// Sharding-invariant tie-break for same-instant arrivals: posters derive
  /// it from stable identity + send order (links use
  /// (node id << 48) | (port << 32) | tx sequence).
  std::uint64_t order = 0;
  std::uint64_t seq = 0;  // per-channel arrival order, the final fallback
  std::function<void()> fn;
};

/// Mailboxes for every directed shard pair. post() is called by the source
/// shard's thread mid-window; drain() by the destination's thread while all
/// producers are parked at the barrier, so each channel is single-producer /
/// single-consumer with a mutex only guarding the post/drain edge.
class ShardBus {
 public:
  /// Hard per-channel bound; a fabric window can never legitimately buffer
  /// this many frames, so hitting it means a runaway loop, not load.
  static constexpr std::size_t kChannelCap = 1u << 20;

  explicit ShardBus(std::uint32_t shards);

  /// Queues `fn` to run on shard `dst` at simulated time `at`. Throws if
  /// `at` precedes the window currently being executed (lookahead violation)
  /// or the channel overflows. `order` breaks same-instant ties in drain and
  /// must be derived from sharding-invariant identity (see CrossEvent).
  void post(std::uint32_t src, std::uint32_t dst, Time at,
            std::uint64_t order, std::function<void()> fn);

  /// Moves every pending event bound for `dst` into its scheduler, ordered
  /// by (at, order). Caller must guarantee quiescence (barrier). Returns the
  /// number of events delivered.
  std::size_t drain(std::uint32_t dst, Scheduler& into);

  /// Earliest pending arrival bound for `dst` (quiescent callers only).
  [[nodiscard]] std::optional<Time> pending_min(std::uint32_t dst);

  [[nodiscard]] std::uint64_t posted() const {
    return posted_.load(std::memory_order_relaxed);
  }
  /// Posts whose source and destination shard differ (true cross-thread
  /// traffic; the rest only ride the bus for the deterministic tie-break).
  [[nodiscard]] std::uint64_t cross_posted() const {
    return cross_posted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t channel_high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint32_t shards() const { return shards_; }

  /// The lower bound below which a post is a causality violation; the engine
  /// advances it to each window's end before releasing the shard threads.
  void set_safe_floor(Time at) {
    safe_floor_ns_.store(at.ns(), std::memory_order_relaxed);
  }

 private:
  struct Channel {
    std::mutex mu;
    std::uint64_t next_seq = 0;
    std::vector<CrossEvent> q;
  };

  Channel& channel(std::uint32_t src, std::uint32_t dst) {
    return channels_[src * shards_ + dst];
  }

  std::uint32_t shards_;
  std::vector<Channel> channels_;
  std::atomic<std::uint64_t> posted_{0};
  std::atomic<std::uint64_t> cross_posted_{0};
  std::atomic<std::size_t> high_water_{0};
  std::atomic<std::int64_t> safe_floor_ns_{0};
};

/// Orchestrates N shard schedulers. Construct once per simulation; callers
/// may invoke run_until repeatedly with increasing deadlines (the harness
/// pauses at the failure instant to snapshot fabric-wide state without
/// racing the shard threads).
class ShardedEngine {
 public:
  struct Options {
    /// Minimum propagation delay over every link (all deliveries ride the
    /// bus, see the file comment). The safety of the whole protocol rests
    /// on this bound; the sharded Deployment computes it from the wired
    /// topology instead of trusting a default.
    Duration lookahead = Duration::micros(5);
  };

  /// Merged synchronization counters (stable after run_until returns).
  struct Stats {
    std::uint64_t windows = 0;         // barrier windows executed
    std::uint64_t horizon_stalls = 0;  // shard-windows with nothing to fire
    std::uint64_t cross_events = 0;    // posts that crossed shard threads
    std::uint64_t mailbox_high_water = 0;
  };

  ShardedEngine(std::vector<Scheduler*> shards, Options options);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] ShardBus& bus() { return bus_; }
  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Runs every shard until `deadline` (inclusive, like Scheduler::run_until)
  /// and advances all shard clocks to it. Spawns one thread per shard for
  /// the duration of the call; a single-shard engine runs the same window
  /// loop inline on the calling thread (identical drain boundaries are part
  /// of the determinism contract).
  void run_until(Time deadline);

 private:
  enum class Phase : std::uint8_t { kWindow, kFinal };

  struct PlanStep;   // barrier completion step; defined in parallel.cpp
  struct SyncState;  // per-run barrier pair; defined in parallel.cpp

  /// Barrier completion step: folds published minima into the next window.
  void plan_window(Time deadline);
  void shard_loop(std::uint32_t s, Time deadline, SyncState& sync);
  void run_single(Time deadline);

  std::vector<Scheduler*> shards_;
  Options options_;
  ShardBus bus_;
  Stats stats_;

  // Window state shared across shard threads. local_min_ slots are each
  // written by exactly one thread between barriers; phase_/window_end_ are
  // written only inside barrier completion (all threads parked) and read
  // between barriers. Per-shard counter slots likewise have one writer and
  // are merged into stats_ after the threads join.
  std::vector<std::optional<Time>> local_min_;
  Phase phase_ = Phase::kWindow;
  Time window_end_{};
  std::vector<std::uint64_t> shard_stalls_;
};

}  // namespace mrmtp::sim
