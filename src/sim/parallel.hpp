// Sharded conservative parallel discrete-event engine (PDES).
//
// The folded-Clos fabric partitions naturally by PoD: every frame that
// crosses a shard boundary rides a link with a known minimum propagation
// delay, so a shard can safely execute every event strictly earlier than the
// earliest possible future arrival. The engine runs one sim::Scheduler per
// shard on its own thread, and unlike a classic YAWNS barrier-window loop it
// synchronizes *asynchronously*:
//
//   * Each shard publishes its earliest pending event time m_i in an atomic
//     slot, and the bus tracks a per-destination inbox minimum for events
//     posted but not yet drained. Together (under one sync mutex) they cover
//     every pending event in the system at every instant: an event is in
//     some scheduler (>= that shard's published minimum) or in some mailbox
//     (>= that destination's inbox minimum). Without the inbox term a poster
//     could publish a new, higher minimum while its post still sits
//     undrained — invisible to every horizon — and a downstream shard would
//     raise its floor above an arrival that still chains through it.
//   * The per-directed-pair lookahead matrix la(i,j) — minimum delay over
//     the actual inter-shard links, not the global minimum over all links —
//     is closed transitively (Floyd-Warshall, diagonal included) at engine
//     construction. The closure makes m_i + la*(i,j) a true lower bound on
//     any arrival into j caused by shard i's pending work, even through
//     multi-hop chains i -> k -> j and round trips j -> k -> j.
//   * A shard's execution horizon is W_j = min_i (m_i + la*(i,j)). It
//     executes events strictly below W_j without any rendezvous, re-reading
//     the published minima and extending the horizon as neighbors advance.
//     Barriers exist ONLY for termination detection: when a shard believes
//     every published minimum has cleared the deadline, it parks; once all
//     shards park, one collective drain confirms no sub-deadline arrival is
//     still in flight (or loops back if one is), then everyone finishes
//     inclusively. A chaos run that took ~21k barrier windows under the
//     global-lookahead engine needs a handful of detection rounds here.
//
// Frame deliveries that truly cross shards travel through bounded SPSC
// mailboxes, one per directed shard pair; same-shard deliveries go straight
// into the destination scheduler (see net::Link::schedule_delivery). A post
// below the destination's published horizon would be a causality violation;
// the bus throws instead of corrupting the run.
//
// Determinism. Same-instant arrivals at one router are a real tie: whichever
// runs first can change an ECMP choice or a dead declaration. A sharded run
// therefore makes the tie-break a pure function of the blueprint, never of
// thread timing, sharding, or drain boundaries:
//
//   * Every link delivery is scheduled with Scheduler::schedule_at_ordered
//     under a key derived from stable identity + send order
//     ((node id << 48) | (port << 32) | tx sequence). The scheduler pops
//     (time, key, local insertion) — so the execution order at one router is
//     a pure function of arrival times and keys. WHEN a mailbox is drained
//     stops mattering: drains only affect local insertion order, which only
//     breaks ties between events with equal (time, key), and distinct
//     senders/ports/frames always carry distinct keys. This is what frees
//     the engine from lock-step windows entirely.
//   * Every random decision draws from a per-entity stream (see
//     net::Link::use_stream_rng and the sharded harness::Deployment), so
//     each draw depends only on that entity's own event order.
//   * A single-shard engine is plain Scheduler::run_until — by the argument
//     above it produces the same per-router event sequences as any N-shard
//     partitioning of the same blueprint.
//
// The sequential engine (no ShardBus wired into the SimContext) is entirely
// untouched: links schedule deliveries directly with plain schedule_at and
// behavior stays bit-identical to prior releases.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace mrmtp::sim {

/// One event in flight between shards.
struct CrossEvent {
  Time at;
  /// Sharding-invariant tie-break for same-instant arrivals: posters derive
  /// it from stable identity + send order (links use
  /// (node id << 48) | (port << 32) | tx sequence).
  std::uint64_t order = 0;
  std::uint64_t seq = 0;  // per-channel arrival order, the final fallback
  std::function<void()> fn;
};

/// Mailboxes for every directed shard pair. post() is called by the source
/// shard's thread mid-execution; drain() by the destination's thread. Each
/// channel is single-producer / single-consumer with a mutex guarding the
/// post/drain edge.
class ShardBus {
 public:
  /// Hard per-channel bound; a fabric horizon can never legitimately buffer
  /// this many frames, so hitting it means a runaway loop, not load.
  static constexpr std::size_t kChannelCap = 1u << 20;

  explicit ShardBus(std::uint32_t shards);

  /// Queues `fn` to run on shard `dst` at simulated time `at`. Throws if
  /// `at` precedes `dst`'s published safe horizon (lookahead violation) or
  /// the channel overflows. `order` breaks same-instant ties and must be
  /// derived from sharding-invariant identity (see CrossEvent).
  void post(std::uint32_t src, std::uint32_t dst, Time at,
            std::uint64_t order, std::function<void()> fn);

  /// Moves every pending event bound for `dst` into its scheduler via
  /// schedule_at_ordered. Returns the number of events delivered.
  std::size_t drain(std::uint32_t dst, Scheduler& into);

  /// Serializes posts, drains, and horizon reads: every transfer of an
  /// event's "cover" (inbox minimum <-> published scheduler minimum) must be
  /// atomic with the event's movement, or a concurrently computed horizon
  /// can miss the event entirely.
  [[nodiscard]] std::mutex& sync_mu() { return sync_mu_; }
  /// drain() body; caller holds sync_mu() (the engine pairs it with the
  /// destination's published-minimum update in one critical section).
  std::size_t drain_locked(std::uint32_t dst, Scheduler& into);
  /// Earliest posted-but-undrained arrival for `dst` in ns (kNoneNs when
  /// empty); caller holds sync_mu().
  [[nodiscard]] std::int64_t inbox_min_ns(std::uint32_t dst) const {
    return inbox_min_ns_[dst];
  }
  static constexpr std::int64_t kNoneNs = INT64_MAX;

  /// Earliest pending arrival bound for `dst`.
  [[nodiscard]] std::optional<Time> pending_min(std::uint32_t dst);

  [[nodiscard]] std::uint64_t posted() const {
    return posted_.load(std::memory_order_relaxed);
  }
  /// Posts whose source and destination shard differ. Since same-shard
  /// deliveries bypass the bus entirely, this equals posted() in sharded
  /// runs; both are kept so the bench can verify that.
  [[nodiscard]] std::uint64_t cross_posted() const {
    return cross_posted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t channel_high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint32_t shards() const { return shards_; }

  /// The lower bound below which a post into `dst` is a causality
  /// violation; the engine advances it to each shard's horizon before that
  /// shard executes.
  void set_safe_floor(std::uint32_t dst, Time at) {
    floors_[dst].store(at.ns(), std::memory_order_release);
  }
  /// Sets every destination's floor at once (run boundaries, tests).
  void set_safe_floor(Time at) {
    for (std::uint32_t d = 0; d < shards_; ++d) set_safe_floor(d, at);
  }

 private:
  struct Channel {
    std::mutex mu;
    std::uint64_t next_seq = 0;
    std::vector<CrossEvent> q;
  };

  Channel& channel(std::uint32_t src, std::uint32_t dst) {
    return channels_[src * shards_ + dst];
  }

  std::uint32_t shards_;
  std::vector<Channel> channels_;
  std::mutex sync_mu_;
  /// Per destination: min arrival time over all posted-but-undrained events
  /// (kNoneNs when every inbound channel is empty). Guarded by sync_mu_.
  std::vector<std::int64_t> inbox_min_ns_;
  std::unique_ptr<std::atomic<std::int64_t>[]> floors_;  // per destination
  std::atomic<std::uint64_t> posted_{0};
  std::atomic<std::uint64_t> cross_posted_{0};
  std::atomic<std::size_t> high_water_{0};
};

/// Orchestrates N shard schedulers. Construct once per simulation; callers
/// may invoke run_until repeatedly with increasing deadlines (the harness
/// pauses at the failure instant to snapshot fabric-wide state without
/// racing the shard threads).
class ShardedEngine {
 public:
  struct Options {
    /// Uniform fallback: minimum propagation delay over every inter-shard
    /// link, used for every directed pair when `pair_lookahead` is empty.
    Duration lookahead = Duration::micros(5);
    /// Per-directed-pair minimum link delay, row-major [src * n + dst].
    /// Entries <= 0 mean "no direct links src -> dst" (no constraint; the
    /// engine closes the matrix transitively so multi-hop paths still
    /// bound arrivals). The sharded Deployment computes this from the wired
    /// topology instead of trusting a default.
    std::vector<Duration> pair_lookahead;
  };

  /// Merged synchronization counters (stable after run_until returns).
  struct Stats {
    /// Termination-detection barrier rounds — the only collective
    /// rendezvous the engine performs (the old engine's sync_windows).
    std::uint64_t windows = 0;
    /// Horizon segments executed without any rendezvous: each one would
    /// have cost at least one global barrier window under the old engine.
    std::uint64_t coalesced_windows = 0;
    std::uint64_t horizon_stalls = 0;  // waits for a neighbor to advance
    std::uint64_t cross_events = 0;    // posts that crossed shard threads
    std::uint64_t mailbox_high_water = 0;
  };

  ShardedEngine(std::vector<Scheduler*> shards, Options options);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] ShardBus& bus() { return bus_; }
  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Transitively-closed lookahead for a directed pair; nullopt when no
  /// path of links connects src to dst. Exposed for the bench artifacts.
  [[nodiscard]] std::optional<Duration> pair_lookahead(
      std::uint32_t src, std::uint32_t dst) const;

  /// Runs every shard until `deadline` (inclusive, like Scheduler::run_until)
  /// and advances all shard clocks to it. Spawns one thread per shard for
  /// the duration of the call; a single-shard engine runs inline on the
  /// calling thread.
  void run_until(Time deadline);

 private:
  struct DetectStep;  // barrier completion; defined in parallel.cpp
  struct SyncState;   // per-run barrier pair; defined in parallel.cpp

  static constexpr std::int64_t kNoneNs = INT64_MAX;

  /// min_i (published m_i + la*(i, dst)); kNoneNs when unconstrained.
  [[nodiscard]] std::int64_t horizon_ns(std::uint32_t dst) const;
  void publish_min(std::uint32_t s);
  void shard_loop(std::uint32_t s, Time deadline, SyncState& sync);
  void run_single(Time deadline);

  std::vector<Scheduler*> shards_;
  Options options_;
  ShardBus bus_;
  Stats stats_;

  /// Closed lookahead matrix in ns, row-major [src * n + dst]; kNoneNs for
  /// unreachable pairs. The diagonal holds the minimum round-trip through
  /// other shards — the binding constraint for a shard running alone.
  std::vector<std::int64_t> closure_ns_;

  /// Published per-shard earliest pending event time (kNoneNs = none).
  /// Written only by the owning shard's thread. Horizons computed from
  /// these are true lower bounds on future arrivals via the closure's
  /// triangle inequality (see horizon_ns in parallel.cpp).
  std::unique_ptr<std::atomic<std::int64_t>[]> min_ns_;
  /// Bumped whenever any shard publishes or posts; blocked shards wait on
  /// it instead of spinning on all N minima.
  std::atomic<std::uint64_t> epoch_{0};
  /// Set during termination detection when a shard still holds (or just
  /// drained) sub-deadline work.
  std::atomic<bool> dirty_{false};
  std::atomic<bool> finished_{false};

  // Per-shard counter slots, single writer each, merged after join.
  std::vector<std::uint64_t> shard_stalls_;
  std::vector<std::uint64_t> shard_segments_;
};

}  // namespace mrmtp::sim
