// Discrete-event scheduler.
//
// A binary heap orders events by (time, insertion sequence); ties at the same
// instant fire in insertion order, which makes every run bit-reproducible.
// Cancellation is O(1): callbacks live in a side map keyed by sequence number
// and cancelled entries are skipped lazily when popped.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace mrmtp::sim {

/// Handle for a scheduled event; valid until the event fires or is cancelled.
struct EventId {
  std::uint64_t seq = 0;
  [[nodiscard]] bool valid() const { return seq != 0; }
};

class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time (time of the most recently fired event).
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` at absolute time `at`. `at` must be >= now().
  EventId schedule_at(Time at, Callback fn);

  /// Schedules `fn` after `delay` from now. Negative delays clamp to zero.
  EventId schedule_after(Duration delay, Callback fn);

  /// Cancels a pending event; no-op if already fired or cancelled.
  void cancel(EventId id);

  /// Fires the next event; returns false when the queue is empty.
  bool step();

  /// Runs events with time <= deadline, then advances the clock to deadline.
  void run_until(Time deadline);

  /// Runs until the event queue drains (or `max_events` fires, as a runaway
  /// guard; returns false if the guard tripped).
  bool run(std::uint64_t max_events = UINT64_MAX);

  [[nodiscard]] bool empty() const { return callbacks_.empty(); }
  [[nodiscard]] std::size_t pending() const { return callbacks_.size(); }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
};

/// Restartable timer built on Scheduler; the workhorse behind every
/// keep-alive, dead, hold, MRAI, and retransmission timer in the protocols.
class Timer {
 public:
  Timer(Scheduler& sched, Scheduler::Callback on_fire)
      : sched_(sched), on_fire_(std::move(on_fire)) {}
  ~Timer() { stop(); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Arms (or re-arms) as a one-shot firing after `d`.
  void start(Duration d) {
    stop();
    periodic_ = false;
    interval_ = d;
    arm();
  }

  /// Arms as a periodic timer with period `d`; fires repeatedly until stop().
  void start_periodic(Duration d) {
    stop();
    periodic_ = true;
    interval_ = d;
    arm();
  }

  /// Re-arms with the last interval (e.g. dead timer reset on keep-alive).
  void restart() {
    stop();
    arm();
  }

  void stop() {
    if (id_.valid()) {
      sched_.cancel(id_);
      id_ = {};
    }
  }

  [[nodiscard]] bool running() const { return id_.valid(); }
  [[nodiscard]] Duration interval() const { return interval_; }

 private:
  void arm() {
    id_ = sched_.schedule_after(interval_, [this] {
      id_ = {};
      if (periodic_) arm();
      on_fire_();
    });
  }

  Scheduler& sched_;
  Scheduler::Callback on_fire_;
  EventId id_{};
  Duration interval_{};
  bool periodic_ = false;
};

}  // namespace mrmtp::sim
