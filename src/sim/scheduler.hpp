// Discrete-event scheduler.
//
// A calendar queue (bucket-rotating day array with an overflow ladder) orders
// events by (time, order key, insertion sequence); plain events carry the
// maximal order key, so same-instant plain events fire in insertion order and
// every run stays bit-reproducible. Keyed events (schedule_at_ordered) let
// the sharded engine break same-instant ties by a sharding-invariant key
// instead of by which scheduler happened to see the insert first.
//
// Layout. Callback state lives in a slab of Slots (freelist-recycled, with a
// generation counter so EventIds stay O(1) to validate); the day array and
// overflow hold lightweight Entry hints:
//   * schedule/pop are O(1) amortized: an event lands in the day bucket
//     `(at >> width_shift) & (buckets - 1)`; pop scans forward from the
//     current virtual day, and bucket width tracks the mean event spacing so
//     a bucket holds O(1) live entries.
//   * Events beyond the day horizon wait in the unsorted overflow ladder;
//     when a forward scan laps the whole day array without a hit the queue
//     re-seeds (one O(pending) rebuild) around the new earliest deadline.
//   * The slab is authoritative for deadlines; entries are hints:
//     cancellation is O(1) (free the slot, the entry dies lazily) and moving
//     a deadline *later* — the keep-alive/dead-timer reset that fires on
//     every data frame — touches only the slot. Moving a deadline *earlier*
//     plants one new entry.
//   * Bounded memory: stale entries are compacted away whenever they
//     outgrow the live events 4:1, so queue_size() stays within
//     max(64, 4 x pending()) no matter how hot the cancel/reschedule churn,
//     and the day array is resized to O(pending) buckets at every rebuild.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/time.hpp"

namespace mrmtp::sim {

/// Handle for a scheduled event; valid until the event fires or is cancelled.
/// Encodes (slot generation << 32 | slot index + 1) into the slab.
struct EventId {
  std::uint64_t seq = 0;
  [[nodiscard]] bool valid() const { return seq != 0; }
};

class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Order key given to plain schedule_at events: keyed events at the same
  /// instant always fire first, then plain events in insertion order.
  static constexpr std::uint64_t kUnordered = UINT64_MAX;

  Scheduler();

  /// Current simulation time (time of the most recently fired event).
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` at absolute time `at`. `at` must be >= now().
  EventId schedule_at(Time at, Callback fn) {
    return schedule_at_ordered(at, kUnordered, std::move(fn));
  }

  /// Schedules `fn` at `at` with an explicit same-instant tie-break key.
  /// Pop order is (time, order, insertion sequence); the sharded engine
  /// derives `order` from blueprint identity (sender node, port, send
  /// sequence) so tie-breaks are invariant under resharding.
  EventId schedule_at_ordered(Time at, std::uint64_t order, Callback fn);

  /// Schedules `fn` after `delay` from now. Negative delays clamp to zero.
  EventId schedule_after(Duration delay, Callback fn);

  /// Cancels a pending event; no-op if already fired or cancelled.
  void cancel(EventId id);

  /// Moves a pending event's deadline to `at` (clamped to now()); returns
  /// false if the event already fired or was cancelled. O(1) when the
  /// deadline moves later — the per-frame keep-alive reset path.
  bool reschedule(EventId id, Time at);

  /// Deadline of the earliest live event, or empty when none is pending.
  /// Lazily discards stale entries, so it is not const; the sharded engine
  /// calls this at every barrier to compute the safe horizons.
  [[nodiscard]] std::optional<Time> next_time();

  /// Fires the next event; returns false when the queue is empty.
  bool step();

  /// Runs events with time <= deadline, then advances the clock to deadline.
  void run_until(Time deadline);

  /// Runs until the event queue drains (or `max_events` fires, as a runaway
  /// guard; returns false if the guard tripped).
  bool run(std::uint64_t max_events = UINT64_MAX);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  /// Live (uncancelled) events.
  [[nodiscard]] std::size_t pending() const { return live_; }
  /// Queue entries across the day array and overflow ladder, including stale
  /// hints awaiting lazy discard/compaction; bounded by max(64, 4 x
  /// pending()) after every public call.
  [[nodiscard]] std::size_t queue_size() const { return entries_; }
  [[nodiscard]] std::size_t queue_high_water() const {
    return queue_high_water_;
  }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }
  [[nodiscard]] std::uint64_t reschedules() const { return reschedules_; }
  [[nodiscard]] std::uint64_t compactions() const { return compactions_; }

 private:
  /// Slab cell: authoritative deadline + callback for one scheduled event.
  /// `gen` advances on every free, invalidating outstanding EventIds and
  /// entry hints in O(1).
  struct Slot {
    Time at;
    std::uint64_t order = kUnordered;
    std::uint64_t fifo = 0;  // insertion sequence, preserved across reschedule
    Callback fn;
    std::uint32_t gen = 1;
    bool live = false;
  };

  /// Queue hint: a (deadline, tie-break) snapshot pointing into the slab.
  /// Stale once the slot was freed or its deadline moved.
  struct Entry {
    std::int64_t at_ns;
    std::uint64_t order;
    std::uint64_t fifo;
    std::uint32_t slot;
    std::uint32_t gen;
    /// Min-queue ordering: (time, order key, insertion sequence).
    [[nodiscard]] bool after(const Entry& o) const {
      if (at_ns != o.at_ns) return at_ns > o.at_ns;
      if (order != o.order) return order > o.order;
      return fifo > o.fifo;
    }
  };

  [[nodiscard]] std::int64_t vday(std::int64_t at_ns) const {
    return at_ns >> width_shift_;
  }
  [[nodiscard]] Slot* slot_of(EventId id);
  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t idx);
  /// Places a hint, winding the scan cursor back for in-day early inserts.
  void insert_entry(Entry e);
  /// Earliest valid entry: (bucket index, position is always the bucket
  /// top). Chases stale hints; returns false when nothing is pending.
  bool peek(Entry& out);
  /// Pops the current bucket top (must be the entry peek returned).
  void pop_top(const Entry& e);
  /// Rebuilds day array + overflow from the live slots, re-sizing the bucket
  /// count and width to the current load (one entry per live event).
  void compact();
  /// Compacts when stale entries dominate (entries > max(64, 4 x pending)).
  void maybe_compact();

  Time now_ = Time::zero();
  std::uint64_t next_fifo_ = 1;
  std::uint64_t fired_ = 0;
  std::uint64_t reschedules_ = 0;
  std::uint64_t compactions_ = 0;
  std::size_t queue_high_water_ = 0;

  // Slab.
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;

  // Calendar: buckets_[v & mask] holds entries of virtual day v as a small
  // binary min-heap; entries at or beyond day_end_vday_ wait in overflow_.
  std::vector<std::vector<Entry>> buckets_;
  std::vector<Entry> overflow_;
  std::size_t entries_ = 0;  // day + overflow, stale included
  int width_shift_ = 12;     // bucket width = 2^shift ns (4.096 us default)
  std::uint64_t mask_ = 0;   // bucket count - 1 (power of two)
  std::int64_t cur_vday_ = 0;      // forward-scan cursor
  std::int64_t day_end_vday_ = 0;  // first vday routed to overflow
};

/// Restartable timer built on Scheduler; the workhorse behind every
/// keep-alive, dead, hold, MRAI, and retransmission timer in the protocols.
/// Re-arming an already-running timer reuses the scheduled event via
/// Scheduler::reschedule, so per-frame resets do not churn the queue.
class Timer {
 public:
  Timer(Scheduler& sched, Scheduler::Callback on_fire)
      : sched_(sched), on_fire_(std::move(on_fire)) {}
  ~Timer() { stop(); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Arms (or re-arms) as a one-shot firing after `d`.
  void start(Duration d) {
    periodic_ = false;
    interval_ = d;
    rearm();
  }

  /// Arms as a periodic timer with period `d`; fires repeatedly until stop().
  void start_periodic(Duration d) {
    periodic_ = true;
    interval_ = d;
    rearm();
  }

  /// Re-arms with the last interval (e.g. dead timer reset on keep-alive).
  void restart() { rearm(); }

  void stop() {
    if (id_.valid()) {
      sched_.cancel(id_);
      id_ = {};
    }
  }

  [[nodiscard]] bool running() const { return id_.valid(); }
  [[nodiscard]] Duration interval() const { return interval_; }

 private:
  void rearm() {
    Duration d = interval_ < Duration{} ? Duration{} : interval_;
    if (id_.valid() && sched_.reschedule(id_, sched_.now() + d)) return;
    id_ = {};
    arm();
  }

  void arm() {
    id_ = sched_.schedule_after(interval_, [this] {
      id_ = {};
      if (periodic_) arm();
      on_fire_();
    });
  }

  Scheduler& sched_;
  Scheduler::Callback on_fire_;
  EventId id_{};
  Duration interval_{};
  bool periodic_ = false;
};

}  // namespace mrmtp::sim
