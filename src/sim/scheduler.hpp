// Discrete-event scheduler.
//
// A binary heap orders events by (time, insertion sequence); ties at the same
// instant fire in insertion order, which makes every run bit-reproducible.
// The callback map is authoritative for deadlines; heap entries are hints:
//   * Cancellation is O(1): erase from the map, the heap entry dies lazily.
//   * Rescheduling is O(1) for deadline extensions (the keep-alive/dead-timer
//     reset that fires on every data frame): only the map's deadline moves,
//     and a popped entry that is earlier than the authoritative deadline is
//     re-pushed instead of fired. Moving a deadline *earlier* pushes one new
//     heap entry.
//   * Stale entries (cancelled or superseded) are compacted away whenever the
//     heap outgrows the live callbacks 4:1, so heap_size() stays within
//     max(64, 4 x pending()) no matter how hot the cancel/reschedule churn.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace mrmtp::sim {

/// Handle for a scheduled event; valid until the event fires or is cancelled.
struct EventId {
  std::uint64_t seq = 0;
  [[nodiscard]] bool valid() const { return seq != 0; }
};

class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time (time of the most recently fired event).
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` at absolute time `at`. `at` must be >= now().
  EventId schedule_at(Time at, Callback fn);

  /// Schedules `fn` after `delay` from now. Negative delays clamp to zero.
  EventId schedule_after(Duration delay, Callback fn);

  /// Cancels a pending event; no-op if already fired or cancelled.
  void cancel(EventId id);

  /// Moves a pending event's deadline to `at` (clamped to now()); returns
  /// false if the event already fired or was cancelled. O(1) when the
  /// deadline moves later — the per-frame keep-alive reset path.
  bool reschedule(EventId id, Time at);

  /// Deadline of the earliest live event, or empty when none is pending.
  /// Lazily discards stale heap heads, so it is not const; the sharded
  /// engine calls this at every barrier to compute the global safe horizon.
  [[nodiscard]] std::optional<Time> next_time();

  /// Fires the next event; returns false when the queue is empty.
  bool step();

  /// Runs events with time <= deadline, then advances the clock to deadline.
  void run_until(Time deadline);

  /// Runs until the event queue drains (or `max_events` fires, as a runaway
  /// guard; returns false if the guard tripped).
  bool run(std::uint64_t max_events = UINT64_MAX);

  [[nodiscard]] bool empty() const { return callbacks_.empty(); }
  /// Live (uncancelled) callbacks.
  [[nodiscard]] std::size_t pending() const { return callbacks_.size(); }
  /// Heap entries, including stale ones awaiting lazy discard/compaction;
  /// bounded by max(64, 4 x pending()) after every public call.
  [[nodiscard]] std::size_t heap_size() const { return heap_.size(); }
  [[nodiscard]] std::size_t heap_high_water() const { return heap_high_water_; }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }
  [[nodiscard]] std::uint64_t reschedules() const { return reschedules_; }
  [[nodiscard]] std::uint64_t compactions() const { return compactions_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  struct Pending {
    Time at;  // authoritative deadline; heap entries may lag behind
    Callback fn;
  };

  void push_entry(Entry e);
  void pop_entry();
  /// Rebuilds the heap from the live callbacks (one entry per callback).
  void compact();
  /// Compacts when stale entries dominate (heap > max(64, 4 x pending)).
  void maybe_compact();

  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::uint64_t reschedules_ = 0;
  std::uint64_t compactions_ = 0;
  std::size_t heap_high_water_ = 0;
  std::vector<Entry> heap_;  // min-heap via std::*_heap with std::greater
  std::unordered_map<std::uint64_t, Pending> callbacks_;
};

/// Restartable timer built on Scheduler; the workhorse behind every
/// keep-alive, dead, hold, MRAI, and retransmission timer in the protocols.
/// Re-arming an already-running timer reuses the scheduled event via
/// Scheduler::reschedule, so per-frame resets do not churn the heap.
class Timer {
 public:
  Timer(Scheduler& sched, Scheduler::Callback on_fire)
      : sched_(sched), on_fire_(std::move(on_fire)) {}
  ~Timer() { stop(); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Arms (or re-arms) as a one-shot firing after `d`.
  void start(Duration d) {
    periodic_ = false;
    interval_ = d;
    rearm();
  }

  /// Arms as a periodic timer with period `d`; fires repeatedly until stop().
  void start_periodic(Duration d) {
    periodic_ = true;
    interval_ = d;
    rearm();
  }

  /// Re-arms with the last interval (e.g. dead timer reset on keep-alive).
  void restart() { rearm(); }

  void stop() {
    if (id_.valid()) {
      sched_.cancel(id_);
      id_ = {};
    }
  }

  [[nodiscard]] bool running() const { return id_.valid(); }
  [[nodiscard]] Duration interval() const { return interval_; }

 private:
  void rearm() {
    Duration d = interval_ < Duration{} ? Duration{} : interval_;
    if (id_.valid() && sched_.reschedule(id_, sched_.now() + d)) return;
    id_ = {};
    arm();
  }

  void arm() {
    id_ = sched_.schedule_after(interval_, [this] {
      id_ = {};
      if (periodic_) arm();
      on_fire_();
    });
  }

  Scheduler& sched_;
  Scheduler::Callback on_fire_;
  EventId id_{};
  Duration interval_{};
  bool periodic_ = false;
};

}  // namespace mrmtp::sim
