// Simulation time: a strong 64-bit nanosecond count since simulation start.
//
// The paper records timings "to microsecond accuracy" on NTP-synced VMs; the
// simulator keeps nanosecond resolution so serialization delays of single
// frames at 10 Gb/s are representable exactly.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace mrmtp::sim {

/// A span of simulated time. Negative durations are permitted in arithmetic
/// but never scheduled.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration nanos(std::int64_t n) { return Duration(n); }
  static constexpr Duration micros(std::int64_t us) { return Duration(us * 1000); }
  static constexpr Duration millis(std::int64_t ms) { return Duration(ms * 1000000); }
  static constexpr Duration seconds(std::int64_t s) { return Duration(s * 1000000000); }
  static constexpr Duration seconds_f(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e9));
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_micros() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  constexpr Duration operator*(std::int64_t k) const { return Duration(ns_ * k); }
  constexpr Duration operator/(std::int64_t k) const { return Duration(ns_ / k); }

  /// Human-readable rendering with an auto-selected unit ("3.2ms", "150us").
  [[nodiscard]] std::string str() const;

 private:
  constexpr explicit Duration(std::int64_t n) : ns_(n) {}
  std::int64_t ns_ = 0;
};

/// An absolute instant on the simulation clock.
class Time {
 public:
  constexpr Time() = default;
  static constexpr Time from_ns(std::int64_t n) { return Time(n); }
  static constexpr Time zero() { return Time(0); }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const Time&) const = default;
  constexpr Time operator+(Duration d) const { return Time(ns_ + d.ns()); }
  constexpr Time operator-(Duration d) const { return Time(ns_ - d.ns()); }
  constexpr Duration operator-(Time o) const { return Duration::nanos(ns_ - o.ns_); }

  /// Rendering as seconds with microsecond precision ("12.345678s").
  [[nodiscard]] std::string str() const;

 private:
  constexpr explicit Time(std::int64_t n) : ns_(n) {}
  std::int64_t ns_ = 0;
};

}  // namespace mrmtp::sim
