#include "sim/parallel.hpp"

#include <algorithm>
#include <barrier>
#include <stdexcept>
#include <thread>

namespace mrmtp::sim {

// ---------------------------------------------------------------------------
// ShardBus

ShardBus::ShardBus(std::uint32_t shards)
    : shards_(shards),
      channels_(static_cast<std::size_t>(shards) * shards),
      inbox_min_ns_(shards, kNoneNs),
      floors_(new std::atomic<std::int64_t>[shards]) {
  for (std::uint32_t d = 0; d < shards_; ++d) floors_[d].store(0);
}

void ShardBus::post(std::uint32_t src, std::uint32_t dst, Time at,
                    std::uint64_t order, std::function<void()> fn) {
  if (at.ns() < floors_[dst].load(std::memory_order_acquire)) {
    throw std::logic_error(
        "ShardBus: cross-shard post at " + at.str() +
        " lands below the destination's safe horizon (lookahead violation)");
  }
  std::size_t depth = 0;
  {
    // The event must become visible to horizon computations (via the inbox
    // minimum) atomically with entering the channel: sync_mu_ spans both.
    std::lock_guard sync(sync_mu_);
    inbox_min_ns_[dst] = std::min(inbox_min_ns_[dst], at.ns());
    Channel& ch = channel(src, dst);
    std::lock_guard lock(ch.mu);
    if (ch.q.size() >= kChannelCap) {
      throw std::runtime_error("ShardBus: channel overflow (runaway loop?)");
    }
    ch.q.push_back(CrossEvent{at, order, ch.next_seq++, std::move(fn)});
    depth = ch.q.size();
  }
  posted_.fetch_add(1, std::memory_order_relaxed);
  if (src != dst) cross_posted_.fetch_add(1, std::memory_order_relaxed);
  std::size_t hw = high_water_.load(std::memory_order_relaxed);
  while (depth > hw &&
         !high_water_.compare_exchange_weak(hw, depth,
                                            std::memory_order_relaxed)) {
  }
}

std::size_t ShardBus::drain(std::uint32_t dst, Scheduler& into) {
  std::lock_guard sync(sync_mu_);
  return drain_locked(dst, into);
}

std::size_t ShardBus::drain_locked(std::uint32_t dst, Scheduler& into) {
  struct Tagged {
    Time at;
    std::uint64_t order;
    std::uint32_t src;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  std::vector<Tagged> batch;
  for (std::uint32_t src = 0; src < shards_; ++src) {
    Channel& ch = channel(src, dst);
    std::vector<CrossEvent> q;
    {
      std::lock_guard lock(ch.mu);
      q.swap(ch.q);
    }
    batch.reserve(batch.size() + q.size());
    for (auto& e : q) {
      batch.push_back(Tagged{e.at, e.order, src, e.seq, std::move(e.fn)});
    }
  }
  // Arrivals enter the destination scheduler keyed, so execution order is a
  // pure function of (arrival time, poster-supplied order key) — never of
  // thread timing, sharding, or WHEN this drain ran. The sort is not needed
  // for correctness anymore (the scheduler orders keyed events itself); it
  // keeps insertion order stable for posters that share an order key, where
  // (src, seq) is the documented fallback.
  std::sort(batch.begin(), batch.end(), [](const Tagged& a, const Tagged& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.order != b.order) return a.order < b.order;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  for (auto& e : batch) {
    into.schedule_at_ordered(e.at, e.order, std::move(e.fn));
  }
  // Cover transfer: the drained events now live in `into`, whose minimum the
  // caller publishes before releasing sync_mu_ (posts are locked out until
  // then, so nothing lands uncovered behind this clear).
  inbox_min_ns_[dst] = kNoneNs;
  return batch.size();
}

std::optional<Time> ShardBus::pending_min(std::uint32_t dst) {
  std::lock_guard sync(sync_mu_);
  std::optional<Time> best;
  for (std::uint32_t src = 0; src < shards_; ++src) {
    Channel& ch = channel(src, dst);
    std::lock_guard lock(ch.mu);
    for (const auto& e : ch.q) {
      if (!best || e.at < *best) best = e.at;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// ShardedEngine

struct ShardedEngine::DetectStep {
  ShardedEngine* eng;
  void operator()() const noexcept {
    // Runs with every shard parked at the check barrier: if nobody found
    // sub-deadline work after the collective drain, the run is over.
    ++eng->stats_.windows;
    eng->finished_.store(!eng->dirty_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    eng->dirty_.store(false, std::memory_order_relaxed);
  }
};

struct ShardedEngine::SyncState {
  std::barrier<> park;          // all shards believe the deadline is clear
  std::barrier<DetectStep> check;  // post-drain verdict
  SyncState(std::ptrdiff_t n, DetectStep step) : park(n), check(n, step) {}
};

ShardedEngine::ShardedEngine(std::vector<Scheduler*> shards, Options options)
    : shards_(std::move(shards)),
      options_(std::move(options)),
      bus_(static_cast<std::uint32_t>(shards_.size())),
      min_ns_(new std::atomic<std::int64_t>[shards_.size()]),
      shard_stalls_(shards_.size(), 0),
      shard_segments_(shards_.size(), 0) {
  if (shards_.empty()) {
    throw std::invalid_argument("ShardedEngine: no shards");
  }
  for (Scheduler* s : shards_) {
    if (s == nullptr) {
      throw std::invalid_argument("ShardedEngine: null shard scheduler");
    }
  }
  const std::size_t n = shards_.size();
  for (std::size_t i = 0; i < n; ++i) min_ns_[i].store(kNoneNs);

  // Direct per-pair lookahead (uniform fallback), then the transitive
  // closure. The closure is what makes m_i + la*(i,j) a bound on MULTI-HOP
  // arrivals: without it, a chain k -> i -> j with a cheap two-hop path
  // could deliver below a horizon computed from direct links only, and the
  // diagonal la*(j,j) — the cheapest round trip through other shards — is
  // the binding constraint for a shard whose neighbors are all idle.
  if (!options_.pair_lookahead.empty() &&
      options_.pair_lookahead.size() != n * n) {
    throw std::invalid_argument(
        "ShardedEngine: pair_lookahead must be shards^2 entries");
  }
  closure_ns_.assign(n * n, kNoneNs);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      Duration d = options_.pair_lookahead.empty()
                       ? (i == j ? Duration{} : options_.lookahead)
                       : options_.pair_lookahead[i * n + j];
      if (i != j && d > Duration{}) closure_ns_[i * n + j] = d.ns();
    }
  }
  if (options_.pair_lookahead.empty() && n > 1 &&
      options_.lookahead <= Duration{}) {
    throw std::invalid_argument(
        "ShardedEngine: sharded runs need positive lookahead");
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t ik = closure_ns_[i * n + k];
      if (ik == kNoneNs) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const std::int64_t kj = closure_ns_[k * n + j];
        if (kj == kNoneNs) continue;
        closure_ns_[i * n + j] = std::min(closure_ns_[i * n + j], ik + kj);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::int64_t v = closure_ns_[i * n + j];
      if (i != j && v != kNoneNs && v <= 0) {
        throw std::invalid_argument(
            "ShardedEngine: nonpositive pair lookahead");
      }
    }
  }
}

std::optional<Duration> ShardedEngine::pair_lookahead(
    std::uint32_t src, std::uint32_t dst) const {
  const std::int64_t v = closure_ns_[src * shards_.size() + dst];
  if (v == kNoneNs) return std::nullopt;
  return Duration::nanos(v);
}

std::int64_t ShardedEngine::horizon_ns(std::uint32_t dst) const {
  // Caller holds bus_.sync_mu(). Safety: under the sync mutex, EVERY pending
  // event in the system is covered — it sits in shard i's scheduler at a
  // time >= i's published minimum, or in shard i's inbox at a time >= i's
  // inbox minimum (posts update the inbox minimum before the event enters a
  // channel; drains clear it only in the same critical section that
  // publishes the destination's new scheduler minimum). Any future arrival
  // into dst descends from one of those events through links summing to
  // >= la*(origin,dst), so W computed here lower-bounds every arrival that
  // can ever land. A slot may even move backwards when an early arrival is
  // drained; that only makes this bound more conservative, never unsafe,
  // because the closure's triangle inequality (la*(k,i) + la*(i,dst) >=
  // la*(k,dst)) charges every multi-hop chain to its origin's cover at the
  // moment this bound is taken.
  const std::size_t n = shards_.size();
  std::int64_t w = kNoneNs;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t la = closure_ns_[i * n + dst];
    if (la == kNoneNs) continue;
    const std::int64_t m =
        std::min(min_ns_[i].load(std::memory_order_acquire),
                 bus_.inbox_min_ns(static_cast<std::uint32_t>(i)));
    if (m == kNoneNs) continue;
    w = std::min(w, m + la);
  }
  return w;
}

void ShardedEngine::publish_min(std::uint32_t s) {
  std::optional<Time> nt = shards_[s]->next_time();
  min_ns_[s].store(nt ? nt->ns() : kNoneNs, std::memory_order_release);
}

void ShardedEngine::shard_loop(std::uint32_t s, Time deadline,
                               SyncState& sync) {
  Scheduler& sched = *shards_[s];
  const std::int64_t deadline_ns = deadline.ns();
  for (;;) {
    // Asynchronous phase: execute below the horizon, re-reading neighbor
    // minima as they advance; no rendezvous on this path.
    for (;;) {
      // Sample the epoch BEFORE reading any shared state: publishers store
      // their new minimum first and bump the epoch after, so any advance we
      // fail to observe below leaves epoch != seen and the wait at the
      // bottom returns immediately (no lost wakeup).
      const std::uint64_t seen = epoch_.load(std::memory_order_acquire);
      std::int64_t w;
      {
        // Drain and publish in ONE critical section: the drained events'
        // cover moves from the inbox minimum to our published scheduler
        // minimum, and no horizon may be computed in between.
        std::lock_guard sync_lock(bus_.sync_mu());
        bus_.drain_locked(s, sched);
        publish_min(s);
        w = horizon_ns(s);
      }
      // Execute events strictly below the horizon (an event AT the horizon
      // could still be preceded by a same-instant arrival), capped at the
      // deadline inclusively.
      const std::int64_t exec_end =
          w == kNoneNs ? deadline_ns : std::min(w - 1, deadline_ns);
      std::optional<Time> nt = sched.next_time();
      if (nt && nt->ns() <= exec_end) {
        if (w != kNoneNs) {
          bus_.set_safe_floor(s, Time::from_ns(w));
        }
        sched.run_until(Time::from_ns(exec_end));
        // Raising our own published minimum needs no lock: events posted
        // during the run are already covered by their destinations' inbox
        // minima, and our remaining events are all >= the new value.
        publish_min(s);
        ++shard_segments_[s];
        epoch_.fetch_add(1, std::memory_order_acq_rel);
        epoch_.notify_all();
        continue;
      }
      // No executable work. Park only once every published minimum has
      // cleared the deadline; otherwise wait for a neighbor to advance.
      // (A stale read here can only delay parking or park early; early
      // parks are caught by the collective drain below.)
      bool all_clear = true;
      for (std::uint32_t i = 0; i < shards_.size(); ++i) {
        if (min_ns_[i].load(std::memory_order_acquire) <= deadline_ns) {
          all_clear = false;
          break;
        }
      }
      if (all_clear) break;
      ++shard_stalls_[s];
      epoch_.wait(seen, std::memory_order_acquire);
    }

    // Termination detection. All shards eventually reach the park barrier
    // (finite sub-deadline work plus guaranteed horizon progress), at which
    // point nobody is executing, so one more drain observes every post made
    // by sub-deadline work. If any shard drained sub-deadline arrivals, the
    // cascade may continue: go around again.
    sync.park.arrive_and_wait();
    {
      std::lock_guard sync_lock(bus_.sync_mu());
      bus_.drain_locked(s, sched);
      publish_min(s);
    }
    std::optional<Time> nt = sched.next_time();
    if (nt && nt->ns() <= deadline_ns) {
      dirty_.store(true, std::memory_order_relaxed);
    }
    sync.check.arrive_and_wait();  // completion step sets finished_
    if (finished_.load(std::memory_order_relaxed)) break;
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    epoch_.notify_all();
  }

  // Deadline-inclusive finish: every remaining arrival is provably beyond
  // the deadline, so clocks can advance to it and deadline-instant events
  // fire. Posts made here land beyond the deadline at every destination.
  bus_.set_safe_floor(s, deadline + Duration::nanos(1));
  sched.run_until(deadline);
  publish_min(s);
}

void ShardedEngine::run_single(Time deadline) {
  // One shard: nothing rides the bus in a sharded fabric (same-shard
  // deliveries bypass it), so this is plain inclusive execution. Tests may
  // still post manually; loop until the mailbox holds nothing due.
  Scheduler& sched = *shards_[0];
  for (;;) {
    bus_.drain(0, sched);
    bus_.set_safe_floor(0, deadline + Duration::nanos(1));
    sched.run_until(deadline);
    ++shard_segments_[0];
    std::optional<Time> pm = bus_.pending_min(0);
    if (!pm || *pm > deadline) break;
    // A callback posted work due within this run; pick it up. (Only
    // possible for posts made at-or-above the floor by the running shard
    // itself, i.e. self-posts in tests.)
  }
  ++stats_.windows;
}

void ShardedEngine::run_until(Time deadline) {
  std::fill(shard_stalls_.begin(), shard_stalls_.end(), 0);
  std::fill(shard_segments_.begin(), shard_segments_.end(), 0);
  if (shards_.size() == 1) {
    run_single(deadline);
  } else {
    finished_.store(false);
    dirty_.store(false);
    SyncState sync(static_cast<std::ptrdiff_t>(shards_.size()),
                   DetectStep{this});
    std::vector<std::thread> threads;
    threads.reserve(shards_.size());
    for (std::uint32_t s = 0; s < shards_.size(); ++s) {
      threads.emplace_back(
          [this, s, deadline, &sync] { shard_loop(s, deadline, sync); });
    }
    for (auto& t : threads) t.join();
  }
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    stats_.horizon_stalls += shard_stalls_[s];
    stats_.coalesced_windows += shard_segments_[s];
  }
  stats_.cross_events = bus_.cross_posted();
  stats_.mailbox_high_water =
      std::max<std::uint64_t>(stats_.mailbox_high_water,
                              bus_.channel_high_water());
}

}  // namespace mrmtp::sim
