#include "sim/parallel.hpp"

#include <algorithm>
#include <barrier>
#include <stdexcept>
#include <thread>

namespace mrmtp::sim {

// ---------------------------------------------------------------------------
// ShardBus

ShardBus::ShardBus(std::uint32_t shards)
    : shards_(shards),
      channels_(static_cast<std::size_t>(shards) * shards) {}

void ShardBus::post(std::uint32_t src, std::uint32_t dst, Time at,
                    std::uint64_t order, std::function<void()> fn) {
  if (at.ns() < safe_floor_ns_.load(std::memory_order_relaxed)) {
    throw std::logic_error(
        "ShardBus: cross-shard post at " + at.str() +
        " lands inside the executing window (lookahead violation)");
  }
  Channel& ch = channel(src, dst);
  std::size_t depth = 0;
  {
    std::lock_guard lock(ch.mu);
    if (ch.q.size() >= kChannelCap) {
      throw std::runtime_error("ShardBus: channel overflow (runaway loop?)");
    }
    ch.q.push_back(CrossEvent{at, order, ch.next_seq++, std::move(fn)});
    depth = ch.q.size();
  }
  posted_.fetch_add(1, std::memory_order_relaxed);
  if (src != dst) cross_posted_.fetch_add(1, std::memory_order_relaxed);
  std::size_t hw = high_water_.load(std::memory_order_relaxed);
  while (depth > hw &&
         !high_water_.compare_exchange_weak(hw, depth,
                                            std::memory_order_relaxed)) {
  }
}

std::size_t ShardBus::drain(std::uint32_t dst, Scheduler& into) {
  struct Tagged {
    Time at;
    std::uint64_t order;
    std::uint32_t src;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  std::vector<Tagged> batch;
  for (std::uint32_t src = 0; src < shards_; ++src) {
    Channel& ch = channel(src, dst);
    std::vector<CrossEvent> q;
    {
      std::lock_guard lock(ch.mu);
      q.swap(ch.q);
    }
    batch.reserve(batch.size() + q.size());
    for (auto& e : q) {
      batch.push_back(Tagged{e.at, e.order, src, e.seq, std::move(e.fn)});
    }
  }
  // The determinism tie-break: same-instant arrivals enter the destination
  // scheduler in poster-supplied order-key order — a pure function of the
  // blueprint (sender node, port, send sequence), never of thread timing or
  // of how the fabric happens to be sharded. (src, seq) is only a stable
  // fallback for posters that share an order key.
  std::sort(batch.begin(), batch.end(), [](const Tagged& a, const Tagged& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.order != b.order) return a.order < b.order;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  for (auto& e : batch) {
    into.schedule_at(e.at, std::move(e.fn));
  }
  return batch.size();
}

std::optional<Time> ShardBus::pending_min(std::uint32_t dst) {
  std::optional<Time> best;
  for (std::uint32_t src = 0; src < shards_; ++src) {
    Channel& ch = channel(src, dst);
    std::lock_guard lock(ch.mu);
    for (const auto& e : ch.q) {
      if (!best || e.at < *best) best = e.at;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// ShardedEngine

struct ShardedEngine::PlanStep {
  ShardedEngine* eng;
  Time deadline;
  void operator()() const noexcept { eng->plan_window(deadline); }
};

struct ShardedEngine::SyncState {
  std::barrier<PlanStep> plan;  // drain + publish-min rendezvous
  std::barrier<> post;          // end-of-window rendezvous
  SyncState(std::ptrdiff_t n, PlanStep step) : plan(n, step), post(n) {}
};

ShardedEngine::ShardedEngine(std::vector<Scheduler*> shards, Options options)
    : shards_(std::move(shards)),
      options_(options),
      bus_(static_cast<std::uint32_t>(shards_.size())),
      local_min_(shards_.size()),
      shard_stalls_(shards_.size(), 0) {
  if (shards_.empty()) {
    throw std::invalid_argument("ShardedEngine: no shards");
  }
  for (Scheduler* s : shards_) {
    if (s == nullptr) {
      throw std::invalid_argument("ShardedEngine: null shard scheduler");
    }
  }
  if (options_.lookahead <= Duration{}) {
    // Even a 1-shard engine runs the window loop (see run_single), and a
    // window of zero width would never make progress.
    throw std::invalid_argument(
        "ShardedEngine: runs need positive lookahead");
  }
}

void ShardedEngine::plan_window(Time deadline) {
  std::optional<Time> m;
  for (const auto& lm : local_min_) {
    if (lm && (!m || *lm < *m)) m = *lm;
  }
  ++stats_.windows;
  if (!m || *m + options_.lookahead > deadline) {
    // Nothing pending, or the horizon clears the deadline: every shard can
    // finish inclusively — any message a remaining event generates arrives
    // at >= m + lookahead > deadline, i.e. beyond this run entirely.
    phase_ = Phase::kFinal;
    window_end_ = deadline;
    bus_.set_safe_floor(deadline + Duration::nanos(1));
  } else {
    phase_ = Phase::kWindow;
    window_end_ = *m + options_.lookahead;
    bus_.set_safe_floor(window_end_);
  }
}

void ShardedEngine::shard_loop(std::uint32_t s, Time deadline,
                               SyncState& sync) {
  Scheduler& sched = *shards_[s];
  std::uint64_t stalls = 0;
  for (;;) {
    bus_.drain(s, sched);
    local_min_[s] = sched.next_time();
    sync.plan.arrive_and_wait();  // completion ran plan_window()
    if (phase_ == Phase::kFinal) {
      sched.run_until(deadline);
      break;
    }
    if (!local_min_[s] || *local_min_[s] >= window_end_) ++stalls;
    // Exclusive window: events strictly before window_end_ are safe; an
    // event at exactly window_end_ could still be preceded by a bus
    // arrival at the same instant, so it waits for the next window.
    sched.run_until(window_end_ - Duration::nanos(1));
    sync.post.arrive_and_wait();
  }
  shard_stalls_[s] = stalls;
}

void ShardedEngine::run_single(Time deadline) {
  // One shard, no threads — but the SAME window loop as the parallel path.
  // The window sequence is derived from the global event-time minimum, a
  // property of the simulation itself, so 1-shard and N-shard runs drain the
  // bus at identical instants and break same-time ties identically. That is
  // the whole determinism contract; a plain run_until here would interleave
  // bus arrivals by insertion order instead and diverge from sharded runs.
  Scheduler& sched = *shards_[0];
  std::uint64_t stalls = 0;
  for (;;) {
    bus_.drain(0, sched);
    local_min_[0] = sched.next_time();
    plan_window(deadline);
    if (phase_ == Phase::kFinal) {
      sched.run_until(deadline);
      break;
    }
    if (!local_min_[0] || *local_min_[0] >= window_end_) ++stalls;
    sched.run_until(window_end_ - Duration::nanos(1));
  }
  stats_.horizon_stalls += stalls;
}

void ShardedEngine::run_until(Time deadline) {
  if (shards_.size() == 1) {
    run_single(deadline);
    stats_.cross_events = bus_.cross_posted();  // zero by construction
    stats_.mailbox_high_water =
        std::max<std::uint64_t>(stats_.mailbox_high_water,
                                bus_.channel_high_water());
    return;
  }
  for (auto& lm : local_min_) lm.reset();
  std::fill(shard_stalls_.begin(), shard_stalls_.end(), 0);

  SyncState sync(static_cast<std::ptrdiff_t>(shards_.size()),
                 PlanStep{this, deadline});
  std::vector<std::thread> threads;
  threads.reserve(shards_.size());
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    threads.emplace_back(
        [this, s, deadline, &sync] { shard_loop(s, deadline, sync); });
  }
  for (auto& t : threads) t.join();

  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    stats_.horizon_stalls += shard_stalls_[s];
  }
  stats_.cross_events = bus_.cross_posted();
  stats_.mailbox_high_water =
      std::max<std::uint64_t>(stats_.mailbox_high_water,
                              bus_.channel_high_water());
}

}  // namespace mrmtp::sim
