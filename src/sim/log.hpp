// Leveled trace log with simulation timestamps.
//
// Protocol code emits component-tagged events ("mtp/S-1-1", "bgp/T-1"); the
// harness and tests either silence the log, stream it to stdout, or capture
// it to a buffer for assertions — mirroring the paper's use of C-code print
// statements and parsed log files for timing extraction.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace mrmtp::sim {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] std::string_view to_string(LogLevel level);

struct LogRecord {
  Time at;
  LogLevel level;
  std::string component;
  std::string message;
};

class Logger {
 public:
  using Sink = std::function<void(const LogRecord&)>;

  /// Default sink discards records (metrics never depend on logging).
  Logger() = default;

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  /// Replaces the sink; pass the result of stdout_sink() to stream records.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Begins capturing records into an internal buffer (also keeps the sink).
  void capture(bool enabled) { capturing_ = enabled; }
  [[nodiscard]] const std::vector<LogRecord>& captured() const { return records_; }
  void clear_captured() { records_.clear(); }

  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void log(Time at, LogLevel level, std::string_view component,
           std::string message);

  static Sink stdout_sink();

 private:
  LogLevel level_ = LogLevel::kOff;
  Sink sink_;
  bool capturing_ = false;
  std::vector<LogRecord> records_;
};

}  // namespace mrmtp::sim
