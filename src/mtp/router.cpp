#include "mtp/router.hpp"

#include <algorithm>
#include <cmath>

#include "net/link.hpp"
#include "net/switch_buffer.hpp"
#include "util/hash.hpp"

namespace mrmtp::mtp {

namespace {
/// Root 0 is reserved as "every destination beyond my uplinks": a spine that
/// loses its last usable uplink tells its downstream neighbors to stop
/// load-balancing anything through it. Rack subnets therefore must not use
/// third octet 0 (the topology builder starts VIDs at 11).
constexpr std::uint16_t kWildcardRoot = 0;
}  // namespace

MtpRouter::MtpRouter(net::SimContext& ctx, std::string name, MtpConfig config)
    : net::Node(ctx, std::move(name), config.tier), config_(std::move(config)) {
  if (config_.server_subnet.has_value()) {
    own_vid_ = config_.server_subnet->network().third_octet();
  }
  if (config_.path_select == util::PathSelect::kWcmpFlowlet) {
    flowlets_ = &ctx_.stats.alloc_flowlets();
  }
}

void MtpRouter::start() {
  started_ = true;
  draining_ = false;
  ports_state_.resize(port_count());
  std::set<std::uint32_t> rack_ports;
  for (const auto& [addr, port] : config_.rack_hosts) rack_ports.insert(port);

  for (std::uint32_t p = 1; p <= port_count(); ++p) {
    PortState& s = pstate(p);
    if (rack_ports.contains(p)) {
      s.mtp = false;
      continue;
    }
    s.hello_timer = std::make_unique<sim::Timer>(
        ctx_.sched, [this, p] { send_hello_if_idle(p); });
    s.dead_timer = std::make_unique<sim::Timer>(ctx_.sched, [this, p] {
      log(sim::LogLevel::kDebug,
          "dead timer expired on port " + std::to_string(p));
      neighbor_down(p, /*local_detect=*/true);
    });
    s.join_retry_timer =
        std::make_unique<sim::Timer>(ctx_.sched, [this, p] { retry_joins(p); });
    s.update_flush_timer =
        std::make_unique<sim::Timer>(ctx_.sched, [this, p] { flush_updates(p); });
    s.hello_timer->start_periodic(config_.timers.hello);
    send_advertise(p);
  }
}

void MtpRouter::stop() {
  started_ = false;
  draining_ = false;
  // Destroying each PortState cancels its timers (sim::Timer stops in its
  // destructor); start() re-creates everything from defaults.
  ports_state_.clear();
  outstanding_.clear();
  vid_table_.clear();
  exclusions_.clear_all();
  advertised_unreach_.clear();
  invalidate_up_cache();
}

void MtpRouter::drain() {
  if (!started_ || draining_) return;
  draining_ = true;
  log(sim::LogLevel::kInfo, "draining for maintenance");
  // Cost-out upward: withdraw every child VID assigned to each upstream so
  // it leaves our trees and stops steering tree traffic down through us.
  for (std::uint32_t up : alive_ports(/*upstream=*/true)) {
    PortState& s = pstate(up);
    if (s.assigned.empty()) continue;
    std::vector<Vid> gone;
    gone.reserve(s.assigned.size());
    for (const auto& [child, base] : s.assigned) gone.push_back(child);
    s.assigned.clear();
    queue_withdraw(up, gone);
  }
  // Cost-out downward: declare every root (and the wildcard default route)
  // unreachable so downstream load balancers exclude our ports. Deliberately
  // NOT recorded in advertised_unreach_ — these are an operational fiction,
  // and update_reachability() must not "correct" them with DEST_CLEARs
  // while the grace period runs.
  std::set<std::uint16_t> roots;
  for (const auto& e : vid_table_.entries()) roots.insert(e.vid.root());
  roots.insert(kWildcardRoot);
  std::vector<std::uint16_t> all(roots.begin(), roots.end());
  for (std::uint32_t down : alive_ports(/*upstream=*/false)) {
    queue_reach_update(down, all, /*unreach=*/true);
  }
  // The VID table is kept: in-flight downstream traffic during the grace
  // period still delivers. advertisable_vids()/handle_join_request() are
  // suppressed while draining_, so hellos stay plain and neighbors cannot
  // re-join us into trees before the reboot.
}

// ---------------------------------------------------------------- frame I/O

void MtpRouter::send_msg(std::uint32_t port_number, MtpMessage msg) {
  net::Port& out = port(port_number);
  if (!out.connected() || !out.admin_up()) return;

  const MsgType type = type_of(msg);
  net::Frame frame;
  frame.dst = net::MacAddr::broadcast();
  frame.src = out.mac();
  frame.ethertype = net::EtherType::kMtp;
  frame.payload = encode(std::move(msg));

  switch (type) {
    case MsgType::kHello:
      frame.traffic_class = net::TrafficClass::kMtpHello;
      ++stats_.hellos_sent;
      break;
    case MsgType::kData:
      frame.traffic_class = net::TrafficClass::kMtpData;
      // The encapsulated IPv4 header sits right behind the MTP data header;
      // expose it so finite-buffer switches can apply ECN CE marks to MTP
      // transit traffic too.
      frame.inner_ip_offset = DataMsg::kHeaderSize;
      break;
    default:
      frame.traffic_class = net::TrafficClass::kMtpControl;
  }

  switch (type) {
    case MsgType::kVidWithdraw:
    case MsgType::kDestUnreach:
    case MsgType::kDestClear:
      note_update_stats(frame);
      break;
    default:
      break;
  }

  pstate(port_number).last_tx = ctx_.now();
  transmit(out, std::move(frame));
}

void MtpRouter::note_update_stats(const net::Frame& frame) {
  ++stats_.updates_sent;
  stats_.update_bytes_raw += frame.wire_size();
  stats_.update_bytes_padded += frame.padded_wire_size();
  if (on_update_activity) on_update_activity(ctx_.now());
}

void MtpRouter::send_reliable(std::uint32_t port_number, MtpMessage msg) {
  std::uint16_t id = next_msg_id_++;
  if (next_msg_id_ == 0) next_msg_id_ = 1;
  std::visit(
      [id](auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (requires { m.msg_id; }) {
          m.msg_id = id;
        } else {
          (void)sizeof(T);
        }
      },
      msg);

  auto [it, inserted] = outstanding_.emplace(id, Outstanding{port_number, msg, 0, nullptr});
  Outstanding& entry = it->second;
  entry.timer = std::make_unique<sim::Timer>(ctx_.sched, [this, id] {
    auto found = outstanding_.find(id);
    if (found == outstanding_.end()) return;
    Outstanding& o = found->second;
    if (o.retries >= config_.timers.max_retransmits) {
      // Give up; the dead timer will declare the neighbor down if it is
      // truly gone. Deferred erase: we are inside this entry's own timer.
      ctx_.sched.schedule_after(sim::Duration::nanos(0),
                                [this, id] { outstanding_.erase(id); });
      return;
    }
    ++o.retries;
    send_msg(o.port, o.msg);
    o.timer->restart();
  });
  entry.timer->start(config_.timers.retransmit);
  send_msg(port_number, msg);
}

void MtpRouter::handle_frame(net::Port& in, net::Frame frame) {
  if (!started_) return;  // powered off: no per-port state exists
  PortState& s = pstate(in.number());
  if (!s.mtp) {
    if (frame.ethertype == net::EtherType::kIpv4) {
      handle_rack_frame(in, std::move(frame));
    }
    return;
  }
  if (frame.ethertype != net::EtherType::kMtp) return;

  MtpMessage msg;
  try {
    msg = decode(std::move(frame.payload));
  } catch (const util::CodecError&) {
    return;
  }
  note_rx(in);
  handle_msg(in, msg);
}

void MtpRouter::handle_msg(net::Port& in, MtpMessage& msg) {
  std::uint32_t p = in.number();
  bool alive = pstate(p).alive;

  std::visit(
      [&](auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, HelloMsg>) {
          // Liveness already recorded by note_rx.
        } else if constexpr (std::is_same_v<T, CtrlAckMsg>) {
          outstanding_.erase(m.msg_id);
        } else if constexpr (std::is_same_v<T, DataMsg>) {
          // Move the payload through: its slab stays uniquely owned, so the
          // re-encapsulation on the far port prepends in place.
          forward_data(std::move(m), p);
        } else if constexpr (std::is_same_v<T, AdvertiseMsg>) {
          if (alive) handle_advertise(p, m);
        } else if constexpr (std::is_same_v<T, JoinRequestMsg>) {
          if (alive) handle_join_request(p, m);
        } else if constexpr (std::is_same_v<T, JoinOfferMsg>) {
          send_msg(p, CtrlAckMsg{m.msg_id});
          if (alive) handle_join_offer(p, m);
        } else if constexpr (std::is_same_v<T, VidWithdrawMsg>) {
          send_msg(p, CtrlAckMsg{m.msg_id});
          handle_withdraw(p, m);
        } else if constexpr (std::is_same_v<T, DestUnreachMsg>) {
          send_msg(p, CtrlAckMsg{m.msg_id});
          handle_dest_unreach(p, m);
        } else if constexpr (std::is_same_v<T, DestClearMsg>) {
          send_msg(p, CtrlAckMsg{m.msg_id});
          handle_dest_clear(p, m);
        }
      },
      msg);
}

// ----------------------------------------------------------------- liveness

void MtpRouter::note_rx(net::Port& in) {
  PortState& s = pstate(in.number());
  sim::Time now = ctx_.now();
  if (s.alive) {
    s.dead_timer->start(config_.timers.dead);
  } else {
    // Slow-to-Accept: require `accept_streak` *consecutive* keep-alives —
    // a gap of more than 1.5 hello intervals (a missed hello) restarts the
    // count, so a flapping interface never accumulates a streak (§IV.B).
    if (now - s.last_rx > config_.timers.hello + config_.timers.hello / 2) {
      s.streak = 0;
    }
    ++s.streak;
    if (!config_.timers.slow_to_accept ||
        s.streak >= config_.timers.accept_streak) {
      // Flap damping: a streak on a suppressed port does not promote the
      // neighbor until the penalty decays to the reuse threshold. The streak
      // keeps counting, so the instant suppression lifts the (stable)
      // neighbor is re-admitted on its next keep-alive.
      if (s.damp_suppressed) {
        decay_damping(s);
        if (s.damp_penalty > config_.timers.damping_reuse) {
          ++stats_.accepts_suppressed;
          s.last_rx = now;
          return;
        }
        s.damp_suppressed = false;
      }
      s.last_rx = now;
      neighbor_up(in.number());
      return;
    }
  }
  s.last_rx = now;
}

void MtpRouter::decay_damping(PortState& s) {
  if (s.damp_penalty > 0.0) {
    sim::Duration dt = ctx_.now() - s.damp_updated;
    if (dt > sim::Duration{}) {
      s.damp_penalty *=
          std::exp2(-static_cast<double>(dt.ns()) /
                    static_cast<double>(config_.timers.damping_half_life.ns()));
    }
  }
  s.damp_updated = ctx_.now();
}

double MtpRouter::port_damping_penalty(std::uint32_t p) const {
  const PortState& s = pstate(p);
  if (s.damp_penalty <= 0.0) return 0.0;
  sim::Duration dt = ctx_.now() - s.damp_updated;
  if (dt <= sim::Duration{}) return s.damp_penalty;
  return s.damp_penalty *
         std::exp2(-static_cast<double>(dt.ns()) /
                   static_cast<double>(config_.timers.damping_half_life.ns()));
}

bool MtpRouter::port_damping_suppressed(std::uint32_t p) const {
  return pstate(p).damp_suppressed &&
         port_damping_penalty(p) > config_.timers.damping_reuse;
}

void MtpRouter::neighbor_up(std::uint32_t p) {
  PortState& s = pstate(p);
  if (s.alive) return;
  s.alive = true;
  s.streak = 0;
  invalidate_up_cache();
  ++stats_.neighbors_accepted;
  s.dead_timer->start(config_.timers.dead);
  log(sim::LogLevel::kInfo, "neighbor on port " + std::to_string(p) + " UP");
  if (on_neighbor_up) on_neighbor_up(ctx_.now(), p);

  // Stale failure state for this port is moot; the neighbor re-announces
  // any unreachability below.
  exclusions_.clear_port(p);

  send_advertise(p);
  if (is_downstream(p) && !advertised_unreach_.empty()) {
    DestUnreachMsg m;
    m.roots.assign(advertised_unreach_.begin(), advertised_unreach_.end());
    send_reliable(p, m);
  }
  // Roots (and the wildcard) may have become reachable through this port.
  std::set<std::uint16_t> recheck = advertised_unreach_;
  recheck.insert(kWildcardRoot);
  update_reachability(recheck);
}

void MtpRouter::neighbor_down(std::uint32_t p, bool local_detect) {
  PortState& s = pstate(p);
  if (!s.alive) return;
  s.alive = false;
  s.streak = 0;
  // The neighbor may come back from a cold reboot holding nothing; its
  // capability statement must be re-earned, not remembered, and its
  // statement counter restarts from zero.
  s.advertised_roots.clear();
  s.last_adv_seq = 0;
  invalidate_up_cache();
  ++stats_.neighbors_lost;
  s.dead_timer->stop();
  s.join_pending.clear();
  s.join_retry_timer->stop();
  // Updates queued for this neighbor are moot now; reliable delivery of the
  // failure state restarts from scratch if it ever comes back.
  s.update_flush_timer->stop();
  s.pending_withdraw.clear();
  s.pending_unreach.clear();
  s.pending_clear.clear();
  if (config_.timers.damping_penalty > 0) {
    decay_damping(s);
    s.damp_penalty += config_.timers.damping_penalty;
    if (s.damp_penalty >= config_.timers.damping_suppress) {
      s.damp_suppressed = true;
      log(sim::LogLevel::kInfo,
          "port " + std::to_string(p) + " flap-damped (penalty " +
              std::to_string(static_cast<int>(s.damp_penalty)) + ")");
    }
  }
  log(sim::LogLevel::kInfo, "neighbor on port " + std::to_string(p) + " DOWN");

  // Abandon reliable messages directed at the dead neighbor.
  for (auto it = outstanding_.begin(); it != outstanding_.end();) {
    it = (it->second.port == p) ? outstanding_.erase(it) : std::next(it);
  }

  std::vector<VidEntry> lost = vid_table_.remove_port(p);
  s.assigned.clear();
  exclusions_.clear_port(p);

  if (!lost.empty()) {
    ++stats_.table_changes_local;
    if (on_table_change) on_table_change(ctx_.now(), false);
  }
  if (on_neighbor_down) on_neighbor_down(ctx_.now(), p, local_detect);
  process_vid_loss(lost, /*from_update=*/false);

  // Losing an uplink can sever the default route entirely (wildcard) and
  // strand roots that were only reachable upward.
  std::set<std::uint16_t> recheck;
  recheck.insert(kWildcardRoot);
  for (const auto& e : lost) recheck.insert(e.vid.root());
  update_reachability(recheck);
}

void MtpRouter::send_hello_if_idle(std::uint32_t p) {
  // Integrated control/data plane: any frame is a keep-alive, so the 1-byte
  // HELLO goes out only if the link carried nothing for a hello interval.
  if (ctx_.now() - pstate(p).last_tx < config_.timers.hello) return;
  // While an accepted upstream neighbor has not joined all of our trees,
  // the keep-alive slot re-advertises instead (an ADVERTISE is also a
  // keep-alive) so a lost ADVERTISE cannot stall tree establishment.
  const PortState& s = pstate(p);
  if (s.alive && is_upstream(p) && !fully_assigned(p)) {
    send_advertise(p);
    return;
  }
  send_msg(p, HelloMsg{});
}

bool MtpRouter::fully_assigned(std::uint32_t p) const {
  const PortState& s = pstate(p);
  for (const Vid& base : advertisable_vids()) {
    if (!s.assigned.contains(base.child(static_cast<std::uint16_t>(p)))) {
      return false;
    }
  }
  return true;
}

void MtpRouter::on_port_down(net::Port& p) {
  if (!started_) return;
  PortState& s = pstate(p.number());
  if (!s.mtp) return;
  invalidate_up_cache();
  s.hello_timer->stop();
  neighbor_down(p.number(), /*local_detect=*/true);
}

void MtpRouter::on_port_up(net::Port& p) {
  if (!started_) return;
  PortState& s = pstate(p.number());
  if (!s.mtp) return;
  invalidate_up_cache();
  s.hello_timer->start_periodic(config_.timers.hello);
}

// ------------------------------------------------------- tree establishment

std::vector<Vid> MtpRouter::advertisable_vids() const {
  if (draining_) return {};  // cost-out: offer nothing, upstreams stay away
  if (is_leaf()) return {Vid(own_vid_)};
  std::vector<Vid> out;
  out.reserve(vid_table_.size());
  for (const auto& e : vid_table_.entries()) out.push_back(e.vid);
  return out;
}

void MtpRouter::send_advertise(std::uint32_t p) {
  AdvertiseMsg m;
  m.tier = static_cast<std::uint8_t>(config_.tier);
  m.seq = ++adv_seq_;
  m.vids = advertisable_vids();
  send_msg(p, m);
}

void MtpRouter::handle_advertise(std::uint32_t p, const AdvertiseMsg& msg) {
  PortState& s = pstate(p);
  // Links can duplicate a frame and deliver the copy late — after newer
  // statements (and even after join handshakes the original triggered). A
  // re-delivered stale statement is not merely redundant: treating it as
  // current would prune assignments made since. Drop anything not newer
  // than the last statement accepted from this neighbor.
  if (msg.seq != 0 && msg.seq <= s.last_adv_seq) return;
  if (msg.seq != 0) s.last_adv_seq = msg.seq;
  bool first_contact = !s.neighbor_tier.has_value();
  if (first_contact || *s.neighbor_tier != msg.tier) invalidate_up_cache();
  s.neighbor_tier = msg.tier;
  if (first_contact) send_advertise(p);  // let the neighbor learn our tier

  if (msg.tier >= config_.tier) {
    // An upstream's advertisement is a full statement of the trees it
    // holds: remember the roots so the uplink load balancer can steer tree
    // traffic toward uplinks that can actually deliver it.
    std::set<std::uint16_t> roots;
    for (const Vid& v : msg.vids) roots.insert(v.root());
    if (roots != s.advertised_roots) {
      s.advertised_roots = std::move(roots);
      invalidate_up_cache();
    }
    // Any child VID we once assigned on this port that it no longer lists
    // was pruned on its side — e.g. a one-way gray episode starved the
    // upstream into declaring us dead while we kept seeing its frames and
    // never cleared our bookkeeping. Dropping the stale assignment makes
    // fully_assigned() false again, so the keep-alive slot re-advertises
    // and the join handshake restarts.
    if (msg.tier > config_.tier && !s.assigned.empty()) {
      std::set<Vid> held(msg.vids.begin(), msg.vids.end());
      // A JOIN_OFFER still awaiting its ack names a VID the neighbor has
      // not processed yet, so its absence from this statement is expected —
      // pruning it here would orphan the tree on our side while the
      // neighbor goes on to join it.
      for (const auto& [id, o] : outstanding_) {
        if (o.port != p) continue;
        if (const auto* offer = std::get_if<JoinOfferMsg>(&o.msg)) {
          held.insert(offer->vids.begin(), offer->vids.end());
        }
      }
      for (auto it = s.assigned.begin(); it != s.assigned.end();) {
        it = held.contains(it->first) ? std::next(it) : s.assigned.erase(it);
      }
    }
    return;  // we only join trees from below
  }

  // A draining router joins no new trees; it is leaving the ones it has.
  if (draining_) return;

  bool added = false;
  for (const Vid& base : msg.vids) {
    bool already_joined = false;
    bool duplicate_root = false;
    for (const auto& e : vid_table_.entries()) {
      if (e.port == p && e.vid.parent() == base) {
        already_joined = true;
        break;
      }
      // Misconfiguration guard: two *different* ToRs advertising the same
      // root VID means two racks share a subnet third octet — joining both
      // would silently split that destination's traffic between racks.
      if (base.depth() == 1 && e.vid.root() == base.root() &&
          e.vid.depth() == 2 && e.port != p) {
        duplicate_root = true;
        break;
      }
    }
    if (duplicate_root) {
      ++stats_.duplicate_roots_rejected;
      log(sim::LogLevel::kError,
          "rejecting join of tree " + base.str() + " on port " +
              std::to_string(p) + ": root already rooted on another port "
              "(duplicate rack subnet?)");
      continue;
    }
    if (!already_joined && s.join_pending.insert(base).second) added = true;
  }
  if (added) {
    retry_joins(p);
    s.join_retry_timer->start_periodic(config_.timers.retransmit);
  }
}

void MtpRouter::retry_joins(std::uint32_t p) {
  PortState& s = pstate(p);
  if (s.join_pending.empty()) {
    s.join_retry_timer->stop();
    return;
  }
  JoinRequestMsg m;
  m.vids.assign(s.join_pending.begin(), s.join_pending.end());
  send_msg(p, m);
}

void MtpRouter::handle_join_request(std::uint32_t p, const JoinRequestMsg& msg) {
  if (draining_) return;  // no offers while costing out
  PortState& s = pstate(p);
  JoinOfferMsg offer;
  for (const Vid& base : msg.vids) {
    bool held = is_leaf() ? (base == Vid(own_vid_)) : vid_table_.contains(base);
    if (!held) continue;
    // The derived VID is the base plus the port the request arrived on
    // (paper §III.B).
    Vid child = base.child(static_cast<std::uint16_t>(p));
    s.assigned.emplace(child, base);
    offer.vids.push_back(std::move(child));
  }
  if (!offer.vids.empty()) send_reliable(p, offer);
}

void MtpRouter::handle_join_offer(std::uint32_t p, const JoinOfferMsg& msg) {
  PortState& s = pstate(p);
  std::set<std::uint16_t> new_roots;
  for (const Vid& child : msg.vids) {
    s.join_pending.erase(child.parent());
    // Invariant: in a folded-Clos a tree reaches any device through exactly
    // one port, so a second root instance from elsewhere is a duplicate
    // rack subnet (misconfiguration), never legitimate meshing.
    bool foreign_root = false;
    for (const auto& e : vid_table_.entries_for_root(child.root())) {
      if (e.port != p || e.vid != child) {
        foreign_root = true;
        break;
      }
    }
    if (foreign_root) {
      ++stats_.duplicate_roots_rejected;
      log(sim::LogLevel::kError,
          "rejecting offered VID " + child.str() + " on port " +
              std::to_string(p) +
              ": tree already joined elsewhere (duplicate rack subnet?)");
      continue;
    }
    if (vid_table_.add(child, p)) new_roots.insert(child.root());
  }
  if (s.join_pending.empty()) s.join_retry_timer->stop();
  if (new_roots.empty()) return;

  log(sim::LogLevel::kDebug,
      "acquired " + std::to_string(msg.vids.size()) + " VID(s) on port " +
          std::to_string(p));
  // New VIDs mean new trees to offer upward — and a fresher capability
  // statement downward, so children steering tree traffic up learn we can
  // now deliver for these roots (a cold-rejoined router earns traffic back
  // root by root instead of blackholing on the first hash).
  for (std::uint32_t up : alive_ports(/*upstream=*/true)) send_advertise(up);
  for (std::uint32_t down : alive_ports(/*upstream=*/false)) {
    send_advertise(down);
  }
  update_reachability(new_roots);
}

// ----------------------------------------------------------- failure plane

void MtpRouter::process_vid_loss(const std::vector<VidEntry>& lost,
                                 bool from_update) {
  (void)from_update;
  if (lost.empty()) return;

  std::set<Vid> lost_vids;
  std::set<std::uint16_t> roots;
  for (const auto& e : lost) {
    lost_vids.insert(e.vid);
    roots.insert(e.vid.root());
  }

  // Withdraw the children we derived from the lost VIDs, upward.
  for (std::uint32_t up : alive_ports(/*upstream=*/true)) {
    PortState& s = pstate(up);
    std::vector<Vid> withdraw;
    for (auto it = s.assigned.begin(); it != s.assigned.end();) {
      if (lost_vids.contains(it->second)) {
        withdraw.push_back(it->first);
        it = s.assigned.erase(it);
      } else {
        ++it;
      }
    }
    if (!withdraw.empty()) queue_withdraw(up, withdraw);
  }

  update_reachability(roots);
}

bool MtpRouter::reachable(std::uint16_t root) const {
  if (root != kWildcardRoot) {
    if (is_leaf() && root == own_vid_) return true;
    if (vid_table_.has_root(root)) return true;
  }
  // Default route up: any accepted uplink not excluded for this root.
  for (std::uint32_t p = 1; p <= port_count(); ++p) {
    const PortState& s = pstate(p);
    if (!s.mtp || !s.alive || !is_upstream(p)) continue;
    if (!port(p).admin_up()) continue;
    if (exclusions_.is_excluded(kWildcardRoot, p)) continue;
    if (root != kWildcardRoot && exclusions_.is_excluded(root, p)) continue;
    return true;
  }
  return false;
}

void MtpRouter::update_reachability(const std::set<std::uint16_t>& roots) {
  // The wildcard ("everything beyond my uplinks") only means something on
  // devices that have uplinks; top-tier spines reach ToRs exclusively via
  // their VID tables.
  bool has_uplinks = false;
  for (std::uint32_t p = 1; p <= port_count(); ++p) {
    if (pstate(p).mtp && is_upstream(p)) {
      has_uplinks = true;
      break;
    }
  }

  DestUnreachMsg unreach;
  DestClearMsg clear;
  for (std::uint16_t root : roots) {
    if (root == kWildcardRoot && !has_uplinks) continue;
    bool ok = reachable(root);
    bool advertised = advertised_unreach_.contains(root);
    if (!ok && !advertised) {
      advertised_unreach_.insert(root);
      unreach.roots.push_back(root);
    } else if (ok && advertised) {
      advertised_unreach_.erase(root);
      clear.roots.push_back(root);
    }
  }
  if (unreach.roots.empty() && clear.roots.empty()) return;
  for (std::uint32_t down : alive_ports(/*upstream=*/false)) {
    if (!unreach.roots.empty()) queue_reach_update(down, unreach.roots, true);
    if (!clear.roots.empty()) queue_reach_update(down, clear.roots, false);
  }
}

// ---------------------------------------------- withdrawal-storm containment

void MtpRouter::queue_withdraw(std::uint32_t p, const std::vector<Vid>& vids) {
  if (config_.timers.update_min_interval <= sim::Duration{}) {
    VidWithdrawMsg m;
    m.vids = vids;
    send_reliable(p, m);
    return;
  }
  PortState& s = pstate(p);
  for (const Vid& v : vids) {
    if (!s.pending_withdraw.insert(v).second) ++stats_.updates_deduped;
  }
  schedule_flush(p);
}

void MtpRouter::queue_reach_update(std::uint32_t p,
                                   const std::vector<std::uint16_t>& roots,
                                   bool unreach) {
  if (config_.timers.update_min_interval <= sim::Duration{}) {
    if (unreach) {
      DestUnreachMsg m;
      m.roots = roots;
      send_reliable(p, m);
    } else {
      DestClearMsg m;
      m.roots = roots;
      send_reliable(p, m);
    }
    return;
  }
  PortState& s = pstate(p);
  auto& add = unreach ? s.pending_unreach : s.pending_clear;
  auto& opposite = unreach ? s.pending_clear : s.pending_unreach;
  for (std::uint16_t r : roots) {
    if (opposite.erase(r) > 0) {
      // The opposite update never left this router, so the pair cancels:
      // the neighbor's view is already correct without either message.
      stats_.updates_deduped += 2;
      continue;
    }
    if (!add.insert(r).second) ++stats_.updates_deduped;
  }
  schedule_flush(p);
}

void MtpRouter::schedule_flush(std::uint32_t p) {
  PortState& s = pstate(p);
  if (s.pending_withdraw.empty() && s.pending_unreach.empty() &&
      s.pending_clear.empty()) {
    return;
  }
  sim::Time earliest = s.last_update_tx + config_.timers.update_min_interval;
  if (ctx_.now() >= earliest) {
    // Idle interval: the first update of a burst keeps today's latency.
    flush_updates(p);
    return;
  }
  ++stats_.updates_batched;
  if (!s.update_flush_timer->running()) {
    s.update_flush_timer->start(earliest - ctx_.now());
  }
}

void MtpRouter::flush_updates(std::uint32_t p) {
  PortState& s = pstate(p);
  if (!s.alive) {
    s.pending_withdraw.clear();
    s.pending_unreach.clear();
    s.pending_clear.clear();
    return;
  }
  if (s.pending_withdraw.empty() && s.pending_unreach.empty() &&
      s.pending_clear.empty()) {
    return;
  }
  s.last_update_tx = ctx_.now();
  if (!s.pending_withdraw.empty()) {
    VidWithdrawMsg m;
    m.vids.assign(s.pending_withdraw.begin(), s.pending_withdraw.end());
    s.pending_withdraw.clear();
    send_reliable(p, m);
  }
  if (!s.pending_unreach.empty()) {
    DestUnreachMsg m;
    m.roots.assign(s.pending_unreach.begin(), s.pending_unreach.end());
    s.pending_unreach.clear();
    send_reliable(p, m);
  }
  if (!s.pending_clear.empty()) {
    DestClearMsg m;
    m.roots.assign(s.pending_clear.begin(), s.pending_clear.end());
    s.pending_clear.clear();
    send_reliable(p, m);
  }
}

void MtpRouter::handle_withdraw(std::uint32_t p, const VidWithdrawMsg& msg) {
  ++stats_.updates_received;
  if (on_update_activity) on_update_activity(ctx_.now());

  std::vector<VidEntry> removed;
  for (const Vid& v : msg.vids) {
    const VidEntry* e = vid_table_.find(v);
    if (e != nullptr && e->port == p) {
      removed.push_back(*e);
      vid_table_.remove(v);
    }
  }
  if (removed.empty()) return;

  ++stats_.table_changes_remote;
  if (on_table_change) on_table_change(ctx_.now(), true);
  process_vid_loss(removed, /*from_update=*/true);
}

void MtpRouter::handle_dest_unreach(std::uint32_t p, const DestUnreachMsg& msg) {
  if (!is_upstream(p)) return;  // unreachability only flows down
  ++stats_.updates_received;
  if (on_update_activity) on_update_activity(ctx_.now());

  std::set<std::uint16_t> affected;
  bool changed = false;
  for (std::uint16_t root : msg.roots) {
    if (exclusions_.exclude(root, p)) {
      changed = true;
      ++stats_.exclusion_changes;
    }
    affected.insert(root);
  }
  if (changed) {
    invalidate_up_cache();
    ++stats_.table_changes_remote;
    if (on_table_change) on_table_change(ctx_.now(), true);
  }
  update_reachability(affected);
}

void MtpRouter::handle_dest_clear(std::uint32_t p, const DestClearMsg& msg) {
  if (!is_upstream(p)) return;
  ++stats_.updates_received;
  if (on_update_activity) on_update_activity(ctx_.now());

  std::set<std::uint16_t> affected;
  bool changed = false;
  for (std::uint16_t root : msg.roots) {
    if (exclusions_.clear(root, p)) {
      changed = true;
      ++stats_.exclusion_changes;
    }
    affected.insert(root);
  }
  if (changed) {
    invalidate_up_cache();
    ++stats_.table_changes_remote;
    if (on_table_change) on_table_change(ctx_.now(), true);
  }
  update_reachability(affected);
}

// ---------------------------------------------------------------- data path

void MtpRouter::handle_rack_frame(net::Port& in, net::Frame frame) {
  std::span<const std::uint8_t> payload;
  ip::Ipv4Header header;
  try {
    header = ip::Ipv4Header::parse(frame.payload, payload);
  } catch (const util::CodecError&) {
    return;
  }

  // The VID derivation algorithm: destination ToR VID = third octet of the
  // destination IP (paper §III.D).
  std::uint16_t dst_root = header.dst.third_octet();

  if (dst_root == own_vid_) {
    // Intra-rack: switch between host ports.
    auto it = config_.rack_hosts.find(header.dst);
    if (it == config_.rack_hosts.end() || it->second == in.number()) return;
    net::Port& out = port(it->second);
    frame.src = out.mac();
    transmit(out, std::move(frame));
    return;
  }

  DataMsg msg;
  msg.src_root = own_vid_;
  msg.dst_root = dst_root;
  msg.ttl = config_.data_ttl;
  msg.ip_packet = std::move(frame.payload);
  forward_data(std::move(msg), std::nullopt);
}

template <typename Contains, typename Redraw>
std::uint32_t MtpRouter::flowlet_select(std::uint64_t flow_hash,
                                        Contains&& still_valid,
                                        Redraw&& redraw) {
  // The table index wants the hash's low bits to be uniform; data_flow_hash
  // is FNV, whose low bits are weaker than mix64's, so rescramble.
  const std::uint64_t key = util::mix64(flow_hash);
  const std::int64_t now_ns = ctx_.now().ns();
  net::FlowletTable::Slot& s = flowlets_->probe(key);
  if (s.key == key && s.last_ns >= 0 &&
      now_ns - s.last_ns <= flowlet_gap_ns() && still_valid(s.port)) {
    s.last_ns = now_ns;  // flowlet still open: stick, no reorder risk
    return s.port;
  }
  const std::uint32_t chosen = redraw();
  if (s.key == key && s.last_ns >= 0 && chosen != s.port) {
    ++stats_.flowlet_reroutes;
    const net::Port& out = port(chosen);
    if (out.connected()) out.link()->note_flowlet_reroute(out);
  }
  s.key = key;
  s.last_ns = now_ns;
  s.port = chosen;
  return chosen;
}

void MtpRouter::forward_data(DataMsg msg, std::optional<std::uint32_t> in_port) {
  if (is_leaf() && msg.dst_root == own_vid_) {
    deliver_to_rack(std::move(msg));
    return;
  }

  if (in_port.has_value()) {
    if (msg.ttl <= 1) {
      ++stats_.data_dropped_ttl;
      return;
    }
    --msg.ttl;
  }

  const util::PathSelect mode = config_.path_select;

  // Downward: a VID rooted at the destination names the exact port. The
  // per-root index is a reference (no per-packet vector), and rendezvous
  // hashing keyed by the VID keeps every other flow in place when one
  // candidate entry is withdrawn.
  const auto& candidates = vid_table_.entries_for_root(msg.dst_root);
  if (!candidates.empty()) {
    std::uint64_t h = data_flow_hash(msg);
    auto key_of = [&](std::size_t i) {
      const VidEntry& e = candidates[i];
      return static_cast<std::uint64_t>(std::hash<Vid>{}(e.vid)) ^ e.port;
    };
    std::uint32_t out;
    if (mode == util::PathSelect::kHrw) {
      out = candidates[util::hrw_pick(h, candidates.size(), key_of)].port;
    } else {
      // Downward candidate sets are tiny (one entry per acquisition branch),
      // so weights are computed inline from the egress capacity.
      auto redraw = [&] {
        auto weight_of = [&](std::size_t i) {
          double w = port_mbps(candidates[i].port);
          if (mode == util::PathSelect::kWcmpFlowlet) {
            w *= congestion_discount(candidates[i].port);
          }
          return w;
        };
        return candidates[util::hrw_pick_weighted(h, candidates.size(), key_of,
                                                  weight_of)]
            .port;
      };
      if (mode == util::PathSelect::kWcmp) {
        out = redraw();
      } else {
        auto still_valid = [&](std::uint32_t p) {
          for (const VidEntry& e : candidates) {
            if (e.port == p) return true;
          }
          return false;
        };
        out = flowlet_select(h, still_valid, redraw);
      }
    }
    ++stats_.data_forwarded;
    ++stats_.allocs_avoided;
    send_msg(out, MtpMessage{std::move(msg)});
    return;
  }

  // Upward default: never bounce a packet that already came down.
  if (in_port.has_value() && is_upstream(*in_port)) {
    ++stats_.data_dropped_no_path;
    return;
  }
  const UpCacheSlot& slot = up_slot(msg.dst_root);
  const auto& ups = slot.ports;
  if (ups.empty()) {
    ++stats_.data_dropped_no_path;
    return;
  }
  std::uint64_t h = data_flow_hash(msg);
  auto key_of = [&](std::size_t i) { return std::uint64_t{ups[i]}; };
  std::uint32_t out;
  if (mode == util::PathSelect::kHrw) {
    out = ups[util::hrw_pick(h, ups.size(), key_of)];
  } else {
    auto redraw = [&] {
      auto weight_of = [&](std::size_t i) {
        double w = i < slot.weights.size() ? slot.weights[i] : 1.0;
        if (mode == util::PathSelect::kWcmpFlowlet) {
          w *= congestion_discount(ups[i]);
        }
        return w;
      };
      return ups[util::hrw_pick_weighted(h, ups.size(), key_of, weight_of)];
    };
    if (mode == util::PathSelect::kWcmp) {
      out = redraw();
    } else {
      auto still_valid = [&](std::uint32_t p) {
        return std::find(ups.begin(), ups.end(), p) != ups.end();
      };
      out = flowlet_select(h, still_valid, redraw);
    }
  }
  ++stats_.data_forwarded;
  send_msg(out, MtpMessage{std::move(msg)});
}

void MtpRouter::deliver_to_rack(DataMsg msg) {
  std::span<const std::uint8_t> payload;
  ip::Ipv4Header header;
  try {
    header = ip::Ipv4Header::parse(msg.ip_packet, payload);
  } catch (const util::CodecError&) {
    return;
  }
  auto it = config_.rack_hosts.find(header.dst);
  if (it == config_.rack_hosts.end()) return;

  net::Port& out = port(it->second);
  net::Frame frame;
  frame.dst = net::MacAddr::broadcast();
  frame.src = out.mac();
  frame.ethertype = net::EtherType::kIpv4;
  frame.payload = std::move(msg.ip_packet);
  frame.traffic_class = net::TrafficClass::kIpData;
  ++stats_.data_delivered;
  transmit(out, std::move(frame));
}

const std::vector<std::uint32_t>& MtpRouter::eligible_up_ports(
    std::uint16_t dst_root) const {
  return up_slot(dst_root).ports;
}

const MtpRouter::UpCacheSlot& MtpRouter::up_slot(std::uint16_t dst_root) const {
  if (dst_root >= up_cache_.size()) up_cache_.resize(dst_root + 1);
  UpCacheSlot& slot = up_cache_[dst_root];
  if (slot.epoch == up_cache_epoch_) {
    ++stats_.up_cache_hits;
    ++stats_.allocs_avoided;
    return slot;
  }
  ++stats_.up_cache_misses;
  slot.epoch = up_cache_epoch_;
  const bool weighted = config_.path_select != util::PathSelect::kHrw;
  std::vector<std::uint32_t>& out = slot.ports;
  std::vector<double>& weights = slot.weights;
  out.clear();  // rebuild in place, keeping the slot's capacity
  weights.clear();
  std::vector<std::uint32_t> fallback;
  std::vector<double> fallback_w;
  // WCMP weight of an uplink: egress capacity scaled by how many trees the
  // neighbor currently advertises — the live proxy for its remaining
  // downstream reachability ("remaining uplinks x link speed below the next
  // hop"). Recomputed here, i.e. on every epoch bump (ADVERTISE, withdrawal,
  // admin-down, drain), so the hot path stays O(1).
  auto weight_of = [&](std::uint32_t p, const PortState& s) {
    return port_mbps(p) *
           static_cast<double>(std::max<std::size_t>(
               std::size_t{1}, s.advertised_roots.size()));
  };
  for (std::uint32_t p = 1; p <= port_count(); ++p) {
    const PortState& s = pstate(p);
    if (!s.mtp || !s.alive || !is_upstream(p)) continue;
    if (!port(p).admin_up()) continue;
    if (exclusions_.is_excluded(kWildcardRoot, p)) continue;
    if (exclusions_.is_excluded(dst_root, p)) continue;
    // Prefer uplinks whose neighbor advertised a tree for this root: a
    // freshly rebooted upstream is alive well before it has re-joined its
    // trees, and hashing tree traffic onto it blackholes at the turn. When
    // no uplink advertises the root (a remote pod's root never shows up in
    // a pod spine's statement), every alive uplink is fair game as before.
    if (s.advertised_roots.contains(dst_root)) {
      out.push_back(p);
      if (weighted) weights.push_back(weight_of(p, s));
    } else {
      fallback.push_back(p);
      if (weighted) fallback_w.push_back(weight_of(p, s));
    }
  }
  if (out.empty()) {
    out = std::move(fallback);
    weights = std::move(fallback_w);
  }
  if (weighted) {
    ++stats_.wcmp_weight_updates;
    for (std::uint32_t p : out) {
      const net::Port& eg = port(p);
      if (eg.connected()) eg.link()->note_weight_update(eg);
    }
  }
  return slot;
}

std::uint64_t MtpRouter::data_flow_hash(const DataMsg& msg) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint8_t>(msg.src_root >> 8));
  mix(static_cast<std::uint8_t>(msg.src_root));
  mix(static_cast<std::uint8_t>(msg.dst_root >> 8));
  mix(static_cast<std::uint8_t>(msg.dst_root));
  // Inner IP addresses (fixed offsets) + first 4 transport bytes (the
  // ports), whose offset is IHL x 4 — a packet carrying IP options must not
  // hash option bytes in place of the ports.
  const auto& pkt = msg.ip_packet;
  for (std::size_t i = 12; i < 20 && i < pkt.size(); ++i) mix(pkt[i]);
  if (!pkt.empty()) {
    std::size_t off = static_cast<std::size_t>(pkt[0] & 0xf) * 4;
    if (off >= ip::Ipv4Header::kSize) {
      for (std::size_t i = off; i < off + 4 && i < pkt.size(); ++i) {
        mix(pkt[i]);
      }
    }
  }
  return h;
}

// ------------------------------------------------------------------ helpers

double MtpRouter::port_mbps(std::uint32_t p) const {
  const net::Link* l = port(p).link();
  return l == nullptr ? 1.0 : static_cast<double>(l->params().bandwidth_bps) / 1e6;
}

double MtpRouter::congestion_discount(std::uint32_t p) const {
  const net::Port& out = port(p);
  net::Link* l = out.link();
  if (l == nullptr) return 1.0;
  const auto dir = l->direction_from(out);
  if (l->data_paused(dir)) return 0.05;
  std::uint64_t threshold = 64 * 1024;  // ECN default when no SwitchBuffer
  if (const net::SwitchBuffer* sb = switch_buffer(); sb != nullptr) {
    threshold = sb->params().ecn_data_threshold;
  }
  if (l->queued_data_bytes(dir) > threshold) return 0.25;
  return 1.0;
}

std::int64_t MtpRouter::flowlet_gap_ns() const {
  // 500 µs fallback: comfortably above one serialization quantum of the
  // slowest edge (1000 B at 100 Mb/s = 80 µs), below PFC-pause stalls.
  return config_.flowlet_gap.ns() > 0 ? config_.flowlet_gap.ns() : 500'000;
}

bool MtpRouter::is_upstream(std::uint32_t p) const {
  const PortState& s = pstate(p);
  return s.neighbor_tier.has_value() && *s.neighbor_tier > config_.tier;
}

bool MtpRouter::is_downstream(std::uint32_t p) const {
  const PortState& s = pstate(p);
  return s.neighbor_tier.has_value() && *s.neighbor_tier < config_.tier;
}

std::vector<std::uint32_t> MtpRouter::alive_ports(bool upstream) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t p = 1; p <= port_count(); ++p) {
    const PortState& s = pstate(p);
    if (!s.mtp || !s.alive) continue;
    if (upstream ? is_upstream(p) : is_downstream(p)) out.push_back(p);
  }
  return out;
}

bool MtpRouter::joined_all(const std::vector<std::uint16_t>& roots) const {
  for (std::uint16_t root : roots) {
    if (is_leaf() && root == own_vid_) continue;
    if (!vid_table_.has_root(root)) return false;
  }
  return true;
}

bool MtpRouter::neighbor_alive(std::uint32_t port_number) const {
  return pstate(port_number).alive;
}

std::string MtpRouter::neighbor_summary() const {
  std::string out = name() + " tier " + std::to_string(config_.tier);
  if (is_leaf()) out += " (root VID " + std::to_string(own_vid_) + ")";
  out += "\n";
  for (std::uint32_t p = 1; p <= port_count(); ++p) {
    const PortState& s = pstate(p);
    if (!s.mtp) {
      out += "  eth" + std::to_string(p) + "  rack port\n";
      continue;
    }
    out += "  eth" + std::to_string(p) + "  ";
    out += s.neighbor_tier.has_value()
               ? ("tier " + std::to_string(*s.neighbor_tier))
               : std::string("tier ?");
    out += s.alive ? "  up" : "  down";
    std::string held;
    for (const auto& e : vid_table_.entries()) {
      if (e.port == p) held += (held.empty() ? "" : ",") + e.vid.str();
    }
    if (!held.empty()) out += "  holds " + held;
    std::string given;
    for (const auto& [child, base] : s.assigned) {
      given += (given.empty() ? "" : ",") + child.str();
    }
    if (!given.empty()) out += "  assigned " + given;
    out += "\n";
  }
  return out;
}

}  // namespace mrmtp::mtp
