#include "mtp/message.hpp"

namespace mrmtp::mtp {

std::string_view to_string(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "HELLO";
    case MsgType::kAdvertise: return "ADVERTISE";
    case MsgType::kJoinRequest: return "JOIN_REQUEST";
    case MsgType::kJoinOffer: return "JOIN_OFFER";
    case MsgType::kCtrlAck: return "CTRL_ACK";
    case MsgType::kVidWithdraw: return "VID_WITHDRAW";
    case MsgType::kDestUnreach: return "DEST_UNREACH";
    case MsgType::kDestClear: return "DEST_CLEAR";
    case MsgType::kData: return "DATA";
  }
  return "?";
}

namespace {

template <typename Writer>
void write_vids(Writer& w, const std::vector<Vid>& vids) {
  w.u8(static_cast<std::uint8_t>(vids.size()));
  for (const Vid& v : vids) v.serialize(w);
}

std::vector<Vid> read_vids(util::BufReader& r) {
  std::uint8_t count = r.u8();
  std::vector<Vid> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) out.push_back(Vid::deserialize(r));
  return out;
}

template <typename Writer>
void write_roots(Writer& w, const std::vector<std::uint16_t>& roots) {
  w.u8(static_cast<std::uint8_t>(roots.size()));
  for (std::uint16_t root : roots) w.u16(root);
}

std::vector<std::uint16_t> read_roots(util::BufReader& r) {
  std::uint8_t count = r.u8();
  std::vector<std::uint16_t> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) out.push_back(r.u16());
  return out;
}

}  // namespace

MsgType type_of(const MtpMessage& msg) {
  return std::visit(
      [](const auto& m) -> MsgType {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, HelloMsg>) return MsgType::kHello;
        else if constexpr (std::is_same_v<T, AdvertiseMsg>) return MsgType::kAdvertise;
        else if constexpr (std::is_same_v<T, JoinRequestMsg>) return MsgType::kJoinRequest;
        else if constexpr (std::is_same_v<T, JoinOfferMsg>) return MsgType::kJoinOffer;
        else if constexpr (std::is_same_v<T, CtrlAckMsg>) return MsgType::kCtrlAck;
        else if constexpr (std::is_same_v<T, VidWithdrawMsg>) return MsgType::kVidWithdraw;
        else if constexpr (std::is_same_v<T, DestUnreachMsg>) return MsgType::kDestUnreach;
        else if constexpr (std::is_same_v<T, DestClearMsg>) return MsgType::kDestClear;
        else return MsgType::kData;
      },
      msg);
}

net::Buffer encode(MtpMessage msg) {
  // Data path: prepend the 6-byte header over the IP packet's headroom —
  // in place when the caller moved a uniquely owned payload in, a counted
  // pool copy otherwise. Identical bytes either way.
  if (auto* d = std::get_if<DataMsg>(&msg)) {
    const std::uint8_t hdr[DataMsg::kHeaderSize] = {
        static_cast<std::uint8_t>(MsgType::kData),
        static_cast<std::uint8_t>(d->src_root >> 8),
        static_cast<std::uint8_t>(d->src_root & 0xff),
        static_cast<std::uint8_t>(d->dst_root >> 8),
        static_cast<std::uint8_t>(d->dst_root & 0xff),
        d->ttl};
    net::Buffer out = std::move(d->ip_packet);
    out.prepend(hdr);
    return out;
  }

  net::BufferWriter w(32);
  w.u8(static_cast<std::uint8_t>(type_of(msg)));

  std::visit(
      [&w](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, HelloMsg>) {
          // Nothing: the keep-alive is the single type byte 0x06.
        } else if constexpr (std::is_same_v<T, AdvertiseMsg>) {
          w.u8(m.tier);
          w.u32(m.seq);
          write_vids(w, m.vids);
        } else if constexpr (std::is_same_v<T, JoinRequestMsg>) {
          write_vids(w, m.vids);
        } else if constexpr (std::is_same_v<T, JoinOfferMsg>) {
          w.u16(m.msg_id);
          write_vids(w, m.vids);
        } else if constexpr (std::is_same_v<T, CtrlAckMsg>) {
          w.u16(m.msg_id);
        } else if constexpr (std::is_same_v<T, VidWithdrawMsg>) {
          w.u16(m.msg_id);
          write_vids(w, m.vids);
        } else if constexpr (std::is_same_v<T, DestUnreachMsg>) {
          w.u16(m.msg_id);
          write_roots(w, m.roots);
        } else if constexpr (std::is_same_v<T, DestClearMsg>) {
          w.u16(m.msg_id);
          write_roots(w, m.roots);
        }
      },
      msg);
  return w.take();
}

MtpMessage decode(net::Buffer payload) {
  util::BufReader r(payload.span());
  auto type = static_cast<MsgType>(r.u8());
  switch (type) {
    case MsgType::kHello:
      return HelloMsg{};
    case MsgType::kAdvertise: {
      AdvertiseMsg m;
      m.tier = r.u8();
      m.seq = r.u32();
      m.vids = read_vids(r);
      return m;
    }
    case MsgType::kJoinRequest: {
      JoinRequestMsg m;
      m.vids = read_vids(r);
      return m;
    }
    case MsgType::kJoinOffer: {
      JoinOfferMsg m;
      m.msg_id = r.u16();
      m.vids = read_vids(r);
      return m;
    }
    case MsgType::kCtrlAck: {
      CtrlAckMsg m;
      m.msg_id = r.u16();
      return m;
    }
    case MsgType::kVidWithdraw: {
      VidWithdrawMsg m;
      m.msg_id = r.u16();
      m.vids = read_vids(r);
      return m;
    }
    case MsgType::kDestUnreach: {
      DestUnreachMsg m;
      m.msg_id = r.u16();
      m.roots = read_roots(r);
      return m;
    }
    case MsgType::kDestClear: {
      DestClearMsg m;
      m.msg_id = r.u16();
      m.roots = read_roots(r);
      return m;
    }
    case MsgType::kData: {
      DataMsg m;
      m.src_root = r.u16();
      m.dst_root = r.u16();
      m.ttl = r.u8();
      // The IP packet is the rest of the frame payload: share the slab at
      // offset 6 instead of copying the bytes out.
      m.ip_packet = payload.slice(r.position());
      return m;
    }
  }
  throw util::CodecError("MTP: unknown message type");
}

}  // namespace mrmtp::mtp
