#include "mtp/vid_table.hpp"

#include <algorithm>

namespace mrmtp::mtp {

namespace {
void erase_from(std::vector<VidEntry>& v, const Vid& vid) {
  v.erase(std::remove_if(v.begin(), v.end(),
                         [&](const VidEntry& e) { return e.vid == vid; }),
          v.end());
}
}  // namespace

void VidTable::drop_bucket_if_empty(std::uint16_t root) {
  const std::int32_t pos = bucket_of(root);
  if (pos < 0 || !buckets_[static_cast<std::size_t>(pos)].empty()) return;
  const std::size_t last = buckets_.size() - 1;
  const auto upos = static_cast<std::size_t>(pos);
  if (upos != last) {  // swap-remove; re-point the moved root's slot
    roots_[upos] = roots_[last];
    buckets_[upos] = std::move(buckets_[last]);
    root_pos_[roots_[upos]] = pos;
  }
  roots_.pop_back();
  buckets_.pop_back();
  root_pos_[root] = -1;
}

bool VidTable::add(Vid vid, std::uint32_t port) {
  if (contains(vid)) return false;
  VidEntry entry{std::move(vid), port};
  const std::uint16_t root = entry.vid.root();
  if (root >= root_pos_.size()) root_pos_.resize(root + 1, -1);
  std::int32_t pos = root_pos_[root];
  if (pos < 0) {
    pos = static_cast<std::int32_t>(buckets_.size());
    root_pos_[root] = pos;
    roots_.push_back(root);
    buckets_.emplace_back();
  }
  buckets_[static_cast<std::size_t>(pos)].push_back(entry);
  entries_.push_back(std::move(entry));
  return true;
}

bool VidTable::remove(const Vid& vid) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const VidEntry& e) { return e.vid == vid; });
  if (it == entries_.end()) return false;
  const std::int32_t pos = bucket_of(vid.root());
  if (pos >= 0) {
    erase_from(buckets_[static_cast<std::size_t>(pos)], vid);
    drop_bucket_if_empty(vid.root());
  }
  entries_.erase(it);
  return true;
}

std::vector<VidEntry> VidTable::remove_port(std::uint32_t port) {
  std::vector<VidEntry> removed;
  auto it = std::remove_if(entries_.begin(), entries_.end(),
                           [&](const VidEntry& e) {
                             if (e.port == port) {
                               removed.push_back(e);
                               return true;
                             }
                             return false;
                           });
  entries_.erase(it, entries_.end());
  for (const VidEntry& e : removed) {
    const std::int32_t pos = bucket_of(e.vid.root());
    if (pos < 0) continue;
    erase_from(buckets_[static_cast<std::size_t>(pos)], e.vid);
    drop_bucket_if_empty(e.vid.root());
  }
  return removed;
}

const VidEntry* VidTable::find(const Vid& vid) const {
  for (const auto& e : entries_) {
    if (e.vid == vid) return &e;
  }
  return nullptr;
}

bool VidTable::has_root(std::uint16_t root) const {
  return bucket_of(root) >= 0;  // empty buckets are dropped eagerly
}

const std::vector<VidEntry>& VidTable::entries_for_root(
    std::uint16_t root) const {
  static const std::vector<VidEntry> kEmpty;
  const std::int32_t pos = bucket_of(root);
  return pos < 0 ? kEmpty : buckets_[static_cast<std::size_t>(pos)];
}

std::string VidTable::dump() const {
  // Group by port, Listing 5 style: "eth2    37.1.1, 38.1.1".
  std::map<std::uint32_t, std::vector<const VidEntry*>> by_port;
  for (const auto& e : entries_) by_port[e.port].push_back(&e);

  std::string out;
  for (const auto& [port, entries] : by_port) {
    out += port == 0 ? "self" : ("eth" + std::to_string(port));
    out += "\t";
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (i != 0) out += ", ";
      out += entries[i]->vid.str();
    }
    out += "\n";
  }
  return out;
}

std::size_t VidTable::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& e : entries_) {
    bytes += sizeof(VidEntry) + e.vid.depth() * sizeof(std::uint16_t);
  }
  return bytes;
}

bool ExclusionTable::exclude(std::uint16_t root, std::uint32_t port) {
  return excluded_[root].insert(port).second;
}

bool ExclusionTable::clear(std::uint16_t root, std::uint32_t port) {
  auto it = excluded_.find(root);
  if (it == excluded_.end()) return false;
  bool erased = it->second.erase(port) > 0;
  if (it->second.empty()) excluded_.erase(it);
  return erased;
}

void ExclusionTable::clear_port(std::uint32_t port) {
  for (auto it = excluded_.begin(); it != excluded_.end();) {
    it->second.erase(port);
    it = it->second.empty() ? excluded_.erase(it) : std::next(it);
  }
}

bool ExclusionTable::is_excluded(std::uint16_t root, std::uint32_t port) const {
  auto it = excluded_.find(root);
  return it != excluded_.end() && it->second.contains(port);
}

std::size_t ExclusionTable::size() const {
  std::size_t n = 0;
  for (const auto& [root, ports] : excluded_) n += ports.size();
  return n;
}

std::string ExclusionTable::dump() const {
  std::string out;
  for (const auto& [root, ports] : excluded_) {
    out += "dest " + std::to_string(root) + " avoid:";
    for (std::uint32_t p : ports) out += " eth" + std::to_string(p);
    out += "\n";
  }
  return out;
}

}  // namespace mrmtp::mtp
