// The VID table: every VID a device has acquired, with the port it was
// acquired on (paper Fig. 2 side tables, Listing 5). Downward forwarding is
// a root lookup; the table also drives withdrawal pruning on failures.
//
// The exclusion table is the failure-time companion: destination roots that
// must not be load-balanced toward a given upstream port because the device
// up there lost its last path to that ToR tree.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "mtp/vid.hpp"

namespace mrmtp::mtp {

struct VidEntry {
  Vid vid;
  std::uint32_t port = 0;  // acquisition port; 0 for a ToR's own root VID

  auto operator<=>(const VidEntry&) const = default;
};

class VidTable {
 public:
  /// Adds an entry; returns false (no-op) if the VID is already present.
  bool add(Vid vid, std::uint32_t port);

  bool remove(const Vid& vid);

  /// Removes every VID acquired on `port`; returns the removed entries.
  std::vector<VidEntry> remove_port(std::uint32_t port);

  [[nodiscard]] const VidEntry* find(const Vid& vid) const;
  [[nodiscard]] bool contains(const Vid& vid) const { return find(vid) != nullptr; }

  /// True if any held VID is rooted at `root`.
  [[nodiscard]] bool has_root(std::uint16_t root) const;

  /// All entries rooted at `root` (the candidates for downward forwarding).
  /// Returns a reference into a per-root index maintained across mutations:
  /// the data path calls this once per packet and must not allocate.
  [[nodiscard]] const std::vector<VidEntry>& entries_for_root(
      std::uint16_t root) const;

  [[nodiscard]] const std::vector<VidEntry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Paper Listing 5 rendering: one line per port, comma-separated VIDs.
  [[nodiscard]] std::string dump() const;

  /// Approximate resident bytes — compared against the BGP RouteTable in the
  /// table-size experiment.
  [[nodiscard]] std::size_t memory_bytes() const;

  void clear() {
    entries_.clear();
    root_pos_.clear();
    roots_.clear();
    buckets_.clear();
  }

 private:
  /// Bucket index for `root`, or -1. O(1) array load — the downward data
  /// path resolves its per-root candidate set with no tree or hash walk.
  [[nodiscard]] std::int32_t bucket_of(std::uint16_t root) const {
    return root < root_pos_.size() ? root_pos_[root] : -1;
  }
  void drop_bucket_if_empty(std::uint16_t root);

  std::vector<VidEntry> entries_;
  /// Per-root candidate index as a structure-of-arrays slab: `root_pos_` is
  /// dense by root value (grown to the highest root seen, -1 = absent);
  /// `roots_`/`buckets_` are parallel arrays of the live roots and their
  /// candidate sets, compacted by swap-remove when a root empties. Roots are
  /// ToR VIDs — small integers — so the dense map costs a few KB per router
  /// and the hot path is one load + one indexed vector, replacing the old
  /// std::map node walk per packet.
  std::vector<std::int32_t> root_pos_;
  std::vector<std::uint16_t> roots_;
  std::vector<std::vector<VidEntry>> buckets_;
};

class ExclusionTable {
 public:
  /// Marks `port` unusable for destination tree `root`; true if new.
  bool exclude(std::uint16_t root, std::uint32_t port);
  /// Clears one exclusion; true if it existed.
  bool clear(std::uint16_t root, std::uint32_t port);
  /// Drops every exclusion referencing `port` (port came back / was pruned).
  void clear_port(std::uint32_t port);
  /// Drops everything (node reboot).
  void clear_all() { excluded_.clear(); }

  [[nodiscard]] bool is_excluded(std::uint16_t root, std::uint32_t port) const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::string dump() const;

 private:
  std::map<std::uint16_t, std::set<std::uint32_t>> excluded_;
};

}  // namespace mrmtp::mtp
