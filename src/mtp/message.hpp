// MR-MTP message codecs, carried directly in Ethernet frames with the
// paper's EtherType 0x8850 and broadcast destination MAC (links are
// point-to-point, so no ARP is needed — paper §VII.F).
//
// The HELLO keep-alive is a single byte 0x06, matching the paper's Fig. 10
// capture ("Data: 06, [Length: 1]"). Control messages that mutate state
// (offers, withdrawals, unreachability updates) carry a 16-bit message id
// and are acknowledged with CTRL_ACK — the paper's "request-response and
// accept-acknowledge" reliability that lets MR-MTP dispense with TCP.
#pragma once

#include <cstdint>
#include <span>
#include <variant>
#include <vector>

#include "mtp/vid.hpp"
#include "net/buffer.hpp"

namespace mrmtp::mtp {

/// EtherType value from the paper (an unassigned type).
constexpr std::uint16_t kMtpEtherType = 0x8850;

enum class MsgType : std::uint8_t {
  kHello = 0x06,  // the single keep-alive byte seen in the paper's capture
  kAdvertise = 0x01,
  kJoinRequest = 0x02,
  kJoinOffer = 0x03,
  kCtrlAck = 0x04,
  kVidWithdraw = 0x05,
  kDestUnreach = 0x07,
  kDestClear = 0x08,
  kData = 0x09,
};

[[nodiscard]] std::string_view to_string(MsgType t);

/// 1-byte keep-alive.
struct HelloMsg {};

/// Sender announces its tier and the VIDs it holds; upstream neighbors
/// respond with join requests for trees they have not joined on this link.
struct AdvertiseMsg {
  std::uint8_t tier = 0;
  /// Monotonic per-sender statement number (OSPF-LSA style). Links may
  /// duplicate frames and deliver the copy late; without an ordering mark a
  /// stale full statement can arrive after a newer one and falsely prune
  /// assignments made in between. Receivers discard seq <= last seen;
  /// seq 0 (hand-crafted frames) is always accepted.
  std::uint32_t seq = 0;
  std::vector<Vid> vids;
};

/// Upstream device asks to join the advertised trees (listing the
/// advertiser's VIDs it wants children of).
struct JoinRequestMsg {
  std::vector<Vid> vids;
};

/// Assigner's reply: the derived child VIDs (base + arrival port).
struct JoinOfferMsg {
  std::uint16_t msg_id = 0;
  std::vector<Vid> vids;
};

/// Acknowledges a reliable control message by id.
struct CtrlAckMsg {
  std::uint16_t msg_id = 0;
};

/// Travels up: these VIDs (children the receiver acquired from the sender)
/// are gone; receivers prune and propagate further up.
struct VidWithdrawMsg {
  std::uint16_t msg_id = 0;
  std::vector<Vid> vids;
};

/// Travels down: the sender can no longer reach these ToR trees at all;
/// receivers exclude this port for those destinations.
struct DestUnreachMsg {
  std::uint16_t msg_id = 0;
  std::vector<std::uint16_t> roots;
};

/// Travels down: reachability restored; receivers clear exclusions.
struct DestClearMsg {
  std::uint16_t msg_id = 0;
  std::vector<std::uint16_t> roots;
};

/// An encapsulated IP packet: 2-byte source and destination ToR VIDs plus a
/// TTL backstop, then the untouched IP packet (paper §III.D). The packet is
/// a pooled Buffer view — encapsulation prepends the 6-byte MTP header into
/// its headroom and decapsulation slices it back out, so the IP bytes are
/// never re-serialized while crossing the fabric.
struct DataMsg {
  static constexpr std::size_t kHeaderSize = 6;  // type + roots + ttl

  std::uint16_t src_root = 0;
  std::uint16_t dst_root = 0;
  std::uint8_t ttl = 16;
  net::Buffer ip_packet;
};

using MtpMessage =
    std::variant<HelloMsg, AdvertiseMsg, JoinRequestMsg, JoinOfferMsg,
                 CtrlAckMsg, VidWithdrawMsg, DestUnreachMsg, DestClearMsg,
                 DataMsg>;

/// Serializes into a pooled Buffer. Takes the message by value: a DataMsg
/// moved in keeps a unique payload slab, so the 6-byte header lands in its
/// headroom in place — pass `MtpMessage{std::move(data_msg)}` on the hot
/// path. Control messages serialize through a pooled writer either way.
[[nodiscard]] net::Buffer encode(MtpMessage msg);
/// Throws util::CodecError on malformed frames. Takes the payload by value:
/// a kData payload moved in is *sliced*, not copied — DataMsg::ip_packet
/// shares the frame's slab at offset 6.
[[nodiscard]] MtpMessage decode(net::Buffer payload);

[[nodiscard]] MsgType type_of(const MtpMessage& msg);

}  // namespace mrmtp::mtp
