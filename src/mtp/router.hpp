// MtpRouter: the Multi-Root Meshed Tree Protocol engine (paper §III–IV).
//
// One object serves every tier; the role differences fall out of the tier
// number and the presence of a server subnet:
//   * Leaves (ToRs) derive their root VID from the rack subnet's third
//     octet, advertise it upward, and encapsulate/decapsulate server IP
//     packets in MTP DATA frames.
//   * Spines join the trees advertised from below (request -> offer -> ack,
//     all retransmitted until acknowledged — MR-MTP's built-in reliability
//     in place of TCP) and acquire one VID per tree per downstream branch.
//   * Forwarding is VID-table down, hash-load-balanced default-route up,
//     with per-destination port exclusions maintained by failure updates.
//
// Failure handling implements the paper's Quick-to-Detect / Slow-to-Accept:
// a neighbor is declared down after a single missed hello window (dead
// interval = 2 x hello), and re-accepted only after `accept_streak`
// consecutive messages. Every MTP frame counts as a keep-alive; the 1-byte
// HELLO is sent only on links idle for a hello interval.
//
// Failure updates never recompute routes (paper §IV.B): VID_WITHDRAW prunes
// exact table entries upward; DEST_UNREACH/DEST_CLEAR maintain load-balancer
// exclusions downward.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "ip/packet.hpp"
#include "mtp/message.hpp"
#include "mtp/vid_table.hpp"
#include "net/network.hpp"
#include "util/hash.hpp"

namespace mrmtp::mtp {

struct MtpTimers {
  sim::Duration hello = sim::Duration::millis(50);
  sim::Duration dead = sim::Duration::millis(100);
  /// Consecutive keep-alives required to re-accept a neighbor (paper: 3).
  int accept_streak = 3;
  /// Ablation switch: false accepts a neighbor on the first keep-alive.
  bool slow_to_accept = true;
  /// Reliable-control retransmission interval and cap.
  sim::Duration retransmit = sim::Duration::millis(100);
  int max_retransmits = 10;

  // --- flap damping (overload containment, disabled when penalty == 0) ---
  /// Figure-of-merit added per alive->dead flap. The penalty halves every
  /// `damping_half_life`; while it sits at or above `damping_suppress` the
  /// port is suppressed and Slow-to-Accept streaks no longer promote the
  /// neighbor, until decay brings it down to `damping_reuse`. With the
  /// defaults below (once enabled) a single clean failure/recovery never
  /// suppresses; three flaps inside a couple of seconds do.
  double damping_penalty = 0;
  double damping_suppress = 2500;
  double damping_reuse = 750;
  sim::Duration damping_half_life = sim::Duration::seconds(2);

  // --- withdrawal-storm containment (disabled when zero) ---
  /// Minimum spacing between failure-update originations per port. The
  /// first update in an idle interval still leaves immediately (single
  /// failures keep today's latency); bursts inside the interval are batched
  /// into one VID_WITHDRAW / DEST_UNREACH / DEST_CLEAR each, with duplicate
  /// and self-cancelling entries absorbed.
  sim::Duration update_min_interval{};
};

struct MtpConfig {
  /// Tier in the folded-Clos (1 = ToR). This is the only per-device value
  /// the paper's Listing 2 configuration carries besides the rack port.
  std::uint32_t tier = 1;
  MtpTimers timers;
  std::uint8_t data_ttl = 16;

  // --- leaf-only ---
  /// Rack subnet; the VID is its third octet (192.168.11.0/24 -> 11).
  std::optional<ip::Ipv4Prefix> server_subnet;
  /// Host-facing ports (plain IP, no MTP), keyed by the host address.
  std::map<ip::Ipv4Addr, std::uint32_t> rack_hosts;

  // --- weighted multipath / flowlet switching ---
  /// Path-selection policy for DATA forwarding. kHrw (default) keeps the
  /// PR 2 equal-share behavior bit-for-bit; kWcmp weights candidates by
  /// advertised downstream capacity; kWcmpFlowlet adds flowlet-granularity
  /// rerouting with congestion feedback.
  util::PathSelect path_select = util::PathSelect::kHrw;
  /// Idle gap that closes a flowlet (kWcmpFlowlet only). Zero means "use
  /// the deploy-derived default" (a multiple of the fabric RTT).
  sim::Duration flowlet_gap{};
};

class MtpRouter : public net::Node {
 public:
  MtpRouter(net::SimContext& ctx, std::string name, MtpConfig config);

  void start() override;
  /// Reboot step: cancels every timer and wipes the VID table, exclusions,
  /// reliable-delivery bookkeeping, and advertised failure state. A later
  /// start() is a cold rejoin indistinguishable from first power-on.
  void stop() override;
  void handle_frame(net::Port& in, net::Frame frame) override;
  void on_port_down(net::Port& port) override;
  void on_port_up(net::Port& port) override;

  /// Graceful cost-out before a planned reboot: withdraws every child VID
  /// assigned upstream and declares every known root (plus the wildcard
  /// default route) unreachable downstream, then suppresses re-advertisement
  /// and join offers so neighbors do not pull this router back into trees
  /// during the grace period. The VID table is kept so in-flight downstream
  /// traffic still delivers while neighbors shift load away.
  void drain();
  [[nodiscard]] bool draining() const { return draining_; }

  [[nodiscard]] bool is_leaf() const { return config_.server_subnet.has_value(); }
  /// Leaf root VID (0 on spines).
  [[nodiscard]] std::uint16_t own_vid() const { return own_vid_; }
  [[nodiscard]] const MtpConfig& config() const { return config_; }
  [[nodiscard]] const VidTable& vid_table() const { return vid_table_; }
  [[nodiscard]] const ExclusionTable& exclusions() const { return exclusions_; }

  /// True once this router has joined every expected tree: a spine holds a
  /// VID for each of `roots`; a leaf counts its own root as joined.
  [[nodiscard]] bool joined_all(const std::vector<std::uint16_t>& roots) const;

  /// Neighbor liveness as seen by this router (tests/harness).
  [[nodiscard]] bool neighbor_alive(std::uint32_t port) const;

  /// Decayed flap-damping penalty on `port` at the current instant, and
  /// whether re-accept is currently suppressed by it (tests/bench).
  [[nodiscard]] double port_damping_penalty(std::uint32_t port) const;
  [[nodiscard]] bool port_damping_suppressed(std::uint32_t port) const;

  /// Operator view: one line per MTP port with tier, liveness, and the
  /// VIDs held/assigned across it.
  [[nodiscard]] std::string neighbor_summary() const;

  struct MtpStats {
    std::uint64_t hellos_sent = 0;
    std::uint64_t updates_sent = 0;        // withdraw/unreach/clear frames
    std::uint64_t update_bytes_raw = 0;    // L2 bytes, unpadded
    std::uint64_t update_bytes_padded = 0; // L2 bytes with 60B minimum
    std::uint64_t updates_received = 0;
    std::uint64_t data_forwarded = 0;
    std::uint64_t data_delivered = 0;
    std::uint64_t data_dropped_no_path = 0;
    std::uint64_t data_dropped_ttl = 0;
    std::uint64_t table_changes_local = 0;   // from own interface/dead-timer
    std::uint64_t table_changes_remote = 0;  // from received update messages
    std::uint64_t exclusion_changes = 0;
    std::uint64_t neighbors_lost = 0;
    std::uint64_t neighbors_accepted = 0;
    /// Slow-to-Accept streaks that completed while the port's flap-damping
    /// penalty was still above the reuse threshold (re-accept suppressed).
    std::uint64_t accepts_suppressed = 0;
    /// Failure-update originations deferred into a pending batch by the
    /// per-port min-interval rate limit.
    std::uint64_t updates_batched = 0;
    /// Duplicate or self-cancelling entries absorbed while pending (e.g. an
    /// UNREACH and its CLEAR meeting in the queue before either was sent).
    std::uint64_t updates_deduped = 0;
    /// Joins refused because another port already roots the same ToR VID
    /// (duplicate rack subnet misconfiguration).
    std::uint64_t duplicate_roots_rejected = 0;
    // --- hot-path counters (harness::report hot-path table) ---
    /// Forwards served without building a candidate vector: downward picks
    /// through the VID table's per-root index plus uplink-cache hits.
    std::uint64_t allocs_avoided = 0;
    /// Uplink candidate-set cache hits / (re)builds.
    std::uint64_t up_cache_hits = 0;
    std::uint64_t up_cache_misses = 0;
    // --- weighted multipath / flowlet switching ---
    /// Existing flows that re-drew their weighted choice after an idle gap
    /// (or candidate loss) and landed on a different egress.
    std::uint64_t flowlet_reroutes = 0;
    /// Per-port weight recomputations (up-cache weight rebuilds).
    std::uint64_t wcmp_weight_updates = 0;
  };
  [[nodiscard]] const MtpStats& mtp_stats() const { return stats_; }

  /// Fired when an update message (withdraw/unreach/clear) is sent or
  /// received — the convergence-quiescence signal.
  std::function<void(sim::Time)> on_update_activity;
  /// Fired on forwarding-state changes; `from_update` distinguishes remote
  /// (blast-radius) updates from local detection.
  std::function<void(sim::Time, bool from_update)> on_table_change;
  /// Fired when a neighbor is declared down — the detection instant of the
  /// gray-failure latency metric. `local_detect` is true for this router's
  /// own dead timer / interface event (vs a received update).
  std::function<void(sim::Time, std::uint32_t port, bool local_detect)>
      on_neighbor_down;
  /// Fired when a neighbor passes Slow-to-Accept and is (re-)accepted.
  std::function<void(sim::Time, std::uint32_t port)> on_neighbor_up;

  /// Uplinks currently eligible to carry traffic toward `dst_root` (alive,
  /// admin-up, not excluded) — the load-balancer candidate set. Public so
  /// the FabricAuditor can walk virtual probes through the same decision.
  /// Returns a reference into a per-root cache invalidated on liveness,
  /// interface, tier, and exclusion changes; the data path calls this per
  /// packet and must not allocate.
  [[nodiscard]] const std::vector<std::uint32_t>& eligible_up_ports(
      std::uint16_t dst_root) const;

  /// Test-only hook (auditor unit tests): plants a VID-table entry without
  /// the join handshake — e.g. a stale entry pointing at a dead port.
  void debug_add_vid_entry(const Vid& vid, std::uint32_t port) {
    vid_table_.add(vid, port);
  }

 private:
  struct PortState {
    bool mtp = true;  // rack ports carry plain IP
    std::optional<std::uint8_t> neighbor_tier;
    bool alive = false;
    int streak = 0;
    sim::Time last_rx{};
    sim::Time last_tx{};
    std::unique_ptr<sim::Timer> hello_timer;
    std::unique_ptr<sim::Timer> dead_timer;
    std::unique_ptr<sim::Timer> join_retry_timer;
    /// Tree bases requested on this port, awaiting offers (we are upstream).
    std::set<Vid> join_pending;
    /// Child VIDs we assigned to the neighbor on this port -> their base.
    std::map<Vid, Vid> assigned;
    /// Roots an *upstream* neighbor listed in its last ADVERTISE — a full
    /// statement of the trees it holds. The uplink load balancer prefers
    /// uplinks that advertised the destination root, so a cold-rejoining
    /// neighbor draws no tree traffic until it has actually re-joined.
    std::set<std::uint16_t> advertised_roots;
    /// Highest ADVERTISE seq seen from this neighbor; older statements are
    /// duplicates the link re-delivered late and must not prune anything.
    /// Reset when the neighbor dies so a rebooted sender restarts cleanly.
    std::uint32_t last_adv_seq = 0;

    // --- flap damping (lazy exponential decay) ---
    double damp_penalty = 0;
    sim::Time damp_updated{};
    bool damp_suppressed = false;

    // --- withdrawal-storm containment ---
    sim::Time last_update_tx{};
    std::unique_ptr<sim::Timer> update_flush_timer;
    std::set<Vid> pending_withdraw;
    std::set<std::uint16_t> pending_unreach;
    std::set<std::uint16_t> pending_clear;
  };

  struct Outstanding {
    std::uint32_t port;
    MtpMessage msg;
    int retries = 0;
    std::unique_ptr<sim::Timer> timer;
  };

  // --- frame I/O ---
  /// Takes the message by value: move a DataMsg in to keep its payload slab
  /// unique so encapsulation prepends in place (see mtp::encode).
  void send_msg(std::uint32_t port, MtpMessage msg);
  void send_reliable(std::uint32_t port, MtpMessage msg);
  void handle_msg(net::Port& in, MtpMessage& msg);

  // --- liveness ---
  void note_rx(net::Port& in);
  void neighbor_up(std::uint32_t port);
  void neighbor_down(std::uint32_t port, bool local_detect);
  void send_hello_if_idle(std::uint32_t port);
  /// Applies the half-life decay to the port's damping penalty in place.
  void decay_damping(PortState& s);
  /// True when the upstream neighbor on `port` holds a child of every tree
  /// we can offer (steady state: plain hellos only).
  [[nodiscard]] bool fully_assigned(std::uint32_t port) const;

  // --- tree establishment ---
  void send_advertise(std::uint32_t port);
  void handle_advertise(std::uint32_t port, const AdvertiseMsg& msg);
  void handle_join_request(std::uint32_t port, const JoinRequestMsg& msg);
  void handle_join_offer(std::uint32_t port, const JoinOfferMsg& msg);
  void retry_joins(std::uint32_t port);
  [[nodiscard]] std::vector<Vid> advertisable_vids() const;

  // --- failure updates ---
  /// Origination points route through these instead of send_reliable so a
  /// burst of failures inside `update_min_interval` collapses into one
  /// message per port per type (withdrawal-storm containment).
  void queue_withdraw(std::uint32_t port, const std::vector<Vid>& vids);
  void queue_reach_update(std::uint32_t port,
                          const std::vector<std::uint16_t>& roots,
                          bool unreach);
  void schedule_flush(std::uint32_t port);
  void flush_updates(std::uint32_t port);
  void handle_withdraw(std::uint32_t port, const VidWithdrawMsg& msg);
  void handle_dest_unreach(std::uint32_t port, const DestUnreachMsg& msg);
  void handle_dest_clear(std::uint32_t port, const DestClearMsg& msg);
  /// Withdraws children derived from `lost` upward, then refreshes
  /// reachability advertisements for the affected roots.
  void process_vid_loss(const std::vector<VidEntry>& lost, bool from_update);
  [[nodiscard]] bool reachable(std::uint16_t root) const;
  void update_reachability(const std::set<std::uint16_t>& roots);

  // --- data plane ---
  void handle_rack_frame(net::Port& in, net::Frame frame);
  void forward_data(DataMsg msg, std::optional<std::uint32_t> in_port);
  void deliver_to_rack(DataMsg msg);
  [[nodiscard]] static std::uint64_t data_flow_hash(const DataMsg& msg);

  // --- helpers ---
  [[nodiscard]] bool is_upstream(std::uint32_t port) const;
  [[nodiscard]] bool is_downstream(std::uint32_t port) const;
  [[nodiscard]] std::vector<std::uint32_t> alive_ports(bool upstream) const;
  /// Configured egress capacity of `p` in Mb/s (1.0 when unwired).
  [[nodiscard]] double port_mbps(std::uint32_t p) const;
  /// Congestion feedback multiplier for WCMP+flowlet picks: 0.05 while the
  /// egress data band is PFC-paused, 0.25 while its backlog exceeds the ECN
  /// threshold, 1.0 otherwise.
  [[nodiscard]] double congestion_discount(std::uint32_t p) const;
  [[nodiscard]] std::int64_t flowlet_gap_ns() const;
  struct UpCacheSlot;
  /// eligible_up_ports' engine: the validated (rebuilt if stale) cache slot
  /// for `dst_root`, ports and WCMP weights together.
  [[nodiscard]] const UpCacheSlot& up_slot(std::uint16_t dst_root) const;
  /// Flowlet-aware egress choice: keeps the flow's current port while the
  /// idle gap stays open and `still_valid(port)` holds; otherwise re-draws
  /// via `redraw()` and counts a reroute when an existing flow moved.
  template <typename Contains, typename Redraw>
  std::uint32_t flowlet_select(std::uint64_t flow_hash, Contains&& still_valid,
                               Redraw&& redraw);
  PortState& pstate(std::uint32_t port) { return ports_state_[port - 1]; }
  [[nodiscard]] const PortState& pstate(std::uint32_t port) const {
    return ports_state_[port - 1];
  }
  void note_update_stats(const net::Frame& frame);

  /// Invalidates every cached uplink candidate set; called whenever anything
  /// that feeds eligibility (liveness, admin state, neighbor tier,
  /// exclusions) changes. O(1): slots validate themselves lazily against the
  /// bumped epoch, and their vectors keep their capacity across rebuilds —
  /// convergence churn no longer frees and reallocates every candidate set.
  void invalidate_up_cache() { ++up_cache_epoch_; }

  MtpConfig config_;
  std::uint16_t own_vid_ = 0;
  /// False until start() and after stop(): interface events and frames that
  /// arrive while powered off (e.g. a deferred PoD being wired dark) must
  /// not touch per-port state that does not exist yet.
  bool started_ = false;
  bool draining_ = false;
  VidTable vid_table_;
  ExclusionTable exclusions_;
  /// Roots we have told downstream neighbors we cannot reach.
  std::set<std::uint16_t> advertised_unreach_;
  std::vector<PortState> ports_state_;
  std::unordered_map<std::uint16_t, Outstanding> outstanding_;
  std::uint16_t next_msg_id_ = 1;
  /// Statement counter stamped into every ADVERTISE (shared across ports;
  /// still strictly increasing per port, which is all receivers need).
  std::uint32_t adv_seq_ = 0;
  /// Eligible-uplink sets as a dense epoch-validated slab indexed by
  /// destination root (lazy, see eligible_up_ports); mutable because
  /// lookups are logically const. A slot is valid iff its epoch matches
  /// up_cache_epoch_, so invalidation is one counter bump and a lookup is
  /// one indexed load — no hash, no rehash churn, no allocation on the
  /// steady-state path (roots are ToR VIDs: small, dense integers).
  struct UpCacheSlot {
    std::uint64_t epoch = 0;  // valid iff == up_cache_epoch_ (0 = never)
    std::vector<std::uint32_t> ports;
    /// WCMP weights parallel to `ports` (advertised downstream capacity:
    /// link Mb/s x trees the neighbor advertises). Rebuilt with the ports on
    /// every epoch miss; left empty under kHrw so the default mode pays
    /// nothing.
    std::vector<double> weights;
  };
  mutable std::vector<UpCacheSlot> up_cache_;
  mutable std::uint64_t up_cache_epoch_ = 1;
  mutable MtpStats stats_;
  /// Flowlet table in the owning shard's StatsArena; non-null only under
  /// kWcmpFlowlet.
  net::FlowletTable* flowlets_ = nullptr;
};

}  // namespace mrmtp::mtp
