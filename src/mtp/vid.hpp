// Virtual IDs (VIDs) — the heart of MR-MTP.
//
// A VID is a label path rooted at a ToR: the ToR's VID is one label derived
// from its rack subnet's third octet (192.168.11.0/24 -> "11"); each tier up
// appends the port number on which the join request arrived ("11" -> "11.1"
// -> "11.1.2"). A VID therefore *is* a loop-free route back to its root ToR,
// which is why MR-MTP needs no routing protocol and no spine addressing
// (paper §III.B).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/byte_io.hpp"

namespace mrmtp::mtp {

class Vid {
 public:
  Vid() = default;
  explicit Vid(std::uint16_t root) : labels_{root} {}
  explicit Vid(std::vector<std::uint16_t> labels) : labels_(std::move(labels)) {}

  /// Parses dotted form "11.1.2"; throws util::CodecError on bad input.
  static Vid parse(std::string_view text);

  [[nodiscard]] bool empty() const { return labels_.empty(); }
  /// Number of labels; a ToR root VID has depth 1.
  [[nodiscard]] std::size_t depth() const { return labels_.size(); }
  /// The ToR this VID's tree is rooted at.
  [[nodiscard]] std::uint16_t root() const { return labels_.front(); }
  [[nodiscard]] std::uint16_t label(std::size_t i) const { return labels_[i]; }
  [[nodiscard]] const std::vector<std::uint16_t>& labels() const { return labels_; }

  /// The VID an assigner derives for a joiner: itself plus the port number
  /// the join request arrived on.
  [[nodiscard]] Vid child(std::uint16_t port) const {
    std::vector<std::uint16_t> l = labels_;
    l.push_back(port);
    return Vid(std::move(l));
  }

  /// Drops the last label ("11.1.2" -> "11.1"); parent of a root is empty.
  [[nodiscard]] Vid parent() const {
    if (labels_.size() <= 1) return Vid();
    return Vid(std::vector<std::uint16_t>(labels_.begin(), labels_.end() - 1));
  }

  /// True if this VID lies on the path from the root to `other` (inclusive).
  [[nodiscard]] bool is_prefix_of(const Vid& other) const {
    if (labels_.size() > other.labels_.size()) return false;
    for (std::size_t i = 0; i < labels_.size(); ++i) {
      if (labels_[i] != other.labels_[i]) return false;
    }
    return true;
  }

  [[nodiscard]] std::string str() const;

  /// Wire form: 1-byte label count, then 2 bytes per label. Writes through
  /// any writer with the BufWriter method surface (util::BufWriter or the
  /// pooled net::BufferWriter).
  template <typename Writer>
  void serialize(Writer& w) const {
    w.u8(static_cast<std::uint8_t>(labels_.size()));
    for (std::uint16_t label : labels_) w.u16(label);
  }
  static Vid deserialize(util::BufReader& r);
  [[nodiscard]] std::size_t wire_size() const { return 1 + 2 * labels_.size(); }

  auto operator<=>(const Vid&) const = default;

 private:
  std::vector<std::uint16_t> labels_;
};

}  // namespace mrmtp::mtp

template <>
struct std::hash<mrmtp::mtp::Vid> {
  std::size_t operator()(const mrmtp::mtp::Vid& v) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (std::uint16_t label : v.labels()) {
      h = (h ^ label) * 1099511628211ull;
    }
    return h;
  }
};
