#include "mtp/vid.hpp"

#include "util/strings.hpp"

namespace mrmtp::mtp {

Vid Vid::parse(std::string_view text) {
  std::vector<std::uint16_t> labels;
  for (const auto& part : util::split(text, '.')) {
    std::uint64_t v = 0;
    if (!util::parse_u64(part, v) || v > 0xffff) {
      throw util::CodecError("bad VID: " + std::string(text));
    }
    labels.push_back(static_cast<std::uint16_t>(v));
  }
  if (labels.empty()) throw util::CodecError("empty VID");
  return Vid(std::move(labels));
}

std::string Vid::str() const {
  std::string out;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (i != 0) out.push_back('.');
    out += std::to_string(labels_[i]);
  }
  return out;
}

Vid Vid::deserialize(util::BufReader& r) {
  std::uint8_t count = r.u8();
  if (count == 0) throw util::CodecError("VID: zero labels");
  std::vector<std::uint16_t> labels;
  labels.reserve(count);
  for (int i = 0; i < count; ++i) labels.push_back(r.u16());
  return Vid(std::move(labels));
}

}  // namespace mrmtp::mtp
