#include "transport/l3_node.hpp"

#include "net/link.hpp"
#include "net/switch_buffer.hpp"

namespace mrmtp::transport {

void L3Node::enable_path_select(util::PathSelect mode,
                                sim::Duration flowlet_gap) {
  path_select_ = mode;
  if (flowlet_gap.ns() > 0) flowlet_gap_ns_ = flowlet_gap.ns();
  if (mode == util::PathSelect::kWcmpFlowlet && flowlets_ == nullptr) {
    flowlets_ = &ctx_.stats.alloc_flowlets();
  }
}

void L3Node::configure_port(std::uint32_t port_number, ip::Ipv4Addr addr,
                            std::uint8_t prefix_len) {
  port_addrs_[port_number] = addr;
  routes_.add_connected(ip::Ipv4Prefix(addr, prefix_len), port_number, addr);
}

std::optional<ip::Ipv4Addr> L3Node::port_addr(std::uint32_t port_number) const {
  auto it = port_addrs_.find(port_number);
  if (it == port_addrs_.end()) return std::nullopt;
  return it->second;
}

bool L3Node::is_local_addr(ip::Ipv4Addr addr) const {
  for (const auto& [port, a] : port_addrs_) {
    if (a == addr) return true;
  }
  return false;
}

void L3Node::send_udp(ip::Ipv4Addr src, ip::Ipv4Addr dst,
                      std::uint16_t src_port, std::uint16_t dst_port,
                      net::Buffer payload, net::TrafficClass tc) {
  UdpHeader h{src_port, dst_port};
  send_ip(src, dst, ip::IpProto::kUdp, h.encapsulate(std::move(payload)), tc);
}

void L3Node::send_ip(ip::Ipv4Addr src, ip::Ipv4Addr dst, ip::IpProto proto,
                     net::Buffer payload, net::TrafficClass traffic_class) {
  ip::Ipv4Header header;
  header.src = src;
  header.dst = dst;
  header.protocol = proto;
  header.identification = next_ip_id_++;
  route_packet(header, header.encapsulate(std::move(payload)), traffic_class,
               /*from_self=*/true);
}

void L3Node::handle_frame(net::Port& in, net::Frame frame) {
  if (frame.ethertype != net::EtherType::kIpv4) return;  // not ours
  (void)in;
  std::span<const std::uint8_t> payload;
  ip::Ipv4Header header;
  try {
    header = ip::Ipv4Header::parse(frame.payload, payload);
  } catch (const util::CodecError&) {
    return;  // malformed; counted nowhere, as a NIC would discard it
  }
  net::Buffer packet = std::move(frame.payload);
  // Trim any bytes past total_length so a forwarded packet carries exactly
  // what re-serialization used to (none occur on this fabric's links).
  const std::size_t total = header.header_length() + payload.size();
  if (packet.size() != total) packet = packet.slice(0, total);
  route_packet(header, std::move(packet), frame.traffic_class,
               /*from_self=*/false);
}

void L3Node::route_packet(const ip::Ipv4Header& header, net::Buffer packet,
                          net::TrafficClass tc, bool from_self) {
  const std::span<const std::uint8_t> payload =
      packet.span().subspan(header.header_length());

  if (is_local_addr(header.dst)) {
    ++fwd_stats_.delivered_local;
    // ECN CE applied by a finite-buffer switch en route; exposed to TCP
    // directly and to UDP handlers via last_rx_ce() for the duration of the
    // (synchronous) dispatch below.
    last_rx_ce_ = (header.tos & 0x03) == 0x03;
    switch (header.protocol) {
      case ip::IpProto::kTcp:
        tcp_.handle_packet(header.src, header.dst, payload, last_rx_ce_);
        return;
      case ip::IpProto::kUdp: {
        std::span<const std::uint8_t> udp_payload;
        UdpHeader uh = UdpHeader::parse(payload, udp_payload);
        auto it = udp_handlers_.find(uh.dst_port);
        if (it != udp_handlers_.end()) {
          it->second(header.src, header.dst, uh, udp_payload);
        }
        return;
      }
    }
    deliver_local(header, payload, tc);
    return;
  }

  if (!from_self && header.ttl <= 1) {
    ++fwd_stats_.dropped_ttl;
    return;
  }

  const ip::NextHop* nh = select_next_hop(header, payload);
  if (nh == nullptr) {
    ++fwd_stats_.dropped_no_route;
    return;
  }
  if (!from_self) {
    // Transit fast path: patch TTL + checksum in the buffer we received and
    // forward the same bytes — no parse-and-reserialize per hop. The patch
    // copies first only if a pcap tap still shares the slab.
    ip::Ipv4Header::decrement_ttl(packet);
    ++fwd_stats_.forwarded;
  }
  emit_frame(nh->port, std::move(packet), tc);
}

const ip::NextHop* L3Node::select_next_hop(
    const ip::Ipv4Header& header, std::span<const std::uint8_t> payload) {
  const std::uint64_t h = flow_hash(header, payload);
  if (path_select_ == util::PathSelect::kHrw) {
    return routes_.select(header.dst, h);
  }
  const ip::Route* r = routes_.lookup_cached(header.dst);
  if (r == nullptr || r->nexthops.empty()) return nullptr;
  const auto& nhs = r->nexthops;
  auto key_of = [&](std::size_t i) {
    return (static_cast<std::uint64_t>(nhs[i].via.value()) << 32) | nhs[i].port;
  };
  auto redraw = [&]() -> std::size_t {
    auto weight_of = [&](std::size_t i) {
      double w = static_cast<double>(nhs[i].weight);
      if (path_select_ == util::PathSelect::kWcmpFlowlet) {
        w *= egress_discount(nhs[i].port);
      }
      return w;
    };
    return util::hrw_pick_weighted(h, nhs.size(), key_of, weight_of);
  };
  if (path_select_ == util::PathSelect::kWcmp || flowlets_ == nullptr) {
    return &nhs[redraw()];
  }
  const std::uint64_t key = util::mix64(h);
  const std::int64_t now_ns = ctx_.now().ns();
  net::FlowletTable::Slot& s = flowlets_->probe(key);
  if (s.key == key && s.last_ns >= 0 &&
      now_ns - s.last_ns <= flowlet_gap_ns_) {
    for (const ip::NextHop& cand : nhs) {
      if (cand.port == s.port) {  // flowlet still open and port still valid
        s.last_ns = now_ns;
        return &cand;
      }
    }
  }
  const std::size_t pick = redraw();
  const std::uint32_t chosen = nhs[pick].port;
  if (s.key == key && s.last_ns >= 0 && chosen != s.port) {
    ++fwd_stats_.flowlet_reroutes;
    const net::Port& out = port(chosen);
    if (out.connected()) out.link()->note_flowlet_reroute(out);
  }
  s.key = key;
  s.last_ns = now_ns;
  s.port = chosen;
  return &nhs[pick];
}

double L3Node::egress_discount(std::uint32_t port_number) const {
  const net::Port& out = port(port_number);
  net::Link* l = out.link();
  if (l == nullptr) return 1.0;
  const auto dir = l->direction_from(out);
  if (l->data_paused(dir)) return 0.05;
  std::uint64_t threshold = 64 * 1024;  // ECN default when no SwitchBuffer
  if (const net::SwitchBuffer* sb = switch_buffer(); sb != nullptr) {
    threshold = sb->params().ecn_data_threshold;
  }
  if (l->queued_data_bytes(dir) > threshold) return 0.25;
  return 1.0;
}

void L3Node::deliver_local(const ip::Ipv4Header& header,
                           std::span<const std::uint8_t> payload,
                           net::TrafficClass tc) {
  (void)header;
  (void)payload;
  (void)tc;
}

std::uint64_t L3Node::flow_hash(const ip::Ipv4Header& header,
                                std::span<const std::uint8_t> payload) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  auto mix = [&h](std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  for (int i = 0; i < 4; ++i) mix(header.src.octet(i));
  for (int i = 0; i < 4; ++i) mix(header.dst.octet(i));
  mix(static_cast<std::uint8_t>(header.protocol));
  for (std::size_t i = 0; i < 4 && i < payload.size(); ++i) mix(payload[i]);
  return h;
}

void L3Node::emit_frame(std::uint32_t port_number, net::Buffer packet,
                        net::TrafficClass tc) {
  net::Port& out = port(port_number);
  if (!out.admin_up() || !out.connected()) {
    ++fwd_stats_.dropped_iface_down;
    return;
  }
  net::Frame frame;
  frame.dst = net::MacAddr::broadcast();  // p2p links; no ARP (paper §VII.F)
  frame.src = out.mac();
  frame.ethertype = net::EtherType::kIpv4;
  frame.payload = std::move(packet);
  frame.traffic_class = tc;
  transmit(out, std::move(frame));
}

}  // namespace mrmtp::transport
