#include "transport/l3_node.hpp"

namespace mrmtp::transport {

void L3Node::configure_port(std::uint32_t port_number, ip::Ipv4Addr addr,
                            std::uint8_t prefix_len) {
  port_addrs_[port_number] = addr;
  routes_.add_connected(ip::Ipv4Prefix(addr, prefix_len), port_number, addr);
}

std::optional<ip::Ipv4Addr> L3Node::port_addr(std::uint32_t port_number) const {
  auto it = port_addrs_.find(port_number);
  if (it == port_addrs_.end()) return std::nullopt;
  return it->second;
}

bool L3Node::is_local_addr(ip::Ipv4Addr addr) const {
  for (const auto& [port, a] : port_addrs_) {
    if (a == addr) return true;
  }
  return false;
}

void L3Node::send_udp(ip::Ipv4Addr src, ip::Ipv4Addr dst,
                      std::uint16_t src_port, std::uint16_t dst_port,
                      net::Buffer payload, net::TrafficClass tc) {
  UdpHeader h{src_port, dst_port};
  send_ip(src, dst, ip::IpProto::kUdp, h.encapsulate(std::move(payload)), tc);
}

void L3Node::send_ip(ip::Ipv4Addr src, ip::Ipv4Addr dst, ip::IpProto proto,
                     net::Buffer payload, net::TrafficClass traffic_class) {
  ip::Ipv4Header header;
  header.src = src;
  header.dst = dst;
  header.protocol = proto;
  header.identification = next_ip_id_++;
  route_packet(header, header.encapsulate(std::move(payload)), traffic_class,
               /*from_self=*/true);
}

void L3Node::handle_frame(net::Port& in, net::Frame frame) {
  if (frame.ethertype != net::EtherType::kIpv4) return;  // not ours
  (void)in;
  std::span<const std::uint8_t> payload;
  ip::Ipv4Header header;
  try {
    header = ip::Ipv4Header::parse(frame.payload, payload);
  } catch (const util::CodecError&) {
    return;  // malformed; counted nowhere, as a NIC would discard it
  }
  net::Buffer packet = std::move(frame.payload);
  // Trim any bytes past total_length so a forwarded packet carries exactly
  // what re-serialization used to (none occur on this fabric's links).
  const std::size_t total = header.header_length() + payload.size();
  if (packet.size() != total) packet = packet.slice(0, total);
  route_packet(header, std::move(packet), frame.traffic_class,
               /*from_self=*/false);
}

void L3Node::route_packet(const ip::Ipv4Header& header, net::Buffer packet,
                          net::TrafficClass tc, bool from_self) {
  const std::span<const std::uint8_t> payload =
      packet.span().subspan(header.header_length());

  if (is_local_addr(header.dst)) {
    ++fwd_stats_.delivered_local;
    // ECN CE applied by a finite-buffer switch en route; exposed to TCP
    // directly and to UDP handlers via last_rx_ce() for the duration of the
    // (synchronous) dispatch below.
    last_rx_ce_ = (header.tos & 0x03) == 0x03;
    switch (header.protocol) {
      case ip::IpProto::kTcp:
        tcp_.handle_packet(header.src, header.dst, payload, last_rx_ce_);
        return;
      case ip::IpProto::kUdp: {
        std::span<const std::uint8_t> udp_payload;
        UdpHeader uh = UdpHeader::parse(payload, udp_payload);
        auto it = udp_handlers_.find(uh.dst_port);
        if (it != udp_handlers_.end()) {
          it->second(header.src, header.dst, uh, udp_payload);
        }
        return;
      }
    }
    deliver_local(header, payload, tc);
    return;
  }

  if (!from_self && header.ttl <= 1) {
    ++fwd_stats_.dropped_ttl;
    return;
  }

  const ip::NextHop* nh = routes_.select(header.dst, flow_hash(header, payload));
  if (nh == nullptr) {
    ++fwd_stats_.dropped_no_route;
    return;
  }
  if (!from_self) {
    // Transit fast path: patch TTL + checksum in the buffer we received and
    // forward the same bytes — no parse-and-reserialize per hop. The patch
    // copies first only if a pcap tap still shares the slab.
    ip::Ipv4Header::decrement_ttl(packet);
    ++fwd_stats_.forwarded;
  }
  emit_frame(nh->port, std::move(packet), tc);
}

void L3Node::deliver_local(const ip::Ipv4Header& header,
                           std::span<const std::uint8_t> payload,
                           net::TrafficClass tc) {
  (void)header;
  (void)payload;
  (void)tc;
}

std::uint64_t L3Node::flow_hash(const ip::Ipv4Header& header,
                                std::span<const std::uint8_t> payload) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  auto mix = [&h](std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  for (int i = 0; i < 4; ++i) mix(header.src.octet(i));
  for (int i = 0; i < 4; ++i) mix(header.dst.octet(i));
  mix(static_cast<std::uint8_t>(header.protocol));
  for (std::size_t i = 0; i < 4 && i < payload.size(); ++i) mix(payload[i]);
  return h;
}

void L3Node::emit_frame(std::uint32_t port_number, net::Buffer packet,
                        net::TrafficClass tc) {
  net::Port& out = port(port_number);
  if (!out.admin_up() || !out.connected()) {
    ++fwd_stats_.dropped_iface_down;
    return;
  }
  net::Frame frame;
  frame.dst = net::MacAddr::broadcast();  // p2p links; no ARP (paper §VII.F)
  frame.src = out.mac();
  frame.ethertype = net::EtherType::kIpv4;
  frame.payload = std::move(packet);
  frame.traffic_class = tc;
  transmit(out, std::move(frame));
}

}  // namespace mrmtp::transport
