#include "transport/tcp_lite.hpp"

#include <algorithm>
#include <cassert>

namespace mrmtp::transport {

namespace {

constexpr std::uint8_t kFlagFin = 0x01;
constexpr std::uint8_t kFlagSyn = 0x02;
constexpr std::uint8_t kFlagRst = 0x04;
constexpr std::uint8_t kFlagAck = 0x10;
constexpr std::uint8_t kFlagEce = 0x40;
constexpr std::uint8_t kFlagCwr = 0x80;

constexpr std::uint32_t kInitialSeq = 1000;

/// Signed sequence-space comparison (a - b).
std::int32_t seq_diff(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b);
}

/// Shard-invariant per-connection jitter seed from the 4-tuple.
std::uint64_t tuple_seed(ip::Ipv4Addr local, std::uint16_t lport,
                         ip::Ipv4Addr remote, std::uint16_t rport) {
  std::uint64_t s = (static_cast<std::uint64_t>(local.value()) << 32) |
                    remote.value();
  return s ^ ((static_cast<std::uint64_t>(lport) << 16) | rport) * 0x9e3779b9ull;
}

}  // namespace

net::Buffer TcpSegment::serialize() const {
  net::BufferWriter w(kHeaderSize + payload.size());
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  std::uint8_t flag_bits = 0;
  if (flags.fin) flag_bits |= kFlagFin;
  if (flags.syn) flag_bits |= kFlagSyn;
  if (flags.rst) flag_bits |= kFlagRst;
  if (flags.ack) flag_bits |= kFlagAck;
  if (flags.ece) flag_bits |= kFlagEce;
  if (flags.cwr) flag_bits |= kFlagCwr;
  w.u8(0x80);  // data offset = 8 32-bit words (32 bytes)
  w.u8(flag_bits);
  w.u16(0xffff);  // window (flow control not modeled)
  w.u16(0);       // checksum (links are reliable unless impaired)
  w.u16(0);       // urgent
  // Timestamp option as real stacks send on every segment: NOP NOP TS(10).
  w.u8(1);
  w.u8(1);
  w.u8(8);
  w.u8(10);
  w.u32(0);  // TSval (not used by the simulation)
  w.u32(0);  // TSecr
  w.bytes(payload);
  return w.take();
}

TcpSegment TcpSegment::parse(std::span<const std::uint8_t> data) {
  util::BufReader r(data);
  TcpSegment s;
  s.src_port = r.u16();
  s.dst_port = r.u16();
  s.seq = r.u32();
  s.ack = r.u32();
  std::uint8_t offset = r.u8();
  std::uint8_t flag_bits = r.u8();
  r.u16();  // window
  r.u16();  // checksum
  r.u16();  // urgent
  std::size_t header_len = static_cast<std::size_t>(offset >> 4) * 4;
  if (header_len < 20 || header_len > data.size()) {
    throw util::CodecError("TCP: bad data offset");
  }
  r.skip(header_len - 20);  // options
  s.flags.fin = (flag_bits & kFlagFin) != 0;
  s.flags.syn = (flag_bits & kFlagSyn) != 0;
  s.flags.rst = (flag_bits & kFlagRst) != 0;
  s.flags.ack = (flag_bits & kFlagAck) != 0;
  s.flags.ece = (flag_bits & kFlagEce) != 0;
  s.flags.cwr = (flag_bits & kFlagCwr) != 0;
  auto rest = r.rest();
  s.payload.assign(rest.begin(), rest.end());
  return s;
}

TcpConnection::TcpConnection(IpSender& ip, ip::Ipv4Addr local,
                             std::uint16_t local_port, ip::Ipv4Addr remote,
                             std::uint16_t remote_port, Callbacks callbacks,
                             TcpTuning tuning)
    : ip_(ip),
      local_(local),
      local_port_(local_port),
      remote_(remote),
      remote_port_(remote_port),
      callbacks_(std::move(callbacks)),
      tuning_(tuning),
      rto_timer_(ip.sim().sched, [this] { retransmit(); }),
      ack_timer_(ip.sim().sched, [this] {
        if (ack_pending_ && state_ == State::kEstablished) {
          ack_pending_ = false;
          emit({.ack = true}, snd_nxt_, {}, net::TrafficClass::kTcpAck);
        }
      }),
      jitter_rng_(tuple_seed(local, local_port, remote, remote_port)),
      cwnd_(static_cast<std::uint64_t>(tuning.init_cwnd_segments) *
            tuning.mss),
      ssthresh_(cwnd_) {}

TcpConnection::~TcpConnection() = default;

void TcpConnection::connect() {
  state_ = State::kSynSent;
  snd_una_ = kInitialSeq;
  snd_nxt_ = kInitialSeq + 1;
  emit({.syn = true}, kInitialSeq, {}, net::TrafficClass::kTcpAck);
  arm_rto();
}

void TcpConnection::listen() { state_ = State::kListen; }

void TcpConnection::send(std::vector<std::uint8_t> data,
                         net::TrafficClass traffic_class) {
  if (data.empty() || state_ == State::kClosed) return;
  send_queue_.push_back(SendChunk{std::move(data), traffic_class, 0});
  if (state_ == State::kEstablished) try_send_data();
}

void TcpConnection::reset() {
  if (state_ == State::kClosed) return;
  emit({.ack = true, .rst = true}, snd_nxt_, {}, net::TrafficClass::kTcpAck);
  rto_timer_.stop();
  ack_timer_.stop();
  state_ = State::kClosed;
}

void TcpConnection::handle_segment(const TcpSegment& seg, bool ce) {
  if (seg.flags.rst) {
    if (state_ != State::kClosed) fail_connection();
    return;
  }

  switch (state_) {
    case State::kClosed:
      return;

    case State::kListen:
      if (seg.flags.syn && !seg.flags.ack) {
        rcv_nxt_ = seg.seq + 1;
        snd_una_ = kInitialSeq;
        snd_nxt_ = kInitialSeq + 1;
        state_ = State::kSynReceived;
        emit({.syn = true, .ack = true}, kInitialSeq, {},
             net::TrafficClass::kTcpAck);
        arm_rto();
      }
      return;

    case State::kSynSent:
      if (seg.flags.syn && seg.flags.ack && seg.ack == snd_nxt_) {
        rcv_nxt_ = seg.seq + 1;
        snd_una_ = seg.ack;
        state_ = State::kEstablished;
        retransmit_count_ = 0;
        rto_timer_.stop();
        emit({.ack = true}, snd_nxt_, {}, net::TrafficClass::kTcpAck);
        if (callbacks_.on_established) callbacks_.on_established();
        try_send_data();
      }
      return;

    case State::kSynReceived:
      if (seg.flags.ack && seg.ack == snd_nxt_) {
        snd_una_ = seg.ack;
        state_ = State::kEstablished;
        retransmit_count_ = 0;
        rto_timer_.stop();
        if (callbacks_.on_established) callbacks_.on_established();
        try_send_data();
      }
      return;

    case State::kEstablished:
      break;
  }

  // --- Established ---
  if (seg.flags.ack && seg.ack == snd_una_ && snd_una_ != snd_nxt_ &&
      seg.payload.empty()) {
    // Duplicate ACK while data is in flight: the receiver is missing the
    // head segment. Three of them trigger fast retransmit (RFC 5681-style)
    // without waiting for the RTO.
    if (++dup_acks_ == 3) {
      dup_acks_ = 0;
      in_recovery_ = true;
      recover_point_ = snd_nxt_;
      // Classic multiplicative decrease on the loss signal.
      ssthresh_ = std::max<std::uint64_t>(cwnd_ / 2, 2 * tuning_.mss);
      cwnd_ = ssthresh_;
      resend_head();
      arm_rto();
    }
  }
  if (seg.flags.ack && seq_diff(seg.ack, snd_una_) > 0 &&
      seq_diff(seg.ack, snd_nxt_) <= 0) {
    std::uint32_t acked = seg.ack - snd_una_;
    snd_una_ = seg.ack;
    retransmit_count_ = 0;
    dup_acks_ = 0;
    // Congestion-window growth plus the DCTCP observation window: track the
    // ECE-acked byte fraction, and once per ~RTT (when the window end is
    // acked) fold it into alpha and apply the fractional reduction.
    total_acked_ += acked;
    if (seg.flags.ece && tuning_.ecn_enabled) ce_acked_ += acked;
    if (cwnd_ < ssthresh_) {
      cwnd_ += std::min<std::uint64_t>(acked, tuning_.mss);
    } else {
      cwnd_ += std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(tuning_.mss) * tuning_.mss / cwnd_);
    }
    if (seq_diff(seg.ack, dctcp_window_end_) >= 0) {
      if (tuning_.ecn_enabled && total_acked_ > 0) {
        double f = static_cast<double>(ce_acked_) /
                   static_cast<double>(total_acked_);
        dctcp_alpha_ =
            (1.0 - tuning_.dctcp_g) * dctcp_alpha_ + tuning_.dctcp_g * f;
        if (ce_acked_ > 0) {
          auto cut = static_cast<std::uint64_t>(
              static_cast<double>(cwnd_) * (1.0 - dctcp_alpha_ / 2.0));
          cwnd_ = std::max<std::uint64_t>(tuning_.mss, cut);
          ssthresh_ = cwnd_;
          cwr_pending_ = true;
        }
      }
      ce_acked_ = 0;
      total_acked_ = 0;
      dctcp_window_end_ = snd_nxt_;
    }
    // Release acknowledged bytes from the front of the send queue.
    std::uint32_t to_drop = acked;
    while (to_drop > 0 && !send_queue_.empty()) {
      SendChunk& front = send_queue_.front();
      std::uint32_t avail = static_cast<std::uint32_t>(front.data.size());
      if (avail <= to_drop) {
        to_drop -= avail;
        send_queue_.pop_front();
      } else {
        front.data.erase(front.data.begin(),
                         front.data.begin() + static_cast<long>(to_drop));
        front.consumed = front.consumed > to_drop ? front.consumed - to_drop : 0;
        to_drop = 0;
      }
    }
    if (in_recovery_) {
      if (seq_diff(snd_una_, recover_point_) < 0) {
        // Partial ACK: the next head segment was also lost; resend it (the
        // acked bytes are already popped, so the queue front is the head).
        resend_head();
      } else {
        in_recovery_ = false;
      }
    }
    if (snd_una_ == snd_nxt_) {
      rto_timer_.stop();
    } else {
      arm_rto();
    }
  }

  if (!seg.payload.empty()) {
    // DCTCP echo: every ACK from here on reports the CE state of the most
    // recent data segment until it changes.
    if (tuning_.ecn_enabled) ce_to_echo_ = ce;
    if (seg.seq == rcv_nxt_) {
      rcv_nxt_ += static_cast<std::uint32_t>(seg.payload.size());
      schedule_ack();
      if (callbacks_.on_data) {
        callbacks_.on_data(std::span<const std::uint8_t>(seg.payload));
      }
      if (state_ == State::kClosed) return;  // callback tore us down
    } else {
      // Duplicate or out-of-order: drop and ACK immediately so the sender's
      // go-back-N recovers.
      ack_pending_ = false;
      ack_timer_.stop();
      emit({.ack = true}, snd_nxt_, {}, net::TrafficClass::kTcpAck);
    }
  }

  if (seg.flags.fin) {
    rcv_nxt_ = seg.seq + 1;
    emit({.ack = true}, snd_nxt_, {}, net::TrafficClass::kTcpAck);
    fail_connection();
    return;
  }

  try_send_data();
}

void TcpConnection::emit(TcpFlags flags, std::uint32_t seq,
                         std::vector<std::uint8_t> payload,
                         net::TrafficClass tc) {
  if (flags.ack && ce_to_echo_) flags.ece = true;
  if (!payload.empty() && cwr_pending_) {
    flags.cwr = true;
    cwr_pending_ = false;
  }
  TcpSegment seg;
  seg.src_port = local_port_;
  seg.dst_port = remote_port_;
  seg.seq = seq;
  seg.ack = flags.ack ? rcv_nxt_ : 0;
  seg.flags = flags;
  seg.payload = std::move(payload);
  ip_.send_ip(local_, remote_, ip::IpProto::kTcp, seg.serialize(), tc);
}

void TcpConnection::try_send_data() {
  if (state_ != State::kEstablished) return;
  // Bytes of the queue already in flight (sent but unacked).
  std::uint32_t in_flight = snd_nxt_ - snd_una_;

  while (in_flight < cwnd_) {
    // Locate the first unsent byte: position `in_flight` within the queue.
    std::uint32_t offset = in_flight;
    std::vector<std::uint8_t> segment_data;
    net::TrafficClass tc = net::TrafficClass::kOther;
    bool first = true;
    for (const SendChunk& chunk : send_queue_) {
      std::uint32_t sz = static_cast<std::uint32_t>(chunk.data.size());
      if (offset >= sz) {
        offset -= sz;
        continue;
      }
      if (first) {
        tc = chunk.traffic_class;
        first = false;
      }
      std::size_t take = std::min<std::size_t>(sz - offset,
                                               tuning_.mss - segment_data.size());
      segment_data.insert(segment_data.end(),
                          chunk.data.begin() + static_cast<long>(offset),
                          chunk.data.begin() + static_cast<long>(offset + take));
      offset = 0;
      if (segment_data.size() >= tuning_.mss) break;
    }
    if (segment_data.empty()) break;

    // Piggyback any pending ACK.
    ack_pending_ = false;
    ack_timer_.stop();
    std::uint32_t seg_len = static_cast<std::uint32_t>(segment_data.size());
    emit({.ack = true}, snd_nxt_, std::move(segment_data), tc);
    snd_nxt_ += seg_len;
    in_flight += seg_len;
  }

  if (snd_una_ != snd_nxt_ && !rto_timer_.running()) arm_rto();
}

void TcpConnection::retransmit() {
  if (state_ == State::kClosed) return;
  if (retransmit_count_ >= tuning_.max_retransmits) {
    fail_connection();
    return;
  }
  ++retransmit_count_;

  if (state_ == State::kSynSent) {
    emit({.syn = true}, snd_una_, {}, net::TrafficClass::kTcpAck);
  } else if (state_ == State::kSynReceived) {
    emit({.syn = true, .ack = true}, snd_una_, {}, net::TrafficClass::kTcpAck);
  } else {
    // RTO = heavy congestion signal: collapse to one segment.
    ssthresh_ = std::max<std::uint64_t>(cwnd_ / 2, 2 * tuning_.mss);
    cwnd_ = tuning_.mss;
    resend_head();
  }
  arm_rto();
}

void TcpConnection::resend_head() {
  // Resend one MSS starting at snd_una_ (go-back-N head).
  std::vector<std::uint8_t> segment_data;
  net::TrafficClass tc = net::TrafficClass::kOther;
  bool first = true;
  for (const SendChunk& chunk : send_queue_) {
    if (first) {
      tc = chunk.traffic_class;
      first = false;
    }
    std::size_t take =
        std::min<std::size_t>(chunk.data.size(), tuning_.mss - segment_data.size());
    segment_data.insert(segment_data.end(), chunk.data.begin(),
                        chunk.data.begin() + static_cast<long>(take));
    if (segment_data.size() >= tuning_.mss) break;
  }
  std::uint32_t max_resend = snd_nxt_ - snd_una_;
  if (segment_data.size() > max_resend) segment_data.resize(max_resend);
  if (!segment_data.empty()) {
    emit({.ack = true}, snd_una_, std::move(segment_data), tc);
  }
}

sim::Duration TcpConnection::backoff_rto(const TcpTuning& tuning,
                                         int retransmits, sim::Rng& rng) {
  // Exponential backoff on consecutive retransmissions, clamped at rto_max.
  sim::Duration rto = tuning.rto;
  for (int i = 0; i < retransmits && rto < tuning.rto_max; ++i) rto = rto * 2;
  if (rto > tuning.rto_max) rto = tuning.rto_max;
  if (tuning.rto_jitter > 0) {
    // Uniform factor in [1 - j, 1 + j], quantized to ppm.
    double u =
        static_cast<double>(rng.below(2'000'001)) / 1'000'000.0 - 1.0;
    double factor = 1.0 + tuning.rto_jitter * u;
    rto = sim::Duration::nanos(static_cast<std::int64_t>(
        static_cast<double>(rto.ns()) * factor));
  }
  return rto;
}

void TcpConnection::arm_rto() {
  rto_timer_.start(backoff_rto(tuning_, retransmit_count_, jitter_rng_));
}

void TcpConnection::schedule_ack() {
  ack_pending_ = true;
  if (!ack_timer_.running()) ack_timer_.start(tuning_.delayed_ack);
}

void TcpConnection::fail_connection() {
  if (state_ == State::kClosed) return;
  rto_timer_.stop();
  ack_timer_.stop();
  state_ = State::kClosed;
  if (callbacks_.on_closed) callbacks_.on_closed();
}

void TcpStack::listen(std::uint16_t port, Acceptor on_accept) {
  listeners_.push_back(Listener{port, std::move(on_accept)});
}

TcpConnection& TcpStack::connect(ip::Ipv4Addr local, std::uint16_t local_port,
                                 ip::Ipv4Addr remote, std::uint16_t remote_port,
                                 TcpConnection::Callbacks callbacks,
                                 TcpTuning tuning) {
  conns_.push_back(std::make_unique<TcpConnection>(
      ip_, local, local_port, remote, remote_port, std::move(callbacks),
      tuning));
  conns_.back()->connect();
  return *conns_.back();
}

void TcpStack::handle_packet(ip::Ipv4Addr src, ip::Ipv4Addr dst,
                             std::span<const std::uint8_t> payload, bool ce) {
  TcpSegment seg = TcpSegment::parse(payload);
  TcpConnection* conn = find(dst, seg.dst_port, src, seg.src_port);
  if (conn == nullptr && seg.flags.syn && !seg.flags.ack) {
    for (const Listener& l : listeners_) {
      if (l.port == seg.dst_port) {
        conns_.push_back(std::make_unique<TcpConnection>(
            ip_, dst, seg.dst_port, src, seg.src_port,
            TcpConnection::Callbacks{}));
        conn = conns_.back().get();
        conn->listen();
        l.acceptor(*conn);
        break;
      }
    }
  }
  if (conn != nullptr) conn->handle_segment(seg, ce);
}

void TcpStack::destroy(TcpConnection& conn) {
  // Deferred so callers may destroy from within the connection's own
  // callback; the connection is silenced immediately.
  conn.reset();
  TcpConnection* target = &conn;
  ip_.sim().sched.schedule_after(sim::Duration::nanos(0), [this, target] {
    std::erase_if(conns_, [target](const std::unique_ptr<TcpConnection>& c) {
      return c.get() == target;
    });
  });
}

void TcpStack::shutdown() {
  // Silence callbacks first: resetting must not re-enter protocol code on a
  // node that is mid-poweroff.
  for (auto& c : conns_) {
    c->set_callbacks({});
    c->reset();
  }
  conns_.clear();
  listeners_.clear();
}

TcpConnection* TcpStack::find(ip::Ipv4Addr local, std::uint16_t local_port,
                              ip::Ipv4Addr remote, std::uint16_t remote_port) {
  for (auto& c : conns_) {
    if (c->local_addr() == local && c->local_port() == local_port &&
        c->remote_addr() == remote && c->remote_port() == remote_port) {
      return c.get();
    }
  }
  return nullptr;
}

}  // namespace mrmtp::transport
