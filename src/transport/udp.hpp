// UDP header codec (RFC 768). BFD control packets ride on UDP port 3784;
// the traffic generator uses UDP-style sequenced datagrams.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/buffer.hpp"
#include "util/byte_io.hpp"

namespace mrmtp::transport {

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  [[nodiscard]] std::vector<std::uint8_t> serialize(
      std::span<const std::uint8_t> payload) const {
    util::BufWriter w(kSize + payload.size());
    w.u16(src_port);
    w.u16(dst_port);
    w.u16(static_cast<std::uint16_t>(kSize + payload.size()));
    w.u16(0);  // checksum optional in IPv4; the simulator link is lossless
    w.bytes(payload);
    return w.take();
  }

  /// Prepends this header over the datagram buffer's headroom — in place
  /// when the buffer is uniquely owned, a counted pool copy otherwise.
  /// Byte-identical to serialize(payload).
  [[nodiscard]] net::Buffer encapsulate(net::Buffer payload) const {
    const auto length = static_cast<std::uint16_t>(kSize + payload.size());
    const std::uint8_t hdr[kSize] = {
        static_cast<std::uint8_t>(src_port >> 8),
        static_cast<std::uint8_t>(src_port & 0xff),
        static_cast<std::uint8_t>(dst_port >> 8),
        static_cast<std::uint8_t>(dst_port & 0xff),
        static_cast<std::uint8_t>(length >> 8),
        static_cast<std::uint8_t>(length & 0xff),
        0, 0};  // checksum optional in IPv4; the simulator link is lossless
    payload.prepend(hdr);
    return payload;
  }

  static UdpHeader parse(std::span<const std::uint8_t> data,
                         std::span<const std::uint8_t>& out_payload) {
    util::BufReader r(data);
    UdpHeader h;
    h.src_port = r.u16();
    h.dst_port = r.u16();
    std::uint16_t length = r.u16();
    r.u16();  // checksum
    if (length < kSize || length > data.size()) {
      throw util::CodecError("UDP: bad length");
    }
    out_payload = data.subspan(kSize, length - kSize);
    return h;
  }
};

}  // namespace mrmtp::transport
