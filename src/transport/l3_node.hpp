// L3Node: an IP host/router data plane on top of net::Node.
//
// Provides interface addressing, a kernel-style RouteTable with ECMP
// selection by flow hash, TTL handling, and local delivery demux to TCP/UDP.
// BGP routers and traffic-generating servers both derive from this; MR-MTP
// routers do not (the paper's point is that MTP replaces the IP routing
// machinery entirely).
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "ip/packet.hpp"
#include "ip/route_table.hpp"
#include "net/network.hpp"
#include "transport/tcp_lite.hpp"
#include "transport/udp.hpp"
#include "util/hash.hpp"

namespace mrmtp::transport {

class L3Node : public net::Node, public IpSender {
 public:
  L3Node(net::SimContext& ctx, std::string name, std::uint32_t tier)
      : net::Node(ctx, std::move(name), tier), tcp_(*this) {}

  /// Assigns `addr`/`prefix_len` to a port and installs the connected route.
  void configure_port(std::uint32_t port, ip::Ipv4Addr addr,
                      std::uint8_t prefix_len);

  [[nodiscard]] std::optional<ip::Ipv4Addr> port_addr(std::uint32_t port) const;
  [[nodiscard]] bool is_local_addr(ip::Ipv4Addr addr) const;

  [[nodiscard]] ip::RouteTable& routes() { return routes_; }
  [[nodiscard]] const ip::RouteTable& routes() const { return routes_; }
  [[nodiscard]] TcpStack& tcp() { return tcp_; }

  /// UDP receive hook: (src, dst, udp header, payload).
  using UdpHandler =
      std::function<void(ip::Ipv4Addr, ip::Ipv4Addr, const UdpHeader&,
                         std::span<const std::uint8_t>)>;
  void bind_udp(std::uint16_t port, UdpHandler handler) {
    udp_handlers_[port] = std::move(handler);
  }

  /// Sends a UDP datagram (routed like any other packet). Move a uniquely
  /// owned buffer in and the UDP + IP headers prepend into its headroom
  /// without copying the payload.
  void send_udp(ip::Ipv4Addr src, ip::Ipv4Addr dst, std::uint16_t src_port,
                std::uint16_t dst_port, net::Buffer payload,
                net::TrafficClass tc);

  // --- IpSender ---
  void send_ip(ip::Ipv4Addr src, ip::Ipv4Addr dst, ip::IpProto proto,
               net::Buffer payload, net::TrafficClass traffic_class) override;
  net::SimContext& sim() override { return ctx_; }
  [[nodiscard]] std::string endpoint_name() const override { return name(); }

  // --- net::Node ---
  void handle_frame(net::Port& in, net::Frame frame) override;

  struct ForwardingStats {
    std::uint64_t forwarded = 0;
    std::uint64_t delivered_local = 0;
    std::uint64_t dropped_no_route = 0;
    std::uint64_t dropped_ttl = 0;
    std::uint64_t dropped_iface_down = 0;
    /// Existing flows that re-drew their weighted choice onto a different
    /// egress after an idle gap (kWcmpFlowlet only).
    std::uint64_t flowlet_reroutes = 0;
  };
  [[nodiscard]] const ForwardingStats& forwarding_stats() const { return fwd_stats_; }

  /// Switches this node's ECMP selection to weighted (WCMP) or
  /// WCMP+flowlet mode. Next-hop weights come from the RouteTable (the BGP
  /// speaker installs link-capacity weights when this is enabled before
  /// sessions come up). `flowlet_gap` = idle gap that closes a flowlet;
  /// zero keeps the 500 µs default.
  void enable_path_select(util::PathSelect mode, sim::Duration flowlet_gap = {});
  [[nodiscard]] util::PathSelect path_select() const { return path_select_; }

  /// True if the most recent locally-delivered packet arrived ECN CE-marked
  /// (valid during the synchronous TCP/UDP dispatch it triggered).
  [[nodiscard]] bool last_rx_ce() const { return last_rx_ce_; }

 protected:
  /// Routes a serialized IP packet: local delivery or ECMP forwarding.
  /// `header` is the already-parsed view of `packet`'s leading bytes. On the
  /// transit path the packet buffer is forwarded as-is (TTL and checksum
  /// patched in place) — the bytes are never re-serialized.
  void route_packet(const ip::Ipv4Header& header, net::Buffer packet,
                    net::TrafficClass tc, bool from_self);

  /// Local delivery for protocols beyond TCP/UDP demux; default drops.
  virtual void deliver_local(const ip::Ipv4Header& header,
                             std::span<const std::uint8_t> payload,
                             net::TrafficClass tc);

  /// 5-tuple flow hash used for ECMP selection (FNV-1a over src, dst,
  /// proto, and the first 4 payload bytes, i.e. the ports).
  [[nodiscard]] static std::uint64_t flow_hash(
      const ip::Ipv4Header& header, std::span<const std::uint8_t> payload);

  ForwardingStats fwd_stats_;

 private:
  void emit_frame(std::uint32_t port, net::Buffer packet, net::TrafficClass tc);
  /// ECMP/WCMP/flowlet next-hop choice for a transit/self-originated packet.
  [[nodiscard]] const ip::NextHop* select_next_hop(
      const ip::Ipv4Header& header, std::span<const std::uint8_t> payload);
  /// Congestion feedback multiplier for WCMP+flowlet picks (PFC pause 0.05,
  /// ECN-level backlog 0.25, clear 1.0).
  [[nodiscard]] double egress_discount(std::uint32_t port) const;

  ip::RouteTable routes_;
  std::unordered_map<std::uint32_t, ip::Ipv4Addr> port_addrs_;
  std::unordered_map<std::uint16_t, UdpHandler> udp_handlers_;
  TcpStack tcp_;
  std::uint16_t next_ip_id_ = 1;
  bool last_rx_ce_ = false;
  util::PathSelect path_select_ = util::PathSelect::kHrw;
  std::int64_t flowlet_gap_ns_ = 500'000;
  net::FlowletTable* flowlets_ = nullptr;  // non-null only under kWcmpFlowlet
};

}  // namespace mrmtp::transport
