// TCP-lite: a reliable, in-order byte stream for BGP sessions.
//
// Implements the parts of TCP that matter for the paper's measurements:
//   * three-way handshake, cumulative acknowledgements, go-back-N
//     retransmission with exponential backoff, fast retransmit on three
//     duplicate ACKs, delayed pure ACKs;
//   * a 32-byte header (20 base + 12 bytes of timestamp option), which makes
//     a BGP KEEPALIVE 14 + 20 + 32 + 19 = 85 bytes at layer 2 — the exact
//     size the paper reports from its captures (Section VII.F);
//   * pure ACKs are traffic-classified separately, since the paper calls out
//     "Included in BGP communications is TCP acknowledgements" as overhead.
//
// Segments are carried over an IpSender abstraction provided by the router
// node, so the transport is testable without any topology.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ip/addr.hpp"
#include "ip/packet.hpp"
#include "net/buffer.hpp"
#include "net/frame.hpp"
#include "net/node.hpp"
#include "util/byte_io.hpp"

namespace mrmtp::transport {

/// Services a transport endpoint needs from its host node.
class IpSender {
 public:
  virtual ~IpSender() = default;

  /// Emits an IP packet into the fabric (routed by the host's data plane).
  /// The payload is a pooled buffer; movable callers keep its slab unique so
  /// the IP header prepends into headroom without a copy. Vectors convert
  /// implicitly (one counted import copy).
  virtual void send_ip(ip::Ipv4Addr src, ip::Ipv4Addr dst, ip::IpProto proto,
                       net::Buffer payload,
                       net::TrafficClass traffic_class) = 0;

  virtual net::SimContext& sim() = 0;
  [[nodiscard]] virtual std::string endpoint_name() const = 0;
};

struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  /// ECN-Echo: the receiver saw CE on its most recent data segment (DCTCP's
  /// per-ACK echo — no RFC 3168 latching).
  bool ece = false;
  /// Congestion Window Reduced: first data segment after an ECE-driven cut.
  bool cwr = false;
};

struct TcpSegment {
  static constexpr std::size_t kHeaderSize = 32;  // 20 base + 12 TS option

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  TcpFlags flags;
  std::vector<std::uint8_t> payload;

  /// Serializes into a pooled buffer with headroom for the IP header.
  [[nodiscard]] net::Buffer serialize() const;
  static TcpSegment parse(std::span<const std::uint8_t> data);
};

/// Retransmission and segmentation knobs for TCP-lite connections.
struct TcpTuning {
  sim::Duration rto = sim::Duration::millis(200);
  int max_retransmits = 8;
  std::size_t mss = 1448;
  /// Delayed-ACK timer; a pure ACK is sent when it fires with no piggyback
  /// opportunity.
  sim::Duration delayed_ack = sim::Duration::millis(10);
  /// Ceiling for the exponential RTO backoff (a lost SYN no longer waits
  /// 200 ms * 2^6 before the cap applies).
  sim::Duration rto_max = sim::Duration::seconds(5);
  /// ± fractional seeded jitter applied to every armed RTO, so an incast's
  /// synchronized retransmit storm de-correlates instead of re-colliding
  /// every backoff epoch. The draw stream is per-connection, seeded from the
  /// 4-tuple — deterministic at any shard count.
  double rto_jitter = 0.1;
  /// Initial/idle congestion window in segments. Deliberately generous so
  /// uncongested control-plane sessions (the pre-finite-buffer behavior)
  /// never hit the window; DCTCP cuts it only when CE marks arrive.
  std::size_t init_cwnd_segments = 64;
  /// DCTCP gain g for the EWMA of the marked-byte fraction.
  double dctcp_g = 0.0625;
  /// Echo + react to ECN CE marks (DCTCP-style fractional cwnd reduction).
  bool ecn_enabled = true;
};

/// One TCP-lite connection. Created by TcpStack.
class TcpConnection {
 public:
  enum class State {
    kClosed,
    kListen,
    kSynSent,
    kSynReceived,
    kEstablished,
  };

  struct Callbacks {
    std::function<void()> on_established;
    std::function<void(std::span<const std::uint8_t>)> on_data;
    /// Connection reset or failed (retransmission exhausted / RST received).
    std::function<void()> on_closed;
  };

  TcpConnection(IpSender& ip, ip::Ipv4Addr local, std::uint16_t local_port,
                ip::Ipv4Addr remote, std::uint16_t remote_port,
                Callbacks callbacks, TcpTuning tuning = {});
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Active open (sends SYN).
  void connect();
  /// Passive open (awaits SYN).
  void listen();

  /// Queues application bytes; `traffic_class` labels the frames that carry
  /// them (BGP UPDATE vs KEEPALIVE accounting).
  void send(std::vector<std::uint8_t> data, net::TrafficClass traffic_class);

  /// Aborts with RST.
  void reset();

  /// `ce` = the IP packet carrying this segment arrived CE-marked.
  void handle_segment(const TcpSegment& seg, bool ce = false);

  /// The backed-off RTO for the given consecutive-retransmit count: rto *
  /// 2^count, clamped at rto_max, with ±rto_jitter applied from `rng`.
  /// Static so tests can assert the clamp/jitter envelope directly.
  [[nodiscard]] static sim::Duration backoff_rto(const TcpTuning& tuning,
                                                 int retransmits,
                                                 sim::Rng& rng);

  [[nodiscard]] std::uint64_t cwnd() const { return cwnd_; }
  [[nodiscard]] double dctcp_alpha() const { return dctcp_alpha_; }

  /// Replaces the callback set (used by passive acceptors).
  void set_callbacks(Callbacks callbacks) { callbacks_ = std::move(callbacks); }

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool established() const { return state_ == State::kEstablished; }
  [[nodiscard]] ip::Ipv4Addr local_addr() const { return local_; }
  [[nodiscard]] ip::Ipv4Addr remote_addr() const { return remote_; }
  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }
  [[nodiscard]] std::uint16_t remote_port() const { return remote_port_; }

 private:
  struct SendChunk {
    std::vector<std::uint8_t> data;
    net::TrafficClass traffic_class;
    std::size_t consumed = 0;  // bytes already packed into flight segments
  };

  void emit(TcpFlags flags, std::uint32_t seq,
            std::vector<std::uint8_t> payload, net::TrafficClass tc);
  void try_send_data();
  void retransmit();
  /// Resends one MSS from snd_una_ (go-back-N head).
  void resend_head();
  void arm_rto();
  void schedule_ack();
  void fail_connection();

  IpSender& ip_;
  ip::Ipv4Addr local_;
  std::uint16_t local_port_;
  ip::Ipv4Addr remote_;
  std::uint16_t remote_port_;
  Callbacks callbacks_;
  TcpTuning tuning_;

  State state_ = State::kClosed;

  std::uint32_t snd_una_ = 0;  // oldest unacked seq
  std::uint32_t snd_nxt_ = 0;  // next seq to send
  std::uint32_t rcv_nxt_ = 0;  // next expected remote seq

  /// Unacknowledged + unsent application data, in seq order from snd_una_.
  std::deque<SendChunk> send_queue_;

  sim::Timer rto_timer_;
  sim::Timer ack_timer_;
  /// Per-connection RTO-jitter stream, seeded from the 4-tuple (see
  /// TcpTuning::rto_jitter).
  sim::Rng jitter_rng_;

  /// Congestion control: byte-denominated cwnd (slow start below ssthresh_,
  /// AIMD above) plus DCTCP state — the EWMA `dctcp_alpha_` of the
  /// ECE-acked byte fraction, accumulated per ~RTT observation window
  /// ending at `dctcp_window_end_`.
  std::uint64_t cwnd_ = 0;
  std::uint64_t ssthresh_ = 0;
  double dctcp_alpha_ = 0.0;
  std::uint64_t ce_acked_ = 0;
  std::uint64_t total_acked_ = 0;
  std::uint32_t dctcp_window_end_ = 0;
  /// Receiver side: CE state of the most recent in-order data segment,
  /// echoed as ECE on every ACK until it changes (DCTCP echo).
  bool ce_to_echo_ = false;
  /// Sender side: set CWR on the next data segment after an ECE cut.
  bool cwr_pending_ = false;

  int retransmit_count_ = 0;
  int dup_acks_ = 0;  // fast retransmit after 3 duplicate ACKs
  /// NewReno-style recovery: after a fast retransmit, partial ACKs below
  /// this point each trigger another head retransmission.
  std::uint32_t recover_point_ = 0;
  bool in_recovery_ = false;
  bool ack_pending_ = false;
};

/// Demultiplexes TCP segments to connections; owns them.
class TcpStack {
 public:
  explicit TcpStack(IpSender& ip) : ip_(ip) {}

  /// Registers a passive listener. `on_accept` receives each freshly
  /// created connection (in kListen state) to install callbacks via
  /// set_callbacks() and stash the pointer.
  using Acceptor = std::function<void(TcpConnection&)>;
  void listen(std::uint16_t port, Acceptor on_accept);

  /// Creates and actively opens a connection.
  TcpConnection& connect(ip::Ipv4Addr local, std::uint16_t local_port,
                         ip::Ipv4Addr remote, std::uint16_t remote_port,
                         TcpConnection::Callbacks callbacks,
                         TcpTuning tuning = {});

  /// Entry point from the host's IP demux. `ce` = the carrying IP packet
  /// arrived with ECN CE set (a finite-buffer switch marked it en route).
  void handle_packet(ip::Ipv4Addr src, ip::Ipv4Addr dst,
                     std::span<const std::uint8_t> payload, bool ce = false);

  /// Destroys a connection (its callbacks must not run afterwards).
  void destroy(TcpConnection& conn);

  /// Node-reboot teardown: RSTs every connection (established peers learn
  /// immediately; half-open peers exhaust their own retransmits) and drops
  /// all listeners, so a later listen() starts from a clean stack instead
  /// of accumulating duplicate acceptors.
  void shutdown();

  [[nodiscard]] std::size_t connection_count() const { return conns_.size(); }

 private:
  struct Listener {
    std::uint16_t port;
    Acceptor acceptor;
  };

  TcpConnection* find(ip::Ipv4Addr local, std::uint16_t local_port,
                      ip::Ipv4Addr remote, std::uint16_t remote_port);

  IpSender& ip_;
  std::vector<Listener> listeners_;
  std::vector<std::unique_ptr<TcpConnection>> conns_;
};

}  // namespace mrmtp::transport
