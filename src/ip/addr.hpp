// IPv4 addresses and prefixes.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/hash.hpp"

namespace mrmtp::ip {

class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value_((static_cast<std::uint32_t>(a) << 24) |
               (static_cast<std::uint32_t>(b) << 16) |
               (static_cast<std::uint32_t>(c) << 8) | d) {}

  /// Parses dotted-quad; throws util::CodecError on malformed input.
  static Ipv4Addr parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }
  /// The third byte — MR-MTP's ToR VID derivation input (paper §III.A:
  /// 192.168.11.0/24 -> VID 11).
  [[nodiscard]] constexpr std::uint8_t third_octet() const { return octet(2); }

  [[nodiscard]] std::string str() const;

  constexpr auto operator<=>(const Ipv4Addr&) const = default;

 private:
  std::uint32_t value_ = 0;
};

class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  constexpr Ipv4Prefix(Ipv4Addr addr, std::uint8_t length)
      : addr_(Ipv4Addr(addr.value() & mask(length))), length_(length) {}

  /// Parses "a.b.c.d/len".
  static Ipv4Prefix parse(std::string_view text);

  [[nodiscard]] constexpr Ipv4Addr network() const { return addr_; }
  [[nodiscard]] constexpr std::uint8_t length() const { return length_; }

  [[nodiscard]] constexpr bool contains(Ipv4Addr a) const {
    return (a.value() & mask(length_)) == addr_.value();
  }

  /// Host address `index` within the prefix (index 0 = network address).
  [[nodiscard]] constexpr Ipv4Addr host(std::uint32_t index) const {
    return Ipv4Addr(addr_.value() | index);
  }

  [[nodiscard]] std::string str() const;

  constexpr auto operator<=>(const Ipv4Prefix&) const = default;

  static constexpr std::uint32_t mask(std::uint8_t length) {
    return length == 0 ? 0u : ~0u << (32 - length);
  }

 private:
  Ipv4Addr addr_;
  std::uint8_t length_ = 0;
};

}  // namespace mrmtp::ip

template <>
struct std::hash<mrmtp::ip::Ipv4Addr> {
  std::size_t operator()(const mrmtp::ip::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<mrmtp::ip::Ipv4Prefix> {
  std::size_t operator()(const mrmtp::ip::Ipv4Prefix& p) const noexcept {
    // network*33+length collides systematically on aligned subnets (every
    // /24 in a /16 shares the low bits); run the packed key through a full
    // 64-bit finalizer instead.
    std::uint64_t key = (static_cast<std::uint64_t>(p.network().value()) << 8) |
                        p.length();
    return static_cast<std::size_t>(mrmtp::util::mix64(key));
  }
};
