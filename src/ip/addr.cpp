#include "ip/addr.hpp"

#include <cstdio>

#include "util/byte_io.hpp"
#include "util/strings.hpp"

namespace mrmtp::ip {

Ipv4Addr Ipv4Addr::parse(std::string_view text) {
  auto parts = util::split(text, '.');
  if (parts.size() != 4) {
    throw util::CodecError("bad IPv4 address: " + std::string(text));
  }
  std::uint32_t value = 0;
  for (const auto& p : parts) {
    std::uint64_t octet = 0;
    if (!util::parse_u64(p, octet) || octet > 255) {
      throw util::CodecError("bad IPv4 octet: " + std::string(text));
    }
    value = (value << 8) | static_cast<std::uint32_t>(octet);
  }
  return Ipv4Addr(value);
}

std::string Ipv4Addr::str() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", octet(0), octet(1), octet(2),
                octet(3));
  return buf;
}

Ipv4Prefix Ipv4Prefix::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) {
    throw util::CodecError("prefix missing /len: " + std::string(text));
  }
  Ipv4Addr addr = Ipv4Addr::parse(text.substr(0, slash));
  std::uint64_t len = 0;
  if (!util::parse_u64(text.substr(slash + 1), len) || len > 32) {
    throw util::CodecError("bad prefix length: " + std::string(text));
  }
  return Ipv4Prefix(addr, static_cast<std::uint8_t>(len));
}

std::string Ipv4Prefix::str() const {
  return addr_.str() + "/" + std::to_string(length_);
}

}  // namespace mrmtp::ip
