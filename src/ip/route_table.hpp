// Longest-prefix-match IPv4 routing table with ECMP next-hop groups.
//
// Backing store is one hash map per prefix length (lookup probes /32 down to
// /0), which is both a realistic software-router structure and fast enough to
// micro-benchmark. dump() renders the Linux `ip route` format of the paper's
// Listing 3 so table-size comparisons are like-for-like.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ip/addr.hpp"

namespace mrmtp::ip {

enum class RouteProto : std::uint8_t { kConnected, kBgp, kStatic };

[[nodiscard]] std::string_view to_string(RouteProto p);

struct NextHop {
  Ipv4Addr via;        // gateway (0.0.0.0 for connected routes)
  std::uint32_t port;  // egress interface number (1-based; "eth<n>")

  auto operator<=>(const NextHop&) const = default;
};

struct Route {
  Ipv4Prefix prefix;
  RouteProto proto = RouteProto::kStatic;
  std::uint32_t metric = 0;
  Ipv4Addr src_hint;  // "src" shown on connected routes
  std::vector<NextHop> nexthops;
};

class RouteTable {
 public:
  /// Installs a connected (scope link) route for a local interface.
  void add_connected(Ipv4Prefix prefix, std::uint32_t port, Ipv4Addr self);

  /// Installs or replaces a route. An empty next-hop set removes it.
  void set(Ipv4Prefix prefix, RouteProto proto, std::vector<NextHop> nexthops,
           std::uint32_t metric = 20);

  /// Removes a route; returns true if present.
  bool remove(Ipv4Prefix prefix);

  /// Longest-prefix match; nullptr if no route covers `dst`.
  [[nodiscard]] const Route* lookup(Ipv4Addr dst) const;

  /// Exact-prefix fetch; nullptr if absent.
  [[nodiscard]] const Route* exact(Ipv4Prefix prefix) const;

  /// ECMP selection: LPM then rendezvous (HRW) hash over the next-hop group,
  /// so a member loss remaps only the flows that member was carrying.
  [[nodiscard]] const NextHop* select(Ipv4Addr dst,
                                      std::uint64_t flow_hash) const;

  [[nodiscard]] std::size_t size() const { return count_; }

  /// All routes sorted by (prefix length, network); stable for dumps/tests.
  [[nodiscard]] std::vector<const Route*> sorted_routes() const;

  /// Linux `ip route show` style rendering (paper Listing 3).
  [[nodiscard]] std::string dump() const;

  /// Approximate resident bytes of the table contents — the paper's
  /// "storage needs" comparison (Section VII.H).
  [[nodiscard]] std::size_t memory_bytes() const;

  void clear();

 private:
  std::array<std::unordered_map<std::uint32_t, Route>, 33> by_length_;
  std::size_t count_ = 0;
};

}  // namespace mrmtp::ip
