// Longest-prefix-match IPv4 routing table with ECMP next-hop groups.
//
// Backing store is one hash map per prefix length (lookup probes /32 down to
// /0), which is both a realistic software-router structure and fast enough to
// micro-benchmark. dump() renders the Linux `ip route` format of the paper's
// Listing 3 so table-size comparisons are like-for-like.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ip/addr.hpp"

namespace mrmtp::ip {

enum class RouteProto : std::uint8_t { kConnected, kBgp, kStatic };

[[nodiscard]] std::string_view to_string(RouteProto p);

struct NextHop {
  Ipv4Addr via;        // gateway (0.0.0.0 for connected routes)
  std::uint32_t port;  // egress interface number (1-based; "eth<n>")

  // WCMP weight in Mb/s of egress capacity; 1 = unweighted/legacy. Kept as
  // an integer so NextHop stays totally ordered and routes stay comparable
  // bit-for-bit across shards.
  std::uint32_t weight = 1;

  auto operator<=>(const NextHop&) const = default;
};

struct Route {
  Ipv4Prefix prefix;
  RouteProto proto = RouteProto::kStatic;
  std::uint32_t metric = 0;
  Ipv4Addr src_hint;  // "src" shown on connected routes
  std::vector<NextHop> nexthops;
};

/// Hot-path counters for the cached LPM/select path — the ECMP analog of
/// mtp::MtpStats' up-cache telemetry, so BENCH_scalability BGP rows compare
/// algorithms instead of cache presence.
struct SelectStats {
  std::uint64_t lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t allocs_avoided = 0;   // full 33-bucket LPM walks skipped
  std::uint64_t weight_updates = 0;   // route installs carrying WCMP weights
};

class RouteTable {
 public:
  /// Installs a connected (scope link) route for a local interface.
  void add_connected(Ipv4Prefix prefix, std::uint32_t port, Ipv4Addr self);

  /// Installs or replaces a route. An empty next-hop set removes it.
  void set(Ipv4Prefix prefix, RouteProto proto, std::vector<NextHop> nexthops,
           std::uint32_t metric = 20);

  /// Removes a route; returns true if present.
  bool remove(Ipv4Prefix prefix);

  /// Longest-prefix match; nullptr if no route covers `dst`.
  [[nodiscard]] const Route* lookup(Ipv4Addr dst) const;

  /// LPM through a direct-mapped, epoch-validated cache. Any table mutation
  /// bumps the epoch, so stale Route pointers are never returned; negative
  /// results (no covering route) are cached too. This is the dense cached
  /// candidate set MTP's up-cache has had since PR 2.
  [[nodiscard]] const Route* lookup_cached(Ipv4Addr dst) const;

  /// Exact-prefix fetch; nullptr if absent.
  [[nodiscard]] const Route* exact(Ipv4Prefix prefix) const;

  /// ECMP selection: cached LPM then rendezvous (HRW) hash over the next-hop
  /// group, so a member loss remaps only the flows that member was carrying.
  [[nodiscard]] const NextHop* select(Ipv4Addr dst,
                                      std::uint64_t flow_hash) const;

  /// WCMP selection: like select() but weight-proportional — a next hop with
  /// twice the weight carries twice the flows (weighted rendezvous hashing).
  [[nodiscard]] const NextHop* select_weighted(Ipv4Addr dst,
                                               std::uint64_t flow_hash) const;

  [[nodiscard]] const SelectStats& select_stats() const {
    return select_stats_;
  }

  [[nodiscard]] std::size_t size() const { return count_; }

  /// All routes sorted by (prefix length, network); stable for dumps/tests.
  [[nodiscard]] std::vector<const Route*> sorted_routes() const;

  /// Linux `ip route show` style rendering (paper Listing 3).
  [[nodiscard]] std::string dump() const;

  /// Approximate resident bytes of the table contents — the paper's
  /// "storage needs" comparison (Section VII.H).
  [[nodiscard]] std::size_t memory_bytes() const;

  void clear();

 private:
  // One direct-mapped cache line per hashed destination. Slots start at
  // epoch 0 and the table at epoch 1, so an untouched slot is never valid.
  struct LpmSlot {
    std::uint64_t epoch = 0;
    std::uint32_t dst = 0;
    const Route* route = nullptr;  // nullptr = cached negative result
  };
  static constexpr std::size_t kLpmCacheSlots = 1024;  // power of two

  std::array<std::unordered_map<std::uint32_t, Route>, 33> by_length_;
  std::size_t count_ = 0;
  std::uint64_t epoch_ = 1;
  mutable std::vector<LpmSlot> lpm_cache_;  // sized lazily on first lookup
  mutable SelectStats select_stats_;
};

}  // namespace mrmtp::ip
