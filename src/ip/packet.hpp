// IPv4 header codec (RFC 791) with a real internet checksum, so serialized
// packets carry the exact bytes the paper's wireshark captures count.
// Options are carried opaquely: parse accepts any IHL in [5, 15] and hands
// back the payload *after* the options, so flow hashes derived from the
// payload span always cover the transport ports and never option bytes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ip/addr.hpp"
#include "net/buffer.hpp"
#include "util/byte_io.hpp"

namespace mrmtp::ip {

enum class IpProto : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
};

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;      // option-less header bytes
  static constexpr std::size_t kMaxSize = 60;   // IHL 15

  std::uint8_t tos = 0;
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  IpProto protocol = IpProto::kUdp;
  Ipv4Addr src;
  Ipv4Addr dst;
  /// Raw option bytes; must be a multiple of 4 and at most 40 bytes when
  /// serializing (serialize throws util::CodecError otherwise).
  std::vector<std::uint8_t> options;
  // total_length is derived from the payload at serialization time.

  /// Header bytes on the wire (20 + options) — the transport offset inside
  /// a serialized packet. Flow-hashing code must use this rather than
  /// assuming IHL=5.
  [[nodiscard]] std::size_t header_length() const {
    return kSize + options.size();
  }

  /// Serializes header (+options) + payload.
  [[nodiscard]] std::vector<std::uint8_t> serialize(
      std::span<const std::uint8_t> payload) const;

  /// Prepends this header over the payload buffer's headroom — in place when
  /// the caller moved a uniquely owned buffer in, a counted pool copy
  /// otherwise. Byte-identical to serialize(payload).
  [[nodiscard]] net::Buffer encapsulate(net::Buffer payload) const;

  /// Transit fast path: decrements the TTL of a serialized packet and
  /// re-patches the header checksum in place (copy-on-shared via the
  /// buffer). Byte-identical to parse + ttl-1 + serialize. Throws
  /// util::CodecError on a truncated or malformed header.
  static void decrement_ttl(net::Buffer& packet);

  /// Parses a header; `out_payload` receives the bytes after it (options
  /// skipped). Throws util::CodecError on truncation, bad version, bad IHL,
  /// or checksum mismatch.
  static Ipv4Header parse(std::span<const std::uint8_t> data,
                          std::span<const std::uint8_t>& out_payload);

  /// Transport-payload offset of a serialized IPv4 packet (IHL x 4), without
  /// a full parse — the hot-path helper for flow hashing over raw bytes.
  /// Throws util::CodecError if the buffer is empty or the IHL is invalid.
  [[nodiscard]] static std::size_t payload_offset(
      std::span<const std::uint8_t> packet);
};

/// RFC 1071 internet checksum over `data`.
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

}  // namespace mrmtp::ip
