// IPv4 header codec (RFC 791, no options) with a real internet checksum, so
// serialized packets carry the exact 20 bytes the paper's wireshark captures
// count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ip/addr.hpp"
#include "util/byte_io.hpp"

namespace mrmtp::ip {

enum class IpProto : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
};

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;

  std::uint8_t tos = 0;
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  IpProto protocol = IpProto::kUdp;
  Ipv4Addr src;
  Ipv4Addr dst;
  // total_length is derived from the payload at serialization time.

  /// Serializes header + payload.
  [[nodiscard]] std::vector<std::uint8_t> serialize(
      std::span<const std::uint8_t> payload) const;

  /// Parses a header; `out_payload` receives the bytes after it. Throws
  /// util::CodecError on truncation, bad version, or checksum mismatch.
  static Ipv4Header parse(std::span<const std::uint8_t> data,
                          std::span<const std::uint8_t>& out_payload);
};

/// RFC 1071 internet checksum over `data`.
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

}  // namespace mrmtp::ip
