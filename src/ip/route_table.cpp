#include "ip/route_table.hpp"

#include <algorithm>

#include "util/hash.hpp"

namespace mrmtp::ip {

std::string_view to_string(RouteProto p) {
  switch (p) {
    case RouteProto::kConnected: return "kernel";
    case RouteProto::kBgp: return "bgp";
    case RouteProto::kStatic: return "static";
  }
  return "?";
}

void RouteTable::add_connected(Ipv4Prefix prefix, std::uint32_t port,
                               Ipv4Addr self) {
  Route r;
  r.prefix = prefix;
  r.proto = RouteProto::kConnected;
  r.metric = 0;
  r.src_hint = self;
  r.nexthops.push_back(NextHop{Ipv4Addr(), port});
  auto& slot = by_length_[prefix.length()][prefix.network().value()];
  if (slot.nexthops.empty()) ++count_;
  slot = std::move(r);
  ++epoch_;
}

void RouteTable::set(Ipv4Prefix prefix, RouteProto proto,
                     std::vector<NextHop> nexthops, std::uint32_t metric) {
  if (nexthops.empty()) {
    remove(prefix);
    return;
  }
  std::sort(nexthops.begin(), nexthops.end());
  for (const NextHop& nh : nexthops) {
    if (nh.weight != 1) {
      ++select_stats_.weight_updates;
      break;
    }
  }
  Route r;
  r.prefix = prefix;
  r.proto = proto;
  r.metric = metric;
  r.nexthops = std::move(nexthops);
  auto& bucket = by_length_[prefix.length()];
  auto [it, inserted] = bucket.try_emplace(prefix.network().value());
  if (inserted) ++count_;
  it->second = std::move(r);
  ++epoch_;
}

bool RouteTable::remove(Ipv4Prefix prefix) {
  auto& bucket = by_length_[prefix.length()];
  if (bucket.erase(prefix.network().value()) > 0) {
    --count_;
    ++epoch_;
    return true;
  }
  return false;
}

const Route* RouteTable::lookup(Ipv4Addr dst) const {
  for (int len = 32; len >= 0; --len) {
    const auto& bucket = by_length_[static_cast<std::size_t>(len)];
    if (bucket.empty()) continue;
    std::uint32_t key = dst.value() & Ipv4Prefix::mask(static_cast<std::uint8_t>(len));
    auto it = bucket.find(key);
    if (it != bucket.end()) return &it->second;
  }
  return nullptr;
}

const Route* RouteTable::lookup_cached(Ipv4Addr dst) const {
  ++select_stats_.lookups;
  if (lpm_cache_.empty()) lpm_cache_.resize(kLpmCacheSlots);
  LpmSlot& slot =
      lpm_cache_[util::mix64(dst.value()) & (kLpmCacheSlots - 1)];
  if (slot.epoch == epoch_ && slot.dst == dst.value()) {
    ++select_stats_.cache_hits;
    ++select_stats_.allocs_avoided;
    return slot.route;
  }
  ++select_stats_.cache_misses;
  const Route* r = lookup(dst);
  slot.epoch = epoch_;
  slot.dst = dst.value();
  slot.route = r;
  return r;
}

const Route* RouteTable::exact(Ipv4Prefix prefix) const {
  const auto& bucket = by_length_[prefix.length()];
  auto it = bucket.find(prefix.network().value());
  return it == bucket.end() ? nullptr : &it->second;
}

const NextHop* RouteTable::select(Ipv4Addr dst, std::uint64_t flow_hash) const {
  const Route* r = lookup_cached(dst);
  if (r == nullptr || r->nexthops.empty()) return nullptr;
  // Rendezvous hashing keyed by the next hop itself: when one member of the
  // group vanishes, only the flows it was winning remap (~1/n of them);
  // `flow_hash % n` would remap nearly all flows on any size change.
  std::size_t pick = util::hrw_pick(
      flow_hash, r->nexthops.size(), [&](std::size_t i) {
        const NextHop& nh = r->nexthops[i];
        return (static_cast<std::uint64_t>(nh.via.value()) << 32) | nh.port;
      });
  return &r->nexthops[pick];
}

const NextHop* RouteTable::select_weighted(Ipv4Addr dst,
                                           std::uint64_t flow_hash) const {
  const Route* r = lookup_cached(dst);
  if (r == nullptr || r->nexthops.empty()) return nullptr;
  std::size_t pick = util::hrw_pick_weighted(
      flow_hash, r->nexthops.size(),
      [&](std::size_t i) {
        const NextHop& nh = r->nexthops[i];
        return (static_cast<std::uint64_t>(nh.via.value()) << 32) | nh.port;
      },
      [&](std::size_t i) { return r->nexthops[i].weight; });
  return &r->nexthops[pick];
}

std::vector<const Route*> RouteTable::sorted_routes() const {
  std::vector<const Route*> out;
  out.reserve(count_);
  for (const auto& bucket : by_length_) {
    for (const auto& [key, route] : bucket) out.push_back(&route);
  }
  std::sort(out.begin(), out.end(), [](const Route* a, const Route* b) {
    if (a->prefix.network() != b->prefix.network()) {
      return a->prefix.network() < b->prefix.network();
    }
    return a->prefix.length() < b->prefix.length();
  });
  return out;
}

std::string RouteTable::dump() const {
  std::string out;
  for (const Route* r : sorted_routes()) {
    out += r->prefix.str();
    if (r->proto == RouteProto::kConnected) {
      const NextHop& nh = r->nexthops.front();
      out += " dev eth" + std::to_string(nh.port) +
             " proto kernel scope link src " + r->src_hint.str() + "\n";
      continue;
    }
    if (r->nexthops.size() == 1) {
      const NextHop& nh = r->nexthops.front();
      out += " via " + nh.via.str() + " dev eth" + std::to_string(nh.port) +
             " proto " + std::string(to_string(r->proto)) + " metric " +
             std::to_string(r->metric) + "\n";
      continue;
    }
    out += " proto " + std::string(to_string(r->proto)) + " metric " +
           std::to_string(r->metric) + "\n";
    for (const NextHop& nh : r->nexthops) {
      out += "\tnexthop via " + nh.via.str() + " dev eth" +
             std::to_string(nh.port) + " weight " +
             std::to_string(nh.weight) + "\n";
    }
  }
  return out;
}

std::size_t RouteTable::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& bucket : by_length_) {
    for (const auto& [key, route] : bucket) {
      bytes += sizeof(Route) + route.nexthops.size() * sizeof(NextHop);
    }
  }
  return bytes;
}

void RouteTable::clear() {
  for (auto& bucket : by_length_) bucket.clear();
  count_ = 0;
  ++epoch_;
}

}  // namespace mrmtp::ip
